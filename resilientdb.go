// Package resilientdb is a Go reproduction of "Permissioned Blockchain
// Through the Looking Glass: Architectural and Implementation Lessons
// Learned" (Gupta, Rahnama, Sadoghi — ICDCS 2020): a high-throughput
// permissioned blockchain fabric built around a deeply pipelined,
// extensively parallel replica architecture.
//
// The package exposes three layers:
//
//   - A runnable fabric: NewCluster builds an n-replica deployment (PBFT
//     or Zyzzyva) with closed-loop YCSB clients, either in-process or over
//     TCP, running the full Figure 6 pipeline — input-threads,
//     batch-threads, worker lanes, the in-order execute stage (optionally
//     fanned across write-set-partitioned shards), checkpoint-thread,
//     output-threads — with real ED25519/RSA/AES-CMAC authentication, an
//     in-memory or disk-backed store, and a blockchain ledger.
//
//   - A deterministic simulator: Simulate replays the paper's evaluation
//     at full scale (32 replicas, 8 cores, 80K clients) by driving the
//     very same consensus engines under a calibrated cost model.
//
//   - The experiment suite: Experiments and RunExperiment regenerate
//     every table and figure of the paper's Section 5.
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for
// paper-versus-measured results.
package resilientdb

import (
	"io"

	"resilientdb/internal/bench"
	"resilientdb/internal/cluster"
	"resilientdb/internal/crypto"
	"resilientdb/internal/ledger"
	"resilientdb/internal/replica"
	"resilientdb/internal/sim"
	"resilientdb/internal/types"
	"resilientdb/internal/workload"
)

// ---- Runnable fabric ----

// Protocol selects the consensus protocol for a cluster.
type Protocol = replica.Protocol

// Protocols.
const (
	// PBFT is the classical three-phase protocol (Castro & Liskov) the
	// paper's well-crafted system is built around.
	PBFT = replica.PBFT
	// Zyzzyva is the single-phase speculative protocol used as the
	// fast-but-fragile baseline.
	Zyzzyva = replica.Zyzzyva
)

// ClusterOptions configures a cluster; zero values select the paper's
// standard configuration (batch 100, 2 batch-threads, 1 execute-thread,
// 2 output-threads, CMAC+ED25519, in-memory storage).
type ClusterOptions = cluster.Options

// Cluster is a runnable deployment of replicas plus closed-loop clients.
type Cluster = cluster.Cluster

// Result summarizes a load run against a cluster.
type Result = cluster.Result

// Client is one closed-loop load-generating client.
type Client = cluster.Client

// NewCluster builds a single-process cluster. Call Start, then Run.
func NewCluster(opts ClusterOptions) (*Cluster, error) { return cluster.New(opts) }

// ---- Workload ----

// WorkloadConfig describes the YCSB-style workload (Section 5.1).
type WorkloadConfig = workload.Config

// DefaultWorkload returns the paper's standard workload: 600K records,
// single-operation write-only transactions, Zipfian keys.
func DefaultWorkload() WorkloadConfig { return workload.Default() }

// ---- Cryptography ----

// CryptoConfig selects the signature schemes (Section 5.6).
type CryptoConfig = crypto.Config

// NoSig disables signatures (measurement baseline; unsafe).
func NoSig() CryptoConfig { return crypto.NoSig() }

// AllED25519 signs everything with ED25519 digital signatures.
func AllED25519() CryptoConfig { return crypto.AllED25519() }

// AllRSA signs everything with RSA-2048 digital signatures.
func AllRSA() CryptoConfig { return crypto.AllRSA() }

// RecommendedCrypto is the paper's recommended combination: CMAC between
// replicas, ED25519 client signatures (Section 6).
func RecommendedCrypto() CryptoConfig { return crypto.Recommended() }

// ---- Ledger ----

// LedgerMode selects block linkage (Section 4.6).
type LedgerMode = ledger.Mode

// Ledger modes.
const (
	// HashChain links blocks by embedding H(B_{i-1}).
	HashChain = ledger.HashChain
	// CommitCertificate embeds the 2f+1 commit signatures instead of
	// hashing the previous block on the critical path.
	CommitCertificate = ledger.CommitCertificate
)

// Block is one element of the immutable ledger.
type Block = types.Block

// ---- Simulator ----

// SimConfig parameterizes a simulated experiment at paper scale.
type SimConfig = sim.Config

// SimResult is a simulated experiment's outcome.
type SimResult = sim.Result

// Simulated protocols and knobs.
const (
	SimPBFT    = sim.PBFT
	SimZyzzyva = sim.Zyzzyva
)

// Simulate runs one deterministic simulated experiment.
func Simulate(cfg SimConfig) (SimResult, error) { return sim.Run(cfg) }

// ---- Experiment suite ----

// Experiment regenerates one of the paper's figures.
type Experiment = bench.Experiment

// Scale selects experiment fidelity.
type Scale = bench.Scale

// Scales.
const (
	// ScaleSmall shrinks populations and windows for quick runs.
	ScaleSmall = bench.ScaleSmall
	// ScalePaper uses the paper's populations.
	ScalePaper = bench.ScalePaper
)

// Experiments returns every figure-reproduction experiment.
func Experiments() []Experiment { return bench.All() }

// RunExperiment executes the experiment with the given figure ID (e.g.
// "fig10"), rendering its tables to w.
func RunExperiment(id string, scale Scale, w io.Writer) error {
	e, ok := bench.ByID(id)
	if !ok {
		return ErrUnknownExperiment
	}
	_, err := bench.RunAndRender(e, scale, w)
	return err
}

// ErrUnknownExperiment is returned by RunExperiment for unknown IDs.
var ErrUnknownExperiment = errUnknownExperiment{}

type errUnknownExperiment struct{}

func (errUnknownExperiment) Error() string { return "resilientdb: unknown experiment id" }

// Command resdb-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	resdb-bench -list
//	resdb-bench -experiment fig10
//	resdb-bench -experiment all -scale paper -out results.txt
//	resdb-bench -experiment tcpbatch -net-batch 128 -net-linger 200us
//
// Scale "small" (default) shrinks populations so the full suite finishes
// in minutes; "paper" uses the paper's populations (80K clients).
//
// The tcpbatch experiment measures the transport layer directly: batched
// TCP frames against per-envelope frames. -net-batch sets the maximum
// envelopes coalesced per frame and -net-linger how long a partial batch
// waits for more envelopes before flushing (0 flushes when the outbound
// queue drains).
//
// The workerscale experiment runs the real replica pipeline and sweeps
// the consensus worker lanes from 1 to -worker-threads in powers of two,
// reporting throughput and per-lane busy time (the runtime analogue of
// Figure 9's thread-saturation measurement).
//
// The execshards experiment also runs the real pipeline: it sweeps the
// execution shards from 1 to -execute-shards in powers of two under an
// execution-heavy Zipfian write load, reporting throughput plus the
// per-shard busy split (the evidence that write-set partitioning spreads
// the last serialized pipeline stage).
//
// The diskpipe experiment runs the real pipeline over the three store
// backends — MemStore, the serial fsync-per-Put DiskStore (the
// Section 5.7 off-memory contrast), and the sharded group-commit
// DiskStore with cross-batch execution pipelining — reporting throughput,
// fsync counts, and fsync-stall time. -store-shards, -store-sync, and
// -exec-pipeline-depth tune the sharded row.
//
// The compaction experiment measures the sharded store's log garbage
// collection: an overwrite-heavy Zipfian history, then shard-log bytes
// and reopen (recovery) time before and after compaction rewrites each
// log to live records only. -store-compact-ratio and
// -store-compact-min-bytes set the thresholds the checkpoint-driven
// trigger uses (they also apply to diskpipe's disk rows).
//
// The readmix experiment compares consensus-ordered against
// locally-served reads under YCSB mixes (workloads A and C) on the real
// pipeline, each row a warmup window plus a measured window, with read
// and write latency percentiles split; its seq-used column is the
// ledger-height growth during the measured window — zero for the
// read-only local row, the evidence that local reads consume no sequence
// numbers.
//
// The faults experiment runs the chaos scenario matrix (internal/chaos)
// and reports per-scenario degraded throughput and recovery time; -chaos
// layers an ambient link fault under every scenario so the matrix can be
// rerun on an already-degraded network.
//
// -json-dir additionally writes each experiment's metrics as
// BENCH_<id>.json into the given directory — the machine-readable
// artifact CI archives.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"resilientdb/internal/bench"
	"resilientdb/internal/chaos"
	"resilientdb/internal/transport"
)

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list experiments and exit")
	experiment := flag.String("experiment", "all", "experiment id (e.g. fig10) or 'all'")
	scaleName := flag.String("scale", "small", "small | paper")
	outPath := flag.String("out", "", "also write results to this file")
	netBatch := flag.Int("net-batch", transport.DefaultBatchMax, "tcpbatch: max envelopes per TCP batch frame")
	netLinger := flag.Duration("net-linger", 0, "tcpbatch: partial-batch flush delay (0 flushes when the queue drains)")
	workerThreads := flag.Int("worker-threads", 4, "workerscale: largest worker-lane count in the sweep")
	execShards := flag.Int("execute-shards", 4, "execshards: largest execution-shard count in the sweep")
	storeShards := flag.Int("store-shards", 0, "diskpipe: append logs for the sharded store (0 aligns with the execution shards)")
	storeSync := flag.Duration("store-sync", bench.DiskTuning.Sync, "diskpipe: fsync policy (group-commit linger for the sharded store; the serial store fsyncs every Put; 0 disables fsync on both disk rows, isolating the blocking-API cost)")
	execDepth := flag.Int("exec-pipeline-depth", bench.DiskTuning.Depth, "diskpipe: cross-batch execution pipelining depth for the sharded-store row")
	compactRatio := flag.Float64("store-compact-ratio", 0, "compaction/diskpipe: garbage ratio past which a shard log is compacted (0 = store default 0.5, negative disables)")
	compactMin := flag.Int64("store-compact-min-bytes", 0, "compaction/diskpipe: log size floor for threshold-driven compaction (0 = store default 1 MiB, negative removes the floor)")
	chaosSpec := flag.String("chaos", "", "faults: ambient link fault layered under every scenario, drop=P,dup=P,corrupt=P,delay=D,reorder=D,seed=N (empty = fault-free between injections)")
	jsonDir := flag.String("json-dir", "", "also write each experiment's metrics as BENCH_<id>.json into this directory")
	flag.Parse()

	bench.TCPTuning.BatchMax = *netBatch
	bench.TCPTuning.Linger = *netLinger
	if *workerThreads >= 1 {
		bench.WorkerTuning.MaxThreads = *workerThreads
	}
	if *execShards >= 1 {
		bench.ExecTuning.MaxShards = *execShards
	}
	bench.DiskTuning.Shards = *storeShards
	if *storeSync >= 0 {
		// 0 is meaningful (no fsync: the pure blocking-API §5.7 shape),
		// so only negative values fall back to the default linger.
		bench.DiskTuning.Sync = *storeSync
	}
	if *execDepth >= 1 {
		bench.DiskTuning.Depth = *execDepth
	}
	bench.DiskTuning.CompactRatio = *compactRatio
	bench.DiskTuning.CompactMinBytes = *compactMin
	if *chaosSpec != "" {
		spec, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		bench.ChaosTuning.BaseFault = spec.Fault
		bench.ChaosTuning.Seed = spec.Seed
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-14s %s\n               paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return 0
	}

	scale := bench.ScaleSmall
	switch *scaleName {
	case "small":
	case "paper":
		scale = bench.ScalePaper
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want small|paper)\n", *scaleName)
		return 2
	}

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	var targets []bench.Experiment
	if *experiment == "all" {
		targets = bench.All()
	} else {
		e, ok := bench.ByID(*experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *experiment)
			return 2
		}
		targets = []bench.Experiment{e}
	}

	for _, e := range targets {
		out, err := bench.RunAndRender(e, scale, w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			return 1
		}
		if *jsonDir != "" {
			if err := writeJSON(*jsonDir, e.ID, *scaleName, out); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
	}
	return 0
}

// writeJSON records one experiment's metrics as BENCH_<id>.json — the
// machine-readable counterpart to the rendered tables, keyed exactly like
// Outcome.Metrics.
func writeJSON(dir, id, scale string, out bench.Outcome) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	doc := struct {
		Experiment string             `json:"experiment"`
		Scale      string             `json:"scale"`
		Metrics    map[string]float64 `json:"metrics"`
	}{Experiment: id, Scale: scale, Metrics: out.Metrics}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_"+id+".json"), append(data, '\n'), 0o644)
}

// Command resdb-gateway runs the multiplexed front door in front of a
// TCP deployment of resdb-node replicas: lightweight client sessions
// connect here (see resdb-client -gateway and internal/gateway for the
// session wire format), and the gateway coalesces their transactions
// into shared consensus requests signed under its own derived identities.
//
// The knobs follow the cluster-wide flag convention: 0 = default, -1 =
// explicitly disabled.
//
//   - -upstreams U: replica-facing consensus workers, each a closed loop
//     with its own identity and connection; the gateway's entire
//     replica-facing connection footprint (0 = default 4).
//   - -gw-batch B: transactions coalesced per consensus request (0 =
//     default 128, -1 disables coalescing — one transaction per request).
//   - -gw-linger D: how long a non-full batch waits for more sessions'
//     transactions (0 = default 200µs, negative flushes immediately).
//   - -gw-queue Q: admission queue capacity between the front door and
//     the upstream workers; a full queue answers StatusBusy (0 = default
//     16384).
//   - -gw-busy T: replica queue-saturation gauge (1..255, piggybacked on
//     consensus responses) at or above which new submits are pushed back
//     busy (0 = default 230; -1 pushes back only at full saturation).
//   - -gw-busy-decay D: how long a saturated gauge keeps pushing back
//     without a fresh consensus response before admission expires it and
//     probes again (0 = default 4×timeout; negative never expires).
//   - -gw-dedup W: completed replies cached per session for retry replay
//     (0 = default 8); retries older than the window are rejected, never
//     re-executed.
//   - -gw-session-idle D: how long a session with nothing in flight
//     keeps its dedup state before eviction; state survives reconnects
//     until then (0 = default 5m; negative never evicts).
//
// Example, in front of the 4-replica deployment from the resdb-node docs:
//
//	resdb-gateway -listen 127.0.0.1:9000 -n 4 -replicas 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 &
//	resdb-client -gateway 127.0.0.1:9000 -sessions 100000 -clients 4 -n 4 -replicas ... -duration 10s
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	clientengine "resilientdb/internal/consensus/client"
	"resilientdb/internal/crypto"
	"resilientdb/internal/gateway"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
)

func main() {
	os.Exit(run())
}

func run() int {
	listen := flag.String("listen", "127.0.0.1:9000", "session listen address")
	n := flag.Int("n", 4, "number of replicas")
	replicas := flag.String("replicas", "", "comma-separated replica addresses, index = id")
	protoName := flag.String("protocol", "pbft", "pbft | zyzzyva")
	upstreams := flag.Int("upstreams", 0, "replica-facing consensus workers (0 = default 4)")
	gwBatch := flag.Int("gw-batch", 0, "transactions coalesced per consensus request (0 = default 128, -1 disables coalescing)")
	gwLinger := flag.Duration("gw-linger", 0, "how long a non-full batch waits for more transactions (0 = default 200µs, negative flushes immediately)")
	gwQueue := flag.Int("gw-queue", 0, "admission queue capacity; a full queue answers busy (0 = default 16384)")
	gwBusy := flag.Int("gw-busy", 0, "replica busy-gauge admission threshold 1..255 (0 = default 230, -1 pushes back only at full saturation)")
	gwBusyDecay := flag.Duration("gw-busy-decay", 0, "staleness after which a saturated gauge stops pushing back (0 = default 4×timeout, negative never expires)")
	gwDedup := flag.Int("gw-dedup", 0, "cached replies per session for retry replay (0 = default 8)")
	gwSessionIdle := flag.Duration("gw-session-idle", 0, "idle time before a session's dedup state is evicted (0 = default 5m, negative never evicts)")
	timeout := flag.Duration("timeout", 500*time.Millisecond, "upstream retransmission timeout")
	netBatch := flag.Int("net-batch", transport.DefaultBatchMax, "max envelopes per TCP batch frame on the upstream connections (1 disables transport batching)")
	netLinger := flag.Duration("net-linger", 0, "partial TCP batch flush delay on the upstream connections (0 flushes when the queue drains)")
	netZeroCopy := flag.Int("net-zerocopy", 0, "zero-copy inbound frame decode from pooled buffers (0 = default on, -1 copies every frame)")
	seed := flag.Int64("seed", 1, "shared key-derivation seed (must match nodes)")
	statsEvery := flag.Duration("stats", 5*time.Second, "stats print interval")
	flag.Parse()

	proto := clientengine.PBFT
	if *protoName == "zyzzyva" {
		proto = clientengine.Zyzzyva
	} else if *protoName != "pbft" {
		fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *protoName)
		return 2
	}

	addrList := strings.Split(*replicas, ",")
	if len(addrList) != *n {
		fmt.Fprintf(os.Stderr, "-replicas must list exactly %d addresses\n", *n)
		return 2
	}
	addrs := make(map[types.NodeID]string, *n)
	for i, a := range addrList {
		addrs[types.ReplicaNode(types.ReplicaID(i))] = strings.TrimSpace(a)
	}

	var seedBytes [32]byte
	for i := 0; i < 8; i++ {
		seedBytes[i] = byte(*seed >> (8 * i))
	}
	dir, err := crypto.NewDirectory(crypto.Recommended(), seedBytes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	cfg := gateway.Config{
		N:         *n,
		Protocol:  proto,
		Directory: dir,
		Endpoint: func(id types.ClientID) (transport.Endpoint, error) {
			ep, err := transport.NewTCPWithConfig(transport.TCPConfig{
				Self:       types.ClientNode(id),
				ListenAddr: "127.0.0.1:0",
				Addrs:      addrs,
				Inboxes:    1,
				Capacity:   1 << 10,
				BatchMax:   *netBatch,
				Linger:     *netLinger,
				ZeroCopy:   *netZeroCopy >= 0,
			})
			if err != nil {
				return nil, err
			}
			for node := range addrs {
				if err := ep.Hello(node); err != nil {
					ep.Close()
					return nil, fmt.Errorf("cannot reach %v: %w", node, err)
				}
			}
			return ep, nil
		},
		Upstreams: *upstreams,
		Timeout:   *timeout,
		QueueCap:  *gwQueue,
	}
	if *gwBatch < 0 {
		cfg.Batch = 1
	} else {
		cfg.Batch = *gwBatch
	}
	if *gwLinger < 0 {
		cfg.Linger = time.Nanosecond
	} else {
		cfg.Linger = *gwLinger
	}
	switch {
	case *gwBusy < 0:
		cfg.BusyThreshold = 255
	case *gwBusy > 255:
		fmt.Fprintf(os.Stderr, "-gw-busy must be in 1..255, got %d\n", *gwBusy)
		return 2
	default:
		cfg.BusyThreshold = uint8(*gwBusy)
	}
	cfg.DedupWindow = *gwDedup
	// "Never" is a century and a half of nanoseconds — far enough out
	// that the decay/eviction clocks can still subtract it safely.
	const never = time.Duration(1 << 62)
	if *gwBusyDecay < 0 {
		cfg.BusyDecay = never
	} else {
		cfg.BusyDecay = *gwBusyDecay
	}
	if *gwSessionIdle < 0 {
		cfg.SessionIdle = never
	} else {
		cfg.SessionIdle = *gwSessionIdle
	}

	g, err := gateway.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer g.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	go func() {
		if err := g.Serve(ln); err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		}
	}()
	fmt.Printf("gateway (%s, %d replicas) listening on %s\n", proto, *n, ln.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*statsEvery)
	defer tick.Stop()
	var last uint64
	for {
		select {
		case <-stop:
			g.Close()
			s := g.Stats()
			fmt.Printf("final: completed=%d accepted=%d busy=%d dup-absorbed=%d dup-replayed=%d dup-rejected=%d requests=%d retx=%d conns=%d\n",
				s.Completed, s.Accepted, s.BusyRejected, s.DupAbsorbed, s.DupReplayed, s.DupRejected,
				s.Requests, s.Retransmits, s.Conns)
			return 0
		case <-tick.C:
			s := g.Stats()
			fmt.Printf("completed=%d (+%d) sessions=%d conns=%d busy-gauge=%d busy-rejected=%d dups=%d/%d/%d requests=%d retx=%d\n",
				s.Completed, s.Completed-last, s.Sessions, s.Conns, s.Busy, s.BusyRejected,
				s.DupAbsorbed, s.DupReplayed, s.DupRejected, s.Requests, s.Retransmits)
			last = s.Completed
		}
	}
}

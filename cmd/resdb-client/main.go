// Command resdb-client drives load against a TCP deployment of
// resdb-node replicas: it runs many closed-loop clients, each submitting
// YCSB transactions and waiting for the protocol's response quorum, then
// reports throughput and latency.
//
// The workload mix is controlled by -read-fraction and -scan-fraction
// (explicit shares in [0,1]) or -workload (YCSB presets: a = 50% reads,
// b = 95%, c = read-only, e = 95% scans); the default stays write-only.
// -scan-length caps the rows per range scan (the YCSB-E span).
// -read-mode picks how write-free requests — point reads and scans
// alike — travel: quorum (default) orders them through consensus, local
// sends them to a single replica answered from its last-executed
// snapshot without a consensus round, subject to the client's MinSeq
// staleness bound (refused requests fall back to quorum).
//
// With -gateway ADDR the binary switches from direct per-client
// consensus to the session load generator: -sessions lightweight
// closed-loop sessions (0 = default 1024) are multiplexed over -clients
// TCP connections to a resdb-gateway front door, which signs and batches
// on their behalf. -gw-batch caps the submits coalesced per session
// frame (0 = default 64, -1 disables coalescing) and -gw-linger bounds
// how long a non-full frame waits (0 = default 100µs, negative flushes
// immediately); -timeout is the per-session retry interval, which the
// gateway's dedup window makes idempotent.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"resilientdb/internal/cluster"
	clientengine "resilientdb/internal/consensus/client"
	"resilientdb/internal/crypto"
	"resilientdb/internal/gateway"
	"resilientdb/internal/stats"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
	"resilientdb/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	n := flag.Int("n", 4, "number of replicas")
	replicas := flag.String("replicas", "", "comma-separated replica addresses, index = id")
	protoName := flag.String("protocol", "pbft", "pbft | zyzzyva")
	clients := flag.Int("clients", 16, "number of closed-loop clients")
	burst := flag.Int("burst", 1, "transactions per request")
	duration := flag.Duration("duration", 10*time.Second, "run duration")
	timeout := flag.Duration("timeout", 500*time.Millisecond, "client retransmission timeout")
	seed := flag.Int64("seed", 1, "shared key-derivation seed (must match nodes)")
	readFraction := flag.Float64("read-fraction", 0, "fraction of read-only transactions in [0,1] (0 = write-only default, -1 explicitly disables reads)")
	scanFraction := flag.Float64("scan-fraction", 0, "fraction of range-scan transactions in [0,1] (0 = none default, -1 explicitly disables scans)")
	scanLength := flag.Int("scan-length", 0, "max rows per range scan (0 = default 100)")
	preset := flag.String("workload", "", "YCSB workload preset: a (50% reads) | b (95%) | c (read-only) | e (95% scans); empty keeps -read-fraction/-scan-fraction")
	readMode := flag.String("read-mode", "quorum", "how write-free requests (reads and scans) travel: quorum (ordered through consensus) | local (served by one replica from its last-executed snapshot under the client's staleness bound)")
	netBatch := flag.Int("net-batch", transport.DefaultBatchMax, "max envelopes per TCP batch frame (1 disables transport batching)")
	netLinger := flag.Duration("net-linger", 0, "partial TCP batch flush delay (0 flushes when the queue drains)")
	netZeroCopy := flag.Int("net-zerocopy", 0, "zero-copy inbound frame decode from pooled buffers (0 = default on, -1 copies every frame)")
	pooledEncode := flag.Int("pooled-encode", 0, "pooled outbound body encode (0 = default on, -1 allocates per message)")
	gatewayAddr := flag.String("gateway", "", "gateway front-door address: run the session load generator against it instead of direct per-client consensus (empty = direct mode)")
	sessions := flag.Int("sessions", 0, "simulated closed-loop sessions in gateway mode (0 = default 1024)")
	gwBatch := flag.Int("gw-batch", 0, "submits coalesced per session frame in gateway mode (0 = default 64, -1 disables coalescing)")
	gwLinger := flag.Duration("gw-linger", 0, "how long a non-full session frame waits for more submits (0 = default 100µs, negative flushes immediately)")
	flag.Parse()

	if *gatewayAddr != "" {
		return runSessions(sessionConfig{
			addr:     *gatewayAddr,
			sessions: *sessions,
			conns:    *clients,
			batch:    *gwBatch,
			linger:   *gwLinger,
			retry:    *timeout,
			duration: *duration,
			seed:     *seed,
			readFrac: *readFraction,
			scanFrac: *scanFraction,
			scanLen:  *scanLength,
			preset:   *preset,
		})
	}

	proto := clientengine.PBFT
	if *protoName == "zyzzyva" {
		proto = clientengine.Zyzzyva
	} else if *protoName != "pbft" {
		fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *protoName)
		return 2
	}

	addrList := strings.Split(*replicas, ",")
	if len(addrList) != *n {
		fmt.Fprintf(os.Stderr, "-replicas must list exactly %d addresses\n", *n)
		return 2
	}
	addrs := make(map[types.NodeID]string, *n)
	for i, a := range addrList {
		addrs[types.ReplicaNode(types.ReplicaID(i))] = strings.TrimSpace(a)
	}

	var seedBytes [32]byte
	for i := 0; i < 8; i++ {
		seedBytes[i] = byte(*seed >> (8 * i))
	}
	dir, err := crypto.NewDirectory(crypto.Recommended(), seedBytes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()

	var wg sync.WaitGroup
	cls := make([]*cluster.Client, *clients)
	start := time.Now()
	wcfg := workload.Default()
	wcfg.ReadFraction = *readFraction
	wcfg.ScanFraction = *scanFraction
	wcfg.ScanLength = *scanLength
	wcfg.Preset = *preset
	for i := 0; i < *clients; i++ {
		wl, err := workload.New(wcfg, int64(i))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		ep, err := transport.NewTCPWithConfig(transport.TCPConfig{
			Self:       types.ClientNode(types.ClientID(i)),
			ListenAddr: "127.0.0.1:0",
			Addrs:      addrs,
			Inboxes:    1,
			Capacity:   1 << 10,
			BatchMax:   *netBatch,
			Linger:     *netLinger,
			ZeroCopy:   *netZeroCopy >= 0,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer ep.Close()
		for node := range addrs {
			if err := ep.Hello(node); err != nil {
				fmt.Fprintf(os.Stderr, "cannot reach %v: %v\n", node, err)
				return 1
			}
		}
		cl, err := cluster.NewClient(cluster.ClientConfig{
			ID:           types.ClientID(i),
			N:            *n,
			Protocol:     proto,
			Burst:        *burst,
			Timeout:      *timeout,
			Directory:    dir,
			Endpoint:     ep,
			Workload:     wl,
			ReadMode:     *readMode,
			PooledEncode: *pooledEncode,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		cls[i] = cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl.Run(ctx)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var txns, reads, scansN, writes, local, stale, fast, slow, retx uint64
	var latSum time.Duration
	var latN uint64
	var p99, readP50, readP95, scanP50, scanP95, writeP50, writeP95 time.Duration
	for _, cl := range cls {
		s := cl.Stats()
		txns += s.TxnsCompleted
		reads += s.ReadTxns
		scansN += s.ScanTxns
		writes += s.WriteTxns
		local += s.LocalReads
		stale += s.StaleFallbacks
		fast += s.FastPath
		slow += s.SlowPath
		retx += s.Retransmits
		h := cl.Latency()
		latSum += time.Duration(uint64(h.Mean()) * h.Count())
		latN += h.Count()
		if v := h.Percentile(99); v > p99 {
			p99 = v
		}
		if rh := cl.ReadLatency(); rh.Count() > 0 {
			if v := rh.Percentile(50); v > readP50 {
				readP50 = v
			}
			if v := rh.Percentile(95); v > readP95 {
				readP95 = v
			}
		}
		if sh := cl.ScanLatency(); sh.Count() > 0 {
			if v := sh.Percentile(50); v > scanP50 {
				scanP50 = v
			}
			if v := sh.Percentile(95); v > scanP95 {
				scanP95 = v
			}
		}
		if wh := cl.WriteLatency(); wh.Count() > 0 {
			if v := wh.Percentile(50); v > writeP50 {
				writeP50 = v
			}
			if v := wh.Percentile(95); v > writeP95 {
				writeP95 = v
			}
		}
	}
	mean := time.Duration(0)
	if latN > 0 {
		mean = latSum / time.Duration(latN)
	}
	fmt.Printf("txns=%d tput=%.0f txn/s mean=%s p99=%s fast=%d slow=%d retx=%d\n",
		txns, stats.Throughput(txns, elapsed), mean, p99, fast, slow, retx)
	if reads > 0 || scansN > 0 {
		fmt.Printf("reads=%d (p50=%s p95=%s)", reads, readP50, readP95)
		if scansN > 0 {
			fmt.Printf(" scans=%d (p50=%s p95=%s)", scansN, scanP50, scanP95)
		}
		fmt.Printf(" local=%d stale=%d writes=%d (p50=%s p95=%s)\n",
			local, stale, writes, writeP50, writeP95)
	}
	return 0
}

type sessionConfig struct {
	addr            string
	sessions, conns int
	batch           int
	linger, retry   time.Duration
	duration        time.Duration
	seed            int64
	readFrac        float64
	scanFrac        float64
	scanLen         int
	preset          string
}

// runSessions is gateway mode: instead of one consensus engine per
// client, the -sessions population is multiplexed over -clients TCP
// connections to the gateway front door, which batches, signs, and
// submits on the sessions' behalf.
func runSessions(sc sessionConfig) int {
	if sc.sessions == 0 {
		sc.sessions = 1 << 10
	}
	wcfg := workload.Default()
	wcfg.ReadFraction = sc.readFrac
	wcfg.ScanFraction = sc.scanFrac
	wcfg.ScanLength = sc.scanLen
	wcfg.Preset = sc.preset
	cfg := gateway.LoadConfig{
		Sessions:     sc.sessions,
		Conns:        sc.conns,
		Dial:         func() (net.Conn, error) { return net.Dial("tcp", sc.addr) },
		Workload:     wcfg,
		Seed:         sc.seed,
		RetryTimeout: sc.retry,
	}
	if sc.batch < 0 {
		cfg.SubmitBatch = 1
	} else {
		cfg.SubmitBatch = sc.batch
	}
	if sc.linger < 0 {
		cfg.SubmitLinger = time.Nanosecond
	} else {
		cfg.SubmitLinger = sc.linger
	}
	load, err := gateway.NewLoad(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	ctx, cancel := context.WithTimeout(context.Background(), sc.duration)
	defer cancel()
	start := time.Now()
	if err := load.Run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	elapsed := time.Since(start)
	s := load.Stats()
	h := load.Latency()
	fmt.Printf("sessions=%d conns=%d txns=%d tput=%.0f txn/s p50=%s p95=%s p99=%s busy=%d retries=%d rejected=%d\n",
		sc.sessions, sc.conns, s.Completed, stats.Throughput(s.Completed, elapsed),
		h.Percentile(50), h.Percentile(95), h.Percentile(99),
		s.BusyReplies, s.Retries, s.Rejected)
	return 0
}

// Command resdb-node runs one replica of the fabric over TCP.
//
// Every node of a deployment is started with the same -n, -seed, and
// -peers list; key material is derived deterministically from the seed
// (see internal/crypto), standing in for out-of-band provisioning.
//
// The hot-path knobs. The foldable-stage flags (-batch-threads,
// -verify-threads, -execute-shards) follow the cluster-wide convention:
// 0 = the paper's default, -1 = explicitly disabled (fold the stage into
// the worker lanes). -worker-threads is a plain lane count — there is
// always at least one worker lane, so it has no disabled form:
//
//   - -net-batch N: coalesce up to N outbound envelopes per peer into one
//     TCP batch frame (one write syscall for the batch); 1 restores
//     per-envelope frames.
//   - -net-linger D: hold a partial batch up to D waiting for more
//     envelopes; 0 (default) flushes as soon as the outbound queue
//     drains, so idle connections pay no latency.
//   - -batch-threads B: assemble and propose batches on B batch-threads
//     at the primary; -1 folds batch assembly into worker lane 0 (the
//     paper's 0B configuration).
//   - -verify-threads V: verify peer signatures on V parallel workers
//     between the input-threads and the worker lanes; -1 verifies inline
//     on the worker lanes (the paper's baseline assignment).
//   - -worker-threads W: step the consensus engine on W parallel worker
//     lanes routed by sequence number (control traffic stays on lane 0);
//     1 restores the paper's single worker-thread. Zyzzyva always runs a
//     single lane (its speculative history is inherently ordered).
//   - -execute-shards E: apply committed batches on E parallel execution
//     shards, each owning a hash partition of the key space (write-set
//     partitioning keeps parallel execution deterministic; in-order batch
//     retirement preserves batch order). 0 (default) runs the paper's
//     single execute-thread; -1 folds execution into the worker lanes
//     (0E).
//   - -exec-pipeline-depth P: with E > 1, let up to P committed batches
//     be in flight across the execution shards at once (cross-batch
//     pipelining; per-shard FIFO keeps conflicting key partitions in
//     batch order, and ledger appends stay strictly sequential). 1
//     (default) is the strict per-batch barrier.
//   - -store-backend mem|disk|sharded: the record store. mem (default)
//     is the paper's recommended in-memory table; disk is the blocking
//     serial store of the Section 5.7 off-memory experiment; sharded is
//     the group-commit store — one append log per shard, recovered
//     independently after a crash.
//   - -store-dir D: root directory for the disk backends (default
//     resdb-data/replica-<id>).
//   - -store-shards S: append logs for the sharded backend; 0 (default)
//     aligns S with the execution shard count so each execution shard
//     streams its write partition to a private log.
//   - -store-sync D: durability. 0 (default) never fsyncs; with D > 0
//     the sharded backend group-commits on a D fsync linger (writers
//     block until a covering fsync) and the serial disk backend fsyncs
//     every Put.
//   - -store-compact-ratio R: checkpoint-driven log compaction for the
//     disk backends. When a stable checkpoint fires, any shard log whose
//     garbage fraction (dead bytes / total bytes) reaches R is rewritten
//     to live records only. 0 (default) uses the built-in 0.5; negative
//     disables compaction (logs grow with history).
//   - -store-compact-min-bytes B: log size below which compaction never
//     rewrites (rewriting a tiny log cannot pay for its stall). 0
//     (default) uses the built-in 1 MiB; negative removes the floor.
//   - -store-read-index: keep every key's latest value in an in-memory
//     index over the disk backends, so Get — and with it the locally
//     served read path — never touches a shard log or lock. 0 (default)
//     keeps it on; -1 disables it (reads go back through the log, the
//     Section 5.7 blocking contrast). Ignored by the mem backend.
//   - -net-zerocopy: decode inbound TCP frames in place from pooled
//     buffers (Section 4.8 buffer-pool management); each pipeline stage
//     releases its envelope when done and the buffer is reused. 0
//     (default) on, -1 copies every frame (the pre-pooling baseline).
//   - -pooled-encode: marshal outbound bodies into pooled arena buffers
//     recycled after the transport write. 0 (default) on, -1 allocates a
//     fresh body per message (the pre-pooling baseline).
//   - -verify-batch K: let each verify worker drain up to K queued
//     signature checks per wakeup and verify them as one batch (failed
//     batches fall back to per-signature checks for attribution). 0 =
//     default 16, 1 or -1 = per-signature verification.
//   - -pprof-addr ADDR: serve net/http/pprof on ADDR (e.g.
//     127.0.0.1:6060) and add heap/GC deltas to the stats tick; empty
//     (default) disables profiling entirely.
//
// Example 4-replica deployment on one machine:
//
//	resdb-node -id 0 -n 4 -listen 127.0.0.1:7000 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 &
//	resdb-node -id 1 -n 4 -listen 127.0.0.1:7001 -peers ... &
//	resdb-node -id 2 -n 4 -listen 127.0.0.1:7002 -peers ... &
//	resdb-node -id 3 -n 4 -listen 127.0.0.1:7003 -peers ... &
//	resdb-client -n 4 -replicas 127.0.0.1:7000,...  -clients 16 -duration 10s
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only with -pprof-addr
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"resilientdb/internal/chaos"
	"resilientdb/internal/crypto"
	"resilientdb/internal/replica"
	"resilientdb/internal/store"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
)

func main() {
	os.Exit(run())
}

// knob maps the cluster-wide flag convention (0 = default, -1 =
// explicitly disabled) onto the raw thread/shard count replica.Config
// takes (where 0 folds the stage into the worker).
func knob(v, def int) int {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 0
	}
	return v
}

// buildStore constructs the record store selected by -store-backend via
// the shared store.OpenBackend (the same constructor the in-process
// cluster uses, so backend semantics cannot drift between deployments).
func buildStore(backend, dir string, id, shards, execThreads int, syncLinger time.Duration, compactRatio float64, compactMinBytes int64, readIndex bool) (store.Store, error) {
	if dir == "" {
		dir = filepath.Join("resdb-data", fmt.Sprintf("replica-%d", id))
	}
	return store.OpenBackend(store.BackendConfig{
		Backend:         backend,
		Dir:             dir,
		Shards:          shards,
		ExecShards:      execThreads,
		SyncLinger:      syncLinger,
		CompactRatio:    compactRatio,
		CompactMinBytes: compactMinBytes,
		ReadIndex:       readIndex,
	})
}

func run() int {
	id := flag.Int("id", 0, "replica identifier (0..n-1)")
	n := flag.Int("n", 4, "number of replicas")
	listen := flag.String("listen", "127.0.0.1:7000", "listen address")
	peers := flag.String("peers", "", "comma-separated replica addresses, index = id")
	protoName := flag.String("protocol", "pbft", "pbft | zyzzyva")
	batch := flag.Int("batch", 100, "transactions per consensus batch")
	batchThreads := flag.Int("batch-threads", 0, "batch-threads B (0 = default 2, -1 folds batching into the worker lanes)")
	execShards := flag.Int("execute-shards", 0, "execution shards E (0 = default single execute-thread, -1 folds execution into the worker lanes, E > 1 = parallel write-set-partitioned shards)")
	execDepth := flag.Int("exec-pipeline-depth", 1, "cross-batch execution pipelining depth P (1 = strict per-batch barrier; P > 1 overlaps up to P batches across the execution shards)")
	storeBackend := flag.String("store-backend", "mem", "record store: mem | disk (serial blocking log) | sharded (group-commit, one log per shard)")
	storeDir := flag.String("store-dir", "", "root directory for disk-backed stores (default resdb-data/replica-<id>)")
	storeShards := flag.Int("store-shards", 0, "append logs for the sharded store backend (0 aligns with the execution shard count)")
	storeSync := flag.Duration("store-sync", 0, "fsync policy: 0 never fsyncs; >0 group-commits the sharded store on this linger (serial disk backend fsyncs every Put)")
	storeCompactRatio := flag.Float64("store-compact-ratio", 0, "garbage ratio (dead/total log bytes) past which a stable checkpoint compacts a shard log (0 = default 0.5, negative disables compaction)")
	storeCompactMin := flag.Int64("store-compact-min-bytes", 0, "log size below which checkpoint-driven compaction never rewrites (0 = default 1 MiB, negative removes the floor)")
	storeReadIndex := flag.Int("store-read-index", 0, "in-memory read index over the disk backends so local reads never touch a shard log or lock (0 = default on, -1 disables)")
	verifyThreads := flag.Int("verify-threads", 0, "parallel signature-verification workers (0 = default 2, -1 verifies inline on the worker lanes)")
	workerThreads := flag.Int("worker-threads", 1, "parallel consensus worker lanes (1 = the paper's single worker-thread)")
	netBatch := flag.Int("net-batch", transport.DefaultBatchMax, "max envelopes per TCP batch frame (1 disables transport batching)")
	netLinger := flag.Duration("net-linger", 0, "how long a partial TCP batch waits for more envelopes before flushing (0 flushes when the queue drains)")
	netZeroCopy := flag.Int("net-zerocopy", 0, "zero-copy inbound frame decode from pooled buffers (0 = default on, -1 copies every frame)")
	pooledEncode := flag.Int("pooled-encode", 0, "pooled outbound body encode (0 = default on, -1 allocates per message)")
	verifyBatch := flag.Int("verify-batch", 0, "signature checks drained per verify-worker wakeup (0 = default 16, 1 or -1 = per-signature)")
	chaosSpec := flag.String("chaos", "", "fault-injection spec for this replica's outbound traffic: drop=P,dup=P,corrupt=P,delay=D,reorder=D,byz=mode@replica,seed=N (empty disables; see internal/chaos)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address and report heap/GC deltas in the stats tick (empty disables)")
	seed := flag.Int64("seed", 1, "shared key-derivation seed")
	statsEvery := flag.Duration("stats", 5*time.Second, "stats print interval")
	flag.Parse()

	proto := replica.PBFT
	if *protoName == "zyzzyva" {
		proto = replica.Zyzzyva
	} else if *protoName != "pbft" {
		fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *protoName)
		return 2
	}

	addrList := strings.Split(*peers, ",")
	if len(addrList) != *n {
		fmt.Fprintf(os.Stderr, "-peers must list exactly %d addresses\n", *n)
		return 2
	}
	addrs := make(map[types.NodeID]string, *n)
	for i, a := range addrList {
		addrs[types.ReplicaNode(types.ReplicaID(i))] = strings.TrimSpace(a)
	}

	var seedBytes [32]byte
	for i := 0; i < 8; i++ {
		seedBytes[i] = byte(*seed >> (8 * i))
	}
	dir, err := crypto.NewDirectory(crypto.Recommended(), seedBytes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	ep, err := transport.NewTCPWithConfig(transport.TCPConfig{
		Self:       types.ReplicaNode(types.ReplicaID(*id)),
		ListenAddr: *listen,
		Addrs:      addrs,
		Inboxes:    3,
		Capacity:   1 << 13,
		BatchMax:   *netBatch,
		Linger:     *netLinger,
		ZeroCopy:   *netZeroCopy >= 0,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	// The chaos fabric wraps only the endpoint handed to the replica, so
	// ep stays typed *transport.TCP for Addr and the frame-pool stats.
	repEP := transport.Endpoint(ep)
	if *chaosSpec != "" {
		spec, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		repEP = spec.Fabric().WrapEndpoint(types.ReplicaID(*id), repEP, dir)
	}

	execThreads := knob(*execShards, 1)
	st, err := buildStore(*storeBackend, *storeDir, *id, *storeShards, execThreads, *storeSync, *storeCompactRatio, *storeCompactMin, *storeReadIndex >= 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer st.Close()

	rep, err := replica.New(replica.Config{
		ID:                types.ReplicaID(*id),
		N:                 *n,
		Protocol:          proto,
		BatchSize:         *batch,
		BatchThreads:      knob(*batchThreads, 2),
		ExecuteThreads:    execThreads,
		ExecPipelineDepth: *execDepth,
		VerifyThreads:     knob(*verifyThreads, 2),
		WorkerThreads:     *workerThreads,
		VerifyBatch:       *verifyBatch,
		PooledEncode:      *pooledEncode,
		Store:             st,
		Directory:         dir,
		Endpoint:          repEP,
		VerifyClientSigs:  true,
		ViewTimeout:       2 * time.Second,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	rep.Start()
	fmt.Printf("replica %d/%d (%s) listening on %s\n", *id, *n, proto, ep.Addr())

	profiling := *pprofAddr != ""
	if profiling {
		// DefaultServeMux carries the net/http/pprof handlers via the
		// blank import; nothing else registers on it.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
			}
		}()
		fmt.Printf("pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*statsEvery)
	defer tick.Stop()
	var last uint64
	var lastMem runtime.MemStats
	if profiling {
		runtime.ReadMemStats(&lastMem)
	}
	for {
		select {
		case <-stop:
			rep.Stop()
			s := rep.Stats()
			fmt.Printf("final: txns=%d batches=%d reads=%d localreads=%d height=%d view=%d drops=%d fsyncs=%d fsync-stall=%s compactions=%d reclaimed=%dB\n",
				s.TxnsExecuted, s.BatchesExecuted, s.ReadsExecuted, s.LocalReads,
				s.LedgerHeight, s.View, s.NetDrops,
				s.StoreFsyncs, time.Duration(s.StoreFsyncStallNS),
				s.StoreCompactions, s.StoreCompactReclaimedBytes)
			if profiling {
				hits, misses := ep.FramePoolStats()
				fmt.Printf("final-mem: framepool-hits=%d framepool-misses=%d encpool-hits=%d encpool-misses=%d verify-batched=%d\n",
					hits, misses, s.EncodePoolHits, s.EncodePoolMisses, s.VerifyBatched)
			}
			return 0
		case <-tick.C:
			s := rep.Stats()
			line := fmt.Sprintf("txns=%d (+%d) height=%d view=%d in=%d out=%d authfail=%d drops=%d compactions=%d",
				s.TxnsExecuted, s.TxnsExecuted-last, s.LedgerHeight, s.View,
				s.MsgsIn, s.MsgsOut, s.AuthFailures, s.NetDrops, s.StoreCompactions)
			if profiling {
				// Heap and GC deltas since the previous tick: together with
				// the pool counters these are the live view of what the
				// zero-copy path saves (allocation pressure, pause time).
				var m runtime.MemStats
				runtime.ReadMemStats(&m)
				hits, misses := ep.FramePoolStats()
				line += fmt.Sprintf(" heap=%dKiB gc=+%d pause=+%s framepool=%d/%d encpool=%d/%d verify-batched=%d",
					m.HeapAlloc>>10, m.NumGC-lastMem.NumGC,
					time.Duration(m.PauseTotalNs-lastMem.PauseTotalNs),
					hits, hits+misses, s.EncodePoolHits, s.EncodePoolHits+s.EncodePoolMisses,
					s.VerifyBatched)
				// Pipeline queue depths and the saturation gauge the replica
				// piggybacks on its responses (what gateway admission sees).
				line += fmt.Sprintf(" queues=in:%d/%d,batch:%d/%d,work:%d/%d,exec:%d/%d,out:%d/%d busy=%d",
					s.InputQueueDepth, s.InputQueueCap, s.BatchQueueDepth, s.BatchQueueCap,
					s.WorkQueueDepth, s.WorkQueueCap, s.ExecBacklog, s.ExecWindow,
					s.OutQueueDepth, s.OutQueueCap, s.BusyGauge)
				lastMem = m
			}
			fmt.Println(line)
			last = s.TxnsExecuted
		}
	}
}

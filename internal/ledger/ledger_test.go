package ledger

import (
	"errors"
	"testing"

	"resilientdb/internal/crypto"
	"resilientdb/internal/types"
)

func genesisSeed() types.Digest { return crypto.Hash256([]byte("primary-0")) }

func proof(n int) []types.CommitSig {
	sigs := make([]types.CommitSig, n)
	for i := range sigs {
		sigs[i] = types.CommitSig{Replica: types.ReplicaID(i), Auth: []byte{byte(i)}}
	}
	return sigs
}

func appendN(t *testing.T, l *Ledger, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		d := crypto.Hash256([]byte{byte(i)})
		if _, err := l.Append(types.SeqNum(i), 0, d, proof(3), 100); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
}

func TestGenesis(t *testing.T) {
	l := New(HashChain, genesisSeed(), 3)
	head := l.Head()
	if head.Height != 0 || head.Seq != 0 {
		t.Fatalf("genesis = %+v", head)
	}
	if head.Digest != genesisSeed() {
		t.Fatal("genesis does not carry the primary seed")
	}
	if l.Height() != 0 {
		t.Fatalf("Height = %d", l.Height())
	}
}

func TestAppendLinksHashChain(t *testing.T) {
	l := New(HashChain, genesisSeed(), 3)
	appendN(t, l, 5)
	if l.Height() != 5 {
		t.Fatalf("Height = %d, want 5", l.Height())
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Each block's PrevHash equals the previous block's hash.
	for h := uint64(1); h <= 5; h++ {
		cur, err := l.Get(h)
		if err != nil {
			t.Fatal(err)
		}
		prev, err := l.Get(h - 1)
		if err != nil {
			t.Fatal(err)
		}
		if cur.PrevHash != prev.Hash() {
			t.Fatalf("link broken at height %d", h)
		}
	}
}

func TestAppendRejectsGaps(t *testing.T) {
	l := New(HashChain, genesisSeed(), 3)
	if _, err := l.Append(2, 0, types.Digest{1}, nil, 1); !errors.Is(err, ErrGap) {
		t.Fatalf("gap append = %v, want ErrGap", err)
	}
	if _, err := l.Append(1, 0, types.Digest{1}, nil, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, 0, types.Digest{1}, nil, 1); !errors.Is(err, ErrGap) {
		t.Fatalf("duplicate append = %v, want ErrGap", err)
	}
}

func TestCommitCertificateMode(t *testing.T) {
	l := New(CommitCertificate, genesisSeed(), 3)
	if _, err := l.Append(1, 0, types.Digest{1}, proof(2), 1); !errors.Is(err, ErrMissingProof) {
		t.Fatalf("under-quorum append = %v, want ErrMissingProof", err)
	}
	b, err := l.Append(1, 0, types.Digest{1}, proof(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.CommitProof) != 3 {
		t.Fatalf("CommitProof = %d sigs", len(b.CommitProof))
	}
	if b.PrevHash != (types.Digest{}) {
		t.Fatal("CommitCertificate mode computed a prev hash")
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDetectsTampering(t *testing.T) {
	l := New(HashChain, genesisSeed(), 3)
	appendN(t, l, 5)
	// Tamper with a middle block's digest.
	l.mu.Lock()
	l.blocks[3].Digest[0] ^= 0xFF
	l.mu.Unlock()
	if err := l.Validate(); !errors.Is(err, ErrBrokenChain) {
		t.Fatalf("Validate after tamper = %v, want ErrBrokenChain", err)
	}
}

func TestValidateDetectsDuplicateSigners(t *testing.T) {
	l := New(CommitCertificate, genesisSeed(), 3)
	bad := []types.CommitSig{{Replica: 1}, {Replica: 1}, {Replica: 2}}
	if _, err := l.Append(1, 0, types.Digest{1}, bad, 1); err != nil {
		t.Fatal(err) // Append only checks count; Validate checks identity
	}
	if err := l.Validate(); !errors.Is(err, ErrMissingProof) {
		t.Fatalf("Validate = %v, want ErrMissingProof for duplicate signer", err)
	}
}

func TestPrune(t *testing.T) {
	l := New(HashChain, genesisSeed(), 3)
	appendN(t, l, 10)
	l.Prune(7)
	if _, err := l.Get(6); !errors.Is(err, ErrPruned) {
		t.Fatalf("Get(6) after prune = %v, want ErrPruned", err)
	}
	b, err := l.Get(7)
	if err != nil || b.Height != 7 {
		t.Fatalf("Get(7) = (%+v, %v)", b, err)
	}
	if l.Height() != 10 {
		t.Fatalf("Height = %d, want 10", l.Height())
	}
	// Chain remains appendable and validatable after pruning.
	if _, err := l.Append(11, 0, types.Digest{11}, proof(3), 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// Pruning beyond the head clamps to the head.
	l.Prune(99)
	if l.Head().Height != 11 {
		t.Fatal("head lost by over-pruning")
	}
}

func TestBlocksSince(t *testing.T) {
	l := New(HashChain, genesisSeed(), 3)
	appendN(t, l, 5)
	got := l.BlocksSince(3)
	if len(got) != 2 || got[0].Height != 4 || got[1].Height != 5 {
		t.Fatalf("BlocksSince(3) = %+v", got)
	}
	if got := l.BlocksSince(5); len(got) != 0 {
		t.Fatalf("BlocksSince(5) = %d blocks", len(got))
	}
}

func TestRange(t *testing.T) {
	l := New(HashChain, genesisSeed(), 3)
	appendN(t, l, 5)
	var heights []uint64
	l.Range(2, func(b types.Block) bool {
		heights = append(heights, b.Height)
		return b.Height < 4 // stop after 4
	})
	if len(heights) != 3 || heights[0] != 2 || heights[2] != 4 {
		t.Fatalf("Range visited %v", heights)
	}
}

// TestRangeBoundaries pins Range's edge behaviour: from 0 starts at the
// genesis block, from beyond the head visits nothing, and after pruning a
// from inside the pruned prefix silently starts at the retained base
// (pruned blocks are gone, not an error).
func TestRangeBoundaries(t *testing.T) {
	l := New(HashChain, genesisSeed(), 3)
	appendN(t, l, 6)

	var heights []uint64
	l.Range(0, func(b types.Block) bool {
		heights = append(heights, b.Height)
		return true
	})
	if len(heights) != 7 || heights[0] != 0 || heights[6] != 6 {
		t.Fatalf("Range(0) visited %v, want genesis through head", heights)
	}

	visited := false
	l.Range(7, func(types.Block) bool { visited = true; return true })
	if visited {
		t.Fatal("Range beyond the head visited a block")
	}

	l.Prune(4)
	heights = nil
	l.Range(1, func(b types.Block) bool {
		heights = append(heights, b.Height)
		return true
	})
	if len(heights) != 3 || heights[0] != 4 || heights[2] != 6 {
		t.Fatalf("Range(1) after Prune(4) visited %v, want [4 5 6]", heights)
	}

	// Early stop on the very first retained block.
	n := 0
	l.Range(0, func(types.Block) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Range visited %d blocks after fn returned false", n)
	}
}

// TestBlocksSinceBoundaries pins BlocksSince's edges: after 0 returns the
// whole retained chain minus genesis, after ≥ head returns nil, and a
// lagging replica asking from inside the pruned prefix gets only the
// retained suffix — the caller must detect the gap, BlocksSince does not.
func TestBlocksSinceBoundaries(t *testing.T) {
	l := New(HashChain, genesisSeed(), 3)
	appendN(t, l, 6)

	got := l.BlocksSince(0)
	if len(got) != 6 || got[0].Height != 1 || got[5].Height != 6 {
		t.Fatalf("BlocksSince(0) = %d blocks [%v..], want 1..6", len(got), got[0].Height)
	}
	if got := l.BlocksSince(6); got != nil {
		t.Fatalf("BlocksSince(head) = %+v, want nil", got)
	}
	if got := l.BlocksSince(99); got != nil {
		t.Fatalf("BlocksSince beyond head = %+v, want nil", got)
	}

	l.Prune(4)
	got = l.BlocksSince(1)
	if len(got) != 3 || got[0].Height != 4 {
		t.Fatalf("BlocksSince(1) after Prune(4) = %d blocks starting at %d, want 3 starting at 4",
			len(got), got[0].Height)
	}
	// The boundary just below the base behaves like the base itself.
	if got := l.BlocksSince(3); len(got) != 3 {
		t.Fatalf("BlocksSince(base-1) = %d blocks, want 3", len(got))
	}
	if got := l.BlocksSince(4); len(got) != 2 || got[0].Height != 5 {
		t.Fatalf("BlocksSince(base) = %+v, want [5 6]", got)
	}
}

func TestStateDigestTracksHead(t *testing.T) {
	l := New(HashChain, genesisSeed(), 3)
	d0 := l.StateDigest()
	appendN(t, l, 1)
	d1 := l.StateDigest()
	if d0 == d1 {
		t.Fatal("StateDigest did not change after append")
	}
	// Two ledgers with identical history agree.
	l2 := New(HashChain, genesisSeed(), 3)
	d := crypto.Hash256([]byte{1})
	if _, err := l2.Append(1, 0, d, proof(3), 100); err != nil {
		t.Fatal(err)
	}
	if l2.StateDigest() != d1 {
		t.Fatal("identical histories produced different state digests")
	}
}

func TestVerifyChainEquality(t *testing.T) {
	a := New(HashChain, genesisSeed(), 3)
	b := New(HashChain, genesisSeed(), 3)
	appendN(t, a, 5)
	appendN(t, b, 3) // shorter but consistent prefix
	if err := VerifyChainEquality(a, b); err != nil {
		t.Fatalf("consistent prefixes reported divergent: %v", err)
	}
	// Diverge b at height 4.
	if _, err := b.Append(4, 0, types.Digest{0xFF}, proof(3), 1); err != nil {
		t.Fatal(err)
	}
	if err := VerifyChainEquality(a, b); err == nil {
		t.Fatal("divergence not detected")
	}
}

func BenchmarkLedgerAppendHashChain(b *testing.B) {
	l := New(HashChain, genesisSeed(), 3)
	d := crypto.Hash256([]byte("batch"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(types.SeqNum(i+1), 0, d, nil, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLedgerAppendCommitCert vs BenchmarkLedgerAppendHashChain is the
// Section 4.6 block-linkage ablation: embedding the already-collected
// commit certificate avoids hashing the previous block per append.
func BenchmarkLedgerAppendCommitCert(b *testing.B) {
	l := New(CommitCertificate, genesisSeed(), 3)
	d := crypto.Hash256([]byte("batch"))
	p := proof(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(types.SeqNum(i+1), 0, d, p, 100); err != nil {
			b.Fatal(err)
		}
	}
}

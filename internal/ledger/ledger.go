// Package ledger maintains the immutable blockchain of Section 2.2: each
// replica independently appends one block per executed batch, starting
// from a genesis block holding dummy data (the hash of the first primary's
// identifier).
//
// Two linkage modes implement the Section 4.6 "Block Generation" insight:
// traditional hash-chain linkage computes H(B_{i-1}) on the critical path,
// while commit-certificate linkage instead embeds the 2f+1 commit
// authenticators that already prove the order, avoiding the extra hash.
package ledger

import (
	"errors"
	"fmt"
	"sync"

	"resilientdb/internal/types"
)

// Mode selects how consecutive blocks are linked.
type Mode int

// Linkage modes.
const (
	// HashChain embeds H(B_{i-1}) in every block (Section 2.2).
	HashChain Mode = iota + 1
	// CommitCertificate embeds the 2f+1 commit signatures collected during
	// consensus instead of hashing the previous block (Section 4.6).
	CommitCertificate
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case HashChain:
		return "hash-chain"
	case CommitCertificate:
		return "commit-certificate"
	default:
		return "invalid"
	}
}

// Errors reported by Append and Validate.
var (
	ErrGap           = errors.New("ledger: non-consecutive height")
	ErrBrokenChain   = errors.New("ledger: hash chain broken")
	ErrMissingProof  = errors.New("ledger: commit certificate below quorum")
	ErrPruned        = errors.New("ledger: block pruned")
	ErrBadGenesis    = errors.New("ledger: corrupt genesis block")
	errUnknownHeight = errors.New("ledger: unknown height")
)

// Ledger is one replica's copy of the blockchain. It is safe for
// concurrent use; in the pipeline only the execute-thread appends, while
// the checkpoint-thread reads and prunes.
type Ledger struct {
	mode   Mode
	quorum int // commit signatures required in CommitCertificate mode

	mu     sync.RWMutex
	blocks []types.Block // blocks[i] has Height = base+i
	base   uint64        // height of blocks[0]
}

// New creates a Ledger seeded with the genesis block. primarySeed is the
// dummy data stored in the genesis block, conventionally the hash of the
// first primary's identifier H(P). quorum is the commit-certificate size
// to enforce (2f+1); it is ignored in HashChain mode.
func New(mode Mode, primarySeed types.Digest, quorum int) *Ledger {
	genesis := types.Block{
		Height: 0,
		Seq:    0,
		View:   0,
		Digest: primarySeed,
	}
	return &Ledger{
		mode:   mode,
		quorum: quorum,
		blocks: []types.Block{genesis},
	}
}

// NewFromBlocks creates a Ledger resuming from a snapshot of retained
// blocks, as returned by Blocks() on a live replica. It is the restart
// path: a recovering replica seeds its chain from a peer's retained tail
// (the stable checkpoint licenses everything before it, exactly as a
// pruned ledger would) and appends from the snapshot head onward. The
// snapshot must be non-empty and contiguous; it is copied, not aliased.
func NewFromBlocks(mode Mode, blocks []types.Block, quorum int) (*Ledger, error) {
	if len(blocks) == 0 {
		return nil, errors.New("ledger: empty block snapshot")
	}
	for i := 1; i < len(blocks); i++ {
		if blocks[i].Height != blocks[i-1].Height+1 {
			return nil, fmt.Errorf("%w: snapshot height %d follows %d", ErrGap, blocks[i].Height, blocks[i-1].Height)
		}
	}
	own := make([]types.Block, len(blocks))
	copy(own, blocks)
	return &Ledger{
		mode:   mode,
		quorum: quorum,
		blocks: own,
		base:   own[0].Height,
	}, nil
}

// Mode returns the linkage mode.
func (l *Ledger) Mode() Mode { return l.mode }

// Head returns the most recently appended block.
func (l *Ledger) Head() types.Block {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.blocks[len(l.blocks)-1]
}

// Height returns the height of the head block.
func (l *Ledger) Height() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.base + uint64(len(l.blocks)) - 1
}

// Append creates, links, and appends the block for an executed batch and
// returns it. Blocks must be appended in execution order: seq must be
// exactly one above the current head's height. In CommitCertificate mode
// the proof must carry at least quorum signatures.
func (l *Ledger) Append(seq types.SeqNum, view types.View, digest types.Digest, proof []types.CommitSig, txnCount uint32) (types.Block, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	head := l.blocks[len(l.blocks)-1]
	if uint64(seq) != head.Height+1 {
		return types.Block{}, fmt.Errorf("%w: appending seq %d after height %d", ErrGap, seq, head.Height)
	}
	b := types.Block{
		Height:   uint64(seq),
		Seq:      seq,
		View:     view,
		Digest:   digest,
		TxnCount: txnCount,
	}
	switch l.mode {
	case HashChain:
		b.PrevHash = head.Hash()
	case CommitCertificate:
		if len(proof) < l.quorum {
			return types.Block{}, fmt.Errorf("%w: %d < %d", ErrMissingProof, len(proof), l.quorum)
		}
		b.CommitProof = proof
	}
	l.blocks = append(l.blocks, b)
	return b, nil
}

// Get returns the block at the given height.
func (l *Ledger) Get(height uint64) (types.Block, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if height < l.base {
		return types.Block{}, fmt.Errorf("%w: height %d", ErrPruned, height)
	}
	idx := height - l.base
	if idx >= uint64(len(l.blocks)) {
		return types.Block{}, fmt.Errorf("%w: %d", errUnknownHeight, height)
	}
	return l.blocks[idx], nil
}

// Range calls fn for every retained block from height from upward, in
// order, stopping early if fn returns false.
func (l *Ledger) Range(from uint64, fn func(types.Block) bool) {
	l.mu.RLock()
	snapshot := l.blocks
	base := l.base
	l.mu.RUnlock()
	for i := range snapshot {
		if base+uint64(i) < from {
			continue
		}
		if !fn(snapshot[i]) {
			return
		}
	}
}

// Blocks returns a copy of all retained blocks in order.
func (l *Ledger) Blocks() []types.Block {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]types.Block, len(l.blocks))
	copy(out, l.blocks)
	return out
}

// BlocksSince returns copies of the retained blocks with height > after.
// Checkpoint messages carry these to lagging replicas (Section 4.7).
func (l *Ledger) BlocksSince(after uint64) []types.Block {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []types.Block
	for i := range l.blocks {
		if l.base+uint64(i) > after {
			out = append(out, l.blocks[i])
		}
	}
	return out
}

// Prune discards all blocks with height strictly below keepFrom, the
// garbage collection a stable checkpoint enables (Section 4.7). The head
// block is always retained.
func (l *Ledger) Prune(keepFrom uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	headHeight := l.base + uint64(len(l.blocks)) - 1
	if keepFrom > headHeight {
		keepFrom = headHeight
	}
	if keepFrom <= l.base {
		return
	}
	drop := keepFrom - l.base
	remaining := make([]types.Block, len(l.blocks)-int(drop))
	copy(remaining, l.blocks[drop:])
	l.blocks = remaining
	l.base = keepFrom
}

// StateDigest summarizes the chain head for checkpoint messages: replicas
// that executed the same prefix produce the same digest.
func (l *Ledger) StateDigest() types.Digest {
	h := l.Head()
	return h.Hash()
}

// Validate walks the retained chain and checks every link: consecutive
// heights, intact hash chain (HashChain mode), and quorum-sized commit
// certificates (CommitCertificate mode). The genesis block is exempt from
// proof checks when it is still retained.
func (l *Ledger) Validate() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for i := 1; i < len(l.blocks); i++ {
		prev, cur := &l.blocks[i-1], &l.blocks[i]
		if cur.Height != prev.Height+1 {
			return fmt.Errorf("%w: %d follows %d", ErrGap, cur.Height, prev.Height)
		}
		switch l.mode {
		case HashChain:
			if cur.PrevHash != prev.Hash() {
				return fmt.Errorf("%w: at height %d", ErrBrokenChain, cur.Height)
			}
		case CommitCertificate:
			if len(cur.CommitProof) < l.quorum {
				return fmt.Errorf("%w: at height %d", ErrMissingProof, cur.Height)
			}
			seen := make(map[types.ReplicaID]bool, len(cur.CommitProof))
			for _, sig := range cur.CommitProof {
				if seen[sig.Replica] {
					return fmt.Errorf("%w: duplicate signer %d at height %d", ErrMissingProof, sig.Replica, cur.Height)
				}
				seen[sig.Replica] = true
			}
		}
	}
	return nil
}

// VerifyChainEquality reports whether two ledgers agree on every height
// both retain: same batch digests, views, and transaction counts. It is
// the cross-replica safety check used by integration tests.
func VerifyChainEquality(a, b *Ledger) error {
	ha, hb := a.Height(), b.Height()
	limit := ha
	if hb < limit {
		limit = hb
	}
	for h := uint64(1); h <= limit; h++ {
		ba, errA := a.Get(h)
		bb, errB := b.Get(h)
		if errors.Is(errA, ErrPruned) || errors.Is(errB, ErrPruned) {
			continue
		}
		if errA != nil || errB != nil {
			return fmt.Errorf("ledger: fetching height %d: %v / %v", h, errA, errB)
		}
		if ba.Digest != bb.Digest || ba.Seq != bb.Seq || ba.TxnCount != bb.TxnCount {
			return fmt.Errorf("ledger: divergence at height %d: %x vs %x", h, ba.Digest[:4], bb.Digest[:4])
		}
	}
	return nil
}

//go:build !race

package types

const raceEnabled = false

package types

import (
	"bytes"
	"reflect"
	"testing"
)

// v1TxnBytes hand-encodes a transaction in the pre-typed (v1) wire layout:
// no kind bytes, the op count word carries a bare count. These are the
// exact bytes every peer emitted before OpKind existed.
func v1TxnBytes(w *Writer, t *Transaction) {
	w.U32(uint32(t.Client))
	w.U64(t.ClientSeq)
	w.U32(uint32(len(t.Ops)))
	for i := range t.Ops {
		w.U64(t.Ops[i].Key)
		w.Blob(t.Ops[i].Value)
	}
	w.Blob(t.Payload)
}

// TestV1GoldenBytesDecode: a write-only request encoded by the v1 layout
// must decode to the same value under the typed-op decoder, and re-encode
// to the identical bytes — nothing about pre-read frames (or the digests
// derived from them) may shift.
func TestV1GoldenBytesDecode(t *testing.T) {
	req := sampleRequest(3)
	var w Writer
	w.U32(uint32(req.Client))
	w.U64(req.FirstSeq)
	w.U32(uint32(len(req.Txns)))
	for i := range req.Txns {
		v1TxnBytes(&w, &req.Txns[i])
	}
	w.Blob(req.Sig)
	golden := append([]byte(nil), w.Bytes()...)

	var got ClientRequest
	r := NewReader(golden)
	got.unmarshal(r)
	if err := r.Err(); err != nil {
		t.Fatalf("decoding v1 bytes: %v", err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("v1 decode left %d bytes", r.Remaining())
	}
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("v1 decode mismatch:\n got %#v\nwant %#v", got, req)
	}
	w.Reset()
	got.marshal(&w)
	if !bytes.Equal(w.Bytes(), golden) {
		t.Fatal("write-only request re-encodes differently from its v1 bytes")
	}
	if got.Size() != len(golden) {
		t.Fatalf("Size() = %d, v1 bytes = %d", got.Size(), len(golden))
	}
}

// TestWriteOnlyEncodingIsV1: the encoder must emit exact v1 bytes for
// write-only transactions — the typed bit appears only when a non-write op
// is present — so BatchDigest and SigningBytes of pure-write traffic are
// byte-stable across the upgrade.
func TestWriteOnlyEncodingIsV1(t *testing.T) {
	txn := sampleTxn(5)
	var typed, v1 Writer
	marshalTxn(&typed, &txn)
	v1TxnBytes(&v1, &txn)
	if !bytes.Equal(typed.Bytes(), v1.Bytes()) {
		t.Fatal("write-only transaction does not encode to v1 bytes")
	}

	withRead := txn
	withRead.Ops = append([]Op{{Kind: OpRead, Key: 99}}, txn.Ops...)
	typed.Reset()
	marshalTxn(&typed, &withRead)
	count := uint32(typed.Bytes()[12])<<24 | uint32(typed.Bytes()[13])<<16 |
		uint32(typed.Bytes()[14])<<8 | uint32(typed.Bytes()[15])
	if count&opsTypedBit == 0 {
		t.Fatal("read-bearing transaction did not set the typed-ops bit")
	}
	if int(count&^opsTypedBit) != len(withRead.Ops) {
		t.Fatalf("typed op count = %d, want %d", count&^opsTypedBit, len(withRead.Ops))
	}
}

// TestTypedTxnRoundTripAndSize: transactions carrying reads survive a
// round trip with kinds intact, and Size() tracks the typed encoding's
// extra kind byte per op.
func TestTypedTxnRoundTripAndSize(t *testing.T) {
	txn := Transaction{
		Client:    7,
		ClientSeq: 42,
		Ops: []Op{
			{Kind: OpRead, Key: 11},
			{Kind: OpWrite, Key: 12, Value: []byte("w")},
			{Kind: OpRead, Key: 13},
		},
		Payload: []byte{1, 2},
	}
	var w Writer
	marshalTxn(&w, &txn)
	if w.Len() != txn.Size() {
		t.Fatalf("typed Size() = %d, encoded = %d", txn.Size(), w.Len())
	}
	var got Transaction
	r := NewReader(w.Bytes())
	unmarshalTxn(r, &got)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	// Blob() decodes empty values as empty (not nil) slices; compare via
	// re-encoding, which flattens that distinction.
	var w2 Writer
	marshalTxn(&w2, &got)
	if !bytes.Equal(w2.Bytes(), w.Bytes()) {
		t.Fatalf("typed round trip mismatch:\n got %#v\nwant %#v", got, txn)
	}
	for i := range got.Ops {
		if got.Ops[i].Kind != txn.Ops[i].Kind || got.Ops[i].Key != txn.Ops[i].Key {
			t.Fatalf("op %d: got kind=%d key=%d", i, got.Ops[i].Kind, got.Ops[i].Key)
		}
	}

	req := ClientRequest{Client: 7, FirstSeq: 42, Txns: []Transaction{txn}, Sig: []byte("s")}
	w.Reset()
	req.marshal(&w)
	if w.Len() != req.Size() {
		t.Fatalf("request Size() = %d, encoded = %d", req.Size(), w.Len())
	}
}

// TestTypedTxnHostileCount: a typed op-count word declaring 2^31-1 ops
// must fail fast, exactly like the v1 hostile-count guard.
func TestTypedTxnHostileCount(t *testing.T) {
	var w Writer
	w.U32(1)                          // client
	w.U64(1)                          // client seq
	w.U32(uint32(opsTypedBit | 0xFF)) // hostile typed count, no op bytes
	var got Transaction
	r := NewReader(w.Bytes())
	unmarshalTxn(r, &got)
	if r.Err() == nil {
		t.Fatal("typed decoder accepted hostile op count")
	}
}

// preScanV2TxnBytes hand-encodes a typed transaction in the pre-scan (v2)
// wire layout: typed bit set, [u8 kind][u64 key][blob value] per op with
// no scan bounds anywhere. These are the exact bytes read-bearing peers
// emitted before OpScan existed.
func preScanV2TxnBytes(w *Writer, t *Transaction) {
	w.U32(uint32(t.Client))
	w.U64(t.ClientSeq)
	w.U32(uint32(len(t.Ops)) | opsTypedBit)
	for i := range t.Ops {
		w.U8(uint8(t.Ops[i].Kind))
		w.U64(t.Ops[i].Key)
		w.Blob(t.Ops[i].Value)
	}
	w.Blob(t.Payload)
}

// TestPreScanV2GoldenBytesDecode: a read-bearing (but scan-free) typed
// transaction encoded by the pre-scan v2 layout must decode to the same
// value and re-encode to identical bytes — the scan arm rides only on
// kind 2 ops, so the v2 golden bytes may not shift.
func TestPreScanV2GoldenBytesDecode(t *testing.T) {
	txn := Transaction{
		Client:    9,
		ClientSeq: 77,
		Ops: []Op{
			{Kind: OpRead, Key: 4},
			{Kind: OpWrite, Key: 5, Value: []byte("five")},
		},
		Payload: []byte{8},
	}
	var w Writer
	preScanV2TxnBytes(&w, &txn)
	golden := append([]byte(nil), w.Bytes()...)

	var got Transaction
	r := NewReader(golden)
	unmarshalTxn(r, &got)
	if err := r.Err(); err != nil {
		t.Fatalf("decoding pre-scan v2 bytes: %v", err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("v2 decode left %d bytes", r.Remaining())
	}
	w.Reset()
	marshalTxn(&w, &got)
	if !bytes.Equal(w.Bytes(), golden) {
		t.Fatal("scan-free typed transaction re-encodes differently from its pre-scan v2 bytes")
	}
	if got.Size() != len(golden) {
		t.Fatalf("Size() = %d, v2 bytes = %d", got.Size(), len(golden))
	}
}

// TestScanTxnRoundTripAndSize: transactions carrying scans survive a
// round trip with bounds intact — hostile bounds included — and Size()
// tracks the 12 extra bytes (end key + limit) each scan op carries.
func TestScanTxnRoundTripAndSize(t *testing.T) {
	txn := Transaction{
		Client:    7,
		ClientSeq: 42,
		Ops: []Op{
			{Kind: OpScan, Key: 10, EndKey: 20, Limit: 5},
			{Kind: OpWrite, Key: 12, Value: []byte("w")},
			{Kind: OpScan, Key: 9, EndKey: 3, Limit: 0},           // inverted, zero limit
			{Kind: OpScan, Key: 0, EndKey: ^uint64(0), Limit: ^uint32(0)}, // saturating
			{Kind: OpRead, Key: 13},
		},
		Payload: []byte{1},
	}
	var w Writer
	marshalTxn(&w, &txn)
	if w.Len() != txn.Size() {
		t.Fatalf("scan Size() = %d, encoded = %d", txn.Size(), w.Len())
	}
	var got Transaction
	r := NewReader(w.Bytes())
	unmarshalTxn(r, &got)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	for i := range got.Ops {
		if got.Ops[i].Kind != txn.Ops[i].Kind || got.Ops[i].Key != txn.Ops[i].Key ||
			got.Ops[i].EndKey != txn.Ops[i].EndKey || got.Ops[i].Limit != txn.Ops[i].Limit {
			t.Fatalf("op %d: got %+v want %+v", i, got.Ops[i], txn.Ops[i])
		}
	}
	var w2 Writer
	marshalTxn(&w2, &got)
	if !bytes.Equal(w2.Bytes(), w.Bytes()) {
		t.Fatal("scan transaction round trip re-encodes differently")
	}
}

// TestScanResponseRoundTripAndDigest: a response carrying scan results
// round trips rows exactly, and ResponseDigest is sensitive to every row
// mutation a Byzantine replica could try — value, key, order, count.
func TestScanResponseRoundTripAndDigest(t *testing.T) {
	reads := []ReadResult{
		{Found: true, Value: []byte("p")},
		{Scan: true, Rows: []ScanRow{
			{Key: 5, Value: []byte("five")},
			{Key: 6, Value: []byte("six")},
		}},
		{Scan: true}, // empty scan
	}
	resp := ClientResponse{View: 1, Seq: 2, Client: 3, ClientSeq: 4,
		Result: ResponseDigest(2, 3, 4, reads), Replica: 6, ReadResults: reads}
	body := MarshalBody(&resp)
	got, err := DecodeBody(MsgClientResponse, body)
	if err != nil {
		t.Fatal(err)
	}
	rr := got.(*ClientResponse).ReadResults
	if len(rr) != 3 || !rr[1].Scan || len(rr[1].Rows) != 2 || !rr[2].Scan || len(rr[2].Rows) != 0 {
		t.Fatalf("scan response round trip: %+v", rr)
	}
	if rr[1].Rows[1].Key != 6 || string(rr[1].Rows[1].Value) != "six" {
		t.Fatalf("scan row mismatch: %+v", rr[1].Rows[1])
	}
	if ResponseDigest(2, 3, 4, rr) != resp.Result {
		t.Fatal("decoded scan results hash differently")
	}

	base := ResponseDigest(2, 3, 4, reads)
	mutate := func(f func([]ReadResult)) Digest {
		c := make([]ReadResult, len(reads))
		copy(c, reads)
		rows := make([]ScanRow, len(reads[1].Rows))
		copy(rows, reads[1].Rows)
		c[1].Rows = rows
		f(c)
		return ResponseDigest(2, 3, 4, c)
	}
	if mutate(func(c []ReadResult) { c[1].Rows[0].Value = []byte("FIVE") }) == base {
		t.Fatal("digest ignores a forged row value")
	}
	if mutate(func(c []ReadResult) { c[1].Rows[0].Key = 50 }) == base {
		t.Fatal("digest ignores a forged row key")
	}
	if mutate(func(c []ReadResult) { c[1].Rows = c[1].Rows[:1] }) == base {
		t.Fatal("digest ignores truncated rows")
	}
	if mutate(func(c []ReadResult) { c[1].Rows[0], c[1].Rows[1] = c[1].Rows[1], c[1].Rows[0] }) == base {
		t.Fatal("digest ignores reordered rows")
	}
	if mutate(func(c []ReadResult) { c[1].Scan = false; c[1].Rows = nil }) == base {
		t.Fatal("digest ignores a scan flag flip")
	}
}

// TestReadRequestTailBackCompat: a ReadRequest without a staleness bound
// or scans encodes byte-identically to the pre-scan wire form, old bytes
// decode with MinSeq 0 and no scans, and the new tail round trips.
func TestReadRequestTailBackCompat(t *testing.T) {
	req := ReadRequest{Client: 3, ClientSeq: 9, Keys: []uint64{4, 5}}
	var w Writer
	w.U32(uint32(req.Client))
	w.U64(req.ClientSeq)
	w.U32(uint32(len(req.Keys)))
	for _, k := range req.Keys {
		w.U64(k)
	}
	legacy := append([]byte(nil), w.Bytes()...)

	w.Reset()
	req.marshal(&w)
	if !bytes.Equal(w.Bytes(), legacy) {
		t.Fatal("tail-free ReadRequest encodes differently from the pre-scan form")
	}
	got, err := DecodeBody(MsgReadRequest, legacy)
	if err != nil {
		t.Fatal(err)
	}
	if gr := got.(*ReadRequest); gr.MinSeq != 0 || gr.Scans != nil {
		t.Fatalf("legacy ReadRequest decoded with a tail: %+v", gr)
	}

	full := ReadRequest{Client: 3, ClientSeq: 10, Keys: []uint64{4}, MinSeq: 17, Scans: []Op{
		{Kind: OpScan, Key: 2, EndKey: 8, Limit: 3},
		{Kind: OpScan, Key: 9, EndKey: 1, Limit: 0},
	}}
	got, err = DecodeBody(MsgReadRequest, MarshalBody(&full))
	if err != nil {
		t.Fatal(err)
	}
	gr := got.(*ReadRequest)
	if gr.MinSeq != 17 || len(gr.Scans) != 2 {
		t.Fatalf("ReadRequest tail round trip: %+v", gr)
	}
	for i := range full.Scans {
		if gr.Scans[i].Kind != full.Scans[i].Kind || gr.Scans[i].Key != full.Scans[i].Key ||
			gr.Scans[i].EndKey != full.Scans[i].EndKey || gr.Scans[i].Limit != full.Scans[i].Limit {
			t.Fatalf("scan %d: got %+v want %+v", i, gr.Scans[i], full.Scans[i])
		}
	}
}

// TestResponseTailBackCompat: a ClientResponse encoded without read
// results (the pre-read wire form) decodes with a nil tail, and the
// write-only encoding today is byte-identical to that form.
func TestResponseTailBackCompat(t *testing.T) {
	resp := ClientResponse{View: 1, Seq: 2, Client: 3, ClientSeq: 4, Result: Digest{5}, Replica: 6}
	var w Writer
	w.U64(uint64(resp.View))
	w.U64(uint64(resp.Seq))
	w.U32(uint32(resp.Client))
	w.U64(resp.ClientSeq)
	w.Bytes32(resp.Result)
	w.U16(uint16(resp.Replica))
	legacy := append([]byte(nil), w.Bytes()...)

	w.Reset()
	resp.marshal(&w)
	if !bytes.Equal(w.Bytes(), legacy) {
		t.Fatal("write-only response encodes differently from the legacy form")
	}
	got, err := DecodeBody(MsgClientResponse, legacy)
	if err != nil {
		t.Fatal(err)
	}
	if rr := got.(*ClientResponse).ReadResults; rr != nil {
		t.Fatalf("legacy response decoded with read results: %v", rr)
	}
}

package types

import (
	"bytes"
	"reflect"
	"testing"
)

// v1TxnBytes hand-encodes a transaction in the pre-typed (v1) wire layout:
// no kind bytes, the op count word carries a bare count. These are the
// exact bytes every peer emitted before OpKind existed.
func v1TxnBytes(w *Writer, t *Transaction) {
	w.U32(uint32(t.Client))
	w.U64(t.ClientSeq)
	w.U32(uint32(len(t.Ops)))
	for i := range t.Ops {
		w.U64(t.Ops[i].Key)
		w.Blob(t.Ops[i].Value)
	}
	w.Blob(t.Payload)
}

// TestV1GoldenBytesDecode: a write-only request encoded by the v1 layout
// must decode to the same value under the typed-op decoder, and re-encode
// to the identical bytes — nothing about pre-read frames (or the digests
// derived from them) may shift.
func TestV1GoldenBytesDecode(t *testing.T) {
	req := sampleRequest(3)
	var w Writer
	w.U32(uint32(req.Client))
	w.U64(req.FirstSeq)
	w.U32(uint32(len(req.Txns)))
	for i := range req.Txns {
		v1TxnBytes(&w, &req.Txns[i])
	}
	w.Blob(req.Sig)
	golden := append([]byte(nil), w.Bytes()...)

	var got ClientRequest
	r := NewReader(golden)
	got.unmarshal(r)
	if err := r.Err(); err != nil {
		t.Fatalf("decoding v1 bytes: %v", err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("v1 decode left %d bytes", r.Remaining())
	}
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("v1 decode mismatch:\n got %#v\nwant %#v", got, req)
	}
	w.Reset()
	got.marshal(&w)
	if !bytes.Equal(w.Bytes(), golden) {
		t.Fatal("write-only request re-encodes differently from its v1 bytes")
	}
	if got.Size() != len(golden) {
		t.Fatalf("Size() = %d, v1 bytes = %d", got.Size(), len(golden))
	}
}

// TestWriteOnlyEncodingIsV1: the encoder must emit exact v1 bytes for
// write-only transactions — the typed bit appears only when a non-write op
// is present — so BatchDigest and SigningBytes of pure-write traffic are
// byte-stable across the upgrade.
func TestWriteOnlyEncodingIsV1(t *testing.T) {
	txn := sampleTxn(5)
	var typed, v1 Writer
	marshalTxn(&typed, &txn)
	v1TxnBytes(&v1, &txn)
	if !bytes.Equal(typed.Bytes(), v1.Bytes()) {
		t.Fatal("write-only transaction does not encode to v1 bytes")
	}

	withRead := txn
	withRead.Ops = append([]Op{{Kind: OpRead, Key: 99}}, txn.Ops...)
	typed.Reset()
	marshalTxn(&typed, &withRead)
	count := uint32(typed.Bytes()[12])<<24 | uint32(typed.Bytes()[13])<<16 |
		uint32(typed.Bytes()[14])<<8 | uint32(typed.Bytes()[15])
	if count&opsTypedBit == 0 {
		t.Fatal("read-bearing transaction did not set the typed-ops bit")
	}
	if int(count&^opsTypedBit) != len(withRead.Ops) {
		t.Fatalf("typed op count = %d, want %d", count&^opsTypedBit, len(withRead.Ops))
	}
}

// TestTypedTxnRoundTripAndSize: transactions carrying reads survive a
// round trip with kinds intact, and Size() tracks the typed encoding's
// extra kind byte per op.
func TestTypedTxnRoundTripAndSize(t *testing.T) {
	txn := Transaction{
		Client:    7,
		ClientSeq: 42,
		Ops: []Op{
			{Kind: OpRead, Key: 11},
			{Kind: OpWrite, Key: 12, Value: []byte("w")},
			{Kind: OpRead, Key: 13},
		},
		Payload: []byte{1, 2},
	}
	var w Writer
	marshalTxn(&w, &txn)
	if w.Len() != txn.Size() {
		t.Fatalf("typed Size() = %d, encoded = %d", txn.Size(), w.Len())
	}
	var got Transaction
	r := NewReader(w.Bytes())
	unmarshalTxn(r, &got)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	// Blob() decodes empty values as empty (not nil) slices; compare via
	// re-encoding, which flattens that distinction.
	var w2 Writer
	marshalTxn(&w2, &got)
	if !bytes.Equal(w2.Bytes(), w.Bytes()) {
		t.Fatalf("typed round trip mismatch:\n got %#v\nwant %#v", got, txn)
	}
	for i := range got.Ops {
		if got.Ops[i].Kind != txn.Ops[i].Kind || got.Ops[i].Key != txn.Ops[i].Key {
			t.Fatalf("op %d: got kind=%d key=%d", i, got.Ops[i].Kind, got.Ops[i].Key)
		}
	}

	req := ClientRequest{Client: 7, FirstSeq: 42, Txns: []Transaction{txn}, Sig: []byte("s")}
	w.Reset()
	req.marshal(&w)
	if w.Len() != req.Size() {
		t.Fatalf("request Size() = %d, encoded = %d", req.Size(), w.Len())
	}
}

// TestTypedTxnHostileCount: a typed op-count word declaring 2^31-1 ops
// must fail fast, exactly like the v1 hostile-count guard.
func TestTypedTxnHostileCount(t *testing.T) {
	var w Writer
	w.U32(1)                          // client
	w.U64(1)                          // client seq
	w.U32(uint32(opsTypedBit | 0xFF)) // hostile typed count, no op bytes
	var got Transaction
	r := NewReader(w.Bytes())
	unmarshalTxn(r, &got)
	if r.Err() == nil {
		t.Fatal("typed decoder accepted hostile op count")
	}
}

// TestResponseTailBackCompat: a ClientResponse encoded without read
// results (the pre-read wire form) decodes with a nil tail, and the
// write-only encoding today is byte-identical to that form.
func TestResponseTailBackCompat(t *testing.T) {
	resp := ClientResponse{View: 1, Seq: 2, Client: 3, ClientSeq: 4, Result: Digest{5}, Replica: 6}
	var w Writer
	w.U64(uint64(resp.View))
	w.U64(uint64(resp.Seq))
	w.U32(uint32(resp.Client))
	w.U64(resp.ClientSeq)
	w.Bytes32(resp.Result)
	w.U16(uint16(resp.Replica))
	legacy := append([]byte(nil), w.Bytes()...)

	w.Reset()
	resp.marshal(&w)
	if !bytes.Equal(w.Bytes(), legacy) {
		t.Fatal("write-only response encodes differently from the legacy form")
	}
	got, err := DecodeBody(MsgClientResponse, legacy)
	if err != nil {
		t.Fatal(err)
	}
	if rr := got.(*ClientResponse).ReadResults; rr != nil {
		t.Fatalf("legacy response decoded with read results: %v", rr)
	}
}

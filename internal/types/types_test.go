package types

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleTxn(i int) Transaction {
	return Transaction{
		Client:    ClientID(i),
		ClientSeq: uint64(1000 + i),
		Ops: []Op{
			{Key: uint64(i * 7), Value: []byte{byte(i), 2, 3}},
			{Key: uint64(i * 13), Value: []byte("value")},
		},
		Payload: bytes.Repeat([]byte{0xAB}, i%17),
	}
}

func sampleRequest(i int) ClientRequest {
	return ClientRequest{
		Client:   ClientID(i),
		FirstSeq: uint64(i * 100),
		Txns:     []Transaction{sampleTxn(i), sampleTxn(i + 1)},
		Sig:      []byte("sig-bytes"),
	}
}

func TestNodeIDMapping(t *testing.T) {
	tests := []struct {
		name string
		node NodeID
		rep  bool
	}{
		{"replica zero", ReplicaNode(0), true},
		{"replica max", ReplicaNode(ReplicaSpace - 1), true},
		{"client zero", ClientNode(0), false},
		{"client large", ClientNode(80000), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.node.IsReplica(); got != tt.rep {
				t.Fatalf("IsReplica() = %v, want %v", got, tt.rep)
			}
			if got := tt.node.IsClient(); got == tt.rep {
				t.Fatalf("IsClient() = %v, want %v", got, !tt.rep)
			}
		})
	}
	if got := ClientNode(42).Client(); got != 42 {
		t.Fatalf("Client() = %d, want 42", got)
	}
	if got := ReplicaNode(7).Replica(); got != 7 {
		t.Fatalf("Replica() = %d, want 7", got)
	}
	if s := ClientNode(3).String(); s != "c3" {
		t.Fatalf("String() = %q, want c3", s)
	}
	if s := ReplicaNode(3).String(); s != "r3" {
		t.Fatalf("String() = %q, want r3", s)
	}
}

func roundTrip(t *testing.T, msg Message) Message {
	t.Helper()
	b := EncodeToBytes(msg)
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode(%s): %v", msg.Type(), err)
	}
	return got
}

func TestRoundTripAllMessageTypes(t *testing.T) {
	d1 := Digest{1, 2, 3}
	d2 := Digest{4, 5, 6}
	msgs := []Message{
		&ClientRequest{Client: 9, FirstSeq: 55, Txns: []Transaction{sampleTxn(1)}, Sig: []byte{9, 9}},
		&PrePrepare{View: 3, Seq: 77, Digest: d1, Requests: []ClientRequest{sampleRequest(1), sampleRequest(2)}},
		&Prepare{View: 1, Seq: 2, Digest: d1, Replica: 5},
		&Commit{View: 1, Seq: 2, Digest: d2, Replica: 6},
		&Checkpoint{Seq: 1000, StateDigest: d1, Replica: 2},
		&ViewChange{
			NewView:    4,
			StableSeq:  900,
			StateProof: []Checkpoint{{Seq: 900, StateDigest: d1, Replica: 0}, {Seq: 900, StateDigest: d1, Replica: 1}},
			Prepared: []PreparedProof{{
				View: 3, Seq: 901, Digest: d2,
				Prepares: []Prepare{{View: 3, Seq: 901, Digest: d2, Replica: 1}, {View: 3, Seq: 901, Digest: d2, Replica: 2}},
			}},
			Replica: 3,
		},
		&NewView{
			View:        4,
			ViewChanges: []ViewChange{{NewView: 4, StableSeq: 900, Replica: 1}},
			PrePrepares: []PrePrepare{{View: 4, Seq: 901, Digest: d2}},
		},
		&ClientResponse{View: 2, Seq: 10, Client: 3, ClientSeq: 44, Result: d1, Replica: 1},
		&OrderedRequest{View: 0, Seq: 5, Digest: d1, History: d2, Requests: []ClientRequest{sampleRequest(3)}},
		&SpecResponse{View: 0, Seq: 5, Digest: d1, History: d2, Client: 7, ClientSeq: 11, Result: d1, Replica: 2},
		&CommitCert{Client: 7, ClientSeq: 11, View: 0, Seq: 5, History: d2, Replicas: []ReplicaID{0, 1, 2}},
		&LocalCommit{View: 0, Seq: 5, History: d2, Client: 7, ClientSeq: 11, Replica: 3},
		&ClientResponse{View: 2, Seq: 10, Client: 3, ClientSeq: 44, Result: d1, Replica: 1,
			ReadResults: []ReadResult{{Found: true, Value: []byte("v")}, {Found: false}}},
		&SpecResponse{View: 0, Seq: 5, Digest: d1, History: d2, Client: 7, ClientSeq: 11, Result: d1, Replica: 2,
			ReadResults: []ReadResult{{Found: true, Value: []byte("spec")}}},
		&ReadRequest{Client: 12, ClientSeq: 90, Keys: []uint64{3, 1 << 40, 7}},
		&ReadReply{Client: 12, ClientSeq: 90, Seq: 501, Replica: 2,
			Results: []ReadResult{{Found: true, Value: []byte("abc")}, {Found: false}}},
	}
	for _, msg := range msgs {
		t.Run(msg.Type().String(), func(t *testing.T) {
			got := roundTrip(t, msg)
			if !reflect.DeepEqual(normalize(got), normalize(msg)) {
				t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, msg)
			}
		})
	}
}

// normalize maps nil slices to empty ones so DeepEqual compares structure,
// not the nil-vs-empty distinction the codec legitimately flattens.
func normalize(m Message) []byte { return EncodeToBytes(m) }

func TestDecodeRejectsUnknownType(t *testing.T) {
	if _, err := Decode([]byte{0xEE, 1, 2, 3}); err == nil {
		t.Fatal("Decode accepted an unknown message type")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("Decode accepted an empty buffer")
	}
}

func TestDecodeTruncatedNeverPanics(t *testing.T) {
	full := EncodeToBytes(&PrePrepare{View: 3, Seq: 77, Digest: Digest{1}, Requests: []ClientRequest{sampleRequest(1)}})
	for cut := 0; cut < len(full); cut++ {
		if _, err := Decode(full[:cut]); err == nil && cut < len(full) {
			// Some prefixes may decode if trailing fields are empty; only
			// assert that no prefix panics, which reaching here proves.
			continue
		}
	}
}

func TestDecodeHostileCounts(t *testing.T) {
	// A pre-prepare declaring 2^32-1 requests must fail fast, not allocate.
	var w Writer
	w.U8(uint8(MsgPrePrepare))
	w.U64(1) // view
	w.U64(1) // seq
	w.Bytes32(Digest{})
	w.U32(0xFFFFFFFF) // hostile request count
	if _, err := Decode(w.Bytes()); err == nil {
		t.Fatal("Decode accepted hostile element count")
	}
}

func TestWriterReaderPrimitives(t *testing.T) {
	var w Writer
	w.U8(7)
	w.U16(513)
	w.U32(70000)
	w.U64(1 << 40)
	w.Blob([]byte("hello"))
	w.Bytes32(Digest{9, 8, 7})

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 7 {
		t.Fatalf("U8 = %d", got)
	}
	if got := r.U16(); got != 513 {
		t.Fatalf("U16 = %d", got)
	}
	if got := r.U32(); got != 70000 {
		t.Fatalf("U32 = %d", got)
	}
	if got := r.U64(); got != 1<<40 {
		t.Fatalf("U64 = %d", got)
	}
	if got := r.Blob(); string(got) != "hello" {
		t.Fatalf("Blob = %q", got)
	}
	if got := r.Bytes32(); got != (Digest{9, 8, 7}) {
		t.Fatalf("Bytes32 = %v", got)
	}
	if r.Err() != nil {
		t.Fatalf("unexpected error: %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", r.Remaining())
	}
	// Reading past the end sets a sticky error.
	if r.U8(); r.Err() == nil {
		t.Fatal("expected sticky error after overread")
	}
}

func TestReaderBlobCopies(t *testing.T) {
	var w Writer
	w.Blob([]byte("abc"))
	src := w.Bytes()
	r := NewReader(src)
	got := r.Blob()
	src[5] = 'X' // mutate the underlying buffer
	if string(got) != "abc" {
		t.Fatalf("Blob aliases input buffer: %q", got)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	e := &Envelope{
		From: ReplicaNode(2),
		To:   ClientNode(7),
		Type: MsgPrepare,
		Body: []byte{1, 2, 3, 4},
		Auth: []byte{9},
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, e); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != e.EncodedSize() {
		t.Fatalf("EncodedSize = %d, frame = %d", e.EncodedSize(), buf.Len())
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("frame mismatch: got %+v want %+v", got, e)
	}
}

func TestFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("ReadFrame accepted oversized frame")
	}
}

func TestBatchDigestProperties(t *testing.T) {
	reqs := []ClientRequest{sampleRequest(1), sampleRequest(2)}
	d1 := BatchDigest(reqs)
	d2 := BatchDigest(reqs)
	if d1 != d2 {
		t.Fatal("BatchDigest not deterministic")
	}
	reqs[1].Txns[0].Ops[0].Value[0] ^= 1
	if BatchDigest(reqs) == d1 {
		t.Fatal("BatchDigest insensitive to content change")
	}
	// Order sensitivity.
	swapped := []ClientRequest{reqs[1], reqs[0]}
	if BatchDigest(swapped) == BatchDigest(reqs) {
		t.Fatal("BatchDigest insensitive to order")
	}
	// Per-request digest differs from batch digest but shares properties.
	p1 := PerRequestBatchDigest(reqs)
	if p1 == BatchDigest(reqs) {
		t.Fatal("digest modes unexpectedly collide")
	}
	if p1 != PerRequestBatchDigest(reqs) {
		t.Fatal("PerRequestBatchDigest not deterministic")
	}
}

func TestBlockHashChanges(t *testing.T) {
	b := Block{Height: 5, Seq: 5, View: 1, Digest: Digest{1}, PrevHash: Digest{2}, TxnCount: 100}
	h := b.Hash()
	b2 := b
	b2.TxnCount++
	if b2.Hash() == h {
		t.Fatal("Block.Hash ignores TxnCount")
	}
	b3 := b
	b3.PrevHash = Digest{3}
	if b3.Hash() == h {
		t.Fatal("Block.Hash ignores PrevHash")
	}
}

func TestSigningBytesExcludesSignature(t *testing.T) {
	r1 := sampleRequest(4)
	r2 := r1
	r2.Sig = []byte("different")
	if !bytes.Equal(r1.SigningBytes(), r2.SigningBytes()) {
		t.Fatal("SigningBytes depends on the signature field")
	}
	r3 := r1
	r3.FirstSeq++
	if bytes.Equal(r1.SigningBytes(), r3.SigningBytes()) {
		t.Fatal("SigningBytes ignores FirstSeq")
	}
}

func TestRequestSizeMatchesEncoding(t *testing.T) {
	r := sampleRequest(6)
	var w Writer
	r.marshal(&w)
	if w.Len() != r.Size() {
		t.Fatalf("Size() = %d, encoded = %d", r.Size(), w.Len())
	}
	pp := PrePrepare{View: 1, Seq: 2, Digest: Digest{1}, Requests: []ClientRequest{r}}
	w.Reset()
	pp.marshal(&w)
	if w.Len() != pp.Size() {
		t.Fatalf("PrePrepare.Size() = %d, encoded = %d", pp.Size(), w.Len())
	}
	or := OrderedRequest{View: 1, Seq: 2, Digest: Digest{1}, History: Digest{2}, Requests: []ClientRequest{r}}
	w.Reset()
	or.marshal(&w)
	if w.Len() != or.Size() {
		t.Fatalf("OrderedRequest.Size() = %d, encoded = %d", or.Size(), w.Len())
	}
}

// quickTxn generates a random transaction for property tests, mixing
// typed-op (read-bearing) and pure v1 write-only shapes.
func quickTxn(rnd *rand.Rand) Transaction {
	nops := rnd.Intn(4)
	ops := make([]Op, nops)
	for i := range ops {
		if rnd.Intn(3) == 0 {
			ops[i] = Op{Kind: OpRead, Key: rnd.Uint64()}
			continue
		}
		val := make([]byte, rnd.Intn(32))
		rnd.Read(val)
		ops[i] = Op{Key: rnd.Uint64(), Value: val}
	}
	payload := make([]byte, rnd.Intn(64))
	rnd.Read(payload)
	return Transaction{
		Client:    ClientID(rnd.Uint32()),
		ClientSeq: rnd.Uint64(),
		Ops:       ops,
		Payload:   payload,
	}
}

func TestResponseDigestDeterministic(t *testing.T) {
	a := ResponseDigest(5, 3, 77, nil)
	b := ResponseDigest(5, 3, 77, nil)
	if a != b {
		t.Fatal("ResponseDigest not deterministic")
	}
	if ResponseDigest(6, 3, 77, nil) == a || ResponseDigest(5, 4, 77, nil) == a || ResponseDigest(5, 3, 78, nil) == a {
		t.Fatal("ResponseDigest ignores an input")
	}
	// Read results fold in: found-ness and value bytes both matter, and an
	// empty result set stays byte-identical to the write-only digest.
	reads := []ReadResult{{Found: true, Value: []byte("v")}}
	c := ResponseDigest(5, 3, 77, reads)
	if c == a {
		t.Fatal("ResponseDigest ignores read results")
	}
	if ResponseDigest(5, 3, 77, []ReadResult{{Found: false, Value: []byte("v")}}) == c {
		t.Fatal("ResponseDigest ignores Found")
	}
	if ResponseDigest(5, 3, 77, []ReadResult{}) != a {
		t.Fatal("empty read results must not change the digest")
	}
}

func TestQuickRoundTripPrePrepare(t *testing.T) {
	f := func(view, seq uint64, seed int64, nreq uint8) bool {
		rnd := rand.New(rand.NewSource(seed))
		reqs := make([]ClientRequest, int(nreq)%5)
		for i := range reqs {
			txns := make([]Transaction, 1+rnd.Intn(3))
			for j := range txns {
				txns[j] = quickTxn(rnd)
			}
			sig := make([]byte, rnd.Intn(64))
			rnd.Read(sig)
			reqs[i] = ClientRequest{
				Client:   ClientID(rnd.Uint32()),
				FirstSeq: rnd.Uint64(),
				Txns:     txns,
				Sig:      sig,
			}
		}
		msg := &PrePrepare{View: View(view), Seq: SeqNum(seq), Digest: BatchDigest(reqs), Requests: reqs}
		b := EncodeToBytes(msg)
		got, err := Decode(b)
		if err != nil {
			return false
		}
		return bytes.Equal(EncodeToBytes(got), b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripSmallMessages(t *testing.T) {
	f := func(view, seq uint64, rep uint16, d [32]byte) bool {
		msgs := []Message{
			&Prepare{View: View(view), Seq: SeqNum(seq), Digest: d, Replica: ReplicaID(rep)},
			&Commit{View: View(view), Seq: SeqNum(seq), Digest: d, Replica: ReplicaID(rep)},
			&Checkpoint{Seq: SeqNum(seq), StateDigest: d, Replica: ReplicaID(rep)},
			&ClientResponse{View: View(view), Seq: SeqNum(seq), Client: 1, ClientSeq: seq, Result: d, Replica: ReplicaID(rep)},
			&LocalCommit{View: View(view), Seq: SeqNum(seq), History: d, Client: 1, ClientSeq: seq, Replica: ReplicaID(rep)},
		}
		for _, m := range msgs {
			b := EncodeToBytes(m)
			got, err := Decode(b)
			if err != nil {
				return false
			}
			if !bytes.Equal(EncodeToBytes(got), b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkAblationBatchDigest vs BenchmarkAblationPerRequestDigest is
// the Section 4.3 hashing ablation: one digest over the whole batch
// versus hashing every request separately.
func BenchmarkAblationBatchDigest(b *testing.B) {
	reqs := make([]ClientRequest, 100)
	for i := range reqs {
		reqs[i] = sampleRequest(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BatchDigest(reqs)
	}
}

func BenchmarkAblationPerRequestDigest(b *testing.B) {
	reqs := make([]ClientRequest, 100)
	for i := range reqs {
		reqs[i] = sampleRequest(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PerRequestBatchDigest(reqs)
	}
}

package types

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func batchEnv(from, to uint32, body string) *Envelope {
	return &Envelope{
		From: NodeID(from),
		To:   NodeID(to),
		Type: MsgPrepare,
		Body: []byte(body),
		Auth: []byte{0xAA, 0xBB},
	}
}

func envEqual(a, b *Envelope) bool {
	return a.From == b.From && a.To == b.To && a.Type == b.Type &&
		bytes.Equal(a.Body, b.Body) && bytes.Equal(a.Auth, b.Auth)
}

func TestBatchFrameRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		envs []*Envelope
	}{
		{"empty", nil},
		{"single", []*Envelope{batchEnv(0, 1, "solo")}},
		{"many", []*Envelope{
			batchEnv(0, 1, "first"),
			batchEnv(2, 1, ""),
			batchEnv(3, 1, strings.Repeat("x", 4096)),
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteBatchFrame(&buf, tt.envs); err != nil {
				t.Fatal(err)
			}
			got, err := ReadFrames(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tt.envs) {
				t.Fatalf("decoded %d envelopes, want %d", len(got), len(tt.envs))
			}
			for i := range got {
				if !envEqual(got[i], tt.envs[i]) {
					t.Fatalf("envelope %d = %+v, want %+v", i, got[i], tt.envs[i])
				}
			}
			if buf.Len() != 0 {
				t.Fatalf("%d bytes left unread", buf.Len())
			}
		})
	}
}

func TestReadFramesHandlesSingleEnvelopeFrames(t *testing.T) {
	var buf bytes.Buffer
	want := batchEnv(4, 5, "legacy-frame")
	if err := WriteFrame(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrames(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !envEqual(got[0], want) {
		t.Fatalf("got %+v", got)
	}
}

func TestMixedFrameStream(t *testing.T) {
	// A connection may interleave both frame kinds; the reader must keep
	// its framing across the transition.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, batchEnv(0, 1, "a")); err != nil {
		t.Fatal(err)
	}
	if err := WriteBatchFrame(&buf, []*Envelope{batchEnv(0, 1, "b"), batchEnv(0, 1, "c")}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, batchEnv(0, 1, "d")); err != nil {
		t.Fatal(err)
	}
	var bodies []string
	for buf.Len() > 0 {
		envs, err := ReadFrames(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range envs {
			bodies = append(bodies, string(e.Body))
		}
	}
	if got := strings.Join(bodies, ""); got != "abcd" {
		t.Fatalf("stream decoded as %q, want %q", got, "abcd")
	}
}

func TestReadFrameRejectsMultiEnvelopeBatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBatchFrame(&buf, []*Envelope{batchEnv(0, 1, "x"), batchEnv(0, 1, "y")}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("ReadFrame accepted a multi-envelope batch frame")
	}
}

func TestBatchFrameForgedCountRejected(t *testing.T) {
	var w Writer
	AppendBatchFrame(&w, []*Envelope{batchEnv(0, 1, "only")})
	frame := append([]byte(nil), w.Bytes()...)
	// Inflate the count field (bytes 4..8) far beyond what the payload
	// can hold; the decoder must fail instead of over-allocating.
	frame[4], frame[5], frame[6], frame[7] = 0x7F, 0xFF, 0xFF, 0xFF
	if _, err := ReadFrames(bytes.NewReader(frame)); err == nil {
		t.Fatal("forged batch count accepted")
	}
}

func TestBatchFrameTruncatedPayload(t *testing.T) {
	var w Writer
	AppendBatchFrame(&w, []*Envelope{batchEnv(0, 1, "aaaa"), batchEnv(0, 1, "bbbb")})
	full := w.Bytes()
	if _, err := ReadFrames(bytes.NewReader(full[:len(full)-3])); err == nil {
		t.Fatal("truncated batch frame accepted")
	}
}

func TestReadFramesCleanEOF(t *testing.T) {
	if _, err := ReadFrames(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream error = %v, want io.EOF", err)
	}
}

func TestBatchFrameTrailingBytesRejected(t *testing.T) {
	var w Writer
	AppendBatchFrame(&w, []*Envelope{batchEnv(0, 1, "z")})
	frame := append([]byte(nil), w.Bytes()...)
	// Grow the declared payload length by one and append a stray byte the
	// announced envelope count does not account for.
	n := uint32(frame[0])<<24 | uint32(frame[1])<<16 | uint32(frame[2])<<8 | uint32(frame[3])
	n++
	frame[0], frame[1], frame[2], frame[3] = byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
	frame = append(frame, 0x00)
	if _, err := ReadFrames(bytes.NewReader(frame)); err == nil {
		t.Fatal("batch frame with trailing bytes accepted")
	}
}

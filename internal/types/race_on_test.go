//go:build race

package types

// raceEnabled reports that this binary was built with the race detector,
// under which sync.Pool randomly drops Puts and pool-occupancy tests
// become nondeterministic.
const raceEnabled = true

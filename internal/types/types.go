// Package types defines the identifiers, transactions, consensus messages,
// and blocks exchanged inside the resilientdb fabric, together with a
// hand-rolled binary codec for all of them.
//
// The type system mirrors Section 2.2 and Section 4.8 of the paper: every
// message inherits from a common base (here: the Message interface), client
// transactions are first-class objects, and blocks carry either a hash-chain
// link or a commit certificate (Section 4.6, "Block Generation").
package types

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// ReplicaID identifies a replica. Replicas are numbered 0..n-1; the primary
// of view v is replica v mod n.
type ReplicaID uint16

// ClientID identifies a client. Clients live in a separate namespace from
// replicas; see NodeID for the combined address space.
type ClientID uint32

// View is a PBFT/Zyzzyva view number. The primary of view v among n replicas
// is replica v mod n.
type View uint64

// SeqNum is a consensus sequence number assigned by the primary. One
// sequence number corresponds to one batch of client requests.
type SeqNum uint64

// Digest is a SHA-256 digest of a batch, request, block, or state.
type Digest [32]byte

// NodeID addresses any participant on the transport: replicas occupy
// [0, ReplicaSpace) and clients are offset by ReplicaSpace.
type NodeID int32

// ReplicaSpace is the first NodeID reserved for clients. Deployments are
// limited to fewer than ReplicaSpace replicas, which is far beyond any
// practical permissioned cluster size.
const ReplicaSpace = 1 << 16

// ReplicaNode converts a replica identifier to its transport address.
func ReplicaNode(r ReplicaID) NodeID { return NodeID(r) }

// ClientNode converts a client identifier to its transport address.
func ClientNode(c ClientID) NodeID { return NodeID(c) + ReplicaSpace }

// IsReplica reports whether the node addresses a replica.
func (n NodeID) IsReplica() bool { return n >= 0 && n < ReplicaSpace }

// IsClient reports whether the node addresses a client.
func (n NodeID) IsClient() bool { return n >= ReplicaSpace }

// Replica returns the replica identifier for a replica node.
// It must only be called when IsReplica is true.
func (n NodeID) Replica() ReplicaID { return ReplicaID(n) }

// Client returns the client identifier for a client node.
// It must only be called when IsClient is true.
func (n NodeID) Client() ClientID { return ClientID(n - ReplicaSpace) }

// String implements fmt.Stringer for log readability.
func (n NodeID) String() string {
	if n.IsClient() {
		return fmt.Sprintf("c%d", n.Client())
	}
	return fmt.Sprintf("r%d", int32(n))
}

// OpKind distinguishes the operation types a transaction can carry. The
// zero value is a write so pre-existing write-only code (and decoded v1
// frames) keeps its meaning without change.
type OpKind uint8

const (
	// OpWrite stores Value under Key.
	OpWrite OpKind = iota
	// OpRead fetches the record under Key; Value is empty on the wire and
	// the result travels back in the response's read results.
	OpRead
	// OpScan fetches every record with Key <= key <= EndKey in ascending
	// key order, truncated to Limit rows. Value is empty on the wire and
	// the rows travel back as the scan arm of the op's read result.
	OpScan
)

// Op is a single operation inside a transaction: a write of Value under
// Key, a read of Key, or a range scan of [Key, EndKey]. The evaluation
// workload (YCSB, Section 5.1) issues these against a keyed record table.
// EndKey and Limit are meaningful only for OpScan: a scan with
// Key > EndKey or Limit == 0 is well-formed and returns zero rows.
type Op struct {
	Kind  OpKind
	Key   uint64
	Value []byte
	// EndKey is the inclusive upper bound of an OpScan's key range.
	EndKey uint64
	// Limit caps the rows an OpScan returns (after merging, lowest keys
	// first); 0 returns none.
	Limit uint32
}

// Transaction is a client transaction: one or more operations plus an
// opaque payload. The payload carries no semantics; it exists so the
// message-size experiments (Section 5.5) can inflate requests exactly like
// the paper's integer-set payloads.
type Transaction struct {
	Client    ClientID
	ClientSeq uint64 // client-local request number, used to match responses
	Ops       []Op
	Payload   []byte
}

// typedOps reports whether the transaction needs the typed (v2) op
// encoding. Write-only transactions stay on the v1 layout so their bytes —
// and every digest derived from them — are unchanged.
func (t *Transaction) typedOps() bool {
	for i := range t.Ops {
		if t.Ops[i].Kind != OpWrite {
			return true
		}
	}
	return false
}

// Size returns the encoded size of the transaction in bytes. The simulator
// and the NIC model use it to account for bandwidth. It tracks both wire
// layouts: the typed encoding spends one extra kind byte per op, and a
// scan op additionally carries its end key and limit.
func (t *Transaction) Size() int {
	n := 4 + 8 + 4 + 4 + len(t.Payload)
	for i := range t.Ops {
		n += 8 + 4 + len(t.Ops[i].Value)
		if t.Ops[i].Kind == OpScan {
			n += 8 + 4 // end key + limit
		}
	}
	if t.typedOps() {
		n += len(t.Ops)
	}
	return n
}

// ClientRequest is the unit a client submits: a burst of one or more
// transactions signed as a whole (client-side batching, Section 4.2).
// FirstSeq is the ClientSeq of the first transaction in the burst.
type ClientRequest struct {
	Client   ClientID
	FirstSeq uint64
	Txns     []Transaction
	Sig      []byte
}

// Size returns the encoded size of the request in bytes.
func (r *ClientRequest) Size() int {
	n := 4 + 8 + 4 + 4 + len(r.Sig)
	for i := range r.Txns {
		n += r.Txns[i].Size()
	}
	return n
}

// TxnCount returns the number of transactions carried by the request.
func (r *ClientRequest) TxnCount() int { return len(r.Txns) }

// SigningBytes returns the canonical bytes a client signs: the request
// encoded with an empty signature field.
func (r *ClientRequest) SigningBytes() []byte {
	clone := *r
	clone.Sig = nil
	var w Writer
	clone.marshal(&w)
	return w.Bytes()
}

// CommitSig is one replica's vote retained inside a block's commit
// certificate (Section 4.6): the 2f+1 commit authenticators stand in for
// the hash of the previous block.
type CommitSig struct {
	Replica ReplicaID
	Auth    []byte
}

// Block is one element of the immutable ledger, B_i = {k, d, v, link}
// (Section 2.2). Exactly one of PrevHash (hash-chain mode) or CommitProof
// (commit-certificate mode) establishes the link to the chain prefix;
// both may be present when both modes are enabled.
type Block struct {
	Height      uint64 // position in the chain; genesis is height 0
	Seq         SeqNum // consensus sequence number k (0 for genesis)
	View        View   // identifier v of the primary that ordered the batch
	Digest      Digest // digest d of the batch of client requests
	PrevHash    Digest // H(B_{i-1}) in hash-chain mode
	CommitProof []CommitSig
	TxnCount    uint32
}

// Hash returns the SHA-256 hash of the block's header fields. It is the
// value embedded as PrevHash by the successor block in hash-chain mode.
func (b *Block) Hash() Digest {
	var buf [8 + 8 + 8 + 32 + 32 + 4]byte
	binary.BigEndian.PutUint64(buf[0:], b.Height)
	binary.BigEndian.PutUint64(buf[8:], uint64(b.Seq))
	binary.BigEndian.PutUint64(buf[16:], uint64(b.View))
	copy(buf[24:], b.Digest[:])
	copy(buf[56:], b.PrevHash[:])
	binary.BigEndian.PutUint32(buf[88:], b.TxnCount)
	return sha256.Sum256(buf[:])
}

// BatchDigest computes the single digest that covers a whole batch of
// client requests. Per Section 4.3, the batch is rendered to one string and
// hashed once instead of hashing every request, which preserves integrity
// (hashes are collision resistant) while removing per-request hashing from
// the critical path.
func BatchDigest(reqs []ClientRequest) Digest {
	h := sha256.New()
	w := GetWriter()
	for i := range reqs {
		w.Reset()
		reqs[i].marshal(w)
		h.Write(w.Bytes())
	}
	PutWriter(w)
	var d Digest
	h.Sum(d[:0])
	return d
}

// PerRequestBatchDigest computes the batch digest the naive way: hash each
// request separately, then hash the concatenation of the per-request
// digests. It exists as the ablation baseline for BatchDigest.
func PerRequestBatchDigest(reqs []ClientRequest) Digest {
	outer := sha256.New()
	w := GetWriter()
	for i := range reqs {
		w.Reset()
		reqs[i].marshal(w)
		d := sha256.Sum256(w.Bytes())
		outer.Write(d[:])
	}
	PutWriter(w)
	var d Digest
	outer.Sum(d[:0])
	return d
}

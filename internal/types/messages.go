package types

import (
	"crypto/sha256"
	"fmt"
)

// MsgType tags every message on the wire. Values start at one so a zeroed
// buffer can never masquerade as a valid message.
type MsgType uint8

// Message type tags. PBFT uses ClientRequest through ClientResponse;
// Zyzzyva adds OrderedRequest through LocalCommit.
const (
	MsgClientRequest MsgType = iota + 1
	MsgPrePrepare
	MsgPrepare
	MsgCommit
	MsgCheckpoint
	MsgViewChange
	MsgNewView
	MsgClientResponse
	MsgOrderedRequest
	MsgSpecResponse
	MsgCommitCert
	MsgLocalCommit
	MsgReadRequest
	MsgReadReply
	msgTypeEnd // sentinel; keep last
)

// String implements fmt.Stringer for log readability.
func (t MsgType) String() string {
	switch t {
	case MsgClientRequest:
		return "ClientRequest"
	case MsgPrePrepare:
		return "PrePrepare"
	case MsgPrepare:
		return "Prepare"
	case MsgCommit:
		return "Commit"
	case MsgCheckpoint:
		return "Checkpoint"
	case MsgViewChange:
		return "ViewChange"
	case MsgNewView:
		return "NewView"
	case MsgClientResponse:
		return "ClientResponse"
	case MsgOrderedRequest:
		return "OrderedRequest"
	case MsgSpecResponse:
		return "SpecResponse"
	case MsgCommitCert:
		return "CommitCert"
	case MsgLocalCommit:
		return "LocalCommit"
	case MsgReadRequest:
		return "ReadRequest"
	case MsgReadReply:
		return "ReadReply"
	default:
		return "Unknown"
	}
}

// Message is the interface every wire message implements. Marshal appends
// the body encoding to w; unmarshal decodes from r. Encode and Decode in
// codec.go add the type tag.
type Message interface {
	Type() MsgType
	marshal(w *Writer)
	unmarshal(r *Reader)
}

// Compile-time interface compliance checks.
var (
	_ Message = (*ClientRequest)(nil)
	_ Message = (*PrePrepare)(nil)
	_ Message = (*Prepare)(nil)
	_ Message = (*Commit)(nil)
	_ Message = (*Checkpoint)(nil)
	_ Message = (*ViewChange)(nil)
	_ Message = (*NewView)(nil)
	_ Message = (*ClientResponse)(nil)
	_ Message = (*OrderedRequest)(nil)
	_ Message = (*SpecResponse)(nil)
	_ Message = (*CommitCert)(nil)
	_ Message = (*LocalCommit)(nil)
	_ Message = (*ReadRequest)(nil)
	_ Message = (*ReadReply)(nil)
)

// ---- ClientRequest ----

// Type implements Message.
func (r *ClientRequest) Type() MsgType { return MsgClientRequest }

// opsTypedBit marks a transaction's op-count word as the typed (v2) op
// encoding, which spends a kind byte per op. The bit is free because
// count validation bounds real op counts far below it, and v1 encoders
// never set it, so write-only frames from older peers decode unchanged —
// and write-only transactions still encode to the exact v1 bytes, keeping
// batch digests and signing bytes stable across the upgrade.
const opsTypedBit = 1 << 31

func marshalTxn(w *Writer, t *Transaction) {
	w.U32(uint32(t.Client))
	w.U64(t.ClientSeq)
	if !t.typedOps() {
		// v1 layout: [key u64][value blob] per op, no kind bytes.
		w.U32(uint32(len(t.Ops)))
		for i := range t.Ops {
			w.U64(t.Ops[i].Key)
			w.Blob(t.Ops[i].Value)
		}
	} else {
		w.U32(uint32(len(t.Ops)) | opsTypedBit)
		for i := range t.Ops {
			w.U8(uint8(t.Ops[i].Kind))
			w.U64(t.Ops[i].Key)
			if t.Ops[i].Kind == OpScan {
				// Scan bounds ride between key and value, so non-scan
				// typed ops keep their pre-scan byte layout exactly.
				w.U64(t.Ops[i].EndKey)
				w.U32(t.Ops[i].Limit)
			}
			w.Blob(t.Ops[i].Value)
		}
	}
	w.Blob(t.Payload)
}

func unmarshalTxn(r *Reader, t *Transaction) {
	t.Client = ClientID(r.U32())
	t.ClientSeq = r.U64()
	raw := r.U32()
	if r.Err() != nil {
		return
	}
	typed := raw&opsTypedBit != 0
	nops := int(raw &^ opsTypedBit)
	minOp := 12 // v1: key + value length prefix
	if typed {
		minOp = 13 // + kind byte
	}
	if nops > r.Remaining()/minOp+1 {
		r.fail(fmt.Errorf("%w: %d ops", ErrOversized, nops))
		return
	}
	t.Ops = make([]Op, nops)
	for i := 0; i < nops; i++ {
		if typed {
			t.Ops[i].Kind = OpKind(r.U8())
		}
		t.Ops[i].Key = r.U64()
		if t.Ops[i].Kind == OpScan {
			t.Ops[i].EndKey = r.U64()
			t.Ops[i].Limit = r.U32()
		}
		t.Ops[i].Value = r.Blob()
	}
	t.Payload = r.Blob()
}

func (r *ClientRequest) marshal(w *Writer) {
	w.U32(uint32(r.Client))
	w.U64(r.FirstSeq)
	w.U32(uint32(len(r.Txns)))
	for i := range r.Txns {
		marshalTxn(w, &r.Txns[i])
	}
	w.Blob(r.Sig)
}

func (r *ClientRequest) unmarshal(rd *Reader) {
	r.Client = ClientID(rd.U32())
	r.FirstSeq = rd.U64()
	n := rd.count(16)
	if rd.Err() != nil {
		return
	}
	r.Txns = make([]Transaction, n)
	for i := 0; i < n; i++ {
		unmarshalTxn(rd, &r.Txns[i])
	}
	r.Sig = rd.Blob()
}

// ---- PrePrepare ----

// PrePrepare is the primary's proposal binding a batch of client requests
// to (view, seq). Backups verify the embedded client signatures and the
// batch digest before preparing.
type PrePrepare struct {
	View     View
	Seq      SeqNum
	Digest   Digest
	Requests []ClientRequest
}

// Type implements Message.
func (m *PrePrepare) Type() MsgType { return MsgPrePrepare }

func (m *PrePrepare) marshal(w *Writer) {
	w.U64(uint64(m.View))
	w.U64(uint64(m.Seq))
	w.Bytes32(m.Digest)
	w.U32(uint32(len(m.Requests)))
	for i := range m.Requests {
		m.Requests[i].marshal(w)
	}
}

func (m *PrePrepare) unmarshal(r *Reader) {
	m.View = View(r.U64())
	m.Seq = SeqNum(r.U64())
	m.Digest = r.Bytes32()
	n := r.count(20)
	if r.Err() != nil {
		return
	}
	m.Requests = make([]ClientRequest, n)
	for i := 0; i < n; i++ {
		m.Requests[i].unmarshal(r)
	}
}

// Size returns the encoded size in bytes, used for bandwidth accounting.
func (m *PrePrepare) Size() int {
	n := 8 + 8 + 32 + 4
	for i := range m.Requests {
		n += m.Requests[i].Size()
	}
	return n
}

// ---- Prepare / Commit ----

// Prepare is a backup's agreement to the order proposed in a pre-prepare.
// A replica is "prepared" after 2f matching prepares (Section 2.1).
type Prepare struct {
	View    View
	Seq     SeqNum
	Digest  Digest
	Replica ReplicaID
}

// Type implements Message.
func (m *Prepare) Type() MsgType { return MsgPrepare }

func (m *Prepare) marshal(w *Writer) {
	w.U64(uint64(m.View))
	w.U64(uint64(m.Seq))
	w.Bytes32(m.Digest)
	w.U16(uint16(m.Replica))
}

func (m *Prepare) unmarshal(r *Reader) {
	m.View = View(r.U64())
	m.Seq = SeqNum(r.U64())
	m.Digest = r.Bytes32()
	m.Replica = ReplicaID(r.U16())
}

// Commit is broadcast once a replica is prepared; 2f+1 matching commits
// guarantee the order and release the batch for execution.
type Commit struct {
	View    View
	Seq     SeqNum
	Digest  Digest
	Replica ReplicaID
}

// Type implements Message.
func (m *Commit) Type() MsgType { return MsgCommit }

func (m *Commit) marshal(w *Writer) {
	w.U64(uint64(m.View))
	w.U64(uint64(m.Seq))
	w.Bytes32(m.Digest)
	w.U16(uint16(m.Replica))
}

func (m *Commit) unmarshal(r *Reader) {
	m.View = View(r.U64())
	m.Seq = SeqNum(r.U64())
	m.Digest = r.Bytes32()
	m.Replica = ReplicaID(r.U16())
}

// ---- Checkpoint ----

// Checkpoint is broadcast after every Δ executed batches (Section 4.7).
// 2f+1 matching checkpoints make sequence numbers ≤ Seq stable, allowing
// old requests, messages, and blocks to be garbage collected.
type Checkpoint struct {
	Seq         SeqNum
	StateDigest Digest
	Replica     ReplicaID
}

// Type implements Message.
func (m *Checkpoint) Type() MsgType { return MsgCheckpoint }

func (m *Checkpoint) marshal(w *Writer) {
	w.U64(uint64(m.Seq))
	w.Bytes32(m.StateDigest)
	w.U16(uint16(m.Replica))
}

func (m *Checkpoint) unmarshal(r *Reader) {
	m.Seq = SeqNum(r.U64())
	m.StateDigest = r.Bytes32()
	m.Replica = ReplicaID(r.U16())
}

// ---- View change ----

// PreparedProof certifies that a batch prepared at a replica: the
// pre-prepare metadata plus 2f matching prepares. Request payloads are not
// carried; the new primary re-fetches or re-proposes by digest.
type PreparedProof struct {
	View     View
	Seq      SeqNum
	Digest   Digest
	Prepares []Prepare
}

func (p *PreparedProof) marshal(w *Writer) {
	w.U64(uint64(p.View))
	w.U64(uint64(p.Seq))
	w.Bytes32(p.Digest)
	w.U32(uint32(len(p.Prepares)))
	for i := range p.Prepares {
		p.Prepares[i].marshal(w)
	}
}

func (p *PreparedProof) unmarshal(r *Reader) {
	p.View = View(r.U64())
	p.Seq = SeqNum(r.U64())
	p.Digest = r.Bytes32()
	n := r.count(50)
	if r.Err() != nil {
		return
	}
	p.Prepares = make([]Prepare, n)
	for i := 0; i < n; i++ {
		p.Prepares[i].unmarshal(r)
	}
}

// ViewChange announces that a replica has abandoned its current view and
// carries evidence of its progress: the last stable checkpoint and every
// batch prepared since.
type ViewChange struct {
	NewView    View
	StableSeq  SeqNum
	StateProof []Checkpoint
	Prepared   []PreparedProof
	Replica    ReplicaID
}

// Type implements Message.
func (m *ViewChange) Type() MsgType { return MsgViewChange }

func (m *ViewChange) marshal(w *Writer) {
	w.U64(uint64(m.NewView))
	w.U64(uint64(m.StableSeq))
	w.U32(uint32(len(m.StateProof)))
	for i := range m.StateProof {
		m.StateProof[i].marshal(w)
	}
	w.U32(uint32(len(m.Prepared)))
	for i := range m.Prepared {
		m.Prepared[i].marshal(w)
	}
	w.U16(uint16(m.Replica))
}

func (m *ViewChange) unmarshal(r *Reader) {
	m.NewView = View(r.U64())
	m.StableSeq = SeqNum(r.U64())
	n := r.count(42)
	if r.Err() != nil {
		return
	}
	m.StateProof = make([]Checkpoint, n)
	for i := 0; i < n; i++ {
		m.StateProof[i].unmarshal(r)
	}
	n = r.count(52)
	if r.Err() != nil {
		return
	}
	m.Prepared = make([]PreparedProof, n)
	for i := 0; i < n; i++ {
		m.Prepared[i].unmarshal(r)
	}
	m.Replica = ReplicaID(r.U16())
}

// NewView is the new primary's proof that 2f+1 replicas joined the view,
// plus the pre-prepares that re-propose every prepared-but-uncommitted
// batch in the new view.
type NewView struct {
	View        View
	ViewChanges []ViewChange
	PrePrepares []PrePrepare
}

// Type implements Message.
func (m *NewView) Type() MsgType { return MsgNewView }

func (m *NewView) marshal(w *Writer) {
	w.U64(uint64(m.View))
	w.U32(uint32(len(m.ViewChanges)))
	for i := range m.ViewChanges {
		m.ViewChanges[i].marshal(w)
	}
	w.U32(uint32(len(m.PrePrepares)))
	for i := range m.PrePrepares {
		m.PrePrepares[i].marshal(w)
	}
}

func (m *NewView) unmarshal(r *Reader) {
	m.View = View(r.U64())
	n := r.count(26)
	if r.Err() != nil {
		return
	}
	m.ViewChanges = make([]ViewChange, n)
	for i := 0; i < n; i++ {
		m.ViewChanges[i].unmarshal(r)
	}
	n = r.count(52)
	if r.Err() != nil {
		return
	}
	m.PrePrepares = make([]PrePrepare, n)
	for i := 0; i < n; i++ {
		m.PrePrepares[i].unmarshal(r)
	}
}

// ---- ClientResponse ----

// ScanRow is one record returned by a range scan: the key it was stored
// under and the value observed at the scan's position in the serial order.
type ScanRow struct {
	Key   uint64
	Value []byte
}

// ReadResult is the outcome of one read or scan operation. For a point
// read (Scan false) it reports whether the key existed and, if so, the
// value observed at the transaction's position in the serial order. For a
// range scan (Scan true) Rows carries the matching records in ascending
// key order, truncated to the op's limit; Found and Value are unused.
type ReadResult struct {
	Found bool
	Value []byte
	Scan  bool
	Rows  []ScanRow
}

// scanMarker is the per-result tag byte that distinguishes a scan result
// from a point read on the wire: 0 = not found, 1 = found, 2 = scan rows.
// Pre-scan peers only ever emitted 0/1, so their bytes decode unchanged.
const scanMarker = 2

// marshalReadResult appends one result: [marker u8] then either the point
// read's value blob or the scan arm [u32 rows]([u64 key][value blob])...
func marshalReadResult(w *Writer, res *ReadResult) {
	if res.Scan {
		w.U8(scanMarker)
		w.U32(uint32(len(res.Rows)))
		for i := range res.Rows {
			w.U64(res.Rows[i].Key)
			w.Blob(res.Rows[i].Value)
		}
		return
	}
	if res.Found {
		w.U8(1)
	} else {
		w.U8(0)
	}
	w.Blob(res.Value)
}

// unmarshalReadResult decodes one result written by marshalReadResult.
func unmarshalReadResult(r *Reader, res *ReadResult) {
	switch marker := r.U8(); marker {
	case scanMarker:
		res.Scan = true
		rows := r.count(12) // u64 key + u32 length prefix per row
		if r.Err() != nil || rows == 0 {
			return
		}
		res.Rows = make([]ScanRow, rows)
		for i := 0; i < rows; i++ {
			res.Rows[i].Key = r.U64()
			res.Rows[i].Value = r.Blob()
		}
	default:
		res.Found = marker != 0
		res.Value = r.Blob()
	}
}

// marshalReadResults appends the optional read-result tail: nothing at all
// for write-only responses (preserving the pre-read wire bytes), else a
// count plus one marshalReadResult per result.
func marshalReadResults(w *Writer, results []ReadResult) {
	if len(results) == 0 {
		return
	}
	w.U32(uint32(len(results)))
	for i := range results {
		marshalReadResult(w, &results[i])
	}
}

// marshalBusy appends the optional busy gauge after the read-result tail.
// Zero (the idle common case) writes nothing, keeping write-only responses
// byte-identical to the historical form; a nonzero gauge with no reads
// first writes an explicit zero read count so the decoder can tell the
// tails apart.
func marshalBusy(w *Writer, reads []ReadResult, busy uint8) {
	if busy == 0 {
		return
	}
	if len(reads) == 0 {
		w.U32(0)
	}
	w.U8(busy)
}

// unmarshalBusy decodes the optional busy gauge: whatever single byte
// remains once the read results are consumed. Absent bytes mean an idle
// (or pre-gauge) replica.
func unmarshalBusy(r *Reader) uint8 {
	if r.Remaining() == 0 {
		return 0
	}
	return r.U8()
}

// unmarshalReadResults decodes the optional tail; absent bytes mean a
// write-only response, which is how pre-read peers encode everything.
// Reading exactly the declared count leaves any bytes past the results —
// the optional busy gauge — for the caller.
func unmarshalReadResults(r *Reader) []ReadResult {
	if r.Remaining() == 0 {
		return nil
	}
	n := r.count(5)
	if r.Err() != nil || n == 0 {
		return nil
	}
	results := make([]ReadResult, n)
	for i := 0; i < n; i++ {
		unmarshalReadResult(r, &results[i])
	}
	return results
}

// ResponseDigest derives the deterministic execution result every correct
// replica reports for one request: a hash over the assigned sequence
// number, the request identity, and the read results in (transaction, op)
// order. Replicas fold the read values into the digest so a client's
// matching-result quorum attests them — and clients must recompute the
// digest over a response's carried ReadResults and discard mismatches,
// because votes are counted on Result alone: without the recomputation a
// single Byzantine replica could copy the correct Result from honest
// replicas and attach forged read values. Scan results fold their marker,
// row count, and every row's key and value, so forging, truncating, or
// reordering scan rows changes the digest exactly like forging a point
// read. With no reads the digest is byte-identical to the historical
// write-only form, and point-read-only digests match the pre-scan form.
func ResponseDigest(seq SeqNum, client ClientID, clientSeq uint64, reads []ReadResult) Digest {
	w := GetWriter()
	w.U64(uint64(seq))
	w.U32(uint32(client))
	w.U64(clientSeq)
	for i := range reads {
		if reads[i].Scan {
			w.U8(scanMarker)
			w.U32(uint32(len(reads[i].Rows)))
			for j := range reads[i].Rows {
				w.U64(reads[i].Rows[j].Key)
				w.Blob(reads[i].Rows[j].Value)
			}
			continue
		}
		found := byte(0)
		if reads[i].Found {
			found = 1
		}
		w.U8(found)
		w.Blob(reads[i].Value)
	}
	d := sha256.Sum256(w.Bytes())
	PutWriter(w)
	return d
}

// ClientResponse is a replica's reply for one client request. PBFT clients
// accept a result after f+1 matching responses; Zyzzyva's fast path needs
// all 3f+1 (Section 2.1). ReadResults carries the values observed by the
// request's read operations, in (transaction, op) order; Result covers
// them (ResponseDigest), so matching responses attest the read values too.
// Busy is the replica's queue-saturation gauge (0 idle .. 255 full) at
// execution time — advisory backpressure for gateways, deliberately
// outside Result and outside the client's vote key, so replicas reporting
// different load still form a quorum.
type ClientResponse struct {
	View        View
	Seq         SeqNum
	Client      ClientID
	ClientSeq   uint64
	Result      Digest
	Replica     ReplicaID
	ReadResults []ReadResult
	Busy        uint8
}

// Type implements Message.
func (m *ClientResponse) Type() MsgType { return MsgClientResponse }

func (m *ClientResponse) marshal(w *Writer) {
	w.U64(uint64(m.View))
	w.U64(uint64(m.Seq))
	w.U32(uint32(m.Client))
	w.U64(m.ClientSeq)
	w.Bytes32(m.Result)
	w.U16(uint16(m.Replica))
	marshalReadResults(w, m.ReadResults)
	marshalBusy(w, m.ReadResults, m.Busy)
}

func (m *ClientResponse) unmarshal(r *Reader) {
	m.View = View(r.U64())
	m.Seq = SeqNum(r.U64())
	m.Client = ClientID(r.U32())
	m.ClientSeq = r.U64()
	m.Result = r.Bytes32()
	m.Replica = ReplicaID(r.U16())
	m.ReadResults = unmarshalReadResults(r)
	m.Busy = unmarshalBusy(r)
}

// ---- Zyzzyva messages ----

// OrderedRequest is Zyzzyva's counterpart of the pre-prepare: the primary
// assigns (view, seq) and extends the history hash chain
// h_k = H(h_{k-1} || d_k); backups execute speculatively on receipt.
type OrderedRequest struct {
	View     View
	Seq      SeqNum
	Digest   Digest
	History  Digest
	Requests []ClientRequest
}

// Type implements Message.
func (m *OrderedRequest) Type() MsgType { return MsgOrderedRequest }

func (m *OrderedRequest) marshal(w *Writer) {
	w.U64(uint64(m.View))
	w.U64(uint64(m.Seq))
	w.Bytes32(m.Digest)
	w.Bytes32(m.History)
	w.U32(uint32(len(m.Requests)))
	for i := range m.Requests {
		m.Requests[i].marshal(w)
	}
}

func (m *OrderedRequest) unmarshal(r *Reader) {
	m.View = View(r.U64())
	m.Seq = SeqNum(r.U64())
	m.Digest = r.Bytes32()
	m.History = r.Bytes32()
	n := r.count(20)
	if r.Err() != nil {
		return
	}
	m.Requests = make([]ClientRequest, n)
	for i := 0; i < n; i++ {
		m.Requests[i].unmarshal(r)
	}
}

// Size returns the encoded size in bytes, used for bandwidth accounting.
func (m *OrderedRequest) Size() int {
	n := 8 + 8 + 32 + 32 + 4
	for i := range m.Requests {
		n += m.Requests[i].Size()
	}
	return n
}

// SpecResponse is a replica's speculative reply to the client, binding the
// result to the replica's history hash so the client can detect divergence.
// ReadResults mirrors ClientResponse: read values in (txn, op) order,
// attested by Result. Busy mirrors ClientResponse's advisory load gauge.
type SpecResponse struct {
	View        View
	Seq         SeqNum
	Digest      Digest
	History     Digest
	Client      ClientID
	ClientSeq   uint64
	Result      Digest
	Replica     ReplicaID
	ReadResults []ReadResult
	Busy        uint8
}

// Type implements Message.
func (m *SpecResponse) Type() MsgType { return MsgSpecResponse }

func (m *SpecResponse) marshal(w *Writer) {
	w.U64(uint64(m.View))
	w.U64(uint64(m.Seq))
	w.Bytes32(m.Digest)
	w.Bytes32(m.History)
	w.U32(uint32(m.Client))
	w.U64(m.ClientSeq)
	w.Bytes32(m.Result)
	w.U16(uint16(m.Replica))
	marshalReadResults(w, m.ReadResults)
	marshalBusy(w, m.ReadResults, m.Busy)
}

func (m *SpecResponse) unmarshal(r *Reader) {
	m.View = View(r.U64())
	m.Seq = SeqNum(r.U64())
	m.Digest = r.Bytes32()
	m.History = r.Bytes32()
	m.Client = ClientID(r.U32())
	m.ClientSeq = r.U64()
	m.Result = r.Bytes32()
	m.Replica = ReplicaID(r.U16())
	m.ReadResults = unmarshalReadResults(r)
	m.Busy = unmarshalBusy(r)
}

// CommitCert is Zyzzyva's slow path: a client that gathered only 2f+1
// matching speculative responses (but not all 3f+1) asks the replicas to
// commit that history prefix durably.
type CommitCert struct {
	Client    ClientID
	ClientSeq uint64
	View      View
	Seq       SeqNum
	History   Digest
	Replicas  []ReplicaID
}

// Type implements Message.
func (m *CommitCert) Type() MsgType { return MsgCommitCert }

func (m *CommitCert) marshal(w *Writer) {
	w.U32(uint32(m.Client))
	w.U64(m.ClientSeq)
	w.U64(uint64(m.View))
	w.U64(uint64(m.Seq))
	w.Bytes32(m.History)
	w.U32(uint32(len(m.Replicas)))
	for _, rep := range m.Replicas {
		w.U16(uint16(rep))
	}
}

func (m *CommitCert) unmarshal(r *Reader) {
	m.Client = ClientID(r.U32())
	m.ClientSeq = r.U64()
	m.View = View(r.U64())
	m.Seq = SeqNum(r.U64())
	m.History = r.Bytes32()
	n := r.count(2)
	if r.Err() != nil {
		return
	}
	m.Replicas = make([]ReplicaID, n)
	for i := 0; i < n; i++ {
		m.Replicas[i] = ReplicaID(r.U16())
	}
}

// LocalCommit acknowledges a CommitCert; the client completes the request
// after 2f+1 local commits.
type LocalCommit struct {
	View      View
	Seq       SeqNum
	History   Digest
	Client    ClientID
	ClientSeq uint64
	Replica   ReplicaID
}

// Type implements Message.
func (m *LocalCommit) Type() MsgType { return MsgLocalCommit }

func (m *LocalCommit) marshal(w *Writer) {
	w.U64(uint64(m.View))
	w.U64(uint64(m.Seq))
	w.Bytes32(m.History)
	w.U32(uint32(m.Client))
	w.U64(m.ClientSeq)
	w.U16(uint16(m.Replica))
}

func (m *LocalCommit) unmarshal(r *Reader) {
	m.View = View(r.U64())
	m.Seq = SeqNum(r.U64())
	m.History = r.Bytes32()
	m.Client = ClientID(r.U32())
	m.ClientSeq = r.U64()
	m.Replica = ReplicaID(r.U16())
}

// ---- Local read path ----

// ReadRequest asks a single replica to answer point reads and range scans
// from its last-executed state, bypassing consensus entirely (the
// Fabric-style read path). The guarantee is per-key freshness, not a
// snapshot: the read lane runs concurrently with the execute stage
// applying later batches, so each key individually reflects at least every
// batch retired up to the reply's Seq — possibly plus writes of a batch
// still mid-application — but a multi-key read (and the rows of a scan)
// may observe different keys at different positions of the serial order.
// Reads that must be serialized in the global order (or atomic across
// keys) go through consensus as OpRead/OpScan transactions instead.
// The reply may also trail the cluster head; ClientSeq matches the reply
// to the request. The replica only answers a ReadRequest whose Client
// matches the authenticated sender, mirroring the signed-Client binding of
// the ordered path.
//
// MinSeq is the client's staleness bound: the replica answers only if its
// last-retired sequence number is at least MinSeq, and otherwise returns a
// reply with no results (its Seq stamp reporting how far it actually got)
// so the client can fall back to the quorum path. Scans carries range
// reads (Key/EndKey/Limit per entry; Kind is implied); their results
// follow the Keys results in the reply, in request order. Both fields ride
// an optional tail — a request without them is byte-identical to the
// pre-scan wire form, and old bytes decode with MinSeq 0 and no scans.
type ReadRequest struct {
	Client    ClientID
	ClientSeq uint64
	Keys      []uint64
	MinSeq    SeqNum
	Scans     []Op
}

// Type implements Message.
func (m *ReadRequest) Type() MsgType { return MsgReadRequest }

func (m *ReadRequest) marshal(w *Writer) {
	w.U32(uint32(m.Client))
	w.U64(m.ClientSeq)
	w.U32(uint32(len(m.Keys)))
	for _, k := range m.Keys {
		w.U64(k)
	}
	if m.MinSeq == 0 && len(m.Scans) == 0 {
		return // pre-scan wire form, byte-identical
	}
	w.U64(uint64(m.MinSeq))
	w.U32(uint32(len(m.Scans)))
	for i := range m.Scans {
		w.U64(m.Scans[i].Key)
		w.U64(m.Scans[i].EndKey)
		w.U32(m.Scans[i].Limit)
	}
}

func (m *ReadRequest) unmarshal(r *Reader) {
	m.Client = ClientID(r.U32())
	m.ClientSeq = r.U64()
	n := r.count(8)
	if r.Err() != nil {
		return
	}
	m.Keys = make([]uint64, n)
	for i := 0; i < n; i++ {
		m.Keys[i] = r.U64()
	}
	if r.Err() != nil || r.Remaining() == 0 {
		return // pre-scan peer: no staleness bound, no scans
	}
	m.MinSeq = SeqNum(r.U64())
	n = r.count(20)
	if r.Err() != nil || n == 0 {
		return
	}
	m.Scans = make([]Op, n)
	for i := 0; i < n; i++ {
		m.Scans[i].Kind = OpScan
		m.Scans[i].Key = r.U64()
		m.Scans[i].EndKey = r.U64()
		m.Scans[i].Limit = r.U32()
	}
}

// ReadReply answers a ReadRequest from one replica's store. Seq is a lower
// bound on freshness: every batch retired up to and including Seq is
// reflected in every result, but individual keys may additionally reflect
// writes from later batches still being applied (see ReadRequest for the
// full semantics). A client can bound its staleness with Seq but must not
// treat the results as a cross-key snapshot. Results answers the request's
// Keys first, then its Scans, each in request order; a reply with no
// results to a request that asked for some is the staleness refusal
// (lastRetired < MinSeq — Seq reports how far the replica actually got).
type ReadReply struct {
	Client    ClientID
	ClientSeq uint64
	Seq       SeqNum
	Replica   ReplicaID
	Results   []ReadResult
}

// Type implements Message.
func (m *ReadReply) Type() MsgType { return MsgReadReply }

func (m *ReadReply) marshal(w *Writer) {
	w.U32(uint32(m.Client))
	w.U64(m.ClientSeq)
	w.U64(uint64(m.Seq))
	w.U16(uint16(m.Replica))
	w.U32(uint32(len(m.Results)))
	for i := range m.Results {
		marshalReadResult(w, &m.Results[i])
	}
}

func (m *ReadReply) unmarshal(r *Reader) {
	m.Client = ClientID(r.U32())
	m.ClientSeq = r.U64()
	m.Seq = SeqNum(r.U64())
	m.Replica = ReplicaID(r.U16())
	n := r.count(5)
	if r.Err() != nil {
		return
	}
	m.Results = make([]ReadResult, n)
	for i := 0; i < n; i++ {
		unmarshalReadResult(r, &m.Results[i])
	}
}

package types

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// stubBuffers is a FrameBuffers that tracks outstanding borrows and
// scribbles over returned buffers, so a test can prove (a) every buffer
// comes back exactly once and (b) nothing aliases a buffer after it did.
type stubBuffers struct {
	mu   sync.Mutex
	outs int
}

func (s *stubBuffers) Get(n int) []byte {
	s.mu.Lock()
	s.outs++
	s.mu.Unlock()
	return make([]byte, 0, n)
}

func (s *stubBuffers) Put(b []byte) {
	s.mu.Lock()
	s.outs--
	s.mu.Unlock()
	b = b[:cap(b)]
	for i := range b {
		b[i] = 0xDE // poison: any alias still reading this buffer sees it
	}
}

func (s *stubBuffers) outstanding() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.outs
}

func TestArenaRefCountReturnsBufferOnce(t *testing.T) {
	bufs := &stubBuffers{}
	a := NewArena(bufs.Get(64), bufs)
	a.Retain()
	a.Retain()
	a.Release()
	a.Release()
	if got := bufs.outstanding(); got != 1 {
		t.Fatalf("buffer returned with a reference still held (outstanding=%d)", got)
	}
	a.Release() // last reference
	if got := bufs.outstanding(); got != 0 {
		t.Fatalf("outstanding=%d after final release, want 0", got)
	}
}

func TestArenaNilSafe(t *testing.T) {
	var a *Arena
	a.Retain()
	a.Release()
	e := &Envelope{}
	e.Attach(nil)
	e.Release()
	var nilEnv *Envelope
	nilEnv.Release()
}

// TestPooledDecodeCopiesSurviveRecycle is the core aliasing-safety
// contract: after every envelope from a pooled frame is released (and the
// frame buffer poisoned and recycled), messages decoded in copy mode and
// the copied Auth bytes must be unaffected.
func TestPooledDecodeCopiesSurviveRecycle(t *testing.T) {
	payload := strings.Repeat("req-payload-", 32)
	req := &ClientRequest{
		Client:   7,
		FirstSeq: 99,
		Txns: []Transaction{{Ops: []Op{
			{Kind: OpWrite, Key: 42, Value: []byte(payload)},
		}}},
		Sig: []byte("client-signature"),
	}
	in := []*Envelope{
		{From: ClientNode(7), To: ReplicaNode(0), Type: MsgClientRequest,
			Body: MarshalBody(req), Auth: []byte("mac-bytes-0123456789")},
		{From: ReplicaNode(1), To: ReplicaNode(0), Type: MsgPrepare,
			Body: MarshalBody(&Prepare{View: 1, Seq: 5, Replica: 1}), Auth: []byte("auth-two")},
	}
	var frame bytes.Buffer
	if err := WriteBatchFrame(&frame, in); err != nil {
		t.Fatal(err)
	}

	bufs := &stubBuffers{}
	envs, err := ReadFramesPooled(&frame, bufs)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 2 {
		t.Fatalf("decoded %d envelopes, want 2", len(envs))
	}

	// Copy-decode the first body, keep the second envelope's Auth, then
	// retire everything so the frame buffer is poisoned and recycled.
	msg, err := DecodeBody(envs[0].Type, envs[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	auth := envs[1].Auth
	for _, e := range envs {
		e.Release()
	}
	if got := bufs.outstanding(); got != 0 {
		t.Fatalf("frame buffer not recycled (outstanding=%d)", got)
	}

	got, ok := msg.(*ClientRequest)
	if !ok {
		t.Fatalf("decoded %T, want *ClientRequest", msg)
	}
	if string(got.Txns[0].Ops[0].Value) != payload {
		t.Fatal("copy-decoded message mutated by recycled frame buffer")
	}
	if !bytes.Equal(got.Sig, []byte("client-signature")) {
		t.Fatal("copy-decoded signature mutated by recycled frame buffer")
	}
	// Auth must be a copy too: engines retain authenticators in commit
	// certificates long past the frame's lifetime.
	if !bytes.Equal(auth, []byte("auth-two")) {
		t.Fatal("envelope Auth aliased the recycled frame buffer")
	}
}

// TestDecodeBodyAliasSharesBuffer pins down the difference between the two
// decode modes: alias-mode fields observe buffer mutation, copy-mode
// fields do not. This is why the live pipeline decodes in copy mode.
func TestDecodeBodyAliasSharesBuffer(t *testing.T) {
	req := &ClientRequest{
		Client: 1, FirstSeq: 1,
		Txns: []Transaction{{Ops: []Op{{Kind: OpWrite, Key: 1, Value: []byte("AAAA")}}}},
		Sig:  []byte("sig0"),
	}
	body := MarshalBody(req)

	aliased, err := DecodeBodyAlias(MsgClientRequest, body)
	if err != nil {
		t.Fatal(err)
	}
	copied, err := DecodeBody(MsgClientRequest, body)
	if err != nil {
		t.Fatal(err)
	}
	for i := range body {
		body[i] = 0xFF
	}
	if string(aliased.(*ClientRequest).Txns[0].Ops[0].Value) == "AAAA" {
		t.Fatal("alias-mode decode did not alias the input buffer")
	}
	if string(copied.(*ClientRequest).Txns[0].Ops[0].Value) != "AAAA" {
		t.Fatal("copy-mode decode aliased the input buffer")
	}
}

func TestPooledEnvelopeRecycleZeroes(t *testing.T) {
	e := AcquireEnvelope()
	e.From = ReplicaNode(3)
	e.Body = []byte("body")
	e.Auth = []byte("auth")
	e.Release()
	// The recycled envelope must come back zeroed no matter which Acquire
	// returns it; drain a few to be robust against pool internals.
	for i := 0; i < 8; i++ {
		got := AcquireEnvelope()
		if got.Body != nil || got.Auth != nil || got.From != 0 {
			t.Fatalf("recycled envelope not zeroed: %+v", got)
		}
		got.Release()
	}
}

// TestMarshalBodyArenaRoundTrip checks the pooled encode path produces the
// same bytes as the copying one and returns its buffer on release.
func TestMarshalBodyArenaRoundTrip(t *testing.T) {
	msg := &PrePrepare{View: 2, Seq: 77, Digest: Digest{1, 2, 3}}
	want := MarshalBody(msg)

	bufs := &stubBuffers{}
	body, arena := MarshalBodyArena(msg, bufs, 0)
	if !bytes.Equal(body, want) {
		t.Fatalf("pooled encode = %x, want %x", body, want)
	}
	e := AcquireEnvelope()
	e.Body = body
	e.Attach(arena)
	arena.Release() // builder's reference
	if got := bufs.outstanding(); got != 1 {
		t.Fatalf("buffer recycled while an envelope still carries it (outstanding=%d)", got)
	}
	e.Release()
	if got := bufs.outstanding(); got != 0 {
		t.Fatalf("outstanding=%d after last release, want 0", got)
	}
}

// TestMarshalBodyArenaPreservesWriterScratch is a regression test: the
// pooled encode borrows a Writer from the shared writer pool and swaps in
// an arena buffer. An earlier version returned the writer with a nil
// buffer, so every later GetWriter user (digests, signing bytes) re-grew
// from scratch — more allocation with pooling on than off.
func TestMarshalBodyArenaPreservesWriterScratch(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts at random; pool occupancy is nondeterministic")
	}
	// Prime the pool with a writer whose scratch has real capacity.
	w := GetWriter()
	w.Blob(bytes.Repeat([]byte{0xAB}, 4096))
	PutWriter(w)

	bufs := &stubBuffers{}
	for i := 0; i < 32; i++ {
		_, arena := MarshalBodyArena(&Prepare{View: 1, Seq: SeqNum(i)}, bufs, 0)
		arena.Release()
	}

	// After many pooled encodes, grabbing writers must still find at least
	// one with non-trivial capacity; a poisoned pool would be all-nil.
	found := false
	var ws []*Writer
	for i := 0; i < 8; i++ {
		w := GetWriter()
		if cap(w.buf) >= 4096 {
			found = true
		}
		ws = append(ws, w)
	}
	for _, w := range ws {
		PutWriter(w)
	}
	if !found {
		t.Fatal("pooled encode stripped writer-pool scratch buffers")
	}
}

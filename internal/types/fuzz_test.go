package types_test

import (
	"bytes"
	"testing"

	"resilientdb/internal/chaos"
	"resilientdb/internal/pool"
	"resilientdb/internal/types"
)

// validFrameCorpus returns well-formed wire frames so the fuzzer starts
// from inputs that exercise the success paths too: a single-envelope
// frame and a batch frame carrying two envelopes.
func validFrameCorpus(tb testing.TB) [][]byte {
	tb.Helper()
	env := &types.Envelope{
		From: types.ReplicaNode(0),
		To:   types.ReplicaNode(1),
		Type: types.MsgPrepare,
		Body: []byte{1, 2, 3},
		Auth: []byte{4, 5, 6},
	}
	var single, batch bytes.Buffer
	if err := types.WriteFrame(&single, env); err != nil {
		tb.Fatalf("encoding seed frame: %v", err)
	}
	if err := types.WriteBatchFrame(&batch, []*types.Envelope{env, env}); err != nil {
		tb.Fatalf("encoding seed batch frame: %v", err)
	}
	return [][]byte{single.Bytes(), batch.Bytes()}
}

// FuzzReadFrames feeds arbitrary byte streams to the copying frame
// reader. The corpus seeds are the chaos harness's malformed frames —
// every shape its fabric injects on the wire — plus valid frames.
// Decoding must either fail cleanly or yield envelopes that re-encode;
// any panic is a bug to fix in the decoder, not to recover from.
func FuzzReadFrames(f *testing.F) {
	for _, frame := range chaos.MalformedFrames() {
		f.Add(frame)
	}
	for _, frame := range validFrameCorpus(f) {
		f.Add(frame)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		envs, err := types.ReadFrames(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, env := range envs {
			var buf bytes.Buffer
			if err := types.WriteFrame(&buf, env); err != nil {
				t.Fatalf("decoded envelope does not re-encode: %v", err)
			}
		}
	})
}

// FuzzReadFramesPooled covers the zero-copy reader: same inputs, plus
// the arena reference-count contract — every returned envelope is
// released exactly once and the input must not be able to corrupt the
// pool.
func FuzzReadFramesPooled(f *testing.F) {
	for _, frame := range chaos.MalformedFrames() {
		f.Add(frame)
	}
	for _, frame := range validFrameCorpus(f) {
		f.Add(frame)
	}
	bufs := new(pool.BytePool)
	f.Fuzz(func(t *testing.T, data []byte) {
		envs, err := types.ReadFramesPooled(bytes.NewReader(data), bufs)
		if err != nil {
			return
		}
		for _, env := range envs {
			env.Release()
		}
	})
}

// FuzzDecodeBody covers body decoding for every message type the wire
// can carry, seeded with the chaos harness's malformed bodies. A body
// that decodes must re-marshal without panicking.
func FuzzDecodeBody(f *testing.F) {
	kinds := []types.MsgType{
		types.MsgClientRequest, types.MsgClientResponse, types.MsgPrePrepare,
		types.MsgPrepare, types.MsgCommit, types.MsgCheckpoint,
		types.MsgViewChange, types.MsgNewView,
	}
	for _, body := range chaos.MalformedBodies() {
		for _, kind := range kinds {
			f.Add(uint8(kind), body)
		}
	}
	f.Fuzz(func(t *testing.T, kind uint8, body []byte) {
		msg, err := types.DecodeBody(types.MsgType(kind), body)
		if err != nil {
			return
		}
		_ = types.MarshalBody(msg)
	})
}

package types_test

import (
	"bytes"
	"testing"

	"resilientdb/internal/chaos"
	"resilientdb/internal/pool"
	"resilientdb/internal/types"
)

// validFrameCorpus returns well-formed wire frames so the fuzzer starts
// from inputs that exercise the success paths too: a single-envelope
// frame and a batch frame carrying two envelopes.
func validFrameCorpus(tb testing.TB) [][]byte {
	tb.Helper()
	env := &types.Envelope{
		From: types.ReplicaNode(0),
		To:   types.ReplicaNode(1),
		Type: types.MsgPrepare,
		Body: []byte{1, 2, 3},
		Auth: []byte{4, 5, 6},
	}
	var single, batch bytes.Buffer
	if err := types.WriteFrame(&single, env); err != nil {
		tb.Fatalf("encoding seed frame: %v", err)
	}
	if err := types.WriteBatchFrame(&batch, []*types.Envelope{env, env}); err != nil {
		tb.Fatalf("encoding seed batch frame: %v", err)
	}
	out := [][]byte{single.Bytes(), batch.Bytes()}
	// Frames whose envelope bodies carry the scan wire arms (typed ops
	// with hostile bounds, scan read results) so mutations start from the
	// newest layouts too.
	for _, seed := range scanBodyCorpus() {
		scanEnv := &types.Envelope{
			From: types.ClientNode(1),
			To:   types.ReplicaNode(0),
			Type: seed.kind,
			Body: seed.body,
			Auth: []byte{7},
		}
		var buf bytes.Buffer
		if err := types.WriteFrame(&buf, scanEnv); err != nil {
			tb.Fatalf("encoding scan seed frame: %v", err)
		}
		out = append(out, buf.Bytes())
	}
	return out
}

// FuzzReadFrames feeds arbitrary byte streams to the copying frame
// reader. The corpus seeds are the chaos harness's malformed frames —
// every shape its fabric injects on the wire — plus valid frames.
// Decoding must either fail cleanly or yield envelopes that re-encode;
// any panic is a bug to fix in the decoder, not to recover from.
func FuzzReadFrames(f *testing.F) {
	for _, frame := range chaos.MalformedFrames() {
		f.Add(frame)
	}
	for _, frame := range validFrameCorpus(f) {
		f.Add(frame)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		envs, err := types.ReadFrames(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, env := range envs {
			var buf bytes.Buffer
			if err := types.WriteFrame(&buf, env); err != nil {
				t.Fatalf("decoded envelope does not re-encode: %v", err)
			}
		}
	})
}

// FuzzReadFramesPooled covers the zero-copy reader: same inputs, plus
// the arena reference-count contract — every returned envelope is
// released exactly once and the input must not be able to corrupt the
// pool.
func FuzzReadFramesPooled(f *testing.F) {
	for _, frame := range chaos.MalformedFrames() {
		f.Add(frame)
	}
	for _, frame := range validFrameCorpus(f) {
		f.Add(frame)
	}
	bufs := new(pool.BytePool)
	f.Fuzz(func(t *testing.T, data []byte) {
		envs, err := types.ReadFramesPooled(bytes.NewReader(data), bufs)
		if err != nil {
			return
		}
		for _, env := range envs {
			env.Release()
		}
	})
}

// scanBodyCorpus returns well-formed bodies exercising the scan wire
// arms, including semantically hostile bounds the decoder must carry
// without special-casing: an inverted range (start > end), a zero limit,
// and a saturating limit. Execution treats the first two as empty scans
// and caps the third; the wire layer's only job is round-tripping them.
func scanBodyCorpus() []struct {
	kind types.MsgType
	body []byte
} {
	invReq := &types.ClientRequest{Client: 1, FirstSeq: 1, Sig: []byte{1}, Txns: []types.Transaction{
		{Client: 1, ClientSeq: 1, Ops: []types.Op{
			{Kind: types.OpScan, Key: 10, EndKey: 5, Limit: 0},
			{Kind: types.OpWrite, Key: 3, Value: []byte("w")},
		}},
	}}
	satReq := &types.ClientRequest{Client: 1, FirstSeq: 2, Sig: []byte{1}, Txns: []types.Transaction{
		{Client: 1, ClientSeq: 2, Ops: []types.Op{
			{Kind: types.OpScan, Key: 0, EndKey: ^uint64(0), Limit: ^uint32(0)},
		}},
	}}
	readReq := &types.ReadRequest{Client: 1, ClientSeq: 3, Keys: []uint64{7}, MinSeq: 9, Scans: []types.Op{
		{Kind: types.OpScan, Key: 4, EndKey: 2, Limit: 0},
	}}
	resp := &types.ClientResponse{Seq: 1, Client: 1, ClientSeq: 1, ReadResults: []types.ReadResult{
		{Scan: true, Rows: []types.ScanRow{{Key: 5, Value: []byte("v")}, {Key: 6}}},
		{Scan: true},
		{Found: true, Value: []byte("p")},
	}}
	return []struct {
		kind types.MsgType
		body []byte
	}{
		{types.MsgClientRequest, types.MarshalBody(invReq)},
		{types.MsgClientRequest, types.MarshalBody(satReq)},
		{types.MsgReadRequest, types.MarshalBody(readReq)},
		{types.MsgClientResponse, types.MarshalBody(resp)},
	}
}

// FuzzDecodeBody covers body decoding for every message type the wire
// can carry, seeded with the chaos harness's malformed bodies. A body
// that decodes must re-marshal without panicking.
func FuzzDecodeBody(f *testing.F) {
	kinds := []types.MsgType{
		types.MsgClientRequest, types.MsgClientResponse, types.MsgPrePrepare,
		types.MsgPrepare, types.MsgCommit, types.MsgCheckpoint,
		types.MsgViewChange, types.MsgNewView,
		types.MsgReadRequest, types.MsgReadReply,
	}
	for _, body := range chaos.MalformedBodies() {
		for _, kind := range kinds {
			f.Add(uint8(kind), body)
		}
	}
	for _, seed := range scanBodyCorpus() {
		f.Add(uint8(seed.kind), seed.body)
	}
	f.Fuzz(func(t *testing.T, kind uint8, body []byte) {
		msg, err := types.DecodeBody(types.MsgType(kind), body)
		if err != nil {
			return
		}
		_ = types.MarshalBody(msg)
	})
}

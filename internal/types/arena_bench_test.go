package types_test

// Allocation-accounting benchmarks for the zero-copy hot path, the
// package-level counterparts of the `allocs` bench experiment: run with
// -benchmem to compare allocs/op between the copying and pooled forms.

import (
	"bytes"
	"testing"

	"resilientdb/internal/pool"
	"resilientdb/internal/types"
)

func benchFrame(b *testing.B) []byte {
	b.Helper()
	envs := make([]*types.Envelope, 0, 64)
	for i := 0; i < 64; i++ {
		envs = append(envs, &types.Envelope{
			From: types.ReplicaNode(1),
			To:   types.ReplicaNode(0),
			Type: types.MsgPrepare,
			Body: bytes.Repeat([]byte{byte(i)}, 256),
			Auth: bytes.Repeat([]byte{0xA5}, 32),
		})
	}
	var w types.Writer
	types.AppendBatchFrame(&w, envs)
	return append([]byte(nil), w.Bytes()...)
}

func BenchmarkFrameDecodeCopy(b *testing.B) {
	frame := benchFrame(b)
	r := bytes.NewReader(frame)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		if _, err := types.ReadFrames(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameDecodePooled(b *testing.B) {
	frame := benchFrame(b)
	r := bytes.NewReader(frame)
	bufs := new(pool.BytePool)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		envs, err := types.ReadFramesPooled(r, bufs)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range envs {
			e.Release()
		}
	}
}

func benchMessage() types.Message {
	return &types.Prepare{View: 3, Seq: 12345, Digest: types.Digest{1, 2, 3}, Replica: 2}
}

func BenchmarkMarshalBodyCopy(b *testing.B) {
	msg := benchMessage()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = types.MarshalBody(msg)
	}
}

func BenchmarkMarshalBodyArena(b *testing.B) {
	msg := benchMessage()
	bufs := new(pool.BytePool)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, arena := types.MarshalBodyArena(msg, bufs, 0)
		arena.Release()
	}
}

package types

import (
	"errors"
	"fmt"
	"io"
)

// ErrUnknownType is returned when a decoder encounters a type tag outside
// the registered message set.
var ErrUnknownType = errors.New("types: unknown message type")

// Encode appends the tagged encoding of msg to w: one type byte followed by
// the message body.
func Encode(w *Writer, msg Message) {
	w.U8(uint8(msg.Type()))
	msg.marshal(w)
}

// EncodeToBytes returns the tagged encoding of msg in a fresh buffer.
func EncodeToBytes(msg Message) []byte {
	var w Writer
	Encode(&w, msg)
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	return out
}

// MarshalBody returns the body encoding of msg without the type tag. It is
// the canonical input for signing and MAC computation.
func MarshalBody(msg Message) []byte {
	var w Writer
	msg.marshal(&w)
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	return out
}

// newMessage allocates the concrete message for a type tag.
func newMessage(t MsgType) (Message, error) {
	switch t {
	case MsgClientRequest:
		return &ClientRequest{}, nil
	case MsgPrePrepare:
		return &PrePrepare{}, nil
	case MsgPrepare:
		return &Prepare{}, nil
	case MsgCommit:
		return &Commit{}, nil
	case MsgCheckpoint:
		return &Checkpoint{}, nil
	case MsgViewChange:
		return &ViewChange{}, nil
	case MsgNewView:
		return &NewView{}, nil
	case MsgClientResponse:
		return &ClientResponse{}, nil
	case MsgOrderedRequest:
		return &OrderedRequest{}, nil
	case MsgSpecResponse:
		return &SpecResponse{}, nil
	case MsgCommitCert:
		return &CommitCert{}, nil
	case MsgLocalCommit:
		return &LocalCommit{}, nil
	case MsgReadRequest:
		return &ReadRequest{}, nil
	case MsgReadReply:
		return &ReadReply{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, t)
	}
}

// Decode parses a tagged encoding produced by Encode.
func Decode(b []byte) (Message, error) {
	if len(b) < 1 {
		return nil, ErrTruncated
	}
	msg, err := newMessage(MsgType(b[0]))
	if err != nil {
		return nil, err
	}
	r := NewReader(b[1:])
	msg.unmarshal(r)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", MsgType(b[0]), err)
	}
	return msg, nil
}

// DecodeBody parses an untagged body encoding for a known message type.
func DecodeBody(t MsgType, b []byte) (Message, error) {
	msg, err := newMessage(t)
	if err != nil {
		return nil, err
	}
	r := NewReader(b)
	msg.unmarshal(r)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("decoding %s body: %w", t, err)
	}
	return msg, nil
}

// Envelope is the transport frame: a tagged message body plus sender,
// destination, and the authenticator (digital signature or MAC, Section 3
// "Expensive Cryptographic Practices") computed over the body.
type Envelope struct {
	From NodeID
	To   NodeID
	Type MsgType
	Body []byte
	Auth []byte
}

// EncodedSize returns the number of bytes WriteFrame will emit.
func (e *Envelope) EncodedSize() int {
	return 4 + 4 + 4 + 1 + 4 + len(e.Body) + 4 + len(e.Auth)
}

// encode appends the envelope wire form (without the outer length prefix).
func (e *Envelope) encode(w *Writer) {
	w.U32(uint32(e.From))
	w.U32(uint32(e.To))
	w.U8(uint8(e.Type))
	w.Blob(e.Body)
	w.Blob(e.Auth)
}

// decode parses the envelope wire form from r in place.
func (e *Envelope) decode(r *Reader) {
	e.From = NodeID(r.U32())
	e.To = NodeID(r.U32())
	e.Type = MsgType(r.U8())
	e.Body = r.Blob()
	e.Auth = r.Blob()
}

// decodeEnvelope parses the envelope wire form.
func decodeEnvelope(b []byte) (*Envelope, error) {
	r := NewReader(b)
	e := &Envelope{}
	e.decode(r)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("decoding envelope: %w", err)
	}
	return e, nil
}

// batchFrameBit marks a frame's length prefix as a multi-envelope batch
// frame. The bit is free because maxFrameLen bounds real lengths far below
// it, and old-style single-envelope frames never set it, so both frame
// kinds coexist on one connection.
const batchFrameBit = 1 << 31

// minEnvelopeSize is the smallest envelope wire form: from, to, type, and
// two empty blobs. It validates batch counts against forged headers.
const minEnvelopeSize = 4 + 4 + 1 + 4 + 4

// AppendFrame appends the length-prefixed single-envelope frame to w.
func AppendFrame(w *Writer, e *Envelope) {
	w.U32(uint32(e.EncodedSize() - 4))
	e.encode(w)
}

// AppendBatchFrame appends a batch frame carrying every envelope in envs:
// a length prefix with the batch bit set, an envelope count, and the
// concatenated envelope encodings. A batch frame costs one length prefix
// and — crucially for the transport's send path — one Write call for the
// whole batch instead of one per envelope.
func AppendBatchFrame(w *Writer, envs []*Envelope) {
	payload := 4
	for _, e := range envs {
		payload += e.EncodedSize() - 4
	}
	w.U32(uint32(payload) | batchFrameBit)
	w.U32(uint32(len(envs)))
	for _, e := range envs {
		e.encode(w)
	}
}

// WriteFrame writes a length-prefixed envelope to w. It is the TCP framing
// used by the transport layer.
func WriteFrame(w io.Writer, e *Envelope) error {
	var wr Writer
	AppendFrame(&wr, e)
	_, err := w.Write(wr.Bytes())
	if err != nil {
		return fmt.Errorf("writing frame: %w", err)
	}
	return nil
}

// WriteBatchFrame writes one batch frame carrying all of envs to w.
func WriteBatchFrame(w io.Writer, envs []*Envelope) error {
	var wr Writer
	AppendBatchFrame(&wr, envs)
	_, err := w.Write(wr.Bytes())
	if err != nil {
		return fmt.Errorf("writing batch frame: %w", err)
	}
	return nil
}

// maxFrameLen bounds a single frame read from the network.
const maxFrameLen = 1 << 28

// ReadFrames reads one frame from r and returns the envelopes it carries:
// exactly one for a single-envelope frame, zero or more for a batch frame.
func ReadFrames(r io.Reader) ([]*Envelope, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err // io.EOF propagates untouched for clean shutdown
	}
	n := uint32(lenBuf[0])<<24 | uint32(lenBuf[1])<<16 | uint32(lenBuf[2])<<8 | uint32(lenBuf[3])
	batch := n&batchFrameBit != 0
	n &^= batchFrameBit
	if n > maxFrameLen {
		return nil, fmt.Errorf("%w: frame of %d bytes", ErrOversized, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("reading frame body: %w", err)
	}
	if !batch {
		e, err := decodeEnvelope(body)
		if err != nil {
			return nil, err
		}
		return []*Envelope{e}, nil
	}
	rd := NewReader(body)
	count := rd.count(minEnvelopeSize)
	envs := make([]*Envelope, 0, count)
	for i := 0; i < count; i++ {
		e := &Envelope{}
		e.decode(rd)
		envs = append(envs, e)
	}
	if err := rd.Err(); err != nil {
		return nil, fmt.Errorf("decoding batch frame: %w", err)
	}
	if rd.Remaining() != 0 {
		return nil, fmt.Errorf("decoding batch frame: %d trailing bytes", rd.Remaining())
	}
	return envs, nil
}

// ReadFrame reads one length-prefixed envelope from r. It rejects batch
// frames that do not carry exactly one envelope; stream readers that must
// accept both frame kinds use ReadFrames.
func ReadFrame(r io.Reader) (*Envelope, error) {
	envs, err := ReadFrames(r)
	if err != nil {
		return nil, err
	}
	if len(envs) != 1 {
		return nil, fmt.Errorf("types: expected single-envelope frame, got batch of %d", len(envs))
	}
	return envs[0], nil
}

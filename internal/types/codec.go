package types

import (
	"errors"
	"fmt"
	"io"
)

// ErrUnknownType is returned when a decoder encounters a type tag outside
// the registered message set.
var ErrUnknownType = errors.New("types: unknown message type")

// Encode appends the tagged encoding of msg to w: one type byte followed by
// the message body.
func Encode(w *Writer, msg Message) {
	w.U8(uint8(msg.Type()))
	msg.marshal(w)
}

// EncodeToBytes returns the tagged encoding of msg in a fresh buffer.
// Callers that append into an existing Writer anyway should call Encode
// directly and skip the intermediate buffer.
func EncodeToBytes(msg Message) []byte {
	w := GetWriter()
	Encode(w, msg)
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	PutWriter(w)
	return out
}

// MarshalBody returns the body encoding of msg without the type tag. It is
// the canonical input for signing and MAC computation. Callers that feed
// the bytes straight into a Writer should use AppendBody instead.
func MarshalBody(msg Message) []byte {
	w := GetWriter()
	msg.marshal(w)
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	PutWriter(w)
	return out
}

// AppendBody appends the body encoding of msg to w — the append-into-
// Writer form of MarshalBody, with no intermediate buffer or copy.
func AppendBody(w *Writer, msg Message) { msg.marshal(w) }

// MarshalBodyArena marshals msg into a buffer borrowed from bufs and
// returns the encoded body along with the arena owning it. The arena
// starts with one reference — the caller's. Attach it to every envelope
// that will carry the body, then release the caller's reference; the
// buffer returns to bufs when the last envelope retires. sizeHint
// preallocates the borrowed buffer (growth past it falls back to a
// heap-allocated buffer, which the arena still recycles on release).
func MarshalBodyArena(msg Message, bufs FrameBuffers, sizeHint int) ([]byte, *Arena) {
	if sizeHint < 256 {
		sizeHint = 256
	}
	// The Writer itself comes from the pool too: handing a stack Writer's
	// address to the Message interface makes it escape, which would put
	// one heap allocation back on every pooled encode. The writer's own
	// scratch buffer is parked and restored around the arena swap — other
	// GetWriter users (digests, signing bytes) rely on pooled writers
	// keeping their grown capacity, so returning one with a nil buffer
	// would put re-growth allocations back on every digest.
	w := GetWriter()
	scratch := w.buf
	w.buf = bufs.Get(sizeHint)
	msg.marshal(w)
	buf := w.buf
	w.buf = scratch
	PutWriter(w)
	return buf, NewArena(buf, bufs)
}

// newMessage allocates the concrete message for a type tag.
func newMessage(t MsgType) (Message, error) {
	switch t {
	case MsgClientRequest:
		return &ClientRequest{}, nil
	case MsgPrePrepare:
		return &PrePrepare{}, nil
	case MsgPrepare:
		return &Prepare{}, nil
	case MsgCommit:
		return &Commit{}, nil
	case MsgCheckpoint:
		return &Checkpoint{}, nil
	case MsgViewChange:
		return &ViewChange{}, nil
	case MsgNewView:
		return &NewView{}, nil
	case MsgClientResponse:
		return &ClientResponse{}, nil
	case MsgOrderedRequest:
		return &OrderedRequest{}, nil
	case MsgSpecResponse:
		return &SpecResponse{}, nil
	case MsgCommitCert:
		return &CommitCert{}, nil
	case MsgLocalCommit:
		return &LocalCommit{}, nil
	case MsgReadRequest:
		return &ReadRequest{}, nil
	case MsgReadReply:
		return &ReadReply{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, t)
	}
}

// Decode parses a tagged encoding produced by Encode.
func Decode(b []byte) (Message, error) {
	if len(b) < 1 {
		return nil, ErrTruncated
	}
	msg, err := newMessage(MsgType(b[0]))
	if err != nil {
		return nil, err
	}
	r := NewReader(b[1:])
	msg.unmarshal(r)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", MsgType(b[0]), err)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("decoding %s: %d trailing bytes", MsgType(b[0]), r.Remaining())
	}
	return msg, nil
}

// DecodeBody parses an untagged body encoding for a known message type.
// Every byte-slice field of the result is a copy, safe to retain.
func DecodeBody(t MsgType, b []byte) (Message, error) {
	msg, err := newMessage(t)
	if err != nil {
		return nil, err
	}
	r := NewReader(b)
	msg.unmarshal(r)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("decoding %s body: %w", t, err)
	}
	if r.Remaining() != 0 {
		// A decodable prefix with trailing garbage is still a malformed
		// body: accepting it would let two distinct wire forms carry one
		// message, and signatures cover the whole body.
		return nil, fmt.Errorf("decoding %s body: %d trailing bytes", t, r.Remaining())
	}
	return msg, nil
}

// DecodeBodyAlias parses an untagged body like DecodeBody but in alias
// mode: the result's byte-slice fields (transaction payloads, values,
// signatures) are subslices of b, not copies. The caller must guarantee
// b outlives every use of the message — in particular it must NOT hand
// the message to a consensus engine, which logs request batches until
// the next stable checkpoint, or to the store. The replica pipeline
// therefore decodes bodies in copy mode and reserves aliasing for the
// envelope layer; this entry point serves callers with strictly scoped
// message lifetimes (and the decode benchmarks that bound the copy cost).
func DecodeBodyAlias(t MsgType, b []byte) (Message, error) {
	msg, err := newMessage(t)
	if err != nil {
		return nil, err
	}
	r := NewAliasReader(b)
	msg.unmarshal(r)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("decoding %s body: %w", t, err)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("decoding %s body: %d trailing bytes", t, r.Remaining())
	}
	return msg, nil
}

// Envelope is the transport frame: a tagged message body plus sender,
// destination, and the authenticator (digital signature or MAC, Section 3
// "Expensive Cryptographic Practices") computed over the body.
type Envelope struct {
	From NodeID
	To   NodeID
	Type MsgType
	Body []byte
	Auth []byte

	// arena, when non-nil, owns the pooled buffer Body aliases; pooled
	// marks envelopes that return to the envelope pool on Release. Auth
	// never aliases an arena — consensus engines retain authenticators in
	// commit certificates past any frame's lifetime, so decode always
	// copies it. Envelopes are single-owner values: whoever holds one
	// either passes it on or releases it, exactly once.
	arena  *Arena
	pooled bool
}

// EncodedSize returns the number of bytes WriteFrame will emit.
func (e *Envelope) EncodedSize() int {
	return 4 + 4 + 4 + 1 + 4 + len(e.Body) + 4 + len(e.Auth)
}

// encode appends the envelope wire form (without the outer length prefix).
func (e *Envelope) encode(w *Writer) {
	w.U32(uint32(e.From))
	w.U32(uint32(e.To))
	w.U8(uint8(e.Type))
	w.Blob(e.Body)
	w.Blob(e.Auth)
}

// decode parses the envelope wire form from r in place. Body follows r's
// mode (aliased in alias mode); Auth is always copied because engines
// retain it in commit certificates beyond the frame's lifetime.
func (e *Envelope) decode(r *Reader) {
	e.From = NodeID(r.U32())
	e.To = NodeID(r.U32())
	e.Type = MsgType(r.U8())
	e.Body = r.Blob()
	e.Auth = r.CopyBlob()
}

// decodeEnvelope parses the envelope wire form.
func decodeEnvelope(b []byte) (*Envelope, error) {
	r := NewReader(b)
	e := &Envelope{}
	e.decode(r)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("decoding envelope: %w", err)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("decoding envelope: %d trailing bytes", r.Remaining())
	}
	return e, nil
}

// batchFrameBit marks a frame's length prefix as a multi-envelope batch
// frame. The bit is free because maxFrameLen bounds real lengths far below
// it, and old-style single-envelope frames never set it, so both frame
// kinds coexist on one connection.
const batchFrameBit = 1 << 31

// minEnvelopeSize is the smallest envelope wire form: from, to, type, and
// two empty blobs. It validates batch counts against forged headers.
const minEnvelopeSize = 4 + 4 + 1 + 4 + 4

// AppendFrame appends the length-prefixed single-envelope frame to w.
func AppendFrame(w *Writer, e *Envelope) {
	w.U32(uint32(e.EncodedSize() - 4))
	e.encode(w)
}

// AppendBatchFrame appends a batch frame carrying every envelope in envs:
// a length prefix with the batch bit set, an envelope count, and the
// concatenated envelope encodings. A batch frame costs one length prefix
// and — crucially for the transport's send path — one Write call for the
// whole batch instead of one per envelope.
func AppendBatchFrame(w *Writer, envs []*Envelope) {
	payload := 4
	for _, e := range envs {
		payload += e.EncodedSize() - 4
	}
	w.U32(uint32(payload) | batchFrameBit)
	w.U32(uint32(len(envs)))
	for _, e := range envs {
		e.encode(w)
	}
}

// WriteFrame writes a length-prefixed envelope to w. It is the TCP framing
// used by the transport layer.
func WriteFrame(w io.Writer, e *Envelope) error {
	wr := GetWriter()
	AppendFrame(wr, e)
	_, err := w.Write(wr.Bytes())
	PutWriter(wr)
	if err != nil {
		return fmt.Errorf("writing frame: %w", err)
	}
	return nil
}

// WriteBatchFrame writes one batch frame carrying all of envs to w.
func WriteBatchFrame(w io.Writer, envs []*Envelope) error {
	wr := GetWriter()
	AppendBatchFrame(wr, envs)
	_, err := w.Write(wr.Bytes())
	PutWriter(wr)
	if err != nil {
		return fmt.Errorf("writing batch frame: %w", err)
	}
	return nil
}

// maxFrameLen bounds a single frame read from the network.
const maxFrameLen = 1 << 28

// ReadFrames reads one frame from r and returns the envelopes it carries:
// exactly one for a single-envelope frame, zero or more for a batch frame.
func ReadFrames(r io.Reader) ([]*Envelope, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err // io.EOF propagates untouched for clean shutdown
	}
	n := uint32(lenBuf[0])<<24 | uint32(lenBuf[1])<<16 | uint32(lenBuf[2])<<8 | uint32(lenBuf[3])
	batch := n&batchFrameBit != 0
	n &^= batchFrameBit
	if n > maxFrameLen {
		return nil, fmt.Errorf("%w: frame of %d bytes", ErrOversized, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("reading frame body: %w", err)
	}
	if !batch {
		e, err := decodeEnvelope(body)
		if err != nil {
			return nil, err
		}
		return []*Envelope{e}, nil
	}
	rd := NewReader(body)
	count := rd.count(minEnvelopeSize)
	envs := make([]*Envelope, 0, count)
	for i := 0; i < count; i++ {
		e := &Envelope{}
		e.decode(rd)
		envs = append(envs, e)
	}
	if err := rd.Err(); err != nil {
		return nil, fmt.Errorf("decoding batch frame: %w", err)
	}
	if rd.Remaining() != 0 {
		return nil, fmt.Errorf("decoding batch frame: %d trailing bytes", rd.Remaining())
	}
	return envs, nil
}

// ReadFramesPooled reads one frame like ReadFrames but borrows the frame
// buffer from bufs and decodes in zero-copy mode: envelope structs come
// from the envelope pool, each Body aliases the shared frame buffer, and
// each envelope holds a reference on the frame's arena. The caller owns
// the returned envelopes and must Release every one exactly once; the
// buffer returns to bufs when the last reference drops. Auth is copied
// regardless (engines retain it), and messages decoded from Body with
// DecodeBody are copies, so only Body itself is lifetime-bound.
func ReadFramesPooled(r io.Reader, bufs FrameBuffers) ([]*Envelope, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err // io.EOF propagates untouched for clean shutdown
	}
	n := uint32(lenBuf[0])<<24 | uint32(lenBuf[1])<<16 | uint32(lenBuf[2])<<8 | uint32(lenBuf[3])
	batch := n&batchFrameBit != 0
	n &^= batchFrameBit
	if n > maxFrameLen {
		return nil, fmt.Errorf("%w: frame of %d bytes", ErrOversized, n)
	}
	body := bufs.Get(int(n))[:n]
	arena := NewArena(body, bufs) // the reader's reference
	if _, err := io.ReadFull(r, body); err != nil {
		arena.Release()
		return nil, fmt.Errorf("reading frame body: %w", err)
	}
	rd := NewAliasReader(body)
	count := 1
	if batch {
		count = rd.count(minEnvelopeSize)
	}
	envs := make([]*Envelope, 0, count)
	for i := 0; i < count; i++ {
		e := AcquireEnvelope()
		e.decode(rd)
		e.Attach(arena)
		envs = append(envs, e)
	}
	err := rd.Err()
	if err == nil && rd.Remaining() != 0 {
		err = fmt.Errorf("%d trailing bytes", rd.Remaining())
	}
	if err != nil {
		for _, e := range envs {
			e.Release()
		}
		arena.Release()
		return nil, fmt.Errorf("decoding frame: %w", err)
	}
	arena.Release() // hand over to the envelopes' references
	return envs, nil
}

// ReadFrame reads one length-prefixed envelope from r. It rejects batch
// frames that do not carry exactly one envelope; stream readers that must
// accept both frame kinds use ReadFrames.
func ReadFrame(r io.Reader) (*Envelope, error) {
	envs, err := ReadFrames(r)
	if err != nil {
		return nil, err
	}
	if len(envs) != 1 {
		return nil, fmt.Errorf("types: expected single-envelope frame, got batch of %d", len(envs))
	}
	return envs[0], nil
}

// Arena-backed zero-copy decode: the buffer-pool management of the
// paper's Section 4.8 applied to the receive path. A frame read from the
// network borrows its buffer from a pool; every envelope decoded out of
// the frame holds a reference on the shared arena, and the buffer returns
// to the pool when the last pipeline stage releases its envelope.

package types

import (
	"sync"
	"sync/atomic"
)

// FrameBuffers is the slice recycler an arena returns its buffer to.
// *pool.BytePool satisfies it; the indirection keeps types free of a
// dependency on the pool package.
type FrameBuffers interface {
	// Get returns a zero-length slice with capacity at least n.
	Get(n int) []byte
	// Put recycles a slice obtained from Get.
	Put(s []byte)
}

// Arena is one reference-counted pooled buffer shared by everything
// decoded out of it (or encoded into it). Retain adds a reference;
// Release drops one and returns the buffer to its FrameBuffers when the
// count reaches zero. After that point any slice aliasing the buffer may
// be overwritten by a future borrower, so a reference must outlive every
// alias.
type Arena struct {
	buf  []byte
	bufs FrameBuffers
	refs atomic.Int32
}

// arenaPool recycles Arena structs themselves: one is born and retired
// per frame on the hot path, so leaving them to the garbage collector
// would put an allocation back on every receive.
var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

// NewArena wraps buf, owned by bufs, with an initial reference count of
// one (the caller's reference).
func NewArena(buf []byte, bufs FrameBuffers) *Arena {
	a := arenaPool.Get().(*Arena)
	a.buf, a.bufs = buf, bufs
	a.refs.Store(1)
	return a
}

// Retain adds a reference. It is a no-op on a nil arena, so callers on
// paths where pooling may be disabled need no guard.
func (a *Arena) Retain() {
	if a == nil {
		return
	}
	a.refs.Add(1)
}

// Release drops one reference, recycling the buffer on the last one.
// Releasing more times than retained corrupts the pool; missing a release
// only leaks the buffer to the garbage collector. Nil arenas are no-ops.
func (a *Arena) Release() {
	if a == nil {
		return
	}
	if a.refs.Add(-1) != 0 {
		return
	}
	buf, bufs := a.buf, a.bufs
	a.buf, a.bufs = nil, nil
	arenaPool.Put(a)
	if bufs != nil && buf != nil {
		bufs.Put(buf)
	}
}

// envelopePool recycles Envelope structs on the pooled decode and encode
// paths. Only envelopes handed out by AcquireEnvelope return here.
var envelopePool = sync.Pool{New: func() any { return new(Envelope) }}

// AcquireEnvelope returns a pooled Envelope. Release returns it to the
// pool once its owner retires it; each acquired envelope must be released
// exactly once.
func AcquireEnvelope() *Envelope {
	e := envelopePool.Get().(*Envelope)
	e.pooled = true
	return e
}

// Attach ties e's lifetime to a, taking a new reference: the envelope's
// Body (or the batch it was decoded from) aliases a's buffer, and
// Release will drop the reference along with the envelope. Attaching nil
// is a no-op, matching marshal paths that run with pooling disabled.
func (e *Envelope) Attach(a *Arena) {
	if a == nil {
		return
	}
	a.Retain()
	e.arena = a
}

// Release retires the envelope: it drops the arena reference backing
// Body, if any, and returns pooled envelopes to the pool. It is safe on
// plain (non-pooled, non-arena) envelopes, where it is a no-op, and on
// nil. Each envelope has exactly one owner at a time; the owner releases
// it exactly once and must not touch it afterwards.
func (e *Envelope) Release() {
	if e == nil {
		return
	}
	a := e.arena
	e.arena = nil
	if a != nil {
		a.Release()
	}
	if e.pooled {
		*e = Envelope{}
		envelopePool.Put(e)
	}
}

// writerPool recycles Writers for the encode paths that build a frame or
// body, copy or write it out, and discard the scratch space.
var writerPool = sync.Pool{New: func() any { return new(Writer) }}

// GetWriter returns an empty pooled Writer. Return it with PutWriter once
// its bytes have been copied out or written; the buffer is reused.
func GetWriter() *Writer {
	w := writerPool.Get().(*Writer)
	w.Reset()
	return w
}

// PutWriter recycles w. The caller must not retain w.Bytes().
func PutWriter(w *Writer) { writerPool.Put(w) }

package types

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated is returned when a Reader runs out of bytes mid-field.
var ErrTruncated = errors.New("types: truncated message")

// ErrOversized is returned when a length prefix exceeds the sane bound for
// its field, which protects decoders against hostile inputs.
var ErrOversized = errors.New("types: oversized field")

// maxFieldLen bounds any single variable-length field. Batches of thousands
// of kilobyte-scale transactions stay far below this.
const maxFieldLen = 1 << 28

// Writer accumulates a binary encoding. The zero value is ready to use.
// All integers are big-endian; variable-length fields carry a u32 prefix.
type Writer struct {
	buf []byte
}

// NewWriterSize returns a Writer with a preallocated capacity hint.
func NewWriterSize(n int) *Writer { return &Writer{buf: make([]byte, 0, n)} }

// Bytes returns the encoded bytes. The slice aliases the Writer's internal
// buffer; callers that retain it across Reset must copy it first.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset discards the contents while keeping the allocation.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// U8 appends a single byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 appends a big-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }

// Bytes32 appends a fixed 32-byte digest.
func (w *Writer) Bytes32(d Digest) { w.buf = append(w.buf, d[:]...) }

// Blob appends a u32 length prefix followed by the bytes.
func (w *Writer) Blob(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// Reader decodes a binary encoding produced by Writer. Errors are sticky:
// after the first failure every subsequent call returns zero values, so
// decoders can run straight-line and check Err once at the end.
type Reader struct {
	buf   []byte
	off   int
	err   error
	alias bool
}

// NewReader returns a Reader over b. The Reader does not copy b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// NewAliasReader returns a Reader in alias mode: Blob returns subslices
// of b instead of copies, so nothing decoded through it may outlive b.
// Fields that must survive the input buffer use CopyBlob regardless of
// mode.
func NewAliasReader(b []byte) *Reader { return &Reader{buf: b, alias: true} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads a single byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Bytes32 reads a fixed 32-byte digest.
func (r *Reader) Bytes32() Digest {
	var d Digest
	b := r.take(32)
	if b != nil {
		copy(d[:], b)
	}
	return d
}

// Blob reads a u32 length prefix and the bytes it announces. In the
// default mode the returned slice is a copy, so the caller may retain it
// after the input buffer is recycled into a pool; in alias mode (see
// NewAliasReader) it is a capacity-clipped subslice of the input and
// must not outlive it.
func (r *Reader) Blob() []byte {
	return r.blob(r.alias)
}

// CopyBlob reads a blob and always copies it, even in alias mode. It is
// for fields that are retained past the frame's lifetime — envelope
// authenticators stored in commit certificates, for one.
func (r *Reader) CopyBlob() []byte {
	return r.blob(false)
}

func (r *Reader) blob(alias bool) []byte {
	n := r.U32()
	if r.err != nil {
		return nil
	}
	if n > maxFieldLen {
		r.fail(fmt.Errorf("%w: blob of %d bytes", ErrOversized, n))
		return nil
	}
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	if alias {
		// Clip capacity so an append on the decoded field cannot bleed
		// into the bytes that follow it in the shared buffer.
		return b[:n:n]
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// count reads a u32 element count, validating it against a minimum element
// size so a forged count cannot force a huge allocation.
func (r *Reader) count(minElemSize int) int {
	n := r.U32()
	if r.err != nil {
		return 0
	}
	if minElemSize > 0 && int(n) > r.Remaining()/minElemSize+1 {
		r.fail(fmt.Errorf("%w: %d elements", ErrOversized, n))
		return 0
	}
	return int(n)
}

package sim

// runUpperBound measures the Figure 7 ceiling: clients talk to a single
// primary that answers immediately — no other replicas, no consensus, no
// ordering — with two threads working independently. UpperBoundExec
// additionally executes each transaction before responding.
func (r *run) runUpperBound() (Result, error) {
	cfg := r.cfg
	host := NewHost(r.sim, cfg.Cores, NewNIC(r.sim, r.costs.NICBandwidth))
	host.CtxSwitch = r.costs.CtxSwitch
	workers := []*Thread{host.NewThread("worker-1"), host.NewThread("worker-2")}

	machines := make([]*Host, cfg.ClientMachines)
	for i := range machines {
		machines[i] = NewHost(r.sim, 4, NewNIC(r.sim, r.costs.NICBandwidth))
	}

	perOp := r.costs.ExecPerOpMem
	if cfg.Storage == StorageDisk {
		perOp = r.costs.ExecPerOpDisk
	}
	signCost, _ := r.costs.replicaSign(cfg.Scheme)

	rr := 0
	type ubClient struct {
		machine *Host
		start   Time
	}
	clients := make([]*ubClient, cfg.Clients)
	var submit func(c *ubClient)
	submit = func(c *ubClient) {
		c.start = r.sim.Now()
		c.machine.NIC.Send(r.reqSize, r.costs.LinkLatency, func() {
			w := workers[rr%len(workers)]
			rr++
			cost := r.costs.InputPerMsg + r.costs.WorkerPerMsg + r.costs.OutputPerMsg +
				r.costs.clientVerify(cfg.Scheme) + r.costs.RespPerReq + signCost
			if cfg.UpperBound == UpperBoundExec {
				cost += Time(cfg.Burst*cfg.OpsPerTxn) * perOp
			}
			host.Submit(w, cost, func() {
				host.NIC.Send(r.respSize, r.costs.LinkLatency, func() {
					r.recordCompletion(c.start, true)
					submit(c)
				})
			})
		})
	}
	for i := range clients {
		clients[i] = &ubClient{machine: machines[i%len(machines)]}
		c := clients[i]
		r.sim.At(Time(i%1000)*5*Microsecond, func() { submit(c) })
	}

	var busyAtWarmup []Time
	r.sim.At(cfg.Warmup, func() {
		for _, t := range host.Threads() {
			busyAtWarmup = append(busyAtWarmup, t.BusyNS)
		}
	})

	events := r.sim.Run(cfg.Warmup + cfg.Measure)
	res := Result{
		ThroughputTxns:    float64(r.measured) / (float64(cfg.Measure) / float64(Second)),
		MeanLatency:       r.latency.Mean(),
		P50Latency:        r.latency.Percentile(50),
		P99Latency:        r.latency.Percentile(99),
		Events:            events,
		PrimarySaturation: map[string]float64{},
		BackupSaturation:  map[string]float64{},
	}
	res.ThroughputOps = res.ThroughputTxns * float64(cfg.OpsPerTxn)
	for i, t := range host.Threads() {
		base := Time(0)
		if busyAtWarmup != nil {
			base = busyAtWarmup[i]
		}
		res.PrimarySaturation[t.Name] = float64(t.BusyNS-base) / float64(cfg.Measure)
	}
	return res, nil
}

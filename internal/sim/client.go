package sim

import (
	"resilientdb/internal/consensus"
	clientengine "resilientdb/internal/consensus/client"
	"resilientdb/internal/types"
)

// simClient is one closed-loop client: it keeps a single request in
// flight, driven by the same client engine as the runnable system.
// Client compute is free (the paper's client machines exist only to
// generate load); their NICs still serialize outbound bytes.
type simClient struct {
	r       *run
	id      types.ClientID
	engine  *clientengine.Engine
	machine *Host

	clientSeq uint64
	start     Time
	gen       uint64 // timeout generation; bumping it cancels the timer
}

func (c *simClient) submitNext() {
	if c.clientSeq == 0 {
		c.clientSeq = 1
	}
	req := mkRequest(c.id, c.clientSeq, c.r.cfg.Burst)
	c.start = c.r.sim.Now()
	acts := c.engine.Submit(req)
	// Bill the client's signature as a latency offset before the wire.
	signDelay := c.r.costs.clientSign(c.r.cfg.Scheme)
	c.r.sim.After(signDelay, func() { c.dispatch(acts) })
	c.armTimeout()
}

func (c *simClient) armTimeout() {
	c.gen++
	g := c.gen
	c.r.sim.After(c.r.cfg.ClientTimeout, func() { c.onTimeout(g) })
}

func (c *simClient) onTimeout(g uint64) {
	if g != c.gen || !c.engine.Busy() {
		return
	}
	c.dispatch(c.engine.OnTimeout())
	c.armTimeout()
}

func (c *simClient) dispatch(acts []consensus.Action) {
	for _, a := range acts {
		switch act := a.(type) {
		case consensus.Send:
			c.transmit(act.To, act.Msg)
		case consensus.Broadcast:
			for i := 0; i < c.r.cfg.Replicas; i++ {
				c.transmit(types.ReplicaNode(types.ReplicaID(i)), act.Msg)
			}
		}
	}
}

func (c *simClient) transmit(to types.NodeID, msg types.Message) {
	size := c.r.reqSize
	if _, ok := msg.(*types.CommitCert); ok {
		size = c.r.voteSize
	}
	from := types.ClientNode(c.id)
	c.machine.NIC.Send(size, c.r.costs.LinkLatency, func() {
		c.r.deliverTo(from, to, msg, size)
	})
}

// onMessage receives a replica response (free compute at the client).
func (c *simClient) onMessage(from types.NodeID, msg types.Message) {
	outcome, acts := c.engine.OnMessage(from, msg)
	c.dispatch(acts)
	if outcome == nil {
		return
	}
	c.gen++ // cancel the timer
	c.r.recordCompletion(c.start, outcome.FastPath)
	c.clientSeq += uint64(c.r.cfg.Burst)
	c.submitNext()
}

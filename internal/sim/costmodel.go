package sim

// CostModel assigns virtual processing durations to every pipeline step.
//
// The defaults come from microbenchmarks of this repository's real
// implementations, measured on the development host (see EXPERIMENTS.md,
// "Calibration"): internal/crypto Benchmark* for signatures and hashing,
// internal/store Benchmark* for storage, internal/types and
// internal/queue benchmarks for codec and queueing overheads. Shapes in
// the reproduced figures depend on the *relative* magnitudes (e.g. RSA
// sign ≫ ED25519 sign ≫ CMAC), which are hardware-stable.
type CostModel struct {
	// Digital signatures (ED25519).
	SignED   Time
	VerifyED Time
	// VerifyEDBatched is the amortized per-signature cost when client
	// request signatures are verified in batches (ed25519 batch
	// verification amortizes the expensive fixed-base operations across
	// signatures). The recommended CMAC+ED25519 configuration uses it on
	// the batch-threads: at the paper's reported 175K txn/s a full
	// independent verification per request would alone need >10 cores,
	// so the deployed system necessarily amortizes here (see
	// EXPERIMENTS.md, "Calibration").
	VerifyEDBatched Time
	// Digital signatures (RSA-2048).
	SignRSA   Time
	VerifyRSA Time
	// Message authentication codes (AES-CMAC), per destination.
	SignMAC   Time
	VerifyMAC Time

	// Hashing: base cost plus per-byte cost (SHA-256).
	HashBase    Time
	HashPerByte float64

	// Message handling overheads.
	InputPerMsg  Time // receive, classify, enqueue (input-thread)
	WorkerPerMsg Time // decode, dispatch, engine bookkeeping (worker)
	OutputPerMsg Time // envelope handoff to the NIC (output-thread)

	// Batching (batch-thread): per-request and per-operation assembly
	// costs (buffer-pool fetch, copy, bookkeeping).
	BatchPerReq Time
	BatchPerOp  Time

	// Execution (execute-thread).
	ExecPerOpMem  Time // in-memory store write
	ExecPerOpDisk Time // off-memory (disk-backed API) store write
	ExecPerBlock  Time // ledger append + block build
	RespPerReq    Time // response construction per client request

	// CtxSwitch is the per-job scheduling penalty applied when a host
	// runs more threads than cores, scaled by the oversubscription ratio
	// (threads-cores)/cores. It models the context-switch and cache
	// thrash that makes the paper's 1-core replicas 8.92× slower than
	// 8-core ones (Section 5.9) despite the pipeline's total CPU work
	// being far less than 8× one core.
	CtxSwitch Time

	// Network.
	NICBandwidth float64 // bytes per second
	LinkLatency  Time
}

// DefaultCosts returns the calibrated cost model.
func DefaultCosts() CostModel {
	return CostModel{
		// crypto: BenchmarkCryptoED25519Sign ≈ 30µs, Verify ≈ 65µs;
		// RSA-2048 sign ≈ 1.6ms, verify ≈ 45µs; CMAC (256B) ≈ 0.6µs.
		SignED:          30 * Microsecond,
		VerifyED:        65 * Microsecond,
		VerifyEDBatched: 9 * Microsecond,
		SignRSA:         1600 * Microsecond,
		VerifyRSA:       45 * Microsecond,
		SignMAC:         600 * Nanosecond,
		VerifyMAC:       600 * Nanosecond,

		// BenchmarkCryptoSHA256PerKB ≈ 2.5µs/KB ⇒ ~2.4ns/byte + base.
		HashBase:    300 * Nanosecond,
		HashPerByte: 2.4,

		// Per-message pipeline overheads, syscall-inclusive: receive +
		// classify + queue transfer on the input-threads; decode +
		// dispatch + engine bookkeeping + allocation on the worker;
		// envelope emission + send syscall on the output-threads. Queue
		// and codec microbenchmarks give ~1–2µs of that; kernel
		// socket costs dominate the rest.
		InputPerMsg:  2 * Microsecond,
		WorkerPerMsg: 6 * Microsecond,
		OutputPerMsg: 2 * Microsecond,

		BatchPerReq: 1500 * Nanosecond,
		BatchPerOp:  500 * Nanosecond,

		// store: BenchmarkMemStorePut ≈ 0.4µs; BenchmarkDiskStorePut ≈
		// 8µs plus the blocking API call the paper measures — the
		// effective per-op figure lands near 60µs (SQLite API calls are
		// slower still; the 5.7 ratio is what matters).
		ExecPerOpMem:  400 * Nanosecond,
		ExecPerOpDisk: 60 * Microsecond,
		ExecPerBlock:  2 * Microsecond,
		RespPerReq:    800 * Nanosecond,

		CtxSwitch: 1 * Microsecond,

		// Google Cloud c2 instances: 10 Gbit/s line rate; ~7 Gbit/s of
		// achievable TCP goodput. Sub-millisecond intra-zone RTT.
		NICBandwidth: 7e9 / 8,
		LinkLatency:  100 * Microsecond,
	}
}

// Scheme selects the signature configuration of Section 5.6.
type Scheme int

// Signature configurations.
const (
	// SchemeNone disables signatures everywhere.
	SchemeNone Scheme = iota + 1
	// SchemeED25519 signs everything with ED25519 digital signatures.
	SchemeED25519
	// SchemeRSA signs everything with RSA-2048 digital signatures.
	SchemeRSA
	// SchemeCMAC is the recommended combination: CMAC between replicas,
	// ED25519 for client requests.
	SchemeCMAC
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SchemeNone:
		return "nosig"
	case SchemeED25519:
		return "ed25519"
	case SchemeRSA:
		return "rsa"
	case SchemeCMAC:
		return "cmac+ed25519"
	default:
		return "invalid"
	}
}

// replicaSign returns (cost, perDestination) for a replica signing one
// message under the scheme.
func (c *CostModel) replicaSign(s Scheme) (Time, bool) {
	switch s {
	case SchemeED25519:
		return c.SignED, false
	case SchemeRSA:
		return c.SignRSA, false
	case SchemeCMAC:
		return c.SignMAC, true
	default:
		return 0, false
	}
}

// replicaVerify returns the cost of verifying a replica's message.
func (c *CostModel) replicaVerify(s Scheme) Time {
	switch s {
	case SchemeED25519:
		return c.VerifyED
	case SchemeRSA:
		return c.VerifyRSA
	case SchemeCMAC:
		return c.VerifyMAC
	default:
		return 0
	}
}

// clientSign returns the client request signing cost.
func (c *CostModel) clientSign(s Scheme) Time {
	switch s {
	case SchemeED25519, SchemeCMAC:
		return c.SignED
	case SchemeRSA:
		return c.SignRSA
	default:
		return 0
	}
}

// clientVerify returns the cost of verifying a client's request signature
// at the batch-threads. The recommended configuration amortizes via batch
// verification; the DS-everywhere configurations pay the full per-message
// price.
func (c *CostModel) clientVerify(s Scheme) Time {
	switch s {
	case SchemeED25519:
		return c.VerifyED
	case SchemeCMAC:
		return c.VerifyEDBatched
	case SchemeRSA:
		return c.VerifyRSA
	default:
		return 0
	}
}

// hash returns the hashing cost for size bytes.
func (c *CostModel) hash(size int) Time {
	return c.HashBase + Time(float64(size)*c.HashPerByte)
}

// Package sim is a deterministic discrete-event simulator that replays the
// paper's evaluation at full scale — 4 to 32 replicas, 8 cores each, up to
// 80K closed-loop clients — on a single laptop-class machine.
//
// The simulator drives the very same consensus engines
// (internal/consensus/pbft, .../zyzzyva, .../client) as the runnable
// replica pipeline; only the environment is modelled:
//
//   - Hosts own a fixed number of cores; logical threads (input, batch,
//     worker, execute, checkpoint, output — the Figure 6 pipeline) queue
//     jobs FIFO and contend for cores, which is how the thread-saturation
//     and core-count experiments (Figures 9 and 16) arise.
//   - NICs serialize outbound bytes at a configured bandwidth and links
//     add latency, which is how the message-size experiment (Figure 12)
//     arises.
//   - Every processing step is billed per the cost model
//     (internal/sim/costmodel.go), whose defaults are calibrated from
//     microbenchmarks of this repository's real crypto, storage, and
//     codec implementations on the host machine.
//
// All randomness flows from one seeded source and the event queue breaks
// ties deterministically, so identical configurations produce identical
// results.
package sim

import (
	"container/heap"
)

// Time is virtual time in nanoseconds since simulation start.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

type event struct {
	at  Time
	seq uint64 // insertion order; deterministic tie-break
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() event   { return h[0] }

// Sim is the event loop.
type Sim struct {
	now    Time
	events eventHeap
	seq    uint64
}

// NewSim returns an empty simulation at time zero.
func NewSim() *Sim {
	return &Sim{}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// At schedules fn at absolute time t (clamped to now).
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d nanoseconds from now.
func (s *Sim) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Run processes events until the queue drains or virtual time passes
// until. It returns the number of events processed.
func (s *Sim) Run(until Time) uint64 {
	var processed uint64
	for len(s.events) > 0 {
		if s.events.Peek().at > until {
			break
		}
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		e.fn()
		processed++
	}
	if s.now < until {
		s.now = until
	}
	return processed
}

// ---- Hosts, threads, cores ----

type job struct {
	cost Time
	fn   func()
}

// Thread is a logical pipeline thread: a FIFO job queue that must hold a
// core while processing. BusyNS accumulates processing time, which is the
// Figure 9 saturation numerator.
type Thread struct {
	Name    string
	host    *Host
	q       []job
	head    int
	running bool
	waiting bool
	BusyNS  Time
}

// QueueLen returns the number of queued (not yet started) jobs.
func (t *Thread) QueueLen() int { return len(t.q) - t.head }

// Host models one machine: a set of threads multiplexed onto Cores cores,
// plus a NIC.
type Host struct {
	sim       *Sim
	Cores     int
	coresFree int
	waitQ     []*Thread // threads with pending work awaiting a core
	threads   []*Thread
	NIC       *NIC
	// CtxSwitch is the per-job oversubscription penalty; see
	// CostModel.CtxSwitch.
	CtxSwitch Time
}

// NewHost creates a host with the given core count and NIC.
func NewHost(s *Sim, cores int, nic *NIC) *Host {
	if cores < 1 {
		cores = 1
	}
	return &Host{sim: s, Cores: cores, coresFree: cores, NIC: nic}
}

// NewThread registers a named thread on the host.
func (h *Host) NewThread(name string) *Thread {
	t := &Thread{Name: name, host: h}
	h.threads = append(h.threads, t)
	return t
}

// Threads returns the host's threads in creation order.
func (h *Host) Threads() []*Thread { return h.threads }

// Submit enqueues a job with the given processing cost on a thread; fn
// runs at the job's virtual completion time. Oversubscribed hosts pay a
// scheduling penalty per job.
func (h *Host) Submit(t *Thread, cost Time, fn func()) {
	if cost < 0 {
		cost = 0
	}
	if over := len(h.threads) - h.Cores; over > 0 && h.CtxSwitch > 0 {
		cost += h.CtxSwitch * Time(over) / Time(h.Cores)
	}
	t.q = append(t.q, job{cost: cost, fn: fn})
	h.dispatch(t)
}

func (h *Host) dispatch(t *Thread) {
	if t.running || t.QueueLen() == 0 {
		return
	}
	if h.coresFree == 0 {
		if !t.waiting {
			t.waiting = true
			h.waitQ = append(h.waitQ, t)
		}
		return
	}
	h.coresFree--
	t.running = true
	j := t.q[t.head]
	t.head++
	if t.head > 64 && t.head*2 >= len(t.q) {
		t.q = append(t.q[:0], t.q[t.head:]...)
		t.head = 0
	}
	t.BusyNS += j.cost
	h.sim.After(j.cost, func() {
		t.running = false
		h.coresFree++
		j.fn()
		// Wake a waiting thread first (FIFO fairness), then this thread
		// if it still has work.
		h.wakeWaiting()
		h.dispatch(t)
	})
}

func (h *Host) wakeWaiting() {
	for len(h.waitQ) > 0 && h.coresFree > 0 {
		t := h.waitQ[0]
		h.waitQ = h.waitQ[1:]
		t.waiting = false
		h.dispatch(t)
	}
}

// ---- Network ----

// NIC serializes outbound bytes at a fixed bandwidth. Transmissions queue
// behind each other, which is what makes large pre-prepare broadcasts
// network-bound (Section 5.5).
type NIC struct {
	sim       *Sim
	bandwidth float64 // bytes per nanosecond
	busyUntil Time
	SentBytes int64
	SentMsgs  int64
}

// NewNIC creates a NIC with bandwidth in bytes/second.
func NewNIC(s *Sim, bytesPerSecond float64) *NIC {
	return &NIC{sim: s, bandwidth: bytesPerSecond / float64(Second)}
}

// Send transmits size bytes, invoking deliver after serialization plus
// latency.
func (n *NIC) Send(size int, latency Time, deliver func()) {
	tx := Time(0)
	if n.bandwidth > 0 {
		tx = Time(float64(size) / n.bandwidth)
	}
	start := n.busyUntil
	if now := n.sim.Now(); start < now {
		start = now
	}
	n.busyUntil = start + tx
	n.SentBytes += int64(size)
	n.SentMsgs++
	n.sim.At(n.busyUntil+latency, deliver)
}

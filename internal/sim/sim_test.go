package sim

import (
	"testing"
)

// small returns a fast-running base configuration for tests.
func small(p Protocol) Config {
	return Config{
		Protocol: p,
		Replicas: 4,
		Clients:  1500,
		Warmup:   50 * Millisecond,
		Measure:  150 * Millisecond,
	}
}

func mustRun(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEventLoopOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.At(10, func() { order = append(order, 11) }) // same time: insertion order
	s.Run(100)
	want := []int{1, 11, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 100 {
		t.Fatalf("Now = %d, want 100", s.Now())
	}
}

func TestHostCoreContention(t *testing.T) {
	s := NewSim()
	h := NewHost(s, 1, NewNIC(s, 1e9)) // a single core
	t1 := h.NewThread("a")
	t2 := h.NewThread("b")
	var doneA, doneB Time
	h.Submit(t1, 100, func() { doneA = s.Now() })
	h.Submit(t2, 100, func() { doneB = s.Now() })
	s.Run(1000)
	// With one core the jobs serialize: 100 and 200.
	if doneA != 100 || doneB != 200 {
		t.Fatalf("single core: doneA=%d doneB=%d, want 100/200", doneA, doneB)
	}

	h2 := NewHost(s, 2, NewNIC(s, 1e9))
	t3 := h2.NewThread("c")
	t4 := h2.NewThread("d")
	base := s.Now()
	var doneC, doneD Time
	h2.Submit(t3, 100, func() { doneC = s.Now() - base })
	h2.Submit(t4, 100, func() { doneD = s.Now() - base })
	s.Run(s.Now() + 1000)
	if doneC != 100 || doneD != 100 {
		t.Fatalf("two cores: doneC=%d doneD=%d, want 100/100", doneC, doneD)
	}
}

func TestThreadFIFOWithinThread(t *testing.T) {
	s := NewSim()
	h := NewHost(s, 4, NewNIC(s, 1e9))
	th := h.NewThread("x")
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		h.Submit(th, 10, func() { order = append(order, i) })
	}
	s.Run(1000)
	for i, v := range order {
		if v != i {
			t.Fatalf("thread order = %v", order)
		}
	}
	if th.BusyNS != 50 {
		t.Fatalf("BusyNS = %d, want 50", th.BusyNS)
	}
}

func TestNICSerialization(t *testing.T) {
	s := NewSim()
	nic := NewNIC(s, float64(Second)) // 1 byte per ns
	var first, second Time
	nic.Send(1000, 0, func() { first = s.Now() })
	nic.Send(1000, 0, func() { second = s.Now() })
	s.Run(10_000)
	if first != 1000 || second != 2000 {
		t.Fatalf("NIC serialization: %d/%d, want 1000/2000", first, second)
	}
	if nic.SentBytes != 2000 || nic.SentMsgs != 2 {
		t.Fatalf("NIC counters: %d bytes, %d msgs", nic.SentBytes, nic.SentMsgs)
	}
}

func TestPBFTSimCommitsTransactions(t *testing.T) {
	res := mustRun(t, small(PBFT))
	if res.ThroughputTxns <= 0 {
		t.Fatalf("no throughput: %+v", res)
	}
	if res.SlowPath != 0 {
		t.Fatalf("PBFT reported slow-path completions: %+v", res)
	}
	if res.MeanLatency <= 0 {
		t.Fatal("no latency recorded")
	}
	// Standard pipeline exists and accumulates busy time.
	for _, name := range []string{"worker", "execute", "batch-1", "batch-2"} {
		if _, ok := res.PrimarySaturation[name]; !ok {
			t.Fatalf("missing thread %q in saturation map: %v", name, res.PrimarySaturation)
		}
	}
}

func TestSimDeterminism(t *testing.T) {
	a := mustRun(t, small(PBFT))
	b := mustRun(t, small(PBFT))
	if a.ThroughputTxns != b.ThroughputTxns || a.Events != b.Events || a.MeanLatency != b.MeanLatency {
		t.Fatalf("nondeterministic: %v/%v events %d/%d", a.ThroughputTxns, b.ThroughputTxns, a.Events, b.Events)
	}
}

func TestZyzzyvaFaultFreeIsFastPath(t *testing.T) {
	res := mustRun(t, small(Zyzzyva))
	if res.ThroughputTxns <= 0 {
		t.Fatal("no throughput")
	}
	if res.FastPath == 0 || res.SlowPath != 0 {
		t.Fatalf("fault-free Zyzzyva: fast=%d slow=%d", res.FastPath, res.SlowPath)
	}
}

func TestZyzzyvaFailureForcesSlowPath(t *testing.T) {
	cfg := small(Zyzzyva)
	cfg.FailedBackups = 1
	cfg.ClientTimeout = 60 * Millisecond
	cfg.Warmup = 150 * Millisecond
	cfg.Measure = 250 * Millisecond
	res := mustRun(t, cfg)
	if res.SlowPath == 0 {
		t.Fatalf("no slow-path completions under failure: %+v", res)
	}
	if res.FastPath != 0 {
		t.Fatalf("impossible fast path with a crashed replica: %+v", res)
	}

	// The headline shape (Figure 17): one crash costs Zyzzyva an order of
	// magnitude; PBFT barely notices.
	healthy := mustRun(t, small(Zyzzyva))
	if res.ThroughputTxns > healthy.ThroughputTxns/2 {
		t.Fatalf("failure collapse too small: %v vs %v", res.ThroughputTxns, healthy.ThroughputTxns)
	}
	pcfg := small(PBFT)
	pcfg.FailedBackups = 1
	pbftFail := mustRun(t, pcfg)
	pbftOK := mustRun(t, small(PBFT))
	if pbftFail.ThroughputTxns < pbftOK.ThroughputTxns/2 {
		t.Fatalf("PBFT collapsed under one backup failure: %v vs %v", pbftFail.ThroughputTxns, pbftOK.ThroughputTxns)
	}
}

func TestBatchingImprovesThroughput(t *testing.T) {
	small1 := small(PBFT)
	small1.BatchSize = 1
	small1.Clients = 300
	tiny := mustRun(t, small1)

	big := small(PBFT)
	big.BatchSize = 100
	batched := mustRun(t, big)

	// The Section 5.3 shape: batching by 100 must yield a large multiple.
	if batched.ThroughputTxns < 5*tiny.ThroughputTxns {
		t.Fatalf("batching gain too small: %v vs %v", batched.ThroughputTxns, tiny.ThroughputTxns)
	}
}

func TestMoreCoresMoreThroughput(t *testing.T) {
	one := small(PBFT)
	one.Cores = 1
	r1 := mustRun(t, one)
	eight := small(PBFT)
	eight.Cores = 8
	r8 := mustRun(t, eight)
	if r8.ThroughputTxns <= r1.ThroughputTxns {
		t.Fatalf("8 cores (%v) not above 1 core (%v)", r8.ThroughputTxns, r1.ThroughputTxns)
	}
	// Section 5.9 reports 8.92×; require at least a strong multiple.
	if r8.ThroughputTxns < 2*r1.ThroughputTxns {
		t.Fatalf("core scaling too weak: %v vs %v", r8.ThroughputTxns, r1.ThroughputTxns)
	}
}

func TestDiskStorageCollapsesThroughput(t *testing.T) {
	mem := mustRun(t, small(PBFT))
	diskCfg := small(PBFT)
	diskCfg.Storage = StorageDisk
	disk := mustRun(t, diskCfg)
	// Section 5.7: off-memory storage reduces throughput by ~94%.
	if disk.ThroughputTxns > mem.ThroughputTxns/2 {
		t.Fatalf("disk storage too fast: %v vs %v", disk.ThroughputTxns, mem.ThroughputTxns)
	}
}

func TestSchemeOrdering(t *testing.T) {
	tput := func(s Scheme) float64 {
		cfg := small(PBFT)
		cfg.Scheme = s
		return mustRun(t, cfg).ThroughputTxns
	}
	none := tput(SchemeNone)
	cmac := tput(SchemeCMAC)
	ed := tput(SchemeED25519)
	rsa := tput(SchemeRSA)
	// Section 5.6 ordering: NoSig > CMAC+ED > ED-only > RSA.
	if !(none > cmac && cmac > ed && ed > rsa) {
		t.Fatalf("scheme ordering broken: none=%v cmac=%v ed=%v rsa=%v", none, cmac, ed, rsa)
	}
}

func TestMessageSizeReducesThroughput(t *testing.T) {
	base := small(PBFT)
	base.Clients = 800
	smallMsg := mustRun(t, base)
	bigCfg := base
	bigCfg.PayloadSize = 64 * 1024 / 100 * 100 // ~64KB across the batch
	bigCfg.PayloadSize = 640                   // per txn ⇒ pre-prepare ≈ 64KB+
	big := mustRun(t, bigCfg)
	if big.ThroughputTxns >= smallMsg.ThroughputTxns {
		t.Fatalf("larger messages did not hurt: %v vs %v", big.ThroughputTxns, smallMsg.ThroughputTxns)
	}
}

func TestOutOfOrderAblation(t *testing.T) {
	ooo := mustRun(t, small(PBFT))
	seqCfg := small(PBFT)
	seqCfg.DisableOutOfOrder = true
	seq := mustRun(t, seqCfg)
	// Section 4.5: out-of-order processing is claimed worth ~60%.
	if ooo.ThroughputTxns <= seq.ThroughputTxns {
		t.Fatalf("out-of-order (%v) not above sequential (%v)", ooo.ThroughputTxns, seq.ThroughputTxns)
	}
}

func TestUpperBoundModes(t *testing.T) {
	noexec := small(PBFT)
	noexec.UpperBound = UpperBoundNoExec
	noexec.Scheme = SchemeNone
	noexec.Replicas = 1
	rNo := mustRun(t, noexec)

	exec := noexec
	exec.UpperBound = UpperBoundExec
	rEx := mustRun(t, exec)

	full := mustRun(t, small(PBFT))
	if !(rNo.ThroughputTxns >= rEx.ThroughputTxns) {
		t.Fatalf("no-exec (%v) below exec (%v)", rNo.ThroughputTxns, rEx.ThroughputTxns)
	}
	if rEx.ThroughputTxns <= full.ThroughputTxns {
		t.Fatalf("upper bound (%v) below full consensus (%v)?", rEx.ThroughputTxns, full.ThroughputTxns)
	}
}

func TestThreadConfigsShape(t *testing.T) {
	// Section 5.2: the deep pipeline must beat the monolithic design.
	run := func(b, e int) float64 {
		cfg := small(PBFT)
		cfg.BatchThreads = b
		cfg.ExecuteThreads = e
		return mustRun(t, cfg).ThroughputTxns
	}
	mono := run(-1, -1) // 0B 0E: everything on the worker
	full := run(2, 1)   // the standard pipeline
	if full <= mono {
		t.Fatalf("pipeline (%v) not above monolithic (%v)", full, mono)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Replicas: 3}); err == nil {
		t.Fatal("accepted 3 replicas")
	}
	if _, err := Run(Config{Replicas: 16, FailedBackups: 6}); err == nil {
		t.Fatal("accepted more failures than f")
	}
}

func TestZyzzyvaMatchesPBFTOnFullPipeline(t *testing.T) {
	p := mustRun(t, small(PBFT))
	z := mustRun(t, small(Zyzzyva))
	// Section 5.2: with the full pipeline both land close together (the
	// batch-threads bound both); allow a generous band.
	ratio := z.ThroughputTxns / p.ThroughputTxns
	if ratio < 0.8 || ratio > 1.3 {
		t.Fatalf("unexpected zyzzyva/pbft ratio %.2f (z=%v p=%v)", ratio, z.ThroughputTxns, p.ThroughputTxns)
	}
}

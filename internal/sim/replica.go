package sim

import (
	"resilientdb/internal/consensus"
	"resilientdb/internal/types"
)

// simReplica drives one consensus engine on a simulated host with the
// Figure 6 thread layout.
type simReplica struct {
	r      *run
	id     types.ReplicaID
	host   *Host
	engine consensus.Engine
	down   bool

	inputC *Thread
	inputR []*Thread
	batch  []*Thread
	worker *Thread
	exec   *Thread
	ckpt   *Thread
	out    []*Thread

	// Primary batching state: requests accumulated from the input-thread
	// until a batch is full (the common queue of Section 4.3).
	pendReqs []types.ClientRequest
	pendTxns int
	rrBatch  int
	rrInput  int
	rrOut    int

	// Sequential-consensus ablation gate (Section 4.5): carved batches
	// wait here until the previous batch finishes execution.
	gateQ    [][]types.ClientRequest
	gateBusy bool
	stateDig types.Digest
	execNext uint64
	execBuf  map[uint64]consensus.Execute
}

func newSimReplica(r *run, id types.ReplicaID) (*simReplica, error) {
	engine, err := newEngine(r.cfg, id)
	if err != nil {
		return nil, err
	}
	host := NewHost(r.sim, r.cfg.Cores, NewNIC(r.sim, r.costs.NICBandwidth))
	host.CtxSwitch = r.costs.CtxSwitch
	sr := &simReplica{
		r:       r,
		id:      id,
		host:    host,
		engine:  engine,
		execBuf: make(map[uint64]consensus.Execute),
	}
	sr.execNext = 1
	sr.inputC = host.NewThread("input-client")
	for i := 0; i < r.cfg.ReplicaInputThreads; i++ {
		sr.inputR = append(sr.inputR, host.NewThread("input-replica"))
	}
	for i := 0; i < r.cfg.BatchThreads; i++ {
		sr.batch = append(sr.batch, host.NewThread(threadName("batch", i)))
	}
	sr.worker = host.NewThread("worker")
	if r.cfg.ExecuteThreads > 0 {
		sr.exec = host.NewThread("execute")
	}
	sr.ckpt = host.NewThread("checkpoint")
	for i := 0; i < r.cfg.OutputThreads; i++ {
		sr.out = append(sr.out, host.NewThread("output"))
	}
	return sr, nil
}

func threadName(base string, i int) string {
	return base + "-" + string(rune('1'+i))
}

// deliver is the NIC completion callback: the message lands on an
// input-thread.
func (sr *simReplica) deliver(from types.NodeID, msg types.Message, size int) {
	if sr.down {
		return
	}
	in := sr.inputC
	if from.IsReplica() {
		in = sr.inputR[sr.rrInput%len(sr.inputR)]
		sr.rrInput++
	}
	sr.host.Submit(in, sr.r.costs.InputPerMsg, func() { sr.route(from, msg) })
}

// route runs at input-thread completion: classify and hand the message to
// the right stage.
func (sr *simReplica) route(from types.NodeID, msg types.Message) {
	switch m := msg.(type) {
	case *types.ClientRequest:
		sr.onClientRequest(m)
	case *types.Checkpoint:
		sr.host.Submit(sr.ckpt, sr.r.costs.WorkerPerMsg+sr.r.costs.replicaVerify(sr.r.cfg.Scheme), func() {
			sr.applyEngine(sr.ckpt, from, m)
		})
	case *types.CommitCert:
		// Zyzzyva slow path: client-signed, verified on the worker.
		sr.host.Submit(sr.worker, sr.r.costs.WorkerPerMsg+sr.r.costs.clientVerify(sr.r.cfg.Scheme), func() {
			sr.applyEngine(sr.worker, from, m)
		})
	default:
		cost := sr.r.costs.WorkerPerMsg + sr.r.costs.replicaVerify(sr.r.cfg.Scheme)
		// Proposals additionally pay the batch-digest hash at the worker
		// (Section 4.4).
		switch msg.(type) {
		case *types.PrePrepare, *types.OrderedRequest:
			cost += sr.r.costs.hash(sr.r.proposeSize)
		}
		sr.host.Submit(sr.worker, cost, func() {
			sr.applyEngine(sr.worker, from, m)
		})
	}
}

// onClientRequest accumulates requests at the primary until a batch is
// full, then dispatches batch assembly to a batch-thread (or the worker in
// 0B mode).
func (sr *simReplica) onClientRequest(req *types.ClientRequest) {
	if !sr.engine.IsPrimary() {
		return // backups ignore direct client traffic (no view changes in sim)
	}
	sr.pendReqs = append(sr.pendReqs, *req)
	sr.pendTxns += len(req.Txns)
	if sr.pendTxns < sr.r.cfg.BatchSize {
		return
	}
	reqs := sr.pendReqs
	sr.pendReqs = nil
	sr.pendTxns = 0
	if sr.r.cfg.DisableOutOfOrder {
		sr.gateQ = append(sr.gateQ, reqs)
		sr.pumpGate()
		return
	}
	sr.dispatchBatch(reqs)
}

// pumpGate releases one batch at a time in the sequential ablation.
func (sr *simReplica) pumpGate() {
	if sr.gateBusy || len(sr.gateQ) == 0 {
		return
	}
	reqs := sr.gateQ[0]
	sr.gateQ = sr.gateQ[1:]
	sr.gateBusy = true
	sr.dispatchBatch(reqs)
}

// dispatchBatch bills batch assembly on the least-loaded batch-thread:
// client signature verification, per-request and per-operation assembly,
// and the single batch digest (Section 4.3).
func (sr *simReplica) dispatchBatch(reqs []types.ClientRequest) {
	cost := Time(0)
	ops := 0
	for i := range reqs {
		ops += len(reqs[i].Txns) * sr.r.cfg.OpsPerTxn
	}
	cost += Time(len(reqs)) * (sr.r.costs.clientVerify(sr.r.cfg.Scheme) + sr.r.costs.BatchPerReq)
	cost += Time(ops) * sr.r.costs.BatchPerOp
	cost += sr.r.costs.hash(sr.r.proposeSize)

	t := sr.worker
	if len(sr.batch) > 0 {
		t = sr.batch[sr.rrBatch%len(sr.batch)]
		sr.rrBatch++
		// Prefer an idle batch-thread, approximating the shared lock-free
		// queue where any free thread consumes the next batch.
		for _, cand := range sr.batch {
			if cand.QueueLen() == 0 && !cand.running {
				t = cand
				break
			}
		}
	}
	sr.host.Submit(t, cost, func() { sr.propose(t, reqs) })
}

// propose drives engine.Propose, retrying when the watermark window is
// full.
func (sr *simReplica) propose(t *Thread, reqs []types.ClientRequest) {
	acts := sr.engine.Propose(reqs)
	if acts == nil {
		if sr.engine.IsPrimary() {
			sr.r.sim.After(100*Microsecond, func() { sr.propose(t, reqs) })
		}
		return
	}
	sr.handleActions(t, acts)
}

// applyEngine feeds a verified message to the engine on thread t.
func (sr *simReplica) applyEngine(t *Thread, from types.NodeID, msg types.Message) {
	acts := sr.engine.OnMessage(from, msg, nil)
	sr.handleActions(t, acts)
}

// handleActions interprets engine outputs. Signing is billed as a
// follow-up job on the producing thread (the paper assigns message
// creation and signing to the thread that generates the message).
func (sr *simReplica) handleActions(t *Thread, acts []consensus.Action) {
	for _, a := range acts {
		switch act := a.(type) {
		case consensus.Broadcast:
			sr.signAndBroadcast(t, act.Msg)
		case consensus.Send:
			sr.signAndSend(t, act.To, act.Msg)
		case consensus.Execute:
			sr.enqueueExecute(act)
		case consensus.CheckpointStable, consensus.ViewChanged, consensus.Evidence:
			// Pruning is free; view changes and evidence do not occur in
			// the simulated fault-free and crash-only scenarios.
		}
	}
}

func (sr *simReplica) msgSize(msg types.Message) int {
	switch msg.(type) {
	case *types.PrePrepare, *types.OrderedRequest:
		return sr.r.proposeSize
	case *types.ClientResponse, *types.SpecResponse, *types.LocalCommit:
		return sr.r.respSize
	default:
		return sr.r.voteSize
	}
}

// signAndBroadcast bills one signing job, then hands one envelope per
// destination to the output-threads. Under MACs the signing job costs one
// MAC per destination (the MAC-vector of Section 3).
func (sr *simReplica) signAndBroadcast(t *Thread, msg types.Message) {
	signCost, perDest := sr.r.costs.replicaSign(sr.r.cfg.Scheme)
	targets := sr.r.cfg.Replicas - 1
	cost := signCost
	if perDest {
		cost = signCost * Time(targets)
	}
	sr.host.Submit(t, cost, func() {
		for i := 0; i < sr.r.cfg.Replicas; i++ {
			if types.ReplicaID(i) == sr.id {
				continue
			}
			sr.transmit(types.ReplicaNode(types.ReplicaID(i)), msg)
		}
	})
}

func (sr *simReplica) signAndSend(t *Thread, to types.NodeID, msg types.Message) {
	signCost, _ := sr.r.costs.replicaSign(sr.r.cfg.Scheme)
	sr.host.Submit(t, signCost, func() { sr.transmit(to, msg) })
}

// transmit hands an envelope to an output-thread, which pays its handling
// cost and serializes onto the NIC.
func (sr *simReplica) transmit(to types.NodeID, msg types.Message) {
	out := sr.out[sr.rrOut%len(sr.out)]
	sr.rrOut++
	size := sr.msgSize(msg)
	sr.host.Submit(out, sr.r.costs.OutputPerMsg, func() {
		sr.host.NIC.Send(size, sr.r.costs.LinkLatency, func() {
			sr.r.deliverTo(types.ReplicaNode(sr.id), to, msg, size)
		})
	})
}

// enqueueExecute reorders committed batches into sequence order and runs
// them on the execute-thread (or the worker in 0E mode) — Section 4.6.
func (sr *simReplica) enqueueExecute(act consensus.Execute) {
	sr.execBuf[uint64(act.Seq)] = act
	for {
		next, ok := sr.execBuf[sr.execNext]
		if !ok {
			return
		}
		delete(sr.execBuf, sr.execNext)
		sr.execNext++
		sr.runExecute(next)
	}
}

func (sr *simReplica) runExecute(act consensus.Execute) {
	t := sr.exec
	if t == nil {
		t = sr.worker
	}
	ops := 0
	for i := range act.Requests {
		ops += len(act.Requests[i].Txns) * sr.r.cfg.OpsPerTxn
	}
	perOp := sr.r.costs.ExecPerOpMem
	if sr.r.cfg.Storage == StorageDisk {
		perOp = sr.r.costs.ExecPerOpDisk
	}
	cost := Time(ops)*perOp + sr.r.costs.ExecPerBlock + Time(len(act.Requests))*sr.r.costs.RespPerReq
	sr.host.Submit(t, cost, func() { sr.finishExecute(t, act) })
}

// finishExecute runs at execution completion: advance the state digest,
// tell the engine (checkpoints), and answer every client in the batch.
func (sr *simReplica) finishExecute(t *Thread, act consensus.Execute) {
	sr.stateDig = hashChain(sr.stateDig, act.Digest)
	acts := sr.engine.OnExecuted(act.Seq, sr.stateDig)
	sr.handleActions(t, acts)

	// One signing job covers the batch's responses (one authenticator
	// per response message).
	signCost, _ := sr.r.costs.replicaSign(sr.r.cfg.Scheme)
	cost := signCost * Time(len(act.Requests))
	reqs := act.Requests
	sr.host.Submit(t, cost, func() {
		for i := range reqs {
			req := &reqs[i]
			// The simulated workload is write-only, but the client engine
			// verifies every response's payload against its Result digest,
			// so the stamp must be the real one.
			result := types.ResponseDigest(act.Seq, req.Client, req.FirstSeq, nil)
			var resp types.Message
			if act.Speculative {
				resp = &types.SpecResponse{
					View: act.View, Seq: act.Seq, Digest: act.Digest,
					History: act.History, Client: req.Client,
					ClientSeq: req.FirstSeq, Result: result, Replica: sr.id,
				}
			} else {
				resp = &types.ClientResponse{
					View: act.View, Seq: act.Seq, Client: req.Client,
					ClientSeq: req.FirstSeq, Result: result, Replica: sr.id,
				}
			}
			sr.transmit(types.ClientNode(req.Client), resp)
		}
	})

	if sr.r.cfg.DisableOutOfOrder && sr.engine.IsPrimary() {
		sr.gateBusy = false
		sr.pumpGate()
	}
}

// deliverTo routes a transmitted message to its destination node.
func (r *run) deliverTo(from, to types.NodeID, msg types.Message, size int) {
	if to.IsReplica() {
		r.replicas[int(to.Replica())].deliver(from, msg, size)
		return
	}
	idx := int(to.Client())
	if idx < len(r.clients) {
		r.clients[idx].onMessage(from, msg)
	}
}

package sim

import (
	"fmt"
	"time"

	"resilientdb/internal/consensus"
	clientengine "resilientdb/internal/consensus/client"
	"resilientdb/internal/consensus/pbft"
	"resilientdb/internal/consensus/zyzzyva"
	"resilientdb/internal/crypto"
	"resilientdb/internal/stats"
	"resilientdb/internal/types"
)

// Protocol selects the simulated consensus protocol.
type Protocol int

// Protocols.
const (
	PBFT Protocol = iota + 1
	Zyzzyva
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case PBFT:
		return "pbft"
	case Zyzzyva:
		return "zyzzyva"
	default:
		return "invalid"
	}
}

// Storage selects the execution store model (Section 5.7).
type Storage int

// Storage models.
const (
	StorageMem Storage = iota + 1
	StorageDisk
)

// UpperBoundMode selects the no-consensus ceiling measurement (Figure 7).
type UpperBoundMode int

// Upper-bound modes.
const (
	// UpperBoundOff runs the full consensus protocol.
	UpperBoundOff UpperBoundMode = iota
	// UpperBoundNoExec: the primary answers clients without executing.
	UpperBoundNoExec
	// UpperBoundExec: the primary executes, then answers, still without
	// any consensus or ordering.
	UpperBoundExec
)

// Config parameterizes one simulated experiment.
type Config struct {
	Protocol Protocol
	// Replicas is n; FailedBackups crashes that many non-primary replicas
	// at time zero (Section 5.10).
	Replicas      int
	FailedBackups int
	// Clients is the number of closed-loop clients, spread over
	// ClientMachines machines (the paper: 80K clients on 4 machines).
	Clients        int
	ClientMachines int
	// Cores per replica machine (Section 5.9 varies 1..8).
	Cores int
	// Pipeline shape: BatchThreads/ExecuteThreads accept -1 for the
	// folded 0B/0E configurations; 0 selects the defaults (2B, 1E). The
	// simulator models at most one dedicated execute-thread: values above
	// 1 (the runnable replica's write-set-partitioned execution shards)
	// behave as 1E here — use the execshards bench experiment, which runs
	// the real pipeline, to observe shard-parallel execution.
	BatchThreads        int
	ExecuteThreads      int
	OutputThreads       int
	ReplicaInputThreads int
	// Workload shape.
	BatchSize   int
	Burst       int
	OpsPerTxn   int
	ValueSize   int
	PayloadSize int
	// Scheme is the signature configuration; Storage the store model.
	Scheme  Scheme
	Storage Storage
	// ClientTimeout is the retransmission / Zyzzyva slow-path delay.
	ClientTimeout Time
	// CheckpointInterval in batches.
	CheckpointInterval uint64
	// DisableOutOfOrder serializes consensus instances (ablation §4.5).
	DisableOutOfOrder bool
	// UpperBound selects the Figure 7 ceiling modes.
	UpperBound UpperBoundMode
	// Warmup and Measure are the virtual warm-up and measurement windows
	// (the paper: 60s + 120s; scaled down since the simulator reaches
	// steady state in milliseconds).
	Warmup  Time
	Measure Time
	// Costs overrides the calibrated cost model (nil = DefaultCosts).
	Costs *CostModel
	// Seed controls determinism.
	Seed int64
}

func (c *Config) fill() error {
	if c.Protocol == 0 {
		c.Protocol = PBFT
	}
	if c.Replicas == 0 {
		c.Replicas = 16
	}
	if c.UpperBound == UpperBoundOff && c.Replicas < 4 {
		return fmt.Errorf("sim: need ≥ 4 replicas, got %d", c.Replicas)
	}
	if c.FailedBackups < 0 || (c.Replicas > 1 && c.FailedBackups > (c.Replicas-1)/3) {
		return fmt.Errorf("sim: cannot fail %d of %d replicas", c.FailedBackups, c.Replicas)
	}
	if c.Clients == 0 {
		c.Clients = 80_000
	}
	if c.ClientMachines == 0 {
		c.ClientMachines = 4
	}
	if c.Cores == 0 {
		c.Cores = 8
	}
	switch {
	case c.BatchThreads == 0:
		c.BatchThreads = 2
	case c.BatchThreads < 0:
		c.BatchThreads = 0
	}
	switch {
	case c.ExecuteThreads == 0:
		c.ExecuteThreads = 1
	case c.ExecuteThreads < 0:
		c.ExecuteThreads = 0
	}
	if c.OutputThreads == 0 {
		c.OutputThreads = 2
	}
	if c.ReplicaInputThreads == 0 {
		c.ReplicaInputThreads = 2
	}
	if c.BatchSize == 0 {
		c.BatchSize = 100
	}
	if c.Burst == 0 {
		c.Burst = 1
	}
	if c.OpsPerTxn == 0 {
		c.OpsPerTxn = 1
	}
	if c.ValueSize == 0 {
		c.ValueSize = 100
	}
	if c.Scheme == 0 {
		c.Scheme = SchemeCMAC
	}
	if c.Storage == 0 {
		c.Storage = StorageMem
	}
	if c.ClientTimeout == 0 {
		if c.Protocol == Zyzzyva {
			c.ClientTimeout = 500 * Millisecond
		} else {
			c.ClientTimeout = 2 * Second
		}
	}
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = 100
	}
	if c.Warmup == 0 {
		c.Warmup = 150 * Millisecond
	}
	if c.Measure == 0 {
		c.Measure = 400 * Millisecond
	}
	return nil
}

// Result summarizes one simulated experiment.
type Result struct {
	// ThroughputTxns is committed client transactions per second during
	// the measurement window.
	ThroughputTxns float64
	// ThroughputOps is the same in operations per second (Section 5.4's
	// alternative metric).
	ThroughputOps float64
	MeanLatency   time.Duration
	P50Latency    time.Duration
	P99Latency    time.Duration
	FastPath      uint64
	SlowPath      uint64
	// PrimarySaturation and BackupSaturation map thread names to busy
	// fractions (1.0 = fully saturated), the Figure 9 metric. Backup
	// numbers come from the first live backup.
	PrimarySaturation map[string]float64
	BackupSaturation  map[string]float64
	// Events is the number of simulation events processed.
	Events uint64
}

// CumulativePrimary sums the primary thread saturations ×100 (the
// "cumulative saturation" bars of Figure 9a).
func (r Result) CumulativePrimary() float64 {
	s := 0.0
	for _, v := range r.PrimarySaturation {
		s += v
	}
	return s * 100
}

// CumulativeBackup sums the backup thread saturations ×100.
func (r Result) CumulativeBackup() float64 {
	s := 0.0
	for _, v := range r.BackupSaturation {
		s += v
	}
	return s * 100
}

// ---- internal run state ----

type run struct {
	cfg   Config
	costs CostModel
	sim   *Sim

	replicas []*simReplica
	clients  []*simClient

	reqSize     int // encoded client request size in bytes
	respSize    int
	voteSize    int // prepare/commit/checkpoint size
	proposeSize int // pre-prepare / ordered-request size

	latency  *stats.Histogram
	measured uint64 // txns completed inside the measurement window
	fast     uint64
	slow     uint64
}

func authSize(s Scheme, client bool) int {
	switch s {
	case SchemeED25519:
		return 64
	case SchemeRSA:
		return 256
	case SchemeCMAC:
		if client {
			return 64 // clients still use ED25519
		}
		return 16
	default:
		return 0
	}
}

// Run executes one simulated experiment.
func Run(cfg Config) (Result, error) {
	if err := cfg.fill(); err != nil {
		return Result{}, err
	}
	costs := DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	r := &run{cfg: cfg, costs: costs, sim: NewSim(), latency: &stats.Histogram{}}

	// Analytic wire sizes (bytes) for bandwidth accounting.
	txnSize := 16 + cfg.OpsPerTxn*(12+cfg.ValueSize) + 4 + cfg.PayloadSize
	r.reqSize = 20 + cfg.Burst*txnSize + authSize(cfg.Scheme, true)
	r.respSize = 70 + authSize(cfg.Scheme, false)
	r.voteSize = 60 + authSize(cfg.Scheme, false)
	reqsPerBatch := (cfg.BatchSize + cfg.Burst - 1) / cfg.Burst
	r.proposeSize = 84 + reqsPerBatch*r.reqSize

	if cfg.UpperBound != UpperBoundOff {
		return r.runUpperBound()
	}

	// Build replicas.
	for i := 0; i < cfg.Replicas; i++ {
		sr, err := newSimReplica(r, types.ReplicaID(i))
		if err != nil {
			return Result{}, err
		}
		r.replicas = append(r.replicas, sr)
	}
	// Crash the highest-numbered backups (never the primary, replica 0).
	for k := 0; k < cfg.FailedBackups; k++ {
		r.replicas[cfg.Replicas-1-k].down = true
	}

	// Build client machines and clients.
	machines := make([]*Host, cfg.ClientMachines)
	for i := range machines {
		machines[i] = NewHost(r.sim, 4, NewNIC(r.sim, costs.NICBandwidth))
	}
	proto := clientengine.PBFT
	if cfg.Protocol == Zyzzyva {
		proto = clientengine.Zyzzyva
	}
	for i := 0; i < cfg.Clients; i++ {
		eng, err := clientengine.New(types.ClientID(i), cfg.Replicas, proto)
		if err != nil {
			return Result{}, err
		}
		sc := &simClient{
			r:       r,
			id:      types.ClientID(i),
			engine:  eng,
			machine: machines[i%len(machines)],
		}
		r.clients = append(r.clients, sc)
	}

	// Stagger client start over the first few milliseconds to avoid a
	// synchronized thundering herd at t=0.
	for i, sc := range r.clients {
		sc := sc
		r.sim.At(Time(i%1000)*5*Microsecond, sc.submitNext)
	}

	// Snapshot busy counters at the warmup boundary.
	var busyAtWarmup map[*Thread]Time
	r.sim.At(cfg.Warmup, func() {
		busyAtWarmup = make(map[*Thread]Time)
		for _, sr := range r.replicas {
			for _, t := range sr.host.Threads() {
				busyAtWarmup[t] = t.BusyNS
			}
		}
	})

	end := cfg.Warmup + cfg.Measure
	events := r.sim.Run(end)

	res := Result{
		ThroughputTxns:    float64(r.measured) / (float64(cfg.Measure) / float64(Second)),
		MeanLatency:       r.latency.Mean(),
		P50Latency:        r.latency.Percentile(50),
		P99Latency:        r.latency.Percentile(99),
		FastPath:          r.fast,
		SlowPath:          r.slow,
		Events:            events,
		PrimarySaturation: map[string]float64{},
		BackupSaturation:  map[string]float64{},
	}
	res.ThroughputOps = res.ThroughputTxns * float64(cfg.OpsPerTxn)
	window := float64(cfg.Measure)
	collect := func(sr *simReplica, into map[string]float64) {
		for _, t := range sr.host.Threads() {
			base := Time(0)
			if busyAtWarmup != nil {
				base = busyAtWarmup[t]
			}
			sat := float64(t.BusyNS-base) / window
			if sat > 1 {
				sat = 1 // dispatch-time billing can overrun by one job
			}
			into[t.Name] += sat
		}
	}
	collect(r.replicas[0], res.PrimarySaturation)
	for i := 1; i < len(r.replicas); i++ {
		if !r.replicas[i].down {
			collect(r.replicas[i], res.BackupSaturation)
			break
		}
	}
	return res, nil
}

// recordCompletion tallies a client completion.
func (r *run) recordCompletion(start Time, fast bool) {
	now := r.sim.Now()
	if now >= r.cfg.Warmup {
		r.measured += uint64(r.cfg.Burst)
		r.latency.Record(time.Duration(now - start))
		if fast {
			r.fast++
		} else {
			r.slow++
		}
	}
}

// newEngine builds the protocol engine for one simulated replica.
func newEngine(cfg Config, id types.ReplicaID) (consensus.Engine, error) {
	switch cfg.Protocol {
	case Zyzzyva:
		return zyzzyva.New(zyzzyva.Config{
			ID:                  id,
			N:                   cfg.Replicas,
			CheckpointInterval:  cfg.CheckpointInterval,
			MaxSpeculationDepth: 1 << 20,
		})
	default:
		return pbft.New(pbft.Config{
			ID:                 id,
			N:                  cfg.Replicas,
			CheckpointInterval: cfg.CheckpointInterval,
			WatermarkWindow:    1 << 20,
		})
	}
}

// mkRequest builds the lightweight in-sim client request. Transactions
// carry no payload bytes — sizes and costs are accounted analytically —
// but identities are real so digests, quorums, and engine logic behave
// exactly as in the runnable system.
func mkRequest(id types.ClientID, seq uint64, burst int) types.ClientRequest {
	txns := make([]types.Transaction, burst)
	for i := range txns {
		txns[i] = types.Transaction{Client: id, ClientSeq: seq + uint64(i)}
	}
	return types.ClientRequest{Client: id, FirstSeq: seq, Txns: txns}
}

// hashChain is the cheap stand-in state digest used for checkpoints.
func hashChain(prev types.Digest, d types.Digest) types.Digest {
	return crypto.HashChain(prev, d)
}

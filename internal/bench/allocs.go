package bench

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"resilientdb/internal/cluster"
	"resilientdb/internal/crypto"
	"resilientdb/internal/pool"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
	"resilientdb/internal/workload"
)

// allocs measures what the zero-copy hot path saves, in two layers:
//
//   - Microbenchmarks (testing.Benchmark with allocation accounting) on
//     the three mechanisms in isolation: batch-frame decode + inbox
//     dispatch with copying vs pooled arena-backed envelopes, outbound
//     body encode with fresh vs pooled buffers, and signature
//     verification with per-signature vs batch-drained verify workers.
//   - A real-cluster A/B: the same in-process PBFT cluster run with the
//     pre-pooling baseline (PooledEncode -1) and with pooling on,
//     reporting heap allocations per transaction, live heap, and GC
//     pause time over the measured window.
//
// The frame rows are the headline: a copied batch frame pays one buffer
// plus a body and an authenticator copy per envelope, while the pooled
// path pays one pooled arena for the whole frame (authenticators are
// still copied — consensus engines retain them in commit certificates).
func allocs(s Scale) (Outcome, error) {
	warmup := 300 * time.Millisecond
	window := 600 * time.Millisecond
	clients := 32
	if s == ScalePaper {
		warmup = 1 * time.Second
		window = 2 * time.Second
		clients = 96
	}

	micro := Table{
		Title:   "Zero-copy microbenchmarks (64-envelope batch frame, 256B bodies)",
		Columns: []string{"path", "ns/op", "allocs/op", "bytes/op"},
	}
	metrics := map[string]float64{}

	frameCopy := testing.Benchmark(benchFrameDecodeCopy)
	framePooled := testing.Benchmark(benchFrameDecodePooled)
	addMicroRow(&micro, metrics, "frame-decode-copy", "allocs_frame_copy", frameCopy)
	addMicroRow(&micro, metrics, "frame-decode-pooled", "allocs_frame_pooled", framePooled)
	if c := float64(frameCopy.AllocsPerOp()); c > 0 {
		metrics["allocs_frame_reduction_pct"] =
			100 * (1 - float64(framePooled.AllocsPerOp())/c)
	}

	encCopy := testing.Benchmark(benchEncodeCopy)
	encPooled := testing.Benchmark(benchEncodePooled)
	addMicroRow(&micro, metrics, "encode-copy", "allocs_encode_copy", encCopy)
	addMicroRow(&micro, metrics, "encode-pooled", "allocs_encode_pooled", encPooled)

	verSerial, err := benchVerify(1)
	if err != nil {
		return Outcome{}, err
	}
	verBatched, err := benchVerify(crypto.DefaultVerifyBatch)
	if err != nil {
		return Outcome{}, err
	}
	addMicroRow(&micro, metrics, "verify-per-sig", "allocs_verify_per_sig", verSerial)
	addMicroRow(&micro, metrics, "verify-batched", "allocs_verify_batched", verBatched)

	clusterTab := Table{
		Title:   "Real-cluster allocation A/B (PBFT, in-process, pooled encode off vs on)",
		Columns: []string{"row", "tput", "mallocs/txn", "heap", "gc pause"},
	}
	for _, r := range []struct {
		name         string
		pooledEncode int
	}{
		{name: "baseline", pooledEncode: -1},
		{name: "pooled", pooledEncode: 0},
	} {
		res, mem, err := runAllocsCluster(r.pooledEncode, clients, warmup, window)
		if err != nil {
			return Outcome{}, err
		}
		mallocsPerTxn := 0.0
		if res.Txns > 0 {
			mallocsPerTxn = float64(mem.mallocs) / float64(res.Txns)
		}
		clusterTab.AddRow(r.name, ktps(res.Throughput),
			fmt.Sprintf("%.0f", mallocsPerTxn),
			fmt.Sprintf("%dKiB", mem.heapAlloc>>10),
			time.Duration(mem.pauseNS).String())
		metrics["allocs_cluster_tput_"+r.name] = res.Throughput
		metrics["allocs_cluster_mallocs_per_txn_"+r.name] = mallocsPerTxn
		metrics["allocs_cluster_heap_kib_"+r.name] = float64(mem.heapAlloc >> 10)
		metrics["allocs_cluster_gc_pause_ms_"+r.name] = float64(mem.pauseNS) / 1e6
	}
	base := metrics["allocs_cluster_mallocs_per_txn_baseline"]
	if pooled := metrics["allocs_cluster_mallocs_per_txn_pooled"]; base > 0 {
		metrics["allocs_cluster_mallocs_reduction_pct"] = 100 * (1 - pooled/base)
	}

	return Outcome{Tables: []Table{micro, clusterTab}, Metrics: metrics}, nil
}

// addMicroRow books one microbenchmark result as a table row and as
// metrics under the given key prefix.
func addMicroRow(tab *Table, metrics map[string]float64, name, key string, r testing.BenchmarkResult) {
	tab.AddRow(name,
		fmt.Sprintf("%d", r.NsPerOp()),
		fmt.Sprintf("%d", r.AllocsPerOp()),
		fmt.Sprintf("%d", r.AllocedBytesPerOp()))
	metrics[key+"_ns_per_op"] = float64(r.NsPerOp())
	metrics[key+"_allocs_per_op"] = float64(r.AllocsPerOp())
	metrics[key+"_bytes_per_op"] = float64(r.AllocedBytesPerOp())
}

// allocsBatchFrame builds the wire bytes of one 64-envelope batch frame
// with 256-byte bodies — the shape a loaded TCP connection carries.
func allocsBatchFrame() []byte {
	body := make([]byte, 256)
	auth := make([]byte, 32)
	for i := range body {
		body[i] = byte(i)
	}
	envs := make([]*types.Envelope, 64)
	for i := range envs {
		envs[i] = &types.Envelope{
			From: types.ReplicaNode(types.ReplicaID(i % 4)),
			To:   types.ReplicaNode(0),
			Type: types.MsgPrepare,
			Body: body,
			Auth: auth,
		}
	}
	var w types.Writer
	types.AppendBatchFrame(&w, envs)
	return append([]byte(nil), w.Bytes()...)
}

// benchFrameDecodeCopy reads the batch frame with the copying decoder and
// dispatches each envelope to its inbox class — the pre-pooling inbound
// path.
func benchFrameDecodeCopy(b *testing.B) {
	frame := allocsBatchFrame()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		envs, err := types.ReadFrames(bytes.NewReader(frame))
		if err != nil {
			b.Fatal(err)
		}
		for _, env := range envs {
			_ = transport.Classify(env.From, 3)
		}
	}
}

// benchFrameDecodePooled is benchFrameDecodeCopy on the pooled zero-copy
// decoder: envelopes alias one pooled arena and are released after
// dispatch, so the buffer recycles.
func benchFrameDecodePooled(b *testing.B) {
	frame := allocsBatchFrame()
	bufs := new(pool.BytePool)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		envs, err := types.ReadFramesPooled(bytes.NewReader(frame), bufs)
		if err != nil {
			b.Fatal(err)
		}
		for _, env := range envs {
			_ = transport.Classify(env.From, 3)
			env.Release()
		}
	}
}

// allocsMessage is the outbound message the encode benchmarks marshal: a
// Prepare, the highest-volume broadcast in a PBFT round.
func allocsMessage() types.Message {
	return &types.Prepare{View: 3, Seq: 12345, Digest: types.Digest{1, 2, 3}, Replica: 2}
}

// benchEncodeCopy marshals an outbound body with the allocating encoder.
func benchEncodeCopy(b *testing.B) {
	msg := allocsMessage()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = types.MarshalBody(msg)
	}
}

// benchEncodePooled marshals the same body into a pooled arena buffer and
// releases it, as the replica's pooled send path does once the transport
// has written the envelope.
func benchEncodePooled(b *testing.B) {
	msg := allocsMessage()
	bufs := new(pool.BytePool)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, arena := types.MarshalBodyArena(msg, bufs, 0)
		arena.Release()
	}
}

// benchVerify measures one verify-pool drain of 64 pending ED25519
// signature checks — submitted like the input stage does, awaited in
// order like the forwarders do — at the given batch-drain limit.
// batchMax 1 is the per-signature baseline; DefaultVerifyBatch lets each
// worker wakeup cover up to 16 checks.
func benchVerify(batchMax int) (testing.BenchmarkResult, error) {
	var seed [32]byte
	seed[0] = 7
	dir, err := crypto.NewDirectory(crypto.AllED25519(), seed)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	signer := dir.NodeAuth(types.ReplicaNode(1))
	verifier := dir.NodeAuth(types.ReplicaNode(0))
	msg := make([]byte, 256)
	for i := range msg {
		msg[i] = byte(i * 3)
	}
	sig, err := signer.Sign(types.ReplicaNode(0), msg)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	res := testing.Benchmark(func(b *testing.B) {
		p := crypto.NewVerifyPoolBatch(verifier, 2, 256, batchMax)
		defer p.Close()
		pending := make([]*crypto.Pending, 64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range pending {
				pending[j] = p.SubmitPooled(types.ReplicaNode(1), msg, sig)
			}
			for j := range pending {
				if err := pending[j].Await(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	return res, nil
}

// memDelta is the process-wide heap movement across a measured window.
type memDelta struct {
	mallocs   uint64
	heapAlloc uint64
	pauseNS   uint64
}

// runAllocsCluster runs one in-process PBFT cluster with the pooled
// encode path on (0) or off (-1), a warmup window, then a measured
// window bracketed by MemStats reads (after a forced GC, so the deltas
// start from a settled heap).
func runAllocsCluster(pooledEncode, clients int, warmup, window time.Duration) (cluster.Result, memDelta, error) {
	wl := workload.Default()
	wl.Records = 4096
	c, err := cluster.New(cluster.Options{
		N:                  4,
		Clients:            clients,
		Burst:              2,
		BatchSize:          20,
		ExecuteThreads:     2,
		Workload:           wl,
		CheckpointInterval: 25,
		Seed:               13,
		PreloadTable:       true,
		PooledEncode:       pooledEncode,
	})
	if err != nil {
		return cluster.Result{}, memDelta{}, err
	}
	c.Start()
	defer c.Stop()
	ctx := context.Background()
	c.Run(ctx, warmup)
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	res := c.Run(ctx, window)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	return res, memDelta{
		mallocs:   m1.Mallocs - m0.Mallocs,
		heapAlloc: m1.HeapAlloc,
		pauseNS:   m1.PauseTotalNs - m0.PauseTotalNs,
	}, nil
}

package bench

import (
	"fmt"
	"strings"
	"time"

	"resilientdb/internal/chaos"
)

// ChaosTuning overrides the windows and load the faults experiment hands
// to the chaos runner; zero fields keep the runner defaults (the -chaos
// flag on resdb-bench layers its ambient link fault in here as
// BaseFault). It is a package variable so the driver can configure it
// before Run without threading chaos types through the Experiment API.
var ChaosTuning chaos.Tuning

// faults runs the chaos scenario matrix — every fault class under live
// Zipfian load — and reports the degraded-mode cost of each: throughput
// during the fault and after healing relative to the fault-free warmup,
// plus how long liveness took to come back. The invariant checks the
// test suite enforces (ledger equality, no lost acked writes, bounded
// recovery) run here too; a violation count other than 0 in any row
// means the run is reporting numbers for a broken cluster and must not
// be trusted.
func faults(s Scale) (Outcome, error) {
	tn := ChaosTuning
	if s == ScalePaper && tn == (chaos.Tuning{}) {
		tn = chaos.Tuning{
			Warmup:  time.Second,
			Fault:   3 * time.Second,
			Recover: 2 * time.Second,
			Records: 4096,
			Clients: 8,
		}
	}

	tab := Table{
		Title: "Fault matrix: throughput under injected faults and recovery after healing (PBFT, N=4, live Zipfian load)",
		Columns: []string{"scenario", "class", "baseline", "fault", "recovered",
			"recovery", "view", "evidence", "violations"},
	}
	metrics := map[string]float64{}

	for _, sc := range chaos.DefaultMatrix() {
		rep, err := chaos.RunScenario(sc, tn)
		if err != nil {
			return Outcome{}, fmt.Errorf("faults: scenario %s: %w", sc.Name, err)
		}
		tab.AddRow(rep.Scenario, rep.Class,
			ktps(rep.BaselineTput), ktps(rep.FaultTput), ktps(rep.RecoveredTput),
			fmt.Sprintf("%.2fs", rep.RecoverySeconds),
			fmt.Sprintf("%d", rep.FinalView),
			fmt.Sprintf("%d", rep.Evidence),
			fmt.Sprintf("%d", len(rep.Violations)))

		key := strings.ReplaceAll(rep.Scenario, "-", "_")
		metrics["faults_baseline_tput_"+key] = rep.BaselineTput
		metrics["faults_fault_tput_"+key] = rep.FaultTput
		metrics["faults_recovered_tput_"+key] = rep.RecoveredTput
		metrics["faults_recovery_s_"+key] = rep.RecoverySeconds
		metrics["faults_final_view_"+key] = float64(rep.FinalView)
		metrics["faults_violations_"+key] = float64(len(rep.Violations))
	}

	return Outcome{Tables: []Table{tab}, Metrics: metrics}, nil
}

package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"resilientdb/internal/chaos"
)

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{"fig1", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17", "ablation-ooo", "ablation-exec",
		"tcpbatch", "workerscale", "execshards", "diskpipe", "compaction", "readmix",
		"scans", "allocs", "faults", "gateway"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Fatalf("experiment %d = %s, want %s", i, all[i].ID, id)
		}
		if all[i].Paper == "" || all[i].Title == "" {
			t.Fatalf("experiment %s missing documentation", id)
		}
	}
	if _, ok := ByID("fig10"); !ok {
		t.Fatal("ByID failed for fig10")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID matched a bogus id")
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{Title: "T", Columns: []string{"a", "long-column"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== T ==", "long-column", "333"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestShapeFig14Storage is the fastest full-experiment shape check:
// off-memory storage must collapse throughput and inflate latency.
func TestShapeFig14Storage(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	out, err := fig14(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics["storage_drop_pct"] < 50 {
		t.Fatalf("storage drop = %.1f%%, want ≥50%%", out.Metrics["storage_drop_pct"])
	}
	if out.Metrics["storage_latency_x"] < 2 {
		t.Fatalf("storage latency factor = %.1fx, want ≥2x", out.Metrics["storage_latency_x"])
	}
}

func TestShapeFig16Cores(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	out, err := fig16(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics["core_scaling_x"] < 3 {
		t.Fatalf("core scaling = %.1fx, want ≥3x", out.Metrics["core_scaling_x"])
	}
}

// TestShapeWorkerScale checks the workerscale invariant rather than exact
// numbers (they are hardware-dependent): fanning the worker into four
// lanes must either spread the per-lane load — the busiest lane's busy
// share drops — or convert the headroom into throughput, and it must
// never collapse throughput.
func TestShapeWorkerScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	out, err := workerscale(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	t1 := out.Metrics["workerscale_tput_w1"]
	t4 := out.Metrics["workerscale_tput_w4"]
	s1 := out.Metrics["workerscale_worker_share_w1"]
	s4 := out.Metrics["workerscale_worker_share_w4"]
	if t1 <= 0 || t4 <= 0 {
		t.Fatalf("no throughput recorded: w1=%.0f w4=%.0f", t1, t4)
	}
	if t4 < 0.5*t1 {
		t.Fatalf("W=4 collapsed throughput: %.0f vs %.0f at W=1", t4, t1)
	}
	if !(s4 < 0.9*s1 || t4 > 1.3*t1) {
		t.Fatalf("W=4 neither spread the worker load (share %.3f vs %.3f) nor scaled throughput (%.0f vs %.0f)",
			s4, s1, t4, t1)
	}
}

// TestShapeExecShards checks the execshards invariants rather than exact
// numbers: sharded execution must never collapse throughput, and under
// the Zipfian write load every shard must do real work (the partition
// spreads the hot keys).
func TestShapeExecShards(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	out, err := execshards(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	t1 := out.Metrics["execshards_tput_e1"]
	t4 := out.Metrics["execshards_tput_e4"]
	if t1 <= 0 || t4 <= 0 {
		t.Fatalf("no throughput recorded: e1=%.0f e4=%.0f", t1, t4)
	}
	if t4 < 0.5*t1 {
		t.Fatalf("E=4 collapsed throughput: %.0f vs %.0f at E=1", t4, t1)
	}
	if out.Metrics["execshards_min_shard_busy_ns_e4"] <= 0 {
		t.Fatal("an idle execution shard at E=4: the write-set partition is not spreading work")
	}
}

// TestShapeDiskPipe checks the diskpipe invariants rather than exact
// numbers: the serial fsync-per-Put store must collapse under the load
// (the Section 5.7 shape), and the sharded group-commit store must
// measurably narrow that gap — faster than the serial store, with fewer
// fsyncs per executed transaction.
func TestShapeDiskPipe(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	out, err := diskpipe(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	mem := out.Metrics["diskpipe_tput_mem"]
	disk := out.Metrics["diskpipe_tput_disk_serial"]
	sharded := out.Metrics["diskpipe_tput_sharded_gc"]
	if mem <= 0 || disk <= 0 || sharded <= 0 {
		t.Fatalf("no throughput recorded: mem=%.0f disk=%.0f sharded=%.0f", mem, disk, sharded)
	}
	if disk >= mem {
		t.Fatalf("serial disk store did not cost throughput: %.0f vs mem %.0f", disk, mem)
	}
	if sharded < 1.5*disk {
		t.Fatalf("sharded group commit did not narrow the gap: %.0f vs serial disk %.0f", sharded, disk)
	}
	if out.Metrics["diskpipe_gap_closed_pct"] <= 0 {
		t.Fatalf("gap closed = %.1f%%, want > 0", out.Metrics["diskpipe_gap_closed_pct"])
	}
	// Group commit's mechanism: fewer fsyncs per executed transaction.
	diskRate := out.Metrics["diskpipe_fsyncs_disk_serial"] / disk
	shardedRate := out.Metrics["diskpipe_fsyncs_sharded_gc"] / sharded
	if out.Metrics["diskpipe_fsyncs_sharded_gc"] <= 0 {
		t.Fatal("sharded store never fsynced: group commit is not running")
	}
	if shardedRate >= diskRate {
		t.Fatalf("fsyncs per txn/s: sharded %.3f vs serial %.3f — no amortization", shardedRate, diskRate)
	}
}

// TestShapeCompaction checks the compaction invariants rather than exact
// numbers: the overwrite-heavy history must leave the logs several times
// larger than the live data, compaction must shrink them back to ≈ live
// data, and reopening the compacted store must not be slower than
// replaying the full history (with ~25x less log to scan it is reliably
// faster, but the assertion allows equality to stay hardware-tolerant).
func TestShapeCompaction(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	out, err := compaction(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	pre := out.Metrics["compaction_log_bytes_pre"]
	post := out.Metrics["compaction_log_bytes_post"]
	live := out.Metrics["compaction_live_bytes"]
	if pre <= 0 || post <= 0 || live <= 0 {
		t.Fatalf("no bytes recorded: pre=%.0f post=%.0f live=%.0f", pre, post, live)
	}
	if pre < 3*live {
		t.Fatalf("history did not outgrow live data: %.0f vs live %.0f — the workload is not overwrite-heavy", pre, live)
	}
	if post > 1.05*live {
		t.Fatalf("post-compaction logs = %.0f bytes, want ≈ live data %.0f — compaction kept history", post, live)
	}
	if out.Metrics["compaction_compactions"] <= 0 {
		t.Fatal("no compactions recorded")
	}
	if out.Metrics["compaction_reclaimed_bytes"] <= 0 {
		t.Fatal("no bytes reclaimed")
	}
	if out.Metrics["compaction_reopen_ms_post"] > out.Metrics["compaction_reopen_ms_pre"] {
		t.Fatalf("compacted store reopened slower: %.2fms vs %.2fms",
			out.Metrics["compaction_reopen_ms_post"], out.Metrics["compaction_reopen_ms_pre"])
	}
}

// TestShapeReadMix checks the readmix invariants rather than exact
// numbers (latency percentiles are scheduler-noisy on few-core
// machines): every row must complete transactions, only the local-mode
// rows may serve local reads, and the read-only local row must consume
// zero sequence numbers while its consensus-ordered twin consumes many —
// the consensus-bypass evidence.
func TestShapeReadMix(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	out, err := readmix(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"quorum_a", "local_a", "quorum_c", "local_c"} {
		if out.Metrics["readmix_tput_"+key] <= 0 {
			t.Fatalf("row %s completed no transactions", key)
		}
	}
	if out.Metrics["readmix_local_reads_quorum_a"] != 0 || out.Metrics["readmix_local_reads_quorum_c"] != 0 {
		t.Fatal("quorum rows served local reads")
	}
	if out.Metrics["readmix_local_reads_local_a"] <= 0 || out.Metrics["readmix_local_reads_local_c"] <= 0 {
		t.Fatal("local rows served no local reads")
	}
	if got := out.Metrics["readmix_seq_used_local_c"]; got != 0 {
		t.Fatalf("read-only local traffic consumed %.0f sequence numbers, want 0", got)
	}
	if out.Metrics["readmix_seq_used_quorum_c"] <= 0 {
		t.Fatal("consensus-ordered read-only traffic consumed no sequence numbers")
	}
}

// TestShapeScans checks the scans experiment's invariants rather than
// exact numbers: every row must complete scan transactions, only the
// local-mode rows may serve scans from the local path, and the
// consensus-ordered rows must burn sequence numbers for scan traffic.
// (Local rows still consume some — workload E keeps a write minority —
// so the quorum-vs-local contrast is per-scan, asserted via LocalReads.)
func TestShapeScans(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	out, err := scans(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"quorum_e", "local_e", "quorum_mix", "local_mix"} {
		if out.Metrics["scans_tput_"+key] <= 0 {
			t.Fatalf("row %s completed no transactions", key)
		}
		if out.Metrics["scans_scan_txns_"+key] <= 0 {
			t.Fatalf("row %s completed no scan transactions", key)
		}
	}
	if out.Metrics["scans_local_reads_quorum_e"] != 0 || out.Metrics["scans_local_reads_quorum_mix"] != 0 {
		t.Fatal("quorum rows served local scans")
	}
	if out.Metrics["scans_local_reads_local_e"] <= 0 || out.Metrics["scans_local_reads_local_mix"] <= 0 {
		t.Fatal("local rows served no local scans")
	}
	if out.Metrics["scans_seq_used_quorum_e"] <= 0 {
		t.Fatal("consensus-ordered scan traffic consumed no sequence numbers")
	}
}

// TestShapeAllocs checks the zero-copy experiment's headline claims: the
// pooled frame decode must cut allocations per operation by at least half
// against the copying decoder, and the pooled cluster run must allocate
// measurably less per transaction than the pre-pooling baseline.
func TestShapeAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	out, err := allocs(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Metrics["allocs_frame_reduction_pct"]; got < 50 {
		t.Fatalf("frame decode allocs reduction = %.1f%%, want ≥50%%", got)
	}
	if c, p := out.Metrics["allocs_encode_copy_allocs_per_op"], out.Metrics["allocs_encode_pooled_allocs_per_op"]; p >= c {
		t.Fatalf("pooled encode allocates %.0f/op, copy %.0f/op — pooling saved nothing", p, c)
	}
	for _, key := range []string{"baseline", "pooled"} {
		if out.Metrics["allocs_cluster_tput_"+key] <= 0 {
			t.Fatalf("cluster row %s completed no transactions", key)
		}
	}
	if got := out.Metrics["allocs_cluster_mallocs_reduction_pct"]; got <= 0 {
		t.Fatalf("cluster mallocs/txn reduction = %.1f%%, want > 0", got)
	}
}

func TestRunAndRenderProducesOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	e, ok := ByID("ablation-exec")
	if !ok {
		t.Fatal("missing experiment")
	}
	var buf bytes.Buffer
	out, err := RunAndRender(e, ScaleSmall, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tables) == 0 || buf.Len() == 0 {
		t.Fatal("no output produced")
	}
	if !strings.Contains(buf.String(), "Ablation") {
		t.Fatalf("output missing table title:\n%s", buf.String())
	}
}

// TestShapeFaults runs the chaos fault matrix through the bench wrapper:
// every scenario must report throughput in all three windows and zero
// invariant violations — a violation means the numbers describe a broken
// cluster.
func TestShapeFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	old := ChaosTuning
	ChaosTuning = chaos.Tuning{
		Warmup:  300 * time.Millisecond,
		Fault:   time.Second,
		Recover: 900 * time.Millisecond,
		Records: 512,
		Seed:    13,
	}
	defer func() { ChaosTuning = old }()
	out, err := faults(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range chaos.DefaultMatrix() {
		key := strings.ReplaceAll(sc.Name, "-", "_")
		if out.Metrics["faults_baseline_tput_"+key] <= 0 {
			t.Errorf("%s: no baseline throughput", sc.Name)
		}
		if v := out.Metrics["faults_violations_"+key]; v != 0 {
			t.Errorf("%s: %v invariant violations", sc.Name, v)
		}
		if _, ok := out.Metrics["faults_recovery_s_"+key]; !ok {
			t.Errorf("%s: no recovery time recorded", sc.Name)
		}
	}
}

// Package bench regenerates every table and figure of the paper's
// evaluation (Section 5). Each experiment builds the simulator
// configurations for one figure, runs them, and renders the same rows and
// series the paper reports. The cmd/resdb-bench binary and the top-level
// bench_test.go both drive this package.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"resilientdb/internal/sim"
)

// Scale trades fidelity for wall-clock time.
type Scale int

// Scales.
const (
	// ScaleSmall shrinks client counts and measurement windows so the
	// full suite finishes in minutes; shapes are preserved.
	ScaleSmall Scale = iota + 1
	// ScalePaper uses the paper's population sizes (up to 80K clients,
	// 60s-class windows scaled to simulator steady state).
	ScalePaper
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	if s == ScalePaper {
		return "paper"
	}
	return "small"
}

// clients scales a paper-scale client population.
func (s Scale) clients(paper int) int {
	if s == ScalePaper {
		return paper
	}
	scaled := paper / 20
	if scaled < 400 {
		scaled = 400
	}
	return scaled
}

// windows returns warmup and measurement windows.
func (s Scale) windows() (warmup, measure sim.Time) {
	if s == ScalePaper {
		return 300 * sim.Millisecond, 1000 * sim.Millisecond
	}
	return 80 * sim.Millisecond, 200 * sim.Millisecond
}

// Table is one printable result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	var hdr strings.Builder
	for i, c := range t.Columns {
		fmt.Fprintf(&hdr, "%-*s  ", widths[i], c)
	}
	fmt.Fprintln(w, strings.TrimRight(hdr.String(), " "))
	for _, row := range t.Rows {
		var line strings.Builder
		for i, cell := range row {
			fmt.Fprintf(&line, "%-*s  ", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(line.String(), " "))
	}
	fmt.Fprintln(w)
}

// Outcome is one experiment's output: rendered tables plus headline
// metrics for programmatic assertions and benchmark reporting.
type Outcome struct {
	Tables  []Table
	Metrics map[string]float64
}

// Experiment regenerates one paper figure.
type Experiment struct {
	// ID is the figure identifier, e.g. "fig10".
	ID string
	// Title describes the experiment.
	Title string
	// Paper summarizes what the paper reports for this figure.
	Paper string
	// Run executes the experiment at the given scale.
	Run func(Scale) (Outcome, error)
}

// All returns every experiment in figure order.
func All() []Experiment {
	return []Experiment{
		{ID: "fig1", Title: "Headline: ResilientDB-PBFT vs protocol-centric Zyzzyva (throughput vs replicas)",
			Paper: "PBFT on the full pipeline attains up to 175K txn/s and up to 79% more throughput than Zyzzyva on a protocol-centric design; scales to 32 replicas", Run: fig1},
		{ID: "fig7", Title: "Upper bound without consensus: No-Execution vs Execution (vs clients)",
			Paper: "up to ~500K txn/s and ≤0.25s latency", Run: fig7},
		{ID: "fig8", Title: "Threading and pipelining: throughput/latency vs replicas per thread configuration",
			Paper: "PBFT 0B0E→2B1E gains 1.39x (latency -58.4%); Zyzzyva gains 1.72x (-63.19%); PBFT 2B1E beats every Zyzzyva config except 2B1E", Run: fig8},
		{ID: "fig9", Title: "Thread saturation at primary and backup per configuration",
			Paper: "batch-threads saturate at the primary under 2B1E (~85% each); worker saturates under 0B0E; backup worker highest at 2B1E", Run: fig9},
		{ID: "fig10", Title: "Transaction batching: throughput/latency vs batch size",
			Paper: "throughput rises to a peak near batch=1000 then declines by 3000; batching is worth up to 66x and -98.4% latency", Run: fig10},
		{ID: "fig11", Title: "Multi-operation transactions: throughput/latency vs ops per txn and batch-threads",
			Paper: "txn/s falls ~93% from 1 to 50 ops (2B); 2B→5B recovers up to 66%; ops/s trend reverses", Run: fig11},
		{ID: "fig12", Title: "Message size: throughput/latency vs pre-prepare size",
			Paper: "8KB→64KB costs ~52% throughput and ~2.09x latency; network-bound, threads idle", Run: fig12},
		{ID: "fig13", Title: "Cryptographic signatures: NoSig vs ED25519 vs RSA vs CMAC+ED25519",
			Paper: "crypto costs ≥49% throughput; RSA latency ~125x the CMAC+ED combination", Run: fig13},
		{ID: "fig14", Title: "Storage: in-memory vs off-memory (blocking store API)",
			Paper: "off-memory storage cuts throughput ~94% and raises latency ~24x", Run: fig14},
		{ID: "fig15", Title: "Clients: throughput/latency vs client population",
			Paper: "throughput saturates near 32K clients (+1.44% from 16K to 80K); latency grows ~5x", Run: fig15},
		{ID: "fig16", Title: "Hardware cores: throughput/latency vs cores per replica",
			Paper: "8 cores vs 1 core is worth 8.92x", Run: fig16},
		{ID: "fig17", Title: "Replica failures: PBFT vs Zyzzyva under 0/1/5 crashed backups",
			Paper: "PBFT dips slightly; Zyzzyva collapses (~39x loss) with a single failure", Run: fig17},
		{ID: "ablation-ooo", Title: "Ablation: out-of-order consensus vs strictly sequential instances",
			Paper: "out-of-order processing is worth ~60% throughput (Section 4.5)", Run: ablationOOO},
		{ID: "ablation-exec", Title: "Ablation: decoupled execution (1E) vs worker-executed (0E)",
			Paper: "decoupling execution from ordering is worth ~9.5% (Section 3)", Run: ablationExec},
		{ID: "tcpbatch", Title: "Transport: batched vs per-envelope TCP frames (envelopes/s over localhost)",
			Paper: "per-message sends put one syscall on every envelope; batch frames amortize it (cf. Section 4.1 output-threads)", Run: tcpbatch},
		{ID: "workerscale", Title: "Worker lanes: throughput and per-lane busy time vs WorkerThreads (real pipeline)",
			Paper: "the single worker-thread saturates at the backups (Figure 9); lock-striped instances let W lanes split consensus stepping so the worker stops being the lone saturated stage", Run: workerscale},
		{ID: "execshards", Title: "Execution shards: throughput and per-shard busy time vs ExecuteThreads (real pipeline)",
			Paper: "the paper caps execution at one thread (data conflicts, Section 6); write-set partitioning lifts the cap — E shards split a Zipfian write load deterministically, shown by the per-shard busy table", Run: execshards},
		{ID: "diskpipe", Title: "Durable storage pipeline: MemStore vs serial DiskStore vs sharded group-commit DiskStore (real pipeline)",
			Paper: "naive off-memory storage cuts throughput ~94% (Section 5.7); sharding the log per execution shard and group-committing the fsync narrows that gap — the fsync-stall column shows the amortization", Run: diskpipe},
		{ID: "compaction", Title: "Checkpoint-driven log compaction: shard-log bytes and reopen time before/after (sharded store)",
			Paper: "a stable checkpoint licenses discarding old state (Section 4.7), and off-memory storage only stays viable if its costs stay bounded (Section 5.7) — compaction rewrites live records so log size and restart replay track live data, not history", Run: compaction},
		{ID: "readmix", Title: "Read path: consensus-ordered vs locally-served reads under YCSB mixes (real pipeline)",
			Paper: "the paper orders every operation through consensus; serving read-only requests from a replica's last-executed snapshot skips the three-phase round — the seq-used column shows local reads consuming no sequence numbers", Run: readmix},
		{ID: "scans", Title: "Range scans: consensus-ordered vs locally-served scans under YCSB-E mixes (real pipeline)",
			Paper: "the paper's transactions are opaque write payloads; general transactions add ordered range scans — fanned to every execute shard behind a write-flush barrier, merged deterministically — and the seq-used column shows write-free scans served locally under a staleness bound consuming no sequence numbers", Run: scans},
		{ID: "allocs", Title: "Zero-copy hot path: pooled frames, arena decode, batched verification (allocation A/B)",
			Paper: "the paper pre-allocates message buffers and pools them (Section 4.8 \"smart memory management\"); the microbenchmarks isolate each pooled mechanism and the cluster rows show heap allocations per transaction with pooling off vs on", Run: allocs},
		{ID: "faults", Title: "Fault matrix: degraded throughput and recovery time per injected fault class (chaos harness)",
			Paper: "the paper evaluates replica failures (Figure 17) and argues the pipeline dips rather than collapses under a crashed backup; the chaos matrix generalizes that run to Byzantine, network, and storage fault classes and adds recovery-time and safety-invariant columns", Run: faults},
		{ID: "gateway", Title: "Gateway tier: multiplexed sessions vs direct clients, with overload pushback (real pipeline)",
			Paper: "the paper's evaluation drives up to 80K closed-loop clients, each its own identity and connection (Section 5.1); the gateway tier multiplexes that population over a handful of replica-facing connections, coalescing session transactions into shared signed requests — the overload row shows saturation surfacing as explicit busy pushback instead of silent transport drops", Run: gatewaybench},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAndRender executes one experiment and writes its tables.
func RunAndRender(e Experiment, scale Scale, w io.Writer) (Outcome, error) {
	out, err := e.Run(scale)
	if err != nil {
		return out, fmt.Errorf("%s: %w", e.ID, err)
	}
	fmt.Fprintf(w, "---- %s: %s [scale=%s] ----\n", e.ID, e.Title, scale)
	fmt.Fprintf(w, "paper: %s\n\n", e.Paper)
	for i := range out.Tables {
		out.Tables[i].Render(w)
	}
	keys := make([]string, 0, len(out.Metrics))
	for k := range out.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "metric %-32s %12.2f\n", k, out.Metrics[k])
	}
	fmt.Fprintln(w)
	return out, nil
}

// helpers

func ktps(v float64) string { return fmt.Sprintf("%.1fK", v/1000) }

func ms(d interface{ Seconds() float64 }) string {
	return fmt.Sprintf("%.2fms", d.Seconds()*1000)
}

func pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }

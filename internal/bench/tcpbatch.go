package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"resilientdb/internal/transport"
	"resilientdb/internal/types"
)

// TCPTuning exposes the transport batching knobs to the resdb-bench
// command line (-net-batch, -net-linger); the tcpbatch experiment compares
// this configuration against the per-envelope baseline.
var TCPTuning = struct {
	// BatchMax is the batched configuration under test (transport
	// TCPConfig.BatchMax); 1 would degenerate to the baseline.
	BatchMax int
	// Linger is the partial-batch flush delay under test.
	Linger time.Duration
}{BatchMax: transport.DefaultBatchMax}

// tcpbatch measures the real-TCP envelope throughput of the transport's
// batched send path against the per-envelope baseline. It is the
// transport-layer companion to Figure 10: consensus batching amortizes
// protocol cost per transaction, transport batching amortizes syscall
// cost per envelope.
func tcpbatch(s Scale) (Outcome, error) {
	window := 250 * time.Millisecond
	if s == ScalePaper {
		window = time.Second
	}
	const senders = 4

	unbatched, err := runTCPLoad(1, 0, senders, window)
	if err != nil {
		return Outcome{}, err
	}
	batched, err := runTCPLoad(TCPTuning.BatchMax, TCPTuning.Linger, senders, window)
	if err != nil {
		return Outcome{}, err
	}
	gain := 0.0
	if unbatched > 0 {
		gain = batched / unbatched
	}

	tab := Table{
		Title:   "TCP transport batching (envelopes/s, localhost)",
		Columns: []string{"config", "env/s"},
	}
	tab.AddRow("per-envelope frames", fmt.Sprintf("%.0f", unbatched))
	tab.AddRow(fmt.Sprintf("batch frames (max %d)", TCPTuning.BatchMax), fmt.Sprintf("%.0f", batched))
	tab.AddRow("gain", fmt.Sprintf("%.2fx", gain))
	return Outcome{
		Tables: []Table{tab},
		Metrics: map[string]float64{
			"tcp_unbatched_eps": unbatched,
			"tcp_batched_eps":   batched,
			"tcp_batch_gain_x":  gain,
		},
	}, nil
}

// runTCPLoad pumps envelopes from a sender endpoint to a receiver over
// localhost TCP for the given window and returns delivered envelopes per
// second.
func runTCPLoad(batchMax int, linger time.Duration, senders int, window time.Duration) (float64, error) {
	rx, err := transport.NewTCP(types.ReplicaNode(1), "127.0.0.1:0", nil, 1, 1<<15)
	if err != nil {
		return 0, err
	}
	defer rx.Close()
	tx, err := transport.NewTCPWithConfig(transport.TCPConfig{
		Self:       types.ReplicaNode(0),
		ListenAddr: "127.0.0.1:0",
		Inboxes:    1,
		Capacity:   16,
		BatchMax:   batchMax,
		Linger:     linger,
	})
	if err != nil {
		return 0, err
	}
	defer tx.Close()
	tx.SetPeerAddr(types.ReplicaNode(1), rx.Addr())

	var received atomic.Uint64
	consumed := make(chan struct{})
	go func() {
		defer close(consumed)
		for range rx.Inbox(0) {
			received.Add(1)
		}
	}()

	body := make([]byte, 256)
	auth := make([]byte, 32)
	start := time.Now()
	stopAt := start.Add(window)
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stopAt) {
				env := &types.Envelope{
					From: types.ReplicaNode(0),
					To:   types.ReplicaNode(1),
					Type: types.MsgPrepare,
					Body: body,
					Auth: auth,
				}
				if tx.Send(env) != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	tx.Close() // flush lingering batches
	// Let in-flight frames land before sampling the counter.
	time.Sleep(30 * time.Millisecond)
	elapsed := time.Since(start) - 30*time.Millisecond
	rx.Close()
	<-consumed
	return float64(received.Load()) / elapsed.Seconds(), nil
}

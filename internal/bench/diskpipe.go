package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"resilientdb/internal/cluster"
	"resilientdb/internal/replica"
	"resilientdb/internal/workload"
)

// DiskTuning exposes the durable-storage knobs to the resdb-bench command
// line: the diskpipe experiment compares the store backends under these
// settings.
var DiskTuning = struct {
	// Shards is the sharded backend's append-log count; 0 aligns it with
	// the execution shard count.
	Shards int
	// Sync is the fsync policy for the disk-backed rows: the sharded
	// backend group-commits on this linger, the serial backend fsyncs
	// every Put.
	Sync time.Duration
	// Depth is the cross-batch execution pipelining depth for the
	// sharded-store row.
	Depth int
	// CompactRatio and CompactMinBytes are handed to the disk backends as
	// their checkpoint-driven compaction thresholds (0 = store defaults).
	// They shape diskpipe's disk rows (whose replicas MaybeCompact on
	// stable checkpoints); the compaction experiment's forced Compact
	// ignores thresholds by design.
	CompactRatio    float64
	CompactMinBytes int64
}{Sync: 200 * time.Microsecond, Depth: 4}

// diskpipe measures the durable storage pipeline on the real replica
// stack (in-process transport, E = 4 execution shards throughout, so the
// storage backend is the only axis that moves):
//
//   - mem: the paper's recommended in-memory table (Section 6 "Memory
//     Storage") — the ceiling.
//   - disk-serial: the Section 5.7 off-memory contrast, a single blocking
//     append log with an fsync on every Put — the naive durable store
//     whose cost the paper measures at ~94% of throughput.
//   - sharded-gc: the refactored store — one append log per execution
//     shard (each shard worker streams its write partition to a private
//     log), group commit amortizing the fsync across every write in a
//     linger window, and cross-batch execution pipelining keeping the
//     shards fed across batch barriers.
//
// The fsync-stall column is the mechanism made visible: serial fsync
// stalls the execute stage once per record, group commit once per window.
// On a few-core machine the stall split, not wall-clock throughput, is
// the quantity to watch (cf. the workerscale/execshards guidance).
func diskpipe(s Scale) (Outcome, error) {
	window := 600 * time.Millisecond
	clients := 64
	if s == ScalePaper {
		window = 2 * time.Second
		clients = 192
	}
	const execShards = 4

	type row struct {
		name    string
		backend string
		sync    time.Duration
		depth   int
	}
	rows := []row{
		{name: "mem", backend: "mem", depth: 1},
		{name: "disk-serial", backend: "disk", sync: DiskTuning.Sync, depth: 1},
		{name: "sharded-gc", backend: "sharded", sync: DiskTuning.Sync, depth: DiskTuning.Depth},
	}

	tab := Table{
		Title: "Durable storage pipeline (PBFT, real pipeline, E=4 execution shards)",
		Columns: []string{"store", "tput", "p50", "fsyncs",
			"fsync stall ms", "shard busy ms"},
	}
	metrics := map[string]float64{}
	var memTput, diskTput, shardedTput float64

	for _, r := range rows {
		res, backup, err := runDiskLoad(r.backend, r.sync, r.depth, execShards, clients, window)
		if err != nil {
			return Outcome{}, err
		}
		stallMS := float64(backup.StoreFsyncStallNS) / 1e6
		shardCells := "-"
		if len(backup.ExecShardBusyNS) > 0 {
			cells := make([]string, len(backup.ExecShardBusyNS))
			for i, ns := range backup.ExecShardBusyNS {
				cells[i] = fmt.Sprintf("%.1f", float64(ns)/1e6)
			}
			shardCells = strings.Join(cells, " ")
		}
		tab.AddRow(r.name, ktps(res.Throughput), ms(res.P50Lat),
			fmt.Sprintf("%d", backup.StoreFsyncs), fmt.Sprintf("%.1f", stallMS), shardCells)

		key := strings.ReplaceAll(r.name, "-", "_")
		metrics["diskpipe_tput_"+key] = res.Throughput
		metrics["diskpipe_fsyncs_"+key] = float64(backup.StoreFsyncs)
		metrics["diskpipe_fsync_stall_ms_"+key] = stallMS
		switch r.backend {
		case "mem":
			memTput = res.Throughput
		case "disk":
			diskTput = res.Throughput
		case "sharded":
			shardedTput = res.Throughput
		}
	}
	if diskTput > 0 {
		metrics["diskpipe_sharded_vs_disk_x"] = shardedTput / diskTput
	}
	if gap := memTput - diskTput; gap > 0 {
		// How much of the off-memory penalty the sharded group-commit
		// store wins back (can exceed 100 on a machine where group commit
		// plus pipelining beats even the memory row's variance).
		metrics["diskpipe_gap_closed_pct"] = (shardedTput - diskTput) / gap * 100
	}
	return Outcome{Tables: []Table{tab}, Metrics: metrics}, nil
}

// runDiskLoad runs one PBFT cluster with the given store backend under
// the execshards Zipfian write load and returns the client-side result
// plus a backup replica's stats (execution and storage run at every
// replica; the backup isolates them from the primary's batching work).
func runDiskLoad(backend string, sync time.Duration, depth, execShards, clients int, window time.Duration) (cluster.Result, replica.Stats, error) {
	wl := workload.Default()
	wl.Records = 8192
	// The execshards regime: multi-op transactions with fat values make
	// the store the stage under test.
	wl.OpsPerTxn = 8
	wl.ValueSize = 256
	c, err := cluster.New(cluster.Options{
		N:                    4,
		Clients:              clients,
		Burst:                4,
		BatchSize:            20,
		ExecuteThreads:       execShards,
		ExecPipelineDepth:    depth,
		StoreBackend:         backend,
		StoreShards:          DiskTuning.Shards,
		StoreSync:            sync,
		StoreCompactRatio:    DiskTuning.CompactRatio,
		StoreCompactMinBytes: DiskTuning.CompactMinBytes,
		Workload:             wl,
		CheckpointInterval:   25,
		Seed:                 13,
	})
	if err != nil {
		return cluster.Result{}, replica.Stats{}, err
	}
	c.Start()
	defer c.Stop()
	res := c.Run(context.Background(), window)
	return res, c.Replica(1).Stats(), nil
}

package bench

import (
	"fmt"

	"resilientdb/internal/sim"
)

// base returns the paper's standard configuration (Section 5.1): 16
// replicas, 8 cores, batch 100, 2 batch-threads, 1 execute-thread,
// CMAC+ED25519, in-memory storage, checkpoints every 100 batches.
func base(scale Scale) sim.Config {
	w, m := scale.windows()
	return sim.Config{
		Protocol: sim.PBFT,
		Replicas: 16,
		Clients:  scale.clients(80_000),
		Warmup:   w,
		Measure:  m,
	}
}

func run(cfg sim.Config) (sim.Result, error) { return sim.Run(cfg) }

// fig1 reproduces the headline Figure 1: ResilientDB running three-phase
// PBFT on the full pipeline versus single-phase Zyzzyva on a
// protocol-centric (monolithic, 0B 0E) design, 80K clients.
func fig1(scale Scale) (Outcome, error) {
	out := Outcome{Metrics: map[string]float64{}}
	t := Table{
		Title:   "Figure 1: throughput vs replicas (80K clients)",
		Columns: []string{"replicas", "ResilientDB-PBFT", "Zyzzyva(protocol-centric)", "PBFT advantage"},
	}
	for _, n := range []int{4, 8, 16, 32} {
		pCfg := base(scale)
		pCfg.Replicas = n
		pRes, err := run(pCfg)
		if err != nil {
			return out, err
		}
		zCfg := base(scale)
		zCfg.Replicas = n
		zCfg.Protocol = sim.Zyzzyva
		zCfg.BatchThreads = -1
		zCfg.ExecuteThreads = -1
		zRes, err := run(zCfg)
		if err != nil {
			return out, err
		}
		adv := (pRes.ThroughputTxns/zRes.ThroughputTxns - 1) * 100
		t.AddRow(fmt.Sprintf("%d", n), ktps(pRes.ThroughputTxns), ktps(zRes.ThroughputTxns),
			fmt.Sprintf("+%.0f%%", adv))
		out.Metrics[fmt.Sprintf("pbft_n%d_tps", n)] = pRes.ThroughputTxns
		out.Metrics[fmt.Sprintf("zyz_pc_n%d_tps", n)] = zRes.ThroughputTxns
		if n == 16 {
			out.Metrics["advantage_pct_n16"] = adv
		}
	}
	out.Tables = append(out.Tables, t)
	return out, nil
}

// fig7 reproduces Figure 7: the no-consensus ceiling, No-Execution vs
// Execution, as the client population grows.
func fig7(scale Scale) (Outcome, error) {
	out := Outcome{Metrics: map[string]float64{}}
	tput := Table{Title: "Figure 7a: upper-bound throughput", Columns: []string{"clients", "No-Execution", "Execution"}}
	lat := Table{Title: "Figure 7b: upper-bound latency", Columns: []string{"clients", "No-Execution", "Execution"}}
	for _, clients := range []int{4000, 16_000, 32_000, 64_000, 80_000} {
		c := scale.clients(clients)
		noCfg := base(scale)
		noCfg.Replicas = 1
		noCfg.Clients = c
		noCfg.Scheme = sim.SchemeNone
		noCfg.UpperBound = sim.UpperBoundNoExec
		noRes, err := run(noCfg)
		if err != nil {
			return out, err
		}
		exCfg := noCfg
		exCfg.UpperBound = sim.UpperBoundExec
		exRes, err := run(exCfg)
		if err != nil {
			return out, err
		}
		tput.AddRow(fmt.Sprintf("%d", c), ktps(noRes.ThroughputTxns), ktps(exRes.ThroughputTxns))
		lat.AddRow(fmt.Sprintf("%d", c), ms(noRes.MeanLatency), ms(exRes.MeanLatency))
		out.Metrics[fmt.Sprintf("noexec_c%d_tps", c)] = noRes.ThroughputTxns
		out.Metrics[fmt.Sprintf("exec_c%d_tps", c)] = exRes.ThroughputTxns
	}
	out.Tables = append(out.Tables, tput, lat)
	return out, nil
}

// threadConfigs are the Section 5.2 pipeline configurations.
var threadConfigs = []struct {
	name string
	b, e int
}{
	{"0B0E", -1, -1},
	{"0B1E", -1, 1},
	{"1B1E", 1, 1},
	{"2B1E", 2, 1},
}

// fig8 reproduces Figure 8: throughput and latency vs replicas for every
// thread configuration, PBFT and Zyzzyva.
func fig8(scale Scale) (Outcome, error) {
	out := Outcome{Metrics: map[string]float64{}}
	tput := Table{Title: "Figure 8a: throughput (txn/s)", Columns: []string{"config", "n=4", "n=8", "n=16", "n=32"}}
	lat := Table{Title: "Figure 8b: latency", Columns: []string{"config", "n=4", "n=8", "n=16", "n=32"}}
	replicaCounts := []int{4, 8, 16, 32}
	for _, proto := range []sim.Protocol{sim.PBFT, sim.Zyzzyva} {
		for _, tc := range threadConfigs {
			tputRow := []string{fmt.Sprintf("%s %s", proto, tc.name)}
			latRow := []string{fmt.Sprintf("%s %s", proto, tc.name)}
			for _, n := range replicaCounts {
				cfg := base(scale)
				cfg.Protocol = proto
				cfg.Replicas = n
				cfg.BatchThreads = tc.b
				cfg.ExecuteThreads = tc.e
				res, err := run(cfg)
				if err != nil {
					return out, err
				}
				tputRow = append(tputRow, ktps(res.ThroughputTxns))
				latRow = append(latRow, ms(res.MeanLatency))
				out.Metrics[fmt.Sprintf("%s_%s_n%d_tps", proto, tc.name, n)] = res.ThroughputTxns
			}
			tput.Rows = append(tput.Rows, tputRow)
			lat.Rows = append(lat.Rows, latRow)
		}
	}
	out.Tables = append(out.Tables, tput, lat)
	if p, z := out.Metrics["pbft_2B1E_n16_tps"], out.Metrics["pbft_0B0E_n16_tps"]; z > 0 {
		out.Metrics["pbft_pipeline_gain_x"] = p / z
	}
	if p, z := out.Metrics["zyzzyva_2B1E_n16_tps"], out.Metrics["zyzzyva_0B0E_n16_tps"]; z > 0 {
		out.Metrics["zyz_pipeline_gain_x"] = p / z
	}
	return out, nil
}

// fig9 reproduces Figure 9: per-thread saturation at the primary and one
// backup for each configuration at 16 replicas.
func fig9(scale Scale) (Outcome, error) {
	out := Outcome{Metrics: map[string]float64{}}
	prim := Table{
		Title:   "Figure 9a: saturation at the primary (%)",
		Columns: []string{"config", "cumulative", "worker", "execute", "batch-1", "batch-2"},
	}
	back := Table{
		Title:   "Figure 9b: saturation at a backup (%)",
		Columns: []string{"config", "cumulative", "worker", "execute"},
	}
	for _, proto := range []sim.Protocol{sim.PBFT, sim.Zyzzyva} {
		for _, tc := range threadConfigs {
			cfg := base(scale)
			cfg.Protocol = proto
			cfg.BatchThreads = tc.b
			cfg.ExecuteThreads = tc.e
			res, err := run(cfg)
			if err != nil {
				return out, err
			}
			name := fmt.Sprintf("%s %s", proto, tc.name)
			ps := res.PrimarySaturation
			bs := res.BackupSaturation
			prim.AddRow(name,
				fmt.Sprintf("%.0f", res.CumulativePrimary()),
				pct(ps["worker"]), pct(ps["execute"]), pct(ps["batch-1"]), pct(ps["batch-2"]))
			back.AddRow(name,
				fmt.Sprintf("%.0f", res.CumulativeBackup()),
				pct(bs["worker"]), pct(bs["execute"]))
			out.Metrics[fmt.Sprintf("%s_%s_primary_worker_sat", proto, tc.name)] = ps["worker"]
			out.Metrics[fmt.Sprintf("%s_%s_primary_batch1_sat", proto, tc.name)] = ps["batch-1"]
			out.Metrics[fmt.Sprintf("%s_%s_backup_worker_sat", proto, tc.name)] = bs["worker"]
		}
	}
	out.Tables = append(out.Tables, prim, back)
	return out, nil
}

// fig10 reproduces Figure 10: throughput and latency vs batch size at 16
// replicas.
func fig10(scale Scale) (Outcome, error) {
	out := Outcome{Metrics: map[string]float64{}}
	t := Table{Title: "Figure 10: batching (16 replicas)", Columns: []string{"batch size", "throughput", "latency"}}
	var first, peak float64
	for _, bs := range []int{1, 10, 100, 500, 1000, 3000, 5000} {
		cfg := base(scale)
		cfg.BatchSize = bs
		if bs > cfg.Clients/2 {
			// A closed-loop population of k clients can never fill a batch
			// of more than k transactions; skip sizes the (scaled-down)
			// population cannot sustain.
			t.AddRow(fmt.Sprintf("%d", bs), "n/a (exceeds client population)", "-")
			continue
		}
		res, err := run(cfg)
		if err != nil {
			return out, err
		}
		t.AddRow(fmt.Sprintf("%d", bs), ktps(res.ThroughputTxns), ms(res.MeanLatency))
		out.Metrics[fmt.Sprintf("batch%d_tps", bs)] = res.ThroughputTxns
		if bs == 1 {
			first = res.ThroughputTxns
		}
		if res.ThroughputTxns > peak {
			peak = res.ThroughputTxns
		}
	}
	if first > 0 {
		out.Metrics["batching_gain_x"] = peak / first
	}
	out.Tables = append(out.Tables, t)
	return out, nil
}

// fig11 reproduces Figure 11: multi-operation transactions across
// batch-thread counts.
func fig11(scale Scale) (Outcome, error) {
	out := Outcome{Metrics: map[string]float64{}}
	tput := Table{Title: "Figure 11a: throughput (txn/s) vs ops/txn", Columns: []string{"ops/txn", "2B", "3B", "4B", "5B"}}
	lat := Table{Title: "Figure 11b: latency vs ops/txn", Columns: []string{"ops/txn", "2B", "3B", "4B", "5B"}}
	ops := Table{Title: "Figure 11 (alt): operations/s vs ops/txn (2B)", Columns: []string{"ops/txn", "ops/s"}}
	for _, nops := range []int{1, 10, 30, 50} {
		tputRow := []string{fmt.Sprintf("%d", nops)}
		latRow := []string{fmt.Sprintf("%d", nops)}
		for _, b := range []int{2, 3, 4, 5} {
			cfg := base(scale)
			cfg.OpsPerTxn = nops
			cfg.BatchThreads = b
			res, err := run(cfg)
			if err != nil {
				return out, err
			}
			tputRow = append(tputRow, ktps(res.ThroughputTxns))
			latRow = append(latRow, ms(res.MeanLatency))
			out.Metrics[fmt.Sprintf("ops%d_%dB_tps", nops, b)] = res.ThroughputTxns
			if b == 2 {
				ops.AddRow(fmt.Sprintf("%d", nops), ktps(res.ThroughputOps))
				out.Metrics[fmt.Sprintf("ops%d_2B_opss", nops)] = res.ThroughputOps
			}
		}
		tput.Rows = append(tput.Rows, tputRow)
		lat.Rows = append(lat.Rows, latRow)
	}
	out.Tables = append(out.Tables, tput, lat, ops)
	return out, nil
}

// fig12 reproduces Figure 12: growing the pre-prepare message towards
// 64KB until the network binds.
func fig12(scale Scale) (Outcome, error) {
	out := Outcome{Metrics: map[string]float64{}}
	t := Table{Title: "Figure 12: message size (16 replicas)", Columns: []string{"pre-prepare", "throughput", "latency"}}
	for _, payload := range []int{80, 160, 320, 640} {
		cfg := base(scale)
		cfg.PayloadSize = payload
		res, err := run(cfg)
		if err != nil {
			return out, err
		}
		label := fmt.Sprintf("~%dKB", (payload+160)*100/1024)
		t.AddRow(label, ktps(res.ThroughputTxns), ms(res.MeanLatency))
		out.Metrics[fmt.Sprintf("payload%d_tps", payload)] = res.ThroughputTxns
		out.Metrics[fmt.Sprintf("payload%d_lat_ms", payload)] = res.MeanLatency.Seconds() * 1000
	}
	out.Tables = append(out.Tables, t)
	if a, b := out.Metrics["payload80_tps"], out.Metrics["payload640_tps"]; a > 0 {
		out.Metrics["size_tput_drop_pct"] = (1 - b/a) * 100
	}
	out.Tables[0].Title = "Figure 12: message size (16 replicas)"
	return out, nil
}

// fig13 reproduces Figure 13: the four signature configurations.
func fig13(scale Scale) (Outcome, error) {
	out := Outcome{Metrics: map[string]float64{}}
	t := Table{Title: "Figure 13: signature schemes (16 replicas)", Columns: []string{"scheme", "throughput", "latency"}}
	for _, s := range []sim.Scheme{sim.SchemeNone, sim.SchemeED25519, sim.SchemeRSA, sim.SchemeCMAC} {
		cfg := base(scale)
		cfg.Scheme = s
		res, err := run(cfg)
		if err != nil {
			return out, err
		}
		t.AddRow(s.String(), ktps(res.ThroughputTxns), ms(res.MeanLatency))
		out.Metrics[s.String()+"_tps"] = res.ThroughputTxns
		out.Metrics[s.String()+"_lat_ms"] = res.MeanLatency.Seconds() * 1000
	}
	out.Tables = append(out.Tables, t)
	if n, c := out.Metrics["nosig_tps"], out.Metrics["cmac+ed25519_tps"]; n > 0 {
		out.Metrics["crypto_cost_pct"] = (1 - c/n) * 100
	}
	if r, c := out.Metrics["rsa_lat_ms"], out.Metrics["cmac+ed25519_lat_ms"]; c > 0 {
		out.Metrics["rsa_latency_x"] = r / c
	}
	if r, c := out.Metrics["rsa_tps"], out.Metrics["cmac+ed25519_tps"]; r > 0 {
		out.Metrics["scheme_gain_x"] = c / r
	}
	return out, nil
}

// fig14 reproduces Figure 14: in-memory vs off-memory storage.
func fig14(scale Scale) (Outcome, error) {
	out := Outcome{Metrics: map[string]float64{}}
	t := Table{Title: "Figure 14: storage (16 replicas)", Columns: []string{"storage", "throughput", "latency"}}
	for _, st := range []sim.Storage{sim.StorageMem, sim.StorageDisk} {
		cfg := base(scale)
		cfg.Storage = st
		res, err := run(cfg)
		if err != nil {
			return out, err
		}
		name := "in-memory"
		key := "mem"
		if st == sim.StorageDisk {
			name = "off-memory"
			key = "disk"
		}
		t.AddRow(name, ktps(res.ThroughputTxns), ms(res.MeanLatency))
		out.Metrics[key+"_tps"] = res.ThroughputTxns
		out.Metrics[key+"_lat_ms"] = res.MeanLatency.Seconds() * 1000
	}
	out.Tables = append(out.Tables, t)
	if m, d := out.Metrics["mem_tps"], out.Metrics["disk_tps"]; m > 0 {
		out.Metrics["storage_drop_pct"] = (1 - d/m) * 100
	}
	if m, d := out.Metrics["mem_lat_ms"], out.Metrics["disk_lat_ms"]; m > 0 {
		out.Metrics["storage_latency_x"] = d / m
	}
	return out, nil
}

// fig15 reproduces Figure 15: the client sweep.
func fig15(scale Scale) (Outcome, error) {
	out := Outcome{Metrics: map[string]float64{}}
	t := Table{Title: "Figure 15: clients (16 replicas)", Columns: []string{"clients", "throughput", "latency"}}
	for _, c := range []int{4000, 8000, 16_000, 32_000, 64_000, 80_000} {
		cfg := base(scale)
		cfg.Clients = scale.clients(c)
		res, err := run(cfg)
		if err != nil {
			return out, err
		}
		t.AddRow(fmt.Sprintf("%d", cfg.Clients), ktps(res.ThroughputTxns), ms(res.MeanLatency))
		out.Metrics[fmt.Sprintf("clients%d_tps", c)] = res.ThroughputTxns
		out.Metrics[fmt.Sprintf("clients%d_lat_ms", c)] = res.MeanLatency.Seconds() * 1000
	}
	out.Tables = append(out.Tables, t)
	if a, b := out.Metrics["clients16000_lat_ms"], out.Metrics["clients80000_lat_ms"]; a > 0 {
		out.Metrics["latency_growth_x"] = b / a
	}
	return out, nil
}

// fig16 reproduces Figure 16: cores per replica.
func fig16(scale Scale) (Outcome, error) {
	out := Outcome{Metrics: map[string]float64{}}
	t := Table{Title: "Figure 16: hardware cores (16 replicas)", Columns: []string{"cores", "throughput", "latency"}}
	for _, cores := range []int{1, 2, 4, 8} {
		cfg := base(scale)
		cfg.Cores = cores
		res, err := run(cfg)
		if err != nil {
			return out, err
		}
		t.AddRow(fmt.Sprintf("%d", cores), ktps(res.ThroughputTxns), ms(res.MeanLatency))
		out.Metrics[fmt.Sprintf("cores%d_tps", cores)] = res.ThroughputTxns
	}
	out.Tables = append(out.Tables, t)
	if c1, c8 := out.Metrics["cores1_tps"], out.Metrics["cores8_tps"]; c1 > 0 {
		out.Metrics["core_scaling_x"] = c8 / c1
	}
	return out, nil
}

// fig17 reproduces Figure 17: crashed backups. Zyzzyva clients wait a
// conservative timeout before the commit-certificate phase (the paper
// "approximates by requiring clients to wait for only a little time"; the
// collapse factor scales directly with that wait).
func fig17(scale Scale) (Outcome, error) {
	out := Outcome{Metrics: map[string]float64{}}
	t := Table{Title: "Figure 17: replica failures (16 replicas)", Columns: []string{"failures", "PBFT", "Zyzzyva"}}
	for _, fail := range []int{0, 1, 5} {
		pCfg := base(scale)
		pCfg.Clients = scale.clients(16_000)
		pCfg.FailedBackups = fail
		pRes, err := run(pCfg)
		if err != nil {
			return out, err
		}
		zCfg := pCfg
		zCfg.Protocol = sim.Zyzzyva
		if fail > 0 {
			zCfg.ClientTimeout = 1 * sim.Second
			zCfg.Warmup = 1200 * sim.Millisecond
			zCfg.Measure = 1000 * sim.Millisecond
			if scale == ScaleSmall {
				zCfg.ClientTimeout = 300 * sim.Millisecond
				zCfg.Warmup = 400 * sim.Millisecond
				zCfg.Measure = 300 * sim.Millisecond
			}
		}
		zRes, err := run(zCfg)
		if err != nil {
			return out, err
		}
		t.AddRow(fmt.Sprintf("%d", fail), ktps(pRes.ThroughputTxns), ktps(zRes.ThroughputTxns))
		out.Metrics[fmt.Sprintf("pbft_f%d_tps", fail)] = pRes.ThroughputTxns
		out.Metrics[fmt.Sprintf("zyz_f%d_tps", fail)] = zRes.ThroughputTxns
	}
	out.Tables = append(out.Tables, t)
	if ok, bad := out.Metrics["zyz_f0_tps"], out.Metrics["zyz_f1_tps"]; bad > 0 {
		out.Metrics["zyz_collapse_x"] = ok / bad
	}
	if ok, bad := out.Metrics["pbft_f0_tps"], out.Metrics["pbft_f5_tps"]; bad > 0 {
		out.Metrics["pbft_f5_ratio"] = ok / bad
	}
	return out, nil
}

// ablationOOO measures Section 4.5's out-of-order processing claim.
func ablationOOO(scale Scale) (Outcome, error) {
	out := Outcome{Metrics: map[string]float64{}}
	t := Table{Title: "Ablation: out-of-order consensus (16 replicas)", Columns: []string{"mode", "throughput", "latency"}}
	ooo, err := run(base(scale))
	if err != nil {
		return out, err
	}
	seqCfg := base(scale)
	seqCfg.DisableOutOfOrder = true
	seq, err := run(seqCfg)
	if err != nil {
		return out, err
	}
	t.AddRow("out-of-order", ktps(ooo.ThroughputTxns), ms(ooo.MeanLatency))
	t.AddRow("sequential", ktps(seq.ThroughputTxns), ms(seq.MeanLatency))
	out.Metrics["ooo_tps"] = ooo.ThroughputTxns
	out.Metrics["seq_tps"] = seq.ThroughputTxns
	if seq.ThroughputTxns > 0 {
		out.Metrics["ooo_gain_pct"] = (ooo.ThroughputTxns/seq.ThroughputTxns - 1) * 100
	}
	out.Tables = append(out.Tables, t)
	return out, nil
}

// ablationExec measures the Section 3 decoupled-execution claim: with no
// batch-threads in the way (0B), giving execution its own thread (0B0E →
// 0B1E) unburdens the worker — the intro's "+9.5%" bullet.
func ablationExec(scale Scale) (Outcome, error) {
	out := Outcome{Metrics: map[string]float64{}}
	t := Table{Title: "Ablation: decoupled execution (16 replicas, 0B)", Columns: []string{"mode", "throughput", "latency"}}
	oneCfg := base(scale)
	oneCfg.BatchThreads = -1
	oneCfg.ExecuteThreads = 1
	one, err := run(oneCfg)
	if err != nil {
		return out, err
	}
	zeroCfg := base(scale)
	zeroCfg.BatchThreads = -1
	zeroCfg.ExecuteThreads = -1
	zero, err := run(zeroCfg)
	if err != nil {
		return out, err
	}
	t.AddRow("1E (decoupled)", ktps(one.ThroughputTxns), ms(one.MeanLatency))
	t.AddRow("0E (worker executes)", ktps(zero.ThroughputTxns), ms(zero.MeanLatency))
	out.Metrics["exec1_tps"] = one.ThroughputTxns
	out.Metrics["exec0_tps"] = zero.ThroughputTxns
	if zero.ThroughputTxns > 0 {
		out.Metrics["decouple_gain_pct"] = (one.ThroughputTxns/zero.ThroughputTxns - 1) * 100
	}
	out.Tables = append(out.Tables, t)
	return out, nil
}

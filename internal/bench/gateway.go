package bench

import (
	"context"
	"fmt"
	"net"
	"time"

	"resilientdb/internal/cluster"
	"resilientdb/internal/gateway"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
	"resilientdb/internal/workload"
)

// gatewaybench measures the gateway tier: a session population three
// orders of magnitude larger than the replica-facing connection count,
// multiplexed over a handful of real localhost TCP connections into the
// gateway, which coalesces the sessions' transactions into shared signed
// consensus requests.
//
// Three rows on the same 4-replica pipeline:
//
//   - direct: the paper's client model — every client is its own identity,
//     signature, and replica-facing connection (the A/B baseline).
//   - gateway: tens (paper scale: hundreds) of thousands of simulated
//     closed-loop sessions over 4 session conns and a few upstream
//     workers. The "replica conns" column is the entire replica-facing
//     footprint; "seq used" is the backup's ledger growth, showing the
//     sessions' transactions really ordered through consensus.
//   - overload: the gateway squeezed to a tiny admission queue under the
//     same session flood. Overload must surface as explicit busy pushback
//     at the edge ("busy" column) while the replicas' silent NetDrops
//     counter stays flat ("netdrops Δ" column — the backpressure
//     contract).
//
// Latency percentiles are end-to-end per session submit (edge queueing
// included), so the gateway rows trade latency for connection scale;
// throughput and the busy/netdrops columns are the headline quantities.
func gatewaybench(s Scale) (Outcome, error) {
	warmup := 400 * time.Millisecond
	window := 800 * time.Millisecond
	sessions := 10_000
	directClients := 32
	if s == ScalePaper {
		warmup = 1 * time.Second
		window = 2 * time.Second
		sessions = 200_000
		directClients = 160
	}

	tab := Table{
		Title: "Gateway tier: multiplexed sessions vs direct clients (PBFT, real pipeline)",
		Columns: []string{"row", "sessions", "conns", "replica conns", "tput",
			"p50", "p95", "p99", "busy", "netdrops Δ", "seq used"},
	}
	metrics := map[string]float64{}

	// Row 1: direct baseline — one identity and connection per client.
	direct, directSeq, err := runGatewayDirect(directClients, warmup, window)
	if err != nil {
		return Outcome{}, err
	}
	tab.AddRow("direct", fmt.Sprintf("%d", directClients), fmt.Sprintf("%d", directClients),
		fmt.Sprintf("%d", directClients), ktps(direct.Throughput),
		ms(direct.P50Lat), ms(direct.P99Lat), ms(direct.P99Lat), "0", "0",
		fmt.Sprintf("%d", directSeq))
	metrics["gateway_direct_tput"] = direct.Throughput
	metrics["gateway_direct_conns"] = float64(directClients)

	// Row 2: the gateway tier at full session scale.
	gw, err := runGatewayLoad(gwRun{
		sessions: sessions, conns: 4, upstreams: 8, batch: 256,
		queueCap: 1 << 14, warmup: warmup, window: window,
	})
	if err != nil {
		return Outcome{}, err
	}
	tab.AddRow("gateway", fmt.Sprintf("%d", sessions), "4", "8",
		ktps(gw.tput), ms(gw.p50), ms(gw.p95), ms(gw.p99),
		fmt.Sprintf("%d", gw.busy), fmt.Sprintf("%d", gw.netDrops),
		fmt.Sprintf("%d", gw.seqUsed))
	metrics["gateway_sessions"] = float64(sessions)
	metrics["gateway_replica_conns"] = 8
	metrics["gateway_tput"] = gw.tput
	metrics["gateway_p50_ms"] = gw.p50.Seconds() * 1000
	metrics["gateway_p99_ms"] = gw.p99.Seconds() * 1000
	metrics["gateway_netdrops_delta"] = float64(gw.netDrops)
	metrics["gateway_seq_used"] = float64(gw.seqUsed)
	metrics["gateway_tput_vs_direct_x"] = gw.tput / direct.Throughput
	metrics["gateway_sessions_per_replica_conn"] = float64(sessions) / 8

	// Row 3: overload — one slow upstream behind a tiny admission queue.
	ov, err := runGatewayLoad(gwRun{
		sessions: sessions / 5, conns: 4, upstreams: 1, batch: 16,
		queueCap: 16, warmup: warmup / 2, window: window / 2,
	})
	if err != nil {
		return Outcome{}, err
	}
	tab.AddRow("overload", fmt.Sprintf("%d", sessions/5), "4", "1",
		ktps(ov.tput), ms(ov.p50), ms(ov.p95), ms(ov.p99),
		fmt.Sprintf("%d", ov.busy), fmt.Sprintf("%d", ov.netDrops),
		fmt.Sprintf("%d", ov.seqUsed))
	metrics["gateway_overload_busy_rejected"] = float64(ov.busy)
	metrics["gateway_overload_netdrops_delta"] = float64(ov.netDrops)

	return Outcome{Tables: []Table{tab}, Metrics: metrics}, nil
}

// gatewayWorkload is the shared YCSB configuration for all three rows.
func gatewayWorkload() workload.Config {
	wl := workload.Default()
	wl.Records = 4096
	return wl
}

// runGatewayDirect is the baseline: direct closed-loop clients on the
// same cluster configuration the gateway rows use.
func runGatewayDirect(clients int, warmup, window time.Duration) (cluster.Result, uint64, error) {
	c, err := cluster.New(cluster.Options{
		N:                  4,
		Clients:            clients,
		Burst:              4,
		BatchSize:          64,
		Workload:           gatewayWorkload(),
		CheckpointInterval: 25,
		Seed:               13,
		PreloadTable:       true,
	})
	if err != nil {
		return cluster.Result{}, 0, err
	}
	c.Start()
	defer c.Stop()
	ctx := context.Background()
	c.Run(ctx, warmup)
	before := c.Replica(1).Ledger().Height()
	res := c.Run(ctx, window)
	return res, c.Replica(1).Ledger().Height() - before, nil
}

type gwRun struct {
	sessions, conns, upstreams, batch, queueCap int
	warmup, window                              time.Duration
}

type gwResult struct {
	tput          float64
	p50, p95, p99 time.Duration
	busy          uint64 // StatusBusy pushbacks observed by the sessions
	netDrops      uint64 // replicas' silent-drop delta over the measured window
	seqUsed       uint64
}

// runGatewayLoad runs one gateway row: cluster + gateway + TCP listener +
// session load generator, with a warmup window whose counters are
// discarded before the measured window.
func runGatewayLoad(r gwRun) (gwResult, error) {
	c, err := cluster.New(cluster.Options{
		N:                  4,
		Clients:            1, // unused; the gateway is the only load source
		BatchSize:          64,
		Workload:           gatewayWorkload(),
		CheckpointInterval: 25,
		Seed:               13,
		PreloadTable:       true,
	})
	if err != nil {
		return gwResult{}, err
	}
	c.Start()
	defer c.Stop()

	g, err := gateway.New(gateway.Config{
		N:         4,
		Directory: c.Directory(),
		Endpoint: func(id types.ClientID) (transport.Endpoint, error) {
			return c.AttachClient(id, 1<<10), nil
		},
		Upstreams: r.upstreams,
		Batch:     r.batch,
		QueueCap:  r.queueCap,
	})
	if err != nil {
		return gwResult{}, err
	}
	defer g.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return gwResult{}, err
	}
	go g.Serve(ln)
	addr := ln.Addr().String()

	load, err := gateway.NewLoad(gateway.LoadConfig{
		Sessions: r.sessions,
		Conns:    r.conns,
		Dial:     func() (net.Conn, error) { return net.Dial("tcp", addr) },
		Workload: gatewayWorkload(),
		Seed:     13,
	})
	if err != nil {
		return gwResult{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.warmup+r.window)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- load.Run(ctx) }()

	time.Sleep(r.warmup)
	afterWarmup := load.Stats()
	drops := func() uint64 {
		var total uint64
		for i := 0; i < 4; i++ {
			total += c.Replica(i).Stats().NetDrops
		}
		return total
	}
	dropsBefore := drops()
	seqBefore := c.Replica(1).Ledger().Height()
	start := time.Now()
	time.Sleep(r.window)
	elapsed := time.Since(start)
	measured := load.Stats()
	res := gwResult{
		tput:     float64(measured.Completed-afterWarmup.Completed) / elapsed.Seconds(),
		p50:      load.Latency().Percentile(50),
		p95:      load.Latency().Percentile(95),
		p99:      load.Latency().Percentile(99),
		busy:     measured.BusyReplies,
		netDrops: drops() - dropsBefore,
		seqUsed:  c.Replica(1).Ledger().Height() - seqBefore,
	}
	cancel()
	if err := <-done; err != nil {
		return gwResult{}, err
	}
	return res, nil
}

package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"resilientdb/internal/cluster"
	"resilientdb/internal/crypto"
	"resilientdb/internal/replica"
	"resilientdb/internal/workload"
)

// WorkerTuning exposes the worker-lane knob to the resdb-bench command
// line (-worker-threads): the workerscale experiment sweeps W from 1 up
// to this many lanes in powers of two.
var WorkerTuning = struct {
	// MaxThreads is the largest lane count in the sweep.
	MaxThreads int
}{MaxThreads: 4}

// workerscale measures how consensus throughput scales with the number of
// worker lanes stepping the lock-striped PBFT engine. Unlike the figure
// experiments it runs the real replica pipeline (in-process transport),
// because the quantity under test — contention on the engine between
// lanes — only exists in the runnable system.
//
// It is the runtime companion of Figure 9: there, the single
// worker-thread is the saturated stage at the backups; here, the
// per-lane busy times show the worker stage ceasing to be the lone
// saturated stage once W ≥ 2 splits consensus stepping across lanes.
func workerscale(s Scale) (Outcome, error) {
	window := 600 * time.Millisecond
	clients := 96
	if s == ScalePaper {
		window = 2 * time.Second
		clients = 256
	}
	sweep := []int{1}
	for w := 2; w <= WorkerTuning.MaxThreads; w *= 2 {
		sweep = append(sweep, w)
	}

	tab := Table{
		Title: "Worker-lane scaling (PBFT, real pipeline, in-process transport)",
		Columns: []string{"W", "tput", "p50", "backup lane busy ms",
			"busiest worker lane", "busiest other stage"},
	}
	metrics := map[string]float64{}
	var baseTput float64
	var lastTput float64

	for _, w := range sweep {
		res, backup, err := runWorkerLoad(w, clients, window)
		if err != nil {
			return Outcome{}, err
		}
		winNS := float64(res.Duration.Nanoseconds())

		// Per-lane busy time at a backup, where the worker stage carries
		// the prepare/commit/pre-prepare load (Figure 9's saturated
		// stage).
		lanes := make([]string, len(backup.WorkerLaneBusyNS))
		maxLane := 0.0
		for i, ns := range backup.WorkerLaneBusyNS {
			lanes[i] = fmt.Sprintf("%.1f", float64(ns)/1e6)
			if share := float64(ns) / winNS; share > maxLane {
				maxLane = share
			}
		}
		otherName, otherShare := busiestOtherStage(backup, winNS)

		tab.AddRow(fmt.Sprintf("%d", w), ktps(res.Throughput), ms(res.P50Lat),
			strings.Join(lanes, " "),
			pct(maxLane), fmt.Sprintf("%s %s", otherName, pct(otherShare)))

		metrics[fmt.Sprintf("workerscale_tput_w%d", w)] = res.Throughput
		metrics[fmt.Sprintf("workerscale_worker_share_w%d", w)] = maxLane
		metrics[fmt.Sprintf("workerscale_other_share_w%d", w)] = otherShare
		if w == 1 {
			baseTput = res.Throughput
		}
		lastTput = res.Throughput
	}
	if baseTput > 0 {
		metrics["workerscale_gain_x"] = lastTput / baseTput
	}
	return Outcome{Tables: []Table{tab}, Metrics: metrics}, nil
}

// busiestOtherStage returns the non-worker stage with the highest
// per-thread busy share at the given replica.
func busiestOtherStage(st replica.Stats, winNS float64) (string, float64) {
	// Per-thread divisors for multi-threaded stages under the default
	// cluster configuration: 3 input threads (1 client inbox + 2 replica
	// inboxes), 2 batch-threads, 2 output-threads.
	stages := []struct {
		s       replica.Stage
		threads float64
	}{
		{replica.StageInput, 3},
		{replica.StageBatch, 2},
		{replica.StageExecute, 1},
		{replica.StageCheckpoint, 1},
		{replica.StageOutput, 2},
	}
	name, best := "none", 0.0
	for _, sc := range stages {
		share := float64(st.BusyNS[sc.s]) / sc.threads / winNS
		if share > best {
			name, best = sc.s.String(), share
		}
	}
	return name, best
}

// runWorkerLoad runs one PBFT cluster with W worker lanes and returns the
// client-side result plus a backup replica's stats for busy-time
// accounting.
func runWorkerLoad(w, clients int, window time.Duration) (cluster.Result, replica.Stats, error) {
	wl := workload.Default()
	wl.Records = 4096
	wl.ValueSize = 32
	c, err := cluster.New(cluster.Options{
		N:             4,
		Clients:       clients,
		Burst:         4,
		BatchSize:     20,
		WorkerThreads: w,
		// Inline verification (the paper's baseline assignment,
		// Section 4.3) with digital signatures puts real per-message
		// crypto on the worker lanes — the configuration where the
		// single worker-thread is the saturated stage (Figure 9 × the
		// Figure 13 signature cost) and lane scaling pays off.
		VerifyThreads:      -1,
		Crypto:             crypto.AllED25519(),
		Workload:           wl,
		CheckpointInterval: 25,
		Seed:               11,
	})
	if err != nil {
		return cluster.Result{}, replica.Stats{}, err
	}
	c.Start()
	defer c.Stop()
	res := c.Run(context.Background(), window)
	// Replica 1 is a backup: its worker lanes carry the full
	// pre-prepare/prepare/commit load (the paper's Figure 9 hotspot).
	return res, c.Replica(1).Stats(), nil
}

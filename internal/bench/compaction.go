package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"resilientdb/internal/store"
	"resilientdb/internal/workload"
)

// compaction measures the storage follow-up to diskpipe: append-only
// shard logs grow with *history*, not live data, and reopening replays
// that whole history — the unbounded-garbage problem the paper's
// checkpoint protocol exists to solve (Section 4.7 licenses discarding
// old state once a checkpoint is stable; Section 5.7's off-memory store
// is only viable if its costs stay bounded).
//
// The experiment drives a sharded group-commit store through an
// overwrite-heavy Zipfian write history (the execute stage's partitioned
// PutMany path), then reports three rows:
//
//   - pre-compaction: log bytes ≈ full history, reopen replays all of it
//     (every record CRC-verified);
//   - post-compaction: after Compact() rewrites each shard's live
//     records (temp + fsync + rename, crash-safe), log bytes ≈ live
//     data and reopen replays only that;
//   - the live-data floor the compacted logs are compared against.
//
// The bytes ratio is the headline: post-compaction log size must track
// live data, not history, and the reopen time must shrink with it.
func compaction(s Scale) (Outcome, error) {
	const (
		records   = 2048
		valueSize = 256
		opsPerTxn = 8
		shards    = 4
	)
	batches := 400 // ~51K writes over 2K keys: ~25x overwrite factor
	if s == ScalePaper {
		batches = 2000
	}
	const perBatch = 16 // txns per batch

	dir, err := os.MkdirTemp("", "resdb-compaction-")
	if err != nil {
		return Outcome{}, err
	}
	defer os.RemoveAll(dir)

	wl, err := workload.New(workload.Config{
		Records:      records,
		OpsPerTxn:    opsPerTxn,
		ValueSize:    valueSize,
		Distribution: workload.Zipf,
		Seed:         31,
	}, 3)
	if err != nil {
		return Outcome{}, err
	}

	opts := store.ShardedDiskOptions{
		Shards: shards,
		// The forced Compact below bypasses these thresholds by design
		// (the experiment measures the rewrite itself); they are carried
		// so the store is configured exactly as a -store-compact-* tuned
		// deployment would be.
		CompactRatio:    DiskTuning.CompactRatio,
		CompactMinBytes: DiskTuning.CompactMinBytes,
	}
	st, err := store.OpenShardedDisk(dir, opts)
	if err != nil {
		return Outcome{}, err
	}

	// Write the history exactly as the execute stage does: each batch's
	// write-set partitioned by the canonical shard hash, one PutMany per
	// partition.
	writes := 0
	for b := 0; b < batches; b++ {
		parts := make([][]store.KV, shards)
		req := wl.NextRequest(1, uint64(b*perBatch+1), perBatch)
		for i := range req.Txns {
			for _, op := range req.Txns[i].Ops {
				sh := workload.ShardOf(op.Key, shards)
				parts[sh] = append(parts[sh], store.KV{Key: op.Key, Value: op.Value})
			}
		}
		for _, p := range parts {
			if len(p) == 0 {
				continue
			}
			if err := st.PutMany(p); err != nil {
				st.Close()
				return Outcome{}, err
			}
			writes += len(p)
		}
	}
	live := st.Len()
	if err := st.Close(); err != nil {
		return Outcome{}, err
	}

	preBytes, err := logBytes(dir)
	if err != nil {
		return Outcome{}, err
	}
	st, preReopen, err := timedReopen(dir, opts)
	if err != nil {
		return Outcome{}, err
	}

	// The trigger under test: rewrite every shard's live records.
	if err := st.Compact(); err != nil {
		st.Close()
		return Outcome{}, err
	}
	cs := st.CompactStats()
	if err := st.Close(); err != nil {
		return Outcome{}, err
	}

	postBytes, err := logBytes(dir)
	if err != nil {
		return Outcome{}, err
	}
	st, postReopen, err := timedReopen(dir, opts)
	if err != nil {
		return Outcome{}, err
	}
	postLive := st.Len()
	st.Close()

	// The floor compacted logs are measured against: live records at the
	// v2 record overhead (16-byte header + value), plus one 8-byte file
	// header per shard.
	liveBytes := int64(live)*(16+valueSize) + int64(shards)*8

	tab := Table{
		Title:   fmt.Sprintf("Checkpoint-driven log compaction (sharded store, %d shards, %d writes over %d keys)", shards, writes, records),
		Columns: []string{"state", "log bytes", "reopen", "records"},
	}
	tab.AddRow("pre-compaction", fmt.Sprintf("%d", preBytes), ms(preReopen), fmt.Sprintf("%d", live))
	tab.AddRow("post-compaction", fmt.Sprintf("%d", postBytes), ms(postReopen), fmt.Sprintf("%d", postLive))
	tab.AddRow("live-data floor", fmt.Sprintf("%d", liveBytes), "-", fmt.Sprintf("%d", live))

	metrics := map[string]float64{
		"compaction_log_bytes_pre":     float64(preBytes),
		"compaction_log_bytes_post":    float64(postBytes),
		"compaction_live_bytes":        float64(liveBytes),
		"compaction_reopen_ms_pre":     preReopen.Seconds() * 1000,
		"compaction_reopen_ms_post":    postReopen.Seconds() * 1000,
		"compaction_reclaimed_bytes":   float64(cs.ReclaimedBytes),
		"compaction_compactions":       float64(cs.Compactions),
		"compaction_stall_ms":          float64(cs.StallNS) / 1e6,
		"compaction_bytes_vs_live_x":   float64(postBytes) / float64(liveBytes),
		"compaction_history_vs_live_x": float64(preBytes) / float64(liveBytes),
	}
	return Outcome{Tables: []Table{tab}, Metrics: metrics}, nil
}

// logBytes sums the shard log sizes under dir.
func logBytes(dir string) (int64, error) {
	logs, err := filepath.Glob(filepath.Join(dir, "shard-*.log"))
	if err != nil {
		return 0, err
	}
	var total int64
	for _, p := range logs {
		fi, err := os.Stat(p)
		if err != nil {
			return 0, err
		}
		total += fi.Size()
	}
	return total, nil
}

// timedReopen opens the store and reports how long recovery (the full
// log replay, CRC-verified for v2 logs) took.
func timedReopen(dir string, opts store.ShardedDiskOptions) (*store.ShardedDiskStore, time.Duration, error) {
	t0 := time.Now()
	st, err := store.OpenShardedDisk(dir, opts)
	if err != nil {
		return nil, 0, err
	}
	return st, time.Since(t0), nil
}

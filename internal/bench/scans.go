package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"resilientdb/internal/cluster"
	"resilientdb/internal/workload"
)

// scans measures range-scan transactions — the general-transaction path
// that fans one scan to every execute shard after a write-flush barrier
// and merges the per-shard sorted fragments — under YCSB-E shapes on the
// real 4-replica pipeline:
//
//   - workload E (95% scans, 5% writes): the standard scan-heavy mix.
//     Writes keep the flush barrier live, so every scan pays the
//     fan-out/merge cost the coordinator actually incurs.
//   - scan-mix (50% scans, 25% reads, 25% writes): scans, point reads,
//     and writes interleave, exercising the write>scan>read request
//     classification and all three latency splits at once.
//
// Each shape runs once through consensus ("quorum") and once through the
// local read path: a write-free scan request is served by one replica's
// last-retired snapshot, subject to the client's MinSeq staleness bound.
// The seq-used column is the backup's ledger-height growth during the
// measured window — local scans consume sequence numbers only for the
// write minority, while quorum rows burn a slot per batch for scans too.
// The stale column counts scans every replica refused under the
// staleness bound (re-run through quorum); on this single-process
// cluster replicas retire promptly, so it stays at or near zero.
//
// The same few-core percentile caveat as readmix applies: dozens of
// runnable closed-loop clients share the cores, so the max-across-
// clients percentiles pick up run-queue wait. The throughput, local,
// seq-used, and stale columns are the robust quantities.
func scans(s Scale) (Outcome, error) {
	warmup := 300 * time.Millisecond
	window := 600 * time.Millisecond
	clients := 48
	if s == ScalePaper {
		warmup = 1 * time.Second
		window = 2 * time.Second
		clients = 160
	}

	type row struct {
		name string
		wl   func() workload.Config
		mode string
	}
	presetE := func() workload.Config {
		wl := workload.Default()
		wl.Records = 4096
		wl.Preset = "e"
		wl.ScanLength = 16
		return wl
	}
	scanMix := func() workload.Config {
		wl := workload.Default()
		wl.Records = 4096
		wl.ReadFraction = 0.25
		wl.ScanFraction = 0.5
		wl.ScanLength = 16
		return wl
	}
	rows := []row{
		{name: "quorum-e", wl: presetE, mode: "quorum"},
		{name: "local-e", wl: presetE, mode: "local"},
		{name: "quorum-mix", wl: scanMix, mode: "quorum"},
		{name: "local-mix", wl: scanMix, mode: "local"},
	}

	tab := Table{
		Title: "Range scans: consensus-ordered vs locally-served under YCSB-E mixes (PBFT, real pipeline, E=4)",
		Columns: []string{"row", "tput", "scan p50", "scan p95", "scan p99",
			"local", "stale", "seq used"},
	}
	metrics := map[string]float64{}

	for _, r := range rows {
		res, seqUsed, err := runScanMix(r.wl(), r.mode, clients, warmup, window)
		if err != nil {
			return Outcome{}, err
		}
		tab.AddRow(r.name, ktps(res.Throughput),
			ms(res.ScanP50Lat), ms(res.ScanP95Lat), ms(res.ScanP99Lat),
			fmt.Sprintf("%d", res.LocalReads),
			fmt.Sprintf("%d", res.StaleFallbacks),
			fmt.Sprintf("%d", seqUsed))

		key := strings.ReplaceAll(r.name, "-", "_")
		metrics["scans_tput_"+key] = res.Throughput
		metrics["scans_scan_p50_ms_"+key] = float64(res.ScanP50Lat) / 1e6
		metrics["scans_scan_p95_ms_"+key] = float64(res.ScanP95Lat) / 1e6
		metrics["scans_scan_p99_ms_"+key] = float64(res.ScanP99Lat) / 1e6
		metrics["scans_scan_txns_"+key] = float64(res.ScanTxns)
		metrics["scans_local_reads_"+key] = float64(res.LocalReads)
		metrics["scans_stale_fallbacks_"+key] = float64(res.StaleFallbacks)
		metrics["scans_seq_used_"+key] = float64(seqUsed)
	}
	return Outcome{Tables: []Table{tab}, Metrics: metrics}, nil
}

// runScanMix runs one PBFT cluster over the given scan-bearing workload
// and read mode: a warmup window whose counters are discarded, then the
// measured window. It returns the measured result plus the backup's
// ledger-height growth across the measured window (the sequence numbers
// the load actually consumed).
func runScanMix(wl workload.Config, mode string, clients int, warmup, window time.Duration) (cluster.Result, uint64, error) {
	c, err := cluster.New(cluster.Options{
		N:                  4,
		Clients:            clients,
		Burst:              2,
		BatchSize:          20,
		ExecuteThreads:     4,
		ExecPipelineDepth:  2,
		Workload:           wl,
		CheckpointInterval: 25,
		Seed:               13,
		ReadMode:           mode,
		PreloadTable:       true,
	})
	if err != nil {
		return cluster.Result{}, 0, err
	}
	c.Start()
	defer c.Stop()
	ctx := context.Background()
	c.Run(ctx, warmup)
	before := c.Replica(1).Ledger().Height()
	res := c.Run(ctx, window)
	seqUsed := c.Replica(1).Ledger().Height() - before
	return res, seqUsed, nil
}

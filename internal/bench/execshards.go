package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"resilientdb/internal/cluster"
	"resilientdb/internal/replica"
	"resilientdb/internal/workload"
)

// ExecTuning exposes the execution-shard knob to the resdb-bench command
// line (-execute-shards): the execshards experiment sweeps E from 1 up to
// this many shards in powers of two.
var ExecTuning = struct {
	// MaxShards is the largest shard count in the sweep.
	MaxShards int
}{MaxShards: 4}

// execshards measures how the execute stage behaves as committed batches
// are fanned out across E write-set-partitioned shard workers. Like
// workerscale it runs the real replica pipeline (in-process transport):
// the quantity under test — the coordinator/shard split of the execute
// stage — only exists in the runnable system.
//
// After PR 2 parallelized consensus stepping, execution is the last
// serialized pipeline stage ("What Blocks My Blockchain's Throughput?"
// finds execution dominates once ordering scales). The per-shard busy
// table is the evidence that the write-set partition spreads a skewed
// (Zipfian) load across all shards; on a few-core machine the busy-time
// split, not wall-clock throughput, is the quantity that scales.
func execshards(s Scale) (Outcome, error) {
	window := 600 * time.Millisecond
	clients := 64
	if s == ScalePaper {
		window = 2 * time.Second
		clients = 192
	}
	sweep := []int{1}
	for e := 2; e <= ExecTuning.MaxShards; e *= 2 {
		sweep = append(sweep, e)
	}

	tab := Table{
		Title: "Execution-shard scaling (PBFT, real pipeline, write-set partitioning)",
		Columns: []string{"E", "tput", "p50", "exec stage busy ms",
			"shard busy ms", "busiest shard"},
	}
	metrics := map[string]float64{}
	var baseTput, lastTput float64

	for _, e := range sweep {
		res, backup, err := runExecLoad(e, clients, window)
		if err != nil {
			return Outcome{}, err
		}
		winNS := float64(res.Duration.Nanoseconds())

		// The execute stage at a backup: coordinator wall time (BusyNS)
		// plus the per-shard apply split. Serial runs have no shards, so
		// the shard column shows the serial apply folded into the stage.
		execMS := float64(backup.BusyNS[replica.StageExecute]) / 1e6
		shardCells := "-"
		maxShard := 0.0
		minShard := 0.0
		if len(backup.ExecShardBusyNS) > 0 {
			cells := make([]string, len(backup.ExecShardBusyNS))
			minShard = float64(backup.ExecShardBusyNS[0])
			for i, ns := range backup.ExecShardBusyNS {
				cells[i] = fmt.Sprintf("%.1f", float64(ns)/1e6)
				if share := float64(ns) / winNS; share > maxShard {
					maxShard = share
				}
				if float64(ns) < minShard {
					minShard = float64(ns)
				}
			}
			shardCells = strings.Join(cells, " ")
		}

		tab.AddRow(fmt.Sprintf("%d", e), ktps(res.Throughput), ms(res.P50Lat),
			fmt.Sprintf("%.1f", execMS), shardCells, pct(maxShard))

		metrics[fmt.Sprintf("execshards_tput_e%d", e)] = res.Throughput
		metrics[fmt.Sprintf("execshards_exec_busy_ms_e%d", e)] = execMS
		metrics[fmt.Sprintf("execshards_min_shard_busy_ns_e%d", e)] = minShard
		if e == 1 {
			baseTput = res.Throughput
		}
		lastTput = res.Throughput
	}
	if baseTput > 0 {
		metrics["execshards_gain_x"] = lastTput / baseTput
	}
	return Outcome{Tables: []Table{tab}, Metrics: metrics}, nil
}

// runExecLoad runs one PBFT cluster with E execution shards under an
// execution-heavy load and returns the client-side result plus a backup
// replica's stats (execution runs at every replica; the backup isolates
// it from the primary's batching work).
func runExecLoad(e, clients int, window time.Duration) (cluster.Result, replica.Stats, error) {
	wl := workload.Default()
	wl.Records = 8192
	// Multi-op transactions with fat values make execution a real stage:
	// 8 writes × 256 bytes per txn is the Section 5.4 regime where
	// execution cost dominates the batch.
	wl.OpsPerTxn = 8
	wl.ValueSize = 256
	c, err := cluster.New(cluster.Options{
		N:                  4,
		Clients:            clients,
		Burst:              4,
		BatchSize:          20,
		ExecuteThreads:     e,
		Workload:           wl,
		CheckpointInterval: 25,
		Seed:               13,
	})
	if err != nil {
		return cluster.Result{}, replica.Stats{}, err
	}
	c.Start()
	defer c.Stop()
	res := c.Run(context.Background(), window)
	return res, c.Replica(1).Stats(), nil
}

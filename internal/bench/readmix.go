package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"resilientdb/internal/cluster"
	"resilientdb/internal/workload"
)

// readmix compares the two ways a read-only request can travel — ordered
// through consensus like every write (the paper's only path), or served
// by a single replica from its last-executed snapshot without a consensus
// round — under YCSB mixes on the real 4-replica pipeline:
//
//   - workload A (50% reads): reads and writes interleave, so conflict
//     ordering inside the execute shards is live in every row.
//   - workload C (read-only): the pure contrast. In local mode the
//     cluster proposes no batches at all.
//
// Each row runs a warmup window (discarded) then a measured window; the
// "seq used" column is the backup's ledger-height growth during the
// measured window — the direct evidence that locally-served reads consume
// no sequence numbers, while consensus-ordered reads burn a slot per
// batch exactly like writes.
//
// On a few-core machine the latency percentiles are scheduler-noisy
// (dozens of runnable closed-loop clients share the cores, so the
// max-across-clients percentile picks up run-queue wait, not server
// time); the local, seq-used, and throughput columns are the quantities
// to watch there (cf. the diskpipe guidance).
func readmix(s Scale) (Outcome, error) {
	warmup := 300 * time.Millisecond
	window := 600 * time.Millisecond
	clients := 48
	if s == ScalePaper {
		warmup = 1 * time.Second
		window = 2 * time.Second
		clients = 160
	}

	type row struct {
		name string
		frac float64
		mode string
	}
	rows := []row{
		{name: "quorum-a", frac: 0.5, mode: "quorum"},
		{name: "local-a", frac: 0.5, mode: "local"},
		{name: "quorum-c", frac: 1.0, mode: "quorum"},
		{name: "local-c", frac: 1.0, mode: "local"},
	}

	tab := Table{
		Title: "Read path: consensus-ordered vs locally-served reads (PBFT, real pipeline, E=4)",
		Columns: []string{"row", "reads", "tput", "read p50", "read p95",
			"write p50", "local", "seq used"},
	}
	metrics := map[string]float64{}
	var quorumReadP50, localReadP50 time.Duration

	for _, r := range rows {
		res, seqUsed, err := runReadMix(r.frac, r.mode, clients, warmup, window)
		if err != nil {
			return Outcome{}, err
		}
		tab.AddRow(r.name, pct(r.frac), ktps(res.Throughput),
			ms(res.ReadP50Lat), ms(res.ReadP95Lat), ms(res.WriteP50Lat),
			fmt.Sprintf("%d", res.LocalReads), fmt.Sprintf("%d", seqUsed))

		key := strings.ReplaceAll(r.name, "-", "_")
		metrics["readmix_tput_"+key] = res.Throughput
		metrics["readmix_read_p50_ms_"+key] = float64(res.ReadP50Lat) / 1e6
		metrics["readmix_read_p95_ms_"+key] = float64(res.ReadP95Lat) / 1e6
		metrics["readmix_write_p50_ms_"+key] = float64(res.WriteP50Lat) / 1e6
		metrics["readmix_write_p95_ms_"+key] = float64(res.WriteP95Lat) / 1e6
		metrics["readmix_local_reads_"+key] = float64(res.LocalReads)
		metrics["readmix_seq_used_"+key] = float64(seqUsed)
		switch r.name {
		case "quorum-a":
			quorumReadP50 = res.ReadP50Lat
		case "local-a":
			localReadP50 = res.ReadP50Lat
		}
	}
	if localReadP50 > 0 {
		// How much a read saves by skipping the three-phase round. The
		// workload-A rows are compared because both run the same write
		// load, so the two read paths face identical machine conditions.
		metrics["readmix_local_read_speedup_x"] =
			float64(quorumReadP50) / float64(localReadP50)
	}
	return Outcome{Tables: []Table{tab}, Metrics: metrics}, nil
}

// runReadMix runs one PBFT cluster at the given read fraction and read
// mode: a warmup window whose counters are discarded, then the measured
// window. It returns the measured result plus the backup's ledger-height
// growth across the measured window (the sequence numbers the load
// actually consumed — zero when read-only traffic never enters
// consensus).
func runReadMix(frac float64, mode string, clients int, warmup, window time.Duration) (cluster.Result, uint64, error) {
	wl := workload.Default()
	wl.Records = 4096
	wl.ReadFraction = frac
	c, err := cluster.New(cluster.Options{
		N:                  4,
		Clients:            clients,
		Burst:              2,
		BatchSize:          20,
		ExecuteThreads:     4,
		ExecPipelineDepth:  2,
		Workload:           wl,
		CheckpointInterval: 25,
		Seed:               13,
		ReadMode:           mode,
		PreloadTable:       true,
	})
	if err != nil {
		return cluster.Result{}, 0, err
	}
	c.Start()
	defer c.Stop()
	ctx := context.Background()
	c.Run(ctx, warmup)
	before := c.Replica(1).Ledger().Height()
	res := c.Run(ctx, window)
	seqUsed := c.Replica(1).Ledger().Height() - before
	return res, seqUsed, nil
}

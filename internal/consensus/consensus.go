// Package consensus defines the engine abstraction shared by every BFT
// protocol in the fabric.
//
// An Engine is a pure, deterministic state machine: verified messages go
// in, Actions come out. Engines never touch the network, the clock,
// threads, or cryptography — those belong to the drivers. The same engine
// code is driven by the real pipelined replica runtime
// (internal/replica) and by the discrete-event simulator (internal/sim),
// which is what lets the simulator's paper-scale experiments measure the
// behaviour of the very protocol implementation the runnable system uses.
package consensus

import (
	"sync"
	"sync/atomic"

	"resilientdb/internal/types"
)

// Action is one output of an engine step. Drivers interpret actions:
// the runtime maps Send/Broadcast onto the transport and Execute onto the
// execution layer; the simulator maps them onto cost-modelled events.
type Action interface{ isAction() }

// Send delivers a message to a single node.
type Send struct {
	To  types.NodeID
	Msg types.Message
}

// Broadcast delivers a message to every other replica. The engine has
// already applied the message to itself where the protocol requires it;
// drivers must not loop a broadcast back to its sender.
type Broadcast struct {
	Msg types.Message
}

// Execute hands an ordered batch to the execution layer. For PBFT the
// batch carries its 2f+1 commit certificate; for Zyzzyva the batch is
// Speculative and carries the history digest the response must embed.
type Execute struct {
	Seq         types.SeqNum
	View        types.View
	Digest      types.Digest
	History     types.Digest // Zyzzyva history hash; zero for PBFT
	Requests    []types.ClientRequest
	Proof       []types.CommitSig
	Speculative bool
}

// CheckpointStable reports that a checkpoint gathered its 2f+1 quorum:
// everything up to and including Seq may be garbage collected
// (Section 4.7).
type CheckpointStable struct {
	Seq types.SeqNum
}

// ViewChanged reports that the engine entered a new view.
type ViewChanged struct {
	View types.View
}

// Evidence reports byzantine behaviour the engine observed, such as an
// equivocating primary. Drivers log it and may trigger a view change.
type Evidence struct {
	Culprit types.ReplicaID
	Detail  string
}

func (Send) isAction()             {}
func (Broadcast) isAction()        {}
func (Execute) isAction()          {}
func (CheckpointStable) isAction() {}
func (ViewChanged) isAction()      {}
func (Evidence) isAction()         {}

// Engine is a replica-side consensus state machine.
//
// Stepping methods (OnMessage, Propose, OnExecuted, OnViewTimeout) are by
// default not safe for concurrent use: exactly one goroutine (the
// worker-thread) or one simulator event at a time may step them. Engines
// that additionally implement ConcurrentStepper may be stepped from many
// worker lanes at once. Drivers that cannot know which kind they hold wrap
// the engine with Serialize.
//
// The read-only observers View, IsPrimary, and Stats are safe to call from
// any goroutine at any time, without external locking: implementations
// back them with atomics so observability never contends with consensus.
type Engine interface {
	// OnMessage applies a verified message from a peer. auth carries the
	// authenticator bytes from the envelope so engines can retain commit
	// certificates; it may be nil.
	OnMessage(from types.NodeID, msg types.Message, auth []byte) []Action

	// Propose assigns the next sequence number to a batch of client
	// requests and starts consensus on it. Only the current primary may
	// propose; other replicas receive a nil result.
	Propose(reqs []types.ClientRequest) []Action

	// OnExecuted tells the engine the execution layer finished the batch
	// at seq and reports the resulting state digest, which feeds
	// checkpoint generation.
	OnExecuted(seq types.SeqNum, stateDigest types.Digest) []Action

	// OnViewTimeout signals that progress stalled (the driver's view
	// timer fired); the engine may start a view change.
	OnViewTimeout() []Action

	// View returns the engine's current view.
	View() types.View

	// IsPrimary reports whether this replica leads the current view.
	IsPrimary() bool

	// Stats returns engine counters for observability.
	Stats() EngineStats
}

// ConcurrentStepper marks engines whose stepping methods are safe for
// concurrent use by multiple worker lanes (Sections 4.4–4.5: independent
// consensus instances may be processed out of order and in parallel).
//
// The contract: steps touching different sequence numbers may run fully in
// parallel; steps touching the same sequence number and all control-plane
// transitions (view changes, checkpoint garbage collection) are serialized
// internally by the engine. Drivers remain responsible for routing traffic
// sensibly — the replica runtime keys its worker lanes by sequence number
// so one instance's messages stay on one lane.
//
// Engines with inherently ordered state do not implement this interface:
// Zyzzyva's speculative history chain h_k = H(h_{k-1} || d_k) forces
// sequential acceptance, so its engine is driven through Serialize on a
// single lane regardless of the configured lane count.
type ConcurrentStepper interface {
	Engine

	// ConcurrentStepping is a marker method documenting the contract
	// above; it has no runtime behaviour.
	ConcurrentStepping()
}

// Serialize returns an Engine that is safe to step from multiple
// goroutines. Engines implementing ConcurrentStepper are returned as-is;
// anything else is wrapped so that stepping methods run under a mutex.
// The observers (View, IsPrimary, Stats) pass through without locking —
// the Engine contract already requires them to be concurrency-safe.
func Serialize(e Engine) Engine {
	if _, ok := e.(ConcurrentStepper); ok {
		return e
	}
	return &serialEngine{inner: e}
}

// serialEngine adapts a single-threaded engine to concurrent drivers by
// serializing every stepping method behind one mutex.
type serialEngine struct {
	mu    sync.Mutex
	inner Engine
}

func (s *serialEngine) OnMessage(from types.NodeID, msg types.Message, auth []byte) []Action {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.OnMessage(from, msg, auth)
}

func (s *serialEngine) Propose(reqs []types.ClientRequest) []Action {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Propose(reqs)
}

func (s *serialEngine) OnExecuted(seq types.SeqNum, stateDigest types.Digest) []Action {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.OnExecuted(seq, stateDigest)
}

func (s *serialEngine) OnViewTimeout() []Action {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.OnViewTimeout()
}

func (s *serialEngine) LastProposed() types.SeqNum {
	if ph, ok := s.inner.(ProposalHeader); ok {
		return ph.LastProposed()
	}
	return 0
}

func (s *serialEngine) View() types.View { return s.inner.View() }
func (s *serialEngine) IsPrimary() bool  { return s.inner.IsPrimary() }
func (s *serialEngine) Stats() EngineStats {
	return s.inner.Stats()
}

// ProposalHeader is implemented by engines that can report the highest
// sequence number they have proposed or adopted. Drivers use it to bound
// the set of instances that may be in flight: everything above the head
// has provably not been pre-prepared yet.
type ProposalHeader interface {
	LastProposed() types.SeqNum
}

// EngineStats exposes engine counters for tests and monitoring.
type EngineStats struct {
	Proposed    uint64 // batches proposed (primary)
	Executed    uint64 // batches released for execution
	Checkpoints uint64 // stable checkpoints reached
	ViewChanges uint64 // view changes completed
	Dropped     uint64 // messages ignored (stale view, out of watermark…)
}

// AtomicEngineStats is the atomic counter set backing a lock-free
// Engine.Stats implementation. Engines keep one and return Snapshot(), so
// counters bumped mid-step are safe to read from any goroutine — the
// Engine contract requires exactly that of Stats().
type AtomicEngineStats struct {
	Proposed    atomic.Uint64
	Executed    atomic.Uint64
	Checkpoints atomic.Uint64
	ViewChanges atomic.Uint64
	Dropped     atomic.Uint64
}

// Snapshot returns the counters as a plain EngineStats value.
func (s *AtomicEngineStats) Snapshot() EngineStats {
	return EngineStats{
		Proposed:    s.Proposed.Load(),
		Executed:    s.Executed.Load(),
		Checkpoints: s.Checkpoints.Load(),
		ViewChanges: s.ViewChanges.Load(),
		Dropped:     s.Dropped.Load(),
	}
}

// Quorum2f returns the prepare quorum: 2f when n = 3f+1, generalized to
// n−f−1 so that the pre-prepare plus the prepares form an n−f quorum for
// any n ≥ 3f+1 (two such quorums intersect in more than f replicas).
func Quorum2f(n int) int { return n - MaxFaults(n) - 1 }

// Quorum2f1 returns the commit quorum: 2f+1 when n = 3f+1, generalized to
// n−f for any n ≥ 3f+1.
func Quorum2f1(n int) int { return n - MaxFaults(n) }

// MaxFaults returns f, the number of byzantine replicas n can tolerate.
func MaxFaults(n int) int { return (n - 1) / 3 }

// PrimaryOf returns the primary replica for view v among n replicas.
func PrimaryOf(v types.View, n int) types.ReplicaID {
	return types.ReplicaID(uint64(v) % uint64(n))
}

// Package client implements the client-side halves of the consensus
// protocols: quorum collection over replica responses, retransmission,
// and Zyzzyva's client-driven second phase.
//
// Like the replica engines, client engines are pure state machines driven
// by both the real runtime and the simulator. PBFT clients accept a result
// after f+1 matching responses; Zyzzyva's fast path requires responses
// from all 3f+1 replicas, which is why a single crashed backup forces
// every Zyzzyva request through a timeout plus the commit-certificate
// phase (Sections 2.1 and 5.10).
package client

import (
	"fmt"
	"sort"

	"resilientdb/internal/consensus"
	"resilientdb/internal/types"
)

// Protocol selects the client-side quorum rules.
type Protocol int

// Supported protocols.
const (
	PBFT Protocol = iota + 1
	Zyzzyva
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case PBFT:
		return "pbft"
	case Zyzzyva:
		return "zyzzyva"
	default:
		return "invalid"
	}
}

// Outcome describes a completed request.
type Outcome struct {
	ClientSeq uint64
	Result    types.Digest
	// Seq is the sequence number the quorum committed the request at. It
	// is part of the attested vote key (PBFT folds it into Result via
	// types.ResponseDigest; Zyzzyva keys votes on it directly), so a
	// client can trust it as a lower bound on replicated state and quote
	// it as the staleness bound (ReadRequest.MinSeq) on later local reads.
	Seq types.SeqNum
	// ReadResults carries the read values for a request with read
	// operations, in the request's (transaction, op) order. The values are
	// trustworthy despite coming from a single response: the engine
	// recomputes types.ResponseDigest over every response's carried read
	// results and discards mismatches before counting the vote, so only
	// payloads that hash to the quorum-attested Result can complete a
	// request.
	ReadResults []types.ReadResult
	// FastPath reports whether a Zyzzyva request completed with all 3f+1
	// speculative responses (always true for PBFT completions).
	FastPath bool
	// Busy is the queue-saturation gauge (0 idle .. 255 full) for this
	// request — the backpressure signal a gateway's admission controller
	// steers on. Because the gauge is outside the vote key (it never
	// affects quorum formation), a Byzantine replica could stamp 255 on
	// otherwise-valid responses; a plain max would let one faulty replica
	// saturate every request's gauge and wedge the gateway's admission.
	// The engine therefore aggregates robustly: Busy is the (f+1)-th
	// highest gauge across the distinct replicas that responded, so at
	// least one honest replica reported a gauge at or above the value and
	// f faulty replicas can neither raise it above an honest reading nor
	// (with f+1 honest responders) drag it below the honest tail.
	Busy uint8
}

// Engine is the client state machine for one logical client. It manages a
// single in-flight request at a time (closed loop, as in the evaluation:
// clients wait for a response before issuing the next request).
type Engine struct {
	id       types.ClientID
	n        int
	f        int
	protocol Protocol
	view     types.View // latest view observed from responses

	cur *inflight

	stats Stats
}

// Stats counts client-side events.
type Stats struct {
	Completed   uint64
	FastPath    uint64
	SlowPath    uint64
	Retransmits uint64
}

type inflight struct {
	req       types.ClientRequest
	clientSeq uint64
	// PBFT: votes by result digest.
	// Zyzzyva fast path: votes keyed by (seq, history, result).
	votes map[voteKey]map[types.ReplicaID]bool
	// Zyzzyva slow path state.
	certSent     bool
	localCommits map[types.ReplicaID]bool
	specSeq      types.SeqNum
	specHistory  types.Digest
	specResult   types.Digest
	specReads    []types.ReadResult
	done         bool
	// busyBy is each responding replica's highest saturation gauge; the
	// Outcome reports the (f+1)-th highest so f liars cannot inflate it.
	busyBy map[types.ReplicaID]uint8
}

type voteKey struct {
	seq     types.SeqNum
	history types.Digest
	result  types.Digest
}

// New creates a client engine.
func New(id types.ClientID, n int, protocol Protocol) (*Engine, error) {
	if n < 4 {
		return nil, fmt.Errorf("client: need n ≥ 4 replicas, got %d", n)
	}
	switch protocol {
	case PBFT, Zyzzyva:
	default:
		return nil, fmt.Errorf("client: invalid protocol %d", protocol)
	}
	return &Engine{
		id:       id,
		n:        n,
		f:        consensus.MaxFaults(n),
		protocol: protocol,
	}, nil
}

// Stats returns the client's counters.
func (e *Engine) Stats() Stats { return e.stats }

// Busy reports whether a request is in flight.
func (e *Engine) Busy() bool { return e.cur != nil && !e.cur.done }

// Primary returns the replica the client currently believes is primary.
func (e *Engine) Primary() types.ReplicaID {
	return consensus.PrimaryOf(e.view, e.n)
}

// Submit starts a new request and returns the send action. The request
// must already carry the client's signature. Submitting while a request
// is in flight abandons the previous one.
func (e *Engine) Submit(req types.ClientRequest) []consensus.Action {
	e.cur = &inflight{
		req:          req,
		clientSeq:    req.FirstSeq,
		votes:        make(map[voteKey]map[types.ReplicaID]bool),
		localCommits: make(map[types.ReplicaID]bool),
		busyBy:       make(map[types.ReplicaID]uint8),
	}
	return []consensus.Action{consensus.Send{
		To:  types.ReplicaNode(e.Primary()),
		Msg: &req,
	}}
}

// OnMessage applies a replica response. When the request completes it
// returns the Outcome; otherwise the Outcome is nil.
func (e *Engine) OnMessage(from types.NodeID, msg types.Message) (*Outcome, []consensus.Action) {
	if e.cur == nil || e.cur.done || !from.IsReplica() {
		return nil, nil
	}
	rep := from.Replica()
	switch m := msg.(type) {
	case *types.ClientResponse:
		if e.protocol != PBFT || m.Client != e.id || m.ClientSeq != e.cur.clientSeq {
			return nil, nil
		}
		// Votes are keyed on Result alone, so the payload must be checked
		// against it: a Byzantine replica could copy the correct Result from
		// honest replicas and attach forged (or stripped) read values, and
		// its message may be the f+1-th that completes the request. Only
		// responses whose carried fields hash to Result may vote.
		if types.ResponseDigest(m.Seq, m.Client, m.ClientSeq, m.ReadResults) != m.Result {
			return nil, nil
		}
		if m.View > e.view {
			e.view = m.View
		}
		if m.Busy > e.cur.busyBy[rep] {
			e.cur.busyBy[rep] = m.Busy
		}
		k := voteKey{result: m.Result}
		if e.vote(k, rep) >= e.f+1 {
			return e.complete(m.Seq, m.Result, true, m.ReadResults), nil
		}
	case *types.SpecResponse:
		if e.protocol != Zyzzyva || m.Client != e.id || m.ClientSeq != e.cur.clientSeq {
			return nil, nil
		}
		// Same payload check as the PBFT path: it guards the 3f+1-th
		// fast-path message, the 2f+1-th that records specReads for the
		// slow path, and everything in between.
		if types.ResponseDigest(m.Seq, m.Client, m.ClientSeq, m.ReadResults) != m.Result {
			return nil, nil
		}
		if m.View > e.view {
			e.view = m.View
		}
		if m.Busy > e.cur.busyBy[rep] {
			e.cur.busyBy[rep] = m.Busy
		}
		k := voteKey{seq: m.Seq, history: m.History, result: m.Result}
		votes := e.vote(k, rep)
		// Track the strongest candidate for a potential slow path.
		if votes >= consensus.Quorum2f1(e.n) && !e.cur.certSent {
			e.cur.specSeq = m.Seq
			e.cur.specHistory = m.History
			e.cur.specResult = m.Result
			e.cur.specReads = m.ReadResults
		}
		if votes >= e.n {
			// Fast path: all 3f+1 replicas agree.
			return e.complete(m.Seq, m.Result, true, m.ReadResults), nil
		}
	case *types.LocalCommit:
		if e.protocol != Zyzzyva || m.Client != e.id || m.ClientSeq != e.cur.clientSeq || !e.cur.certSent {
			return nil, nil
		}
		if m.History != e.cur.specHistory {
			return nil, nil
		}
		e.cur.localCommits[rep] = true
		if len(e.cur.localCommits) >= consensus.Quorum2f1(e.n) {
			return e.complete(e.cur.specSeq, e.cur.specResult, false, e.cur.specReads), nil
		}
	}
	return nil, nil
}

func (e *Engine) vote(k voteKey, rep types.ReplicaID) int {
	voters, ok := e.cur.votes[k]
	if !ok {
		voters = make(map[types.ReplicaID]bool)
		e.cur.votes[k] = voters
	}
	voters[rep] = true
	return len(voters)
}

func (e *Engine) complete(seq types.SeqNum, result types.Digest, fast bool, reads []types.ReadResult) *Outcome {
	e.cur.done = true
	e.stats.Completed++
	if fast {
		e.stats.FastPath++
	} else {
		e.stats.SlowPath++
	}
	return &Outcome{ClientSeq: e.cur.clientSeq, Seq: seq, Result: result, ReadResults: reads, FastPath: fast, Busy: e.robustBusy()}
}

// robustBusy folds the per-replica saturation gauges into the Outcome's
// advisory value: the (f+1)-th highest gauge across distinct responders.
// The top f slots may all be Byzantine inflation, so the (f+1)-th is the
// largest value at least one honest replica vouches for. Every
// completion path has collected at least f+1 distinct responders (PBFT
// completes at f+1 votes, Zyzzyva's slow path records gauges from its
// 2f+1 speculative responses); if somehow fewer exist, report 0 rather
// than a value no honest replica may back.
func (e *Engine) robustBusy() uint8 {
	if len(e.cur.busyBy) <= e.f {
		return 0
	}
	gauges := make([]int, 0, len(e.cur.busyBy))
	for _, g := range e.cur.busyBy {
		gauges = append(gauges, int(g))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(gauges)))
	return uint8(gauges[e.f])
}

// OnTimeout handles the client timer expiring before completion.
//
// PBFT: retransmit the request to every replica (which is also what pulls
// a stalled system into a view change — backups that receive a client
// request they cannot get ordered eventually vote to replace the primary).
//
// Zyzzyva: if 2f+1 matching speculative responses arrived, broadcast the
// commit certificate and await 2f+1 LocalCommits; otherwise retransmit.
// The paper approximates the unknowably "optimal" wait by keeping the
// client timeout short (Section 5.10) — the timeout duration itself is the
// driver's concern.
func (e *Engine) OnTimeout() []consensus.Action {
	if e.cur == nil || e.cur.done {
		return nil
	}
	e.stats.Retransmits++
	if e.protocol == Zyzzyva && !e.cur.certSent {
		k := voteKey{seq: e.cur.specSeq, history: e.cur.specHistory, result: e.cur.specResult}
		if voters := e.cur.votes[k]; len(voters) >= consensus.Quorum2f1(e.n) {
			e.cur.certSent = true
			cert := &types.CommitCert{
				Client:    e.id,
				ClientSeq: e.cur.clientSeq,
				View:      e.view,
				Seq:       e.cur.specSeq,
				History:   e.cur.specHistory,
				Replicas:  sortedVoters(voters),
			}
			return []consensus.Action{consensus.Broadcast{Msg: cert}}
		}
	}
	// Retransmit to every replica.
	acts := make([]consensus.Action, 0, e.n)
	for r := 0; r < e.n; r++ {
		req := e.cur.req
		acts = append(acts, consensus.Send{To: types.ReplicaNode(types.ReplicaID(r)), Msg: &req})
	}
	return acts
}

func sortedVoters(voters map[types.ReplicaID]bool) []types.ReplicaID {
	ids := make([]types.ReplicaID, 0, len(voters))
	for id := range voters {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

package client

import (
	"testing"

	"resilientdb/internal/consensus"
	"resilientdb/internal/types"
)

func req(client types.ClientID, seq uint64) types.ClientRequest {
	return types.ClientRequest{Client: client, FirstSeq: seq, Sig: []byte{1}}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 2, PBFT); err == nil {
		t.Fatal("accepted n=2")
	}
	if _, err := New(1, 4, Protocol(0)); err == nil {
		t.Fatal("accepted invalid protocol")
	}
}

func TestSubmitSendsToPrimary(t *testing.T) {
	e, err := New(3, 4, PBFT)
	if err != nil {
		t.Fatal(err)
	}
	acts := e.Submit(req(3, 1))
	if len(acts) != 1 {
		t.Fatalf("Submit produced %d actions", len(acts))
	}
	send, ok := acts[0].(consensus.Send)
	if !ok || send.To != types.ReplicaNode(0) {
		t.Fatalf("Submit sent to %v", send.To)
	}
	if !e.Busy() {
		t.Fatal("client not busy after Submit")
	}
}

func TestPBFTQuorumFPlusOne(t *testing.T) {
	e, err := New(3, 4, PBFT) // f=1, quorum 2
	if err != nil {
		t.Fatal(err)
	}
	e.Submit(req(3, 5))
	result := types.ResponseDigest(1, 3, 5, nil)
	resp := func(rep types.ReplicaID) *types.ClientResponse {
		return &types.ClientResponse{View: 0, Seq: 1, Client: 3, ClientSeq: 5, Result: result, Replica: rep}
	}
	out, _ := e.OnMessage(types.ReplicaNode(0), resp(0))
	if out != nil {
		t.Fatal("completed with one response")
	}
	// Duplicate from the same replica must not complete the quorum.
	out, _ = e.OnMessage(types.ReplicaNode(0), resp(0))
	if out != nil {
		t.Fatal("completed on duplicate responses")
	}
	out, _ = e.OnMessage(types.ReplicaNode(1), resp(1))
	if out == nil {
		t.Fatal("did not complete at f+1 matching responses")
	}
	if out.Result != result || out.ClientSeq != 5 || !out.FastPath {
		t.Fatalf("bad outcome: %+v", out)
	}
	if e.Busy() {
		t.Fatal("still busy after completion")
	}
	if s := e.Stats(); s.Completed != 1 {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestPBFTMismatchedResultsDoNotComplete(t *testing.T) {
	e, err := New(3, 4, PBFT)
	if err != nil {
		t.Fatal(err)
	}
	e.Submit(req(3, 5))
	// Both responses carry internally consistent payloads (their digests
	// verify) but disagree on the executed sequence, so their results differ.
	a := &types.ClientResponse{Seq: 1, Client: 3, ClientSeq: 5, Result: types.ResponseDigest(1, 3, 5, nil), Replica: 0}
	b := &types.ClientResponse{Seq: 2, Client: 3, ClientSeq: 5, Result: types.ResponseDigest(2, 3, 5, nil), Replica: 1}
	if out, _ := e.OnMessage(types.ReplicaNode(0), a); out != nil {
		t.Fatal("early completion")
	}
	if out, _ := e.OnMessage(types.ReplicaNode(1), b); out != nil {
		t.Fatal("completed on mismatched results")
	}
}

func TestPBFTIgnoresWrongClientSeq(t *testing.T) {
	e, err := New(3, 4, PBFT)
	if err != nil {
		t.Fatal(err)
	}
	e.Submit(req(3, 5))
	stale := &types.ClientResponse{Client: 3, ClientSeq: 4, Result: types.Digest{1}, Replica: 0}
	stale2 := &types.ClientResponse{Client: 3, ClientSeq: 4, Result: types.Digest{1}, Replica: 1}
	e.OnMessage(types.ReplicaNode(0), stale)
	if out, _ := e.OnMessage(types.ReplicaNode(1), stale2); out != nil {
		t.Fatal("completed on stale responses")
	}
}

func TestPBFTTimeoutRetransmitsToAll(t *testing.T) {
	e, err := New(3, 4, PBFT)
	if err != nil {
		t.Fatal(err)
	}
	e.Submit(req(3, 5))
	acts := e.OnTimeout()
	if len(acts) != 4 {
		t.Fatalf("retransmitted to %d replicas, want 4", len(acts))
	}
	if s := e.Stats(); s.Retransmits != 1 {
		t.Fatalf("Stats = %+v", s)
	}
}

func specResp(rep types.ReplicaID, client types.ClientID, cseq uint64, history types.Digest) *types.SpecResponse {
	return &types.SpecResponse{
		View: 0, Seq: 1, Digest: types.Digest{9}, History: history,
		Client: client, ClientSeq: cseq,
		Result: types.ResponseDigest(1, client, cseq, nil), Replica: rep,
	}
}

func TestZyzzyvaFastPathNeedsAll(t *testing.T) {
	e, err := New(2, 4, Zyzzyva)
	if err != nil {
		t.Fatal(err)
	}
	e.Submit(req(2, 9))
	h := types.Digest{3}
	for rep := 0; rep < 3; rep++ {
		out, _ := e.OnMessage(types.ReplicaNode(types.ReplicaID(rep)), specResp(types.ReplicaID(rep), 2, 9, h))
		if out != nil {
			t.Fatalf("completed with only %d/4 responses", rep+1)
		}
	}
	out, _ := e.OnMessage(types.ReplicaNode(3), specResp(3, 2, 9, h))
	if out == nil {
		t.Fatal("did not complete with all 3f+1 responses")
	}
	if !out.FastPath {
		t.Fatal("completion not marked fast path")
	}
	if s := e.Stats(); s.FastPath != 1 || s.SlowPath != 0 {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestZyzzyvaSlowPathCommitCert(t *testing.T) {
	e, err := New(2, 4, Zyzzyva) // 2f+1 = 3
	if err != nil {
		t.Fatal(err)
	}
	e.Submit(req(2, 9))
	h := types.Digest{3}
	// Only 3 of 4 replicas respond (one crashed): no fast path.
	for rep := 0; rep < 3; rep++ {
		e.OnMessage(types.ReplicaNode(types.ReplicaID(rep)), specResp(types.ReplicaID(rep), 2, 9, h))
	}
	// Timeout: client escalates to the commit-certificate phase.
	acts := e.OnTimeout()
	if len(acts) != 1 {
		t.Fatalf("timeout produced %d actions", len(acts))
	}
	bc, ok := acts[0].(consensus.Broadcast)
	if !ok {
		t.Fatalf("timeout action = %T, want Broadcast", acts[0])
	}
	cert, ok := bc.Msg.(*types.CommitCert)
	if !ok {
		t.Fatalf("broadcast message = %T, want CommitCert", bc.Msg)
	}
	if cert.History != h || len(cert.Replicas) != 3 {
		t.Fatalf("bad cert: %+v", cert)
	}
	// 2f+1 local commits complete the request as slow path.
	for rep := 0; rep < 2; rep++ {
		lc := &types.LocalCommit{View: 0, Seq: 1, History: h, Client: 2, ClientSeq: 9, Replica: types.ReplicaID(rep)}
		if out, _ := e.OnMessage(types.ReplicaNode(types.ReplicaID(rep)), lc); out != nil {
			t.Fatalf("completed with %d local commits", rep+1)
		}
	}
	lc := &types.LocalCommit{View: 0, Seq: 1, History: h, Client: 2, ClientSeq: 9, Replica: 2}
	out, _ := e.OnMessage(types.ReplicaNode(2), lc)
	if out == nil {
		t.Fatal("slow path did not complete at 2f+1 local commits")
	}
	if out.FastPath {
		t.Fatal("slow-path completion marked fast")
	}
	if s := e.Stats(); s.SlowPath != 1 {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestZyzzyvaTimeoutWithoutQuorumRetransmits(t *testing.T) {
	e, err := New(2, 4, Zyzzyva)
	if err != nil {
		t.Fatal(err)
	}
	e.Submit(req(2, 9))
	h := types.Digest{3}
	// Only 2 responses: below the 2f+1 commit-cert threshold.
	for rep := 0; rep < 2; rep++ {
		e.OnMessage(types.ReplicaNode(types.ReplicaID(rep)), specResp(types.ReplicaID(rep), 2, 9, h))
	}
	acts := e.OnTimeout()
	if len(acts) != 4 {
		t.Fatalf("expected retransmission to 4 replicas, got %d actions", len(acts))
	}
}

func TestZyzzyvaMismatchedHistoriesSplitVotes(t *testing.T) {
	e, err := New(2, 4, Zyzzyva)
	if err != nil {
		t.Fatal(err)
	}
	e.Submit(req(2, 9))
	for rep := 0; rep < 4; rep++ {
		h := types.Digest{byte(rep)} // every replica reports a different history
		if out, _ := e.OnMessage(types.ReplicaNode(types.ReplicaID(rep)), specResp(types.ReplicaID(rep), 2, 9, h)); out != nil {
			t.Fatal("completed on divergent histories")
		}
	}
}

// TestPBFTForgedReadResultsRejected: votes are keyed on Result alone, so a
// Byzantine replica could copy the correct result digest from honest
// replicas and attach forged, stripped, or re-sequenced read values as the
// f+1-th completing response. The engine must recompute the digest over
// every response's carried payload and refuse to count mismatches.
func TestPBFTForgedReadResultsRejected(t *testing.T) {
	e, err := New(3, 4, PBFT) // f=1, quorum 2
	if err != nil {
		t.Fatal(err)
	}
	e.Submit(req(3, 5))
	reads := []types.ReadResult{{Found: true, Value: []byte("honest")}, {Found: false}}
	result := types.ResponseDigest(1, 3, 5, reads)
	honest := func(rep types.ReplicaID) *types.ClientResponse {
		return &types.ClientResponse{Seq: 1, Client: 3, ClientSeq: 5, Result: result, Replica: rep, ReadResults: reads}
	}
	if out, _ := e.OnMessage(types.ReplicaNode(0), honest(0)); out != nil {
		t.Fatal("completed with one response")
	}
	// Each forgery copies the honest Result; any would complete the f+1
	// quorum if its vote were counted.
	forgeries := map[string]*types.ClientResponse{
		"forged value": {Seq: 1, Client: 3, ClientSeq: 5, Result: result, Replica: 1,
			ReadResults: []types.ReadResult{{Found: true, Value: []byte("forged")}, {Found: false}}},
		"stripped reads": {Seq: 1, Client: 3, ClientSeq: 5, Result: result, Replica: 1},
		"flipped found": {Seq: 1, Client: 3, ClientSeq: 5, Result: result, Replica: 1,
			ReadResults: []types.ReadResult{{Found: true, Value: []byte("honest")}, {Found: true}}},
		"wrong seq": {Seq: 2, Client: 3, ClientSeq: 5, Result: result, Replica: 1, ReadResults: reads},
	}
	for name, forged := range forgeries {
		if out, _ := e.OnMessage(types.ReplicaNode(1), forged); out != nil {
			t.Fatalf("%s: forged response completed the request", name)
		}
	}
	out, _ := e.OnMessage(types.ReplicaNode(1), honest(1))
	if out == nil {
		t.Fatal("honest f+1-th response did not complete")
	}
	if len(out.ReadResults) != 2 || string(out.ReadResults[0].Value) != "honest" {
		t.Fatalf("outcome carries wrong read results: %+v", out.ReadResults)
	}
}

// TestZyzzyvaForgedReadResultsRejected: the same payload check guards
// Zyzzyva's fast path (the forgery would be the 3f+1-th response) and the
// specReads recorded for the slow path.
func TestZyzzyvaForgedReadResultsRejected(t *testing.T) {
	e, err := New(2, 4, Zyzzyva)
	if err != nil {
		t.Fatal(err)
	}
	e.Submit(req(2, 9))
	h := types.Digest{3}
	reads := []types.ReadResult{{Found: true, Value: []byte("honest")}}
	result := types.ResponseDigest(1, 2, 9, reads)
	honest := func(rep types.ReplicaID) *types.SpecResponse {
		return &types.SpecResponse{
			View: 0, Seq: 1, Digest: types.Digest{9}, History: h,
			Client: 2, ClientSeq: 9, Result: result, Replica: rep, ReadResults: reads,
		}
	}
	for rep := 0; rep < 3; rep++ {
		if out, _ := e.OnMessage(types.ReplicaNode(types.ReplicaID(rep)), honest(types.ReplicaID(rep))); out != nil {
			t.Fatalf("completed with %d/4 responses", rep+1)
		}
	}
	forged := honest(3)
	forged.ReadResults = []types.ReadResult{{Found: true, Value: []byte("forged")}}
	if out, _ := e.OnMessage(types.ReplicaNode(3), forged); out != nil {
		t.Fatal("forged 3f+1-th response completed the fast path")
	}
	out, _ := e.OnMessage(types.ReplicaNode(3), honest(3))
	if out == nil {
		t.Fatal("honest 3f+1-th response did not complete")
	}
	if len(out.ReadResults) != 1 || string(out.ReadResults[0].Value) != "honest" {
		t.Fatalf("outcome carries wrong read results: %+v", out.ReadResults)
	}
}

// TestPBFTForgedScanResultsRejected extends the forgery matrix to scan
// results: multi-row payloads give a Byzantine replica more to tamper
// with — mutate a row's value, drop the tail rows, reorder them, or
// append an extra row — and every variant must fail the ResponseDigest
// recompute and lose its vote.
func TestPBFTForgedScanResultsRejected(t *testing.T) {
	e, err := New(3, 4, PBFT) // f=1, quorum 2
	if err != nil {
		t.Fatal(err)
	}
	e.Submit(req(3, 5))
	rows := []types.ScanRow{
		{Key: 10, Value: []byte("a")},
		{Key: 11, Value: []byte("b")},
		{Key: 12, Value: []byte("c")},
	}
	reads := []types.ReadResult{
		{Found: true, Value: []byte("point")},
		{Scan: true, Rows: rows},
	}
	result := types.ResponseDigest(7, 3, 5, reads)
	honest := func(rep types.ReplicaID) *types.ClientResponse {
		return &types.ClientResponse{Seq: 7, Client: 3, ClientSeq: 5, Result: result, Replica: rep, ReadResults: reads}
	}
	if out, _ := e.OnMessage(types.ReplicaNode(0), honest(0)); out != nil {
		t.Fatal("completed with one response")
	}
	scanReads := func(rows []types.ScanRow) []types.ReadResult {
		return []types.ReadResult{{Found: true, Value: []byte("point")}, {Scan: true, Rows: rows}}
	}
	forgeries := map[string][]types.ReadResult{
		"forged row value": scanReads([]types.ScanRow{
			{Key: 10, Value: []byte("a")}, {Key: 11, Value: []byte("X")}, {Key: 12, Value: []byte("c")}}),
		"truncated rows": scanReads(rows[:1]),
		"reordered rows": scanReads([]types.ScanRow{rows[1], rows[0], rows[2]}),
		"extra row": scanReads(append(append([]types.ScanRow{}, rows...),
			types.ScanRow{Key: 13, Value: []byte("d")})),
		"forged row key": scanReads([]types.ScanRow{
			{Key: 10, Value: []byte("a")}, {Key: 99, Value: []byte("b")}, {Key: 12, Value: []byte("c")}}),
		"scan flag flipped": {{Found: true, Value: []byte("point")}, {Found: true, Value: []byte("a")}},
		"empty scan":        scanReads(nil),
	}
	for name, fr := range forgeries {
		forged := &types.ClientResponse{Seq: 7, Client: 3, ClientSeq: 5, Result: result, Replica: 1, ReadResults: fr}
		if out, _ := e.OnMessage(types.ReplicaNode(1), forged); out != nil {
			t.Fatalf("%s: forged scan response completed the request", name)
		}
	}
	out, _ := e.OnMessage(types.ReplicaNode(1), honest(1))
	if out == nil {
		t.Fatal("honest f+1-th response did not complete")
	}
	if out.Seq != 7 {
		t.Fatalf("Outcome.Seq = %d, want the committed sequence 7", out.Seq)
	}
	got := out.ReadResults
	if len(got) != 2 || !got[1].Scan || len(got[1].Rows) != 3 || string(got[1].Rows[1].Value) != "b" {
		t.Fatalf("outcome carries wrong scan results: %+v", got)
	}
}

func TestViewTrackingFollowsResponses(t *testing.T) {
	e, err := New(3, 4, PBFT)
	if err != nil {
		t.Fatal(err)
	}
	e.Submit(req(3, 1))
	resp := &types.ClientResponse{View: 2, Seq: 1, Client: 3, ClientSeq: 1, Result: types.ResponseDigest(1, 3, 1, nil), Replica: 1}
	e.OnMessage(types.ReplicaNode(1), resp)
	if e.Primary() != 2 {
		t.Fatalf("Primary = %d after observing view 2, want 2", e.Primary())
	}
	// The next Submit goes to the new primary.
	acts := e.Submit(req(3, 2))
	send := acts[0].(consensus.Send)
	if send.To != types.ReplicaNode(2) {
		t.Fatalf("submitted to %v, want r2", send.To)
	}
}

func TestBusyGaugeRobustToByzantineInflation(t *testing.T) {
	e, err := New(3, 4, PBFT) // f=1
	if err != nil {
		t.Fatal(err)
	}
	e.Submit(req(3, 5))
	result := types.ResponseDigest(1, 3, 5, nil)
	resp := func(rep types.ReplicaID, busy uint8) *types.ClientResponse {
		return &types.ClientResponse{Seq: 1, Client: 3, ClientSeq: 5, Result: result, Replica: rep, Busy: busy}
	}
	// The gauge sits outside the vote key, so a Byzantine replica can
	// stamp full saturation on an otherwise-valid response — and with a
	// plain max its response completing the quorum would force Busy=255
	// on every request. The outcome must report the (f+1)-th highest
	// gauge instead: a value at least one honest replica stands behind.
	out, _ := e.OnMessage(types.ReplicaNode(2), resp(2, 255)) // Byzantine inflation
	if out != nil {
		t.Fatal("completed with one response")
	}
	out, _ = e.OnMessage(types.ReplicaNode(0), resp(0, 10)) // honest
	if out == nil {
		t.Fatal("did not complete at f+1 matching responses")
	}
	if out.Busy != 10 {
		t.Fatalf("Busy = %d, want the honest gauge 10, not the liar's 255", out.Busy)
	}
}

func TestBusyGaugeReportsHonestSaturation(t *testing.T) {
	e, err := New(3, 4, PBFT) // f=1
	if err != nil {
		t.Fatal(err)
	}
	e.Submit(req(3, 5))
	result := types.ResponseDigest(1, 3, 5, nil)
	resp := func(rep types.ReplicaID, busy uint8) *types.ClientResponse {
		return &types.ClientResponse{Seq: 1, Client: 3, ClientSeq: 5, Result: result, Replica: rep, Busy: busy}
	}
	// Real saturation still surfaces: with honest replicas at 200 and
	// 240, the (f+1)-th highest of {240, 200} is 200 — admission
	// controllers above the threshold still see the overload.
	e.OnMessage(types.ReplicaNode(0), resp(0, 240))
	out, _ := e.OnMessage(types.ReplicaNode(1), resp(1, 200))
	if out == nil {
		t.Fatal("did not complete at f+1 matching responses")
	}
	if out.Busy != 200 {
		t.Fatalf("Busy = %d, want 200", out.Busy)
	}
}

package consensus

import (
	"sync"
	"testing"

	"resilientdb/internal/types"
)

// countEngine is a deliberately non-thread-safe Engine: the unsynchronized
// counter lets the race detector prove Serialize actually serializes.
type countEngine struct {
	steps int
}

func (c *countEngine) OnMessage(types.NodeID, types.Message, []byte) []Action {
	c.steps++
	return nil
}
func (c *countEngine) Propose([]types.ClientRequest) []Action         { c.steps++; return nil }
func (c *countEngine) OnExecuted(types.SeqNum, types.Digest) []Action { c.steps++; return nil }
func (c *countEngine) OnViewTimeout() []Action                        { c.steps++; return nil }
func (c *countEngine) View() types.View                               { return 7 }
func (c *countEngine) IsPrimary() bool                                { return true }
func (c *countEngine) Stats() EngineStats                             { return EngineStats{Proposed: 9} }

// concurrentEngine marks itself safe for concurrent stepping.
type concurrentEngine struct{ countEngine }

func (c *concurrentEngine) ConcurrentStepping() {}

func TestSerializeUnwrapsConcurrentSteppers(t *testing.T) {
	e := &concurrentEngine{}
	if got := Serialize(e); got != Engine(e) {
		t.Fatal("Serialize must pass a ConcurrentStepper through unchanged")
	}
}

func TestSerializeWrapsAndSerializes(t *testing.T) {
	inner := &countEngine{}
	e := Serialize(inner)
	if e == Engine(inner) {
		t.Fatal("Serialize must wrap a non-concurrent engine")
	}
	// Hammer every stepping method from many goroutines; the wrapper's
	// mutex is the only thing between them and inner's unsynchronized
	// counter, so -race verifies the serialization.
	var wg sync.WaitGroup
	const g, per = 8, 200
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				e.OnMessage(types.ReplicaNode(2), &types.Prepare{}, nil)
				e.Propose(nil)
				e.OnExecuted(1, types.Digest{})
				e.OnViewTimeout()
			}
		}()
	}
	wg.Wait()
	if inner.steps != g*per*4 {
		t.Fatalf("steps = %d, want %d", inner.steps, g*per*4)
	}
	// Observers pass through without the lock.
	if e.View() != 7 || !e.IsPrimary() || e.Stats().Proposed != 9 {
		t.Fatal("observer passthrough broken")
	}
}

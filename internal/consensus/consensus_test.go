package consensus

import (
	"testing"

	"resilientdb/internal/types"
)

func TestQuorumArithmetic(t *testing.T) {
	tests := []struct {
		n, f, q2f, q2f1 int
	}{
		{4, 1, 2, 3},
		{7, 2, 4, 5},
		{10, 3, 6, 7},
		{16, 5, 10, 11},
		// For n beyond 3f+1 quorums generalize to n−f, which is what keeps
		// any two commit quorums overlapping in more than f replicas.
		{32, 10, 21, 22},
		{5, 1, 3, 4},
	}
	for _, tt := range tests {
		if got := MaxFaults(tt.n); got != tt.f {
			t.Fatalf("MaxFaults(%d) = %d, want %d", tt.n, got, tt.f)
		}
		if got := Quorum2f(tt.n); got != tt.q2f {
			t.Fatalf("Quorum2f(%d) = %d, want %d", tt.n, got, tt.q2f)
		}
		if got := Quorum2f1(tt.n); got != tt.q2f1 {
			t.Fatalf("Quorum2f1(%d) = %d, want %d", tt.n, got, tt.q2f1)
		}
	}
}

// TestQuorumIntersection verifies the BFT safety foundation: any two
// commit quorums of 2f+1 among 3f+1 replicas intersect in at least f+1
// replicas — more than the f that can be byzantine, so at least one
// honest replica witnesses both.
func TestQuorumIntersection(t *testing.T) {
	for _, n := range []int{4, 7, 16, 31, 32} {
		f := MaxFaults(n)
		q := Quorum2f1(n)
		// Two quorums of size q drawn from n overlap in ≥ 2q−n replicas.
		overlap := 2*q - n
		if overlap < f+1 {
			t.Fatalf("n=%d: quorums may overlap in only %d ≤ f=%d replicas", n, overlap, f)
		}
	}
}

func TestPrimaryRotation(t *testing.T) {
	n := 4
	for v := 0; v < 10; v++ {
		want := types.ReplicaID(v % n)
		if got := PrimaryOf(types.View(v), n); got != want {
			t.Fatalf("PrimaryOf(%d, %d) = %d, want %d", v, n, got, want)
		}
	}
	// Each of n consecutive views has a distinct primary.
	seen := make(map[types.ReplicaID]bool)
	for v := 0; v < n; v++ {
		seen[PrimaryOf(types.View(v), n)] = true
	}
	if len(seen) != n {
		t.Fatalf("only %d distinct primaries across %d views", len(seen), n)
	}
}

// TestActionTypesSealed ensures every action type implements the marker
// interface (compile-time enforced; this documents the set).
func TestActionTypesSealed(t *testing.T) {
	actions := []Action{
		Send{}, Broadcast{}, Execute{}, CheckpointStable{}, ViewChanged{}, Evidence{},
	}
	if len(actions) != 6 {
		t.Fatalf("action set changed: %d", len(actions))
	}
}

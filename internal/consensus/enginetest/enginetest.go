// Package enginetest provides an in-memory cluster harness for driving
// consensus engines in tests: it delivers engine actions as messages with
// controllable ordering (FIFO or seeded-random shuffling), simulates crash
// faults by dropping traffic to and from downed replicas, and plays the
// execution layer so checkpoints flow.
//
// The harness is itself a miniature deterministic simulator; the safety
// tests in the pbft and zyzzyva packages use it to check agreement under
// arbitrary delivery interleavings.
package enginetest

import (
	"math/rand"

	"resilientdb/internal/consensus"
	"resilientdb/internal/crypto"
	"resilientdb/internal/types"
)

// Delivery is one in-flight message.
type Delivery struct {
	From types.NodeID
	To   types.NodeID
	Msg  types.Message
}

// Cluster wires N engines together.
type Cluster struct {
	N       int
	Engines []consensus.Engine

	// Random, when non-nil, shuffles delivery order.
	Random *rand.Rand

	// Down marks crashed replicas: all their traffic is dropped.
	Down map[types.ReplicaID]bool

	// Executed records, per replica, the batches released for execution
	// in sequence order (after the harness's reordering layer).
	Executed [][]consensus.Execute

	// ToClients records every message addressed to a client.
	ToClients []Delivery

	// Evidence records byzantine-behaviour reports per replica.
	Evidence [][]consensus.Evidence

	// StableCheckpoints records the latest stable checkpoint per replica.
	StableCheckpoints []types.SeqNum

	queue []Delivery

	// Execution-layer state per replica: pending out-of-order Execute
	// actions, next expected seq, and the rolling state digest.
	execPending []map[types.SeqNum]consensus.Execute
	execNext    []types.SeqNum
	stateDigest []types.Digest
}

// NewCluster wraps the given engines (index = replica ID).
func NewCluster(engines []consensus.Engine) *Cluster {
	n := len(engines)
	c := &Cluster{
		N:                 n,
		Engines:           engines,
		Down:              make(map[types.ReplicaID]bool),
		Executed:          make([][]consensus.Execute, n),
		Evidence:          make([][]consensus.Evidence, n),
		StableCheckpoints: make([]types.SeqNum, n),
		execPending:       make([]map[types.SeqNum]consensus.Execute, n),
		execNext:          make([]types.SeqNum, n),
		stateDigest:       make([]types.Digest, n),
	}
	for i := 0; i < n; i++ {
		c.execPending[i] = make(map[types.SeqNum]consensus.Execute)
		c.execNext[i] = 1
	}
	return c
}

// Propose drives replica rep's engine to propose a batch.
func (c *Cluster) Propose(rep types.ReplicaID, reqs []types.ClientRequest) {
	if c.Down[rep] {
		return
	}
	acts := c.Engines[rep].Propose(reqs)
	c.handleActions(rep, acts)
}

// Timeout fires the view timer at replica rep.
func (c *Cluster) Timeout(rep types.ReplicaID) {
	if c.Down[rep] {
		return
	}
	c.handleActions(rep, c.Engines[rep].OnViewTimeout())
}

// Pending returns the number of undelivered messages.
func (c *Cluster) Pending() int { return len(c.queue) }

// Step delivers one message (random when Random is set, else FIFO) and
// processes the resulting actions. It reports false when no messages
// remain.
func (c *Cluster) Step() bool {
	for len(c.queue) > 0 {
		idx := 0
		if c.Random != nil {
			idx = c.Random.Intn(len(c.queue))
		}
		d := c.queue[idx]
		c.queue = append(c.queue[:idx], c.queue[idx+1:]...)

		if !d.To.IsReplica() {
			c.ToClients = append(c.ToClients, d)
			continue
		}
		rep := d.To.Replica()
		if c.Down[rep] {
			continue
		}
		acts := c.Engines[rep].OnMessage(d.From, d.Msg, nil)
		c.handleActions(rep, acts)
		return true
	}
	return false
}

// Run delivers messages until the network is quiet or maxSteps is hit.
func (c *Cluster) Run(maxSteps int) {
	for i := 0; i < maxSteps; i++ {
		if !c.Step() {
			return
		}
	}
}

func (c *Cluster) handleActions(rep types.ReplicaID, acts []consensus.Action) {
	from := types.ReplicaNode(rep)
	for _, a := range acts {
		switch act := a.(type) {
		case consensus.Broadcast:
			if c.Down[rep] {
				continue
			}
			for r := 0; r < c.N; r++ {
				if types.ReplicaID(r) == rep {
					continue
				}
				c.queue = append(c.queue, Delivery{From: from, To: types.ReplicaNode(types.ReplicaID(r)), Msg: act.Msg})
			}
		case consensus.Send:
			if c.Down[rep] {
				continue
			}
			c.queue = append(c.queue, Delivery{From: from, To: act.To, Msg: act.Msg})
		case consensus.Execute:
			c.execute(rep, act)
		case consensus.CheckpointStable:
			c.StableCheckpoints[rep] = act.Seq
		case consensus.Evidence:
			c.Evidence[rep] = append(c.Evidence[rep], act)
		case consensus.ViewChanged:
			// informational
		}
	}
}

// execute plays the execution layer: batches released out of order are
// reordered by sequence number, the state digest advances, and the engine
// is told about each completed execution (which triggers checkpoints).
func (c *Cluster) execute(rep types.ReplicaID, e consensus.Execute) {
	c.execPending[rep][e.Seq] = e
	for {
		next, ok := c.execPending[rep][c.execNext[rep]]
		if !ok {
			return
		}
		delete(c.execPending[rep], next.Seq)
		c.Executed[rep] = append(c.Executed[rep], next)
		c.stateDigest[rep] = crypto.HashChain(c.stateDigest[rep], next.Digest)
		c.execNext[rep]++
		acts := c.Engines[rep].OnExecuted(next.Seq, c.stateDigest[rep])
		c.handleActions(rep, acts)
	}
}

// ExecutedDigests returns the ordered batch digests executed by rep.
func (c *Cluster) ExecutedDigests(rep types.ReplicaID) []types.Digest {
	out := make([]types.Digest, len(c.Executed[rep]))
	for i, e := range c.Executed[rep] {
		out[i] = e.Digest
	}
	return out
}

// MakeRequest builds a small distinct client request for tests.
func MakeRequest(client types.ClientID, seq uint64) types.ClientRequest {
	return types.ClientRequest{
		Client:   client,
		FirstSeq: seq,
		Txns: []types.Transaction{{
			Client:    client,
			ClientSeq: seq,
			Ops:       []types.Op{{Key: seq, Value: []byte{byte(seq), byte(client)}}},
		}},
	}
}

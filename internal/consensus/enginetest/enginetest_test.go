package enginetest

import (
	"testing"

	"resilientdb/internal/consensus"
	"resilientdb/internal/types"
)

// fakeEngine records calls and emits scripted actions so the harness
// itself can be tested.
type fakeEngine struct {
	id       types.ReplicaID
	n        int
	received []types.Message
	onMsg    func(from types.NodeID, msg types.Message) []consensus.Action
}

func (f *fakeEngine) OnMessage(from types.NodeID, msg types.Message, _ []byte) []consensus.Action {
	f.received = append(f.received, msg)
	if f.onMsg != nil {
		return f.onMsg(from, msg)
	}
	return nil
}
func (f *fakeEngine) Propose(reqs []types.ClientRequest) []consensus.Action {
	return []consensus.Action{consensus.Broadcast{Msg: &types.PrePrepare{Seq: 1, Requests: reqs}}}
}
func (f *fakeEngine) OnExecuted(types.SeqNum, types.Digest) []consensus.Action { return nil }
func (f *fakeEngine) OnViewTimeout() []consensus.Action                        { return nil }
func (f *fakeEngine) View() types.View                                         { return 0 }
func (f *fakeEngine) IsPrimary() bool                                          { return f.id == 0 }
func (f *fakeEngine) Stats() consensus.EngineStats                             { return consensus.EngineStats{} }

func fakes(n int) ([]consensus.Engine, []*fakeEngine) {
	engines := make([]consensus.Engine, n)
	raw := make([]*fakeEngine, n)
	for i := range engines {
		raw[i] = &fakeEngine{id: types.ReplicaID(i), n: n}
		engines[i] = raw[i]
	}
	return engines, raw
}

func TestBroadcastExcludesSender(t *testing.T) {
	engines, raw := fakes(4)
	c := NewCluster(engines)
	c.Propose(0, []types.ClientRequest{MakeRequest(1, 1)})
	c.Run(100)
	if len(raw[0].received) != 0 {
		t.Fatal("broadcast looped back to the sender")
	}
	for i := 1; i < 4; i++ {
		if len(raw[i].received) != 1 {
			t.Fatalf("replica %d received %d messages, want 1", i, len(raw[i].received))
		}
	}
}

func TestDownReplicaIsolated(t *testing.T) {
	engines, raw := fakes(4)
	c := NewCluster(engines)
	c.Down[2] = true
	c.Propose(0, []types.ClientRequest{MakeRequest(1, 1)})
	c.Run(100)
	if len(raw[2].received) != 0 {
		t.Fatal("downed replica received traffic")
	}
	// A downed replica's own sends are also dropped.
	c.handleActions(2, []consensus.Action{consensus.Broadcast{Msg: &types.Prepare{Seq: 1}}})
	if c.Pending() != 0 {
		t.Fatal("downed replica's broadcast entered the network")
	}
}

func TestExecutionLayerReorders(t *testing.T) {
	engines, _ := fakes(4)
	c := NewCluster(engines)
	// Release executions out of order; the harness must deliver in order.
	c.handleActions(1, []consensus.Action{consensus.Execute{Seq: 2, Digest: types.Digest{2}}})
	if len(c.Executed[1]) != 0 {
		t.Fatal("executed seq 2 before seq 1")
	}
	c.handleActions(1, []consensus.Action{consensus.Execute{Seq: 1, Digest: types.Digest{1}}})
	if len(c.Executed[1]) != 2 {
		t.Fatalf("executed %d batches, want 2", len(c.Executed[1]))
	}
	if c.Executed[1][0].Seq != 1 || c.Executed[1][1].Seq != 2 {
		t.Fatalf("execution order broken: %v", c.ExecutedDigests(1))
	}
}

func TestClientDeliveriesCaptured(t *testing.T) {
	engines, _ := fakes(4)
	c := NewCluster(engines)
	c.handleActions(3, []consensus.Action{consensus.Send{
		To:  types.ClientNode(9),
		Msg: &types.ClientResponse{Client: 9, ClientSeq: 1},
	}})
	c.Run(100)
	if len(c.ToClients) != 1 || c.ToClients[0].To != types.ClientNode(9) {
		t.Fatalf("client delivery not captured: %+v", c.ToClients)
	}
}

func TestEvidenceCaptured(t *testing.T) {
	engines, raw := fakes(4)
	raw[1].onMsg = func(types.NodeID, types.Message) []consensus.Action {
		return []consensus.Action{consensus.Evidence{Culprit: 0, Detail: "equivocation"}}
	}
	c := NewCluster(engines)
	c.Propose(0, []types.ClientRequest{MakeRequest(1, 1)})
	c.Run(100)
	if len(c.Evidence[1]) != 1 || c.Evidence[1][0].Culprit != 0 {
		t.Fatalf("evidence not captured: %+v", c.Evidence[1])
	}
}

func TestMakeRequestDistinct(t *testing.T) {
	a := MakeRequest(1, 1)
	b := MakeRequest(1, 2)
	da := types.BatchDigest([]types.ClientRequest{a})
	db := types.BatchDigest([]types.ClientRequest{b})
	if da == db {
		t.Fatal("MakeRequest not distinct across sequence numbers")
	}
}

// Package pbft implements the Practical Byzantine Fault Tolerance protocol
// (Castro & Liskov, OSDI '99) as a pure consensus engine: the three-phase
// pre-prepare/prepare/commit flow of paper Figure 3, Δ-interval
// checkpointing with garbage collection (Section 4.7), watermark-bounded
// out-of-order instance pipelining (Section 4.5), and view changes.
//
// The engine deliberately supports many simultaneously open instances:
// consensus for sequence numbers k and k+1 may overlap or even complete
// out of order (Example 4.1). PBFT does not require a request to embed the
// digest of its predecessor — 2f matching prepares already pin the order —
// which is exactly what makes the fabric's parallel pipeline sound.
// In-order execution is restored downstream by the execution layer.
//
// # Concurrency
//
// The engine implements consensus.ConcurrentStepper: independent
// instances may be stepped from many worker lanes at once. Internally the
// state splits into a small single-lock control core — view, watermarks,
// view-change state — plus two lock-striped side tables: the per-sequence
// instance table and the checkpoint vote table. Per-sequence message
// steps (pre-prepare, prepare, commit) take the control lock in read mode
// plus one stripe lock, so steps for different sequence numbers run fully
// in parallel; checkpoint votes record under the read lock too, escalating
// to the write lock only when a vote completes a quorum; proposals run
// entirely under the read lock, reserving sequence numbers by CAS (the
// Propose fast path). Control transitions (checkpoint stabilization, view
// changes) take the control lock in write mode, which excludes every
// in-flight step. Observers (View, IsPrimary, Stats) read atomic mirrors
// and never contend with consensus.
package pbft

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"resilientdb/internal/consensus"
	"resilientdb/internal/types"
)

// Config parameterizes a PBFT engine.
type Config struct {
	// ID is this replica's identifier.
	ID types.ReplicaID
	// N is the number of replicas; it must satisfy n ≥ 3f+1.
	N int
	// CheckpointInterval is Δ: a checkpoint is generated after every Δ
	// executed batches. The paper generates checkpoints infrequently,
	// once per 10K transactions (Section 5.1).
	CheckpointInterval uint64
	// WatermarkWindow bounds how far consensus may run ahead of the last
	// stable checkpoint (the out-of-order pipelining depth).
	WatermarkWindow uint64
	// VerifyDigests makes the engine recompute batch digests of incoming
	// pre-prepares. Drivers that already verify digests (accounting the
	// cost where it belongs, in the worker or batch threads) leave this
	// off; adversarial tests switch it on.
	VerifyDigests bool
	// StartView and StartSeq boot the engine mid-stream: a recovering
	// replica that seeded its state from a peer's stable tail joins the
	// cluster's current view with its watermarks anchored at StartSeq —
	// it treats StartSeq like a locally adopted stable checkpoint, so
	// consensus opens instances only for sequence numbers above it. Both
	// default to zero, the fresh-boot state.
	StartView types.View
	StartSeq  types.SeqNum
}

func (c *Config) fill() {
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = 100
	}
	if c.WatermarkWindow == 0 {
		c.WatermarkWindow = 4096
	}
}

// instance is the per-sequence-number consensus state. Prepare and commit
// votes are bucketed by digest because messages routinely arrive before
// the pre-prepare that names the authoritative digest.
type instance struct {
	view       types.View
	digest     types.Digest
	havePP     bool
	isNull     bool
	requests   []types.ClientRequest
	prepares   map[types.Digest]map[types.ReplicaID]bool
	commits    map[types.Digest]map[types.ReplicaID][]byte
	sentCommit bool
	committed  bool
	released   bool // Execute action emitted
}

func newInstance() *instance {
	return &instance{
		prepares: make(map[types.Digest]map[types.ReplicaID]bool),
		commits:  make(map[types.Digest]map[types.ReplicaID][]byte),
	}
}

// numStripes shards the instance table; with a watermark window of 4096
// open instances, 64 stripes keep the expected lock collision rate between
// two lanes stepping different sequence numbers under 2%.
const numStripes = 64 // must be a power of two

// stripe owns the instances whose sequence number hashes to it. The stripe
// lock only ever nests inside the control lock (in either mode), and no
// two stripe locks are ever held at once.
type stripe struct {
	mu        sync.Mutex
	instances map[types.SeqNum]*instance
}

// inst returns the instance for seq, creating it if needed. The caller
// holds the stripe lock.
func (s *stripe) inst(seq types.SeqNum) *instance {
	in, ok := s.instances[seq]
	if !ok {
		in = newInstance()
		s.instances[seq] = in
	}
	return in
}

// ckptStripes shards the checkpoint vote table. Checkpoints are generated
// every Δ batches, so few sequence numbers are ever live at once; a small
// stripe count removes cross-checkpoint contention without bloat.
const ckptStripes = 8 // must be a power of two

// ckptTable is the checkpoint vote table (seq → digest → voters), striped
// by sequence number under its own locks so vote recording runs off the
// engine's control RWMutex. Lock order: a ckptTable stripe lock only ever
// nests inside the control lock (in either mode) and is never held
// together with an instance stripe lock.
type ckptTable struct {
	stripes [ckptStripes]struct {
		mu    sync.Mutex
		votes map[types.SeqNum]map[types.Digest]map[types.ReplicaID]bool
	}
}

func (c *ckptTable) stripeFor(seq types.SeqNum) *struct {
	mu    sync.Mutex
	votes map[types.SeqNum]map[types.Digest]map[types.ReplicaID]bool
} {
	return &c.stripes[uint64(seq)&(ckptStripes-1)]
}

// record adds one checkpoint vote and returns the resulting voter count
// for (seq, digest). Duplicate votes are idempotent.
func (c *ckptTable) record(seq types.SeqNum, digest types.Digest, from types.ReplicaID) int {
	s := c.stripeFor(seq)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.votes == nil {
		s.votes = make(map[types.SeqNum]map[types.Digest]map[types.ReplicaID]bool)
	}
	bySeq, ok := s.votes[seq]
	if !ok {
		bySeq = make(map[types.Digest]map[types.ReplicaID]bool)
		s.votes[seq] = bySeq
	}
	voters, ok := bySeq[digest]
	if !ok {
		voters = make(map[types.ReplicaID]bool)
		bySeq[digest] = voters
	}
	voters[from] = true
	return len(voters)
}

// prune garbage-collects votes at or below target.
func (c *ckptTable) prune(target types.SeqNum) {
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		for seq := range s.votes {
			if seq <= target {
				delete(s.votes, seq)
			}
		}
		s.mu.Unlock()
	}
}

// Engine is a PBFT replica state machine, safe for concurrent stepping of
// independent instances; see the package comment for the locking design.
type Engine struct {
	cfg Config
	f   int

	// mu is the control lock. Per-sequence steps hold it in read mode and
	// additionally lock the stripe owning their sequence number; control
	// transitions hold it in write mode, excluding every in-flight step.
	// Everything from here to `stripes` is control-core state: written
	// only under mu (write), readable under either mode.
	mu   sync.RWMutex
	view types.View

	// nextSeq is the last proposed sequence number (primary). Unlike the
	// rest of the control core it is an atomic: the Propose fast path
	// reserves sequence numbers by CAS under the *read* lock, so
	// batch-threads proposing concurrently never serialize on the control
	// write lock. View transitions and watermark advances store it under
	// the write lock, which excludes every CAS-ing reader.
	nextSeq  atomic.Uint64
	lowWater types.SeqNum // last locally-adopted stable checkpoint

	// executedSeq is the highest locally executed sequence number;
	// quorumStable the highest checkpoint with a 2f+1 quorum. The low
	// watermark advances to min(quorumStable, executedSeq): a lagging
	// replica never garbage-collects instances it has yet to execute,
	// which substitutes for full state transfer (see DESIGN.md).
	executedSeq  types.SeqNum
	quorumStable types.SeqNum

	// Checkpoint votes live in their own lock-striped table so that
	// recording a vote — the common case: most checkpoint messages do not
	// complete a quorum — runs under the control *read* lock, concurrent
	// with instance stepping. Only a vote that completes a quorum
	// escalates to the write lock to advance the watermark.
	ckpts ckptTable

	// View change state.
	inViewChange bool
	votedView    types.View
	viewChanges  map[types.View]map[types.ReplicaID]*types.ViewChange

	// stripes is the lock-striped per-sequence instance table.
	stripes [numStripes]stripe

	// Lock-free observer mirrors, refreshed under the write lock whenever
	// the canonical fields change.
	viewA    atomic.Uint64
	primaryA atomic.Bool

	// stats are atomic so Stats() never takes a lock (observability must
	// not contend with consensus).
	stats consensus.AtomicEngineStats
}

var _ consensus.ConcurrentStepper = (*Engine)(nil)

// New creates a PBFT engine.
func New(cfg Config) (*Engine, error) {
	cfg.fill()
	if cfg.N < 4 {
		return nil, fmt.Errorf("pbft: need n ≥ 4 replicas, got %d", cfg.N)
	}
	if int(cfg.ID) >= cfg.N {
		return nil, fmt.Errorf("pbft: replica id %d out of range for n=%d", cfg.ID, cfg.N)
	}
	e := &Engine{
		cfg:         cfg,
		f:           consensus.MaxFaults(cfg.N),
		viewChanges: make(map[types.View]map[types.ReplicaID]*types.ViewChange),
	}
	for i := range e.stripes {
		e.stripes[i].instances = make(map[types.SeqNum]*instance)
	}
	// Mid-stream boot (recovery): StartSeq acts as the locally adopted
	// stable checkpoint, so the watermark window opens above it and the
	// primary's next proposal is StartSeq+1.
	e.view = cfg.StartView
	e.votedView = cfg.StartView
	e.lowWater = cfg.StartSeq
	e.executedSeq = cfg.StartSeq
	e.quorumStable = cfg.StartSeq
	e.nextSeq.Store(uint64(cfg.StartSeq))
	e.viewA.Store(uint64(cfg.StartView))
	e.primaryA.Store(consensus.PrimaryOf(cfg.StartView, cfg.N) == cfg.ID)
	return e, nil
}

// ConcurrentStepping implements consensus.ConcurrentStepper.
func (e *Engine) ConcurrentStepping() {}

// View implements consensus.Engine; it is lock-free.
func (e *Engine) View() types.View { return types.View(e.viewA.Load()) }

// IsPrimary implements consensus.Engine; it is lock-free.
func (e *Engine) IsPrimary() bool { return e.primaryA.Load() }

// isPrimaryLocked is the canonical primary check used inside locked
// sections (the atomic mirror may lag by a step during transitions).
func (e *Engine) isPrimaryLocked() bool {
	return consensus.PrimaryOf(e.view, e.cfg.N) == e.cfg.ID && !e.inViewChange
}

// refreshMirrors republishes the lock-free observer mirrors; the caller
// holds the write lock.
func (e *Engine) refreshMirrors() {
	e.viewA.Store(uint64(e.view))
	e.primaryA.Store(e.isPrimaryLocked())
}

// Stats implements consensus.Engine; it is lock-free.
func (e *Engine) Stats() consensus.EngineStats { return e.stats.Snapshot() }

// LastProposed implements consensus.ProposalHeader: the highest sequence
// number this engine has proposed (primary) or adopted from view-change
// and checkpoint sync. It is lock-free.
func (e *Engine) LastProposed() types.SeqNum { return types.SeqNum(e.nextSeq.Load()) }

// LowWatermark returns the last stable checkpoint sequence number.
func (e *Engine) LowWatermark() types.SeqNum {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.lowWater
}

// OpenInstances returns the number of live consensus instances; tests use
// it to verify checkpoint garbage collection.
func (e *Engine) OpenInstances() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	n := 0
	for i := range e.stripes {
		s := &e.stripes[i]
		s.mu.Lock()
		n += len(s.instances)
		s.mu.Unlock()
	}
	return n
}

func (e *Engine) inWindow(seq types.SeqNum) bool {
	return seq > e.lowWater && uint64(seq) <= uint64(e.lowWater)+e.cfg.WatermarkWindow
}

func (e *Engine) stripeFor(seq types.SeqNum) *stripe {
	return &e.stripes[uint64(seq)&(numStripes-1)]
}

// Propose implements consensus.Engine. It assigns the next sequence number
// to the batch and broadcasts the pre-prepare. A nil return with no side
// effects means the engine refused (not primary, mid view change, or
// window full) and the caller should retry later.
//
// This is the fast path off the control write lock: when view and
// watermark state are unchanged — the steady state — the whole proposal
// runs under the read lock, reserving the sequence number by CAS, so
// concurrent batch-threads neither serialize on each other nor stall
// every in-flight instance step the way a write-lock acquisition would.
// View changes and watermark advances still exclude proposals entirely
// (they hold the write lock while mutating nextSeq).
func (e *Engine) Propose(reqs []types.ClientRequest) []consensus.Action {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if !e.isPrimaryLocked() {
		return nil
	}
	var seq types.SeqNum
	for {
		cur := e.nextSeq.Load()
		seq = types.SeqNum(cur + 1)
		if !e.inWindow(seq) {
			return nil
		}
		if e.nextSeq.CompareAndSwap(cur, cur+1) {
			break // reserved; no return path below abandons the number
		}
	}
	e.stats.Proposed.Add(1)

	pp := &types.PrePrepare{
		View:     e.view,
		Seq:      seq,
		Digest:   types.BatchDigest(reqs),
		Requests: reqs,
	}
	s := e.stripeFor(seq)
	s.mu.Lock()
	in := s.inst(seq)
	in.view = e.view
	in.digest = pp.Digest
	in.havePP = true
	in.requests = reqs
	s.mu.Unlock()
	return []consensus.Action{consensus.Broadcast{Msg: pp}}
}

// OnMessage implements consensus.Engine. Per-sequence traffic
// (pre-prepare, prepare, commit) steps under the read lock so independent
// instances proceed in parallel; checkpoint and view-change traffic
// mutates the control core and steps exclusively.
func (e *Engine) OnMessage(from types.NodeID, msg types.Message, auth []byte) []consensus.Action {
	if !from.IsReplica() {
		e.stats.Dropped.Add(1)
		return nil
	}
	rep := from.Replica()
	switch m := msg.(type) {
	case *types.PrePrepare:
		e.mu.RLock()
		defer e.mu.RUnlock()
		return e.onPrePrepare(rep, m)
	case *types.Prepare:
		e.mu.RLock()
		defer e.mu.RUnlock()
		return e.onPrepare(rep, m)
	case *types.Commit:
		e.mu.RLock()
		defer e.mu.RUnlock()
		return e.onCommit(rep, m, auth)
	case *types.Checkpoint:
		return e.onCheckpoint(rep, m)
	case *types.ViewChange:
		e.mu.Lock()
		defer e.mu.Unlock()
		return e.onViewChange(rep, m)
	case *types.NewView:
		e.mu.Lock()
		defer e.mu.Unlock()
		return e.onNewView(rep, m)
	default:
		e.stats.Dropped.Add(1)
		return nil
	}
}

// onPrePrepare runs with the control lock held in at least read mode (the
// new-view path re-enters it under the write lock).
func (e *Engine) onPrePrepare(from types.ReplicaID, m *types.PrePrepare) []consensus.Action {
	if m.View != e.view || e.inViewChange || !e.inWindow(m.Seq) {
		e.stats.Dropped.Add(1)
		return nil
	}
	if from != consensus.PrimaryOf(e.view, e.cfg.N) {
		e.stats.Dropped.Add(1)
		return []consensus.Action{consensus.Evidence{
			Culprit: from,
			Detail:  fmt.Sprintf("pre-prepare for view %d from non-primary %d", m.View, from),
		}}
	}
	if e.cfg.VerifyDigests && len(m.Requests) > 0 && types.BatchDigest(m.Requests) != m.Digest {
		e.stats.Dropped.Add(1)
		return []consensus.Action{consensus.Evidence{
			Culprit: from,
			Detail:  fmt.Sprintf("pre-prepare digest mismatch at seq %d", m.Seq),
		}}
	}

	s := e.stripeFor(m.Seq)
	s.mu.Lock()
	defer s.mu.Unlock()
	in := s.inst(m.Seq)
	if in.havePP {
		if in.digest != m.Digest {
			// The primary proposed two different batches for one sequence
			// number: equivocation.
			return []consensus.Action{consensus.Evidence{
				Culprit: from,
				Detail:  fmt.Sprintf("equivocating pre-prepares at seq %d", m.Seq),
			}}
		}
		e.stats.Dropped.Add(1) // duplicate
		return nil
	}
	in.view = m.View
	in.digest = m.Digest
	in.havePP = true
	in.isNull = m.Digest == types.Digest{} && len(m.Requests) == 0
	in.requests = m.Requests

	var acts []consensus.Action
	if e.cfg.ID != consensus.PrimaryOf(e.view, e.cfg.N) {
		// Backups vote; the primary's pre-prepare stands as its prepare.
		p := &types.Prepare{View: m.View, Seq: m.Seq, Digest: m.Digest, Replica: e.cfg.ID}
		recordPrepare(in, e.cfg.ID, m.Digest)
		acts = append(acts, consensus.Broadcast{Msg: p})
	}
	return append(acts, e.advance(m.Seq, in)...)
}

// recordPrepare adds a prepare vote; the caller holds the instance's
// stripe lock.
func recordPrepare(in *instance, from types.ReplicaID, d types.Digest) {
	voters, ok := in.prepares[d]
	if !ok {
		voters = make(map[types.ReplicaID]bool)
		in.prepares[d] = voters
	}
	voters[from] = true
}

func (e *Engine) onPrepare(from types.ReplicaID, m *types.Prepare) []consensus.Action {
	if m.View != e.view || e.inViewChange || !e.inWindow(m.Seq) {
		e.stats.Dropped.Add(1)
		return nil
	}
	if m.Replica != from {
		e.stats.Dropped.Add(1)
		return nil
	}
	s := e.stripeFor(m.Seq)
	s.mu.Lock()
	defer s.mu.Unlock()
	in := s.inst(m.Seq)
	recordPrepare(in, from, m.Digest)
	return e.advance(m.Seq, in)
}

func (e *Engine) onCommit(from types.ReplicaID, m *types.Commit, auth []byte) []consensus.Action {
	if m.View != e.view || e.inViewChange || !e.inWindow(m.Seq) {
		e.stats.Dropped.Add(1)
		return nil
	}
	if m.Replica != from {
		e.stats.Dropped.Add(1)
		return nil
	}
	s := e.stripeFor(m.Seq)
	s.mu.Lock()
	defer s.mu.Unlock()
	in := s.inst(m.Seq)
	voters, ok := in.commits[m.Digest]
	if !ok {
		voters = make(map[types.ReplicaID][]byte)
		in.commits[m.Digest] = voters
	}
	if _, dup := voters[from]; !dup {
		voters[from] = auth
	}
	return e.advance(m.Seq, in)
}

// advance fires the prepared→commit and committed→execute transitions of
// an instance whenever new state makes them possible. The caller holds the
// instance's stripe lock.
func (e *Engine) advance(seq types.SeqNum, in *instance) []consensus.Action {
	var acts []consensus.Action
	if !in.havePP {
		return nil
	}
	// Prepared: pre-prepare plus 2f prepares matching its digest.
	if !in.sentCommit && len(in.prepares[in.digest]) >= consensus.Quorum2f(e.cfg.N) {
		in.sentCommit = true
		c := &types.Commit{View: in.view, Seq: seq, Digest: in.digest, Replica: e.cfg.ID}
		// Record our own commit vote.
		voters, ok := in.commits[in.digest]
		if !ok {
			voters = make(map[types.ReplicaID][]byte)
			in.commits[in.digest] = voters
		}
		voters[e.cfg.ID] = nil
		acts = append(acts, consensus.Broadcast{Msg: c})
	}
	// Committed: 2f+1 commits matching the pre-prepare digest.
	if in.sentCommit && !in.released && len(in.commits[in.digest]) >= consensus.Quorum2f1(e.cfg.N) {
		in.committed = true
		in.released = true
		e.stats.Executed.Add(1)
		acts = append(acts, consensus.Execute{
			Seq:      seq,
			View:     in.view,
			Digest:   in.digest,
			Requests: in.requests,
			Proof:    commitProof(in),
		})
	}
	return acts
}

// commitProof deterministically assembles the block's commit certificate
// from the recorded commit votes (Section 4.6: the 2f+1 commit signatures
// replace the previous-block hash).
func commitProof(in *instance) []types.CommitSig {
	voters := in.commits[in.digest]
	ids := make([]types.ReplicaID, 0, len(voters))
	for id := range voters {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	proof := make([]types.CommitSig, len(ids))
	for i, id := range ids {
		proof[i] = types.CommitSig{Replica: id, Auth: voters[id]}
	}
	return proof
}

// OnExecuted implements consensus.Engine: after every Δ-th batch the
// replica broadcasts a checkpoint carrying its state digest.
func (e *Engine) OnExecuted(seq types.SeqNum, stateDigest types.Digest) []consensus.Action {
	e.mu.Lock()
	defer e.mu.Unlock()
	if seq > e.executedSeq {
		e.executedSeq = seq
	}
	if uint64(seq)%e.cfg.CheckpointInterval != 0 {
		return e.advanceLowWater()
	}
	cp := &types.Checkpoint{Seq: seq, StateDigest: stateDigest, Replica: e.cfg.ID}
	acts := e.recordCheckpoint(e.cfg.ID, cp)
	return append([]consensus.Action{consensus.Broadcast{Msg: cp}}, acts...)
}

// onCheckpoint takes the locks itself: the common case — a vote that does
// not complete a quorum — records under the control read lock plus a vote
// stripe, fully concurrent with instance stepping and proposals. Only a
// quorum-completing vote escalates to the write lock.
func (e *Engine) onCheckpoint(from types.ReplicaID, m *types.Checkpoint) []consensus.Action {
	if m.Replica != from {
		e.stats.Dropped.Add(1)
		return nil
	}
	e.mu.RLock()
	stale := m.Seq <= e.lowWater
	quorum := false
	if !stale {
		quorum = e.ckpts.record(m.Seq, m.StateDigest, from) >= consensus.Quorum2f1(e.cfg.N)
	}
	e.mu.RUnlock()
	if stale || !quorum {
		return nil // already stable, or not yet a quorum
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	// Re-recording under the write lock is idempotent; a concurrent
	// stabilization of the same (or a newer) checkpoint makes the advance
	// below a no-op.
	return e.recordCheckpoint(from, m)
}

// recordCheckpoint runs under the write lock: record the vote and, on
// quorum, advance the low watermark. OnExecuted (which already holds the
// write lock for executedSeq) calls it directly for the local vote.
func (e *Engine) recordCheckpoint(from types.ReplicaID, m *types.Checkpoint) []consensus.Action {
	if m.Seq <= e.lowWater {
		return nil // already stable
	}
	if e.ckpts.record(m.Seq, m.StateDigest, from) < consensus.Quorum2f1(e.cfg.N) {
		return nil
	}
	if m.Seq > e.quorumStable {
		e.quorumStable = m.Seq
	}
	return e.advanceLowWater()
}

// advanceLowWater moves the low watermark to the newest quorum-stable
// checkpoint this replica has itself executed, and garbage collects
// everything at or below it (Section 4.7). The caller holds the write
// lock.
func (e *Engine) advanceLowWater() []consensus.Action {
	target := e.quorumStable
	if executedCk := types.SeqNum(uint64(e.executedSeq) / e.cfg.CheckpointInterval * e.cfg.CheckpointInterval); executedCk < target {
		// Quantize to checkpoint boundaries: never past local execution.
		target = executedCk
	}
	if target <= e.lowWater {
		return nil
	}
	e.lowWater = target
	e.stats.Checkpoints.Add(1)
	for i := range e.stripes {
		s := &e.stripes[i]
		s.mu.Lock()
		for seq := range s.instances {
			if seq <= target {
				delete(s.instances, seq)
			}
		}
		s.mu.Unlock()
	}
	e.ckpts.prune(target)
	if types.SeqNum(e.nextSeq.Load()) < target {
		// A lagging former primary must not re-propose old numbers.
		e.nextSeq.Store(uint64(target))
	}
	return []consensus.Action{consensus.CheckpointStable{Seq: target}}
}

// ---- View change ----

// OnViewTimeout implements consensus.Engine: abandon the current view and
// vote to move to the next.
func (e *Engine) OnViewTimeout() []consensus.Action {
	e.mu.Lock()
	defer e.mu.Unlock()
	target := e.view + 1
	if e.votedView >= target {
		target = e.votedView + 1
	}
	return e.startViewChange(target)
}

// startViewChange runs under the write lock.
func (e *Engine) startViewChange(target types.View) []consensus.Action {
	e.inViewChange = true
	e.votedView = target
	e.refreshMirrors() // a primary mid view change stops leading
	vc := &types.ViewChange{
		NewView:   target,
		StableSeq: e.lowWater,
		Prepared:  e.preparedProofs(),
		Replica:   e.cfg.ID,
	}
	acts := []consensus.Action{consensus.Broadcast{Msg: vc}}
	return append(acts, e.recordViewChange(e.cfg.ID, vc)...)
}

// preparedProofs collects, for every instance prepared beyond the stable
// checkpoint, the pre-prepare metadata and its 2f prepare votes. It runs
// under the write lock.
func (e *Engine) preparedProofs() []types.PreparedProof {
	var proofs []types.PreparedProof
	for i := range e.stripes {
		s := &e.stripes[i]
		s.mu.Lock()
		for seq, in := range s.instances {
			if !in.havePP || len(in.prepares[in.digest]) < consensus.Quorum2f(e.cfg.N) {
				continue
			}
			var votes []types.Prepare
			for id := range in.prepares[in.digest] {
				votes = append(votes, types.Prepare{View: in.view, Seq: seq, Digest: in.digest, Replica: id})
			}
			sort.Slice(votes, func(i, j int) bool { return votes[i].Replica < votes[j].Replica })
			proofs = append(proofs, types.PreparedProof{
				View: in.view, Seq: seq, Digest: in.digest, Prepares: votes,
			})
		}
		s.mu.Unlock()
	}
	sort.Slice(proofs, func(i, j int) bool { return proofs[i].Seq < proofs[j].Seq })
	return proofs
}

func (e *Engine) onViewChange(from types.ReplicaID, m *types.ViewChange) []consensus.Action {
	if m.Replica != from || m.NewView <= e.view {
		e.stats.Dropped.Add(1)
		return nil
	}
	return e.recordViewChange(from, m)
}

// recordViewChange runs under the write lock.
func (e *Engine) recordViewChange(from types.ReplicaID, m *types.ViewChange) []consensus.Action {
	votes, ok := e.viewChanges[m.NewView]
	if !ok {
		votes = make(map[types.ReplicaID]*types.ViewChange)
		e.viewChanges[m.NewView] = votes
	}
	votes[from] = m

	var acts []consensus.Action
	// An honest replica that sees f+1 votes for a higher view joins the
	// view change even without its own timeout (standard PBFT liveness).
	if !e.inViewChange && len(votes) > e.f && m.NewView > e.votedView {
		acts = append(acts, e.startViewChange(m.NewView)...)
		votes = e.viewChanges[m.NewView]
	}
	if consensus.PrimaryOf(m.NewView, e.cfg.N) != e.cfg.ID {
		return acts
	}
	if len(votes) < consensus.Quorum2f1(e.cfg.N) || e.view >= m.NewView {
		return acts
	}
	// This replica leads the new view: build and broadcast the NewView.
	nv := e.buildNewView(m.NewView, votes)
	acts = append(acts, consensus.Broadcast{Msg: nv})
	acts = append(acts, e.enterNewView(nv)...)
	return acts
}

// buildNewView assembles the proof of the view change plus re-proposals
// for every batch that prepared anywhere beyond the stable checkpoint.
// Gaps are filled with null requests so sequence numbers stay dense. It
// runs under the write lock.
func (e *Engine) buildNewView(v types.View, votes map[types.ReplicaID]*types.ViewChange) *types.NewView {
	var vcs []types.ViewChange
	maxStable := types.SeqNum(0)
	type chosen struct {
		view   types.View
		digest types.Digest
	}
	best := make(map[types.SeqNum]chosen)
	var maxSeq types.SeqNum

	ids := make([]types.ReplicaID, 0, len(votes))
	for id := range votes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		vc := votes[id]
		vcs = append(vcs, *vc)
		if vc.StableSeq > maxStable {
			maxStable = vc.StableSeq
		}
		for _, p := range vc.Prepared {
			if cur, ok := best[p.Seq]; !ok || p.View > cur.view {
				best[p.Seq] = chosen{view: p.View, digest: p.Digest}
			}
			if p.Seq > maxSeq {
				maxSeq = p.Seq
			}
		}
	}

	var pps []types.PrePrepare
	for seq := maxStable + 1; seq <= maxSeq; seq++ {
		pp := types.PrePrepare{View: v, Seq: seq}
		if c, ok := best[seq]; ok {
			pp.Digest = c.digest
			// Attach the payload when this replica has it cached so
			// backups missing the original pre-prepare can still execute.
			s := e.stripeFor(seq)
			s.mu.Lock()
			if in, ok := s.instances[seq]; ok && in.havePP && in.digest == c.digest {
				pp.Requests = in.requests
			}
			s.mu.Unlock()
		}
		pps = append(pps, pp)
	}
	return &types.NewView{View: v, ViewChanges: vcs, PrePrepares: pps}
}

func (e *Engine) onNewView(from types.ReplicaID, m *types.NewView) []consensus.Action {
	if m.View <= e.view || from != consensus.PrimaryOf(m.View, e.cfg.N) {
		e.stats.Dropped.Add(1)
		return nil
	}
	if len(m.ViewChanges) < consensus.Quorum2f1(e.cfg.N) {
		e.stats.Dropped.Add(1)
		return []consensus.Action{consensus.Evidence{
			Culprit: from,
			Detail:  fmt.Sprintf("new-view for %d with %d < quorum view-changes", m.View, len(m.ViewChanges)),
		}}
	}
	seen := make(map[types.ReplicaID]bool)
	for i := range m.ViewChanges {
		vc := &m.ViewChanges[i]
		if vc.NewView != m.View || seen[vc.Replica] {
			e.stats.Dropped.Add(1)
			return nil
		}
		seen[vc.Replica] = true
	}
	acts := e.enterNewView(m)
	// Backups re-run the prepare phase for every re-proposed batch.
	for i := range m.PrePrepares {
		pp := m.PrePrepares[i]
		acts = append(acts, e.onPrePrepare(from, &pp)...)
	}
	return acts
}

// enterNewView installs the new view and resets per-view state. The new
// primary also installs its own re-proposals. It runs under the write
// lock.
func (e *Engine) enterNewView(nv *types.NewView) []consensus.Action {
	e.view = nv.View
	e.inViewChange = false
	e.stats.ViewChanges.Add(1)
	// Instances from older views are superseded by the re-proposals.
	for i := range e.stripes {
		s := &e.stripes[i]
		s.mu.Lock()
		for seq, in := range s.instances {
			if in.view < nv.View && !in.released {
				delete(s.instances, seq)
			}
		}
		s.mu.Unlock()
	}
	delete(e.viewChanges, nv.View)

	acts := []consensus.Action{consensus.ViewChanged{View: nv.View}}
	if consensus.PrimaryOf(nv.View, e.cfg.N) == e.cfg.ID {
		maxSeq := e.lowWater
		for i := range nv.PrePrepares {
			pp := &nv.PrePrepares[i]
			if pp.Seq > maxSeq {
				maxSeq = pp.Seq
			}
			s := e.stripeFor(pp.Seq)
			s.mu.Lock()
			in := s.inst(pp.Seq)
			in.view = nv.View
			in.digest = pp.Digest
			in.havePP = true
			in.isNull = pp.Digest == types.Digest{}
			in.requests = pp.Requests
			s.mu.Unlock()
		}
		if types.SeqNum(e.nextSeq.Load()) < maxSeq {
			e.nextSeq.Store(uint64(maxSeq))
		}
		if types.SeqNum(e.nextSeq.Load()) < e.lowWater {
			e.nextSeq.Store(uint64(e.lowWater))
		}
	}
	e.refreshMirrors()
	return acts
}

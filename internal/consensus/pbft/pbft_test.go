package pbft

import (
	"math/rand"
	"testing"
	"testing/quick"

	"resilientdb/internal/consensus"
	"resilientdb/internal/consensus/enginetest"
	"resilientdb/internal/types"
)

func newCluster(t testing.TB, n int, cfg func(*Config)) *enginetest.Cluster {
	t.Helper()
	engines := make([]consensus.Engine, n)
	for i := 0; i < n; i++ {
		c := Config{ID: types.ReplicaID(i), N: n}
		if cfg != nil {
			cfg(&c)
		}
		e, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}
	return enginetest.NewCluster(engines)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{ID: 0, N: 3}); err == nil {
		t.Fatal("accepted n=3")
	}
	if _, err := New(Config{ID: 9, N: 4}); err == nil {
		t.Fatal("accepted out-of-range id")
	}
	e, err := New(Config{ID: 0, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !e.IsPrimary() {
		t.Fatal("replica 0 should lead view 0")
	}
	if e.View() != 0 {
		t.Fatalf("View = %d", e.View())
	}
}

func TestOnlyPrimaryProposes(t *testing.T) {
	c := newCluster(t, 4, nil)
	if acts := c.Engines[1].Propose([]types.ClientRequest{enginetest.MakeRequest(1, 1)}); acts != nil {
		t.Fatal("backup proposed")
	}
}

func TestSingleBatchConsensus(t *testing.T) {
	c := newCluster(t, 4, nil)
	req := enginetest.MakeRequest(1, 1)
	c.Propose(0, []types.ClientRequest{req})
	c.Run(10000)

	want := types.BatchDigest([]types.ClientRequest{req})
	for r := 0; r < 4; r++ {
		got := c.ExecutedDigests(types.ReplicaID(r))
		if len(got) != 1 || got[0] != want {
			t.Fatalf("replica %d executed %d batches (digest match=%v)", r, len(got), len(got) == 1 && got[0] == want)
		}
		ex := c.Executed[types.ReplicaID(r)][0]
		if len(ex.Proof) < consensus.Quorum2f1(4) {
			t.Fatalf("replica %d proof has %d signatures", r, len(ex.Proof))
		}
		if ex.Seq != 1 {
			t.Fatalf("replica %d executed seq %d", r, ex.Seq)
		}
	}
}

func TestManyBatchesAllReplicasAgree(t *testing.T) {
	c := newCluster(t, 4, nil)
	const batches = 50
	for i := 1; i <= batches; i++ {
		c.Propose(0, []types.ClientRequest{enginetest.MakeRequest(1, uint64(i))})
	}
	c.Run(1_000_000)
	ref := c.ExecutedDigests(0)
	if len(ref) != batches {
		t.Fatalf("primary executed %d/%d", len(ref), batches)
	}
	for r := 1; r < 4; r++ {
		got := c.ExecutedDigests(types.ReplicaID(r))
		if len(got) != batches {
			t.Fatalf("replica %d executed %d/%d", r, len(got), batches)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("replica %d diverges at batch %d", r, i)
			}
		}
	}
}

// TestAgreementUnderRandomDelivery is the core safety property test:
// whatever order the network delivers messages in, all replicas execute
// identical sequences. Prepares and commits routinely overtake their
// pre-prepares here, exercising the digest-bucketed vote buffering.
func TestAgreementUnderRandomDelivery(t *testing.T) {
	f := func(seed int64) bool {
		c := newCluster(t, 4, nil)
		c.Random = rand.New(rand.NewSource(seed))
		const batches = 20
		for i := 1; i <= batches; i++ {
			c.Propose(0, []types.ClientRequest{enginetest.MakeRequest(1, uint64(i))})
		}
		c.Run(1_000_000)
		ref := c.ExecutedDigests(0)
		if len(ref) != batches {
			return false
		}
		for r := 1; r < 4; r++ {
			got := c.ExecutedDigests(types.ReplicaID(r))
			if len(got) != batches {
				return false
			}
			for i := range ref {
				if got[i] != ref[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfOrderInstancesOverlap(t *testing.T) {
	// Propose several batches before delivering anything: instances for
	// seq 1..5 all open concurrently (Section 4.5), and random delivery
	// completes them out of order; execution must still be sequential.
	c := newCluster(t, 7, nil)
	c.Random = rand.New(rand.NewSource(42))
	for i := 1; i <= 5; i++ {
		c.Propose(0, []types.ClientRequest{enginetest.MakeRequest(1, uint64(i))})
	}
	c.Run(1_000_000)
	for r := 0; r < 7; r++ {
		ex := c.Executed[types.ReplicaID(r)]
		if len(ex) != 5 {
			t.Fatalf("replica %d executed %d/5", r, len(ex))
		}
		for i, e := range ex {
			if e.Seq != types.SeqNum(i+1) {
				t.Fatalf("replica %d executed seq %d at position %d", r, e.Seq, i)
			}
		}
	}
}

func TestSurvivesBackupFailures(t *testing.T) {
	// n=16 tolerates f=5 crashed backups (the Section 5.10 experiment).
	c := newCluster(t, 16, nil)
	for i := 1; i <= 5; i++ {
		c.Down[types.ReplicaID(i)] = true
	}
	const batches = 10
	for i := 1; i <= batches; i++ {
		c.Propose(0, []types.ClientRequest{enginetest.MakeRequest(1, uint64(i))})
	}
	c.Run(1_000_000)
	for r := 6; r < 16; r++ {
		if got := len(c.ExecutedDigests(types.ReplicaID(r))); got != batches {
			t.Fatalf("replica %d executed %d/%d with f backups down", r, got, batches)
		}
	}
}

func TestTooManyFailuresStall(t *testing.T) {
	// With f+1 = 2 of 4 replicas down, no batch can gather a quorum.
	c := newCluster(t, 4, nil)
	c.Down[1] = true
	c.Down[2] = true
	c.Propose(0, []types.ClientRequest{enginetest.MakeRequest(1, 1)})
	c.Run(100_000)
	if got := len(c.ExecutedDigests(0)); got != 0 {
		t.Fatalf("executed %d batches beyond fault tolerance", got)
	}
}

func TestCheckpointGarbageCollection(t *testing.T) {
	c := newCluster(t, 4, func(cfg *Config) { cfg.CheckpointInterval = 10 })
	const batches = 35
	for i := 1; i <= batches; i++ {
		c.Propose(0, []types.ClientRequest{enginetest.MakeRequest(1, uint64(i))})
	}
	c.Run(1_000_000)
	for r := 0; r < 4; r++ {
		e := c.Engines[types.ReplicaID(r)].(*Engine)
		if e.LowWatermark() != 30 {
			t.Fatalf("replica %d low watermark %d, want 30", r, e.LowWatermark())
		}
		if c.StableCheckpoints[types.ReplicaID(r)] != 30 {
			t.Fatalf("replica %d stable checkpoint %d", r, c.StableCheckpoints[types.ReplicaID(r)])
		}
		// Instances ≤ 30 must be garbage collected: only 31..35 remain.
		if open := e.OpenInstances(); open > 5 {
			t.Fatalf("replica %d retains %d instances after GC", r, open)
		}
		if s := e.Stats(); s.Checkpoints != 3 {
			t.Fatalf("replica %d reached %d stable checkpoints, want 3", r, s.Checkpoints)
		}
	}
}

func TestWatermarkWindowBoundsPipelining(t *testing.T) {
	c := newCluster(t, 4, func(cfg *Config) { cfg.WatermarkWindow = 3; cfg.CheckpointInterval = 2 })
	// Without deliveries, the primary may only open 3 instances.
	for i := 1; i <= 5; i++ {
		c.Propose(0, []types.ClientRequest{enginetest.MakeRequest(1, uint64(i))})
	}
	e := c.Engines[0].(*Engine)
	if got := e.Stats().Proposed; got != 3 {
		t.Fatalf("proposed %d batches with window 3", got)
	}
	// After the network drains (checkpoints advance the watermark), more
	// proposals fit.
	c.Run(1_000_000)
	c.Propose(0, []types.ClientRequest{enginetest.MakeRequest(1, 99)})
	if got := e.Stats().Proposed; got != 4 {
		t.Fatalf("proposed %d batches after drain", got)
	}
}

func TestEquivocatingPrimaryDetected(t *testing.T) {
	backup, err := New(Config{ID: 1, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	r1 := enginetest.MakeRequest(1, 1)
	r2 := enginetest.MakeRequest(2, 9)
	pp1 := &types.PrePrepare{View: 0, Seq: 1, Digest: types.BatchDigest([]types.ClientRequest{r1}), Requests: []types.ClientRequest{r1}}
	pp2 := &types.PrePrepare{View: 0, Seq: 1, Digest: types.BatchDigest([]types.ClientRequest{r2}), Requests: []types.ClientRequest{r2}}

	backup.OnMessage(types.ReplicaNode(0), pp1, nil)
	acts := backup.OnMessage(types.ReplicaNode(0), pp2, nil)
	var found bool
	for _, a := range acts {
		if ev, ok := a.(consensus.Evidence); ok && ev.Culprit == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("conflicting pre-prepares produced no evidence")
	}
}

func TestRejectsForgedDigest(t *testing.T) {
	backup, err := New(Config{ID: 1, N: 4, VerifyDigests: true})
	if err != nil {
		t.Fatal(err)
	}
	req := enginetest.MakeRequest(1, 1)
	pp := &types.PrePrepare{View: 0, Seq: 1, Digest: types.Digest{0xBA, 0xD0}, Requests: []types.ClientRequest{req}}
	acts := backup.OnMessage(types.ReplicaNode(0), pp, nil)
	for _, a := range acts {
		if _, ok := a.(consensus.Broadcast); ok {
			t.Fatal("backup prepared a forged-digest pre-prepare")
		}
	}
}

func TestRejectsPrePrepareFromNonPrimary(t *testing.T) {
	backup, err := New(Config{ID: 1, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	req := enginetest.MakeRequest(1, 1)
	pp := &types.PrePrepare{View: 0, Seq: 1, Digest: types.BatchDigest([]types.ClientRequest{req}), Requests: []types.ClientRequest{req}}
	acts := backup.OnMessage(types.ReplicaNode(2), pp, nil) // 2 is not primary of view 0
	for _, a := range acts {
		if _, ok := a.(consensus.Broadcast); ok {
			t.Fatal("accepted pre-prepare from non-primary")
		}
	}
}

func TestDuplicateVotesDoNotDoubleCount(t *testing.T) {
	e, err := New(Config{ID: 0, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	req := enginetest.MakeRequest(1, 1)
	e.Propose([]types.ClientRequest{req})
	d := types.BatchDigest([]types.ClientRequest{req})
	// One backup repeats its prepare; quorum (2f = 2 distinct) must not fire.
	p := &types.Prepare{View: 0, Seq: 1, Digest: d, Replica: 1}
	for i := 0; i < 5; i++ {
		acts := e.OnMessage(types.ReplicaNode(1), p, nil)
		for _, a := range acts {
			if b, ok := a.(consensus.Broadcast); ok {
				if _, isCommit := b.Msg.(*types.Commit); isCommit {
					t.Fatal("commit fired on duplicate prepares from one replica")
				}
			}
		}
	}
	// A second distinct backup completes the quorum.
	p2 := &types.Prepare{View: 0, Seq: 1, Digest: d, Replica: 2}
	acts := e.OnMessage(types.ReplicaNode(2), p2, nil)
	committed := false
	for _, a := range acts {
		if b, ok := a.(consensus.Broadcast); ok {
			if _, isCommit := b.Msg.(*types.Commit); isCommit {
				committed = true
			}
		}
	}
	if !committed {
		t.Fatal("commit did not fire at 2f distinct prepares")
	}
}

func TestStaleViewMessagesDropped(t *testing.T) {
	e, err := New(Config{ID: 1, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := &types.Prepare{View: 7, Seq: 1, Digest: types.Digest{1}, Replica: 2}
	e.OnMessage(types.ReplicaNode(2), p, nil)
	if e.Stats().Dropped == 0 {
		t.Fatal("future-view prepare was not dropped")
	}
}

func TestViewChangeElectsNewPrimary(t *testing.T) {
	c := newCluster(t, 4, nil)
	// Batch 1 commits under primary 0.
	c.Propose(0, []types.ClientRequest{enginetest.MakeRequest(1, 1)})
	c.Run(100_000)
	// Primary 0 crashes; the other replicas time out.
	c.Down[0] = true
	for r := 1; r < 4; r++ {
		c.Timeout(types.ReplicaID(r))
	}
	c.Run(100_000)
	for r := 1; r < 4; r++ {
		e := c.Engines[types.ReplicaID(r)]
		if e.View() != 1 {
			t.Fatalf("replica %d stuck in view %d", r, e.View())
		}
	}
	if !c.Engines[1].IsPrimary() {
		t.Fatal("replica 1 did not take over view 1")
	}
	// The new primary orders fresh batches.
	c.Propose(1, []types.ClientRequest{enginetest.MakeRequest(2, 1)})
	c.Run(100_000)
	for r := 1; r < 4; r++ {
		got := c.ExecutedDigests(types.ReplicaID(r))
		if len(got) != 2 {
			t.Fatalf("replica %d executed %d/2 after view change", r, len(got))
		}
	}
}

func TestViewChangeRecoversPreparedBatch(t *testing.T) {
	// A batch prepares (but does not commit everywhere) before the
	// primary crashes. The new view must re-propose and commit it, not
	// lose it: the no-lost-prepared-batches property.
	c := newCluster(t, 4, nil)
	req := enginetest.MakeRequest(1, 1)
	c.Propose(0, []types.ClientRequest{req})
	// Deliver only enough steps for prepares to circulate, then crash the
	// primary before commits fully propagate.
	for i := 0; i < 8; i++ {
		c.Step()
	}
	c.Down[0] = true
	for r := 1; r < 4; r++ {
		c.Timeout(types.ReplicaID(r))
	}
	c.Run(1_000_000)
	want := types.BatchDigest([]types.ClientRequest{req})
	for r := 1; r < 4; r++ {
		got := c.ExecutedDigests(types.ReplicaID(r))
		if len(got) == 0 {
			t.Fatalf("replica %d executed nothing after view change", r)
		}
		if got[0] != want {
			t.Fatalf("replica %d executed a different batch first", r)
		}
	}
}

func TestViewChangeJoinOnFPlusOne(t *testing.T) {
	// Only f+1 = 2 replicas time out; the remaining honest replica must
	// join the view change anyway so it completes.
	c := newCluster(t, 4, nil)
	c.Down[0] = true
	c.Timeout(1)
	c.Timeout(2)
	c.Run(100_000)
	for r := 1; r < 4; r++ {
		if got := c.Engines[types.ReplicaID(r)].View(); got != 1 {
			t.Fatalf("replica %d in view %d, want 1", r, got)
		}
	}
}

func TestNewViewRejectedWithoutQuorum(t *testing.T) {
	e, err := New(Config{ID: 2, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	nv := &types.NewView{
		View:        1,
		ViewChanges: []types.ViewChange{{NewView: 1, Replica: 1}}, // only 1 < 2f+1
	}
	e.OnMessage(types.ReplicaNode(1), nv, nil)
	if e.View() != 0 {
		t.Fatal("adopted new view without quorum proof")
	}
}

func BenchmarkEngineFullInstance(b *testing.B) {
	// Cost of one complete consensus instance across a 4-replica cluster
	// (pure protocol logic, no crypto or network).
	engines := make([]consensus.Engine, 4)
	for i := 0; i < 4; i++ {
		e, err := New(Config{ID: types.ReplicaID(i), N: 4, CheckpointInterval: 1 << 40})
		if err != nil {
			b.Fatal(err)
		}
		engines[i] = e
	}
	c := enginetest.NewCluster(engines)
	req := enginetest.MakeRequest(1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Propose(0, []types.ClientRequest{req})
		c.Run(1 << 30)
	}
}

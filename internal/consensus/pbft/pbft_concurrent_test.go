package pbft

import (
	"sync"
	"testing"

	"resilientdb/internal/consensus"
	"resilientdb/internal/types"
)

// TestImplementsConcurrentStepper pins the engine's concurrency contract:
// the replica runtime keys its worker-lane fan-out on this interface.
func TestImplementsConcurrentStepper(t *testing.T) {
	e, err := New(Config{ID: 0, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := interface{}(e).(consensus.ConcurrentStepper); !ok {
		t.Fatal("pbft.Engine must implement consensus.ConcurrentStepper")
	}
	if consensus.Serialize(e) != consensus.Engine(e) {
		t.Fatal("Serialize must return a concurrent-steppable engine unwrapped")
	}
}

// TestConcurrentStepping drives a backup engine from many goroutines at
// once — each owning a disjoint set of sequence numbers, exactly like the
// replica's worker lanes — while checkpoint traffic and OnExecuted
// notifications run concurrently. Under -race this exercises the control
// core / stripe-lock split; functionally it checks that every instance
// commits exactly once with the digest the primary proposed.
func TestConcurrentStepping(t *testing.T) {
	const (
		k     = 240 // batches
		lanes = 8
	)
	primary, err := New(Config{ID: 0, N: 4, CheckpointInterval: 16, WatermarkWindow: 1024})
	if err != nil {
		t.Fatal(err)
	}
	backup, err := New(Config{ID: 1, N: 4, CheckpointInterval: 16, WatermarkWindow: 1024})
	if err != nil {
		t.Fatal(err)
	}

	// The primary proposes k batches; capture the pre-prepares.
	pps := make([]*types.PrePrepare, 0, k)
	for i := 0; i < k; i++ {
		req := types.ClientRequest{Client: 1, FirstSeq: uint64(i + 1)}
		acts := primary.Propose([]types.ClientRequest{req})
		if len(acts) != 1 {
			t.Fatalf("propose %d: got %d actions", i, len(acts))
		}
		pp := acts[0].(consensus.Broadcast).Msg.(*types.PrePrepare)
		pps = append(pps, pp)
	}

	// Quorum-stable checkpoints need matching votes from 2f+1 replicas;
	// the execution layer below reports a test-fixed digest, so votes
	// from replicas 2 and 3 agree with it.
	ckDigest := types.Digest{42}

	// The execution layer: instances commit out of order across the
	// lanes, but OnExecuted must be reported in sequence order (that is
	// the replica's execute-thread contract — out-of-order reports would
	// let a checkpoint garbage-collect instances that never ran). It runs
	// concurrently with the stepping lanes, so the write-locked
	// checkpoint paths race against the read-locked per-instance paths.
	executed := make(map[types.SeqNum]types.Digest)
	execC := make(chan consensus.Execute, k)
	var execWg sync.WaitGroup
	execWg.Add(1)
	go func() {
		defer execWg.Done()
		pending := make(map[types.SeqNum]consensus.Execute)
		next := types.SeqNum(1)
		for ex := range execC {
			if _, dup := executed[ex.Seq]; dup {
				t.Errorf("seq %d released twice", ex.Seq)
				return
			}
			executed[ex.Seq] = ex.Digest
			pending[ex.Seq] = ex
			for {
				cur, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				backup.OnExecuted(cur.Seq, ckDigest)
				if uint64(cur.Seq)%16 == 0 {
					for _, rep := range []types.ReplicaID{2, 3} {
						cp := &types.Checkpoint{Seq: cur.Seq, StateDigest: ckDigest, Replica: rep}
						backup.OnMessage(types.ReplicaNode(rep), cp, nil)
					}
				}
				next++
			}
		}
	}()

	var wg sync.WaitGroup
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for i := lane; i < k; i += lanes {
				pp := pps[i]
				seq := pp.Seq
				var acts []consensus.Action
				acts = append(acts, backup.OnMessage(types.ReplicaNode(0), pp, nil)...)
				for _, rep := range []types.ReplicaID{2, 3} {
					p := &types.Prepare{View: pp.View, Seq: seq, Digest: pp.Digest, Replica: rep}
					acts = append(acts, backup.OnMessage(types.ReplicaNode(rep), p, nil)...)
				}
				for _, rep := range []types.ReplicaID{0, 2, 3} {
					c := &types.Commit{View: pp.View, Seq: seq, Digest: pp.Digest, Replica: rep}
					acts = append(acts, backup.OnMessage(types.ReplicaNode(rep), c, nil)...)
				}
				for _, a := range acts {
					if ex, ok := a.(consensus.Execute); ok {
						execC <- ex
					}
				}
			}
		}(lane)
	}
	wg.Wait()
	close(execC)
	execWg.Wait()

	if len(executed) != k {
		t.Fatalf("executed %d of %d instances", len(executed), k)
	}
	for i, pp := range pps {
		d, ok := executed[pp.Seq]
		if !ok {
			t.Fatalf("seq %d never executed", pp.Seq)
		}
		if d != pp.Digest {
			t.Fatalf("seq %d executed digest mismatch (batch %d)", pp.Seq, i)
		}
	}
	if got := backup.Stats().Executed; got != k {
		t.Fatalf("stats.Executed = %d, want %d", got, k)
	}
	// Checkpoints stabilized concurrently; everything at or below the low
	// watermark must be garbage collected.
	if lw := backup.LowWatermark(); lw == 0 {
		t.Fatal("no checkpoint stabilized under concurrent stepping")
	}
	if open := backup.OpenInstances(); open >= k {
		t.Fatalf("garbage collection missed: %d instances still open", open)
	}
}

// TestConcurrentCheckpointVotes hammers the striped checkpoint vote table
// from many goroutines at once — every replica's votes for many
// checkpoint sequences, interleaved with local OnExecuted reports and
// prepare-step read-lock traffic. Under -race this exercises the
// read-locked vote-recording fast path against the write-locked
// stabilization escalation; functionally the low watermark must reach the
// newest fully-voted checkpoint and the vote table must be pruned behind
// it.
func TestConcurrentCheckpointVotes(t *testing.T) {
	const (
		interval = 4
		ckpts    = 50 // checkpoint sequences: 4, 8, ..., 200
	)
	e, err := New(Config{ID: 1, N: 4, CheckpointInterval: interval, WatermarkWindow: 4096})
	if err != nil {
		t.Fatal(err)
	}
	digest := types.Digest{7}

	var wg sync.WaitGroup
	// Local execution reports, in order (the execute-thread contract).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for s := 1; s <= ckpts*interval; s++ {
			e.OnExecuted(types.SeqNum(s), digest)
		}
	}()
	// Peer votes: one goroutine per replica, each voting on every
	// checkpoint sequence; every (seq, digest) pair eventually has votes
	// from replicas 0, 2, 3 plus the local OnExecuted vote.
	for _, rep := range []types.ReplicaID{0, 2, 3} {
		wg.Add(1)
		go func(rep types.ReplicaID) {
			defer wg.Done()
			for c := 1; c <= ckpts; c++ {
				cp := &types.Checkpoint{Seq: types.SeqNum(c * interval), StateDigest: digest, Replica: rep}
				e.OnMessage(types.ReplicaNode(rep), cp, nil)
			}
		}(rep)
	}
	// Read-lock chatter: prepare steps for unrelated sequence numbers keep
	// the control read lock hot while votes record and escalate.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for s := 1; s <= 200; s++ {
			p := &types.Prepare{View: 0, Seq: types.SeqNum(s), Digest: types.Digest{1}, Replica: 2}
			e.OnMessage(types.ReplicaNode(2), p, nil)
		}
	}()
	wg.Wait()

	if lw := e.LowWatermark(); lw != types.SeqNum(ckpts*interval) {
		t.Fatalf("low watermark = %d, want %d", lw, ckpts*interval)
	}
	if got := e.Stats().Checkpoints; got == 0 {
		t.Fatal("no checkpoint counted as stable")
	}
	// The vote table must be pruned behind the watermark: a late stale
	// vote must neither resurrect state nor advance anything.
	if acts := e.OnMessage(types.ReplicaNode(0), &types.Checkpoint{Seq: interval, StateDigest: digest, Replica: 0}, nil); len(acts) != 0 {
		t.Fatalf("stale checkpoint vote produced %d actions", len(acts))
	}
}

// TestConcurrentProposeFastPath drives Propose from several goroutines at
// once — the multi-batch-thread primary — racing prepare/commit stepping
// and checkpoint stabilization. The CAS fast path must hand out dense,
// unique sequence numbers with no gaps (a reserved number is always
// proposed) and no write-lock serialization.
func TestConcurrentProposeFastPath(t *testing.T) {
	const (
		proposers = 4
		perP      = 50
	)
	e, err := New(Config{ID: 0, N: 4, CheckpointInterval: 1 << 20, WatermarkWindow: 4096})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := make(map[types.SeqNum]types.Digest)
	var wg sync.WaitGroup
	for p := 0; p < proposers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perP; i++ {
				req := types.ClientRequest{Client: types.ClientID(p), FirstSeq: uint64(i + 1)}
				acts := e.Propose([]types.ClientRequest{req})
				if len(acts) != 1 {
					t.Errorf("proposer %d: got %d actions", p, len(acts))
					return
				}
				pp := acts[0].(consensus.Broadcast).Msg.(*types.PrePrepare)
				mu.Lock()
				if _, dup := seen[pp.Seq]; dup {
					t.Errorf("sequence %d assigned twice", pp.Seq)
				}
				seen[pp.Seq] = pp.Digest
				mu.Unlock()
			}
		}(p)
	}
	// Concurrent stepping on the same engine: prepares for already-created
	// instances race the proposers' stripe writes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for s := 1; s <= proposers*perP; s++ {
			p := &types.Prepare{View: 0, Seq: types.SeqNum(s), Digest: types.Digest{9}, Replica: 2}
			e.OnMessage(types.ReplicaNode(2), p, nil)
		}
	}()
	wg.Wait()

	if len(seen) != proposers*perP {
		t.Fatalf("assigned %d distinct sequence numbers, want %d", len(seen), proposers*perP)
	}
	// Dense: exactly 1..proposers*perP, no holes from abandoned CAS wins.
	for s := 1; s <= proposers*perP; s++ {
		if _, ok := seen[types.SeqNum(s)]; !ok {
			t.Fatalf("sequence %d never proposed (hole)", s)
		}
	}
	if got := e.Stats().Proposed; got != proposers*perP {
		t.Fatalf("stats.Proposed = %d, want %d", got, proposers*perP)
	}
}

// TestConcurrentViewChange races a view change against in-flight prepare
// traffic: stale-view messages may land before or after the transition,
// but the engine must end in the new view with a consistent primary
// mirror, and under -race the write-locked view-change path must be clean
// against read-locked stepping.
func TestConcurrentViewChange(t *testing.T) {
	// Replica 1 is the primary of view 1: once it collects 2f+1
	// view-change votes it builds the NewView itself and enters the view.
	e, err := New(Config{ID: 1, N: 4, WatermarkWindow: 1024})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	// Prepare/commit chatter for many sequence numbers in view 0.
	for lane := 0; lane < 4; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for s := 1 + lane; s <= 200; s += 4 {
				p := &types.Prepare{View: 0, Seq: types.SeqNum(s), Digest: types.Digest{1}, Replica: 2}
				e.OnMessage(types.ReplicaNode(2), p, nil)
			}
		}(lane)
	}
	// Concurrently: our own timeout plus view-change votes from peers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		e.OnViewTimeout()
		for _, rep := range []types.ReplicaID{0, 2, 3} {
			vc := &types.ViewChange{NewView: 1, Replica: rep}
			e.OnMessage(types.ReplicaNode(rep), vc, nil)
		}
	}()
	wg.Wait()

	if got := e.View(); got != 1 {
		t.Fatalf("view = %d, want 1 after quorum view change", got)
	}
	if !e.IsPrimary() {
		t.Fatal("replica 1 must lead view 1")
	}
	if e.Stats().ViewChanges == 0 {
		t.Fatal("view change not counted")
	}
}

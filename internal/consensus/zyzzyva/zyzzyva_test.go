package zyzzyva

import (
	"math/rand"
	"testing"
	"testing/quick"

	"resilientdb/internal/consensus"
	"resilientdb/internal/consensus/enginetest"
	"resilientdb/internal/crypto"
	"resilientdb/internal/types"
)

func newCluster(t testing.TB, n int, cfg func(*Config)) *enginetest.Cluster {
	t.Helper()
	engines := make([]consensus.Engine, n)
	for i := 0; i < n; i++ {
		c := Config{ID: types.ReplicaID(i), N: n}
		if cfg != nil {
			cfg(&c)
		}
		e, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}
	return enginetest.NewCluster(engines)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{ID: 0, N: 2}); err == nil {
		t.Fatal("accepted n=2")
	}
	if _, err := New(Config{ID: 8, N: 4}); err == nil {
		t.Fatal("accepted out-of-range id")
	}
}

func TestSpeculativeExecutionSingleBatch(t *testing.T) {
	c := newCluster(t, 4, nil)
	req := enginetest.MakeRequest(1, 1)
	c.Propose(0, []types.ClientRequest{req})
	c.Run(10_000)

	want := types.BatchDigest([]types.ClientRequest{req})
	wantHistory := crypto.HashChain(types.Digest{}, want)
	for r := 0; r < 4; r++ {
		ex := c.Executed[types.ReplicaID(r)]
		if len(ex) != 1 {
			t.Fatalf("replica %d executed %d batches", r, len(ex))
		}
		if !ex[0].Speculative {
			t.Fatalf("replica %d execution not speculative", r)
		}
		if ex[0].History != wantHistory {
			t.Fatalf("replica %d history mismatch", r)
		}
		if got := c.Engines[types.ReplicaID(r)].(*Engine).History(); got != wantHistory {
			t.Fatalf("replica %d engine history mismatch", r)
		}
	}
}

func TestHistoriesConvergeAcrossBatches(t *testing.T) {
	c := newCluster(t, 4, nil)
	const batches = 30
	for i := 1; i <= batches; i++ {
		c.Propose(0, []types.ClientRequest{enginetest.MakeRequest(1, uint64(i))})
	}
	c.Run(1_000_000)
	ref := c.Engines[0].(*Engine).History()
	for r := 1; r < 4; r++ {
		e := c.Engines[types.ReplicaID(r)].(*Engine)
		if e.History() != ref {
			t.Fatalf("replica %d history diverged", r)
		}
		if len(c.Executed[types.ReplicaID(r)]) != batches {
			t.Fatalf("replica %d executed %d/%d", r, len(c.Executed[types.ReplicaID(r)]), batches)
		}
	}
}

// TestFillHoleBuffering delivers ordered requests out of order; replicas
// must buffer the gap and execute strictly in history order.
func TestFillHoleBuffering(t *testing.T) {
	f := func(seed int64) bool {
		c := newCluster(t, 4, nil)
		c.Random = rand.New(rand.NewSource(seed))
		const batches = 15
		for i := 1; i <= batches; i++ {
			c.Propose(0, []types.ClientRequest{enginetest.MakeRequest(1, uint64(i))})
		}
		c.Run(1_000_000)
		ref := c.ExecutedDigests(0)
		if len(ref) != batches {
			return false
		}
		for r := 1; r < 4; r++ {
			got := c.ExecutedDigests(types.ReplicaID(r))
			if len(got) != batches {
				return false
			}
			for i := range ref {
				if got[i] != ref[i] {
					return false
				}
			}
			if c.Engines[types.ReplicaID(r)].(*Engine).PendingHoles() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDivergentHistoryRejected(t *testing.T) {
	e, err := New(Config{ID: 1, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	req := enginetest.MakeRequest(1, 1)
	d := types.BatchDigest([]types.ClientRequest{req})
	// A byzantine primary sends a history that does not extend ours.
	or := &types.OrderedRequest{
		View: 0, Seq: 1, Digest: d,
		History:  types.Digest{0xBA, 0xD0},
		Requests: []types.ClientRequest{req},
	}
	acts := e.OnMessage(types.ReplicaNode(0), or, nil)
	var evidence bool
	for _, a := range acts {
		switch a.(type) {
		case consensus.Evidence:
			evidence = true
		case consensus.Execute:
			t.Fatal("executed a divergent-history request")
		}
	}
	if !evidence {
		t.Fatal("no evidence emitted for history divergence")
	}
}

func TestOrderedRequestFromNonPrimaryDropped(t *testing.T) {
	e, err := New(Config{ID: 1, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	req := enginetest.MakeRequest(1, 1)
	d := types.BatchDigest([]types.ClientRequest{req})
	or := &types.OrderedRequest{
		View: 0, Seq: 1, Digest: d,
		History:  crypto.HashChain(types.Digest{}, d),
		Requests: []types.ClientRequest{req},
	}
	acts := e.OnMessage(types.ReplicaNode(2), or, nil)
	if len(acts) != 0 {
		t.Fatal("accepted ordered request from non-primary")
	}
}

func TestCommitCertAnswered(t *testing.T) {
	c := newCluster(t, 4, nil)
	req := enginetest.MakeRequest(7, 3)
	c.Propose(0, []types.ClientRequest{req})
	c.Run(10_000)

	e := c.Engines[1].(*Engine)
	cert := &types.CommitCert{
		Client: 7, ClientSeq: 3, View: 0, Seq: 1,
		History:  e.History(),
		Replicas: []types.ReplicaID{0, 1, 2},
	}
	acts := e.OnMessage(types.ClientNode(7), cert, nil)
	var lc *types.LocalCommit
	for _, a := range acts {
		if s, ok := a.(consensus.Send); ok {
			if m, ok := s.Msg.(*types.LocalCommit); ok {
				if s.To != types.ClientNode(7) {
					t.Fatalf("local commit sent to %v", s.To)
				}
				lc = m
			}
		}
	}
	if lc == nil {
		t.Fatal("commit cert not acknowledged")
	}
	if lc.Seq != 1 || lc.Replica != 1 || lc.ClientSeq != 3 {
		t.Fatalf("bad local commit: %+v", lc)
	}
}

func TestCommitCertWrongHistoryIgnored(t *testing.T) {
	c := newCluster(t, 4, nil)
	c.Propose(0, []types.ClientRequest{enginetest.MakeRequest(7, 3)})
	c.Run(10_000)
	e := c.Engines[1].(*Engine)
	cert := &types.CommitCert{
		Client: 7, ClientSeq: 3, View: 0, Seq: 1,
		History: types.Digest{0xFF},
	}
	if acts := e.OnMessage(types.ClientNode(7), cert, nil); len(acts) != 0 {
		t.Fatal("acknowledged a forged commit cert")
	}
}

func TestCheckpointGarbageCollection(t *testing.T) {
	c := newCluster(t, 4, func(cfg *Config) { cfg.CheckpointInterval = 10 })
	const batches = 25
	for i := 1; i <= batches; i++ {
		c.Propose(0, []types.ClientRequest{enginetest.MakeRequest(1, uint64(i))})
	}
	c.Run(1_000_000)
	for r := 0; r < 4; r++ {
		e := c.Engines[types.ReplicaID(r)].(*Engine)
		if got := e.Stats().Checkpoints; got != 2 {
			t.Fatalf("replica %d stable checkpoints = %d, want 2", r, got)
		}
		if c.StableCheckpoints[types.ReplicaID(r)] != 20 {
			t.Fatalf("replica %d stable seq = %d, want 20", r, c.StableCheckpoints[types.ReplicaID(r)])
		}
	}
}

func TestCrashedBackupStopsFastPath(t *testing.T) {
	// With one backup down, surviving replicas still execute (that is the
	// speculation), but only n-1 = 3 of 4 respond — the client-side fast
	// path cannot complete. The engine level sees full execution.
	c := newCluster(t, 4, nil)
	c.Down[3] = true
	c.Propose(0, []types.ClientRequest{enginetest.MakeRequest(1, 1)})
	c.Run(10_000)
	alive := 0
	for r := 0; r < 3; r++ {
		if len(c.Executed[types.ReplicaID(r)]) == 1 {
			alive++
		}
	}
	if alive != 3 {
		t.Fatalf("%d/3 live replicas executed", alive)
	}
	if len(c.Executed[3]) != 0 {
		t.Fatal("crashed replica executed")
	}
}

func TestSpeculationDepthBound(t *testing.T) {
	c := newCluster(t, 4, func(cfg *Config) { cfg.MaxSpeculationDepth = 3; cfg.CheckpointInterval = 2 })
	for i := 1; i <= 6; i++ {
		c.Propose(0, []types.ClientRequest{enginetest.MakeRequest(1, uint64(i))})
	}
	e := c.Engines[0].(*Engine)
	if got := e.Stats().Proposed; got != 3 {
		t.Fatalf("proposed %d with depth bound 3", got)
	}
	c.Run(1_000_000) // checkpoints advance the bound
	c.Propose(0, []types.ClientRequest{enginetest.MakeRequest(1, 99)})
	if got := e.Stats().Proposed; got != 4 {
		t.Fatalf("proposed %d after checkpoint advance", got)
	}
}

func BenchmarkEngineFullInstance(b *testing.B) {
	engines := make([]consensus.Engine, 4)
	for i := 0; i < 4; i++ {
		e, err := New(Config{ID: types.ReplicaID(i), N: 4, CheckpointInterval: 1 << 40, MaxSpeculationDepth: 1 << 40})
		if err != nil {
			b.Fatal(err)
		}
		engines[i] = e
	}
	c := enginetest.NewCluster(engines)
	req := enginetest.MakeRequest(1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Propose(0, []types.ClientRequest{req})
		c.Run(1 << 30)
	}
}

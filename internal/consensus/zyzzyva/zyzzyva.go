// Package zyzzyva implements the speculative single-phase BFT protocol of
// Kotla et al. (SOSP '07) as a consensus engine, in the role the paper
// assigns it: the fast, fault-free-optimized baseline that a well-crafted
// PBFT system can outperform (Sections 1, 5.2, 5.10).
//
// Flow: the primary orders a batch by extending a history hash chain
// h_k = H(h_{k-1} || d_k) and broadcasting an OrderedRequest. Backups
// execute speculatively the moment the request arrives — before any
// agreement — and respond to the client with their history digest. The
// client accepts after all 3f+1 matching speculative responses (fast
// path); with only 2f+1 it must run a second phase, broadcasting a commit
// certificate and collecting 2f+1 LocalCommit acknowledgements.
//
// The client-side quorum logic lives in internal/consensus/client. The
// full Zyzzyva view-change and proof-of-misbehaviour machinery is out of
// scope: the paper's evaluation never exercises it (and cites follow-up
// work showing the protocol is unsafe in corner cases [Abraham et al.
// 2017]); this engine covers the fast path, the commit-certificate slow
// path, and fill-hole buffering, which are what the experiments measure.
package zyzzyva

import (
	"fmt"

	"resilientdb/internal/consensus"
	"resilientdb/internal/crypto"
	"resilientdb/internal/types"
)

// Config parameterizes a Zyzzyva engine.
type Config struct {
	// ID is this replica's identifier.
	ID types.ReplicaID
	// N is the number of replicas (n ≥ 3f+1).
	N int
	// CheckpointInterval is Δ, as in PBFT.
	CheckpointInterval uint64
	// MaxSpeculationDepth bounds how far execution may run ahead of the
	// last stable checkpoint.
	MaxSpeculationDepth uint64
}

func (c *Config) fill() {
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = 100
	}
	if c.MaxSpeculationDepth == 0 {
		c.MaxSpeculationDepth = 4096
	}
}

// Engine is a Zyzzyva replica state machine.
//
// Unlike PBFT, the engine's stepping methods are NOT safe for concurrent
// use and it deliberately does not implement
// consensus.ConcurrentStepper: the speculative history chain
// h_k = H(h_{k-1} || d_k) makes every acceptance depend on its
// predecessor, so there are no independent instances to stripe. Drivers
// with parallel worker lanes must route all Zyzzyva traffic through one
// lane behind consensus.Serialize — the replica runtime does exactly
// that, and the enginetest harnesses exercise the engine single-stepped.
// The observers View, IsPrimary (the view never changes; the Zyzzyva
// view-change machinery is out of scope) and Stats (atomic counters) are
// safe from any goroutine.
type Engine struct {
	cfg  Config
	f    int
	view types.View

	history  types.Digest // history hash after the last accepted request
	nextSeq  types.SeqNum // last ordered sequence number (primary)
	nextExec types.SeqNum // next sequence number to speculatively execute
	lowWater types.SeqNum

	// quorumStable is the highest checkpoint with a 2f+1 quorum; the low
	// watermark only advances once local execution reaches it (no state
	// transfer; see DESIGN.md).
	quorumStable types.SeqNum

	// pending buffers ordered requests that arrived ahead of a gap
	// (fill-hole buffering).
	pending map[types.SeqNum]*types.OrderedRequest

	// histories remembers the history digest after each executed sequence
	// number, needed to answer commit certificates until checkpointed.
	histories map[types.SeqNum]types.Digest

	checkpoints map[types.SeqNum]map[types.Digest]map[types.ReplicaID]bool

	// stats are atomic so Stats() is safe from any goroutine while the
	// (serialized) stepping methods run.
	stats consensus.AtomicEngineStats
}

var _ consensus.Engine = (*Engine)(nil)

// New creates a Zyzzyva engine.
func New(cfg Config) (*Engine, error) {
	cfg.fill()
	if cfg.N < 4 {
		return nil, fmt.Errorf("zyzzyva: need n ≥ 4 replicas, got %d", cfg.N)
	}
	if int(cfg.ID) >= cfg.N {
		return nil, fmt.Errorf("zyzzyva: replica id %d out of range for n=%d", cfg.ID, cfg.N)
	}
	return &Engine{
		cfg:         cfg,
		pending:     make(map[types.SeqNum]*types.OrderedRequest),
		histories:   make(map[types.SeqNum]types.Digest),
		checkpoints: make(map[types.SeqNum]map[types.Digest]map[types.ReplicaID]bool),
	}, nil
}

// View implements consensus.Engine.
func (e *Engine) View() types.View { return e.view }

// IsPrimary implements consensus.Engine.
func (e *Engine) IsPrimary() bool { return consensus.PrimaryOf(e.view, e.cfg.N) == e.cfg.ID }

// Stats implements consensus.Engine; it is lock-free.
func (e *Engine) Stats() consensus.EngineStats { return e.stats.Snapshot() }

// History returns the current history hash; tests use it to check that
// replicas converge on identical histories.
func (e *Engine) History() types.Digest { return e.history }

// PendingHoles returns the number of buffered out-of-order requests.
func (e *Engine) PendingHoles() int { return len(e.pending) }

// Propose implements consensus.Engine. The primary assigns the next
// sequence number, extends the history chain, and broadcasts the ordered
// request; it also speculatively executes its own share immediately.
func (e *Engine) Propose(reqs []types.ClientRequest) []consensus.Action {
	if !e.IsPrimary() {
		return nil
	}
	if uint64(e.nextSeq+1) > uint64(e.lowWater)+e.cfg.MaxSpeculationDepth {
		return nil
	}
	seq := e.nextSeq + 1
	e.nextSeq = seq
	e.stats.Proposed.Add(1)
	digest := types.BatchDigest(reqs)
	or := &types.OrderedRequest{
		View:     e.view,
		Seq:      seq,
		Digest:   digest,
		History:  crypto.HashChain(e.historyAt(seq-1), digest),
		Requests: reqs,
	}
	acts := []consensus.Action{consensus.Broadcast{Msg: or}}
	return append(acts, e.accept(or)...)
}

func (e *Engine) historyAt(seq types.SeqNum) types.Digest {
	if seq == e.nextExec-1 || seq == 0 {
		if seq == 0 {
			return types.Digest{}
		}
		return e.history
	}
	if h, ok := e.histories[seq]; ok {
		return h
	}
	return e.history
}

// OnMessage implements consensus.Engine.
func (e *Engine) OnMessage(from types.NodeID, msg types.Message, _ []byte) []consensus.Action {
	switch m := msg.(type) {
	case *types.OrderedRequest:
		if !from.IsReplica() || from.Replica() != consensus.PrimaryOf(e.view, e.cfg.N) {
			e.stats.Dropped.Add(1)
			return nil
		}
		return e.onOrderedRequest(m)
	case *types.CommitCert:
		return e.onCommitCert(m)
	case *types.Checkpoint:
		if !from.IsReplica() {
			e.stats.Dropped.Add(1)
			return nil
		}
		return e.recordCheckpoint(from.Replica(), m)
	default:
		e.stats.Dropped.Add(1)
		return nil
	}
}

// onOrderedRequest accepts the request if it is next in the history;
// out-of-order arrivals are buffered until the hole fills.
func (e *Engine) onOrderedRequest(m *types.OrderedRequest) []consensus.Action {
	if m.View != e.view || m.Seq <= e.lowWater {
		e.stats.Dropped.Add(1)
		return nil
	}
	if uint64(m.Seq) > uint64(e.lowWater)+e.cfg.MaxSpeculationDepth {
		e.stats.Dropped.Add(1)
		return nil
	}
	if m.Seq != e.nextExec+1 {
		if _, dup := e.pending[m.Seq]; !dup && m.Seq > e.nextExec {
			e.pending[m.Seq] = m
		}
		return nil
	}
	acts := e.accept(m)
	// Drain any buffered successors the hole was blocking.
	for {
		next, ok := e.pending[e.nextExec+1]
		if !ok {
			break
		}
		delete(e.pending, next.Seq)
		acts = append(acts, e.accept(next)...)
	}
	return acts
}

// accept extends the local history with the batch and releases it for
// speculative execution. A history mismatch means the primary equivocated
// or reordered; the engine refuses and surfaces evidence.
func (e *Engine) accept(m *types.OrderedRequest) []consensus.Action {
	want := crypto.HashChain(e.historyAt(m.Seq-1), m.Digest)
	if m.History != want {
		e.stats.Dropped.Add(1)
		return []consensus.Action{consensus.Evidence{
			Culprit: consensus.PrimaryOf(e.view, e.cfg.N),
			Detail:  fmt.Sprintf("history divergence at seq %d", m.Seq),
		}}
	}
	e.history = m.History
	e.nextExec = m.Seq
	e.histories[m.Seq] = m.History
	e.stats.Executed.Add(1)
	return []consensus.Action{consensus.Execute{
		Seq:         m.Seq,
		View:        m.View,
		Digest:      m.Digest,
		History:     m.History,
		Requests:    m.Requests,
		Speculative: true,
	}}
}

// onCommitCert answers the client's slow-path commit certificate: if the
// certificate matches the local history, acknowledge with a LocalCommit.
func (e *Engine) onCommitCert(m *types.CommitCert) []consensus.Action {
	h, ok := e.histories[m.Seq]
	if !ok {
		// Either already checkpointed away (safe to acknowledge: the
		// checkpoint proves 2f+1 replicas agreed) or not yet executed.
		if m.Seq > e.lowWater {
			e.stats.Dropped.Add(1)
			return nil
		}
		h = m.History
	}
	if h != m.History {
		e.stats.Dropped.Add(1)
		return nil
	}
	return []consensus.Action{consensus.Send{
		To: types.ClientNode(m.Client),
		Msg: &types.LocalCommit{
			View:      m.View,
			Seq:       m.Seq,
			History:   m.History,
			Client:    m.Client,
			ClientSeq: m.ClientSeq,
			Replica:   e.cfg.ID,
		},
	}}
}

// OnExecuted implements consensus.Engine; Zyzzyva checkpoints exactly like
// PBFT so speculative state becomes stable and garbage collectable.
func (e *Engine) OnExecuted(seq types.SeqNum, stateDigest types.Digest) []consensus.Action {
	if uint64(seq)%e.cfg.CheckpointInterval != 0 {
		return e.advanceLowWater()
	}
	cp := &types.Checkpoint{Seq: seq, StateDigest: stateDigest, Replica: e.cfg.ID}
	acts := e.recordCheckpoint(e.cfg.ID, cp)
	return append([]consensus.Action{consensus.Broadcast{Msg: cp}}, acts...)
}

func (e *Engine) recordCheckpoint(from types.ReplicaID, m *types.Checkpoint) []consensus.Action {
	if m.Seq <= e.lowWater {
		return nil
	}
	bySeq, ok := e.checkpoints[m.Seq]
	if !ok {
		bySeq = make(map[types.Digest]map[types.ReplicaID]bool)
		e.checkpoints[m.Seq] = bySeq
	}
	voters, ok := bySeq[m.StateDigest]
	if !ok {
		voters = make(map[types.ReplicaID]bool)
		bySeq[m.StateDigest] = voters
	}
	voters[from] = true
	if len(voters) < consensus.Quorum2f1(e.cfg.N) {
		return nil
	}
	if m.Seq > e.quorumStable {
		e.quorumStable = m.Seq
	}
	return e.advanceLowWater()
}

// advanceLowWater garbage collects up to the newest quorum-stable
// checkpoint this replica has itself executed past.
func (e *Engine) advanceLowWater() []consensus.Action {
	target := e.quorumStable
	if e.nextExec < target {
		// Never garbage collect past local speculative execution: a
		// lagging replica keeps its state until it catches up.
		return nil
	}
	if target <= e.lowWater {
		return nil
	}
	e.lowWater = target
	e.stats.Checkpoints.Add(1)
	for seq := range e.histories {
		if seq < target { // keep the digest at the checkpoint itself
			delete(e.histories, seq)
		}
	}
	for seq := range e.checkpoints {
		if seq <= target {
			delete(e.checkpoints, seq)
		}
	}
	for seq := range e.pending {
		if seq <= target {
			delete(e.pending, seq)
		}
	}
	return []consensus.Action{consensus.CheckpointStable{Seq: target}}
}

// OnViewTimeout implements consensus.Engine. Zyzzyva's view change is out
// of scope (see the package comment); the engine only counts the stall.
func (e *Engine) OnViewTimeout() []consensus.Action {
	e.stats.Dropped.Add(1)
	return nil
}

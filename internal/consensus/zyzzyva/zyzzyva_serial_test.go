package zyzzyva

import (
	"testing"

	"resilientdb/internal/consensus"
	"resilientdb/internal/consensus/enginetest"
	"resilientdb/internal/types"
)

// TestNotConcurrentStepper pins the single-lane contract: Zyzzyva's
// history chain is inherently ordered, so the engine must NOT advertise
// concurrent stepping — the replica runtime keys its lane fan-out on
// exactly this check and would otherwise race the history hash.
func TestNotConcurrentStepper(t *testing.T) {
	e, err := New(Config{ID: 0, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := interface{}(e).(consensus.ConcurrentStepper); ok {
		t.Fatal("zyzzyva.Engine must not implement ConcurrentStepper (speculative history is ordered)")
	}
	if consensus.Serialize(e) == consensus.Engine(e) {
		t.Fatal("Serialize must wrap the zyzzyva engine")
	}
}

// TestSerializedEngineDrivesCluster runs the standard enginetest flow with
// every engine behind consensus.Serialize — the exact shape the replica
// runtime uses — and checks histories still converge.
func TestSerializedEngineDrivesCluster(t *testing.T) {
	n := 4
	engines := make([]consensus.Engine, n)
	raw := make([]*Engine, n)
	for i := 0; i < n; i++ {
		e, err := New(Config{ID: types.ReplicaID(i), N: n})
		if err != nil {
			t.Fatal(err)
		}
		raw[i] = e
		engines[i] = consensus.Serialize(e)
	}
	c := enginetest.NewCluster(engines)
	for s := uint64(1); s <= 20; s++ {
		c.Propose(0, []types.ClientRequest{enginetest.MakeRequest(1, s)})
	}
	c.Run(10000)
	for i := 1; i < n; i++ {
		if raw[i].History() != raw[0].History() {
			t.Fatalf("replica %d history diverged behind Serialize", i)
		}
	}
	if len(c.Executed[0]) != 20 {
		t.Fatalf("executed %d batches, want 20", len(c.Executed[0]))
	}
}

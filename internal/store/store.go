// Package store is the storage layer of the fabric (paper Figure 5): the
// record tables the execution layer reads and writes.
//
// Two implementations mirror the Section 5.7 experiment: MemStore keeps
// records in an in-memory key-value structure, while DiskStore is an
// off-memory store reached through a blocking, serialized API backed by
// synchronous file I/O — the role SQLite plays in the paper. The paper's
// conclusion (Section 6, "Memory Storage") is that replicas can keep
// records in memory because at most f replicas fail; DiskStore exists to
// measure what that choice is worth.
//
// A third implementation, ShardedDiskStore, is the middle the paper did
// not build: a durable store engineered like every other pipeline stage —
// one append log per shard (partitioned by the same ShardOf hash the
// execute stage uses) and group-commit fsync, so durability stops being
// the serialized tail of the pipeline. The diskpipe bench quantifies how
// much of the Section 5.7 penalty this wins back.
//
// Both disk backends keep their logs bounded: records carry a CRC-32C
// (format v2; recovery keeps the longest valid prefix, and pre-CRC v1
// logs stay readable) and superseded values are garbage-collected by
// Compactor, which the replica triggers from its stable-checkpoint path —
// the paper's Section 4.7 license to discard old state. The compaction
// bench measures log bytes and reopen time before/after.
package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrNotFound is returned by Get when no record exists for the key.
var ErrNotFound = errors.New("store: key not found")

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// Store is the record table interface used by the execute-thread.
type Store interface {
	// Put stores value under key, overwriting any previous value.
	Put(key uint64, value []byte) error
	// Get returns the value stored under key.
	Get(key uint64) ([]byte, error)
	// Len returns the number of live records.
	Len() int
	// Close releases resources. Operations after Close fail with ErrClosed.
	Close() error
}

// KV is one write in a batch handed to a Batcher.
type KV struct {
	Key   uint64
	Value []byte
}

// Batcher is an optional Store capability: PutMany applies a whole write
// partition with a single liveness check instead of one per Put. Execution
// shard workers apply their key partitions through it concurrently —
// callers must guarantee the partitions are key-disjoint, which is what
// makes the result order-independent across callers. MemStore and
// ShardedDiskStore implement it (the sharded store additionally streams
// an aligned partition to a single append log with one write syscall and
// one group-commit wait); DiskStore deliberately does not, so the naive
// off-memory store keeps its blocking, fully serialized API (the
// Section 5.7 contrast) and sharded execution degrades to serialized
// Puts against it.
type Batcher interface {
	// PutMany applies every write in kvs in order. Distinct concurrent
	// calls must cover disjoint key sets.
	PutMany(kvs []KV) error
}

// SyncStats reports a durable store's group-commit behaviour: how many
// fsyncs it issued and how long writers cumulatively stalled waiting for
// one. The replica surfaces these in its Stats so the diskpipe bench can
// show what group commit buys over per-op fsync.
type SyncStats struct {
	// Fsyncs is the number of fsync calls issued.
	Fsyncs uint64
	// FsyncStallNS is the cumulative time writers spent blocked waiting
	// for an fsync to cover their writes (for per-op sync stores this is
	// simply the total fsync time, since the writer is the one syncing).
	FsyncStallNS uint64
}

// SyncStatser is an optional Store capability: durable stores report
// their fsync accounting through it. MemStore has nothing to report and
// does not implement it.
type SyncStatser interface {
	SyncStats() SyncStats
}

// CompactStats reports a log-structured store's garbage collection: how
// many log rewrites completed, how many failed (the store stays on its
// old log and remains usable), how many log bytes the rewrites dropped,
// and how long writers were stalled behind a rewrite. The replica
// surfaces these in its Stats next to SyncStats.
type CompactStats struct {
	// Compactions is the number of log rewrites completed.
	Compactions uint64
	// Failures is the number of attempted rewrites that failed; each
	// leaves the original log authoritative and the store usable.
	Failures uint64
	// ReclaimedBytes is the total log bytes dropped by compaction
	// (superseded record versions).
	ReclaimedBytes uint64
	// StallNS is the cumulative time writers were blocked behind a log
	// rewrite (per-shard for the sharded store, so concurrent shard
	// rewrites sum).
	StallNS uint64
}

// compactCounters is the atomic backing for CompactStats, shared by both
// disk backends so they report identically.
type compactCounters struct {
	compactions atomic.Uint64
	failures    atomic.Uint64
	reclaimed   atomic.Uint64
	stallNS     atomic.Uint64
}

func (c *compactCounters) stats() CompactStats {
	return CompactStats{
		Compactions:    c.compactions.Load(),
		Failures:       c.failures.Load(),
		ReclaimedBytes: c.reclaimed.Load(),
		StallNS:        c.stallNS.Load(),
	}
}

// Compactor is an optional Store capability: log-structured stores whose
// logs accumulate superseded values implement it so the replica can drive
// garbage collection from its stable-checkpoint path (the paper's §4.7
// moment: a stable checkpoint licenses discarding old state). MemStore
// overwrites in place and has nothing to compact.
type Compactor interface {
	// MaybeCompact rewrites every log that clears the store's configured
	// size floor and garbage-ratio threshold; it returns how many logs
	// were rewritten. A failed rewrite leaves that log authoritative and
	// is reported in CompactStats.Failures.
	MaybeCompact() (int, error)
	// Compact rewrites every log unconditionally, keeping only live
	// records.
	Compact() error
	// CompactStats reports the compaction counters.
	CompactStats() CompactStats
}

// Compile-time interface compliance checks.
var (
	_ Store       = (*MemStore)(nil)
	_ Store       = (*DiskStore)(nil)
	_ Store       = (*ShardedDiskStore)(nil)
	_ Batcher     = (*MemStore)(nil)
	_ Batcher     = (*ShardedDiskStore)(nil)
	_ SyncStatser = (*DiskStore)(nil)
	_ SyncStatser = (*ShardedDiskStore)(nil)
	_ Compactor   = (*DiskStore)(nil)
	_ Compactor   = (*ShardedDiskStore)(nil)
	_ Scanner     = (*MemStore)(nil)
	_ Scanner     = (*DiskStore)(nil)
	_ Scanner     = (*ShardedDiskStore)(nil)
)

// shardMix is the multiplicative hash spreading record keys across
// shards. It must be a fixed constant — every replica must agree on the
// partition, and a replica must agree with itself across restarts — and
// it is shared by the execution layer (workload.ShardOf delegates here)
// so that with equal shard counts each execution shard streams its whole
// partition to exactly one store shard.
const shardMix = 0x9E3779B97F4A7C15

// ShardOf maps a record key to one of shards partitions. It is the
// canonical write-set partition hash: the execute stage partitions batch
// write-sets with it and ShardedDiskStore picks append logs with it. The
// hash decorrelates the shard from the Zipfian popularity scramble and
// from MemStore's internal shard hash, so hot keys spread across shards
// instead of clustering on one.
func ShardOf(key uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(((key * shardMix) >> 32) % uint64(shards))
}

// memShards splits the key space to keep lock contention negligible even
// with several execution threads.
const memShards = 64

type memShard struct {
	mu sync.RWMutex
	m  map[uint64][]byte
}

// MemStore is the in-memory key-value record table.
type MemStore struct {
	shards [memShards]memShard
	closed sync.Once
	dead   bool
	mu     sync.RWMutex // guards dead
	// ordered is the sorted key sidecar behind Scan. Writers insert into
	// their map shard first and the sidecar second, so the sidecar is
	// always a subset of the maps and scanned keys resolve.
	ordered orderedKeys
}

// NewMemStore returns an empty in-memory store sized for sizeHint records.
func NewMemStore(sizeHint int) *MemStore {
	s := &MemStore{}
	per := sizeHint/memShards + 1
	for i := range s.shards {
		s.shards[i].m = make(map[uint64][]byte, per)
	}
	return s
}

func (s *MemStore) shard(key uint64) *memShard {
	// Spread sequential keys across shards.
	return &s.shards[(key*0x9E3779B97F4A7C15)>>58%memShards]
}

// Put implements Store.
func (s *MemStore) Put(key uint64, value []byte) error {
	s.mu.RLock()
	if s.dead {
		s.mu.RUnlock()
		return ErrClosed
	}
	s.mu.RUnlock()
	sh := s.shard(key)
	cp := make([]byte, len(value))
	copy(cp, value)
	sh.mu.Lock()
	sh.m[key] = cp
	sh.mu.Unlock()
	s.ordered.insert(key)
	return nil
}

// PutMany implements Batcher: it pays the closed-store check once for the
// whole partition, then applies the writes in order. Concurrent callers
// are safe — the per-shard locks serialize same-shard collisions — and
// with key-disjoint partitions the final contents are independent of how
// callers interleave.
func (s *MemStore) PutMany(kvs []KV) error {
	s.mu.RLock()
	if s.dead {
		s.mu.RUnlock()
		return ErrClosed
	}
	s.mu.RUnlock()
	for i := range kvs {
		cp := make([]byte, len(kvs[i].Value))
		copy(cp, kvs[i].Value)
		sh := s.shard(kvs[i].Key)
		sh.mu.Lock()
		sh.m[kvs[i].Key] = cp
		sh.mu.Unlock()
		s.ordered.insert(kvs[i].Key)
	}
	return nil
}

// Get implements Store.
func (s *MemStore) Get(key uint64) ([]byte, error) {
	s.mu.RLock()
	if s.dead {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	s.mu.RUnlock()
	sh := s.shard(key)
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNotFound, key)
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp, nil
}

// Scan implements Scanner. Keys come from the ordered sidecar in bounded
// chunks and values from Get, so a scan never holds the sidecar lock
// across a shard lock (see scanVia for the contract).
func (s *MemStore) Scan(start, end uint64, fn func(key uint64, value []byte) bool) error {
	s.mu.RLock()
	if s.dead {
		s.mu.RUnlock()
		return ErrClosed
	}
	s.mu.RUnlock()
	return scanVia(&s.ordered, s.Get, start, end, fn)
}

// Len implements Store.
func (s *MemStore) Len() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		n += len(s.shards[i].m)
		s.shards[i].mu.RUnlock()
	}
	return n
}

// Close implements Store.
func (s *MemStore) Close() error {
	s.mu.Lock()
	s.dead = true
	s.mu.Unlock()
	return nil
}

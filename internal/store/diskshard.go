package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ShardedDiskStore is the pipelined off-memory store: one append log per
// shard, keys partitioned by the canonical ShardOf hash, and durability
// provided by per-shard group commit. It exists to show what the paper's
// Section 5.7 off-memory penalty costs once the storage layer is given
// the same treatment as every other stage — shard the serialized
// resource, batch the expensive syscall:
//
//   - Writes to different shards never contend: each shard owns its own
//     log file, lock, and fsync schedule, so the execute stage's shard
//     workers (with an aligned shard count) stream their key partitions
//     to private logs.
//   - With SyncLinger > 0 a per-shard committer fsyncs at most once per
//     linger window, covering every write appended before the sync
//     (group commit): writers block until a covering fsync completes, so
//     durability is real, but N writers in a window share one fsync
//     instead of paying N.
//
// Each shard's log uses the shared record format (v2 adds a per-record
// CRC-32C; pre-CRC v1 logs stay readable) and the same recovery: on open
// a torn tail — and, in a v2 log, any record failing its CRC — ends the
// valid prefix, independently per shard. A SHARDS meta file pins the
// shard count, since reopening with a different count would look keys up
// in the wrong logs.
//
// Shard logs are append-only, so superseded values accumulate until
// Compact (or the threshold-driven MaybeCompact, which the replica fires
// on stable checkpoints) rewrites a shard's live records to a fresh log:
// temp file + fsync + rename + directory fsync, crash-safe at every
// point, after which log size tracks live data instead of history and
// restart replays only the compacted log.
type ShardedDiskStore struct {
	shards []*diskLogShard
	dir    string
	linger time.Duration

	compactRatio float64
	compactMin   int64

	stop    chan struct{}
	wg      sync.WaitGroup
	closing sync.Once

	// ordered is the store-wide sorted key sidecar behind Scan, seeded
	// from the recovered shard indexes at open. Put/PutMany insert into it
	// only after their shard appends return (no shard lock held), so scans
	// and writers never hold the sidecar and a shard lock at once.
	ordered *orderedKeys

	// fsync and compaction accounting (atomic: SyncStats/CompactStats
	// must not take shard locks).
	fsyncs  atomic.Uint64
	stallNS atomic.Uint64
	cstats  compactCounters
}

// diskLogShard is one append log plus its group-commit state.
type diskLogShard struct {
	mu   sync.Mutex
	cond *sync.Cond // signalled when synced advances, a sync/compaction finishes, or the shard closes
	f    *os.File
	path string
	// logState is the log bookkeeping (index, append offset, format,
	// live/total bytes), guarded by mu like the rest of the shard.
	logState

	// Group commit: appended counts append operations, synced the prefix
	// of them covered by a completed fsync. A writer waits until synced
	// reaches its own append; the committer advances synced once per
	// linger window. syncErr is sticky — after a failed fsync the shard
	// refuses further durable writes rather than lying about durability.
	// syncing marks an fsync in flight on f outside the lock, so
	// compaction never swaps (and closes) the file under it.
	appended uint64
	synced   uint64
	syncErr  error
	syncing  bool
	dirtyC   chan struct{} // capacity 1: wakes this shard's committer
	closed   bool

	// ri, when non-nil, answers Get from memory without touching the log
	// file or the shard lock (see readindex.go). Appends update it under
	// mu; compaction leaves it untouched, since rewriting the log changes
	// record positions but no values.
	ri *readIndex
}

// ShardedDiskOptions configures a ShardedDiskStore.
type ShardedDiskOptions struct {
	// Shards is the number of append logs. 0 means 4, or the persisted
	// count when reopening an existing store. Opening an existing store
	// with a conflicting non-zero count is an error.
	Shards int
	// SyncLinger selects durability: 0 never fsyncs (the DiskStore
	// default — the Section 5.7 property under test is the blocking
	// store API, not durability); > 0 group-commits with that fsync
	// linger, so every Put/PutMany returns only after a covering fsync.
	SyncLinger time.Duration
	// CompactRatio is the per-shard garbage fraction (dead bytes / total
	// log bytes) past which MaybeCompact rewrites that shard's log. 0
	// means the default (DefaultCompactRatio); negative disables
	// MaybeCompact.
	CompactRatio float64
	// CompactMinBytes is the per-shard log size below which MaybeCompact
	// never rewrites. 0 means the default (DefaultCompactMinBytes);
	// negative removes the floor.
	CompactMinBytes int64
	// ReadIndex keeps every key's latest value in memory, per shard, so
	// Get never reads a shard log or takes a shard lock. Off by default —
	// the Section 5.7 contrast is the blocking storage API — and enabled
	// by OpenBackend for replica deployments serving local reads.
	ReadIndex bool
}

const shardMetaFile = "SHARDS"

// OpenShardedDisk opens (or creates) a sharded store rooted at dir,
// recovering each shard's log independently.
func OpenShardedDisk(dir string, opts ShardedDiskOptions) (*ShardedDiskStore, error) {
	if opts.SyncLinger < 0 {
		return nil, fmt.Errorf("store: negative sync linger %v", opts.SyncLinger)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating shard dir: %w", err)
	}
	// A crash mid-compaction leaves a temp rewrite behind; it is garbage
	// until renamed, so clear strays before recovering the real logs.
	removeCompactTemps(dir)
	n := opts.Shards
	metaPath := filepath.Join(dir, shardMetaFile)
	haveMeta := false
	if raw, err := os.ReadFile(metaPath); err == nil {
		persisted, perr := strconv.Atoi(strings.TrimSpace(string(raw)))
		if perr != nil || persisted < 1 {
			return nil, fmt.Errorf("store: corrupt shard meta %q", strings.TrimSpace(string(raw)))
		}
		if n == 0 {
			n = persisted
		} else if n != persisted {
			return nil, fmt.Errorf("store: existing store has %d shards, requested %d", persisted, n)
		}
		haveMeta = true
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("store: reading shard meta: %w", err)
	}
	if n == 0 {
		n = 4
	}
	if n < 1 {
		return nil, fmt.Errorf("store: need at least one shard, got %d", n)
	}
	// The meta is written exactly once, at creation, and durably (temp
	// file + fsync + rename + directory fsync): a crash must never leave
	// a store whose fsynced logs survive but whose shard count is gone or
	// torn — reopening with a guessed count would look keys up in the
	// wrong logs. An existing meta is never rewritten, so a crash mid-open
	// cannot brick a healthy store either.
	if !haveMeta {
		if err := persistShardMeta(dir, metaPath, n); err != nil {
			return nil, err
		}
	}

	s := &ShardedDiskStore{dir: dir, linger: opts.SyncLinger, stop: make(chan struct{})}
	s.compactRatio, s.compactMin = resolveCompactKnobs(opts.CompactRatio, opts.CompactMinBytes)
	for i := 0; i < n; i++ {
		path := filepath.Join(dir, fmt.Sprintf("shard-%03d.log", i))
		f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("store: opening shard %d log: %w", i, err)
		}
		st, err := recoverLog(f)
		if err != nil {
			f.Close()
			s.closeFiles()
			return nil, fmt.Errorf("store: recovering shard %d: %w", i, err)
		}
		sh := &diskLogShard{f: f, path: path, logState: st, dirtyC: make(chan struct{}, 1)}
		sh.cond = sync.NewCond(&sh.mu)
		if opts.ReadIndex {
			ri, err := loadReadIndex(f, st.index)
			if err != nil {
				f.Close()
				s.closeFiles()
				return nil, fmt.Errorf("store: loading shard %d read index: %w", i, err)
			}
			sh.ri = ri
		}
		s.shards = append(s.shards, sh)
	}
	var keys []uint64
	for _, sh := range s.shards {
		for k := range sh.index {
			keys = append(keys, k)
		}
	}
	s.ordered = newOrderedKeys(keys)
	if s.linger > 0 {
		for _, sh := range s.shards {
			s.wg.Add(1)
			go s.commitLoop(sh)
		}
	}
	return s, nil
}

// persistShardMeta durably records the shard count at store creation. The
// temp file is removed on every failure path — including a failed fsync —
// so aborted creations leave no debris.
func persistShardMeta(dir, metaPath string, n int) error {
	tmp, err := os.CreateTemp(dir, ".shards-*")
	if err != nil {
		return fmt.Errorf("store: writing shard meta: %w", err)
	}
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing shard meta: %w", err)
	}
	if _, err := tmp.WriteString(strconv.Itoa(n) + "\n"); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmp.Name(), metaPath); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing shard meta: %w", err)
	}
	syncDir(dir) // make the rename itself durable; best effort
	return nil
}

// closeFiles releases already-opened shard files after a failed open.
func (s *ShardedDiskStore) closeFiles() {
	for _, sh := range s.shards {
		sh.f.Close()
	}
}

// Shards returns the shard (append log) count.
func (s *ShardedDiskStore) Shards() int { return len(s.shards) }

// shardFor returns the shard owning key.
func (s *ShardedDiskStore) shardFor(key uint64) *diskLogShard {
	return s.shards[ShardOf(key, len(s.shards))]
}

// appendLocked writes the records to the shard's log in order and updates
// the index and byte accounting; the caller holds sh.mu. One contiguous
// buffer means one write syscall per call regardless of record count.
func (sh *diskLogShard) appendLocked(kvs []KV) error {
	buf := encodeRecords(kvs, sh.v2)
	if _, err := sh.f.WriteAt(buf, sh.off); err != nil {
		return fmt.Errorf("store: appending records: %w", err)
	}
	at := int64(0)
	hdr := sh.hdrSize()
	for i := range kvs {
		sh.account(kvs[i].Key, sh.off+at+hdr, uint32(len(kvs[i].Value)))
		at += hdr + int64(len(kvs[i].Value))
	}
	sh.off += int64(len(buf))
	sh.appended++
	if sh.ri != nil {
		sh.ri.putMany(kvs)
	}
	return nil
}

// awaitSync blocks the caller until an fsync covering append operation
// seq completes; it returns the shard's sticky sync error, or ErrClosed
// when the store closed before the write became durable. The caller holds
// sh.mu; stall time is reported to the store's counters.
func (s *ShardedDiskStore) awaitSync(sh *diskLogShard, seq uint64) error {
	select {
	case sh.dirtyC <- struct{}{}:
	default:
	}
	t0 := time.Now()
	for sh.synced < seq && sh.syncErr == nil && !sh.closed {
		sh.cond.Wait()
	}
	s.stallNS.Add(uint64(time.Since(t0)))
	if sh.syncErr != nil {
		return sh.syncErr
	}
	if sh.synced < seq {
		return ErrClosed
	}
	return nil
}

// commitLoop is one shard's group committer: woken by the first dirty
// write, it lingers to collect a group, fsyncs once, and releases every
// writer the sync covered. Writes that land during the fsync re-arm it.
func (s *ShardedDiskStore) commitLoop(sh *diskLogShard) {
	defer s.wg.Done()
	timer := time.NewTimer(s.linger)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-sh.dirtyC:
		case <-s.stop:
			return
		}
		// Linger: let more writers join the group before paying the fsync.
		timer.Reset(s.linger)
		select {
		case <-timer.C:
		case <-s.stop:
			if !timer.Stop() {
				<-timer.C
			}
			return
		}

		sh.mu.Lock()
		target := sh.appended
		f := sh.f
		// Snapshot f and mark the sync in flight under the lock: the
		// syncing flag is what keeps compaction from swapping (and
		// closing) the file while the fsync below runs outside the lock.
		skip := target == sh.synced || sh.syncErr != nil || sh.closed
		if !skip {
			sh.syncing = true
		}
		sh.mu.Unlock()
		if skip {
			// A writer armed dirtyC during a linger window whose fsync (or
			// a compaction rewrite) already covered it; nothing to sync.
			continue
		}

		err := f.Sync() // outside the lock: appends may proceed meanwhile

		sh.mu.Lock()
		sh.syncing = false
		if err != nil {
			sh.syncErr = fmt.Errorf("store: fsync: %w", err)
		} else {
			s.fsyncs.Add(1) // only completed fsyncs count as durable
			if target > sh.synced {
				sh.synced = target
			}
		}
		rearm := sh.appended > sh.synced && sh.syncErr == nil
		sh.cond.Broadcast()
		sh.mu.Unlock()
		if rearm {
			select {
			case sh.dirtyC <- struct{}{}:
			default:
			}
		}
	}
}

// Put implements Store: append to the owning shard's log and, in group
// commit mode, wait for a covering fsync.
func (s *ShardedDiskStore) Put(key uint64, value []byte) error {
	if err := s.putShard(s.shardFor(key), []KV{{Key: key, Value: value}}); err != nil {
		return err
	}
	s.ordered.insert(key)
	return nil
}

func (s *ShardedDiskStore) putShard(sh *diskLogShard, kvs []KV) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return ErrClosed
	}
	if sh.syncErr != nil {
		return sh.syncErr
	}
	if err := sh.appendLocked(kvs); err != nil {
		return err
	}
	if s.linger > 0 {
		return s.awaitSync(sh, sh.appended)
	}
	return nil
}

// PutMany implements Batcher: writes are grouped by owning shard, each
// group appended with a single write syscall, and in group commit mode
// the caller waits once per touched shard. When the caller's partition
// was built with the same ShardOf shard count — the aligned execute-shard
// configuration — the whole batch lands in one log. Distinct concurrent
// callers must cover disjoint key sets (the Batcher contract); same-shard
// appends from different callers are serialized by the shard lock.
func (s *ShardedDiskStore) PutMany(kvs []KV) error {
	if len(kvs) == 0 {
		return nil
	}
	// Common case first: every key in one shard (aligned partitions).
	first := ShardOf(kvs[0].Key, len(s.shards))
	aligned := true
	for i := 1; i < len(kvs); i++ {
		if ShardOf(kvs[i].Key, len(s.shards)) != first {
			aligned = false
			break
		}
	}
	if aligned {
		if err := s.putShard(s.shards[first], kvs); err != nil {
			return err
		}
		for i := range kvs {
			s.ordered.insert(kvs[i].Key)
		}
		return nil
	}
	// Mixed partition: group records by shard, preserving order per shard.
	groups := make([][]KV, len(s.shards))
	for i := range kvs {
		sh := ShardOf(kvs[i].Key, len(s.shards))
		groups[sh] = append(groups[sh], kvs[i])
	}
	// Append to every touched shard first — arming each shard's committer
	// as we go — and only then wait for the covering fsyncs, so the group
	// commits of different shards overlap instead of paying one full
	// linger+fsync per shard in sequence.
	type pendingSync struct {
		sh  *diskLogShard
		seq uint64
	}
	var waits []pendingSync
	for idx, g := range groups {
		if len(g) == 0 {
			continue
		}
		sh := s.shards[idx]
		sh.mu.Lock()
		if sh.closed {
			sh.mu.Unlock()
			return ErrClosed
		}
		if sh.syncErr != nil {
			err := sh.syncErr
			sh.mu.Unlock()
			return err
		}
		if err := sh.appendLocked(g); err != nil {
			sh.mu.Unlock()
			return err
		}
		if s.linger > 0 {
			select {
			case sh.dirtyC <- struct{}{}:
			default:
			}
			waits = append(waits, pendingSync{sh: sh, seq: sh.appended})
		}
		sh.mu.Unlock()
	}
	for _, w := range waits {
		w.sh.mu.Lock()
		err := s.awaitSync(w.sh, w.seq)
		w.sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	for i := range kvs {
		s.ordered.insert(kvs[i].Key)
	}
	return nil
}

// Get implements Store. With the read index enabled the value comes from
// the owning shard's in-memory index without touching its log file or
// lock. Otherwise the value bytes are read back from the shard's log: the
// record reference and file handle are snapshotted under the shard lock
// but the ReadAt syscall runs outside it, so one disk read never stalls
// the shard's writers or its group committer. If compaction (or Close)
// retires the snapshotted handle mid-read the read fails with
// fs.ErrClosed and is retried against the fresh handle; a closed store
// surfaces as ErrClosed at the top of the retry.
func (s *ShardedDiskStore) Get(key uint64) ([]byte, error) {
	sh := s.shardFor(key)
	if sh.ri != nil {
		if v, ok := sh.ri.get(key); ok {
			return v, nil
		}
		return nil, fmt.Errorf("%w: %d", ErrNotFound, key)
	}
	for {
		sh.mu.Lock()
		if sh.closed {
			sh.mu.Unlock()
			return nil, ErrClosed
		}
		ref, ok := sh.index[key]
		f := sh.f
		sh.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("%w: %d", ErrNotFound, key)
		}
		out := make([]byte, ref.length)
		if _, err := f.ReadAt(out, ref.off); err != nil {
			if errors.Is(err, fs.ErrClosed) {
				continue // the handle was swapped or the store closed; re-snapshot
			}
			return nil, fmt.Errorf("store: reading record: %w", err)
		}
		return out, nil
	}
}

// Scan implements Scanner. Keys come from the store-wide ordered sidecar
// in bounded chunks and values from Get, so each row is one shard read
// (or a read-index hit) and a scan never stalls a shard's writers or its
// group committer for longer than a point read would.
func (s *ShardedDiskStore) Scan(start, end uint64, fn func(key uint64, value []byte) bool) error {
	return scanVia(s.ordered, s.Get, start, end, fn)
}

// Len implements Store.
func (s *ShardedDiskStore) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.index)
		sh.mu.Unlock()
	}
	return n
}

// SyncStats implements SyncStatser.
func (s *ShardedDiskStore) SyncStats() SyncStats {
	return SyncStats{Fsyncs: s.fsyncs.Load(), FsyncStallNS: s.stallNS.Load()}
}

// CompactStats implements Compactor.
func (s *ShardedDiskStore) CompactStats() CompactStats {
	return s.cstats.stats()
}

// MaybeCompact implements Compactor: each shard whose log clears the
// configured size floor and garbage-ratio threshold is rewritten. Shards
// are checked and compacted one at a time, so at most one shard's writers
// are stalled at any moment while the rest of the store runs. It returns
// how many shard logs were rewritten.
func (s *ShardedDiskStore) MaybeCompact() (int, error) {
	compacted := 0
	var firstErr error
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.closed {
			sh.mu.Unlock()
			if firstErr == nil {
				firstErr = ErrClosed
			}
			continue
		}
		if !shouldCompact(sh.live, sh.total, s.compactRatio, s.compactMin) {
			sh.mu.Unlock()
			continue
		}
		err := s.compactShardLocked(sh)
		sh.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if err == nil {
			compacted++
		}
	}
	return compacted, firstErr
}

// Compact implements Compactor: every shard's log is rewritten to live
// records only, unconditionally (upgrading v1 logs to the CRC format in
// the process).
func (s *ShardedDiskStore) Compact() error {
	var firstErr error
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.closed {
			sh.mu.Unlock()
			if firstErr == nil {
				firstErr = ErrClosed
			}
			continue
		}
		err := s.compactShardLocked(sh)
		sh.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// compactShardLocked rewrites one shard's live records to a fresh log;
// the caller holds sh.mu (writers to this shard stall for the duration,
// which is what CompactStats.StallNS measures). Because the rewrite
// fsyncs every live record before the rename, a completed compaction is
// also a covering group commit: writers parked in awaitSync are released,
// since the latest version of every appended key is now durable.
func (s *ShardedDiskStore) compactShardLocked(sh *diskLogShard) error {
	// Never swap the file while the committer has an fsync in flight on
	// it outside the lock: closing the old handle mid-Sync would turn a
	// healthy fsync into a sticky syncErr. Compaction holds the lock
	// otherwise, so no new sync can start while it rewrites.
	for sh.syncing && !sh.closed {
		sh.cond.Wait()
	}
	if sh.closed {
		return ErrClosed
	}
	t0 := time.Now()
	newF, st, err := rewriteLiveRecords(sh.f, sh.index, sh.path)
	if err != nil {
		s.cstats.failures.Add(1)
		return err
	}
	reclaimed := sh.off - st.off
	old := sh.f
	sh.f, sh.logState = newF, st
	if s.linger > 0 && sh.synced < sh.appended && sh.syncErr == nil {
		sh.synced = sh.appended
		s.fsyncs.Add(1) // the rewrite's fsync doubled as a group commit
	}
	old.Close()
	sh.cond.Broadcast()
	s.cstats.compactions.Add(1)
	if reclaimed > 0 {
		s.cstats.reclaimed.Add(uint64(reclaimed))
	}
	s.cstats.stallNS.Add(uint64(time.Since(t0)))
	return nil
}

// Close implements Store. Pending group-commit writes are made durable
// with one final fsync per dirty shard before waiters are released, so a
// clean shutdown never loses an acknowledged-in-flight write. Only
// fsyncs that actually completed are counted in SyncStats.
func (s *ShardedDiskStore) Close() error {
	var firstErr error
	s.closing.Do(func() {
		close(s.stop)
		s.wg.Wait() // committers are gone; shard state is ours to finalize
		for _, sh := range s.shards {
			sh.mu.Lock()
			if s.linger > 0 && sh.synced < sh.appended && sh.syncErr == nil {
				if err := sh.f.Sync(); err != nil {
					sh.syncErr = fmt.Errorf("store: final fsync: %w", err)
				} else {
					sh.synced = sh.appended
					s.fsyncs.Add(1)
				}
			}
			sh.closed = true
			if err := sh.f.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("store: closing shard log: %w", err)
			}
			sh.cond.Broadcast()
			sh.mu.Unlock()
		}
	})
	return firstErr
}

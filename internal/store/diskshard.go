package store

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ShardedDiskStore is the pipelined off-memory store: one append log per
// shard, keys partitioned by the canonical ShardOf hash, and durability
// provided by per-shard group commit. It exists to show what the paper's
// Section 5.7 off-memory penalty costs once the storage layer is given
// the same treatment as every other stage — shard the serialized
// resource, batch the expensive syscall:
//
//   - Writes to different shards never contend: each shard owns its own
//     log file, lock, and fsync schedule, so the execute stage's shard
//     workers (with an aligned shard count) stream their key partitions
//     to private logs.
//   - With SyncLinger > 0 a per-shard committer fsyncs at most once per
//     linger window, covering every write appended before the sync
//     (group commit): writers block until a covering fsync completes, so
//     durability is real, but N writers in a window share one fsync
//     instead of paying N.
//
// Each shard's log uses the DiskStore record format and the same
// torn-tail recovery: a truncated final record is discarded on open,
// independently per shard. A SHARDS meta file pins the shard count, since
// reopening with a different count would look keys up in the wrong logs.
type ShardedDiskStore struct {
	shards []*diskLogShard
	linger time.Duration

	stop    chan struct{}
	wg      sync.WaitGroup
	closing sync.Once

	// fsync accounting (atomic: SyncStats must not take shard locks).
	fsyncs  atomic.Uint64
	stallNS atomic.Uint64
}

// diskLogShard is one append log plus its group-commit state.
type diskLogShard struct {
	mu    sync.Mutex
	cond  *sync.Cond // signalled when synced advances or the shard closes
	f     *os.File
	index map[uint64]recordRef
	off   int64

	// Group commit: appended counts append operations, synced the prefix
	// of them covered by a completed fsync. A writer waits until synced
	// reaches its own append; the committer advances synced once per
	// linger window. syncErr is sticky — after a failed fsync the shard
	// refuses further durable writes rather than lying about durability.
	appended uint64
	synced   uint64
	syncErr  error
	dirtyC   chan struct{} // capacity 1: wakes this shard's committer
	closed   bool
}

// ShardedDiskOptions configures a ShardedDiskStore.
type ShardedDiskOptions struct {
	// Shards is the number of append logs. 0 means 4, or the persisted
	// count when reopening an existing store. Opening an existing store
	// with a conflicting non-zero count is an error.
	Shards int
	// SyncLinger selects durability: 0 never fsyncs (the DiskStore
	// default — the Section 5.7 property under test is the blocking
	// store API, not durability); > 0 group-commits with that fsync
	// linger, so every Put/PutMany returns only after a covering fsync.
	SyncLinger time.Duration
}

const shardMetaFile = "SHARDS"

// OpenShardedDisk opens (or creates) a sharded store rooted at dir,
// recovering each shard's log independently.
func OpenShardedDisk(dir string, opts ShardedDiskOptions) (*ShardedDiskStore, error) {
	if opts.SyncLinger < 0 {
		return nil, fmt.Errorf("store: negative sync linger %v", opts.SyncLinger)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating shard dir: %w", err)
	}
	n := opts.Shards
	metaPath := filepath.Join(dir, shardMetaFile)
	haveMeta := false
	if raw, err := os.ReadFile(metaPath); err == nil {
		persisted, perr := strconv.Atoi(strings.TrimSpace(string(raw)))
		if perr != nil || persisted < 1 {
			return nil, fmt.Errorf("store: corrupt shard meta %q", strings.TrimSpace(string(raw)))
		}
		if n == 0 {
			n = persisted
		} else if n != persisted {
			return nil, fmt.Errorf("store: existing store has %d shards, requested %d", persisted, n)
		}
		haveMeta = true
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: reading shard meta: %w", err)
	}
	if n == 0 {
		n = 4
	}
	if n < 1 {
		return nil, fmt.Errorf("store: need at least one shard, got %d", n)
	}
	// The meta is written exactly once, at creation, and durably (temp
	// file + fsync + rename + directory fsync): a crash must never leave
	// a store whose fsynced logs survive but whose shard count is gone or
	// torn — reopening with a guessed count would look keys up in the
	// wrong logs. An existing meta is never rewritten, so a crash mid-open
	// cannot brick a healthy store either.
	if !haveMeta {
		if err := persistShardMeta(dir, metaPath, n); err != nil {
			return nil, err
		}
	}

	s := &ShardedDiskStore{linger: opts.SyncLinger, stop: make(chan struct{})}
	for i := 0; i < n; i++ {
		f, err := os.OpenFile(filepath.Join(dir, fmt.Sprintf("shard-%03d.log", i)), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("store: opening shard %d log: %w", i, err)
		}
		index, off, err := recoverLog(f)
		if err != nil {
			f.Close()
			s.closeFiles()
			return nil, fmt.Errorf("store: recovering shard %d: %w", i, err)
		}
		sh := &diskLogShard{f: f, index: index, off: off, dirtyC: make(chan struct{}, 1)}
		sh.cond = sync.NewCond(&sh.mu)
		s.shards = append(s.shards, sh)
	}
	if s.linger > 0 {
		for _, sh := range s.shards {
			s.wg.Add(1)
			go s.commitLoop(sh)
		}
	}
	return s, nil
}

// persistShardMeta durably records the shard count at store creation.
func persistShardMeta(dir, metaPath string, n int) error {
	tmp, err := os.CreateTemp(dir, ".shards-*")
	if err != nil {
		return fmt.Errorf("store: writing shard meta: %w", err)
	}
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing shard meta: %w", err)
	}
	if _, err := tmp.WriteString(strconv.Itoa(n) + "\n"); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmp.Name(), metaPath); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing shard meta: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync() // make the rename itself durable; best effort
		d.Close()
	}
	return nil
}

// closeFiles releases already-opened shard files after a failed open.
func (s *ShardedDiskStore) closeFiles() {
	for _, sh := range s.shards {
		sh.f.Close()
	}
}

// Shards returns the shard (append log) count.
func (s *ShardedDiskStore) Shards() int { return len(s.shards) }

// shardFor returns the shard owning key.
func (s *ShardedDiskStore) shardFor(key uint64) *diskLogShard {
	return s.shards[ShardOf(key, len(s.shards))]
}

// appendLocked writes the records to the shard's log in order and updates
// the index; the caller holds sh.mu. One contiguous buffer means one
// write syscall per call regardless of record count.
func (sh *diskLogShard) appendLocked(kvs []KV) error {
	size := 0
	for i := range kvs {
		size += 12 + len(kvs[i].Value)
	}
	buf := make([]byte, size)
	at := 0
	for i := range kvs {
		binary.BigEndian.PutUint64(buf[at:at+8], kvs[i].Key)
		binary.BigEndian.PutUint32(buf[at+8:at+12], uint32(len(kvs[i].Value)))
		copy(buf[at+12:], kvs[i].Value)
		at += 12 + len(kvs[i].Value)
	}
	if _, err := sh.f.WriteAt(buf, sh.off); err != nil {
		return fmt.Errorf("store: appending records: %w", err)
	}
	at = 0
	for i := range kvs {
		sh.index[kvs[i].Key] = recordRef{off: sh.off + int64(at) + 12, length: uint32(len(kvs[i].Value))}
		at += 12 + len(kvs[i].Value)
	}
	sh.off += int64(size)
	sh.appended++
	return nil
}

// awaitSync blocks the caller until an fsync covering append operation
// seq completes; it returns the shard's sticky sync error, or ErrClosed
// when the store closed before the write became durable. The caller holds
// sh.mu; stall time is reported to the store's counters.
func (s *ShardedDiskStore) awaitSync(sh *diskLogShard, seq uint64) error {
	select {
	case sh.dirtyC <- struct{}{}:
	default:
	}
	t0 := time.Now()
	for sh.synced < seq && sh.syncErr == nil && !sh.closed {
		sh.cond.Wait()
	}
	s.stallNS.Add(uint64(time.Since(t0)))
	if sh.syncErr != nil {
		return sh.syncErr
	}
	if sh.synced < seq {
		return ErrClosed
	}
	return nil
}

// commitLoop is one shard's group committer: woken by the first dirty
// write, it lingers to collect a group, fsyncs once, and releases every
// writer the sync covered. Writes that land during the fsync re-arm it.
func (s *ShardedDiskStore) commitLoop(sh *diskLogShard) {
	defer s.wg.Done()
	timer := time.NewTimer(s.linger)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-sh.dirtyC:
		case <-s.stop:
			return
		}
		// Linger: let more writers join the group before paying the fsync.
		timer.Reset(s.linger)
		select {
		case <-timer.C:
		case <-s.stop:
			if !timer.Stop() {
				<-timer.C
			}
			return
		}

		sh.mu.Lock()
		target := sh.appended
		covered := target == sh.synced
		sh.mu.Unlock()
		if covered {
			// A writer armed dirtyC during a linger window whose fsync
			// already covered it; nothing new to sync.
			continue
		}

		err := sh.f.Sync() // outside the lock: appends may proceed meanwhile
		s.fsyncs.Add(1)

		sh.mu.Lock()
		if err != nil {
			sh.syncErr = fmt.Errorf("store: fsync: %w", err)
		} else if target > sh.synced {
			sh.synced = target
		}
		rearm := sh.appended > sh.synced && sh.syncErr == nil
		sh.cond.Broadcast()
		sh.mu.Unlock()
		if rearm {
			select {
			case sh.dirtyC <- struct{}{}:
			default:
			}
		}
	}
}

// Put implements Store: append to the owning shard's log and, in group
// commit mode, wait for a covering fsync.
func (s *ShardedDiskStore) Put(key uint64, value []byte) error {
	return s.putShard(s.shardFor(key), []KV{{Key: key, Value: value}})
}

func (s *ShardedDiskStore) putShard(sh *diskLogShard, kvs []KV) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return ErrClosed
	}
	if sh.syncErr != nil {
		return sh.syncErr
	}
	if err := sh.appendLocked(kvs); err != nil {
		return err
	}
	if s.linger > 0 {
		return s.awaitSync(sh, sh.appended)
	}
	return nil
}

// PutMany implements Batcher: writes are grouped by owning shard, each
// group appended with a single write syscall, and in group commit mode
// the caller waits once per touched shard. When the caller's partition
// was built with the same ShardOf shard count — the aligned execute-shard
// configuration — the whole batch lands in one log. Distinct concurrent
// callers must cover disjoint key sets (the Batcher contract); same-shard
// appends from different callers are serialized by the shard lock.
func (s *ShardedDiskStore) PutMany(kvs []KV) error {
	if len(kvs) == 0 {
		return nil
	}
	// Common case first: every key in one shard (aligned partitions).
	first := ShardOf(kvs[0].Key, len(s.shards))
	aligned := true
	for i := 1; i < len(kvs); i++ {
		if ShardOf(kvs[i].Key, len(s.shards)) != first {
			aligned = false
			break
		}
	}
	if aligned {
		return s.putShard(s.shards[first], kvs)
	}
	// Mixed partition: group records by shard, preserving order per shard.
	groups := make([][]KV, len(s.shards))
	for i := range kvs {
		sh := ShardOf(kvs[i].Key, len(s.shards))
		groups[sh] = append(groups[sh], kvs[i])
	}
	// Append to every touched shard first — arming each shard's committer
	// as we go — and only then wait for the covering fsyncs, so the group
	// commits of different shards overlap instead of paying one full
	// linger+fsync per shard in sequence.
	type pendingSync struct {
		sh  *diskLogShard
		seq uint64
	}
	var waits []pendingSync
	for idx, g := range groups {
		if len(g) == 0 {
			continue
		}
		sh := s.shards[idx]
		sh.mu.Lock()
		if sh.closed {
			sh.mu.Unlock()
			return ErrClosed
		}
		if sh.syncErr != nil {
			err := sh.syncErr
			sh.mu.Unlock()
			return err
		}
		if err := sh.appendLocked(g); err != nil {
			sh.mu.Unlock()
			return err
		}
		if s.linger > 0 {
			select {
			case sh.dirtyC <- struct{}{}:
			default:
			}
			waits = append(waits, pendingSync{sh: sh, seq: sh.appended})
		}
		sh.mu.Unlock()
	}
	for _, w := range waits {
		w.sh.mu.Lock()
		err := s.awaitSync(w.sh, w.seq)
		w.sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Get implements Store, reading the value bytes back from the owning
// shard's log.
func (s *ShardedDiskStore) Get(key uint64) ([]byte, error) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return nil, ErrClosed
	}
	ref, ok := sh.index[key]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNotFound, key)
	}
	out := make([]byte, ref.length)
	if _, err := sh.f.ReadAt(out, ref.off); err != nil {
		return nil, fmt.Errorf("store: reading record: %w", err)
	}
	return out, nil
}

// Len implements Store.
func (s *ShardedDiskStore) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.index)
		sh.mu.Unlock()
	}
	return n
}

// SyncStats implements SyncStatser.
func (s *ShardedDiskStore) SyncStats() SyncStats {
	return SyncStats{Fsyncs: s.fsyncs.Load(), FsyncStallNS: s.stallNS.Load()}
}

// Close implements Store. Pending group-commit writes are made durable
// with one final fsync per dirty shard before waiters are released, so a
// clean shutdown never loses an acknowledged-in-flight write.
func (s *ShardedDiskStore) Close() error {
	var firstErr error
	s.closing.Do(func() {
		close(s.stop)
		s.wg.Wait() // committers are gone; shard state is ours to finalize
		for _, sh := range s.shards {
			sh.mu.Lock()
			if s.linger > 0 && sh.synced < sh.appended && sh.syncErr == nil {
				if err := sh.f.Sync(); err != nil {
					sh.syncErr = fmt.Errorf("store: final fsync: %w", err)
				} else {
					sh.synced = sh.appended
				}
				s.fsyncs.Add(1)
			}
			sh.closed = true
			if err := sh.f.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("store: closing shard log: %w", err)
			}
			sh.cond.Broadcast()
			sh.mu.Unlock()
		}
	})
	return firstErr
}

// recoverLog scans a record log, rebuilding the key index and truncating
// a torn tail (a final record whose header or value bytes are
// incomplete). It returns the index and the append offset. Shared by
// DiskStore and ShardedDiskStore so both repair crashes identically.
func recoverLog(f *os.File) (map[uint64]recordRef, int64, error) {
	index := make(map[uint64]recordRef)
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, fmt.Errorf("stat log: %w", err)
	}
	size := fi.Size() // invariant during the scan (only the final Truncate shrinks it)
	var hdr [12]byte
	off := int64(0)
	for {
		_, err := f.ReadAt(hdr[:], off)
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			// Torn header: discard the tail.
			if terr := f.Truncate(off); terr != nil {
				return nil, 0, fmt.Errorf("truncating torn log: %w", terr)
			}
			break
		}
		if err != nil {
			return nil, 0, fmt.Errorf("scanning log: %w", err)
		}
		key := binary.BigEndian.Uint64(hdr[:8])
		vlen := binary.BigEndian.Uint32(hdr[8:])
		end := off + 12 + int64(vlen)
		if end > size {
			// Torn value: discard the tail.
			if terr := f.Truncate(off); terr != nil {
				return nil, 0, fmt.Errorf("truncating torn log: %w", terr)
			}
			break
		}
		index[key] = recordRef{off: off + 12, length: vlen}
		off = end
	}
	return index, off, nil
}

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// BackendConfig selects and parameterizes a record store. resdb-node and
// the in-process cluster both build their stores through OpenBackend so
// backend semantics — the fsync mapping, the shard-count alignment rule,
// the on-disk layout — cannot drift between deployment styles.
type BackendConfig struct {
	// Backend is "mem" (default), "disk" (the serial blocking log, the
	// Section 5.7 off-memory contrast), or "sharded" (the group-commit
	// store, one append log per shard).
	Backend string
	// Dir is the directory for the disk backends (ignored by mem).
	Dir string
	// Shards is the sharded backend's append-log count; 0 aligns it with
	// ExecShards so each execution shard streams to a private log.
	Shards int
	// ExecShards is the execution shard count Shards aligns to when 0.
	ExecShards int
	// SyncLinger selects durability: 0 never fsyncs; > 0 group-commits
	// the sharded backend on this fsync linger and makes the serial disk
	// backend fsync every Put.
	SyncLinger time.Duration
	// CompactRatio is the disk backends' garbage-ratio compaction
	// threshold (dead bytes / total log bytes, checked per shard log when
	// the replica's stable-checkpoint trigger fires). 0 means the default
	// (store.DefaultCompactRatio); negative disables threshold-driven
	// compaction.
	CompactRatio float64
	// CompactMinBytes is the log size below which threshold-driven
	// compaction never rewrites. 0 means the default
	// (store.DefaultCompactMinBytes); negative removes the floor.
	CompactMinBytes int64
	// MemSizeHint sizes the in-memory store (0 means 1<<16 records).
	MemSizeHint int
	// ReadIndex gives the disk backends an in-memory read index so Get —
	// and with it the locally-served read path — never touches a log file
	// or shard lock. Ignored by mem (already memory-resident). Replica
	// deployments enable it by default via the -store-read-index knob.
	ReadIndex bool
}

// OpenBackend builds the record store cfg describes.
func OpenBackend(cfg BackendConfig) (Store, error) {
	switch cfg.Backend {
	case "", "mem":
		hint := cfg.MemSizeHint
		if hint <= 0 {
			hint = 1 << 16
		}
		return NewMemStore(hint), nil
	case "disk":
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: creating dir: %w", err)
		}
		return OpenDisk(filepath.Join(cfg.Dir, "records.log"), DiskOptions{
			SyncEveryPut:    cfg.SyncLinger > 0,
			CompactRatio:    cfg.CompactRatio,
			CompactMinBytes: cfg.CompactMinBytes,
			ReadIndex:       cfg.ReadIndex,
		})
	case "sharded":
		shards := cfg.Shards
		if shards == 0 {
			shards = cfg.ExecShards
		}
		return OpenShardedDisk(cfg.Dir, ShardedDiskOptions{
			Shards:          shards,
			SyncLinger:      cfg.SyncLinger,
			CompactRatio:    cfg.CompactRatio,
			CompactMinBytes: cfg.CompactMinBytes,
			ReadIndex:       cfg.ReadIndex,
		})
	default:
		return nil, fmt.Errorf("store: unknown backend %q (want mem|disk|sharded)", cfg.Backend)
	}
}

package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Log format. Both disk backends share one record-log layout, so they
// crash-repair, verify, and compact identically.
//
// A v1 log (the seed format) is a bare sequence of records:
//
//	[8 bytes key][4 bytes value length][value bytes]
//
// A v2 log starts with an 8-byte magic header and adds a per-record
// CRC-32C covering the record header and value:
//
//	"RDBLOG2\n" ([8]byte magic)
//	[8 bytes key][4 bytes value length][4 bytes CRC-32C][value bytes] ...
//
// The CRC is computed over the first 12 header bytes plus the value, so
// a flipped bit anywhere in a record — key, length, or payload — fails
// verification on recovery. v1 logs can only detect torn tails; v2 logs
// detect arbitrary mid-log corruption and recovery keeps the longest
// valid prefix. Existing v1 logs stay readable (and keep appending v1
// records, so a crash mid-upgrade cannot mix formats within one log);
// new logs and compacted logs are always v2.
const (
	recHdrV1 = 12 // [key 8][vlen 4]
	recHdrV2 = 16 // [key 8][vlen 4][crc 4]
)

// logMagic marks a v2 log. A v1 log at least one record long starts with
// its first record's 8-byte key instead; a v1 log shorter than one header
// is a torn tail under v1 rules and is truncated to empty either way.
// Known limitation: a pre-upgrade v1 log whose first record's key happens
// to equal these exact 8 bytes (0x5244424C4F47320A) would be misdetected
// as v2. Accepted: the collision needs that one adversarial key first in
// a seed-era log, and the alternative — per-log format sidecars — adds a
// second crash-ordering problem to solve a 2^-64 one.
var logMagic = [8]byte{'R', 'D', 'B', 'L', 'O', 'G', '2', '\n'}

// crcTable is the Castagnoli polynomial, the standard storage CRC (SSE4.2
// hardware-accelerated on amd64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// compactTmpPattern names in-flight compaction rewrites. A crash leaves
// the temp file behind and the original log authoritative; open removes
// the strays.
const compactTmpPattern = ".compact-*"

// Compaction knob defaults (see ShardedDiskOptions / DiskOptions).
const (
	// DefaultCompactRatio is the garbage fraction (dead bytes / total log
	// bytes) past which MaybeCompact rewrites a log.
	DefaultCompactRatio = 0.5
	// DefaultCompactMinBytes is the log size below which MaybeCompact
	// never bothers: rewriting a tiny log cannot reclaim enough to pay
	// for the write stall.
	DefaultCompactMinBytes = 1 << 20
)

// resolveCompactKnobs maps the knob convention (0 = default, negative =
// disabled / no floor) onto concrete thresholds.
func resolveCompactKnobs(ratio float64, minBytes int64) (float64, int64) {
	if ratio == 0 {
		ratio = DefaultCompactRatio
	}
	switch {
	case minBytes == 0:
		minBytes = DefaultCompactMinBytes
	case minBytes < 0:
		minBytes = 0
	}
	return ratio, minBytes
}

// shouldCompact applies the garbage-ratio trigger: the log must clear the
// size floor and hold at least ratio dead bytes per total byte.
func shouldCompact(live, total int64, ratio float64, minBytes int64) bool {
	if ratio < 0 || total < minBytes {
		return false
	}
	garbage := total - live
	return garbage > 0 && float64(garbage) >= ratio*float64(total)
}

// logState is everything recovery (or compaction) learns about one log;
// both disk backends embed it as their per-log bookkeeping, so appends
// maintain it through account and a compaction swap replaces it
// wholesale.
type logState struct {
	index map[uint64]recordRef
	off   int64 // append offset
	v2    bool  // record format of this log
	live  int64 // bytes of records still reachable through the index
	total int64 // bytes of all records (excluding the v2 file header)
}

// hdrSize returns the per-record header size of this log's format.
func (st *logState) hdrSize() int64 {
	if st.v2 {
		return recHdrV2
	}
	return recHdrV1
}

// account updates the live/total byte counters and the index for one
// appended record, subtracting the record the key previously pointed at.
func (st *logState) account(key uint64, valueOff int64, vlen uint32) {
	rec := st.hdrSize() + int64(vlen)
	st.total += rec
	if old, ok := st.index[key]; ok {
		st.live -= st.hdrSize() + int64(old.length)
	}
	st.live += rec
	st.index[key] = recordRef{off: valueOff, length: vlen}
}

// encodeRecords packs kvs into one contiguous buffer in the log's format
// (one write syscall per append batch regardless of record count).
func encodeRecords(kvs []KV, v2 bool) []byte {
	hdr := recHdrV1
	if v2 {
		hdr = recHdrV2
	}
	size := 0
	for i := range kvs {
		size += hdr + len(kvs[i].Value)
	}
	buf := make([]byte, size)
	at := 0
	for i := range kvs {
		binary.BigEndian.PutUint64(buf[at:at+8], kvs[i].Key)
		binary.BigEndian.PutUint32(buf[at+8:at+12], uint32(len(kvs[i].Value)))
		if v2 {
			crc := crc32.Checksum(buf[at:at+12], crcTable)
			crc = crc32.Update(crc, crcTable, kvs[i].Value)
			binary.BigEndian.PutUint32(buf[at+12:at+16], crc)
		}
		copy(buf[at+hdr:], kvs[i].Value)
		at += hdr + len(kvs[i].Value)
	}
	return buf
}

// recoverLog scans a record log, rebuilding the key index and the
// live/total byte accounting. Shared by DiskStore and ShardedDiskStore so
// both repair crashes identically:
//
//   - a v2 log (magic header) verifies every record's CRC-32C and keeps
//     the longest valid prefix — a torn tail or a flipped byte anywhere
//     truncates the log at the first bad record;
//   - a v1 log (no header) keeps the pre-CRC behaviour: only a torn
//     final record is detected and discarded;
//   - an empty or sub-header log is (re)initialized as v2.
func recoverLog(f *os.File) (logState, error) {
	st := logState{index: make(map[uint64]recordRef)}
	fi, err := f.Stat()
	if err != nil {
		return st, fmt.Errorf("stat log: %w", err)
	}
	size := fi.Size() // invariant during the scan (only Truncate shrinks it)
	if size >= int64(len(logMagic)) {
		var magic [len(logMagic)]byte
		if _, err := f.ReadAt(magic[:], 0); err != nil {
			return st, fmt.Errorf("reading log header: %w", err)
		}
		if magic == logMagic {
			return recoverV2(f, size)
		}
	}
	if size >= recHdrV1 {
		return recoverV1(f, size)
	}
	// Too short to be either format: at most a torn v1 header or a torn
	// v2 magic, both of which truncate to empty. Initialize as v2 and
	// fsync the header before any record can follow it: the filesystem
	// may persist pages in any order, and a crash that kept later record
	// pages but dropped the unsynced header would make the next recovery
	// misread a v2 log as v1 — no CRCs, records parsed 4 bytes off — and
	// build a garbage index instead of a clean empty log.
	if err := f.Truncate(0); err != nil {
		return st, fmt.Errorf("truncating torn log: %w", err)
	}
	if _, err := f.WriteAt(logMagic[:], 0); err != nil {
		return st, fmt.Errorf("writing log header: %w", err)
	}
	if err := f.Sync(); err != nil {
		return st, fmt.Errorf("syncing log header: %w", err)
	}
	st.off = int64(len(logMagic))
	st.v2 = true
	return st, nil
}

func recoverV1(f *os.File, size int64) (logState, error) {
	st := logState{index: make(map[uint64]recordRef)}
	var hdr [recHdrV1]byte
	off := int64(0)
	for {
		_, err := f.ReadAt(hdr[:], off)
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			// Torn header: discard the tail.
			if terr := f.Truncate(off); terr != nil {
				return st, fmt.Errorf("truncating torn log: %w", terr)
			}
			break
		}
		if err != nil {
			return st, fmt.Errorf("scanning log: %w", err)
		}
		key := binary.BigEndian.Uint64(hdr[:8])
		vlen := binary.BigEndian.Uint32(hdr[8:])
		end := off + recHdrV1 + int64(vlen)
		if end > size {
			// Torn value: discard the tail.
			if terr := f.Truncate(off); terr != nil {
				return st, fmt.Errorf("truncating torn log: %w", terr)
			}
			break
		}
		st.account(key, off+recHdrV1, vlen)
		off = end
	}
	st.off = off
	return st, nil
}

func recoverV2(f *os.File, size int64) (logState, error) {
	st := logState{index: make(map[uint64]recordRef), v2: true}
	var hdr [recHdrV2]byte
	var val []byte
	off := int64(len(logMagic))
	for {
		_, err := f.ReadAt(hdr[:], off)
		if err == io.EOF {
			break
		}
		truncate := err == io.ErrUnexpectedEOF
		if err != nil && !truncate {
			return st, fmt.Errorf("scanning log: %w", err)
		}
		var key uint64
		var vlen, want uint32
		if !truncate {
			key = binary.BigEndian.Uint64(hdr[:8])
			vlen = binary.BigEndian.Uint32(hdr[8:12])
			want = binary.BigEndian.Uint32(hdr[12:16])
			if off+recHdrV2+int64(vlen) > size {
				truncate = true // torn value (or a corrupt length field)
			}
		}
		if !truncate {
			if int(vlen) > cap(val) {
				val = make([]byte, vlen)
			}
			val = val[:vlen]
			if _, err := f.ReadAt(val, off+recHdrV2); err != nil {
				return st, fmt.Errorf("scanning log: %w", err)
			}
			crc := crc32.Checksum(hdr[:recHdrV1], crcTable)
			crc = crc32.Update(crc, crcTable, val)
			// A CRC mismatch means corruption (torn write or bit rot) at
			// this record; everything before it verified, so keep the
			// longest valid prefix and discard the rest.
			truncate = crc != want
		}
		if truncate {
			if terr := f.Truncate(off); terr != nil {
				return st, fmt.Errorf("truncating corrupt log: %w", terr)
			}
			break
		}
		st.account(key, off+recHdrV2, vlen)
		off += recHdrV2 + int64(vlen)
	}
	st.off = off
	return st, nil
}

// rewriteLiveRecords is the compaction rewrite: every record still
// reachable through index is read back from src and written to a fresh v2
// log that atomically replaces logPath. The crash-safety ladder is the
// persistShardMeta discipline — temp file, fsync, rename, directory
// fsync — so the original log stays the authoritative copy until the
// rename lands, and a crash at any point leaves either the old log or the
// complete new one, never a mix. The temp file is removed on every
// failure path, including a failed fsync. On success the returned file
// handle is the renamed log.
func rewriteLiveRecords(src *os.File, index map[uint64]recordRef, logPath string) (*os.File, logState, error) {
	dir := filepath.Dir(logPath)
	tmp, err := os.CreateTemp(dir, compactTmpPattern)
	if err != nil {
		return nil, logState{}, fmt.Errorf("store: compacting %s: %w", filepath.Base(logPath), err)
	}
	fail := func(err error) (*os.File, logState, error) {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, logState{}, fmt.Errorf("store: compacting %s: %w", filepath.Base(logPath), err)
	}
	w := bufio.NewWriterSize(tmp, 1<<16)
	if _, err := w.Write(logMagic[:]); err != nil {
		return fail(err)
	}
	st := logState{index: make(map[uint64]recordRef, len(index)), v2: true}
	st.off = int64(len(logMagic))
	var hdr [recHdrV2]byte
	var val []byte
	for key, ref := range index {
		if int(ref.length) > cap(val) {
			val = make([]byte, ref.length)
		}
		val = val[:ref.length]
		if _, err := src.ReadAt(val, ref.off); err != nil {
			return fail(fmt.Errorf("reading live record %d: %w", key, err))
		}
		binary.BigEndian.PutUint64(hdr[:8], key)
		binary.BigEndian.PutUint32(hdr[8:12], ref.length)
		crc := crc32.Checksum(hdr[:recHdrV1], crcTable)
		crc = crc32.Update(crc, crcTable, val)
		binary.BigEndian.PutUint32(hdr[12:16], crc)
		if _, err := w.Write(hdr[:]); err != nil {
			return fail(err)
		}
		if _, err := w.Write(val); err != nil {
			return fail(err)
		}
		st.account(key, st.off+recHdrV2, ref.length)
		st.off += recHdrV2 + int64(ref.length)
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	_ = tmp.Chmod(0o644) // match the log perms CreateTemp's 0600 misses
	if err := os.Rename(tmp.Name(), logPath); err != nil {
		return fail(err)
	}
	syncDir(dir) // make the rename itself durable; best effort
	return tmp, st, nil
}

// syncDir fsyncs a directory so a just-renamed file survives a crash;
// best effort (some filesystems reject directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// removeCompactTemps deletes compaction temp files a crash left behind.
// Safe by construction: a temp file only becomes meaningful by being
// renamed over the log, so an orphan is garbage regardless of content.
func removeCompactTemps(dir string) {
	strays, err := filepath.Glob(filepath.Join(dir, compactTmpPattern))
	if err != nil {
		return
	}
	for _, p := range strays {
		_ = os.Remove(p)
	}
}

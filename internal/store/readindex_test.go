package store

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// openIndexed builds each disk backend with the read index enabled.
func openIndexed(t *testing.T, backend string, dir string, linger time.Duration) Store {
	t.Helper()
	st, err := OpenBackend(BackendConfig{
		Backend:    backend,
		Dir:        dir,
		Shards:     4,
		SyncLinger: linger,
		ReadIndex:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestReadIndexCorrectness: with the index on, Get returns the latest
// applied value across overwrites, survives compaction (which moves
// records but changes no values), and a reopen repopulates the index from
// the recovered log.
func TestReadIndexCorrectness(t *testing.T) {
	for _, backend := range []string{"disk", "sharded"} {
		t.Run(backend, func(t *testing.T) {
			dir := t.TempDir()
			st := openIndexed(t, backend, dir, 100*time.Microsecond)
			for k := uint64(0); k < 64; k++ {
				if err := st.Put(k, []byte(fmt.Sprintf("v1-%d", k))); err != nil {
					t.Fatal(err)
				}
			}
			for k := uint64(0); k < 32; k++ {
				if err := st.Put(k, []byte(fmt.Sprintf("v2-%d", k))); err != nil {
					t.Fatal(err)
				}
			}
			check := func(stage string) {
				t.Helper()
				for k := uint64(0); k < 64; k++ {
					want := fmt.Sprintf("v2-%d", k)
					if k >= 32 {
						want = fmt.Sprintf("v1-%d", k)
					}
					v, err := st.Get(k)
					if err != nil {
						t.Fatalf("%s: Get(%d): %v", stage, k, err)
					}
					if !bytes.Equal(v, []byte(want)) {
						t.Fatalf("%s: Get(%d) = %q, want %q", stage, k, v, want)
					}
				}
				if _, err := st.Get(9999); !errors.Is(err, ErrNotFound) {
					t.Fatalf("%s: Get(missing) = %v, want ErrNotFound", stage, err)
				}
			}
			check("before compaction")
			if err := st.(Compactor).Compact(); err != nil {
				t.Fatal(err)
			}
			check("after compaction")
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}

			st = openIndexed(t, backend, dir, 100*time.Microsecond)
			defer st.Close()
			check("after reopen")
		})
	}
}

// TestReadIndexGetCopies: a caller mutating a returned value must not
// poison the index.
func TestReadIndexGetCopies(t *testing.T) {
	st := openIndexed(t, "sharded", t.TempDir(), 0)
	defer st.Close()
	if err := st.Put(1, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	v, err := st.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	v[0] = 'X'
	v2, err := st.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v2, []byte("abc")) {
		t.Fatalf("Get aliases the index: %q", v2)
	}
}

// TestReadIndexConcurrentReads is the local-read race check: reader
// goroutines hammer Get — the path the consensus-bypassing read path uses —
// while writers overwrite the same keys and compactions rewrite the logs
// underneath. Run under -race (CI does); correctness here means every read
// observes some applied value, never a torn or stale-beyond-applied one.
func TestReadIndexConcurrentReads(t *testing.T) {
	for _, backend := range []string{"disk", "sharded"} {
		t.Run(backend, func(t *testing.T) {
			st := openIndexed(t, backend, t.TempDir(), 0)
			defer st.Close()

			const keys = 32
			// Seed every key so readers never see NotFound.
			for k := uint64(0); k < keys; k++ {
				if err := st.Put(k, versionValue(k, 0)); err != nil {
					t.Fatal(err)
				}
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			errs := make(chan error, 8)
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					k := uint64(r)
					for {
						select {
						case <-stop:
							return
						default:
						}
						k = (k + 7) % keys
						v, err := st.Get(k)
						if err != nil {
							errs <- fmt.Errorf("Get(%d): %w", k, err)
							return
						}
						if len(v) < 16 || !bytes.Equal(v[:8], versionValue(k, 0)[:8]) {
							errs <- fmt.Errorf("Get(%d) returned torn value %q", k, v)
							return
						}
					}
				}(r)
			}
			// Writer + compactor share the main goroutine: overwrite every
			// key repeatedly with full-log compactions interleaved.
			for round := uint64(1); round <= 50; round++ {
				for k := uint64(0); k < keys; k++ {
					if err := st.Put(k, versionValue(k, round)); err != nil {
						t.Fatal(err)
					}
				}
				if round%10 == 0 {
					if err := st.(Compactor).Compact(); err != nil {
						t.Fatal(err)
					}
				}
			}
			close(stop)
			wg.Wait()
			select {
			case err := <-errs:
				t.Fatal(err)
			default:
			}
		})
	}
}

// versionValue builds a value whose first 8 bytes identify the key and the
// rest the version, so a torn read is detectable.
func versionValue(key, version uint64) []byte {
	return []byte(fmt.Sprintf("%08d-version-%08d", key, version))
}

package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// stores builds one of each Store implementation for shared conformance
// tests.
func stores(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := OpenDisk(filepath.Join(t.TempDir(), "records.log"), DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{
		"mem":  NewMemStore(100),
		"disk": disk,
	}
}

func TestStoreConformance(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			if _, err := s.Get(1); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get on empty = %v, want ErrNotFound", err)
			}
			if err := s.Put(1, []byte("one")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put(2, []byte("two")); err != nil {
				t.Fatal(err)
			}
			v, err := s.Get(1)
			if err != nil || string(v) != "one" {
				t.Fatalf("Get(1) = (%q,%v)", v, err)
			}
			// Overwrite.
			if err := s.Put(1, []byte("uno")); err != nil {
				t.Fatal(err)
			}
			v, err = s.Get(1)
			if err != nil || string(v) != "uno" {
				t.Fatalf("Get(1) after overwrite = (%q,%v)", v, err)
			}
			if s.Len() != 2 {
				t.Fatalf("Len = %d, want 2", s.Len())
			}
			// Empty value round-trips.
			if err := s.Put(3, nil); err != nil {
				t.Fatal(err)
			}
			v, err = s.Get(3)
			if err != nil || len(v) != 0 {
				t.Fatalf("Get(3) = (%q,%v)", v, err)
			}
		})
	}
}

func TestStoreClosedErrors(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if err := s.Put(1, []byte("x")); !errors.Is(err, ErrClosed) {
				t.Fatalf("Put after close = %v", err)
			}
			if _, err := s.Get(1); !errors.Is(err, ErrClosed) {
				t.Fatalf("Get after close = %v", err)
			}
		})
	}
}

func TestStoreValueIsolation(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			src := []byte("mutable")
			if err := s.Put(1, src); err != nil {
				t.Fatal(err)
			}
			src[0] = 'X' // caller mutates its buffer after Put
			v, err := s.Get(1)
			if err != nil {
				t.Fatal(err)
			}
			if string(v) != "mutable" {
				t.Fatalf("store aliased caller buffer: %q", v)
			}
			v[0] = 'Y' // caller mutates the returned buffer
			v2, _ := s.Get(1)
			if string(v2) != "mutable" {
				t.Fatalf("store returned aliased buffer: %q", v2)
			}
		})
	}
}

func TestMemStoreConcurrent(t *testing.T) {
	s := NewMemStore(1000)
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := uint64(w*2000 + i)
				val := []byte(fmt.Sprintf("v-%d", key))
				if err := s.Put(key, val); err != nil {
					t.Error(err)
					return
				}
				got, err := s.Get(key)
				if err != nil || !bytes.Equal(got, val) {
					t.Errorf("Get(%d) = (%q,%v)", key, got, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 16000 {
		t.Fatalf("Len = %d, want 16000", s.Len())
	}
}

func TestMemStorePutMany(t *testing.T) {
	s := NewMemStore(100)
	defer s.Close()
	src := []byte("batched")
	kvs := []KV{{1, src}, {2, []byte("two")}, {1, []byte("one-v2")}}
	if err := s.PutMany(kvs); err != nil {
		t.Fatal(err)
	}
	src[0] = 'X' // batched writes must copy, like Put
	if v, err := s.Get(1); err != nil || string(v) != "one-v2" {
		t.Fatalf("Get(1) = (%q,%v), want in-order last write", v, err)
	}
	if v, err := s.Get(2); err != nil || string(v) != "two" {
		t.Fatalf("Get(2) = (%q,%v)", v, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.PutMany(kvs); !errors.Is(err, ErrClosed) {
		t.Fatalf("PutMany after close = %v, want ErrClosed", err)
	}
}

// TestMemStorePutManyConcurrentPartitions is the execution-shard contract:
// key-disjoint partitions applied concurrently must land exactly as if
// applied serially.
func TestMemStorePutManyConcurrentPartitions(t *testing.T) {
	s := NewMemStore(1000)
	defer s.Close()
	const parts, per = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < parts; p++ {
		kvs := make([]KV, per)
		for i := range kvs {
			key := uint64(p + i*parts) // disjoint: key % parts == p
			kvs[i] = KV{Key: key, Value: []byte(fmt.Sprintf("v-%d", key))}
		}
		wg.Add(1)
		go func(kvs []KV) {
			defer wg.Done()
			if err := s.PutMany(kvs); err != nil {
				t.Error(err)
			}
		}(kvs)
	}
	wg.Wait()
	if s.Len() != parts*per {
		t.Fatalf("Len = %d, want %d", s.Len(), parts*per)
	}
	for key := uint64(0); key < parts*per; key++ {
		v, err := s.Get(key)
		if err != nil || string(v) != fmt.Sprintf("v-%d", key) {
			t.Fatalf("Get(%d) = (%q,%v)", key, v, err)
		}
	}
}

func TestDiskStoreRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "records.log")
	s, err := OpenDisk(path, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if err := s.Put(i, []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite some keys so recovery must keep only the latest version.
	if err := s.Put(7, []byte("seven-v2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDisk(path, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 100 {
		t.Fatalf("recovered Len = %d, want 100", s2.Len())
	}
	v, err := s2.Get(7)
	if err != nil || string(v) != "seven-v2" {
		t.Fatalf("recovered Get(7) = (%q,%v)", v, err)
	}
	v, err = s2.Get(42)
	if err != nil || string(v) != "value-42" {
		t.Fatalf("recovered Get(42) = (%q,%v)", v, err)
	}
}

func TestDiskStoreTornWriteRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "records.log")
	s, err := OpenDisk(path, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(1, []byte("complete")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: append half a record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 0, 0, 0, 0, 9, 0, 0}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenDisk(path, DiskOptions{})
	if err != nil {
		t.Fatalf("recovery after torn write: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s2.Len())
	}
	v, err := s2.Get(1)
	if err != nil || string(v) != "complete" {
		t.Fatalf("Get(1) = (%q,%v)", v, err)
	}
	// The store must be writable again after truncating the torn tail.
	if err := s2.Put(2, []byte("after")); err != nil {
		t.Fatal(err)
	}
	v, err = s2.Get(2)
	if err != nil || string(v) != "after" {
		t.Fatalf("Get(2) = (%q,%v)", v, err)
	}
}

// TestDiskStoreTornValueRecovery covers the other torn-write shape: a
// complete 12-byte header whose value bytes were only partially written.
// Recovery must discard the tail record — keeping the key's previous
// version — and the truncation must survive further restarts.
func TestDiskStoreTornValueRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "records.log")
	s, err := OpenDisk(path, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(1, []byte("one-v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(2, []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Torn value for key 1: the header claims 100 bytes, only 20 landed.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	hdr := make([]byte, 12)
	hdr[7] = 1    // key 1, big-endian
	hdr[11] = 100 // value length 100
	if _, err := f.Write(append(hdr, bytes.Repeat([]byte{0xAB}, 20)...)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenDisk(path, DiskOptions{})
	if err != nil {
		t.Fatalf("recovery after torn value: %v", err)
	}
	if s2.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s2.Len())
	}
	// The torn overwrite must not shadow the intact earlier version.
	if v, err := s2.Get(1); err != nil || string(v) != "one-v1" {
		t.Fatalf("Get(1) = (%q,%v), want the pre-torn version", v, err)
	}
	if err := s2.Put(3, []byte("three")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Second restart: the truncated log plus the new record must recover
	// cleanly — the tail repair is durable, not a one-shot in-memory fix.
	s3, err := OpenDisk(path, DiskOptions{})
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	defer s3.Close()
	if s3.Len() != 3 {
		t.Fatalf("Len after second recovery = %d, want 3", s3.Len())
	}
	for key, want := range map[uint64]string{1: "one-v1", 2: "two", 3: "three"} {
		if v, err := s3.Get(key); err != nil || string(v) != want {
			t.Fatalf("Get(%d) = (%q,%v), want %q", key, v, err, want)
		}
	}
}

// ---- Calibration benchmarks for the Section 5.7 storage experiment. ----

func BenchmarkMemStorePut(b *testing.B) {
	s := NewMemStore(b.N)
	defer s.Close()
	val := bytes.Repeat([]byte{0x11}, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(uint64(i%600000), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiskStorePut(b *testing.B) {
	s, err := OpenDisk(filepath.Join(b.TempDir(), "bench.log"), DiskOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := bytes.Repeat([]byte{0x11}, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(uint64(i%600000), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemStoreGet(b *testing.B) {
	s := NewMemStore(1000)
	defer s.Close()
	val := bytes.Repeat([]byte{0x11}, 100)
	for i := uint64(0); i < 1000; i++ {
		if err := s.Put(i, val); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(uint64(i % 1000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiskStoreGet(b *testing.B) {
	s, err := OpenDisk(filepath.Join(b.TempDir(), "bench.log"), DiskOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := bytes.Repeat([]byte{0x11}, 100)
	for i := uint64(0); i < 1000; i++ {
		if err := s.Put(i, val); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(uint64(i % 1000)); err != nil {
			b.Fatal(err)
		}
	}
}

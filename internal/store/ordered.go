package store

import (
	"errors"
	"sort"
	"sync"
)

// Scanner is an optional Store capability: an ordered view over the live
// keys, the storage half of the general-transaction refactor (range scans
// travel the same execute pipeline as reads). All three backends implement
// it through an insert-only ordered key sidecar — the fabric has no
// deletes, so the sidecar only ever grows, which keeps it a sorted set
// maintained outside the stores' own locks.
//
// The consistency contract is snapshot-per-key, not a range snapshot: a
// Scan runs concurrently with Put/PutMany/Compact, every key present
// before the Scan started is visited (keys never disappear — overwrites
// keep their key, and compaction rewrites logs without touching the key
// set), each visited key resolves to its live value at visit time, and
// keys inserted mid-scan behind the cursor may or may not appear.
// Deterministic scans (byte-identical across replicas) are the execute
// coordinator's job: it orders scans against the write stream with its
// shard flush barrier, so the store-level contract only needs to be
// race-free, not serializable.
type Scanner interface {
	// Scan visits every live record with start <= key <= end in ascending
	// key order, calling fn for each until fn returns false or the range
	// is exhausted. The value slice is owned by the callee after fn
	// returns (stores pass copies).
	Scan(start, end uint64, fn func(key uint64, value []byte) bool) error
}

// orderedBlockMax bounds one sidecar block; a block that outgrows it
// splits in two, keeping inserts O(block) instead of O(keys). The memory
// cost of the sidecar is 8 bytes per live key plus per-block slice
// headers — ~8.1 bytes/record at this block size.
const orderedBlockMax = 512

// orderedKeys is the insert-only sorted key set behind every Scanner:
// sorted non-overlapping blocks of ascending uint64 keys. Lookups binary
// search the block directory then the block. The fast path is the
// overwrite (key already present), which takes only the read lock.
type orderedKeys struct {
	mu     sync.RWMutex
	blocks [][]uint64
	n      int
}

// newOrderedKeys builds a sidecar from an existing key set (disk backends
// seed it from their recovered indexes at open). keys may arrive in any
// order and is not retained.
func newOrderedKeys(keys []uint64) *orderedKeys {
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	o := &orderedKeys{}
	for len(keys) > 0 {
		nb := len(keys)
		if nb > orderedBlockMax {
			nb = orderedBlockMax
		}
		block := make([]uint64, nb)
		copy(block, keys[:nb])
		o.blocks = append(o.blocks, block)
		o.n += nb
		keys = keys[nb:]
	}
	return o
}

// insert adds k to the set; present keys (the overwrite-dominated common
// case) return under the read lock alone.
func (o *orderedKeys) insert(k uint64) {
	o.mu.RLock()
	found := o.containsLocked(k)
	o.mu.RUnlock()
	if found {
		return
	}
	o.mu.Lock()
	o.insertLocked(k)
	o.mu.Unlock()
}

// containsLocked reports membership; the caller holds mu (either mode).
func (o *orderedKeys) containsLocked(k uint64) bool {
	bi := o.blockFor(k)
	if bi >= len(o.blocks) {
		return false
	}
	b := o.blocks[bi]
	pos := sort.Search(len(b), func(i int) bool { return b[i] >= k })
	return pos < len(b) && b[pos] == k
}

// blockFor returns the index of the only block that could contain k: the
// last block whose first key is <= k (0 if k sorts before everything).
func (o *orderedKeys) blockFor(k uint64) int {
	bi := sort.Search(len(o.blocks), func(i int) bool { return o.blocks[i][0] > k }) - 1
	if bi < 0 {
		bi = 0
	}
	return bi
}

func (o *orderedKeys) insertLocked(k uint64) {
	if len(o.blocks) == 0 {
		o.blocks = append(o.blocks, []uint64{k})
		o.n++
		return
	}
	bi := o.blockFor(k)
	b := o.blocks[bi]
	pos := sort.Search(len(b), func(i int) bool { return b[i] >= k })
	if pos < len(b) && b[pos] == k {
		return
	}
	b = append(b, 0)
	copy(b[pos+1:], b[pos:])
	b[pos] = k
	o.n++
	if len(b) <= orderedBlockMax {
		o.blocks[bi] = b
		return
	}
	// Split: left half keeps the slot, right half slides in after it. The
	// halves get private arrays so later appends never alias each other.
	half := len(b) / 2
	left := append([]uint64(nil), b[:half]...)
	right := append([]uint64(nil), b[half:]...)
	o.blocks[bi] = left
	o.blocks = append(o.blocks, nil)
	copy(o.blocks[bi+2:], o.blocks[bi+1:])
	o.blocks[bi+1] = right
}

// size returns the number of keys in the set.
func (o *orderedKeys) size() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.n
}

// chunk appends to out (up to its capacity) the keys in [start, end],
// ascending, and returns the extended slice. Bounded chunks are what let
// scanVia release the sidecar lock before touching store locks.
func (o *orderedKeys) chunk(start, end uint64, out []uint64) []uint64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	bi := sort.Search(len(o.blocks), func(i int) bool {
		b := o.blocks[i]
		return b[len(b)-1] >= start
	})
	for ; bi < len(o.blocks); bi++ {
		b := o.blocks[bi]
		lo := sort.Search(len(b), func(i int) bool { return b[i] >= start })
		for _, k := range b[lo:] {
			if k > end {
				return out
			}
			out = append(out, k)
			if len(out) == cap(out) {
				return out
			}
		}
	}
	return out
}

// scanVia drives one Scan over an ordered sidecar: keys are gathered in
// bounded chunks under the sidecar's read lock, then each is resolved
// through get with no sidecar lock held. Never holding the sidecar lock
// across a store lock is what makes Scan deadlock-free against writers,
// which take store locks first and the sidecar lock second. A key the
// store cannot resolve yet (an insert racing ahead of the sidecar's
// bookkeeping cannot happen — stores insert into the sidecar last — but a
// fault-injecting wrapper may refuse) is skipped, not fatal; other get
// errors abort the scan.
func scanVia(o *orderedKeys, get func(uint64) ([]byte, error), start, end uint64, fn func(uint64, []byte) bool) error {
	if start > end {
		return nil
	}
	var arr [128]uint64
	cur := start
	for {
		keys := o.chunk(cur, end, arr[:0])
		if len(keys) == 0 {
			return nil
		}
		for _, k := range keys {
			v, err := get(k)
			if err != nil {
				if errors.Is(err, ErrNotFound) {
					continue
				}
				return err
			}
			if !fn(k, v) {
				return nil
			}
		}
		last := keys[len(keys)-1]
		if last >= end || last == ^uint64(0) {
			return nil
		}
		cur = last + 1
	}
}

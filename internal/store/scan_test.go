package store

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// scanBackends builds one instance of each Scanner-capable backend for a
// subtest run. Disk backends get the read index enabled (the replica
// deployment shape) and the sharded store a short group-commit linger so
// scans race real fsync scheduling.
func scanBackends(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := OpenDisk(filepath.Join(t.TempDir(), "records.log"), DiskOptions{ReadIndex: true})
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	sharded, err := OpenShardedDisk(t.TempDir(), ShardedDiskOptions{Shards: 4, SyncLinger: 200 * time.Microsecond, ReadIndex: true})
	if err != nil {
		t.Fatalf("OpenShardedDisk: %v", err)
	}
	return map[string]Store{
		"mem":     NewMemStore(64),
		"disk":    disk,
		"sharded": sharded,
	}
}

func TestScanOrderAndBounds(t *testing.T) {
	for name, st := range scanBackends(t) {
		t.Run(name, func(t *testing.T) {
			defer st.Close()
			// Insert out of order, with overwrites, spanning several sidecar
			// chunks (the scanVia chunk size is 128).
			const n = 400
			perm := rand.New(rand.NewSource(7)).Perm(n)
			for _, i := range perm {
				if err := st.Put(uint64(i*3), []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Fatalf("Put: %v", err)
				}
			}
			for i := 0; i < n; i += 5 {
				if err := st.Put(uint64(i*3), []byte(fmt.Sprintf("w%d", i))); err != nil {
					t.Fatalf("overwrite: %v", err)
				}
			}
			sc := st.(Scanner)

			var keys []uint64
			err := sc.Scan(30, 90, func(k uint64, v []byte) bool {
				keys = append(keys, k)
				i := int(k / 3)
				want := fmt.Sprintf("v%d", i)
				if i%5 == 0 {
					want = fmt.Sprintf("w%d", i)
				}
				if string(v) != want {
					t.Errorf("key %d: value %q, want %q", k, v, want)
				}
				return true
			})
			if err != nil {
				t.Fatalf("Scan: %v", err)
			}
			if len(keys) != 21 { // 30, 33, ..., 90
				t.Fatalf("scan [30,90] returned %d keys, want 21: %v", len(keys), keys)
			}
			for i := range keys {
				if keys[i] != uint64(30+3*i) {
					t.Fatalf("keys out of order at %d: %v", i, keys)
				}
			}

			// Whole-range scan sees every key, ascending.
			var all []uint64
			if err := sc.Scan(0, ^uint64(0), func(k uint64, _ []byte) bool {
				all = append(all, k)
				return true
			}); err != nil {
				t.Fatalf("full Scan: %v", err)
			}
			if len(all) != n {
				t.Fatalf("full scan returned %d keys, want %d", len(all), n)
			}
			for i := 1; i < len(all); i++ {
				if all[i-1] >= all[i] {
					t.Fatalf("full scan not strictly ascending at %d: %d then %d", i, all[i-1], all[i])
				}
			}

			// Inverted range and early stop.
			if err := sc.Scan(90, 30, func(uint64, []byte) bool {
				t.Fatal("inverted range visited a key")
				return false
			}); err != nil {
				t.Fatalf("inverted Scan: %v", err)
			}
			seen := 0
			if err := sc.Scan(0, ^uint64(0), func(uint64, []byte) bool {
				seen++
				return seen < 5
			}); err != nil {
				t.Fatalf("early-stop Scan: %v", err)
			}
			if seen != 5 {
				t.Fatalf("early stop visited %d keys, want 5", seen)
			}
		})
	}
}

// TestScanAfterReopen checks the disk backends seed their ordered sidecar
// from the recovered index, so scans work on a freshly reopened store.
func TestScanAfterReopen(t *testing.T) {
	dir := t.TempDir()
	diskPath := filepath.Join(dir, "records.log")
	shardDir := filepath.Join(dir, "shards")

	disk, err := OpenDisk(diskPath, DiskOptions{})
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	sharded, err := OpenShardedDisk(shardDir, ShardedDiskOptions{Shards: 3})
	if err != nil {
		t.Fatalf("OpenShardedDisk: %v", err)
	}
	for k := uint64(0); k < 100; k++ {
		if err := disk.Put(k, []byte{byte(k)}); err != nil {
			t.Fatalf("disk Put: %v", err)
		}
		if err := sharded.Put(k, []byte{byte(k)}); err != nil {
			t.Fatalf("sharded Put: %v", err)
		}
	}
	disk.Close()
	sharded.Close()

	disk, err = OpenDisk(diskPath, DiskOptions{ReadIndex: true})
	if err != nil {
		t.Fatalf("reopen disk: %v", err)
	}
	defer disk.Close()
	sharded, err = OpenShardedDisk(shardDir, ShardedDiskOptions{})
	if err != nil {
		t.Fatalf("reopen sharded: %v", err)
	}
	defer sharded.Close()

	for name, sc := range map[string]Scanner{"disk": disk, "sharded": sharded} {
		next := uint64(10)
		if err := sc.Scan(10, 19, func(k uint64, v []byte) bool {
			if k != next || len(v) != 1 || v[0] != byte(k) {
				t.Errorf("%s: row (%d,%v), want (%d,[%d])", name, k, v, next, byte(next))
			}
			next++
			return true
		}); err != nil {
			t.Fatalf("%s reopen Scan: %v", name, err)
		}
		if next != 20 {
			t.Fatalf("%s reopen scan visited %d keys, want 10", name, next-10)
		}
	}
}

// TestScanConcurrentWithWrites races scans against Put, PutMany, and
// Compact on every backend: the snapshot-per-key contract says a scan
// must stay deadlock-free and ascending, visit every key that existed
// before it started, and resolve each visited key to some live value.
// Run with -race this is also the sidecar's data-race proof.
func TestScanConcurrentWithWrites(t *testing.T) {
	for name, st := range scanBackends(t) {
		t.Run(name, func(t *testing.T) {
			defer st.Close()
			const base = 512
			for k := uint64(0); k < base; k++ {
				if err := st.Put(k, []byte{0}); err != nil {
					t.Fatalf("seed Put: %v", err)
				}
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(2)
			go func() { // writer: overwrites + fresh keys, point and batched
				defer wg.Done()
				rnd := rand.New(rand.NewSource(11))
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if i%3 == 0 {
						kvs := make([]KV, 8)
						for j := range kvs {
							kvs[j] = KV{Key: uint64(rnd.Intn(2 * base)), Value: []byte{byte(i)}}
						}
						if b, ok := st.(Batcher); ok {
							if err := b.PutMany(kvs); err != nil {
								t.Errorf("PutMany: %v", err)
								return
							}
							continue
						}
					}
					if err := st.Put(uint64(rnd.Intn(2*base)), []byte{byte(i)}); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				}
			}()
			go func() { // compactor, where the backend has one
				defer wg.Done()
				c, ok := st.(Compactor)
				if !ok {
					return
				}
				for {
					select {
					case <-stop:
						return
					default:
					}
					if err := c.Compact(); err != nil {
						t.Errorf("Compact: %v", err)
						return
					}
				}
			}()

			deadline := time.Now().Add(300 * time.Millisecond)
			for time.Now().Before(deadline) {
				var prev uint64
				count, first := 0, true
				err := st.(Scanner).Scan(0, 2*base, func(k uint64, v []byte) bool {
					if !first && k <= prev {
						t.Errorf("scan not ascending: %d after %d", k, prev)
						return false
					}
					if len(v) != 1 {
						t.Errorf("key %d: bad value %v", k, v)
						return false
					}
					prev, first = k, false
					count++
					return true
				})
				if err != nil {
					t.Fatalf("Scan: %v", err)
				}
				if count < base {
					t.Fatalf("scan saw %d keys, want >= %d (pre-existing keys must all appear)", count, base)
				}
			}
			close(stop)
			wg.Wait()
		})
	}
}

// TestOrderedKeysBlocks exercises the sidecar's block split and seeding
// paths directly across several thousand keys.
func TestOrderedKeysBlocks(t *testing.T) {
	o := &orderedKeys{}
	rnd := rand.New(rand.NewSource(3))
	perm := rnd.Perm(5000)
	for _, k := range perm {
		o.insert(uint64(k * 2))
	}
	for _, k := range perm[:500] { // duplicates are no-ops
		o.insert(uint64(k * 2))
	}
	if o.size() != 5000 {
		t.Fatalf("size = %d, want 5000", o.size())
	}
	seeded := newOrderedKeys(func() []uint64 {
		keys := make([]uint64, 5000)
		for i, k := range perm {
			keys[i] = uint64(k * 2)
		}
		return keys
	}())
	for _, o := range []*orderedKeys{o, seeded} {
		got := o.chunk(0, ^uint64(0), make([]uint64, 0, 6000))
		if len(got) != 5000 {
			t.Fatalf("chunk returned %d keys, want 5000", len(got))
		}
		for i := range got {
			if got[i] != uint64(i*2) {
				t.Fatalf("key %d = %d, want %d", i, got[i], i*2)
			}
		}
	}
}

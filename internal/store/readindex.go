package store

import "sync"

// readIndex is an in-memory map of each key's latest applied value,
// maintained alongside a disk backend's append log. With it enabled, Get
// is answered entirely from memory — no log-file read, no store or shard
// lock — so the locally-served read path never stalls behind writers,
// group commits, or compaction rewrites. Writers update the index after
// appending, so it always reflects the applied (not necessarily yet
// fsynced) state, which is exactly the last-executed snapshot the local
// read path serves; durability remains the log's concern.
//
// The raw stores leave the index off by default: the Section 5.7
// experiment's property under test is the blocking storage API, and an
// always-on cache would erase the contrast. OpenBackend turns it on for
// replica deployments.
type readIndex struct {
	mu sync.RWMutex
	m  map[uint64][]byte
}

func newReadIndex(hint int) *readIndex {
	return &readIndex{m: make(map[uint64][]byte, hint)}
}

// get returns a copy of the latest value for key, so callers can hold the
// result while writers keep updating the index.
func (ri *readIndex) get(key uint64) ([]byte, bool) {
	ri.mu.RLock()
	v, ok := ri.m[key]
	if !ok {
		ri.mu.RUnlock()
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	ri.mu.RUnlock()
	return out, true
}

// put stores a copy of value, so callers may recycle their buffers.
func (ri *readIndex) put(key uint64, value []byte) {
	v := make([]byte, len(value))
	copy(v, value)
	ri.mu.Lock()
	ri.m[key] = v
	ri.mu.Unlock()
}

// putMany stores copies of a batch under one lock acquisition.
func (ri *readIndex) putMany(kvs []KV) {
	ri.mu.Lock()
	for i := range kvs {
		v := make([]byte, len(kvs[i].Value))
		copy(v, kvs[i].Value)
		ri.m[kvs[i].Key] = v
	}
	ri.mu.Unlock()
}

// loadReadIndex eagerly populates a fresh index from a just-recovered
// log: every live record's value is read back once at open, after which
// no Get ever touches the file again.
func loadReadIndex(f interface {
	ReadAt(p []byte, off int64) (int, error)
}, index map[uint64]recordRef) (*readIndex, error) {
	ri := newReadIndex(len(index))
	for k, ref := range index {
		v := make([]byte, ref.length)
		if _, err := f.ReadAt(v, ref.off); err != nil {
			return nil, err
		}
		ri.m[k] = v
	}
	return ri, nil
}

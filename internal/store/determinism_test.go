// Determinism tests live in an external test package so they can drive
// the stores with the real workload generator (workload imports store, so
// an internal test file could not import it back).
package store_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"resilientdb/internal/store"
	"resilientdb/internal/workload"
)

// TestZipfianStoreDeterminism is the store half of the execution
// determinism contract: a randomized Zipfian write history, partitioned
// by the canonical shard hash and applied with concurrent per-partition
// PutMany calls, must leave MemStore and the sharded group-commit
// DiskStore in byte-identical final state — same live keys, same bytes —
// regardless of how the concurrent partitions interleave.
func TestZipfianStoreDeterminism(t *testing.T) {
	const (
		records = 2048
		batches = 40
		perB    = 64
		shards  = 4
	)
	wl, err := workload.New(workload.Config{
		Records:      records,
		OpsPerTxn:    4,
		ValueSize:    48,
		Distribution: workload.Zipf,
		Seed:         99,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}

	mem := store.NewMemStore(records)
	defer mem.Close()
	disk, err := store.OpenShardedDisk(t.TempDir(), store.ShardedDiskOptions{
		Shards:     shards,
		SyncLinger: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()

	// Apply the same batch history to both stores: partition each batch by
	// ShardOf and fan the partitions out concurrently, exactly as the
	// execute stage does. Same-key writes stay ordered because one key
	// always maps to one partition, and batches are separated by a barrier.
	// Halfway through, the disk store compacts — a log rewrite mid-history
	// must be invisible to the final state.
	for b := 0; b < batches; b++ {
		if b == batches/2 {
			if err := disk.Compact(); err != nil {
				t.Fatal(err)
			}
		}
		parts := make([][]store.KV, shards)
		req := wl.NextRequest(1, uint64(b*perB+1), perB)
		for i := range req.Txns {
			for _, op := range req.Txns[i].Ops {
				sh := workload.ShardOf(op.Key, shards)
				parts[sh] = append(parts[sh], store.KV{Key: op.Key, Value: op.Value})
			}
		}
		for _, st := range []store.Store{mem, disk} {
			batcher := st.(store.Batcher)
			var wg sync.WaitGroup
			for sh := range parts {
				if len(parts[sh]) == 0 {
					continue
				}
				wg.Add(1)
				go func(kvs []store.KV) {
					defer wg.Done()
					if err := batcher.PutMany(kvs); err != nil {
						t.Error(err)
					}
				}(parts[sh])
			}
			wg.Wait()
		}
	}

	if mem.Len() != disk.Len() {
		t.Fatalf("live record counts diverged: mem %d vs sharded disk %d", mem.Len(), disk.Len())
	}
	var memState, diskState bytes.Buffer
	live := 0
	for k := uint64(0); k < records; k++ {
		mv, merr := mem.Get(k)
		dv, derr := disk.Get(k)
		if (merr == nil) != (derr == nil) {
			t.Fatalf("key %d liveness diverged: mem err %v vs disk err %v", k, merr, derr)
		}
		if merr != nil {
			continue
		}
		live++
		fmt.Fprintf(&memState, "%d=%x;", k, mv)
		fmt.Fprintf(&diskState, "%d=%x;", k, dv)
	}
	if live == 0 {
		t.Fatal("workload wrote no records")
	}
	if !bytes.Equal(memState.Bytes(), diskState.Bytes()) {
		t.Fatal("MemStore and sharded DiskStore final states are not byte-identical")
	}
	if cs := disk.CompactStats(); cs.Compactions == 0 {
		t.Fatal("the disk store never compacted: the mid-run rewrite was not exercised")
	}
}

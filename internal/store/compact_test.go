package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// shardLogSizes returns the size of every shard log under dir.
func shardLogSizes(t *testing.T, dir string) int64 {
	t.Helper()
	logs, err := filepath.Glob(filepath.Join(dir, "shard-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, p := range logs {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

// writeOverwriteHistory writes versions rounds of the keys [0, keys), so
// every key's final value is "v<versions-1>-<key>" and the logs hold
// versions times the live data.
func writeOverwriteHistory(t *testing.T, s Store, keys uint64, versions int) {
	t.Helper()
	for v := 0; v < versions; v++ {
		for k := uint64(0); k < keys; k++ {
			if err := s.Put(k, []byte(fmt.Sprintf("v%d-%d", v, k))); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func checkFinalHistory(t *testing.T, s Store, keys uint64, versions int) {
	t.Helper()
	if got := s.Len(); got != int(keys) {
		t.Fatalf("Len = %d, want %d", got, keys)
	}
	for k := uint64(0); k < keys; k++ {
		want := fmt.Sprintf("v%d-%d", versions-1, k)
		if v, err := s.Get(k); err != nil || string(v) != want {
			t.Fatalf("Get(%d) = (%q,%v), want %q", k, v, err, want)
		}
	}
}

// TestShardedDiskCompactionBoundsLog: after an overwrite-heavy history,
// Compact must shrink the logs to ≈ live data, keep every live value
// readable, survive a reopen (the compacted logs are v2, CRC-verified),
// and report its work through CompactStats.
func TestShardedDiskCompactionBoundsLog(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenShardedDisk(dir, ShardedDiskOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	const keys, versions = 128, 10
	writeOverwriteHistory(t, s, keys, versions)
	pre := shardLogSizes(t, dir)

	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	post := shardLogSizes(t, dir)
	if post >= pre/2 {
		t.Fatalf("compaction barely shrank the logs: %d -> %d bytes (%d versions of history)", pre, post, versions)
	}
	checkFinalHistory(t, s, keys, versions)

	cs := s.CompactStats()
	if cs.Compactions != 4 {
		t.Fatalf("Compactions = %d, want 4 (one per shard)", cs.Compactions)
	}
	if cs.Failures != 0 {
		t.Fatalf("Failures = %d, want 0", cs.Failures)
	}
	if cs.ReclaimedBytes == 0 || int64(cs.ReclaimedBytes) < pre-post-64 {
		t.Fatalf("ReclaimedBytes = %d, logs shrank by %d", cs.ReclaimedBytes, pre-post)
	}
	if cs.StallNS == 0 {
		t.Fatal("StallNS = 0: compaction stall time not recorded")
	}

	// Writes after compaction land in the new logs; everything must
	// survive a restart.
	if err := s.Put(keys, []byte("after-compact")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenShardedDisk(dir, ShardedDiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, err := s2.Get(keys); err != nil || string(v) != "after-compact" {
		t.Fatalf("Get(%d) = (%q,%v)", keys, v, err)
	}
	checkFinalHistoryLenient(t, s2, keys, versions)
}

func checkFinalHistoryLenient(t *testing.T, s Store, keys uint64, versions int) {
	t.Helper()
	for k := uint64(0); k < keys; k++ {
		want := fmt.Sprintf("v%d-%d", versions-1, k)
		if v, err := s.Get(k); err != nil || string(v) != want {
			t.Fatalf("recovered Get(%d) = (%q,%v), want %q", k, v, err, want)
		}
	}
}

// TestShardedDiskMaybeCompactThresholds: the garbage-ratio trigger must
// skip clean or under-floor logs, fire past the threshold, and stay off
// when disabled.
func TestShardedDiskMaybeCompactThresholds(t *testing.T) {
	t.Run("floor", func(t *testing.T) {
		s, err := OpenShardedDisk(t.TempDir(), ShardedDiskOptions{Shards: 2, CompactRatio: 0.1, CompactMinBytes: 1 << 30})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		writeOverwriteHistory(t, s, 64, 4)
		n, err := s.MaybeCompact()
		if err != nil || n != 0 {
			t.Fatalf("MaybeCompact under the size floor = (%d,%v), want (0,nil)", n, err)
		}
	})
	t.Run("ratio", func(t *testing.T) {
		s, err := OpenShardedDisk(t.TempDir(), ShardedDiskOptions{Shards: 2, CompactRatio: 0.5, CompactMinBytes: -1})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		// One version: no garbage at all, nothing to compact.
		writeOverwriteHistory(t, s, 64, 1)
		if n, err := s.MaybeCompact(); err != nil || n != 0 {
			t.Fatalf("MaybeCompact with no garbage = (%d,%v), want (0,nil)", n, err)
		}
		// Four versions: 75% garbage, both shards must fire.
		writeOverwriteHistory(t, s, 64, 4)
		n, err := s.MaybeCompact()
		if err != nil || n != 2 {
			t.Fatalf("MaybeCompact past the ratio = (%d,%v), want (2,nil)", n, err)
		}
		checkFinalHistory(t, s, 64, 4)
		// Immediately after compacting there is no garbage again.
		if n, _ := s.MaybeCompact(); n != 0 {
			t.Fatalf("MaybeCompact right after compaction = %d, want 0", n)
		}
	})
	t.Run("disabled", func(t *testing.T) {
		s, err := OpenShardedDisk(t.TempDir(), ShardedDiskOptions{Shards: 2, CompactRatio: -1, CompactMinBytes: -1})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		writeOverwriteHistory(t, s, 64, 8)
		if n, err := s.MaybeCompact(); err != nil || n != 0 {
			t.Fatalf("disabled MaybeCompact = (%d,%v), want (0,nil)", n, err)
		}
	})
}

// TestDiskStoreCompaction: the serial store gets the same garbage
// collection — Compact bounds the single log, MaybeCompact honors the
// thresholds, and the compacted (v2) log recovers.
func TestDiskStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "records.log")
	s, err := OpenDisk(path, DiskOptions{CompactRatio: 0.5, CompactMinBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	const keys, versions = 100, 8
	writeOverwriteHistory(t, s, keys, versions)
	fi, _ := os.Stat(path)
	pre := fi.Size()

	n, err := s.MaybeCompact()
	if err != nil || n != 1 {
		t.Fatalf("MaybeCompact = (%d,%v), want (1,nil)", n, err)
	}
	fi, _ = os.Stat(path)
	if fi.Size() >= pre/2 {
		t.Fatalf("compaction barely shrank the log: %d -> %d", pre, fi.Size())
	}
	checkFinalHistory(t, s, keys, versions)
	cs := s.CompactStats()
	if cs.Compactions != 1 || cs.ReclaimedBytes == 0 {
		t.Fatalf("CompactStats = %+v", cs)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDisk(path, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	checkFinalHistoryLenient(t, s2, keys, versions)
}

// TestV2MidLogCorruptionDetected: a flipped byte in the middle of a v2
// log — in a value and in a header — must be detected by the CRC on
// recovery, which keeps the longest valid prefix; the repair must be
// durable across a second restart. (On a v1 log the same flip was
// silently accepted; this is the regression the CRC format exists for.)
func TestV2MidLogCorruptionDetected(t *testing.T) {
	for name, flip := range map[string]int64{
		"value":  16 + 4,     // inside record 0's value bytes
		"header": 16 + 9 + 2, // inside record 1's header (its key field)
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "records.log")
			s, err := OpenDisk(path, DiskOptions{})
			if err != nil {
				t.Fatal(err)
			}
			// Three records with distinct keys: 9-byte values at offsets
			// 8 (header), 8+25, 8+50.
			for k := uint64(0); k < 3; k++ {
				if err := s.Put(k, []byte(fmt.Sprintf("value-%03d", k))); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			// Flip one byte mid-log (not in the tail record).
			f, err := os.OpenFile(path, os.O_RDWR, 0)
			if err != nil {
				t.Fatal(err)
			}
			var b [1]byte
			off := int64(8) + flip // past the file magic
			if _, err := f.ReadAt(b[:], off); err != nil {
				t.Fatal(err)
			}
			b[0] ^= 0x40
			if _, err := f.WriteAt(b[:], off); err != nil {
				t.Fatal(err)
			}
			f.Close()

			s2, err := OpenDisk(path, DiskOptions{})
			if err != nil {
				t.Fatalf("recovery after mid-log corruption: %v", err)
			}
			// The corrupt record and everything after it are gone; the
			// records before it survive — the longest valid prefix.
			var wantLive []uint64
			if name == "value" {
				wantLive = nil // record 0 is the corrupt one
			} else {
				wantLive = []uint64{0}
			}
			if got := s2.Len(); got != len(wantLive) {
				t.Fatalf("Len after corruption = %d, want %d (longest valid prefix)", got, len(wantLive))
			}
			for _, k := range wantLive {
				want := fmt.Sprintf("value-%03d", k)
				if v, err := s2.Get(k); err != nil || string(v) != want {
					t.Fatalf("Get(%d) = (%q,%v), want %q", k, v, err, want)
				}
			}
			// The store is writable after the truncation and the repair is
			// durable across another restart.
			if err := s2.Put(9, []byte("after-repair")); err != nil {
				t.Fatal(err)
			}
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
			s3, err := OpenDisk(path, DiskOptions{})
			if err != nil {
				t.Fatalf("second recovery: %v", err)
			}
			defer s3.Close()
			if got := s3.Len(); got != len(wantLive)+1 {
				t.Fatalf("Len after second recovery = %d, want %d", got, len(wantLive)+1)
			}
			if v, err := s3.Get(9); err != nil || string(v) != "after-repair" {
				t.Fatalf("Get(9) = (%q,%v)", v, err)
			}
		})
	}
}

// TestShardedDiskV2MidLogCorruption is the sharded analogue: corruption
// in one shard's log must not disturb the other shards.
func TestShardedDiskV2MidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenShardedDisk(dir, ShardedDiskOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	const records = 64
	for k := uint64(0); k < records; k++ {
		if err := s.Put(k, []byte(fmt.Sprintf("v-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	// The last key shard 2 owns: its record is in shard 2's tail region,
	// so corrupting an early shard-2 record must drop it too (prefix), but
	// leave every other shard whole.
	var shard2 []uint64
	for k := uint64(0); k < records; k++ {
		if ShardOf(k, 4) == 2 {
			shard2 = append(shard2, k)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte in shard 2's first record's value.
	path := filepath.Join(dir, "shard-002.log")
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	off := int64(8 + 16) // first record's first value byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x01
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenShardedDisk(dir, ShardedDiskOptions{})
	if err != nil {
		t.Fatalf("recovery after shard corruption: %v", err)
	}
	defer s2.Close()
	if got, want := s2.Len(), records-len(shard2); got != want {
		t.Fatalf("Len = %d, want %d (shard 2 truncated at its first record)", got, want)
	}
	for k := uint64(0); k < records; k++ {
		v, err := s2.Get(k)
		if ShardOf(k, 4) == 2 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get(%d) on the corrupted shard = (%q,%v), want ErrNotFound", k, v, err)
			}
			continue
		}
		if err != nil || string(v) != fmt.Sprintf("v-%d", k) {
			t.Fatalf("Get(%d) on a healthy shard = (%q,%v)", k, v, err)
		}
	}
}

// TestV1LogStillReadable: a pre-CRC v1 log (no magic header) must open,
// read, keep appending in v1 format across a restart (so one log never
// mixes formats), and upgrade to v2 only through compaction.
func TestV1LogStillReadable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "records.log")

	// Craft a v1 log by hand: records are [key 8][vlen 4][value].
	var raw bytes.Buffer
	v1 := func(key uint64, val string) {
		var hdr [12]byte
		binary.BigEndian.PutUint64(hdr[:8], key)
		binary.BigEndian.PutUint32(hdr[8:], uint32(len(val)))
		raw.Write(hdr[:])
		raw.WriteString(val)
	}
	v1(1, "one")
	v1(2, "two")
	v1(1, "one-v2") // overwrite: recovery keeps the latest
	if err := os.WriteFile(path, raw.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := OpenDisk(path, DiskOptions{})
	if err != nil {
		t.Fatalf("opening v1 log: %v", err)
	}
	if v, err := s.Get(1); err != nil || string(v) != "one-v2" {
		t.Fatalf("Get(1) = (%q,%v)", v, err)
	}
	if v, err := s.Get(2); err != nil || string(v) != "two" {
		t.Fatalf("Get(2) = (%q,%v)", v, err)
	}
	// Appends to a v1 log stay v1 and survive a v1 re-recovery.
	if err := s.Put(3, []byte("three")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenDisk(path, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[uint64]string{1: "one-v2", 2: "two", 3: "three"} {
		if v, err := s2.Get(key); err != nil || string(v) != want {
			t.Fatalf("recovered Get(%d) = (%q,%v), want %q", key, v, err, want)
		}
	}

	// Compaction upgrades the log to v2 (magic header), still readable.
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	head := make([]byte, 8)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(head); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if !bytes.Equal(head, logMagic[:]) {
		t.Fatalf("compacted log is not v2: header %q", head)
	}
	s3, err := OpenDisk(path, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	for key, want := range map[uint64]string{1: "one-v2", 2: "two", 3: "three"} {
		if v, err := s3.Get(key); err != nil || string(v) != want {
			t.Fatalf("post-upgrade Get(%d) = (%q,%v), want %q", key, v, err, want)
		}
	}
}

// TestCompactionCrashMatrix simulates a crash at each rung of the
// compaction ladder — mid-rewrite (partial temp), after the temp's fsync
// but before the rename, and after the rename — with a double restart at
// every point: no acknowledged write may be lost, and stray temp files
// must be cleaned up.
func TestCompactionCrashMatrix(t *testing.T) {
	const keys, versions = 48, 4
	setup := func(t *testing.T) (string, map[uint64]string) {
		dir := t.TempDir()
		s, err := OpenShardedDisk(dir, ShardedDiskOptions{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		writeOverwriteHistory(t, s, keys, versions)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		want := make(map[uint64]string, keys)
		for k := uint64(0); k < keys; k++ {
			want[k] = fmt.Sprintf("v%d-%d", versions-1, k)
		}
		return dir, want
	}
	verify := func(t *testing.T, dir string, want map[uint64]string) {
		// Double restart: open, check, write, close, open, check again —
		// the recovery (and any temp cleanup) must itself be durable.
		for round := 0; round < 2; round++ {
			s, err := OpenShardedDisk(dir, ShardedDiskOptions{})
			if err != nil {
				t.Fatalf("restart %d: %v", round, err)
			}
			for k, w := range want {
				if v, err := s.Get(k); err != nil || string(v) != w {
					t.Fatalf("restart %d: Get(%d) = (%q,%v), want %q", round, k, v, err, w)
				}
			}
			if err := s.Put(1000+uint64(round), []byte("post-crash")); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		}
		strays, _ := filepath.Glob(filepath.Join(dir, ".compact-*"))
		if len(strays) != 0 {
			t.Fatalf("compaction temps survived recovery: %v", strays)
		}
	}

	t.Run("mid-rewrite", func(t *testing.T) {
		dir, want := setup(t)
		// The crash left a half-written temp: garbage bytes, no rename.
		if err := os.WriteFile(filepath.Join(dir, ".compact-123"), []byte("partial rewrite"), 0o600); err != nil {
			t.Fatal(err)
		}
		verify(t, dir, want)
	})
	t.Run("fsynced-before-rename", func(t *testing.T) {
		dir, want := setup(t)
		// The crash left a complete, valid rewrite of shard 0 that was
		// never renamed: it must be ignored (the original log is still
		// authoritative) and removed.
		src, err := os.Open(filepath.Join(dir, "shard-000.log"))
		if err != nil {
			t.Fatal(err)
		}
		st, err := recoverLog(src)
		if err != nil {
			t.Fatal(err)
		}
		tmp, lState, err := rewriteLiveRecords(src, st.index, filepath.Join(dir, "shard-000.log.ignored"))
		if err != nil {
			t.Fatal(err)
		}
		if lState.live == 0 {
			t.Fatal("rewrite produced no live records")
		}
		tmp.Close()
		src.Close()
		// rewriteLiveRecords renamed to .ignored; move it back to a temp
		// name, as if the crash hit between fsync and the real rename.
		if err := os.Rename(filepath.Join(dir, "shard-000.log.ignored"), filepath.Join(dir, ".compact-999")); err != nil {
			t.Fatal(err)
		}
		verify(t, dir, want)
	})
	t.Run("after-rename", func(t *testing.T) {
		dir, want := setup(t)
		// A completed compaction of every shard (the rename landed); the
		// compacted logs are the authoritative state.
		s, err := OpenShardedDisk(dir, ShardedDiskOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Compact(); err != nil {
			t.Fatal(err)
		}
		// Crash immediately after: no clean Close of the new logs.
		// (Simulated by just not writing anything further; the logs are
		// already fsynced by the rewrite.)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		verify(t, dir, want)
	})
}

// TestShardedDiskCompactDuringGroupCommit: compaction under group commit
// must release writers parked on the fsync linger (the rewrite's fsync
// covers them) and keep every acknowledged write across a restart.
func TestShardedDiskCompactDuringGroupCommit(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenShardedDisk(dir, ShardedDiskOptions{Shards: 2, SyncLinger: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 4, 64
	var wg sync.WaitGroup
	stopCompact := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopCompact:
				return
			default:
				if err := s.Compact(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	var put sync.WaitGroup
	for w := 0; w < writers; w++ {
		put.Add(1)
		go func(w int) {
			defer put.Done()
			for i := 0; i < per; i++ {
				key := uint64(w*per + i)
				if err := s.Put(key, []byte(fmt.Sprintf("v-%d", key))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	put.Wait()
	close(stopCompact)
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenShardedDisk(dir, ShardedDiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len(); got != writers*per {
		t.Fatalf("recovered Len = %d, want %d", got, writers*per)
	}
	for key := uint64(0); key < writers*per; key++ {
		if v, err := s2.Get(key); err != nil || string(v) != fmt.Sprintf("v-%d", key) {
			t.Fatalf("recovered Get(%d) = (%q,%v)", key, v, err)
		}
	}
}

// TestShardedDiskConcurrentGetPutCompactClose is the -race test for the
// lock-free Get read path: concurrent readers, writers, a compactor
// swapping the log files under them, and finally Close racing the lot.
// Readers must only ever see a complete value or a clean error
// (ErrNotFound before the key exists, ErrClosed after Close) — never a
// torn read, a panic, or a deadlock.
func TestShardedDiskConcurrentGetPutCompactClose(t *testing.T) {
	for name, linger := range map[string]time.Duration{"nosync": 0, "groupcommit": 100 * time.Microsecond} {
		t.Run(name, func(t *testing.T) {
			s, err := OpenShardedDisk(t.TempDir(), ShardedDiskOptions{Shards: 4, SyncLinger: linger})
			if err != nil {
				t.Fatal(err)
			}
			const keys = 64
			// Seed every key so readers can verify value integrity.
			for k := uint64(0); k < keys; k++ {
				if err := s.Put(k, []byte(fmt.Sprintf("v0-%d", k))); err != nil {
					t.Fatal(err)
				}
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) { // writers: overwrite with versioned values
					defer wg.Done()
					v := 1
					for {
						select {
						case <-stop:
							return
						default:
						}
						for k := uint64(0); k < keys; k++ {
							if err := s.Put(k, []byte(fmt.Sprintf("v%d-%d", v, k))); err != nil {
								if errors.Is(err, ErrClosed) {
									return
								}
								t.Error(err)
								return
							}
						}
						v++
					}
				}(w)
			}
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func() { // readers: every value must be a complete "v<n>-<k>"
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						k := uint64(time.Now().UnixNano()) % keys
						v, err := s.Get(k)
						if err != nil {
							if errors.Is(err, ErrClosed) {
								return
							}
							t.Errorf("Get(%d) = %v", k, err)
							return
						}
						var ver int
						var key uint64
						if n, _ := fmt.Sscanf(string(v), "v%d-%d", &ver, &key); n != 2 || key != k {
							t.Errorf("torn or misplaced read: Get(%d) = %q", k, v)
							return
						}
					}
				}()
			}
			wg.Add(1)
			go func() { // compactor: swap the files under everyone
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if err := s.Compact(); err != nil && !errors.Is(err, ErrClosed) {
						t.Error(err)
						return
					}
				}
			}()
			time.Sleep(50 * time.Millisecond)
			// Close while everything is still running: goroutines must exit
			// through clean ErrClosed paths.
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			close(stop)
			wg.Wait()
		})
	}
}

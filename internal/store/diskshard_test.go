package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestShardedDiskConformance runs the Store contract against the sharded
// store in both durability modes.
func TestShardedDiskConformance(t *testing.T) {
	for name, linger := range map[string]time.Duration{"nosync": 0, "groupcommit": 100 * time.Microsecond} {
		t.Run(name, func(t *testing.T) {
			s, err := OpenShardedDisk(t.TempDir(), ShardedDiskOptions{Shards: 4, SyncLinger: linger})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if _, err := s.Get(1); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get on empty = %v, want ErrNotFound", err)
			}
			for i := uint64(0); i < 64; i++ {
				if err := s.Put(i, []byte(fmt.Sprintf("v-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			// Overwrite and empty-value round trips.
			if err := s.Put(1, []byte("uno")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put(100, nil); err != nil {
				t.Fatal(err)
			}
			if v, err := s.Get(1); err != nil || string(v) != "uno" {
				t.Fatalf("Get(1) = (%q,%v)", v, err)
			}
			if v, err := s.Get(100); err != nil || len(v) != 0 {
				t.Fatalf("Get(100) = (%q,%v)", v, err)
			}
			if s.Len() != 65 {
				t.Fatalf("Len = %d, want 65", s.Len())
			}
			// Value isolation, like the other stores.
			src := []byte("mutable")
			if err := s.Put(7, src); err != nil {
				t.Fatal(err)
			}
			src[0] = 'X'
			if v, _ := s.Get(7); string(v) != "mutable" {
				t.Fatalf("store aliased caller buffer: %q", v)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if err := s.Put(1, []byte("x")); !errors.Is(err, ErrClosed) {
				t.Fatalf("Put after close = %v", err)
			}
			if _, err := s.Get(1); !errors.Is(err, ErrClosed) {
				t.Fatalf("Get after close = %v", err)
			}
		})
	}
}

// TestShardedDiskPutMany covers both PutMany paths: a partition aligned
// to one shard and a mixed partition spanning all of them, with in-order
// last-write-wins per key.
func TestShardedDiskPutMany(t *testing.T) {
	s, err := OpenShardedDisk(t.TempDir(), ShardedDiskOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Aligned: every key in shard 0 (keys ≥ 1000, disjoint from the mixed
	// batch below).
	var aligned []KV
	for k := uint64(1000); len(aligned) < 8; k++ {
		if ShardOf(k, 4) == 0 {
			aligned = append(aligned, KV{Key: k, Value: []byte(fmt.Sprintf("a-%d", k))})
		}
	}
	if err := s.PutMany(aligned); err != nil {
		t.Fatal(err)
	}
	// Mixed, with a same-key overwrite later in the batch.
	mixed := []KV{{1, []byte("one")}, {2, []byte("two")}, {3, []byte("three")}, {1, []byte("one-v2")}}
	if err := s.PutMany(mixed); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Get(1); err != nil || string(v) != "one-v2" {
		t.Fatalf("Get(1) = (%q,%v), want in-order last write", v, err)
	}
	for _, kv := range aligned {
		if v, err := s.Get(kv.Key); err != nil || !bytes.Equal(v, kv.Value) {
			t.Fatalf("Get(%d) = (%q,%v), want %q", kv.Key, v, err, kv.Value)
		}
	}
	if err := s.PutMany(nil); err != nil {
		t.Fatalf("PutMany(nil) = %v", err)
	}
}

// TestShardedDiskPutManyMixedGroupCommit drives the mixed-partition path
// under group commit: a batch spanning every shard must append to all of
// them before waiting, become durable, and read back correctly.
func TestShardedDiskPutManyMixedGroupCommit(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenShardedDisk(dir, ShardedDiskOptions{Shards: 4, SyncLinger: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	var kvs []KV
	covered := map[int]bool{}
	for k := uint64(0); len(covered) < 4 || len(kvs) < 32; k++ {
		covered[ShardOf(k, 4)] = true
		kvs = append(kvs, KV{Key: k, Value: []byte(fmt.Sprintf("v-%d", k))})
	}
	if err := s.PutMany(kvs); err != nil {
		t.Fatal(err)
	}
	if st := s.SyncStats(); st.Fsyncs == 0 {
		t.Fatal("mixed PutMany never fsynced under group commit")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenShardedDisk(dir, ShardedDiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, kv := range kvs {
		if v, err := s2.Get(kv.Key); err != nil || !bytes.Equal(v, kv.Value) {
			t.Fatalf("recovered Get(%d) = (%q,%v), want %q", kv.Key, v, err, kv.Value)
		}
	}
}

// TestShardedDiskGroupCommit checks that group commit is both durable and
// grouped: concurrent writers all become readable after reopen, and the
// fsync count stays well below the write count.
func TestShardedDiskGroupCommit(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenShardedDisk(dir, ShardedDiskOptions{Shards: 4, SyncLinger: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := uint64(w*per + i)
				if err := s.Put(key, []byte(fmt.Sprintf("v-%d", key))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.SyncStats()
	if st.Fsyncs == 0 {
		t.Fatal("group commit never fsynced")
	}
	if st.Fsyncs >= writers*per {
		t.Fatalf("fsyncs = %d for %d writes: no grouping happened", st.Fsyncs, writers*per)
	}
	if st.FsyncStallNS == 0 {
		t.Fatal("writers never recorded fsync stall time")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenShardedDisk(dir, ShardedDiskOptions{Shards: 4, SyncLinger: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != writers*per {
		t.Fatalf("recovered Len = %d, want %d", s2.Len(), writers*per)
	}
	for key := uint64(0); key < writers*per; key++ {
		if v, err := s2.Get(key); err != nil || string(v) != fmt.Sprintf("v-%d", key) {
			t.Fatalf("recovered Get(%d) = (%q,%v)", key, v, err)
		}
	}
}

// TestShardedDiskTornTailDoubleRestart is the sharded analogue of the
// DiskStore torn-tail tests: corrupt one shard's log tail, recover (the
// truncation must not disturb the other shards), write more, and restart
// again — the repair must be durable across the second restart.
func TestShardedDiskTornTailDoubleRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenShardedDisk(dir, ShardedDiskOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	const records = 64
	for k := uint64(0); k < records; k++ {
		if err := s.Put(k, []byte(fmt.Sprintf("v-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear shard 2's log: a full header claiming 100 value bytes with only
	// 10 written. The record names a key that shard 2 owns, overwriting an
	// existing version — recovery must keep the pre-torn version.
	var victim uint64
	for k := uint64(0); k < records; k++ {
		if ShardOf(k, 4) == 2 {
			victim = k
			break
		}
	}
	f, err := os.OpenFile(filepath.Join(dir, "shard-002.log"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	hdr := make([]byte, 12)
	for i := 0; i < 8; i++ {
		hdr[7-i] = byte(victim >> (8 * i))
	}
	hdr[11] = 100
	if _, err := f.Write(append(hdr, bytes.Repeat([]byte{0xAB}, 10)...)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenShardedDisk(dir, ShardedDiskOptions{Shards: 4})
	if err != nil {
		t.Fatalf("recovery after torn shard tail: %v", err)
	}
	if s2.Len() != records {
		t.Fatalf("Len after torn-tail recovery = %d, want %d", s2.Len(), records)
	}
	if v, err := s2.Get(victim); err != nil || string(v) != fmt.Sprintf("v-%d", victim) {
		t.Fatalf("Get(%d) = (%q,%v), want the pre-torn version", victim, v, err)
	}
	if err := s2.Put(records, []byte("after-repair")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Second restart: the truncated shard plus the new record must recover
	// cleanly — the tail repair is durable, not a one-shot in-memory fix.
	s3, err := OpenShardedDisk(dir, ShardedDiskOptions{Shards: 4})
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	defer s3.Close()
	if s3.Len() != records+1 {
		t.Fatalf("Len after second recovery = %d, want %d", s3.Len(), records+1)
	}
	for k := uint64(0); k < records; k++ {
		if v, err := s3.Get(k); err != nil || string(v) != fmt.Sprintf("v-%d", k) {
			t.Fatalf("Get(%d) = (%q,%v)", k, v, err)
		}
	}
	if v, err := s3.Get(records); err != nil || string(v) != "after-repair" {
		t.Fatalf("Get(%d) = (%q,%v)", records, v, err)
	}
}

// TestShardedDiskMetaPinsShardCount: reopening with a conflicting shard
// count must fail loudly (keys would hash to the wrong logs), and a
// zero-count open must adopt the persisted count.
func TestShardedDiskMetaPinsShardCount(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenShardedDisk(dir, ShardedDiskOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShardedDisk(dir, ShardedDiskOptions{Shards: 8}); err == nil {
		t.Fatal("reopening with a different shard count must fail")
	}
	s2, err := OpenShardedDisk(dir, ShardedDiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Shards(); got != 4 {
		t.Fatalf("adopted shard count = %d, want 4", got)
	}
	if v, err := s2.Get(1); err != nil || string(v) != "one" {
		t.Fatalf("Get(1) = (%q,%v)", v, err)
	}
}

// TestShardedDiskConcurrentPartitions is the execution-shard contract
// against the durable store: key-disjoint partitions applied concurrently
// through PutMany must land exactly as if applied serially.
func TestShardedDiskConcurrentPartitions(t *testing.T) {
	s, err := OpenShardedDisk(t.TempDir(), ShardedDiskOptions{Shards: 8, SyncLinger: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const parts, per = 8, 200
	var wg sync.WaitGroup
	for p := 0; p < parts; p++ {
		var kvs []KV
		for key := uint64(0); len(kvs) < per; key++ {
			if ShardOf(key, parts) == p {
				kvs = append(kvs, KV{Key: key, Value: []byte(fmt.Sprintf("v-%d", key))})
			}
		}
		wg.Add(1)
		go func(kvs []KV) {
			defer wg.Done()
			if err := s.PutMany(kvs); err != nil {
				t.Error(err)
			}
		}(kvs)
	}
	wg.Wait()
	if s.Len() != parts*per {
		t.Fatalf("Len = %d, want %d", s.Len(), parts*per)
	}
}

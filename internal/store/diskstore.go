package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// DiskStore is the off-memory storage used by the Section 5.7 experiment.
// It is an embedded, log-structured key-value store reached through a
// blocking, fully serialized API: every Put appends a record to a log file
// and every Get reads the value bytes back from disk. This substitutes for
// SQLite in the paper's setup — the property under test is that the
// execute-thread leaves memory and busy-waits on a storage API call, and a
// synchronous file-backed store exercises the identical code path.
//
// The on-disk format is the shared record log (see format.go): new logs
// carry a per-record CRC-32C (format v2), pre-CRC v1 logs stay readable.
// An in-memory index maps keys to their latest record offset, rebuilt by
// scanning the log on open, so the store recovers its state across
// restarts. Overwritten versions stay in the log until Compact rewrites
// the live records to a fresh log (same temp+fsync+rename ladder as the
// sharded store), so log size tracks live data instead of history.
type DiskStore struct {
	mu   sync.Mutex
	f    *os.File
	path string
	// logState is the log bookkeeping (index, append offset, format,
	// live/total bytes), guarded by mu like the rest of the store.
	logState
	sync   bool
	closed bool
	// ri, when non-nil, answers Get from memory without touching the log
	// file or mu (see readindex.go). Off by default to preserve the
	// blocking serialized API under test in Section 5.7.
	ri *readIndex
	// ordered is the sorted key sidecar behind Scan, seeded from the
	// recovered index at open. Put appends under mu first and inserts into
	// the sidecar after releasing mu — never holding both locks is what
	// keeps scans deadlock-free (scanVia takes them in the other order).
	ordered *orderedKeys

	compactRatio float64
	compactMin   int64

	// fsync and compaction accounting (atomic: the stats interfaces must
	// not take the store lock).
	fsyncs  atomic.Uint64
	stallNS atomic.Uint64
	cstats  compactCounters
}

type recordRef struct {
	off    int64
	length uint32
}

// DiskOptions configures a DiskStore.
type DiskOptions struct {
	// SyncEveryPut forces an fsync after each Put, the durability mode of
	// a write-ahead journal. Off by default; the API-call and file-write
	// costs already dominate the in-memory path by orders of magnitude.
	SyncEveryPut bool
	// CompactRatio is the garbage fraction (dead bytes / total log bytes)
	// past which MaybeCompact rewrites the log. 0 means the default
	// (DefaultCompactRatio); negative disables MaybeCompact.
	CompactRatio float64
	// CompactMinBytes is the log size below which MaybeCompact never
	// rewrites. 0 means the default (DefaultCompactMinBytes); negative
	// removes the floor.
	CompactMinBytes int64
	// ReadIndex keeps every key's latest value in memory so Get never
	// reads the log file or takes the store lock. Off by default — the
	// Section 5.7 contrast is the blocking storage API — and enabled by
	// OpenBackend for replica deployments serving local reads.
	ReadIndex bool
}

// OpenDisk opens (or creates) a DiskStore at path and rebuilds the index
// from the existing log.
func OpenDisk(path string, opts DiskOptions) (*DiskStore, error) {
	// A crash mid-compaction leaves a temp rewrite behind; it is garbage
	// until renamed, so clear strays before recovering the real log.
	removeCompactTemps(filepath.Dir(path))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening log: %w", err)
	}
	s := &DiskStore{f: f, path: path, sync: opts.SyncEveryPut}
	s.compactRatio, s.compactMin = resolveCompactKnobs(opts.CompactRatio, opts.CompactMinBytes)
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	if opts.ReadIndex {
		ri, err := loadReadIndex(s.f, s.index)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("store: loading read index: %w", err)
		}
		s.ri = ri
	}
	keys := make([]uint64, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	s.ordered = newOrderedKeys(keys)
	return s, nil
}

// recover scans the log, rebuilding the key index. A truncated final
// record (torn write) is discarded by truncating the log at its start; in
// a v2 log any record failing its CRC ends the valid prefix the same way.
// The scan itself is shared with ShardedDiskStore (recoverLog).
func (s *DiskStore) recover() error {
	st, err := recoverLog(s.f)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.logState = st
	return nil
}

// Put implements Store. The write is appended to the log under a single
// store-wide lock (serialized mode) and the index updated; the ordered
// sidecar is updated after the lock is released.
func (s *DiskStore) Put(key uint64, value []byte) error {
	if err := s.appendPut(key, value); err != nil {
		return err
	}
	s.ordered.insert(key)
	return nil
}

func (s *DiskStore) appendPut(key uint64, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	buf := encodeRecords([]KV{{Key: key, Value: value}}, s.v2)
	if _, err := s.f.WriteAt(buf, s.off); err != nil {
		return fmt.Errorf("store: appending record: %w", err)
	}
	if s.sync {
		t0 := time.Now()
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: fsync: %w", err)
		}
		s.fsyncs.Add(1)
		s.stallNS.Add(uint64(time.Since(t0)))
	}
	s.account(key, s.off+s.hdrSize(), uint32(len(value)))
	s.off += int64(len(buf))
	if s.ri != nil {
		s.ri.put(key, value)
	}
	return nil
}

// Get implements Store. With the read index enabled the value comes from
// memory without touching the log file or the store lock; otherwise the
// value bytes are read back from the log under the store-wide lock — the
// blocking, fully serialized API that is the Section 5.7 property under
// test.
func (s *DiskStore) Get(key uint64) ([]byte, error) {
	if s.ri != nil {
		if v, ok := s.ri.get(key); ok {
			return v, nil
		}
		return nil, fmt.Errorf("%w: %d", ErrNotFound, key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	ref, ok := s.index[key]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNotFound, key)
	}
	out := make([]byte, ref.length)
	if _, err := s.f.ReadAt(out, ref.off); err != nil {
		return nil, fmt.Errorf("store: reading record: %w", err)
	}
	return out, nil
}

// Scan implements Scanner. Keys come from the ordered sidecar in bounded
// chunks and values from Get, which for this store means each row is a
// serialized log read unless the read index is enabled — scans inherit
// the blocking-API cost model of the backend they run on.
func (s *DiskStore) Scan(start, end uint64, fn func(key uint64, value []byte) bool) error {
	return scanVia(s.ordered, s.Get, start, end, fn)
}

// Compact rewrites the live records to a fresh v2 log unconditionally,
// dropping every superseded value (and upgrading a v1 log in the
// process). Writers and readers are stalled for the duration — the
// blocking serialized API is this store's contract.
func (s *DiskStore) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

// MaybeCompact compacts the log if it clears the configured size floor
// and garbage-ratio threshold; it returns the number of logs rewritten
// (0 or 1).
func (s *DiskStore) MaybeCompact() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if !shouldCompact(s.live, s.total, s.compactRatio, s.compactMin) {
		return 0, nil
	}
	if err := s.compactLocked(); err != nil {
		return 0, err
	}
	return 1, nil
}

func (s *DiskStore) compactLocked() error {
	t0 := time.Now()
	newF, st, err := rewriteLiveRecords(s.f, s.index, s.path)
	if err != nil {
		s.cstats.failures.Add(1)
		return err
	}
	reclaimed := s.off - st.off
	old := s.f
	s.f, s.logState = newF, st
	old.Close()
	s.cstats.compactions.Add(1)
	if reclaimed > 0 {
		s.cstats.reclaimed.Add(uint64(reclaimed))
	}
	s.cstats.stallNS.Add(uint64(time.Since(t0)))
	return nil
}

// SyncStats implements SyncStatser. In per-op sync mode the writer is the
// one syncing, so stall time equals total fsync time.
func (s *DiskStore) SyncStats() SyncStats {
	return SyncStats{Fsyncs: s.fsyncs.Load(), FsyncStallNS: s.stallNS.Load()}
}

// CompactStats implements Compactor.
func (s *DiskStore) CompactStats() CompactStats {
	return s.cstats.stats()
}

// Len implements Store.
func (s *DiskStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Close implements Store.
func (s *DiskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("store: closing log: %w", err)
	}
	return nil
}

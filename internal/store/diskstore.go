package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// DiskStore is the off-memory storage used by the Section 5.7 experiment.
// It is an embedded, log-structured key-value store reached through a
// blocking, fully serialized API: every Put appends a record to a log file
// and every Get reads the value bytes back from disk. This substitutes for
// SQLite in the paper's setup — the property under test is that the
// execute-thread leaves memory and busy-waits on a storage API call, and a
// synchronous file-backed store exercises the identical code path.
//
// The on-disk format is a sequence of records:
//
//	[8 bytes key][4 bytes value length][value bytes]
//
// An in-memory index maps keys to their latest record offset, rebuilt by
// scanning the log on open, so the store recovers its state across
// restarts.
type DiskStore struct {
	mu     sync.Mutex
	f      *os.File
	index  map[uint64]recordRef
	off    int64
	sync   bool
	closed bool

	// fsync accounting (atomic: SyncStats must not take the store lock).
	fsyncs  atomic.Uint64
	stallNS atomic.Uint64
}

type recordRef struct {
	off    int64
	length uint32
}

// DiskOptions configures a DiskStore.
type DiskOptions struct {
	// SyncEveryPut forces an fsync after each Put, the durability mode of
	// a write-ahead journal. Off by default; the API-call and file-write
	// costs already dominate the in-memory path by orders of magnitude.
	SyncEveryPut bool
}

// OpenDisk opens (or creates) a DiskStore at path and rebuilds the index
// from the existing log.
func OpenDisk(path string, opts DiskOptions) (*DiskStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening log: %w", err)
	}
	s := &DiskStore{f: f, index: make(map[uint64]recordRef), sync: opts.SyncEveryPut}
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// recover scans the log, rebuilding the key index. A truncated final
// record (torn write) is discarded by truncating the log at its start.
// The scan itself is shared with ShardedDiskStore (recoverLog).
func (s *DiskStore) recover() error {
	index, off, err := recoverLog(s.f)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.index = index
	s.off = off
	return nil
}

// Put implements Store. The write is appended to the log under a single
// store-wide lock (serialized mode) and the index updated.
func (s *DiskStore) Put(key uint64, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	buf := make([]byte, 12+len(value))
	binary.BigEndian.PutUint64(buf[:8], key)
	binary.BigEndian.PutUint32(buf[8:12], uint32(len(value)))
	copy(buf[12:], value)
	if _, err := s.f.WriteAt(buf, s.off); err != nil {
		return fmt.Errorf("store: appending record: %w", err)
	}
	if s.sync {
		t0 := time.Now()
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: fsync: %w", err)
		}
		s.fsyncs.Add(1)
		s.stallNS.Add(uint64(time.Since(t0)))
	}
	s.index[key] = recordRef{off: s.off + 12, length: uint32(len(value))}
	s.off += int64(len(buf))
	return nil
}

// Get implements Store, reading the value bytes back from the log file.
func (s *DiskStore) Get(key uint64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	ref, ok := s.index[key]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNotFound, key)
	}
	out := make([]byte, ref.length)
	if _, err := s.f.ReadAt(out, ref.off); err != nil {
		return nil, fmt.Errorf("store: reading record: %w", err)
	}
	return out, nil
}

// SyncStats implements SyncStatser. In per-op sync mode the writer is the
// one syncing, so stall time equals total fsync time.
func (s *DiskStore) SyncStats() SyncStats {
	return SyncStats{Fsyncs: s.fsyncs.Load(), FsyncStallNS: s.stallNS.Load()}
}

// Len implements Store.
func (s *DiskStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Close implements Store.
func (s *DiskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("store: closing log: %w", err)
	}
	return nil
}

package gateway

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"resilientdb/internal/pool"
	"resilientdb/internal/stats"
	"resilientdb/internal/types"
	"resilientdb/internal/workload"
)

// LoadConfig parameterizes a session load generator: Sessions independent
// closed-loop sessions multiplexed over Conns shared connections. This is
// the point of the tier — the session count is bookkeeping (a few dozen
// bytes each), not goroutines-times-connections, so one process can
// simulate hundreds of thousands of clients against a handful of sockets.
type LoadConfig struct {
	// Sessions is the number of simulated closed-loop sessions; Conns the
	// number of gateway connections they share (default 4).
	Sessions int
	Conns    int
	// Dial opens one gateway connection.
	Dial func() (net.Conn, error)
	// Workload configures the per-session transaction generator; Seed
	// salts it per connection.
	Workload workload.Config
	Seed     int64
	// SubmitBatch caps submits coalesced per outbound frame (default 64);
	// SubmitLinger is how long a non-full frame waits for more (default
	// 100µs).
	SubmitBatch  int
	SubmitLinger time.Duration
	// RetryTimeout is how long a session waits for a reply before
	// retrying with the same nonce (default 1s). Retries are safe by the
	// gateway's dedup contract.
	RetryTimeout time.Duration
}

func (c *LoadConfig) fill() error {
	if c.Sessions <= 0 {
		return fmt.Errorf("gateway: load needs sessions ≥ 1, got %d", c.Sessions)
	}
	if c.Dial == nil {
		return fmt.Errorf("gateway: load needs a dialer")
	}
	if c.Conns <= 0 {
		c.Conns = 4
	}
	if c.Conns > c.Sessions {
		c.Conns = c.Sessions
	}
	if c.SubmitBatch <= 0 {
		c.SubmitBatch = 64
	}
	if c.SubmitLinger <= 0 {
		c.SubmitLinger = 100 * time.Microsecond
	}
	if c.RetryTimeout <= 0 {
		c.RetryTimeout = time.Second
	}
	if c.Workload.Records == 0 {
		c.Workload = workload.Default()
	}
	return nil
}

// LoadStats is a snapshot of the load generator's counters.
type LoadStats struct {
	// Completed counts transactions acknowledged StatusOK; Rejected the
	// StatusRejected acks (evicted dedup entries — executed, reply lost).
	Completed uint64
	Rejected  uint64
	// BusyReplies counts StatusBusy pushbacks; Retries the same-nonce
	// retransmissions after RetryTimeout.
	BusyReplies uint64
	Retries     uint64
}

// Load drives LoadConfig.Sessions simulated sessions against a gateway.
type Load struct {
	cfg LoadConfig
	lat *stats.Histogram

	completed atomic.Uint64
	rejected  atomic.Uint64
	busy      atomic.Uint64
	retries   atomic.Uint64
}

// NewLoad builds a load generator.
func NewLoad(cfg LoadConfig) (*Load, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Load{cfg: cfg, lat: &stats.Histogram{}}, nil
}

// Latency exposes the end-to-end submit→ack histogram (OK acks only).
func (l *Load) Latency() *stats.Histogram { return l.lat }

// Stats returns a snapshot of the counters.
func (l *Load) Stats() LoadStats {
	return LoadStats{
		Completed:   l.completed.Load(),
		Rejected:    l.rejected.Load(),
		BusyReplies: l.busy.Load(),
		Retries:     l.retries.Load(),
	}
}

// loadSession is one simulated closed-loop session: a few dozen bytes of
// state, no goroutine, no connection.
type loadSession struct {
	nonce  uint64
	ops    []types.Op
	start  time.Time // first send of the current nonce; zero = not sent yet
	queued bool      // an entry for this session sits in sendQ
	done   bool      // stop resubmitting (shutdown)
}

// loadConn is one shared gateway connection carrying a contiguous slice
// of the session space.
type loadConn struct {
	l        *Load
	c        net.Conn
	base     uint64 // global id of sessions[0]
	sessions []loadSession
	mu       sync.Mutex
	sendQ    chan int // session index within this conn; never blocks (queued flag)
	wl       *workload.Workload
	done     chan struct{}
	once     sync.Once
}

func (lc *loadConn) close() {
	lc.once.Do(func() {
		close(lc.done)
		lc.c.Close()
	})
}

// Run drives the sessions until ctx ends. It dials the connections,
// multiplexes the sessions over them, and tears everything down on exit.
func (l *Load) Run(ctx context.Context) error {
	per := l.cfg.Sessions / l.cfg.Conns
	extra := l.cfg.Sessions % l.cfg.Conns
	conns := make([]*loadConn, 0, l.cfg.Conns)
	defer func() {
		for _, lc := range conns {
			lc.close()
		}
	}()
	base := uint64(0)
	for i := 0; i < l.cfg.Conns; i++ {
		count := per
		if i < extra {
			count++
		}
		c, err := l.cfg.Dial()
		if err != nil {
			return fmt.Errorf("gateway: load dial: %w", err)
		}
		wl, err := workload.New(l.cfg.Workload, l.cfg.Seed+int64(i)+1)
		if err != nil {
			c.Close()
			return err
		}
		lc := &loadConn{
			l:        l,
			c:        c,
			base:     base,
			sessions: make([]loadSession, count),
			sendQ:    make(chan int, count+1),
			wl:       wl,
			done:     make(chan struct{}),
		}
		base += uint64(count)
		conns = append(conns, lc)
	}
	var wg sync.WaitGroup
	for _, lc := range conns {
		// Seed every session's first transaction, then start the pumps.
		lc.mu.Lock()
		for i := range lc.sessions {
			s := &lc.sessions[i]
			s.nonce = 1
			s.ops = lc.nextOps(uint64(i), s.nonce)
			s.queued = true
			lc.sendQ <- i
		}
		lc.mu.Unlock()
		wg.Add(3)
		go func(lc *loadConn) { defer wg.Done(); lc.writeLoop() }(lc)
		go func(lc *loadConn) { defer wg.Done(); lc.readLoop() }(lc)
		go func(lc *loadConn) { defer wg.Done(); lc.sweepLoop() }(lc)
	}
	<-ctx.Done()
	for _, lc := range conns {
		lc.close()
	}
	wg.Wait()
	return nil
}

// nextOps draws one transaction's operations from the shared per-conn
// generator. Callers hold lc.mu (the generator is not thread-safe).
func (lc *loadConn) nextOps(sess, nonce uint64) []types.Op {
	txn := lc.wl.NextTransaction(types.ClientID(lc.base+sess), nonce)
	return txn.Ops
}

// writeLoop drains sendQ, coalescing submits into shared frames.
func (lc *loadConn) writeLoop() {
	defer lc.close()
	bw := bufio.NewWriterSize(lc.c, 1<<16)
	w := types.GetWriter()
	defer types.PutWriter(w)
	linger := time.NewTimer(lc.l.cfg.SubmitLinger)
	defer linger.Stop()
	for {
		var first int
		select {
		case first = <-lc.sendQ:
		case <-lc.done:
			return
		}
		w.Reset()
		count := 0
		lc.marshalSubmit(w, first, &count)
		resetTimer(linger, lc.l.cfg.SubmitLinger)
	coalesce:
		for count < lc.l.cfg.SubmitBatch {
			select {
			case i := <-lc.sendQ:
				lc.marshalSubmit(w, i, &count)
			case <-linger.C:
				break coalesce
			case <-lc.done:
				return
			}
		}
		if count == 0 {
			continue
		}
		if err := writeSessionFrame(bw, count, w.Bytes()); err != nil {
			return
		}
		if len(lc.sendQ) == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// marshalSubmit appends session i's current submit to the frame under
// construction, stamping its first-send time.
func (lc *loadConn) marshalSubmit(w *types.Writer, i int, count *int) {
	lc.mu.Lock()
	s := &lc.sessions[i]
	s.queued = false
	if s.done {
		lc.mu.Unlock()
		return
	}
	sub := Submit{Session: lc.base + uint64(i), Nonce: s.nonce, Ops: s.ops}
	if s.start.IsZero() {
		s.start = time.Now()
	}
	lc.mu.Unlock()
	appendSubmit(w, &sub)
	*count++
}

// readLoop consumes replies, advancing each acknowledged session to its
// next transaction (the closed loop).
func (lc *loadConn) readLoop() {
	defer lc.close()
	br := bufio.NewReaderSize(lc.c, 1<<16)
	bufs := new(pool.BytePool)
	for {
		f, err := readSessionFrame(br, bufs)
		if err != nil {
			return
		}
		for i := range f.Replies {
			lc.handleReply(&f.Replies[i])
		}
		f.Arena.Release()
	}
}

func (lc *loadConn) handleReply(r *Reply) {
	idx := r.Session - lc.base
	if idx >= uint64(len(lc.sessions)) {
		return
	}
	l := lc.l
	lc.mu.Lock()
	s := &lc.sessions[idx]
	if r.Nonce != s.nonce || s.done {
		lc.mu.Unlock()
		return // stale: a late reply for a nonce the session moved past
	}
	switch r.Status {
	case StatusOK, StatusRejected:
		elapsed := time.Since(s.start)
		s.nonce++
		s.ops = lc.nextOps(idx, s.nonce)
		s.start = time.Time{}
		enqueue := !s.queued
		if enqueue {
			s.queued = true
		}
		lc.mu.Unlock()
		if r.Status == StatusOK {
			l.completed.Add(1)
			l.lat.Record(elapsed)
		} else {
			l.rejected.Add(1)
		}
		if enqueue {
			select {
			case lc.sendQ <- int(idx):
			case <-lc.done:
			}
		}
	case StatusBusy:
		// Leave the nonce in flight; the sweeper retries it after the
		// timeout, pacing the session off the overloaded gateway.
		lc.mu.Unlock()
		l.busy.Add(1)
	default:
		lc.mu.Unlock()
	}
}

// sweepLoop retries sessions whose submit has been unanswered (lost,
// pushed back busy, or raced a gateway restart) for RetryTimeout. The
// retry reuses the same nonce and ops — the gateway's dedup makes the
// retransmission idempotent.
func (lc *loadConn) sweepLoop() {
	interval := lc.l.cfg.RetryTimeout / 2
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-lc.done:
			return
		case <-tick.C:
		}
		now := time.Now()
		var resend []int
		lc.mu.Lock()
		for i := range lc.sessions {
			s := &lc.sessions[i]
			if s.done || s.queued || s.start.IsZero() {
				continue
			}
			if now.Sub(s.start) >= lc.l.cfg.RetryTimeout {
				s.queued = true
				resend = append(resend, i)
			}
		}
		lc.mu.Unlock()
		for _, i := range resend {
			lc.l.retries.Add(1)
			select {
			case lc.sendQ <- i:
			case <-lc.done:
				return
			}
		}
	}
}

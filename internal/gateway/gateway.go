// Package gateway is the multiplexed front door in front of a replica
// group: many lightweight client sessions share a handful of TCP
// connections into the gateway, which coalesces their transactions into
// shared consensus requests signed once under the gateway's identity and
// fans the responses back per session.
//
// The tier exists because the paper's closed-loop client model (one
// identity, one signature, one connection per client) stops scaling long
// before the replicas do: at 100K+ clients the replicas spend their time
// on ed25519 verification and connection churn rather than ordering. The
// gateway amortizes both — B session transactions ride one client
// request with one signature — and adds the two properties an edge tier
// must have:
//
//   - Retry safety. Sessions tag submits with a strictly-increasing
//     nonce starting at 1; the gateway dedups on (session, nonce),
//     absorbing duplicates of in-flight submits and replaying cached
//     replies for completed ones. A retried submit is acknowledged
//     exactly once and executed exactly once, no matter how the timeout
//     raced the response. Dedup state is keyed gateway-wide (session ids
//     are a gateway-global namespace), so it survives a session's
//     connection dropping and reconnecting; idle sessions are evicted
//     after SessionIdle.
//   - End-to-end backpressure. Replicas stamp a queue-saturation gauge
//     on every response (types.ClientResponse.Busy); the gateway's
//     admission controller turns a saturated gauge or a full internal
//     queue into an explicit StatusBusy pushback at the edge instead of
//     letting overload surface as silent transport drops. A saturated
//     gauge expires after BusyDecay without a fresh response, so a
//     drained gateway probes its way out of saturation instead of
//     wedging on the last overloaded reading.
package gateway

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	clientengine "resilientdb/internal/consensus/client"
	"resilientdb/internal/crypto"
	"resilientdb/internal/pool"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
)

// DefaultBaseClient is the first gateway upstream identity. It sits far
// above any direct load-generator client so the two id spaces never
// collide; crypto.Directory derives keys for any id lazily, so gateway
// identities need no registration.
const DefaultBaseClient types.ClientID = 1 << 20

// Config parameterizes a Gateway.
type Config struct {
	// N is the replica count; Protocol the client-side quorum rules.
	N        int
	Protocol clientengine.Protocol
	// Directory provides key material for the gateway identities.
	Directory *crypto.Directory
	// Endpoint attaches one upstream worker to the replica fabric. It is
	// called once per upstream with that worker's client identity.
	Endpoint func(id types.ClientID) (transport.Endpoint, error)
	// BaseClient is the first upstream identity (default
	// DefaultBaseClient); upstream i uses BaseClient+i.
	BaseClient types.ClientID
	// Upstreams is the number of replica-facing consensus workers, each a
	// closed loop with one request in flight (default 4). This — not the
	// session count — is the gateway's replica-facing connection budget.
	Upstreams int
	// Batch caps the transactions coalesced into one consensus request
	// (default 128); Linger is how long a non-full batch waits for more
	// (default 200µs).
	Batch  int
	Linger time.Duration
	// Timeout is the upstream retransmission delay (default 500ms).
	Timeout time.Duration
	// QueueCap bounds the admission queue between the front door and the
	// upstream workers (default 1<<14). A full queue is an overload
	// signal, answered with StatusBusy.
	QueueCap int
	// BusyThreshold is the replica gauge (0..255) at or above which new
	// submits are pushed back (default 230 ≈ 90% saturation).
	BusyThreshold uint8
	// BusyDecay is how long a stored saturation gauge keeps pushing back
	// without being refreshed by a consensus response before admission
	// treats it as stale and admits again (default 4×Timeout). The gauge
	// only refreshes when an upstream request completes, so without decay
	// a saturated reading taken just before the queue drained would wedge
	// admission forever.
	BusyDecay time.Duration
	// DedupWindow is how many completed replies are cached per session
	// for retry replay (default 8). A retry older than the window is
	// answered StatusRejected — still never re-executed.
	DedupWindow int
	// SessionIdle is how long a session with nothing in flight may sit
	// idle before its dedup state is evicted (default 5m). Session state
	// lives in the gateway, not the connection, so a session that
	// reconnects after a network blip keeps its dedup window until the
	// idle deadline.
	SessionIdle time.Duration
	// ReplyBatch caps reply messages coalesced per outbound session frame
	// (default 64).
	ReplyBatch int
}

func (c *Config) fill() error {
	if c.N < 4 {
		return fmt.Errorf("gateway: need n ≥ 4 replicas, got %d", c.N)
	}
	if c.Directory == nil || c.Endpoint == nil {
		return errors.New("gateway: missing directory or endpoint factory")
	}
	if c.Protocol == 0 {
		c.Protocol = clientengine.PBFT
	}
	if c.BaseClient == 0 {
		c.BaseClient = DefaultBaseClient
	}
	if c.Upstreams <= 0 {
		c.Upstreams = 4
	}
	if c.Batch <= 0 {
		c.Batch = 128
	}
	if c.Linger <= 0 {
		c.Linger = 200 * time.Microsecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 500 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1 << 14
	}
	if c.BusyThreshold == 0 {
		c.BusyThreshold = 230
	}
	if c.BusyDecay <= 0 {
		c.BusyDecay = 4 * c.Timeout
	}
	if c.DedupWindow <= 0 {
		c.DedupWindow = 8
	}
	if c.SessionIdle <= 0 {
		c.SessionIdle = 5 * time.Minute
	}
	if c.ReplyBatch <= 0 {
		c.ReplyBatch = 64
	}
	return nil
}

// Stats is a snapshot of the gateway's counters.
type Stats struct {
	// Accepted counts submits admitted to the consensus queue; Completed
	// those answered StatusOK.
	Accepted  uint64
	Completed uint64
	// BusyRejected counts submits pushed back with StatusBusy (admission
	// queue full or replica gauge over threshold).
	BusyRejected uint64
	// DupAbsorbed counts duplicate submits of still-in-flight nonces
	// (answered by the original's reply); DupReplayed retries answered
	// from the reply cache; DupRejected retries whose cached reply was
	// already evicted, plus submits carrying the reserved nonce 0 (both
	// answered StatusRejected, never executed twice).
	DupAbsorbed uint64
	DupReplayed uint64
	DupRejected uint64
	// Requests counts consensus requests sent upstream; Retransmits the
	// upstream timeout retransmissions.
	Requests    uint64
	Retransmits uint64
	// ReadMismatches counts completed upstream batches whose quorum
	// outcome carried a read-result count different from the batch's
	// declared reads. The batch executed, so its sessions are answered
	// StatusRejected (dedup still advances — no re-execution) rather than
	// StatusOK replies with silently missing or misaligned reads.
	// Nonzero means an engine/replica bug.
	ReadMismatches uint64
	// Conns is the number of session connections ever accepted; Sessions
	// the session dedup states currently tracked (gateway-wide: they
	// survive reconnects and are evicted after Config.SessionIdle).
	Conns    uint64
	Sessions uint64
	// Busy is the latest replica queue-saturation gauge observed on a
	// consensus response (the admission controller's input).
	Busy uint8
}

// Gateway is the front door runtime. Create with New, feed it
// connections with Serve or ServeConn, stop with Close.
type Gateway struct {
	cfg Config

	submitQ   chan *pending
	upstreams []*upstream
	busy      atomic.Uint32 // latest replica gauge
	busyAt    atomic.Int64  // UnixNano when busy was last stored

	accepted       atomic.Uint64
	completed      atomic.Uint64
	busyRejected   atomic.Uint64
	dupAbsorbed    atomic.Uint64
	dupReplayed    atomic.Uint64
	dupRejected    atomic.Uint64
	requests       atomic.Uint64
	retransmits    atomic.Uint64
	readMismatches atomic.Uint64
	connsTotal     atomic.Uint64
	sessionsLive   atomic.Int64

	// sessMu guards the gateway-wide session dedup table. Keying it here
	// rather than per connection is what makes the retry contract survive
	// a reconnect: the state outlives the pipe that created it.
	sessMu   sync.Mutex
	sessions map[uint64]*sessionState

	mu     sync.Mutex
	conns  map[*gwConn]struct{}
	lns    map[net.Listener]struct{}
	closed bool

	stop chan struct{}
	wg   sync.WaitGroup // upstream workers
	cwg  sync.WaitGroup // connection handlers + accept loops
}

// New builds a gateway and starts its upstream workers.
func New(cfg Config) (*Gateway, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	g := &Gateway{
		cfg:      cfg,
		submitQ:  make(chan *pending, cfg.QueueCap),
		sessions: make(map[uint64]*sessionState),
		conns:    make(map[*gwConn]struct{}),
		lns:      make(map[net.Listener]struct{}),
		stop:     make(chan struct{}),
	}
	for i := 0; i < cfg.Upstreams; i++ {
		u, err := newUpstream(g, cfg.BaseClient+types.ClientID(i))
		if err != nil {
			g.Close()
			return nil, err
		}
		g.upstreams = append(g.upstreams, u)
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			u.run()
		}()
	}
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		g.evictLoop()
	}()
	return g, nil
}

// evictLoop retires session dedup state that has sat idle (nothing in
// flight, no submit or completion) for SessionIdle — the bound that
// keeps a long-lived gateway's session table proportional to its live
// population rather than to every session id ever seen.
func (g *Gateway) evictLoop() {
	interval := g.cfg.SessionIdle / 4
	if interval < time.Second {
		interval = time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-tick.C:
		}
		cutoff := time.Now().Add(-g.cfg.SessionIdle).UnixNano()
		g.sessMu.Lock()
		for id, st := range g.sessions {
			if len(st.pending) == 0 && st.lastActive < cutoff {
				delete(g.sessions, id)
				g.sessionsLive.Add(-1)
			}
		}
		g.sessMu.Unlock()
	}
}

// Stats returns a snapshot of the gateway's counters.
func (g *Gateway) Stats() Stats {
	return Stats{
		Accepted:       g.accepted.Load(),
		Completed:      g.completed.Load(),
		BusyRejected:   g.busyRejected.Load(),
		DupAbsorbed:    g.dupAbsorbed.Load(),
		DupReplayed:    g.dupReplayed.Load(),
		DupRejected:    g.dupRejected.Load(),
		Requests:       g.requests.Load(),
		Retransmits:    g.retransmits.Load(),
		ReadMismatches: g.readMismatches.Load(),
		Conns:          g.connsTotal.Load(),
		Sessions:       uint64(max64(g.sessionsLive.Load(), 0)),
		Busy:           uint8(g.busy.Load()),
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Serve accepts session connections on ln until the gateway closes.
func (g *Gateway) Serve(ln net.Listener) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		ln.Close()
		return errors.New("gateway: closed")
	}
	g.lns[ln] = struct{}{}
	g.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			select {
			case <-g.stop:
				return nil
			default:
				return err
			}
		}
		g.ServeConn(c)
	}
}

// ServeConn adopts one session connection; it returns immediately and
// the connection is handled until EOF, a protocol error, or Close.
func (g *Gateway) ServeConn(c net.Conn) {
	gc := &gwConn{
		gw:      g,
		c:       c,
		bufs:    new(pool.BytePool),
		replyCh: make(chan Reply, 4096),
		done:    make(chan struct{}),
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		c.Close()
		return
	}
	g.conns[gc] = struct{}{}
	g.mu.Unlock()
	g.connsTotal.Add(1)
	g.cwg.Add(2)
	go func() {
		defer g.cwg.Done()
		gc.readLoop()
	}()
	go func() {
		defer g.cwg.Done()
		gc.writeLoop()
	}()
}

// Close stops the gateway: listeners stop accepting, session connections
// close, upstream workers drain and exit.
func (g *Gateway) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	close(g.stop)
	for ln := range g.lns {
		ln.Close()
	}
	conns := make([]*gwConn, 0, len(g.conns))
	for gc := range g.conns {
		conns = append(conns, gc)
	}
	g.mu.Unlock()
	for _, gc := range conns {
		gc.close()
	}
	g.cwg.Wait()
	g.wg.Wait()
	g.sessMu.Lock()
	g.sessionsLive.Add(-int64(len(g.sessions)))
	g.sessions = make(map[uint64]*sessionState)
	g.sessMu.Unlock()
	// Drain submits that raced the shutdown; their arenas must retire.
	for {
		select {
		case p := <-g.submitQ:
			p.arena.Release()
		default:
			return
		}
	}
}

// noteBusy records a fresh replica saturation gauge from a completed
// consensus request, stamping when it was observed so admission can age
// it out.
func (g *Gateway) noteBusy(gauge uint8) {
	g.busy.Store(uint32(gauge))
	g.busyAt.Store(time.Now().UnixNano())
}

// admissionBusy reports whether new work should be pushed back based on
// the latest replica gauge. A saturated gauge older than BusyDecay is
// expired rather than obeyed: the gauge only refreshes when an upstream
// request completes, and a saturated admission gate sends no upstream
// requests — without the expiry, the last reading before the queue
// drained would pin the gateway in StatusBusy forever.
func (g *Gateway) admissionBusy() (uint8, bool) {
	gauge := uint8(g.busy.Load())
	if gauge < g.cfg.BusyThreshold {
		return gauge, false
	}
	if time.Now().UnixNano()-g.busyAt.Load() > int64(g.cfg.BusyDecay) {
		// Stale: clear so later admissions skip the timestamp check. A
		// concurrent noteBusy may overwrite with a fresher reading — that
		// ordering race is benign either way.
		g.busy.Store(0)
		return 0, false
	}
	return gauge, true
}

// pending is one admitted session transaction traveling toward consensus.
// It retains a reference on its frame's arena (ops alias the frame
// buffer) until the reply is delivered.
type pending struct {
	conn    *gwConn
	session uint64
	nonce   uint64
	ops     []types.Op
	reads   int // read ops, for slicing the batched read results
	arena   *types.Arena
}

// sessionState is the per-session dedup record: the in-flight nonce set,
// the completed high-water mark, and a bounded ring of cached replies.
// It lives in the Gateway's session table (session ids are a
// gateway-global namespace), so the retry contract holds across the
// session's connection dropping and reconnecting; lastActive drives the
// SessionIdle eviction.
type sessionState struct {
	high       uint64  // highest completed nonce (0 = none yet)
	cache      []Reply // last ≤ DedupWindow completed replies
	pending    map[uint64]struct{}
	lastActive int64 // UnixNano of the last submit or completion
}

// gwConn is one multiplexed session connection: a pipe for frames, not
// the home of session state.
type gwConn struct {
	gw   *Gateway
	c    net.Conn
	bufs *pool.BytePool

	replyCh chan Reply
	done    chan struct{}
	once    sync.Once
}

// close tears the connection down exactly once: the socket closes (which
// unblocks the read loop) and done unblocks the write loop and any
// upstream trying to deliver a reply. Session dedup state is untouched —
// it belongs to the gateway and keeps answering retries after the
// session reconnects.
func (gc *gwConn) close() {
	gc.once.Do(func() {
		close(gc.done)
		gc.c.Close()
		gc.gw.mu.Lock()
		delete(gc.gw.conns, gc)
		gc.gw.mu.Unlock()
	})
}

// readLoop decodes inbound frames and routes each submit through
// admission. Any decode error closes the connection — a corrupt
// multiplexed stream cannot be resynchronized.
func (gc *gwConn) readLoop() {
	defer gc.close()
	br := bufio.NewReaderSize(gc.c, 1<<16)
	for {
		f, err := readSessionFrame(br, gc.bufs)
		if err != nil {
			return
		}
		for i := range f.Submits {
			gc.handleSubmit(&f.Submits[i], f.Arena)
		}
		f.Arena.Release() // drop the reader's reference
	}
}

// handleSubmit runs one submit through dedup and admission. The caller
// owns a reference on arena; handleSubmit retains its own for any path
// that outlives the call (enqueue toward consensus).
func (gc *gwConn) handleSubmit(s *Submit, arena *types.Arena) {
	gw := gc.gw
	// Nonce 0 is reserved: the dedup high-water mark uses 0 for "nothing
	// completed yet", so a completed nonce 0 could never be recognized as
	// a duplicate and its retry would re-execute. Reject it outright —
	// the wire contract says nonces start at 1.
	if s.Nonce == 0 {
		gw.dupRejected.Add(1)
		gc.deliver(Reply{Session: s.Session, Nonce: 0, Status: StatusRejected})
		return
	}
	gw.sessMu.Lock()
	st := gw.sessions[s.Session]
	if st == nil {
		st = &sessionState{pending: make(map[uint64]struct{})}
		gw.sessions[s.Session] = st
		gw.sessionsLive.Add(1)
	}
	st.lastActive = time.Now().UnixNano()
	// Dedup before admission: a retry of work already accepted must never
	// be double-executed OR pushed back — it is answered from the
	// session's state alone.
	if _, inflight := st.pending[s.Nonce]; inflight {
		gw.sessMu.Unlock()
		gw.dupAbsorbed.Add(1)
		return // the original's reply answers this retry
	}
	if s.Nonce <= st.high {
		for i := range st.cache {
			if st.cache[i].Nonce == s.Nonce {
				r := st.cache[i]
				gw.sessMu.Unlock()
				gw.dupReplayed.Add(1)
				gc.deliver(r)
				return
			}
		}
		gw.sessMu.Unlock()
		gw.dupRejected.Add(1)
		gc.deliver(Reply{Session: s.Session, Nonce: s.Nonce, Status: StatusRejected})
		return
	}
	// Admission: replica saturation or a full queue is explicit pushback,
	// not a silent drop. The submit is NOT marked pending, so the retry
	// (same nonce) is a fresh admission attempt.
	gauge, saturated := gw.admissionBusy()
	if saturated {
		gw.sessMu.Unlock()
		gw.busyRejected.Add(1)
		gc.deliver(Reply{Session: s.Session, Nonce: s.Nonce, Status: StatusBusy, Busy: gauge})
		return
	}
	p := &pending{conn: gc, session: s.Session, nonce: s.Nonce, ops: s.Ops, arena: arena}
	for i := range s.Ops {
		if s.Ops[i].Kind == types.OpRead || s.Ops[i].Kind == types.OpScan {
			// Both produce one entry in the batched read results; the
			// reply spans slice by that count.
			p.reads++
		}
	}
	arena.Retain() // the pending's reference, held before an upstream can see it
	select {
	case gw.submitQ <- p:
		st.pending[s.Nonce] = struct{}{}
		gw.sessMu.Unlock()
		gw.accepted.Add(1)
	default:
		gw.sessMu.Unlock()
		arena.Release() // admission failed; the pending never existed
		gw.busyRejected.Add(1)
		gc.deliver(Reply{Session: s.Session, Nonce: s.Nonce, Status: StatusBusy, Busy: gauge})
	}
}

// complete delivers a consensus outcome for one pending submit: the
// session's dedup state advances, the reply is cached for retries, and
// the pending's arena reference retires. The dedup update happens even
// if the submitting connection has since closed — the transaction
// executed, so a retry from a reconnected session must replay the
// cached reply, never re-execute.
func (gc *gwConn) complete(p *pending, r Reply) {
	gw := gc.gw
	gw.sessMu.Lock()
	if st := gw.sessions[p.session]; st != nil {
		delete(st.pending, p.nonce)
		if p.nonce > st.high {
			st.high = p.nonce
		}
		st.lastActive = time.Now().UnixNano()
		st.cache = append(st.cache, r)
		if len(st.cache) > gw.cfg.DedupWindow {
			st.cache = st.cache[len(st.cache)-gw.cfg.DedupWindow:]
		}
	}
	gw.sessMu.Unlock()
	p.arena.Release()
	gw.completed.Add(1)
	gc.deliver(r)
}

// deliver hands a reply to the write loop, blocking only against a live
// connection (backpressure toward a slow session pipe); a closed
// connection drops the reply — the session's dedup cache (which outlives
// the connection) answers the inevitable retry.
func (gc *gwConn) deliver(r Reply) {
	select {
	case gc.replyCh <- r:
	case <-gc.done:
	}
}

// writeLoop drains replies, coalescing bursts into shared frames.
func (gc *gwConn) writeLoop() {
	defer gc.close()
	bw := bufio.NewWriterSize(gc.c, 1<<16)
	w := types.GetWriter()
	defer types.PutWriter(w)
	for {
		var first Reply
		select {
		case first = <-gc.replyCh:
		case <-gc.done:
			return
		}
		w.Reset()
		appendReply(w, &first)
		count := 1
	coalesce:
		for count < gc.gw.cfg.ReplyBatch {
			select {
			case r := <-gc.replyCh:
				appendReply(w, &r)
				count++
			default:
				break coalesce
			}
		}
		if err := writeSessionFrame(bw, count, w.Bytes()); err != nil {
			return
		}
		if len(gc.replyCh) == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// Session wire protocol: the framing between lightweight client sessions
// and the gateway's front door. Many sessions share one TCP connection;
// every message is tagged with its session id, so the connection is a
// multiplexing pipe, not an identity. Framing follows the transport
// layer's length-prefixed idiom, and inbound frames decode zero-copy out
// of pooled buffers exactly like the replica receive path: a Submit's op
// values alias the frame buffer through a reference-counted arena until
// the gateway has folded them into a consensus request.
//
// Frame layout:
//
//	[u32 payload length][u32 message count][message...]
//
// Message layout (kind byte first):
//
//	submit: 0x01 [u64 session][u64 nonce][u32 ops](op)...
//	op:     point  [u8 kind][u64 key][blob value]
//	        scan   [u8 kind=2][u64 key][u64 end][u32 limit][blob value]
//	reply:  0x02 [u64 session][u64 nonce][u8 status][u64 seq][u8 busy]
//	             [u32 reads](read)...
//	read:   point  [u8 marker=0|1 found][blob value]
//	        scan   [u8 marker=2][u32 rows]([u64 key][blob value])...
//
// The scan arms mirror the consensus wire format (types.Op / scanMarker):
// an OpScan carries its inclusive end key and row limit, and a scan read
// result carries its merged rows. Pre-scan peers never emitted op kind 2
// or marker 2, so their bytes decode unchanged.
//
// A session submits one transaction per message with a session-local,
// strictly increasing nonce starting at 1 (0 is reserved as the dedup
// high-water mark's "nothing completed" value and is rejected); the
// (session, nonce) pair is the retry key the gateway dedups on. Session
// ids are a gateway-global namespace — dedup state is keyed by session
// id alone so it survives reconnects, which means two connections using
// the same session id share one dedup window. Replies may arrive in any
// order — the gateway
// coalesces transactions from many sessions into shared consensus
// requests, and sessions on one connection complete independently.
package gateway

import (
	"fmt"
	"io"

	"resilientdb/internal/types"
)

// Message kinds.
const (
	kindSubmit = 0x01
	kindReply  = 0x02
)

// Status codes carried by replies.
type Status uint8

// Reply statuses.
const (
	// StatusOK: the transaction executed; Seq is its consensus sequence
	// number and Reads carries its read results.
	StatusOK Status = 1
	// StatusBusy: admission control pushed the submit back — the gateway
	// queue was full or the replicas' piggybacked busy gauge crossed the
	// threshold. The transaction was NOT executed and was not enqueued;
	// the session should retry with the same nonce after a backoff.
	StatusBusy Status = 2
	// StatusRejected: the nonce is at or below the session's completed
	// high-water mark but its cached reply has been evicted. The
	// transaction is not re-executed (retry safety holds); the session
	// lost only the reply payload, not the execution.
	StatusRejected Status = 3
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBusy:
		return "busy"
	case StatusRejected:
		return "rejected"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Submit is one session transaction entering the gateway. Ops may alias
// the inbound frame buffer; the arena reference (held by the gateway's
// pending record) keeps the buffer alive until the transaction has been
// marshalled into a consensus request and answered.
type Submit struct {
	Session uint64
	Nonce   uint64
	Ops     []types.Op
}

// Reply is the gateway's answer to one Submit. Busy carries the latest
// replica queue-saturation gauge (0..255) so sessions can self-pace even
// on successful replies.
type Reply struct {
	Session uint64
	Nonce   uint64
	Status  Status
	Seq     uint64
	Busy    uint8
	Reads   []types.ReadResult
}

// maxSessionFrame bounds one session frame; a malformed or hostile length
// prefix must not make the gateway allocate unbounded memory.
const maxSessionFrame = 1 << 24

// minSubmitSize and minReplySize validate message counts against forged
// headers, mirroring the transport codec's minEnvelopeSize.
const (
	minSubmitSize = 1 + 8 + 8 + 4
	minReplySize  = 1 + 8 + 8 + 1 + 8 + 1 + 4
)

// appendSubmit appends one submit message to w.
func appendSubmit(w *types.Writer, s *Submit) {
	w.U8(kindSubmit)
	w.U64(s.Session)
	w.U64(s.Nonce)
	w.U32(uint32(len(s.Ops)))
	for i := range s.Ops {
		w.U8(uint8(s.Ops[i].Kind))
		w.U64(s.Ops[i].Key)
		if s.Ops[i].Kind == types.OpScan {
			w.U64(s.Ops[i].EndKey)
			w.U32(s.Ops[i].Limit)
		}
		w.Blob(s.Ops[i].Value)
	}
}

// appendReply appends one reply message to w.
func appendReply(w *types.Writer, r *Reply) {
	w.U8(kindReply)
	w.U64(r.Session)
	w.U64(r.Nonce)
	w.U8(uint8(r.Status))
	w.U64(r.Seq)
	w.U8(r.Busy)
	w.U32(uint32(len(r.Reads)))
	for i := range r.Reads {
		if r.Reads[i].Scan {
			w.U8(2)
			w.U32(uint32(len(r.Reads[i].Rows)))
			for _, row := range r.Reads[i].Rows {
				w.U64(row.Key)
				w.Blob(row.Value)
			}
			continue
		}
		if r.Reads[i].Found {
			w.U8(1)
		} else {
			w.U8(0)
		}
		w.Blob(r.Reads[i].Value)
	}
}

// writeSessionFrame writes one frame carrying count messages already
// marshalled into payload (the bytes after the two header words).
func writeSessionFrame(w io.Writer, count int, payload []byte) error {
	n := uint32(4 + len(payload))
	hdr := [8]byte{
		byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n),
		byte(count >> 24), byte(count >> 16), byte(count >> 8), byte(count),
	}
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("gateway: writing session frame: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("gateway: writing session frame: %w", err)
	}
	return nil
}

// sessionFrame is one decoded inbound frame. Submits' op values alias the
// frame buffer; the caller must Release the arena once every submit in
// the frame has been retired (the arena starts with one reference per
// submit plus the caller's).
type sessionFrame struct {
	Submits []Submit
	Replies []Reply
	Arena   *types.Arena
}

// readSessionFrame reads and decodes one frame from r, borrowing the
// frame buffer from bufs. On success the returned frame's arena holds one
// reference owned by the caller; Submit op values alias the buffer, Reply
// values are copied (replies are few and small — the sessions side keeps
// no arenas). An error means the stream is corrupt and the connection
// must be closed; io.EOF propagates untouched for clean shutdown.
func readSessionFrame(r io.Reader, bufs types.FrameBuffers) (sessionFrame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return sessionFrame{}, err
	}
	n := uint32(lenBuf[0])<<24 | uint32(lenBuf[1])<<16 | uint32(lenBuf[2])<<8 | uint32(lenBuf[3])
	if n < 4 || n > maxSessionFrame {
		return sessionFrame{}, fmt.Errorf("gateway: session frame of %d bytes", n)
	}
	body := bufs.Get(int(n))[:n]
	arena := types.NewArena(body, bufs)
	if _, err := io.ReadFull(r, body); err != nil {
		arena.Release()
		return sessionFrame{}, fmt.Errorf("gateway: reading session frame: %w", err)
	}
	rd := types.NewAliasReader(body)
	count := int(rd.U32())
	if count < 0 || count > int(n)/minSubmitSize+1 {
		arena.Release()
		return sessionFrame{}, fmt.Errorf("gateway: session frame count %d", count)
	}
	f := sessionFrame{Arena: arena}
	for i := 0; i < count && rd.Err() == nil; i++ {
		switch kind := rd.U8(); kind {
		case kindSubmit:
			var s Submit
			s.Session = rd.U64()
			s.Nonce = rd.U64()
			ops := int(rd.U32())
			if ops < 0 || ops > rd.Remaining()/9+1 {
				arena.Release()
				return sessionFrame{}, fmt.Errorf("gateway: submit with %d ops", ops)
			}
			if ops > 0 {
				s.Ops = make([]types.Op, ops)
				for j := 0; j < ops; j++ {
					s.Ops[j].Kind = types.OpKind(rd.U8())
					s.Ops[j].Key = rd.U64()
					if s.Ops[j].Kind == types.OpScan {
						s.Ops[j].EndKey = rd.U64()
						s.Ops[j].Limit = rd.U32()
					}
					s.Ops[j].Value = rd.Blob() // aliases the frame buffer
				}
			}
			f.Submits = append(f.Submits, s)
		case kindReply:
			var rp Reply
			rp.Session = rd.U64()
			rp.Nonce = rd.U64()
			rp.Status = Status(rd.U8())
			rp.Seq = rd.U64()
			rp.Busy = rd.U8()
			reads := int(rd.U32())
			if reads < 0 || reads > rd.Remaining()/5+1 {
				arena.Release()
				return sessionFrame{}, fmt.Errorf("gateway: reply with %d reads", reads)
			}
			if reads > 0 {
				rp.Reads = make([]types.ReadResult, reads)
				for j := 0; j < reads; j++ {
					switch marker := rd.U8(); marker {
					case 2:
						rp.Reads[j].Scan = true
						rows := int(rd.U32())
						if rows < 0 || rows > rd.Remaining()/12+1 {
							arena.Release()
							return sessionFrame{}, fmt.Errorf("gateway: scan result with %d rows", rows)
						}
						if rows > 0 {
							rp.Reads[j].Rows = make([]types.ScanRow, rows)
							for k := 0; k < rows; k++ {
								rp.Reads[j].Rows[k].Key = rd.U64()
								rp.Reads[j].Rows[k].Value = rd.CopyBlob() // replies outlive the frame
							}
						}
					case 0, 1:
						rp.Reads[j].Found = marker == 1
						rp.Reads[j].Value = rd.CopyBlob() // replies outlive the frame
					default:
						arena.Release()
						return sessionFrame{}, fmt.Errorf("gateway: unknown read marker %d", marker)
					}
				}
			}
			f.Replies = append(f.Replies, rp)
		default:
			arena.Release()
			return sessionFrame{}, fmt.Errorf("gateway: unknown session message kind %#x", kind)
		}
	}
	if err := rd.Err(); err != nil {
		arena.Release()
		return sessionFrame{}, fmt.Errorf("gateway: decoding session frame: %w", err)
	}
	if rd.Remaining() != 0 {
		arena.Release()
		return sessionFrame{}, fmt.Errorf("gateway: session frame with %d trailing bytes", rd.Remaining())
	}
	return f, nil
}

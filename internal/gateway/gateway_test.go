package gateway

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"resilientdb/internal/cluster"
	"resilientdb/internal/pool"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
	"resilientdb/internal/workload"
)

// --- wire codec ---

func TestSessionWireRoundTrip(t *testing.T) {
	w := types.GetWriter()
	defer types.PutWriter(w)
	subs := []Submit{
		{Session: 1, Nonce: 1, Ops: []types.Op{{Kind: types.OpWrite, Key: 7, Value: []byte("v7")}}},
		{Session: 1 << 40, Nonce: 99, Ops: []types.Op{
			{Kind: types.OpRead, Key: 8},
			{Kind: types.OpWrite, Key: 9, Value: []byte("nine")},
		}},
		{Session: 3, Nonce: 2}, // no ops
		{Session: 4, Nonce: 7, Ops: []types.Op{
			{Kind: types.OpScan, Key: 10, EndKey: 20, Limit: 5},
			{Kind: types.OpWrite, Key: 11, Value: []byte("w")},
		}},
	}
	reps := []Reply{
		{Session: 1, Nonce: 1, Status: StatusOK, Seq: 42, Busy: 17},
		{Session: 2, Nonce: 5, Status: StatusBusy, Busy: 255},
		{Session: 3, Nonce: 6, Status: StatusOK, Seq: 43, Reads: []types.ReadResult{
			{Found: true, Value: []byte("rv")}, {Found: false},
		}},
		{Session: 4, Nonce: 7, Status: StatusOK, Seq: 44, Reads: []types.ReadResult{
			{Scan: true, Rows: []types.ScanRow{
				{Key: 10, Value: []byte("ten")}, {Key: 12, Value: []byte("twelve")},
			}},
			{Scan: true}, // empty scan
			{Found: true, Value: []byte("point")},
		}},
	}
	for i := range subs {
		appendSubmit(w, &subs[i])
	}
	for i := range reps {
		appendReply(w, &reps[i])
	}
	var buf bytes.Buffer
	if err := writeSessionFrame(&buf, len(subs)+len(reps), w.Bytes()); err != nil {
		t.Fatalf("writing frame: %v", err)
	}
	f, err := readSessionFrame(&buf, new(pool.BytePool))
	if err != nil {
		t.Fatalf("reading frame: %v", err)
	}
	defer f.Arena.Release()
	if len(f.Submits) != len(subs) || len(f.Replies) != len(reps) {
		t.Fatalf("got %d submits, %d replies; want %d, %d", len(f.Submits), len(f.Replies), len(subs), len(reps))
	}
	for i := range subs {
		got, want := f.Submits[i], subs[i]
		if got.Session != want.Session || got.Nonce != want.Nonce || len(got.Ops) != len(want.Ops) {
			t.Fatalf("submit %d: got %+v want %+v", i, got, want)
		}
		for j := range want.Ops {
			if got.Ops[j].Kind != want.Ops[j].Kind || got.Ops[j].Key != want.Ops[j].Key ||
				got.Ops[j].EndKey != want.Ops[j].EndKey || got.Ops[j].Limit != want.Ops[j].Limit ||
				!bytes.Equal(got.Ops[j].Value, want.Ops[j].Value) {
				t.Fatalf("submit %d op %d: got %+v want %+v", i, j, got.Ops[j], want.Ops[j])
			}
		}
	}
	for i := range reps {
		got, want := f.Replies[i], reps[i]
		if got.Session != want.Session || got.Nonce != want.Nonce || got.Status != want.Status ||
			got.Seq != want.Seq || got.Busy != want.Busy || len(got.Reads) != len(want.Reads) {
			t.Fatalf("reply %d: got %+v want %+v", i, got, want)
		}
		for j := range want.Reads {
			gr, wr := got.Reads[j], want.Reads[j]
			if gr.Found != wr.Found || gr.Scan != wr.Scan ||
				!bytes.Equal(gr.Value, wr.Value) || len(gr.Rows) != len(wr.Rows) {
				t.Fatalf("reply %d read %d: got %+v want %+v", i, j, gr, wr)
			}
			for k := range wr.Rows {
				if gr.Rows[k].Key != wr.Rows[k].Key || !bytes.Equal(gr.Rows[k].Value, wr.Rows[k].Value) {
					t.Fatalf("reply %d read %d row %d: got %+v want %+v", i, j, k, gr.Rows[k], wr.Rows[k])
				}
			}
		}
	}
}

func TestSessionWireMalformed(t *testing.T) {
	bufs := new(pool.BytePool)
	cases := map[string][]byte{
		"oversized length":  {0xff, 0xff, 0xff, 0xff},
		"undersized length": {0, 0, 0, 1},
		"truncated body":    {0, 0, 0, 20, 0, 0, 0, 1, kindSubmit},
		"unknown kind": frameBytes(t, 1, func(w *types.Writer) {
			w.U8(0x7f)
			w.U64(1)
		}),
		"forged count": {0, 0, 0, 8, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0},
		"trailing bytes": frameBytes(t, 1, func(w *types.Writer) {
			appendSubmit(w, &Submit{Session: 1, Nonce: 1})
			w.U32(0xdeadbeef)
		}),
		"submit op overflow": frameBytes(t, 1, func(w *types.Writer) {
			w.U8(kindSubmit)
			w.U64(1)
			w.U64(1)
			w.U32(1 << 30)
		}),
		"truncated scan op": frameBytes(t, 1, func(w *types.Writer) {
			w.U8(kindSubmit)
			w.U64(1)
			w.U64(1)
			w.U32(1)
			w.U8(uint8(types.OpScan))
			w.U64(10) // end key, limit, and value blob missing
		}),
		"scan rows overflow": frameBytes(t, 1, func(w *types.Writer) {
			w.U8(kindReply)
			w.U64(1)
			w.U64(1)
			w.U8(uint8(StatusOK))
			w.U64(1)
			w.U8(0)
			w.U32(1)
			w.U8(2)
			w.U32(1 << 30)
		}),
		"unknown read marker": frameBytes(t, 1, func(w *types.Writer) {
			w.U8(kindReply)
			w.U64(1)
			w.U64(1)
			w.U8(uint8(StatusOK))
			w.U64(1)
			w.U8(0)
			w.U32(1)
			w.U8(7)
			w.Blob(nil)
		}),
	}
	for name, raw := range cases {
		if _, err := readSessionFrame(bytes.NewReader(raw), bufs); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func frameBytes(t *testing.T, count int, build func(*types.Writer)) []byte {
	t.Helper()
	w := types.GetWriter()
	defer types.PutWriter(w)
	build(w)
	var buf bytes.Buffer
	if err := writeSessionFrame(&buf, count, w.Bytes()); err != nil {
		t.Fatalf("writing frame: %v", err)
	}
	return buf.Bytes()
}

// --- end-to-end harness ---

func newTestCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	wl := workload.Default()
	wl.Records = 256
	wl.ValueSize = 16
	c, err := cluster.New(cluster.Options{
		N:                  4,
		Clients:            1,
		BatchSize:          4,
		Workload:           wl,
		CheckpointInterval: 16,
		ClientTimeout:      150 * time.Millisecond,
		Seed:               7,
		PreloadTable:       true,
	})
	if err != nil {
		t.Fatalf("building cluster: %v", err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func newTestGateway(t *testing.T, c *cluster.Cluster, mod func(*Config)) *Gateway {
	t.Helper()
	cfg := Config{
		N:         4,
		Directory: c.Directory(),
		Endpoint: func(id types.ClientID) (transport.Endpoint, error) {
			return c.AttachClient(id, 1<<10), nil
		},
		Upstreams: 2,
		Batch:     16,
		Linger:    time.Millisecond,
		Timeout:   150 * time.Millisecond,
	}
	if mod != nil {
		mod(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatalf("building gateway: %v", err)
	}
	t.Cleanup(g.Close)
	return g
}

// testSession is a hand-driven session connection: it writes raw submit
// frames and collects replies, giving the tests exact control over
// nonces, duplicates, and ordering.
type testSession struct {
	t    *testing.T
	c    net.Conn
	br   *bufio.Reader
	bufs *pool.BytePool
}

func dialSession(t *testing.T, g *Gateway) *testSession {
	t.Helper()
	client, server := net.Pipe()
	g.ServeConn(server)
	t.Cleanup(func() { client.Close() })
	return &testSession{t: t, c: client, br: bufio.NewReader(client), bufs: new(pool.BytePool)}
}

// send writes one frame carrying the given submits.
func (ts *testSession) send(subs ...Submit) {
	ts.t.Helper()
	w := types.GetWriter()
	defer types.PutWriter(w)
	for i := range subs {
		appendSubmit(w, &subs[i])
	}
	ts.c.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if err := writeSessionFrame(ts.c, len(subs), w.Bytes()); err != nil {
		ts.t.Fatalf("sending frame: %v", err)
	}
}

// recv collects replies until it has n or the deadline passes.
func (ts *testSession) recv(n int, timeout time.Duration) []Reply {
	ts.t.Helper()
	var out []Reply
	deadline := time.Now().Add(timeout)
	for len(out) < n {
		ts.c.SetReadDeadline(deadline)
		f, err := readSessionFrame(ts.br, ts.bufs)
		if err != nil {
			ts.t.Fatalf("reading replies (have %d, want %d): %v", len(out), n, err)
		}
		out = append(out, f.Replies...)
		f.Arena.Release()
	}
	return out
}

// tryRecv is recv without the fatal: it returns whatever arrived before
// the timeout.
func (ts *testSession) tryRecv(n int, timeout time.Duration) []Reply {
	var out []Reply
	deadline := time.Now().Add(timeout)
	for len(out) < n && time.Now().Before(deadline) {
		ts.c.SetReadDeadline(deadline)
		f, err := readSessionFrame(ts.br, ts.bufs)
		if err != nil {
			return out
		}
		out = append(out, f.Replies...)
		f.Arena.Release()
	}
	return out
}

func writeOp(key uint64, val string) []types.Op {
	return []types.Op{{Kind: types.OpWrite, Key: key, Value: []byte(val)}}
}

// settleHeight waits until every replica's ledger height stops moving and
// returns it; the tests use it to pin "no further execution happened".
func settleHeight(t *testing.T, c *cluster.Cluster) uint64 {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		h := c.Replica(0).Ledger().Height()
		time.Sleep(100 * time.Millisecond)
		stable := true
		for i := 0; i < 4; i++ {
			if c.Replica(i).Ledger().Height() != h {
				stable = false
				break
			}
		}
		if stable && c.Replica(0).Ledger().Height() == h {
			return h
		}
	}
	t.Fatalf("ledger heights did not settle")
	return 0
}

// --- end-to-end behavior ---

func TestGatewayEndToEnd(t *testing.T) {
	c := newTestCluster(t)
	g := newTestGateway(t, c, nil)
	ts := dialSession(t, g)

	const sessions = 6
	subs := make([]Submit, 0, sessions)
	for s := 0; s < sessions; s++ {
		subs = append(subs, Submit{
			Session: uint64(s),
			Nonce:   1,
			Ops:     writeOp(uint64(s), fmt.Sprintf("s%d", s)),
		})
	}
	ts.send(subs...)
	replies := ts.recv(sessions, 5*time.Second)
	seen := make(map[uint64]Reply)
	for _, r := range replies {
		if r.Status != StatusOK {
			t.Fatalf("session %d: status %v, want ok", r.Session, r.Status)
		}
		if _, dup := seen[r.Session]; dup {
			t.Fatalf("session %d acknowledged twice", r.Session)
		}
		seen[r.Session] = r
	}
	if len(seen) != sessions {
		t.Fatalf("got replies for %d sessions, want %d", len(seen), sessions)
	}
	// The writes must actually have executed: read one back through a
	// second submit with a read op.
	ts.send(Submit{Session: 0, Nonce: 2, Ops: []types.Op{{Kind: types.OpRead, Key: 3}}})
	r := ts.recv(1, 5*time.Second)[0]
	if r.Status != StatusOK || len(r.Reads) != 1 {
		t.Fatalf("read-back reply: %+v", r)
	}
	if !r.Reads[0].Found || string(r.Reads[0].Value) != "s3" {
		t.Fatalf("read-back value: %+v, want s3", r.Reads[0])
	}
	if err := c.VerifyLedgers(nil); err != nil {
		t.Fatalf("ledger check: %v", err)
	}
	st := g.Stats()
	if st.Accepted != sessions+1 || st.Completed != sessions+1 {
		t.Fatalf("stats: %+v, want %d accepted+completed", st, sessions+1)
	}
}

func TestGatewayRetryReplaysCachedReply(t *testing.T) {
	c := newTestCluster(t)
	g := newTestGateway(t, c, nil)
	ts := dialSession(t, g)

	ts.send(Submit{Session: 9, Nonce: 1, Ops: writeOp(1, "one")})
	first := ts.recv(1, 5*time.Second)[0]
	if first.Status != StatusOK {
		t.Fatalf("first reply: %+v", first)
	}
	before := settleHeight(t, c)
	txnsBefore := c.Replica(0).Stats().TxnsExecuted

	// The retry must be answered from the reply cache: same status, same
	// sequence — and nothing new may reach consensus.
	ts.send(Submit{Session: 9, Nonce: 1, Ops: writeOp(1, "one")})
	second := ts.recv(1, 5*time.Second)[0]
	if second.Status != StatusOK || second.Seq != first.Seq || second.Session != 9 || second.Nonce != 1 {
		t.Fatalf("retry reply %+v, want replay of %+v", second, first)
	}
	after := settleHeight(t, c)
	if after != before {
		t.Fatalf("ledger height moved %d → %d on a retried request", before, after)
	}
	if got := c.Replica(0).Stats().TxnsExecuted; got != txnsBefore {
		t.Fatalf("retry executed: %d → %d transactions", txnsBefore, got)
	}
	if st := g.Stats(); st.DupReplayed != 1 {
		t.Fatalf("stats: %+v, want DupReplayed=1", st)
	}
}

// TestGatewayScanEndToEnd drives a range scan through the full gateway
// path — session wire, edge batching into a shared consensus request,
// f+1 quorum, reply span slicing — and then retries the same nonce: the
// cached multi-row reply must replay byte-for-byte without re-executing.
func TestGatewayScanEndToEnd(t *testing.T) {
	c := newTestCluster(t)
	g := newTestGateway(t, c, nil)
	ts := dialSession(t, g)

	// Seed a contiguous key range through the gateway itself, batched
	// alongside the scan-free sessions so edge batching runs.
	const base = uint64(1000)
	subs := make([]Submit, 0, 5)
	for i := uint64(0); i < 5; i++ {
		subs = append(subs, Submit{
			Session: i, Nonce: 1,
			Ops: writeOp(base+i, fmt.Sprintf("k%d", i)),
		})
	}
	ts.send(subs...)
	for _, r := range ts.recv(5, 5*time.Second) {
		if r.Status != StatusOK {
			t.Fatalf("seed write: %+v", r)
		}
	}

	// A transaction mixing a scan, a point read, and a write: the scan's
	// rows and the read's value land in the right reply spans.
	ts.send(Submit{Session: 8, Nonce: 1, Ops: []types.Op{
		{Kind: types.OpScan, Key: base, EndKey: base + 4, Limit: 3},
		{Kind: types.OpRead, Key: base + 4},
		{Kind: types.OpWrite, Key: base + 9, Value: []byte("w")},
	}})
	first := ts.recv(1, 5*time.Second)[0]
	if first.Status != StatusOK || len(first.Reads) != 2 {
		t.Fatalf("scan reply: %+v", first)
	}
	sc := first.Reads[0]
	if !sc.Scan || len(sc.Rows) != 3 {
		t.Fatalf("scan result: %+v, want 3 rows", sc)
	}
	for i, row := range sc.Rows {
		if row.Key != base+uint64(i) || string(row.Value) != fmt.Sprintf("k%d", i) {
			t.Fatalf("scan row %d: (%d,%q)", i, row.Key, row.Value)
		}
	}
	if !first.Reads[1].Found || string(first.Reads[1].Value) != "k4" {
		t.Fatalf("point read alongside scan: %+v", first.Reads[1])
	}

	before := settleHeight(t, c)
	txnsBefore := c.Replica(0).Stats().TxnsExecuted

	// Retry with the same nonce: the cached reply — scan rows included —
	// replays from the dedup window and nothing reaches consensus again.
	ts.send(Submit{Session: 8, Nonce: 1, Ops: []types.Op{
		{Kind: types.OpScan, Key: base, EndKey: base + 4, Limit: 3},
		{Kind: types.OpRead, Key: base + 4},
		{Kind: types.OpWrite, Key: base + 9, Value: []byte("w")},
	}})
	second := ts.recv(1, 5*time.Second)[0]
	if second.Status != StatusOK || second.Seq != first.Seq || len(second.Reads) != 2 {
		t.Fatalf("retry reply %+v, want replay of %+v", second, first)
	}
	resc := second.Reads[0]
	if !resc.Scan || len(resc.Rows) != len(sc.Rows) {
		t.Fatalf("replayed scan result: %+v", resc)
	}
	for i := range sc.Rows {
		if resc.Rows[i].Key != sc.Rows[i].Key || !bytes.Equal(resc.Rows[i].Value, sc.Rows[i].Value) {
			t.Fatalf("replayed row %d: %+v, want %+v", i, resc.Rows[i], sc.Rows[i])
		}
	}
	if after := settleHeight(t, c); after != before {
		t.Fatalf("ledger height moved %d → %d on a retried scan", before, after)
	}
	if got := c.Replica(0).Stats().TxnsExecuted; got != txnsBefore {
		t.Fatalf("retry executed: %d → %d transactions", txnsBefore, got)
	}
	if st := g.Stats(); st.DupReplayed != 1 || st.ReadMismatches != 0 {
		t.Fatalf("stats: %+v, want DupReplayed=1 ReadMismatches=0", st)
	}
	if err := c.VerifyLedgers(nil); err != nil {
		t.Fatalf("ledger check: %v", err)
	}
}

func TestGatewayReorderedNoncesEachAckedOnce(t *testing.T) {
	c := newTestCluster(t)
	g := newTestGateway(t, c, nil)
	ts := dialSession(t, g)

	// One frame, nonces reversed: all are fresh, all must execute and be
	// acknowledged exactly once.
	ts.send(
		Submit{Session: 4, Nonce: 4, Ops: writeOp(10, "d")},
		Submit{Session: 4, Nonce: 3, Ops: writeOp(11, "c")},
		Submit{Session: 4, Nonce: 2, Ops: writeOp(12, "b")},
		Submit{Session: 4, Nonce: 1, Ops: writeOp(13, "a")},
	)
	replies := ts.recv(4, 5*time.Second)
	acked := map[uint64]int{}
	for _, r := range replies {
		if r.Status != StatusOK {
			t.Fatalf("nonce %d: status %v", r.Nonce, r.Status)
		}
		acked[r.Nonce]++
	}
	for n := uint64(1); n <= 4; n++ {
		if acked[n] != 1 {
			t.Fatalf("nonce %d acknowledged %d times", n, acked[n])
		}
	}
	if extra := ts.tryRecv(1, 300*time.Millisecond); len(extra) != 0 {
		t.Fatalf("unexpected extra replies: %+v", extra)
	}
}

// droppyEndpoint drops the first outbound envelope, forcing the upstream
// engine through its retransmission timeout — the injected
// gateway→replica fault of the retry-safety requirement.
type droppyEndpoint struct {
	transport.Endpoint
	dropped bool
}

func (d *droppyEndpoint) Send(env *types.Envelope) error {
	if !d.dropped {
		d.dropped = true
		env.Release()
		return nil
	}
	return d.Endpoint.Send(env)
}

func TestGatewayDuplicateUnderTimeoutExecutesOnce(t *testing.T) {
	c := newTestCluster(t)
	g := newTestGateway(t, c, func(cfg *Config) {
		cfg.Upstreams = 1
		cfg.Timeout = 100 * time.Millisecond
		cfg.Endpoint = func(id types.ClientID) (transport.Endpoint, error) {
			return &droppyEndpoint{Endpoint: c.AttachClient(id, 1<<10)}, nil
		}
	})
	ts := dialSession(t, g)

	// The first consensus send is dropped; while the upstream waits out
	// its timeout, the session retries the same nonce twice. Both retries
	// must be absorbed by the in-flight pending: exactly one reply, one
	// execution.
	ts.send(Submit{Session: 1, Nonce: 1, Ops: writeOp(21, "x")})
	time.Sleep(20 * time.Millisecond)
	ts.send(Submit{Session: 1, Nonce: 1, Ops: writeOp(21, "x")})
	ts.send(Submit{Session: 1, Nonce: 1, Ops: writeOp(21, "x")})

	replies := ts.recv(1, 5*time.Second)
	if replies[0].Status != StatusOK {
		t.Fatalf("reply: %+v", replies[0])
	}
	if extra := ts.tryRecv(1, 300*time.Millisecond); len(extra) != 0 {
		t.Fatalf("duplicate submits produced extra replies: %+v", extra)
	}
	st := g.Stats()
	if st.DupAbsorbed != 2 {
		t.Fatalf("stats: %+v, want DupAbsorbed=2", st)
	}
	if st.Accepted != 1 || st.Completed != 1 {
		t.Fatalf("stats: %+v, want exactly one accepted+completed", st)
	}
	// One transaction executed, on every replica.
	settleHeight(t, c)
	for i := 0; i < 4; i++ {
		if got := c.Replica(i).Stats().TxnsExecuted; got != 1 {
			t.Fatalf("replica %d executed %d transactions, want 1", i, got)
		}
	}
}

func TestGatewayBusyPushback(t *testing.T) {
	const decay = 400 * time.Millisecond
	c := newTestCluster(t)
	g := newTestGateway(t, c, func(cfg *Config) {
		cfg.BusyThreshold = 200
		cfg.BusyDecay = decay
	})
	ts := dialSession(t, g)

	drops := func() uint64 {
		var total uint64
		for i := 0; i < 4; i++ {
			total += c.Replica(i).Stats().NetDrops
		}
		return total
	}
	dropsBefore := drops()

	// Saturate the admission gauge as a completed consensus response
	// would, then flood: every submit must come back as explicit
	// StatusBusy pushback, nothing may reach the replicas, and nothing
	// may be silently dropped.
	g.noteBusy(255)
	const flood = 100
	subs := make([]Submit, 0, flood)
	for i := 0; i < flood; i++ {
		subs = append(subs, Submit{Session: uint64(i), Nonce: 1, Ops: writeOp(uint64(i), "v")})
	}
	ts.send(subs...)
	replies := ts.recv(flood, 5*time.Second)
	for _, r := range replies {
		if r.Status != StatusBusy {
			t.Fatalf("session %d: status %v, want busy", r.Session, r.Status)
		}
		if r.Busy < 200 {
			t.Fatalf("busy reply carries gauge %d, want ≥ threshold", r.Busy)
		}
	}
	st := g.Stats()
	if st.BusyRejected != flood || st.Accepted != 0 {
		t.Fatalf("stats: %+v, want %d busy-rejected, 0 accepted", st, flood)
	}
	if d := drops() - dropsBefore; d != 0 {
		t.Fatalf("overload leaked into %d silent transport drops", d)
	}

	// Pushback is not a wedge: a saturated gauge can only be refreshed by
	// a completed upstream request, and a saturated admission gate sends
	// none — so after BusyDecay with no fresh responses the gateway must
	// expire the stale reading on its own and admit again. No manual
	// reset: this is the recovery path itself.
	time.Sleep(decay + 100*time.Millisecond)
	ts.send(Submit{Session: 0, Nonce: 1, Ops: writeOp(0, "v")})
	if r := ts.recv(1, 5*time.Second)[0]; r.Status != StatusOK {
		t.Fatalf("post-decay reply: %+v", r)
	}
}

func TestGatewayDedupSurvivesReconnect(t *testing.T) {
	c := newTestCluster(t)
	g := newTestGateway(t, c, nil)
	ts := dialSession(t, g)

	ts.send(Submit{Session: 7, Nonce: 1, Ops: writeOp(40, "v")})
	first := ts.recv(1, 5*time.Second)[0]
	if first.Status != StatusOK {
		t.Fatalf("first reply: %+v", first)
	}
	before := settleHeight(t, c)
	txnsBefore := c.Replica(0).Stats().TxnsExecuted

	// The session's connection drops (network blip) and it reconnects on
	// a fresh pipe, retrying the same nonce. Dedup state lives in the
	// gateway, not the connection: the retry must replay the cached reply
	// — same consensus seq — and must not re-execute.
	ts.c.Close()
	ts2 := dialSession(t, g)
	ts2.send(Submit{Session: 7, Nonce: 1, Ops: writeOp(40, "v")})
	second := ts2.recv(1, 5*time.Second)[0]
	if second.Status != StatusOK || second.Seq != first.Seq || second.Nonce != 1 {
		t.Fatalf("retry after reconnect: %+v, want replay of %+v", second, first)
	}
	if after := settleHeight(t, c); after != before {
		t.Fatalf("reconnect retry moved the ledger %d → %d", before, after)
	}
	if got := c.Replica(0).Stats().TxnsExecuted; got != txnsBefore {
		t.Fatalf("reconnect retry executed: %d → %d transactions", txnsBefore, got)
	}
	if st := g.Stats(); st.DupReplayed != 1 {
		t.Fatalf("stats: %+v, want DupReplayed=1", st)
	}
}

func TestGatewayNonceZeroRejected(t *testing.T) {
	c := newTestCluster(t)
	g := newTestGateway(t, c, nil)
	ts := dialSession(t, g)

	// Nonce 0 is reserved (the dedup high-water mark's "nothing
	// completed" value); a completed nonce 0 could never be recognized as
	// a duplicate, so it must be rejected before admission.
	ts.send(Submit{Session: 1, Nonce: 0, Ops: writeOp(50, "z")})
	r := ts.recv(1, 5*time.Second)[0]
	if r.Status != StatusRejected || r.Nonce != 0 {
		t.Fatalf("nonce-0 submit: %+v, want rejected", r)
	}
	if st := g.Stats(); st.Accepted != 0 || st.DupRejected != 1 {
		t.Fatalf("stats: %+v, want 0 accepted, DupRejected=1", st)
	}
}

func TestGatewaySessionIdleEviction(t *testing.T) {
	c := newTestCluster(t)
	g := newTestGateway(t, c, func(cfg *Config) {
		cfg.SessionIdle = time.Second
	})
	ts := dialSession(t, g)

	ts.send(Submit{Session: 3, Nonce: 1, Ops: writeOp(60, "v")})
	if r := ts.recv(1, 5*time.Second)[0]; r.Status != StatusOK {
		t.Fatalf("reply: %+v", r)
	}
	if st := g.Stats(); st.Sessions != 1 {
		t.Fatalf("stats: %+v, want 1 tracked session", st)
	}
	// With nothing in flight, the session's dedup state must age out.
	deadline := time.Now().Add(10 * time.Second)
	for g.Stats().Sessions != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle session never evicted: %+v", g.Stats())
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func TestGatewayDedupWindowEviction(t *testing.T) {
	c := newTestCluster(t)
	g := newTestGateway(t, c, func(cfg *Config) {
		cfg.DedupWindow = 1
	})
	ts := dialSession(t, g)

	ts.send(Submit{Session: 1, Nonce: 1, Ops: writeOp(30, "a")})
	if r := ts.recv(1, 5*time.Second)[0]; r.Status != StatusOK {
		t.Fatalf("nonce 1: %+v", r)
	}
	ts.send(Submit{Session: 1, Nonce: 2, Ops: writeOp(31, "b")})
	if r := ts.recv(1, 5*time.Second)[0]; r.Status != StatusOK {
		t.Fatalf("nonce 2: %+v", r)
	}
	before := settleHeight(t, c)

	// Nonce 1's cached reply was evicted by nonce 2's (window of one).
	// The retry is answered StatusRejected — and still never re-executed.
	ts.send(Submit{Session: 1, Nonce: 1, Ops: writeOp(30, "a")})
	r := ts.recv(1, 5*time.Second)[0]
	if r.Status != StatusRejected || r.Nonce != 1 {
		t.Fatalf("evicted retry: %+v, want rejected nonce 1", r)
	}
	if after := settleHeight(t, c); after != before {
		t.Fatalf("evicted retry moved the ledger %d → %d", before, after)
	}
	if st := g.Stats(); st.DupRejected != 1 {
		t.Fatalf("stats: %+v, want DupRejected=1", st)
	}
}

func TestGatewayLoadGenerator(t *testing.T) {
	c := newTestCluster(t)
	g := newTestGateway(t, c, nil)

	wl := workload.Default()
	wl.Records = 256
	wl.ValueSize = 16
	load, err := NewLoad(LoadConfig{
		Sessions: 50,
		Conns:    2,
		Dial: func() (net.Conn, error) {
			client, server := net.Pipe()
			g.ServeConn(server)
			return client, nil
		},
		Workload:     wl,
		Seed:         7,
		RetryTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("building load: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 1500*time.Millisecond)
	defer cancel()
	if err := load.Run(ctx); err != nil {
		t.Fatalf("load run: %v", err)
	}
	st := load.Stats()
	if st.Completed == 0 {
		t.Fatalf("load completed no transactions: %+v", st)
	}
	gs := g.Stats()
	if gs.Sessions == 0 && gs.Completed == 0 {
		t.Fatalf("gateway saw no sessions: %+v", gs)
	}
	if load.Latency().Count() == 0 {
		t.Fatalf("no latencies recorded")
	}
	if err := c.VerifyLedgers(nil); err != nil {
		t.Fatalf("ledger check: %v", err)
	}
	t.Logf("load: %d txns over 50 sessions / 2 conns (busy=%d retries=%d)", st.Completed, st.BusyReplies, st.Retries)
}

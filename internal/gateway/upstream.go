package gateway

import (
	"time"

	"resilientdb/internal/consensus"
	clientengine "resilientdb/internal/consensus/client"
	"resilientdb/internal/crypto"
	"resilientdb/internal/pool"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
)

// upstream is one replica-facing consensus worker: a closed loop with its
// own gateway client identity, signing key, transport endpoint, and
// client engine, keeping exactly one coalesced request in flight. The
// gateway's replica-facing connection count is the upstream count — a
// handful — regardless of how many hundred thousand sessions ride them.
type upstream struct {
	gw     *Gateway
	id     types.ClientID
	engine *clientengine.Engine
	auth   crypto.Authenticator
	ep     transport.Endpoint

	encBufs *pool.BytePool
	encHint int
	seq     uint64 // next FirstSeq; gateway transactions number per-upstream
}

func newUpstream(gw *Gateway, id types.ClientID) (*upstream, error) {
	eng, err := clientengine.New(id, gw.cfg.N, gw.cfg.Protocol)
	if err != nil {
		return nil, err
	}
	ep, err := gw.cfg.Endpoint(id)
	if err != nil {
		return nil, err
	}
	return &upstream{
		gw:      gw,
		id:      id,
		engine:  eng,
		auth:    gw.cfg.Directory.NodeAuth(types.ClientNode(id)),
		ep:      ep,
		encBufs: new(pool.BytePool),
		seq:     1,
	}, nil
}

// run is the worker loop: collect a batch from the admission queue, fold
// it into one signed consensus request, drive it to quorum, fan the
// outcome back per session.
func (u *upstream) run() {
	defer u.ep.Close()
	timer := time.NewTimer(u.gw.cfg.Timeout)
	defer timer.Stop()
	for {
		batch := u.collect(timer)
		if batch == nil {
			return
		}
		u.submit(batch, timer)
	}
}

// collect blocks for the first pending, then lingers up to cfg.Linger for
// more, bounded by cfg.Batch. It returns nil on shutdown.
func (u *upstream) collect(timer *time.Timer) []*pending {
	gw := u.gw
	var first *pending
	select {
	case first = <-gw.submitQ:
	case <-gw.stop:
		return nil
	}
	batch := []*pending{first}
	resetTimer(timer, gw.cfg.Linger)
	for len(batch) < gw.cfg.Batch {
		select {
		case p := <-gw.submitQ:
			batch = append(batch, p)
		case <-timer.C:
			return batch
		case <-gw.stop:
			// Shutdown mid-collect: still flush what we hold — the arenas
			// must retire and sessions deserve their replies if the request
			// can complete. submit() bails out on its own stop check.
			return batch
		}
	}
	return batch
}

// submit drives one coalesced request through consensus and fans the
// outcome back. On shutdown the batch's arenas retire without replies.
func (u *upstream) submit(batch []*pending, timer *time.Timer) {
	gw := u.gw
	txns := make([]types.Transaction, len(batch))
	for i, p := range batch {
		txns[i] = types.Transaction{
			Client:    u.id,
			ClientSeq: u.seq + uint64(i),
			Ops:       p.ops,
		}
	}
	req := types.ClientRequest{Client: u.id, FirstSeq: u.seq, Txns: txns}
	sig, err := u.auth.Sign(types.ReplicaNode(0), req.SigningBytes())
	if err != nil {
		u.abandon(batch)
		return
	}
	req.Sig = sig
	gw.requests.Add(1)
	u.dispatch(u.engine.Submit(req))
	outcome := u.await(timer)
	if outcome == nil {
		u.abandon(batch)
		return
	}
	u.seq += uint64(len(batch))
	gw.noteBusy(outcome.Busy)
	// Read results come back flattened in the request's (transaction, op)
	// order; slice each pending's span back out. The spans only align if
	// the outcome carries exactly the batch's declared read count — a
	// mismatch (an engine/replica bug; the payload is quorum-digest
	// checked) would misalign every later span, so it fails the whole
	// batch rather than delivering StatusOK replies with wrong or missing
	// reads. The batch did execute, so the failure is StatusRejected
	// through complete(): dedup advances and a retry replays the
	// rejection instead of re-executing.
	totalReads := 0
	for _, p := range batch {
		totalReads += p.reads
	}
	if len(outcome.ReadResults) != totalReads {
		gw.readMismatches.Add(1)
		for i, p := range batch {
			p.conn.complete(p, Reply{
				Session: p.session,
				Nonce:   p.nonce,
				Status:  StatusRejected,
				Seq:     outcome.ClientSeq + uint64(i),
				Busy:    outcome.Busy,
			})
		}
		return
	}
	off := 0
	for i, p := range batch {
		r := Reply{
			Session: p.session,
			Nonce:   p.nonce,
			Status:  StatusOK,
			Seq:     outcome.ClientSeq + uint64(i),
			Busy:    outcome.Busy,
		}
		if p.reads > 0 {
			r.Reads = outcome.ReadResults[off : off+p.reads]
		}
		off += p.reads
		p.conn.complete(p, r)
	}
}

// await pumps the endpoint inbox until the in-flight request completes,
// retransmitting on timeout. It returns nil only on shutdown.
func (u *upstream) await(timer *time.Timer) *clientengine.Outcome {
	gw := u.gw
	inbox := u.ep.Inbox(0)
	resetTimer(timer, gw.cfg.Timeout)
	for {
		select {
		case <-gw.stop:
			return nil
		case env, ok := <-inbox:
			if !ok {
				return nil
			}
			if err := u.auth.Verify(env.From, env.Body, env.Auth); err != nil {
				env.Release()
				continue
			}
			from := env.From
			msg, err := types.DecodeBody(env.Type, env.Body)
			env.Release() // decode copied every field; the envelope retires here
			if err != nil {
				continue
			}
			outcome, acts := u.engine.OnMessage(from, msg)
			u.dispatch(acts)
			if outcome != nil {
				return outcome
			}
		case <-timer.C:
			gw.retransmits.Add(1)
			u.dispatch(u.engine.OnTimeout())
			resetTimer(timer, gw.cfg.Timeout)
		}
	}
}

// abandon retires a batch that can no longer complete (shutdown): the
// arenas release and the sessions' pending marks clear so a reconnecting
// session could resubmit. No reply is sent — the connection is going
// away with the gateway.
func (u *upstream) abandon(batch []*pending) {
	gw := u.gw
	for _, p := range batch {
		gw.sessMu.Lock()
		if st := gw.sessions[p.session]; st != nil {
			delete(st.pending, p.nonce)
		}
		gw.sessMu.Unlock()
		p.arena.Release()
	}
}

// dispatch signs and transmits client-engine actions, mirroring the
// cluster client's pooled-encode send path.
func (u *upstream) dispatch(acts []consensus.Action) {
	self := types.ClientNode(u.id)
	for _, a := range acts {
		switch act := a.(type) {
		case consensus.Send:
			u.transmit(self, act.To, act.Msg)
		case consensus.Broadcast:
			for r := 0; r < u.gw.cfg.N; r++ {
				u.transmit(self, types.ReplicaNode(types.ReplicaID(r)), act.Msg)
			}
		}
	}
}

func (u *upstream) transmit(from, to types.NodeID, msg types.Message) {
	// The high-water-mark hint keeps marshals in the right capacity class
	// so steady-state encodes borrow instead of growing.
	body, arena := types.MarshalBodyArena(msg, u.encBufs, u.encHint)
	if len(body) > u.encHint {
		u.encHint = len(body)
	}
	sig, err := u.auth.Sign(to, body)
	if err != nil {
		arena.Release()
		return
	}
	env := types.AcquireEnvelope()
	env.From = from
	env.To = to
	env.Type = msg.Type()
	env.Body = body
	env.Auth = sig
	env.Attach(arena)
	if err := u.ep.Send(env); err != nil {
		env.Release() // the send went nowhere; retire the envelope here
	}
	arena.Release() // drop the builder's reference
}

// resetTimer arms timer for d, draining a stale fire first.
func resetTimer(timer *time.Timer, d time.Duration) {
	if !timer.Stop() {
		select {
		case <-timer.C:
		default:
		}
	}
	timer.Reset(d)
}

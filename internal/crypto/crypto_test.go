package crypto

import (
	"bytes"
	"testing"

	"resilientdb/internal/types"
)

func testDirectory(t *testing.T, cfg Config) *Directory {
	t.Helper()
	dir, err := NewDirectory(cfg, [32]byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Fatal("zero config validated")
	}
	if _, err := NewDirectory(Config{ReplicaScheme: CMAC, ClientScheme: CMAC}, [32]byte{}); err == nil {
		t.Fatal("CMAC client scheme accepted; forwarded requests would be unverifiable")
	}
	for _, cfg := range []Config{NoSig(), AllED25519(), Recommended()} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("preset %+v failed validation: %v", cfg, err)
		}
	}
}

func TestSchemeRoundTrips(t *testing.T) {
	msg := []byte("the order of transactions is the heart of consensus")
	r0, r1 := types.ReplicaNode(0), types.ReplicaNode(1)

	tests := []struct {
		name   string
		cfg    Config
		perDst bool
	}{
		{"none", NoSig(), false},
		{"ed25519", AllED25519(), false},
		{"rsa", Config{ReplicaScheme: RSA, ClientScheme: RSA, RSABits: 1024}, false},
		{"cmac", Recommended(), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			dir := testDirectory(t, tt.cfg)
			a0 := dir.NodeAuth(r0)
			a1 := dir.NodeAuth(r1)
			if got := a0.PerDestination(); got != tt.perDst {
				t.Fatalf("PerDestination = %v, want %v", got, tt.perDst)
			}
			auth, err := a0.Sign(r1, msg)
			if err != nil {
				t.Fatal(err)
			}
			if err := a1.Verify(r0, msg, auth); err != nil {
				t.Fatalf("valid auth rejected: %v", err)
			}
			if tt.cfg.ReplicaScheme == None {
				return
			}
			// Tampered message must fail.
			bad := append([]byte(nil), msg...)
			bad[0] ^= 1
			if err := a1.Verify(r0, bad, auth); err == nil {
				t.Fatal("tampered message accepted")
			}
			// Wrong claimed sender must fail.
			if err := a1.Verify(types.ReplicaNode(2), msg, auth); err == nil {
				t.Fatal("wrong sender accepted")
			}
		})
	}
}

func TestCombinedSchemeRouting(t *testing.T) {
	dir := testDirectory(t, Recommended())
	client := types.ClientNode(7)
	replica := types.ReplicaNode(0)

	ca := dir.NodeAuth(client)
	ra := dir.NodeAuth(replica)

	if ca.Kind() != ED25519 {
		t.Fatalf("client signs with %v, want ed25519", ca.Kind())
	}
	if ra.Kind() != CMAC {
		t.Fatalf("replica signs with %v, want cmac", ra.Kind())
	}
	if ca.PerDestination() {
		t.Fatal("client DS should not be per-destination")
	}
	if !ra.PerDestination() {
		t.Fatal("replica CMAC should be per-destination")
	}

	// Client request: signed once, verifiable by every replica (forwarding).
	msg := []byte("client request body")
	sig, err := ca.Sign(replica, msg)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		ar := dir.NodeAuth(types.ReplicaNode(types.ReplicaID(r)))
		if err := ar.Verify(client, msg, sig); err != nil {
			t.Fatalf("replica %d cannot verify forwarded client sig: %v", r, err)
		}
	}

	// Replica response to client: pairwise MAC, only that client verifies.
	resp := []byte("response body")
	mac, err := ra.Sign(client, resp)
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.Verify(replica, resp, mac); err != nil {
		t.Fatalf("client cannot verify replica MAC: %v", err)
	}
	other := dir.NodeAuth(types.ClientNode(8))
	if err := other.Verify(replica, resp, mac); err == nil {
		t.Fatal("pairwise MAC verified by a third party")
	}
}

func TestDirectoryDeterminism(t *testing.T) {
	d1 := testDirectory(t, AllED25519())
	d2 := testDirectory(t, AllED25519())
	msg := []byte("determinism")
	s1, err := d1.NodeAuth(types.ReplicaNode(3)).Sign(types.ReplicaNode(0), msg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := d2.NodeAuth(types.ReplicaNode(3)).Sign(types.ReplicaNode(0), msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatal("same seed produced different keys")
	}
	d3, err := NewDirectory(AllED25519(), [32]byte{9})
	if err != nil {
		t.Fatal(err)
	}
	s3, err := d3.NodeAuth(types.ReplicaNode(3)).Sign(types.ReplicaNode(0), msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(s1, s3) {
		t.Fatal("different seeds produced identical signatures")
	}
}

func TestHashChain(t *testing.T) {
	h0 := types.Digest{}
	d1 := Hash256([]byte("batch-1"))
	d2 := Hash256([]byte("batch-2"))
	h1 := HashChain(h0, d1)
	h2 := HashChain(h1, d2)
	if h1 == h0 || h2 == h1 {
		t.Fatal("hash chain did not advance")
	}
	// Order sensitivity: swapping the batches changes the head.
	alt := HashChain(HashChain(h0, d2), d1)
	if alt == h2 {
		t.Fatal("hash chain insensitive to order")
	}
	// Determinism.
	if HashChain(h0, d1) != h1 {
		t.Fatal("hash chain not deterministic")
	}
}

func TestDRBGStreamStable(t *testing.T) {
	a := newDRBG([32]byte{5})
	b := newDRBG([32]byte{5})
	ba := make([]byte, 100)
	bb := make([]byte, 100)
	if _, err := a.Read(ba); err != nil {
		t.Fatal(err)
	}
	// Read in odd-sized chunks to exercise buffering.
	for off := 0; off < 100; {
		n := 7
		if off+n > 100 {
			n = 100 - off
		}
		if _, err := b.Read(bb[off : off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	if !bytes.Equal(ba, bb) {
		t.Fatal("DRBG stream depends on read chunking")
	}
}

// ---- Calibration microbenchmarks ----
//
// These measure the real primitives on the host. Their outputs are the
// basis for the simulator's cost model defaults (internal/sim/costmodel.go)
// and are recorded in EXPERIMENTS.md under "Calibration".

var benchMsg = bytes.Repeat([]byte{0x42}, 256)

func benchDir(b *testing.B, cfg Config) *Directory {
	b.Helper()
	dir, err := NewDirectory(cfg, [32]byte{1})
	if err != nil {
		b.Fatal(err)
	}
	return dir
}

func BenchmarkCryptoED25519Sign(b *testing.B) {
	dir := benchDir(b, AllED25519())
	a := dir.NodeAuth(types.ReplicaNode(0))
	b.SetBytes(int64(len(benchMsg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Sign(types.ReplicaNode(1), benchMsg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCryptoED25519Verify(b *testing.B) {
	dir := benchDir(b, AllED25519())
	a0 := dir.NodeAuth(types.ReplicaNode(0))
	a1 := dir.NodeAuth(types.ReplicaNode(1))
	sig, err := a0.Sign(types.ReplicaNode(1), benchMsg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a1.Verify(types.ReplicaNode(0), benchMsg, sig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCryptoRSA2048Sign(b *testing.B) {
	dir := benchDir(b, AllRSA())
	a := dir.NodeAuth(types.ReplicaNode(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Sign(types.ReplicaNode(1), benchMsg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCryptoRSA2048Verify(b *testing.B) {
	dir := benchDir(b, AllRSA())
	a0 := dir.NodeAuth(types.ReplicaNode(0))
	a1 := dir.NodeAuth(types.ReplicaNode(1))
	sig, err := a0.Sign(types.ReplicaNode(1), benchMsg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a1.Verify(types.ReplicaNode(0), benchMsg, sig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCryptoCMACSign(b *testing.B) {
	dir := benchDir(b, Recommended())
	a := dir.NodeAuth(types.ReplicaNode(0))
	b.SetBytes(int64(len(benchMsg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Sign(types.ReplicaNode(1), benchMsg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCryptoCMACVerify(b *testing.B) {
	dir := benchDir(b, Recommended())
	a0 := dir.NodeAuth(types.ReplicaNode(0))
	a1 := dir.NodeAuth(types.ReplicaNode(1))
	mac, err := a0.Sign(types.ReplicaNode(1), benchMsg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a1.Verify(types.ReplicaNode(0), benchMsg, mac); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCryptoSHA256PerKB(b *testing.B) {
	buf := bytes.Repeat([]byte{0x37}, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Hash256(buf)
	}
}

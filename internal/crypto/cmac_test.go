package crypto

import (
	"bytes"
	"encoding/hex"
	"testing"
)

// RFC 4493 Appendix A test vectors for AES-128-CMAC.
var rfc4493Key = mustHex("2b7e151628aed2a6abf7158809cf4f3c")

var rfc4493Msg = mustHex(
	"6bc1bee22e409f96e93d7e117393172a" +
		"ae2d8a571e03ac9c9eb76fac45af8e51" +
		"30c81c46a35ce411e5fbc1191a0a52ef" +
		"f69f2445df4f9b17ad2b417be66c3710")

func mustHex(s string) []byte {
	b, err := hex.DecodeString(s)
	if err != nil {
		panic(err)
	}
	return b
}

func rfcState(t *testing.T) *cmacState {
	t.Helper()
	var key CMACKey
	copy(key[:], rfc4493Key)
	s, err := newCMAC(key)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCMACSubkeysRFC4493(t *testing.T) {
	s := rfcState(t)
	wantK1 := mustHex("fbeed618357133667c85e08f7236a8de")
	wantK2 := mustHex("f7ddac306ae266ccf90bc11ee46d513b")
	if !bytes.Equal(s.k1[:], wantK1) {
		t.Fatalf("K1 = %x, want %x", s.k1, wantK1)
	}
	if !bytes.Equal(s.k2[:], wantK2) {
		t.Fatalf("K2 = %x, want %x", s.k2, wantK2)
	}
}

func TestCMACVectorsRFC4493(t *testing.T) {
	s := rfcState(t)
	tests := []struct {
		name string
		msg  []byte
		want string
	}{
		{"len0", nil, "bb1d6929e95937287fa37d129b756746"},
		{"len16", rfc4493Msg[:16], "070a16b46b4d4144f79bdd9dd04a287c"},
		{"len40", rfc4493Msg[:40], "dfa66747de9ae63030ca32611497c827"},
		{"len64", rfc4493Msg[:64], "51f0bebf7e3b9d92fc49741779363cfe"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := s.Sum(tt.msg)
			if hex.EncodeToString(got[:]) != tt.want {
				t.Fatalf("CMAC = %x, want %s", got, tt.want)
			}
			if !s.Verify(tt.msg, got[:]) {
				t.Fatal("Verify rejected a valid tag")
			}
		})
	}
}

func TestCMACVerifyRejects(t *testing.T) {
	s := rfcState(t)
	tag := s.Sum(rfc4493Msg)
	bad := append([]byte(nil), tag[:]...)
	bad[0] ^= 1
	if s.Verify(rfc4493Msg, bad) {
		t.Fatal("Verify accepted a corrupted tag")
	}
	if s.Verify(rfc4493Msg, tag[:8]) {
		t.Fatal("Verify accepted a truncated tag")
	}
	if s.Verify(rfc4493Msg[:16], tag[:]) {
		t.Fatal("Verify accepted a tag for different message")
	}
}

func TestCMACPaddingBoundaries(t *testing.T) {
	// Lengths around block boundaries exercise both the K1 (complete final
	// block) and K2 (padded final block) paths.
	s := rfcState(t)
	seen := make(map[string]bool)
	for _, n := range []int{0, 1, 15, 16, 17, 31, 32, 33, 48, 63, 64, 65} {
		msg := bytes.Repeat([]byte{0x5A}, n)
		tag := s.Sum(msg)
		k := hex.EncodeToString(tag[:])
		if seen[k] {
			t.Fatalf("duplicate tag for length %d", n)
		}
		seen[k] = true
		if !s.Verify(msg, tag[:]) {
			t.Fatalf("Verify failed at length %d", n)
		}
	}
}

package crypto

import (
	"sync"
	"sync/atomic"

	"resilientdb/internal/types"
)

// VerifyPool fans authenticator verification out across a fixed set of
// worker goroutines. Signature verification is one of the two dominant
// costs on a replica's receive path (paper Section 3, "Expensive
// Cryptographic Practices"); verifying on the single worker-thread
// serializes it behind consensus processing, while a pool verifies many
// messages concurrently and hands downstream stages only authenticated
// traffic.
//
// Each Submit returns a one-shot result channel, so a caller that must
// preserve message order (consensus engines expect per-connection FIFO)
// can submit a window of messages, then await the results in submission
// order while the verifications themselves run in parallel.
//
// When the authenticator implements BatchVerifier and the pool is built
// with a batch window > 1, each worker drains up to that many pending
// submissions per wakeup and verifies them as one batch: a single
// dispatch and a single batched check amortizes the per-signature channel
// and scheduling cost under load, while an idle pool still verifies each
// message the moment it arrives. A rejected batch falls back to
// per-signature verification so the failure is attributed to exactly the
// message that caused it.
type VerifyPool struct {
	auth      Authenticator
	batcher   BatchVerifier // nil disables batched verification
	batchMax  int
	jobs      chan verifyJob
	wg        sync.WaitGroup
	closeOnce sync.Once

	donePool sync.Pool // chan error, cap 1
	pendPool sync.Pool // *Pending
	batched  atomic.Uint64
}

// BatchVerifier is the optional batched form of Authenticator.Verify.
// VerifyBatch checks len(srcs) (src, msg, auth) triples and returns nil
// only when every one verifies; any non-nil error rejects the whole
// batch, and the caller re-verifies per signature to attribute it.
// Implementations must accept mixed sources (the pool does not sort
// client and replica traffic apart).
type BatchVerifier interface {
	VerifyBatch(srcs []types.NodeID, msgs, auths [][]byte) error
}

type verifyJob struct {
	src  types.NodeID
	msg  []byte
	auth []byte
	done chan error
}

// DefaultVerifyBatch is the batch window NewVerifyPoolBatch applies when
// the caller passes 0.
const DefaultVerifyBatch = 16

// NewVerifyPool starts a pool of workers verifying with auth, one
// signature at a time. queue bounds the number of submitted-but-unclaimed
// jobs; Submit blocks (backpressure) when it fills.
func NewVerifyPool(auth Authenticator, workers, queue int) *VerifyPool {
	return NewVerifyPoolBatch(auth, workers, queue, 1)
}

// NewVerifyPoolBatch is NewVerifyPool with a batch window: each worker
// claims up to batchMax pending submissions per wakeup and verifies them
// with one BatchVerifier call when auth supports it. batchMax 0 means
// DefaultVerifyBatch; 1 disables batching.
func NewVerifyPoolBatch(auth Authenticator, workers, queue, batchMax int) *VerifyPool {
	if workers < 1 {
		workers = 1
	}
	if queue < workers {
		queue = workers * 16
	}
	if batchMax == 0 {
		batchMax = DefaultVerifyBatch
	}
	if batchMax < 1 {
		batchMax = 1
	}
	p := &VerifyPool{auth: auth, batchMax: batchMax, jobs: make(chan verifyJob, queue)}
	if b, ok := auth.(BatchVerifier); ok && batchMax > 1 {
		p.batcher = b
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *VerifyPool) worker() {
	defer p.wg.Done()
	if p.batcher == nil {
		for j := range p.jobs {
			j.done <- p.auth.Verify(j.src, j.msg, j.auth)
		}
		return
	}
	batch := make([]verifyJob, 0, p.batchMax)
	srcs := make([]types.NodeID, 0, p.batchMax)
	msgs := make([][]byte, 0, p.batchMax)
	auths := make([][]byte, 0, p.batchMax)
	for j := range p.jobs {
		batch = append(batch[:0], j)
	drain:
		// Claim whatever else is already queued, up to the window, without
		// blocking — latency of the first message never waits on a fill.
		for len(batch) < p.batchMax {
			select {
			case j2, ok := <-p.jobs:
				if !ok {
					break drain
				}
				batch = append(batch, j2)
			default:
				break drain
			}
		}
		if len(batch) == 1 {
			batch[0].done <- p.auth.Verify(batch[0].src, batch[0].msg, batch[0].auth)
			continue
		}
		srcs, msgs, auths = srcs[:0], msgs[:0], auths[:0]
		for _, b := range batch {
			srcs = append(srcs, b.src)
			msgs = append(msgs, b.msg)
			auths = append(auths, b.auth)
		}
		if err := p.batcher.VerifyBatch(srcs, msgs, auths); err == nil {
			p.batched.Add(uint64(len(batch)))
			for _, b := range batch {
				b.done <- nil
			}
		} else {
			// The batch carries at least one bad signature; attribute it.
			for _, b := range batch {
				b.done <- p.auth.Verify(b.src, b.msg, b.auth)
			}
		}
	}
}

// Submit enqueues one verification and returns the channel its result
// will be delivered on (nil error means the authenticator verified). The
// channel is buffered: workers never block on delivery, and the caller
// may await it whenever convenient. Submit must not be called after
// Close. Hot paths that await every result should prefer SubmitPooled,
// which recycles the result channel.
func (p *VerifyPool) Submit(src types.NodeID, msg, auth []byte) <-chan error {
	done := make(chan error, 1)
	p.jobs <- verifyJob{src: src, msg: msg, auth: auth, done: done}
	return done
}

// Pending is one in-flight verification submitted with SubmitPooled.
// Await must be called exactly once; it returns the result and recycles
// both the Pending and its channel back into the pool.
type Pending struct {
	p  *VerifyPool
	ch chan error
}

// Await blocks for the verification result (nil means verified) and
// recycles the Pending. The Pending must not be touched afterwards.
func (pd *Pending) Await() error {
	err := <-pd.ch
	p := pd.p
	ch := pd.ch
	pd.p, pd.ch = nil, nil
	p.donePool.Put(ch)
	p.pendPool.Put(pd)
	return err
}

// SubmitPooled enqueues one verification like Submit but hands back a
// pooled Pending instead of a fresh channel, making the submit/await
// round allocation-free in steady state. Must not be called after Close.
func (p *VerifyPool) SubmitPooled(src types.NodeID, msg, auth []byte) *Pending {
	pd, _ := p.pendPool.Get().(*Pending)
	if pd == nil {
		pd = &Pending{}
	}
	ch, _ := p.donePool.Get().(chan error)
	if ch == nil {
		ch = make(chan error, 1)
	}
	pd.p, pd.ch = p, ch
	p.jobs <- verifyJob{src: src, msg: msg, auth: auth, done: ch}
	return pd
}

// BatchedVerifies returns how many signatures were accepted via batched
// verification (per-signature fallbacks and singleton wakeups excluded).
func (p *VerifyPool) BatchedVerifies() uint64 { return p.batched.Load() }

// Close drains outstanding jobs and stops the workers. Results already
// promised by Submit are still delivered.
func (p *VerifyPool) Close() {
	p.closeOnce.Do(func() {
		close(p.jobs)
		p.wg.Wait()
	})
}

package crypto

import (
	"sync"

	"resilientdb/internal/types"
)

// VerifyPool fans authenticator verification out across a fixed set of
// worker goroutines. Signature verification is one of the two dominant
// costs on a replica's receive path (paper Section 3, "Expensive
// Cryptographic Practices"); verifying on the single worker-thread
// serializes it behind consensus processing, while a pool verifies many
// messages concurrently and hands downstream stages only authenticated
// traffic.
//
// Each Submit returns a one-shot result channel, so a caller that must
// preserve message order (consensus engines expect per-connection FIFO)
// can submit a window of messages, then await the results in submission
// order while the verifications themselves run in parallel.
type VerifyPool struct {
	auth      Authenticator
	jobs      chan verifyJob
	wg        sync.WaitGroup
	closeOnce sync.Once
}

type verifyJob struct {
	src  types.NodeID
	msg  []byte
	auth []byte
	done chan error
}

// NewVerifyPool starts a pool of workers verifying with auth. queue bounds
// the number of submitted-but-unclaimed jobs; Submit blocks (backpressure)
// when it fills.
func NewVerifyPool(auth Authenticator, workers, queue int) *VerifyPool {
	if workers < 1 {
		workers = 1
	}
	if queue < workers {
		queue = workers * 16
	}
	p := &VerifyPool{auth: auth, jobs: make(chan verifyJob, queue)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *VerifyPool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		j.done <- p.auth.Verify(j.src, j.msg, j.auth)
	}
}

// Submit enqueues one verification and returns the channel its result
// will be delivered on (nil error means the authenticator verified). The
// channel is buffered: workers never block on delivery, and the caller
// may await it whenever convenient. Submit must not be called after
// Close.
func (p *VerifyPool) Submit(src types.NodeID, msg, auth []byte) <-chan error {
	done := make(chan error, 1)
	p.jobs <- verifyJob{src: src, msg: msg, auth: auth, done: done}
	return done
}

// Close drains outstanding jobs and stops the workers. Results already
// promised by Submit are still delivered.
func (p *VerifyPool) Close() {
	p.closeOnce.Do(func() {
		close(p.jobs)
		p.wg.Wait()
	})
}

// Package crypto is the secure layer of the fabric (paper Figure 5): the
// signing toolkit and the hashing toolkit.
//
// It implements the four signature configurations evaluated in Section 5.6:
//
//   - no signatures at all (unsafe; measurement baseline only),
//   - digital signatures everywhere using ED25519,
//   - digital signatures everywhere using RSA,
//   - the recommended combination: replicas authenticate each other with
//     AES-CMAC message authentication codes while clients sign requests
//     with ED25519 digital signatures (Section 6, "Cryptographic
//     Signatures": MACs suffice between replicas because no replica
//     forwards another replica's messages, so non-repudiation is implicit).
//
// Authenticators are addressed per destination because MACs are pairwise:
// a broadcast under CMAC produces one authenticator per receiver (a MAC
// vector), whereas a digital signature is computed once and reused.
package crypto

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"resilientdb/internal/types"
)

// Kind selects a signing scheme. Values start at one so the zero value is
// invalid and must be set explicitly.
type Kind int

// Supported signing schemes.
const (
	None Kind = iota + 1
	ED25519
	RSA
	CMAC
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case ED25519:
		return "ed25519"
	case RSA:
		return "rsa"
	case CMAC:
		return "cmac-aes"
	default:
		return "invalid"
	}
}

// ErrBadSignature is returned when an authenticator fails verification.
var ErrBadSignature = errors.New("crypto: signature verification failed")

// ErrUnknownPeer is returned when no key material exists for a peer.
var ErrUnknownPeer = errors.New("crypto: unknown peer")

// Authenticator signs outgoing message bodies and verifies incoming ones
// on behalf of one node.
type Authenticator interface {
	// Sign produces the authenticator for msg addressed to dst.
	Sign(dst types.NodeID, msg []byte) ([]byte, error)
	// Verify checks an authenticator allegedly produced by src over msg.
	Verify(src types.NodeID, msg, auth []byte) error
	// PerDestination reports whether Sign output depends on dst. When
	// false, a broadcast may compute one authenticator and reuse it for
	// every receiver; when true (MAC schemes) each receiver needs its own.
	PerDestination() bool
	// Kind identifies the scheme.
	Kind() Kind
}

// Config selects the scheme for each communication class, mirroring the
// four experimental configurations of Section 5.6.
type Config struct {
	// ReplicaScheme authenticates replica-to-replica and replica-to-client
	// traffic.
	ReplicaScheme Kind
	// ClientScheme authenticates client requests. It must be a digital
	// signature scheme (or None) because pre-prepares forward client
	// requests to backups, which must be able to verify them.
	ClientScheme Kind
	// RSABits sets the RSA modulus size; 0 means 2048.
	RSABits int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch c.ReplicaScheme {
	case None, ED25519, RSA, CMAC:
	default:
		return fmt.Errorf("crypto: invalid replica scheme %d", c.ReplicaScheme)
	}
	switch c.ClientScheme {
	case None, ED25519, RSA, CMAC:
	default:
		return fmt.Errorf("crypto: invalid client scheme %d", c.ClientScheme)
	}
	return nil
}

// NoSig returns the configuration with signatures disabled everywhere.
func NoSig() Config { return Config{ReplicaScheme: None, ClientScheme: None} }

// AllED25519 returns the all-digital-signature ED25519 configuration.
func AllED25519() Config { return Config{ReplicaScheme: ED25519, ClientScheme: ED25519} }

// AllRSA returns the all-digital-signature RSA configuration.
func AllRSA() Config { return Config{ReplicaScheme: RSA, ClientScheme: RSA} }

// Recommended returns the paper's recommended configuration: CMAC between
// replicas, ED25519 client signatures.
func Recommended() Config { return Config{ReplicaScheme: CMAC, ClientScheme: ED25519} }

// Hash256 returns the SHA-256 digest of b. It is the hashing toolkit's
// standard digest (Section 3 mandates SHA256/SHA3-class functions).
func Hash256(b []byte) types.Digest { return sha256.Sum256(b) }

// HashChain extends a Zyzzyva-style history hash: h' = H(h || d).
func HashChain(h, d types.Digest) types.Digest {
	var buf [64]byte
	copy(buf[:32], h[:])
	copy(buf[32:], d[:])
	return sha256.Sum256(buf[:])
}

// noopAuth implements the None scheme.
type noopAuth struct{}

var _ Authenticator = noopAuth{}

// Sign implements Authenticator; it returns no authenticator bytes.
func (noopAuth) Sign(types.NodeID, []byte) ([]byte, error) { return nil, nil }

// Verify implements Authenticator; it accepts everything.
func (noopAuth) Verify(types.NodeID, []byte, []byte) error { return nil }

// VerifyBatch implements BatchVerifier; it accepts everything.
func (noopAuth) VerifyBatch([]types.NodeID, [][]byte, [][]byte) error { return nil }

// PerDestination implements Authenticator.
func (noopAuth) PerDestination() bool { return false }

// Kind implements Authenticator.
func (noopAuth) Kind() Kind { return None }

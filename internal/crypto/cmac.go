package crypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
	"fmt"
)

// cmacSize is the AES-CMAC tag length in bytes (full-width tags).
const cmacSize = 16

// CMACKey is a 128-bit AES key used for pairwise message authentication.
type CMACKey [16]byte

// cmacState holds the expanded AES block cipher and the two RFC 4493
// subkeys for one pairwise key. It is immutable after creation and safe
// for concurrent use.
type cmacState struct {
	block  cipher.Block
	k1, k2 [cmacSize]byte
}

// newCMAC expands key into a reusable CMAC state per RFC 4493 §2.3.
func newCMAC(key CMACKey) (*cmacState, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("crypto: expanding CMAC key: %w", err)
	}
	s := &cmacState{block: block}
	var l [cmacSize]byte
	block.Encrypt(l[:], l[:])
	dbl(&s.k1, &l)
	dbl(&s.k2, &s.k1)
	return s, nil
}

// dbl computes dst = in·x in GF(2^128) with the CMAC reduction polynomial:
// a left shift by one bit, XORing 0x87 into the last byte if the top bit
// was set (RFC 4493 §2.3).
func dbl(dst, in *[cmacSize]byte) {
	var carry byte
	for i := cmacSize - 1; i >= 0; i-- {
		b := in[i]
		dst[i] = b<<1 | carry
		carry = b >> 7
	}
	if carry != 0 {
		dst[cmacSize-1] ^= 0x87
	}
}

// Sum computes the AES-CMAC tag of msg (RFC 4493 §2.4).
func (s *cmacState) Sum(msg []byte) [cmacSize]byte {
	n := len(msg)
	var last [cmacSize]byte
	full := n / cmacSize
	rem := n % cmacSize
	complete := full
	if rem == 0 && n > 0 {
		complete = full - 1
		copy(last[:], msg[complete*cmacSize:])
		for i := 0; i < cmacSize; i++ {
			last[i] ^= s.k1[i]
		}
	} else {
		copy(last[:], msg[complete*cmacSize:])
		last[rem] ^= 0x80 // 10^i padding
		for i := 0; i < cmacSize; i++ {
			last[i] ^= s.k2[i]
		}
	}

	var x [cmacSize]byte
	var y [cmacSize]byte
	for b := 0; b < complete; b++ {
		off := b * cmacSize
		for i := 0; i < cmacSize; i++ {
			y[i] = x[i] ^ msg[off+i]
		}
		s.block.Encrypt(x[:], y[:])
	}
	for i := 0; i < cmacSize; i++ {
		y[i] = x[i] ^ last[i]
	}
	s.block.Encrypt(x[:], y[:])
	return x
}

// Verify reports whether tag is the CMAC of msg, in constant time.
func (s *cmacState) Verify(msg, tag []byte) bool {
	if len(tag) != cmacSize {
		return false
	}
	want := s.Sum(msg)
	return subtle.ConstantTimeCompare(want[:], tag) == 1
}

package crypto

import (
	"testing"

	"resilientdb/internal/types"
)

// benchVerifyPool measures the submit/await round for a window of
// signatures at the given batch limit; batchMax 1 is the per-signature
// baseline the batched drain is compared against.
func benchVerifyPool(b *testing.B, batchMax int) {
	dir, err := NewDirectory(AllED25519(), [32]byte{5})
	if err != nil {
		b.Fatal(err)
	}
	signer := dir.NodeAuth(types.ReplicaNode(1))
	verifier := dir.NodeAuth(types.ReplicaNode(0))
	msg := []byte("benchmark verification message")
	sig, err := signer.Sign(types.ReplicaNode(0), msg)
	if err != nil {
		b.Fatal(err)
	}
	pool := NewVerifyPoolBatch(verifier, 2, 256, batchMax)
	defer pool.Close()

	const window = 64
	pending := make([]*Pending, window)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range pending {
			pending[j] = pool.SubmitPooled(types.ReplicaNode(1), msg, sig)
		}
		for _, pd := range pending {
			if err := pd.Await(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkVerifyPoolPerSignature(b *testing.B) { benchVerifyPool(b, 1) }
func BenchmarkVerifyPoolBatched(b *testing.B)      { benchVerifyPool(b, DefaultVerifyBatch) }

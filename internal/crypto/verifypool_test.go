package crypto

import (
	"sync"
	"testing"

	"resilientdb/internal/types"
)

func poolDirectory(t *testing.T) *Directory {
	t.Helper()
	dir, err := NewDirectory(Recommended(), [32]byte{7})
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestVerifyPoolParallelVerdicts(t *testing.T) {
	dir := poolDirectory(t)
	signer := dir.NodeAuth(types.ReplicaNode(1))
	verifier := dir.NodeAuth(types.ReplicaNode(0))

	pool := NewVerifyPool(verifier, 4, 64)
	defer pool.Close()

	const n = 200
	msgs := make([][]byte, n)
	sigs := make([][]byte, n)
	for i := range msgs {
		msgs[i] = []byte{byte(i), byte(i >> 8), 0x5A}
		sig, err := signer.Sign(types.ReplicaNode(0), msgs[i])
		if err != nil {
			t.Fatal(err)
		}
		sigs[i] = sig
	}
	// Corrupt every third signature.
	for i := 0; i < n; i += 3 {
		sigs[i] = append([]byte(nil), sigs[i]...)
		sigs[i][0] ^= 0xFF
	}

	results := make([]<-chan error, n)
	for i := range msgs {
		results[i] = pool.Submit(types.ReplicaNode(1), msgs[i], sigs[i])
	}
	for i, ch := range results {
		err := <-ch
		if i%3 == 0 && err == nil {
			t.Fatalf("job %d: corrupted signature verified", i)
		}
		if i%3 != 0 && err != nil {
			t.Fatalf("job %d: valid signature rejected: %v", i, err)
		}
	}
}

func TestVerifyPoolConcurrentSubmitters(t *testing.T) {
	dir := poolDirectory(t)
	signer := dir.NodeAuth(types.ReplicaNode(1))
	verifier := dir.NodeAuth(types.ReplicaNode(0))
	msg := []byte("shared message")
	sig, err := signer.Sign(types.ReplicaNode(0), msg)
	if err != nil {
		t.Fatal(err)
	}

	pool := NewVerifyPool(verifier, 3, 8)
	defer pool.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := <-pool.Submit(types.ReplicaNode(1), msg, sig); err != nil {
					t.Errorf("verify: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestVerifyPoolCloseDeliversOutstanding(t *testing.T) {
	dir := poolDirectory(t)
	signer := dir.NodeAuth(types.ReplicaNode(1))
	verifier := dir.NodeAuth(types.ReplicaNode(0))
	msg := []byte("late result")
	sig, err := signer.Sign(types.ReplicaNode(0), msg)
	if err != nil {
		t.Fatal(err)
	}

	pool := NewVerifyPool(verifier, 1, 32)
	results := make([]<-chan error, 16)
	for i := range results {
		results[i] = pool.Submit(types.ReplicaNode(1), msg, sig)
	}
	pool.Close()
	pool.Close() // idempotent
	for i, ch := range results {
		if err := <-ch; err != nil {
			t.Fatalf("job %d lost across Close: %v", i, err)
		}
	}
}

func ed25519Directory(t *testing.T) *Directory {
	t.Helper()
	dir, err := NewDirectory(AllED25519(), [32]byte{9})
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestVerifyBatchDirect exercises the BatchVerifier implementations
// themselves: an all-valid batch passes, and a single corrupted signature
// rejects the whole batch (the pool then re-verifies per signature).
func TestVerifyBatchDirect(t *testing.T) {
	dir := ed25519Directory(t)
	signer := dir.NodeAuth(types.ReplicaNode(1))
	verifier := dir.NodeAuth(types.ReplicaNode(0))
	b, ok := verifier.(BatchVerifier)
	if !ok {
		t.Fatalf("%T does not implement BatchVerifier", verifier)
	}

	const n = 12
	srcs := make([]types.NodeID, n)
	msgs := make([][]byte, n)
	auths := make([][]byte, n)
	for i := range msgs {
		srcs[i] = types.ReplicaNode(1)
		msgs[i] = []byte{byte(i), 0xC3}
		sig, err := signer.Sign(types.ReplicaNode(0), msgs[i])
		if err != nil {
			t.Fatal(err)
		}
		auths[i] = sig
	}
	if err := b.VerifyBatch(srcs, msgs, auths); err != nil {
		t.Fatalf("all-valid batch rejected: %v", err)
	}
	auths[7] = append([]byte(nil), auths[7]...)
	auths[7][3] ^= 0x40
	if err := b.VerifyBatch(srcs, msgs, auths); err == nil {
		t.Fatal("batch with a corrupted signature accepted")
	}
}

// TestVerifyPoolBatchedVerdicts runs the batched pool over a mixed
// valid/corrupted stream: every verdict must be attributed to exactly the
// right submission even when the batch-level check rejects and the worker
// falls back to per-signature verification.
func TestVerifyPoolBatchedVerdicts(t *testing.T) {
	dir := ed25519Directory(t)
	signer := dir.NodeAuth(types.ReplicaNode(1))
	verifier := dir.NodeAuth(types.ReplicaNode(0))

	pool := NewVerifyPoolBatch(verifier, 2, 256, 0)
	defer pool.Close()

	const n = 240
	msgs := make([][]byte, n)
	sigs := make([][]byte, n)
	for i := range msgs {
		msgs[i] = []byte{byte(i), byte(i >> 8), 0x11}
		sig, err := signer.Sign(types.ReplicaNode(0), msgs[i])
		if err != nil {
			t.Fatal(err)
		}
		sigs[i] = sig
	}
	for i := 0; i < n; i += 5 {
		sigs[i] = append([]byte(nil), sigs[i]...)
		sigs[i][0] ^= 0xFF
	}
	pending := make([]*Pending, n)
	for i := range msgs {
		pending[i] = pool.SubmitPooled(types.ReplicaNode(1), msgs[i], sigs[i])
	}
	for i, pd := range pending {
		err := pd.Await()
		if i%5 == 0 && err == nil {
			t.Fatalf("job %d: corrupted signature verified", i)
		}
		if i%5 != 0 && err != nil {
			t.Fatalf("job %d: valid signature rejected: %v", i, err)
		}
	}
}

// TestVerifyPoolBatchedCounter checks that a saturated single-worker pool
// actually verifies in batches: with ed25519 verification slow relative to
// submission, the queue backs up and the worker drains multi-signature
// windows, so the counter must move.
func TestVerifyPoolBatchedCounter(t *testing.T) {
	dir := ed25519Directory(t)
	signer := dir.NodeAuth(types.ReplicaNode(1))
	verifier := dir.NodeAuth(types.ReplicaNode(0))

	pool := NewVerifyPoolBatch(verifier, 1, 512, 0)
	defer pool.Close()

	msg := []byte("batched counter message")
	sig, err := signer.Sign(types.ReplicaNode(0), msg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 256
	pending := make([]*Pending, n)
	for i := range pending {
		pending[i] = pool.SubmitPooled(types.ReplicaNode(1), msg, sig)
	}
	for _, pd := range pending {
		if err := pd.Await(); err != nil {
			t.Fatal(err)
		}
	}
	if pool.BatchedVerifies() == 0 {
		t.Fatal("saturated pool never verified a batch")
	}
}

// TestSubmitPooledConcurrent hammers the pooled submit/await round from
// many goroutines; run with -race it checks the Pending/done-channel
// recycling for ownership bugs.
func TestSubmitPooledConcurrent(t *testing.T) {
	dir := poolDirectory(t)
	signer := dir.NodeAuth(types.ReplicaNode(1))
	verifier := dir.NodeAuth(types.ReplicaNode(0))
	msg := []byte("pooled concurrent")
	sig, err := signer.Sign(types.ReplicaNode(0), msg)
	if err != nil {
		t.Fatal(err)
	}

	pool := NewVerifyPoolBatch(verifier, 3, 64, 0)
	defer pool.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := pool.SubmitPooled(types.ReplicaNode(1), msg, sig).Await(); err != nil {
					t.Errorf("verify: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

package crypto

import (
	"sync"
	"testing"

	"resilientdb/internal/types"
)

func poolDirectory(t *testing.T) *Directory {
	t.Helper()
	dir, err := NewDirectory(Recommended(), [32]byte{7})
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestVerifyPoolParallelVerdicts(t *testing.T) {
	dir := poolDirectory(t)
	signer := dir.NodeAuth(types.ReplicaNode(1))
	verifier := dir.NodeAuth(types.ReplicaNode(0))

	pool := NewVerifyPool(verifier, 4, 64)
	defer pool.Close()

	const n = 200
	msgs := make([][]byte, n)
	sigs := make([][]byte, n)
	for i := range msgs {
		msgs[i] = []byte{byte(i), byte(i >> 8), 0x5A}
		sig, err := signer.Sign(types.ReplicaNode(0), msgs[i])
		if err != nil {
			t.Fatal(err)
		}
		sigs[i] = sig
	}
	// Corrupt every third signature.
	for i := 0; i < n; i += 3 {
		sigs[i] = append([]byte(nil), sigs[i]...)
		sigs[i][0] ^= 0xFF
	}

	results := make([]<-chan error, n)
	for i := range msgs {
		results[i] = pool.Submit(types.ReplicaNode(1), msgs[i], sigs[i])
	}
	for i, ch := range results {
		err := <-ch
		if i%3 == 0 && err == nil {
			t.Fatalf("job %d: corrupted signature verified", i)
		}
		if i%3 != 0 && err != nil {
			t.Fatalf("job %d: valid signature rejected: %v", i, err)
		}
	}
}

func TestVerifyPoolConcurrentSubmitters(t *testing.T) {
	dir := poolDirectory(t)
	signer := dir.NodeAuth(types.ReplicaNode(1))
	verifier := dir.NodeAuth(types.ReplicaNode(0))
	msg := []byte("shared message")
	sig, err := signer.Sign(types.ReplicaNode(0), msg)
	if err != nil {
		t.Fatal(err)
	}

	pool := NewVerifyPool(verifier, 3, 8)
	defer pool.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := <-pool.Submit(types.ReplicaNode(1), msg, sig); err != nil {
					t.Errorf("verify: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestVerifyPoolCloseDeliversOutstanding(t *testing.T) {
	dir := poolDirectory(t)
	signer := dir.NodeAuth(types.ReplicaNode(1))
	verifier := dir.NodeAuth(types.ReplicaNode(0))
	msg := []byte("late result")
	sig, err := signer.Sign(types.ReplicaNode(0), msg)
	if err != nil {
		t.Fatal(err)
	}

	pool := NewVerifyPool(verifier, 1, 32)
	results := make([]<-chan error, 16)
	for i := range results {
		results[i] = pool.Submit(types.ReplicaNode(1), msg, sig)
	}
	pool.Close()
	pool.Close() // idempotent
	for i, ch := range results {
		if err := <-ch; err != nil {
			t.Fatalf("job %d lost across Close: %v", i, err)
		}
	}
}

package crypto

import (
	stdcrypto "crypto"
	"crypto/ed25519"
	crsa "crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"

	"resilientdb/internal/types"
)

// Directory derives and caches the key material for a whole deployment
// from a single master seed. Every node derives identical keys from the
// shared seed, which stands in for the out-of-band key provisioning a
// production permissioned deployment performs (identities are known a
// priori in a permissioned blockchain, Section 1). It is safe for
// concurrent use.
type Directory struct {
	cfg  Config
	seed [32]byte

	mu      sync.RWMutex
	edPriv  map[types.NodeID]ed25519.PrivateKey
	rsaPriv map[types.NodeID]*crsa.PrivateKey
	macs    map[pairKey]*cmacState
}

type pairKey struct{ lo, hi types.NodeID }

func orderedPair(a, b types.NodeID) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{lo: a, hi: b}
}

// NewDirectory creates a Directory for cfg rooted at seed.
func NewDirectory(cfg Config, seed [32]byte) (*Directory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.ClientScheme == CMAC {
		return nil, fmt.Errorf("crypto: client scheme must support forwarding; CMAC cannot (backups could not verify forwarded requests)")
	}
	return &Directory{
		cfg:     cfg,
		seed:    seed,
		edPriv:  make(map[types.NodeID]ed25519.PrivateKey),
		rsaPriv: make(map[types.NodeID]*crsa.PrivateKey),
		macs:    make(map[pairKey]*cmacState),
	}, nil
}

// Config returns the directory's scheme configuration.
func (d *Directory) Config() Config { return d.cfg }

// derive produces 32 labeled pseudo-random bytes from the master seed.
func (d *Directory) derive(label string, a, b uint64) [32]byte {
	h := sha256.New()
	h.Write(d.seed[:])
	h.Write([]byte(label))
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], a)
	binary.BigEndian.PutUint64(buf[8:], b)
	h.Write(buf[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func (d *Directory) edKey(node types.NodeID) ed25519.PrivateKey {
	d.mu.RLock()
	k, ok := d.edPriv[node]
	d.mu.RUnlock()
	if ok {
		return k
	}
	seed := d.derive("ed25519", uint64(uint32(node)), 0)
	k = ed25519.NewKeyFromSeed(seed[:])
	d.mu.Lock()
	if existing, ok := d.edPriv[node]; ok {
		k = existing
	} else {
		d.edPriv[node] = k
	}
	d.mu.Unlock()
	return k
}

func (d *Directory) rsaKey(node types.NodeID) (*crsa.PrivateKey, error) {
	d.mu.RLock()
	k, ok := d.rsaPriv[node]
	d.mu.RUnlock()
	if ok {
		return k, nil
	}
	bits := d.cfg.RSABits
	if bits == 0 {
		bits = 2048
	}
	seed := d.derive("rsa", uint64(uint32(node)), uint64(bits))
	k, err := crsa.GenerateKey(newDRBG(seed), bits)
	if err != nil {
		return nil, fmt.Errorf("crypto: generating RSA key for %v: %w", node, err)
	}
	d.mu.Lock()
	if existing, ok := d.rsaPriv[node]; ok {
		k = existing
	} else {
		d.rsaPriv[node] = k
	}
	d.mu.Unlock()
	return k, nil
}

func (d *Directory) macState(a, b types.NodeID) (*cmacState, error) {
	p := orderedPair(a, b)
	d.mu.RLock()
	s, ok := d.macs[p]
	d.mu.RUnlock()
	if ok {
		return s, nil
	}
	raw := d.derive("cmac", uint64(uint32(p.lo)), uint64(uint32(p.hi)))
	var key CMACKey
	copy(key[:], raw[:16])
	s, err := newCMAC(key)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	if existing, ok := d.macs[p]; ok {
		s = existing
	} else {
		d.macs[p] = s
	}
	d.mu.Unlock()
	return s, nil
}

// schemeAuth builds an authenticator of the given kind acting as self.
func (d *Directory) schemeAuth(kind Kind, self types.NodeID) Authenticator {
	switch kind {
	case None:
		return noopAuth{}
	case ED25519:
		return &edAuth{dir: d, self: self}
	case RSA:
		return &rsaAuth{dir: d, self: self}
	case CMAC:
		return &macAuth{dir: d, self: self}
	default:
		return noopAuth{}
	}
}

// NodeAuth returns the combined authenticator for one node: messages
// originated by clients use the client scheme, messages originated by
// replicas use the replica scheme.
func (d *Directory) NodeAuth(self types.NodeID) Authenticator {
	return &combinedAuth{
		self:    self,
		client:  d.schemeAuth(d.cfg.ClientScheme, self),
		replica: d.schemeAuth(d.cfg.ReplicaScheme, self),
	}
}

// combinedAuth routes to the client or replica scheme by message origin.
type combinedAuth struct {
	self    types.NodeID
	client  Authenticator
	replica Authenticator
}

var _ Authenticator = (*combinedAuth)(nil)

func (c *combinedAuth) own() Authenticator {
	if c.self.IsClient() {
		return c.client
	}
	return c.replica
}

// Sign implements Authenticator.
func (c *combinedAuth) Sign(dst types.NodeID, msg []byte) ([]byte, error) {
	return c.own().Sign(dst, msg)
}

// Verify implements Authenticator.
func (c *combinedAuth) Verify(src types.NodeID, msg, auth []byte) error {
	if src.IsClient() {
		return c.client.Verify(src, msg, auth)
	}
	return c.replica.Verify(src, msg, auth)
}

// VerifyBatch implements BatchVerifier by routing each triple to the
// scheme its source class uses, failing fast on the first rejection. It
// makes every node authenticator batchable, so the verify pool's batch
// window applies under all four Section 5.6 configurations; the win is
// the amortized wakeup, not a batched equation, except where the
// underlying scheme provides one.
func (c *combinedAuth) VerifyBatch(srcs []types.NodeID, msgs, auths [][]byte) error {
	for i := range srcs {
		if err := c.Verify(srcs[i], msgs[i], auths[i]); err != nil {
			return err
		}
	}
	return nil
}

// PerDestination implements Authenticator.
func (c *combinedAuth) PerDestination() bool { return c.own().PerDestination() }

// Kind implements Authenticator.
func (c *combinedAuth) Kind() Kind { return c.own().Kind() }

// edAuth signs with ED25519 digital signatures.
type edAuth struct {
	dir  *Directory
	self types.NodeID
}

var _ Authenticator = (*edAuth)(nil)

// Sign implements Authenticator.
func (a *edAuth) Sign(_ types.NodeID, msg []byte) ([]byte, error) {
	return ed25519.Sign(a.dir.edKey(a.self), msg), nil
}

// Verify implements Authenticator.
func (a *edAuth) Verify(src types.NodeID, msg, auth []byte) error {
	pub, ok := a.dir.edKey(src).Public().(ed25519.PublicKey)
	if !ok {
		return ErrUnknownPeer
	}
	if !ed25519.Verify(pub, msg, auth) {
		return fmt.Errorf("%w: ed25519 from %v", ErrBadSignature, src)
	}
	return nil
}

// VerifyBatch implements BatchVerifier. The standard library exposes no
// batched ed25519 verification equation, so each signature is checked
// individually; batching still pays for itself because the pool delivers
// one wakeup, one public-key lookup loop, and one result sweep per batch
// instead of per signature.
func (a *edAuth) VerifyBatch(srcs []types.NodeID, msgs, auths [][]byte) error {
	for i := range srcs {
		if err := a.Verify(srcs[i], msgs[i], auths[i]); err != nil {
			return err
		}
	}
	return nil
}

// PerDestination implements Authenticator.
func (a *edAuth) PerDestination() bool { return false }

// Kind implements Authenticator.
func (a *edAuth) Kind() Kind { return ED25519 }

// rsaAuth signs SHA-256 digests with RSA PKCS#1 v1.5.
type rsaAuth struct {
	dir  *Directory
	self types.NodeID
}

var _ Authenticator = (*rsaAuth)(nil)

// Sign implements Authenticator.
func (a *rsaAuth) Sign(_ types.NodeID, msg []byte) ([]byte, error) {
	key, err := a.dir.rsaKey(a.self)
	if err != nil {
		return nil, err
	}
	digest := sha256.Sum256(msg)
	sig, err := crsa.SignPKCS1v15(nil, key, stdcrypto.SHA256, digest[:])
	if err != nil {
		return nil, fmt.Errorf("crypto: rsa sign: %w", err)
	}
	return sig, nil
}

// Verify implements Authenticator.
func (a *rsaAuth) Verify(src types.NodeID, msg, auth []byte) error {
	key, err := a.dir.rsaKey(src)
	if err != nil {
		return err
	}
	digest := sha256.Sum256(msg)
	if err := crsa.VerifyPKCS1v15(&key.PublicKey, stdcrypto.SHA256, digest[:], auth); err != nil {
		return fmt.Errorf("%w: rsa from %v", ErrBadSignature, src)
	}
	return nil
}

// PerDestination implements Authenticator.
func (a *rsaAuth) PerDestination() bool { return false }

// Kind implements Authenticator.
func (a *rsaAuth) Kind() Kind { return RSA }

// macAuth authenticates with pairwise AES-CMAC tags.
type macAuth struct {
	dir  *Directory
	self types.NodeID
}

var _ Authenticator = (*macAuth)(nil)

// Sign implements Authenticator.
func (a *macAuth) Sign(dst types.NodeID, msg []byte) ([]byte, error) {
	s, err := a.dir.macState(a.self, dst)
	if err != nil {
		return nil, err
	}
	tag := s.Sum(msg)
	return tag[:], nil
}

// Verify implements Authenticator.
func (a *macAuth) Verify(src types.NodeID, msg, auth []byte) error {
	s, err := a.dir.macState(a.self, src)
	if err != nil {
		return err
	}
	if !s.Verify(msg, auth) {
		return fmt.Errorf("%w: cmac from %v", ErrBadSignature, src)
	}
	return nil
}

// PerDestination implements Authenticator.
func (a *macAuth) PerDestination() bool { return true }

// Kind implements Authenticator.
func (a *macAuth) Kind() Kind { return CMAC }

// drbg is a deterministic SHA-256 counter-mode byte stream used to derive
// reproducible RSA keys from the master seed. It is NOT a secure RNG for
// production key generation; it exists so every node in a test deployment
// derives the same directory without key exchange.
type drbg struct {
	seed    [32]byte
	counter uint64
	buf     []byte
}

func newDRBG(seed [32]byte) *drbg { return &drbg{seed: seed} }

// Read implements io.Reader with an inexhaustible pseudo-random stream.
func (d *drbg) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if len(d.buf) == 0 {
			h := sha256.New()
			h.Write(d.seed[:])
			var c [8]byte
			binary.BigEndian.PutUint64(c[:], d.counter)
			d.counter++
			h.Write(c[:])
			d.buf = h.Sum(nil)
		}
		c := copy(p[n:], d.buf)
		d.buf = d.buf[c:]
		n += c
	}
	return n, nil
}

package chaos

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"resilientdb/internal/cluster"
	"resilientdb/internal/store"
	"resilientdb/internal/types"
	"resilientdb/internal/workload"
)

// Scenario is one cell of the fault matrix: a fault class bound to a
// target replica, the workload and knob overrides it runs under, and the
// outcomes it must produce. The runner drives every scenario through the
// same three-window schedule — warmup (baseline throughput), fault window
// (fault active under live load), recovery window (fault healed) — and
// checks the safety invariants at the end.
type Scenario struct {
	// Name identifies the scenario in reports; Class is the fault class
	// (the matrix coverage unit).
	Name  string
	Class string
	// Target is the replica the fault lands on; Byzantine-primary
	// scenarios target replica 0, the view-0 primary.
	Target int

	// Backend overrides the record store backend ("" = mem); scenarios
	// exercising the durability path use "sharded".
	Backend string
	// AggressiveCompact tunes the disk backend so compaction fires
	// constantly during the run (compaction-crash coverage).
	AggressiveCompact bool
	// ReadFraction mixes read transactions into the workload (0 = the
	// write-only default); ReadMode overrides the cluster read mode.
	ReadFraction float64
	ReadMode     string
	// WorkerThreads overrides the consensus worker-lane count (0 = 1);
	// view-change scenarios run it at 2 to cover multi-lane view changes.
	WorkerThreads int
	// ViewTimeout overrides the progress watchdog (0 = the harness
	// default, generous enough that only real wedges trip it).
	ViewTimeout time.Duration

	// The fault itself: a link fault on the target's links, a Byzantine
	// sender behavior, a store write stall, a partition, or a crash.
	Link       LinkFault
	Behavior   Behavior
	StoreStall time.Duration
	// Isolate partitions the target from the other replicas for the
	// fault window; healing rejoins it via crash-restart bootstrap (the
	// harness's stand-in for state transfer — a replica that missed
	// committed sequence numbers has no protocol path to refetch them).
	Isolate bool
	// Crash fails the target at fault start; healing restarts it.
	Crash bool
	// Restart forces healing to go through crash-restart bootstrap even
	// when the fault left the target up. Faults that lose committed
	// messages (floods, partitions) leave the target with sequence gaps
	// it cannot refill; Isolate and Crash imply it.
	Restart bool
	// PlantCompactTemp drops a stray .compact-* rewrite temp into the
	// target's store directory before restart, simulating a crash in the
	// middle of a compaction rename; the reopened store must discard it.
	PlantCompactTemp bool

	Expect Expect
}

// Expect lists the outcomes a scenario must produce on top of the
// always-on safety invariants; each unmet expectation is a violation.
type Expect struct {
	// ViewChange requires the cluster to finish in a view > 0.
	ViewChange bool
	// SameView requires the cluster to finish still in view 0 (the
	// detected-equivocation scenario: evidence without a view change).
	SameView bool
	// Evidence requires at least one replica-side Byzantine-evidence
	// observation.
	Evidence bool
	// DecodeFailures requires the malformed-flood counter to fire.
	DecodeFailures bool
	// ForgedReads requires the fabric to have forged at least one read
	// response (the client-side defense is then what the safety
	// invariants certify).
	ForgedReads bool
}

// Tuning sizes the runner's windows and workload; zero values take the
// defaults below, sized for the small in-process cluster.
type Tuning struct {
	Warmup  time.Duration // baseline window
	Fault   time.Duration // fault-active window
	Recover time.Duration // post-heal window (bounds recovery time)
	Settle  time.Duration // post-run convergence wait
	Records uint64
	Clients int
	Seed    int64
	// BaseFault is ambient network degradation layered under every
	// scenario (the -chaos flag's link fault): it stays active through
	// all three windows, including after the scenario's own fault heals.
	BaseFault LinkFault
}

func (t *Tuning) fill() {
	if t.Warmup <= 0 {
		t.Warmup = 400 * time.Millisecond
	}
	if t.Fault <= 0 {
		t.Fault = 1500 * time.Millisecond
	}
	if t.Recover <= 0 {
		t.Recover = 1200 * time.Millisecond
	}
	if t.Settle <= 0 {
		t.Settle = 3 * time.Second
	}
	if t.Records == 0 {
		t.Records = 1024
	}
	if t.Clients == 0 {
		t.Clients = 3
	}
	if t.Seed == 0 {
		t.Seed = 42
	}
}

// Report is one scenario's outcome: the throughput under each window,
// how long liveness took to come back after healing, the final view, the
// fault counters, and every invariant or expectation violation. An empty
// Violations slice means the scenario passed.
type Report struct {
	Scenario string `json:"scenario"`
	Class    string `json:"class"`

	BaselineTput  float64 `json:"baseline_tput"`
	FaultTput     float64 `json:"fault_tput"`
	RecoveredTput float64 `json:"recovered_tput"`
	// RecoverySeconds is the time from heal to the first new ledger
	// height every live replica reached; the recovery window duration
	// means liveness never came back (also recorded as a violation).
	RecoverySeconds float64 `json:"recovery_seconds"`
	Txns            uint64  `json:"txns"`

	FinalView      uint64 `json:"final_view"`
	Evidence       uint64 `json:"evidence"`
	DecodeFailures uint64 `json:"decode_failures"`
	Injected       Stats  `json:"injected"`

	Violations []string `json:"violations,omitempty"`
}

// Passed reports whether the scenario met every invariant and
// expectation.
func (r *Report) Passed() bool { return len(r.Violations) == 0 }

func (r *Report) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// DefaultMatrix is the full fault matrix: eight fault classes, each under
// live Zipfian load. View-change scenarios run two consensus worker lanes
// so multi-lane engines get view-change coverage too.
func DefaultMatrix() []Scenario {
	return []Scenario{
		{
			Name: "equivocation-detected", Class: "equivocation", Target: 0,
			Behavior: ByzEquivocateBoth,
			Expect:   Expect{Evidence: true, SameView: true},
		},
		{
			Name: "equivocation-split", Class: "equivocation", Target: 0,
			Behavior: ByzEquivocateSplit, WorkerThreads: 2, ViewTimeout: 250 * time.Millisecond,
			Expect: Expect{ViewChange: true},
		},
		{
			Name: "silent-primary", Class: "primary-silence", Target: 0,
			Behavior: ByzMutePrimary, WorkerThreads: 2, ViewTimeout: 250 * time.Millisecond,
			Expect: Expect{ViewChange: true},
		},
		{
			Name: "partition-minority", Class: "partition", Target: 3,
			Isolate: true,
		},
		{
			Name: "slow-replica", Class: "slow-replica", Target: 3,
			Link: LinkFault{Delay: 2 * time.Millisecond, Reorder: 3 * time.Millisecond},
		},
		{
			Name: "malformed-flood", Class: "malformed-flood", Target: 3,
			// A corrupted message is a lost message: the flooded replica
			// accumulates sequence gaps it has no protocol path to refill,
			// so healing rejoins it via restart bootstrap.
			Link: LinkFault{Corrupt: 0.25}, Restart: true,
			Expect: Expect{DecodeFailures: true},
		},
		{
			Name: "disk-stall", Class: "disk-stall", Target: 2,
			Backend: "sharded", StoreStall: time.Millisecond,
		},
		{
			Name: "read-forgery", Class: "read-forgery", Target: 2,
			Behavior: ByzForgeReads, ReadFraction: 0.5,
			Expect: Expect{ForgedReads: true},
		},
		{
			Name: "compaction-crash", Class: "compaction-crash", Target: 3,
			Backend: "sharded", AggressiveCompact: true, Crash: true, PlantCompactTemp: true,
		},
		{
			Name: "crash-restart", Class: "crash-restart", Target: 3,
			Backend: "sharded", Crash: true,
		},
	}
}

// SmokeMatrix is the reduced matrix CI runs under the race detector: one
// Byzantine scenario with a view change, one without, and one
// crash-restart over the durable backend.
func SmokeMatrix() []Scenario {
	keep := map[string]bool{"equivocation-detected": true, "silent-primary": true, "crash-restart": true}
	var out []Scenario
	for _, sc := range DefaultMatrix() {
		if keep[sc.Name] {
			out = append(out, sc)
		}
	}
	return out
}

// RunScenario executes one scenario: build a 4-replica cluster with the
// fabric wrapped around every replica endpoint, run
// warmup → inject → fault window → heal → recovery window, then settle
// and check the safety invariants. The returned error covers harness
// failures (cluster construction, restart); fault-induced misbehavior
// lands in Report.Violations instead.
func RunScenario(sc Scenario, tn Tuning) (*Report, error) {
	tn.fill()
	rep := &Report{Scenario: sc.Name, Class: sc.Class}
	fab := NewFabric(tn.Seed)
	fab.SetDefault(tn.BaseFault)
	sf := NewStoreFaults()

	wl := workload.Default()
	wl.Records = tn.Records
	wl.ValueSize = 64
	wl.Seed = tn.Seed
	if sc.ReadFraction != 0 {
		wl.ReadFraction = sc.ReadFraction
	}

	opts := cluster.Options{
		N:                  4,
		Clients:            tn.Clients,
		Burst:              2,
		BatchSize:          8,
		Workload:           wl,
		CheckpointInterval: 16,
		ClientTimeout:      120 * time.Millisecond,
		ViewTimeout:        time.Second,
		ReadMode:           sc.ReadMode,
		Seed:               tn.Seed,
		PreloadTable:       true,
		WorkerThreads:      sc.WorkerThreads,
		StoreBackend:       sc.Backend,
		EndpointWrapper:    fab.WrapEndpoint,
		StoreWrapper: func(id types.ReplicaID, st store.Store) store.Store {
			if int(id) == sc.Target {
				return sf.WrapStore(st)
			}
			return st
		},
	}
	if sc.ViewTimeout > 0 {
		opts.ViewTimeout = sc.ViewTimeout
	}
	if sc.AggressiveCompact {
		opts.CheckpointInterval = 8
		opts.StoreCompactRatio = 0.01
		opts.StoreCompactMinBytes = -1
	}

	// Disk-backed scenarios get a runner-owned store root so the harness
	// knows each replica's directory (the compaction-crash scenario plants
	// a stray rewrite temp there before restart).
	var storeRoot string
	if sc.Backend == "disk" || sc.Backend == "sharded" {
		var err error
		storeRoot, err = os.MkdirTemp("", "chaos-store-")
		if err != nil {
			return nil, fmt.Errorf("chaos: store root: %w", err)
		}
		defer os.RemoveAll(storeRoot)
		opts.StoreDir = storeRoot
	}

	c, err := cluster.New(opts)
	if err != nil {
		return nil, fmt.Errorf("chaos: building cluster: %w", err)
	}
	defer c.Stop()
	c.Start()
	ctx := context.Background()

	// Window 1: fault-free baseline.
	base := c.Run(ctx, tn.Warmup)
	rep.BaselineTput = base.Throughput
	rep.Txns += base.Txns
	if base.Txns == 0 {
		rep.violate("no progress during fault-free warmup")
	}

	// Inject, then run the fault window under load.
	if sc.Behavior != ByzNone {
		fab.SetByzantine(types.ReplicaID(sc.Target), sc.Behavior)
	}
	if !sc.Link.zero() {
		fab.SetNode(types.ReplicaNode(types.ReplicaID(sc.Target)), sc.Link)
	}
	if sc.StoreStall > 0 {
		sf.SetWriteStall(sc.StoreStall)
	}
	if sc.Isolate {
		fab.Isolate(types.ReplicaNode(types.ReplicaID(sc.Target)))
	}
	if sc.Crash {
		c.Crash(sc.Target)
	}
	fault := c.Run(ctx, tn.Fault)
	rep.FaultTput = fault.Throughput
	rep.Txns += fault.Txns

	// Heal: clear every fault; a partitioned target rejoins via
	// crash-restart bootstrap (it has no protocol path to refetch the
	// sequence numbers it missed), a crashed one restarts directly.
	sf.SetWriteStall(0)
	fab.Clear()
	fab.SetDefault(tn.BaseFault)
	restarted := map[int]bool{}
	if (sc.Isolate || sc.Restart) && !sc.Crash {
		c.Crash(sc.Target)
	}
	if sc.Crash || sc.Isolate || sc.Restart {
		if sc.PlantCompactTemp && storeRoot != "" {
			stray := filepath.Join(storeRoot, fmt.Sprintf("replica-%d", sc.Target), ".compact-777")
			if err := os.WriteFile(stray, []byte("partial rewrite left by a mid-compaction crash"), 0o600); err != nil {
				return nil, fmt.Errorf("chaos: planting compaction temp: %w", err)
			}
		}
		if err := c.Restart(sc.Target); err != nil {
			return nil, fmt.Errorf("chaos: restarting replica %d: %w", sc.Target, err)
		}
		restarted[sc.Target] = true
		if sc.PlantCompactTemp && storeRoot != "" {
			dir := filepath.Join(storeRoot, fmt.Sprintf("replica-%d", sc.Target))
			if strays, _ := filepath.Glob(filepath.Join(dir, ".compact-*")); len(strays) > 0 {
				rep.violate("stray compaction temp survived restart: %v", strays)
			}
		}
	}

	// Window 3: recovery. Load runs in the background while the runner
	// polls for the first new height every live replica reaches; the gap
	// between heal and that height is the recovery time.
	healTarget := maxLiveHeight(c) + 1
	healStart := time.Now()
	resCh := make(chan cluster.Result, 1)
	go func() { resCh <- c.Run(ctx, tn.Recover) }()
	recovery := tn.Recover // pessimistic: full window = never recovered
	for time.Since(healStart) < tn.Recover {
		if minLiveHeight(c) >= healTarget {
			recovery = time.Since(healStart)
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	rec := <-resCh
	rep.RecoveredTput = rec.Throughput
	rep.Txns += rec.Txns
	rep.RecoverySeconds = recovery.Seconds()
	if recovery >= tn.Recover {
		rep.violate("liveness did not recover within %v of healing (heights %v, want %d)", tn.Recover, liveHeights(c), healTarget)
	}
	if rec.Txns == 0 {
		rep.violate("no acknowledged transactions after healing")
	}

	// Let in-flight execution drain and delayed deliveries land, then
	// check safety: every live replica agrees on the chain, and every
	// non-restarted one agrees on sampled record state. Together with the
	// liveness check above this is the no-lost-acked-write invariant: an
	// acknowledged write is committed on a quorum, so it is in every
	// honest chain and applied to every settled store.
	fab.Drain()
	settled := settleHeights(c, tn.Settle)
	if err := c.VerifyLedgers(c.Live); err != nil {
		rep.violate("ledger divergence: %v", err)
	}
	if settled {
		for _, v := range compareStores(c, tn.Records, restarted) {
			rep.Violations = append(rep.Violations, v)
		}
	} else {
		rep.violate("ledger heights did not converge within %v (heights %v)", tn.Settle, liveHeights(c))
	}

	// Collect counters and check the scenario's expectations.
	var maxView uint64
	for i := 0; i < 4; i++ {
		if !c.Live(i) {
			continue
		}
		s := c.Replica(i).Stats()
		if uint64(s.View) > maxView {
			maxView = uint64(s.View)
		}
		if i != sc.Target {
			rep.Evidence += s.Evidence
		}
		rep.DecodeFailures += s.DecodeFailures
	}
	rep.FinalView = maxView
	rep.Injected = fab.Stats()
	if sc.Expect.ViewChange && rep.FinalView == 0 {
		rep.violate("expected a view change, still in view 0")
	}
	if sc.Expect.SameView && rep.FinalView != 0 {
		rep.violate("expected no view change, finished in view %d", rep.FinalView)
	}
	if sc.Expect.Evidence && rep.Evidence == 0 {
		rep.violate("expected byzantine evidence, none recorded")
	}
	if sc.Expect.DecodeFailures && rep.DecodeFailures == 0 {
		rep.violate("expected decode failures, none recorded")
	}
	if sc.Expect.ForgedReads && rep.Injected.ForgedReads == 0 {
		rep.violate("expected forged read responses, fabric forged none")
	}
	return rep, nil
}

// RunMatrix runs every scenario in order and returns one report each;
// the error covers harness failures only.
func RunMatrix(matrix []Scenario, tn Tuning) ([]*Report, error) {
	reports := make([]*Report, 0, len(matrix))
	for _, sc := range matrix {
		r, err := RunScenario(sc, tn)
		if err != nil {
			return reports, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		reports = append(reports, r)
	}
	return reports, nil
}

func liveHeights(c *cluster.Cluster) []uint64 {
	out := make([]uint64, 0, 4)
	for i := 0; i < 4; i++ {
		if !c.Live(i) {
			continue
		}
		out = append(out, c.Replica(i).Ledger().Height())
	}
	return out
}

func maxLiveHeight(c *cluster.Cluster) uint64 {
	var h uint64
	for i := 0; i < 4; i++ {
		if !c.Live(i) {
			continue
		}
		if got := c.Replica(i).Ledger().Height(); got > h {
			h = got
		}
	}
	return h
}

func minLiveHeight(c *cluster.Cluster) uint64 {
	h := ^uint64(0)
	for i := 0; i < 4; i++ {
		if !c.Live(i) {
			continue
		}
		if got := c.Replica(i).Ledger().Height(); got < h {
			h = got
		}
	}
	return h
}

// settleHeights waits for every live replica to reach the same stable
// ledger height: load has stopped, so once the pipelines drain the
// heights stop moving. Equal heights mean equal execution prefixes,
// which is what licenses the store comparison below.
func settleHeights(c *cluster.Cluster, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		lo, hi := minLiveHeight(c), maxLiveHeight(c)
		if lo == hi {
			time.Sleep(25 * time.Millisecond)
			if minLiveHeight(c) == hi && maxLiveHeight(c) == hi {
				return true
			}
			continue
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

// compareStores samples the record table across live, non-restarted
// replicas and reports every divergent key. Restarted replicas are
// exempt: their store resumes from its own durable state and may trail
// the bootstrap head until state transfer lands (see Cluster.Restart).
func compareStores(c *cluster.Cluster, records uint64, restarted map[int]bool) []string {
	ref := -1
	var out []string
	stride := records/64 + 1
	for i := 0; i < 4; i++ {
		if !c.Live(i) || restarted[i] {
			continue
		}
		if ref < 0 {
			ref = i
			continue
		}
		for key := uint64(0); key < records; key += stride {
			want, errW := c.Store(ref).Get(key)
			got, errG := c.Store(i).Get(key)
			if (errW == nil) != (errG == nil) || !bytes.Equal(want, got) {
				out = append(out, fmt.Sprintf("store divergence at key %d: replica %d vs %d", key, ref, i))
				break
			}
		}
	}
	return out
}

package chaos

import (
	"testing"
	"time"
)

// testTuning shrinks the windows so the whole matrix stays fast on the
// small in-process cluster; view-change scenarios still get enough fault
// time for client retransmission plus the watchdog to fire.
func testTuning() Tuning {
	return Tuning{
		Warmup:  300 * time.Millisecond,
		Fault:   1200 * time.Millisecond,
		Recover: time.Second,
		Records: 512,
		Clients: 3,
		Seed:    11,
	}
}

func scenarioByName(t *testing.T, name string) Scenario {
	t.Helper()
	for _, sc := range DefaultMatrix() {
		if sc.Name == name {
			return sc
		}
	}
	t.Fatalf("no scenario named %q in the default matrix", name)
	return Scenario{}
}

func runScenario(t *testing.T, sc Scenario) *Report {
	t.Helper()
	rep, err := RunScenario(sc, testTuning())
	if err != nil {
		t.Fatalf("scenario %s: harness error: %v", sc.Name, err)
	}
	t.Logf("%s: baseline=%.0f fault=%.0f recovered=%.0f txn/s, recovery=%.2fs, view=%d, evidence=%d, injected=%+v",
		rep.Scenario, rep.BaselineTput, rep.FaultTput, rep.RecoveredTput,
		rep.RecoverySeconds, rep.FinalView, rep.Evidence, rep.Injected)
	for _, v := range rep.Violations {
		t.Errorf("%s: invariant violated: %s", sc.Name, v)
	}
	return rep
}

// TestViewChangeUnderSilentPrimaryMultiWorker covers the PBFT view change
// with two consensus worker lanes under a primary that is alive but sends
// no PrePrepares: the watchdog must rotate the view and liveness must
// come back, with ledgers equal across replicas afterwards.
func TestViewChangeUnderSilentPrimaryMultiWorker(t *testing.T) {
	sc := scenarioByName(t, "silent-primary")
	if sc.WorkerThreads < 2 {
		t.Fatalf("scenario runs %d worker lanes, want > 1", sc.WorkerThreads)
	}
	rep := runScenario(t, sc)
	if rep.FinalView == 0 {
		t.Error("silent primary never forced a view change")
	}
	if rep.Injected.MutedPP == 0 {
		t.Error("fabric muted no PrePrepares")
	}
}

// TestViewChangeUnderEquivocatingPrimaryMultiWorker covers the same
// multi-lane view change under a split-equivocating primary: no digest
// reaches a quorum, the instance stalls, and the view change recovers it.
func TestViewChangeUnderEquivocatingPrimaryMultiWorker(t *testing.T) {
	sc := scenarioByName(t, "equivocation-split")
	if sc.WorkerThreads < 2 {
		t.Fatalf("scenario runs %d worker lanes, want > 1", sc.WorkerThreads)
	}
	rep := runScenario(t, sc)
	if rep.FinalView == 0 {
		t.Error("equivocating primary never forced a view change")
	}
	if rep.Injected.Equivocations == 0 {
		t.Error("fabric injected no equivocations")
	}
}

// TestEquivocationDetected covers the detected-equivocation path: both
// variants reach every backup, consensus proceeds on the first arrival,
// and the conflicting second arrival lands in the evidence counter with
// no view change.
func TestEquivocationDetected(t *testing.T) {
	rep := runScenario(t, scenarioByName(t, "equivocation-detected"))
	if rep.Evidence == 0 {
		t.Error("no backup recorded equivocation evidence")
	}
}

// TestScenarioMatrix runs the rest of the default matrix; in -short mode
// it runs only the reduced smoke matrix (minus the scenarios the
// dedicated tests above already cover).
func TestScenarioMatrix(t *testing.T) {
	covered := map[string]bool{
		"silent-primary":        true,
		"equivocation-split":    true,
		"equivocation-detected": true,
	}
	matrix := DefaultMatrix()
	if testing.Short() {
		matrix = SmokeMatrix()
	}
	classes := map[string]bool{}
	for _, sc := range DefaultMatrix() {
		classes[sc.Class] = true
	}
	if len(classes) < 6 {
		t.Fatalf("default matrix covers %d fault classes, want >= 6", len(classes))
	}
	for _, sc := range matrix {
		if covered[sc.Name] {
			continue
		}
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			runScenario(t, sc)
		})
	}
}

package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"resilientdb/internal/types"
)

// Spec is the parsed form of the -chaos command-line flag: an ambient
// link fault applied to every wrapped endpoint, an optional Byzantine
// behavior pinned to one replica, and the fabric seed.
type Spec struct {
	Fault     LinkFault
	Byz       Behavior
	ByzTarget int
	Seed      int64
}

// ParseSpec parses the compact comma-separated spec syntax shared by
// resdb-node and resdb-bench:
//
//	drop=0.05,delay=2ms,reorder=5ms,dup=0.02,corrupt=0.005,byz=mute@0,seed=7
//
// Probabilities are in [0, 1]; delay and reorder take Go durations. byz
// pins a behavior (mute, equivocate-split, equivocate-both, forge-reads)
// to the replica after the @. An empty spec parses to the zero Spec.
func ParseSpec(spec string) (Spec, error) {
	var sp Spec
	if strings.TrimSpace(spec) == "" {
		return sp, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return sp, fmt.Errorf("chaos spec: %q is not key=value", part)
		}
		var err error
		switch key {
		case "drop":
			sp.Fault.Drop, err = parseProb(val)
		case "dup":
			sp.Fault.Duplicate, err = parseProb(val)
		case "corrupt":
			sp.Fault.Corrupt, err = parseProb(val)
		case "delay":
			sp.Fault.Delay, err = time.ParseDuration(val)
		case "reorder":
			sp.Fault.Reorder, err = time.ParseDuration(val)
		case "seed":
			sp.Seed, err = strconv.ParseInt(val, 10, 64)
		case "byz":
			mode, target, ok := strings.Cut(val, "@")
			if !ok {
				return sp, fmt.Errorf("chaos spec: byz wants mode@replica, got %q", val)
			}
			sp.Byz, err = parseBehavior(mode)
			if err == nil {
				sp.ByzTarget, err = strconv.Atoi(target)
			}
		default:
			return sp, fmt.Errorf("chaos spec: unknown key %q", key)
		}
		if err != nil {
			return sp, fmt.Errorf("chaos spec: %s: %w", key, err)
		}
	}
	return sp, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0, 1]", p)
	}
	return p, nil
}

func parseBehavior(mode string) (Behavior, error) {
	switch mode {
	case "mute":
		return ByzMutePrimary, nil
	case "equivocate-split", "equivocate":
		return ByzEquivocateSplit, nil
	case "equivocate-both":
		return ByzEquivocateBoth, nil
	case "forge-reads":
		return ByzForgeReads, nil
	default:
		return ByzNone, fmt.Errorf("unknown behavior %q (want mute|equivocate-split|equivocate-both|forge-reads)", mode)
	}
}

// Fabric builds a fabric preconfigured with the spec: the ambient fault
// as the default link rule and the pinned Byzantine behavior, if any.
func (sp Spec) Fabric() *Fabric {
	f := NewFabric(sp.Seed)
	sp.Apply(f)
	return f
}

// Apply layers the spec onto an existing fabric.
func (sp Spec) Apply(f *Fabric) {
	if !sp.Fault.zero() {
		f.SetDefault(sp.Fault)
	}
	if sp.Byz != ByzNone {
		f.SetByzantine(types.ReplicaID(sp.ByzTarget), sp.Byz)
	}
}

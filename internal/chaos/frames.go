package chaos

// This file is the malformed-wire corpus: the bytes the fabric's Corrupt
// fault injects, plus seed inputs for the frame- and body-decoding fuzz
// targets in internal/types. Keeping the corpus here means the fuzzers
// start from exactly the garbage the chaos scenarios exercise at runtime.

// malformedBody returns a fresh body that no message type decodes: every
// unmarshal starts by reading at least one u32, so three bytes always
// leave the reader short. The receiver's verify stage passes it (the
// fabric re-signs it) and the decode stage counts it in DecodeFailures.
func malformedBody() []byte { return []byte{0xFF, 0xFE, 0xFD} }

// MalformedBodies returns decode-failing message bodies for fuzz seeding:
// the runtime injection garbage plus truncation and trailing-byte shapes.
func MalformedBodies() [][]byte {
	return [][]byte{
		malformedBody(),
		{},                       // empty body
		{0x00},                   // one byte: short of any field
		{0x00, 0x00, 0x00},       // three zero bytes: short u32
		{0xFF, 0xFF, 0xFF, 0xFF}, // huge first count/field
		{0x00, 0x00, 0x00, 0x01}, // count 1 with no elements behind it
		make([]byte, 64),         // zeros: plausible prefix, bad tail
		// Scan-bearing shapes: a typed-op arm cut off mid-scan (kind 2,
		// key, no end/limit/value) and a count followed by a scan marker
		// claiming a huge row count with nothing behind it.
		{0x00, 0x00, 0x00, 0x01, 0x02, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
		{0x00, 0x00, 0x00, 0x01, 0x02, 0xFF, 0xFF, 0xFF, 0xFF},
	}
}

// MalformedFrames returns wire-level frames (length prefix included) that
// must make types.ReadFrames and types.ReadFramesPooled return an error —
// never panic or over-allocate. Shapes: truncated prefix, oversized
// length, forged batch counts, truncated payloads, and trailing bytes.
func MalformedFrames() [][]byte {
	// Minimal valid envelope payload: from=0, to=0, type=1, empty body
	// blob, empty auth blob — 17 bytes, the minEnvelopeSize wire form.
	minEnv := []byte{
		0, 0, 0, 0, // from
		0, 0, 0, 0, // to
		1,          // type
		0, 0, 0, 0, // body len
		0, 0, 0, 0, // auth len
	}
	frame := func(prefix uint32, payload []byte) []byte {
		out := []byte{byte(prefix >> 24), byte(prefix >> 16), byte(prefix >> 8), byte(prefix)}
		return append(out, payload...)
	}
	const batchBit = 1 << 31
	return [][]byte{
		{},                         // no prefix at all
		{0x00},                     // truncated prefix
		frame(1<<28+1, nil),        // length beyond maxFrameLen
		frame(0, nil),              // empty single frame
		frame(10, []byte{1, 2, 3}), // truncated payload
		frame(uint32(len(minEnv)+2), append(append([]byte{}, minEnv...), 0xAA, 0xBB)), // trailing bytes
		frame(batchBit|4, []byte{0x00, 0xFF, 0xFF, 0xFF}),                             // forged huge batch count
		frame(batchBit|4, []byte{0x00, 0x00, 0x00, 0x01}),                             // batch count 1, no envelope
		frame(batchBit|0, nil),                             // batch frame with no count
		frame(uint32(len(minEnv)), minEnv[:len(minEnv)-1]), // envelope short one byte
	}
}

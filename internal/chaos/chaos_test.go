package chaos

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"resilientdb/internal/crypto"
	"resilientdb/internal/store"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
)

func testDirectory(t *testing.T) *crypto.Directory {
	t.Helper()
	var seed [32]byte
	seed[0] = 7
	dir, err := crypto.NewDirectory(crypto.Recommended(), seed)
	if err != nil {
		t.Fatalf("directory: %v", err)
	}
	return dir
}

// fabricPair wires two replica endpoints through one fabric: sender 0 is
// wrapped (the unit under test), receiver 1 is raw.
func fabricPair(t *testing.T, f *Fabric) (transport.Endpoint, transport.Endpoint) {
	t.Helper()
	net := transport.NewInproc()
	dir := testDirectory(t)
	sender := f.WrapEndpoint(0, net.Endpoint(types.ReplicaNode(0), 1, 64), dir)
	receiver := net.Endpoint(types.ReplicaNode(1), 1, 64)
	t.Cleanup(func() {
		f.Drain()
		sender.Close()
		receiver.Close()
	})
	return sender, receiver
}

func testEnvelope() *types.Envelope {
	return &types.Envelope{
		From: types.ReplicaNode(0),
		To:   types.ReplicaNode(1),
		Type: types.MsgPrepare,
		Body: []byte{1, 2, 3},
		Auth: []byte{4, 5, 6},
	}
}

func recvWithin(t *testing.T, ep transport.Endpoint, d time.Duration) *types.Envelope {
	t.Helper()
	select {
	case env := <-ep.Inbox(0):
		return env
	case <-time.After(d):
		return nil
	}
}

func TestFabricPassThrough(t *testing.T) {
	f := NewFabric(1)
	sender, receiver := fabricPair(t, f)
	if err := sender.Send(testEnvelope()); err != nil {
		t.Fatalf("send: %v", err)
	}
	env := recvWithin(t, receiver, time.Second)
	if env == nil {
		t.Fatal("fault-free fabric did not deliver")
	}
	if !bytes.Equal(env.Body, []byte{1, 2, 3}) {
		t.Fatalf("body mutated in transit: %v", env.Body)
	}
}

func TestFabricDrop(t *testing.T) {
	f := NewFabric(1)
	f.SetDefault(LinkFault{Drop: 1})
	sender, receiver := fabricPair(t, f)
	if err := sender.Send(testEnvelope()); err != nil {
		t.Fatalf("send: %v", err)
	}
	if env := recvWithin(t, receiver, 50*time.Millisecond); env != nil {
		t.Fatal("drop=1 still delivered")
	}
	if got := f.Stats().Dropped; got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}
}

func TestFabricPartition(t *testing.T) {
	f := NewFabric(1)
	f.Isolate(types.ReplicaNode(1))
	sender, receiver := fabricPair(t, f)
	if err := sender.Send(testEnvelope()); err != nil {
		t.Fatalf("send: %v", err)
	}
	if env := recvWithin(t, receiver, 50*time.Millisecond); env != nil {
		t.Fatal("partitioned link still delivered")
	}
	if got := f.Stats().PartitionDrops; got != 1 {
		t.Fatalf("PartitionDrops = %d, want 1", got)
	}
	f.HealPartition()
	if err := sender.Send(testEnvelope()); err != nil {
		t.Fatalf("send after heal: %v", err)
	}
	if env := recvWithin(t, receiver, time.Second); env == nil {
		t.Fatal("healed link did not deliver")
	}
}

func TestFabricDuplicateAndDelay(t *testing.T) {
	f := NewFabric(1)
	f.SetLink(types.ReplicaNode(0), types.ReplicaNode(1), LinkFault{Duplicate: 1, Delay: time.Millisecond})
	sender, receiver := fabricPair(t, f)
	if err := sender.Send(testEnvelope()); err != nil {
		t.Fatalf("send: %v", err)
	}
	for i := 0; i < 2; i++ {
		if env := recvWithin(t, receiver, time.Second); env == nil {
			t.Fatalf("copy %d of duplicated envelope never arrived", i)
		}
	}
	s := f.Stats()
	if s.Duplicated != 1 || s.Delayed == 0 {
		t.Fatalf("stats = %+v, want 1 duplicate and some delays", s)
	}
}

// TestFabricCorruptReSigns checks the malformed-flood contract: the
// corrupted body must still authenticate as the sender (it lands in the
// receiver's DecodeFailures split, not AuthFailures) and must fail
// decoding for the original message type.
func TestFabricCorruptReSigns(t *testing.T) {
	f := NewFabric(1)
	f.SetDefault(LinkFault{Corrupt: 1})
	sender, receiver := fabricPair(t, f)
	dir := testDirectory(t)

	orig := testEnvelope()
	if err := sender.Send(orig); err != nil {
		t.Fatalf("send: %v", err)
	}
	env := recvWithin(t, receiver, time.Second)
	if env == nil {
		t.Fatal("corrupted envelope never delivered")
	}
	if bytes.Equal(env.Body, []byte{1, 2, 3}) {
		t.Fatal("corrupt=1 left the body untouched")
	}
	verifier := dir.NodeAuth(types.ReplicaNode(1))
	if err := verifier.Verify(env.From, env.Body, env.Auth); err != nil {
		t.Fatalf("corrupted body does not authenticate: %v", err)
	}
	if _, err := types.DecodeBody(env.Type, env.Body); err == nil {
		t.Fatal("corrupted body still decodes")
	}
	if got := f.Stats().Corrupted; got != 1 {
		t.Fatalf("Corrupted = %d, want 1", got)
	}
}

func TestStoreFaultsFailEvery(t *testing.T) {
	sf := NewStoreFaults()
	st := sf.WrapStore(store.NewMemStore(16))
	sf.SetFailEvery(2)
	var failed int
	for i := 0; i < 6; i++ {
		if err := st.Put(uint64(i), []byte{byte(i)}); err != nil {
			if !errors.Is(err, ErrInjectedWrite) {
				t.Fatalf("unexpected error: %v", err)
			}
			failed++
		}
	}
	if failed != 3 {
		t.Fatalf("failed writes = %d, want 3 of 6 at fail-every-2", failed)
	}
	sf.SetFailEvery(0)
	if err := st.Put(99, []byte{9}); err != nil {
		t.Fatalf("write after disabling injection: %v", err)
	}
	if _, err := st.Get(99); err != nil {
		t.Fatalf("read-through: %v", err)
	}
}

// TestStoreFaultsCapabilities checks the wrapper preserves exactly the
// optional interfaces each backend implements — the replica type-asserts
// them, so a lost capability silently degrades the pipeline and a gained
// one lies about durability stats.
func TestStoreFaultsCapabilities(t *testing.T) {
	sf := NewStoreFaults()

	mem := sf.WrapStore(store.NewMemStore(16))
	if _, ok := mem.(store.Batcher); !ok {
		t.Error("wrapped MemStore lost Batcher")
	}
	if _, ok := mem.(store.SyncStatser); ok {
		t.Error("wrapped MemStore gained SyncStatser")
	}

	for _, backend := range []string{"disk", "sharded"} {
		inner, err := store.OpenBackend(store.BackendConfig{Backend: backend, Dir: t.TempDir(), ExecShards: 1})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		wrapped := sf.WrapStore(inner)
		if _, ok := wrapped.(store.SyncStatser); !ok {
			t.Errorf("wrapped %s lost SyncStatser", backend)
		}
		if _, ok := wrapped.(store.Compactor); !ok {
			t.Errorf("wrapped %s lost Compactor", backend)
		}
		if _, ok := wrapped.(store.Batcher); ok != (backend == "sharded") {
			t.Errorf("wrapped %s Batcher = %v", backend, ok)
		}
		if err := wrapped.Close(); err != nil {
			t.Fatalf("close %s: %v", backend, err)
		}
	}
}

func TestMalformedFramesAllFailFrameDecode(t *testing.T) {
	for i, frame := range MalformedFrames() {
		if envs, err := types.ReadFrames(bytes.NewReader(frame)); err == nil {
			t.Errorf("frame %d decoded into %d envelopes, want error", i, len(envs))
		}
	}
}

func TestMalformedBodiesAllFailBodyDecode(t *testing.T) {
	kinds := []types.MsgType{types.MsgClientRequest, types.MsgPrePrepare, types.MsgPrepare, types.MsgCommit, types.MsgClientResponse}
	for i, body := range MalformedBodies() {
		for _, kind := range kinds {
			if _, err := types.DecodeBody(kind, body); err == nil {
				t.Errorf("body %d decoded as %v, want error", i, kind)
			}
		}
	}
}

func TestParseSpec(t *testing.T) {
	sp, err := ParseSpec("drop=0.1, delay=2ms,reorder=5ms,dup=0.02,corrupt=0.005,byz=mute@0,seed=7")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := Spec{
		Fault:     LinkFault{Drop: 0.1, Delay: 2 * time.Millisecond, Reorder: 5 * time.Millisecond, Duplicate: 0.02, Corrupt: 0.005},
		Byz:       ByzMutePrimary,
		ByzTarget: 0,
		Seed:      7,
	}
	if sp != want {
		t.Fatalf("parsed %+v, want %+v", sp, want)
	}
	if sp2, err := ParseSpec(""); err != nil || sp2 != (Spec{}) {
		t.Fatalf("empty spec: %+v, %v", sp2, err)
	}
	for _, bad := range []string{"drop=2", "nope=1", "byz=mute", "byz=wat@1", "delay=fast", "drop"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q parsed, want error", bad)
		}
	}
}

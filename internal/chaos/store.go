package chaos

import (
	"errors"
	"sync/atomic"
	"time"

	"resilientdb/internal/store"
)

// ErrInjectedWrite is the error returned by writes that StoreFaults chose
// to fail.
var ErrInjectedWrite = errors.New("chaos: injected write error")

// StoreFaults injects disk-layer faults into a wrapped store.Store:
// a per-write stall (modelling a saturated or degraded device) and a
// deterministic fail-every-Nth write error. Faults can be flipped while
// the store is in use; counters are atomic.
type StoreFaults struct {
	stallNS   atomic.Int64
	failEvery atomic.Int64
	writeSeq  atomic.Uint64

	Stalls         atomic.Uint64
	InjectedErrors atomic.Uint64
}

// NewStoreFaults returns a fault-free injector.
func NewStoreFaults() *StoreFaults { return &StoreFaults{} }

// SetWriteStall makes every Put/PutMany sleep for d before touching the
// store; 0 disables the stall.
func (sf *StoreFaults) SetWriteStall(d time.Duration) { sf.stallNS.Store(int64(d)) }

// SetFailEvery makes every nth write (counted across Put and PutMany
// calls) fail with ErrInjectedWrite without reaching the store; 0
// disables injection. Counting is deterministic, so tests can assert the
// exact number of injected failures.
func (sf *StoreFaults) SetFailEvery(n int) { sf.failEvery.Store(int64(n)) }

// before runs the fault schedule for one write call and reports whether
// the write should fail.
func (sf *StoreFaults) before() error {
	if d := sf.stallNS.Load(); d > 0 {
		sf.Stalls.Add(1)
		time.Sleep(time.Duration(d))
	}
	if n := sf.failEvery.Load(); n > 0 {
		if sf.writeSeq.Add(1)%uint64(n) == 0 {
			sf.InjectedErrors.Add(1)
			return ErrInjectedWrite
		}
	}
	return nil
}

// WrapStore wraps st with sf's write-fault injection. The wrapper
// preserves the inner store's optional capabilities exactly — the replica
// type-asserts store.Batcher, store.SyncStatser, store.Compactor, and
// store.Scanner, so a wrapped ShardedDiskStore must still advertise all
// of them and a wrapped MemStore must not grow SyncStats it cannot
// honestly report. All three backends implement Scanner, so each typed
// variant requires it; a capability combination with no matching backend
// falls back to the capability-free core.
// Its signature (modulo the receiver) matches cluster.Options.StoreWrapper.
func (sf *StoreFaults) WrapStore(st store.Store) store.Store {
	base := faultStore{inner: st, sf: sf}
	b, isB := st.(store.Batcher)
	s, isS := st.(store.SyncStatser)
	c, isC := st.(store.Compactor)
	sc, isSc := st.(store.Scanner)
	switch {
	case isB && isS && isC && isSc: // ShardedDiskStore
		return &faultStoreBSC{faultStore: base, b: b, s: s, c: c, sc: sc}
	case isS && isC && isSc: // DiskStore
		return &faultStoreSC{faultStore: base, s: s, c: c, sc: sc}
	case isB && isSc: // MemStore
		return &faultStoreB{faultStore: base, b: b, sc: sc}
	default:
		return &faultStore{inner: st, sf: sf}
	}
}

// faultStore is the capability-free core wrapper; reads pass through
// untouched (the harness targets the write/durability path).
type faultStore struct {
	inner store.Store
	sf    *StoreFaults
}

func (f *faultStore) Put(key uint64, value []byte) error {
	if err := f.sf.before(); err != nil {
		return err
	}
	return f.inner.Put(key, value)
}

func (f *faultStore) Get(key uint64) ([]byte, error) { return f.inner.Get(key) }
func (f *faultStore) Len() int                       { return f.inner.Len() }
func (f *faultStore) Close() error                   { return f.inner.Close() }

func (f *faultStore) putMany(b store.Batcher, kvs []store.KV) error {
	if err := f.sf.before(); err != nil {
		return err
	}
	return b.PutMany(kvs)
}

type faultStoreB struct {
	faultStore
	b  store.Batcher
	sc store.Scanner
}

func (f *faultStoreB) PutMany(kvs []store.KV) error { return f.putMany(f.b, kvs) }
func (f *faultStoreB) Scan(start, end uint64, fn func(uint64, []byte) bool) error {
	return f.sc.Scan(start, end, fn)
}

type faultStoreSC struct {
	faultStore
	s  store.SyncStatser
	c  store.Compactor
	sc store.Scanner
}

func (f *faultStoreSC) SyncStats() store.SyncStats       { return f.s.SyncStats() }
func (f *faultStoreSC) MaybeCompact() (int, error)       { return f.c.MaybeCompact() }
func (f *faultStoreSC) Compact() error                   { return f.c.Compact() }
func (f *faultStoreSC) CompactStats() store.CompactStats { return f.c.CompactStats() }
func (f *faultStoreSC) Scan(start, end uint64, fn func(uint64, []byte) bool) error {
	return f.sc.Scan(start, end, fn)
}

type faultStoreBSC struct {
	faultStore
	b  store.Batcher
	s  store.SyncStatser
	c  store.Compactor
	sc store.Scanner
}

func (f *faultStoreBSC) PutMany(kvs []store.KV) error     { return f.putMany(f.b, kvs) }
func (f *faultStoreBSC) SyncStats() store.SyncStats       { return f.s.SyncStats() }
func (f *faultStoreBSC) MaybeCompact() (int, error)       { return f.c.MaybeCompact() }
func (f *faultStoreBSC) Compact() error                   { return f.c.Compact() }
func (f *faultStoreBSC) CompactStats() store.CompactStats { return f.c.CompactStats() }
func (f *faultStoreBSC) Scan(start, end uint64, fn func(uint64, []byte) bool) error {
	return f.sc.Scan(start, end, fn)
}

// Compile-time capability checks: the wrappers must mirror the backends.
var (
	_ store.Store       = (*faultStore)(nil)
	_ store.Batcher     = (*faultStoreB)(nil)
	_ store.Scanner     = (*faultStoreB)(nil)
	_ store.SyncStatser = (*faultStoreSC)(nil)
	_ store.Compactor   = (*faultStoreSC)(nil)
	_ store.Scanner     = (*faultStoreSC)(nil)
	_ store.Batcher     = (*faultStoreBSC)(nil)
	_ store.SyncStatser = (*faultStoreBSC)(nil)
	_ store.Compactor   = (*faultStoreBSC)(nil)
	_ store.Scanner     = (*faultStoreBSC)(nil)
)

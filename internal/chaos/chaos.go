// Package chaos is the fault-injection layer of the test harness: it
// wraps the seams the fabric already exposes — the transport endpoint, the
// record store, and (via re-signed message rewriting) the replica's own
// outbound protocol traffic — so integration tests and the faults bench
// can run the paper's failure scenarios (Section 5.10 and beyond) against
// the real pipeline instead of a simulator.
//
// The layer has three parts:
//
//   - Fabric: per-link network faults (drop, delay, reorder, duplicate,
//     malformed-frame corruption) plus partitions, applied in a
//     transport.Endpoint wrapper on the sender side. Corrupted bodies are
//     re-signed with the sender's real key, so they pass authentication
//     and land in the replica's DecodeFailures split — exactly the
//     garbage-vs-forgery distinction the stats are designed to keep.
//   - Byzantine behaviors: an equivocating primary (conflicting
//     PrePrepares for one sequence, either split across backups to stall
//     the instance or doubled to every backup to trip the evidence
//     counter), a silent primary (dropped PrePrepares force the
//     watchdog's view change), and a read-forging responder (mutated
//     ReadResults under an unchanged Result digest, exercising the
//     client's ResponseDigest recomputation defense).
//   - StoreFaults: write stalls and injected write errors behind the
//     store.Store interface, with capability-preserving wrappers so a
//     wrapped ShardedDiskStore still advertises Batcher/SyncStatser/
//     Compactor to the replica.
//
// Everything is deterministic given the Fabric seed, modulo goroutine
// scheduling: probabilistic decisions share one seeded PRNG.
package chaos

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"resilientdb/internal/crypto"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
)

// LinkFault is the fault profile for one directed link (or a node, or the
// whole fabric): each send crossing the link is independently dropped,
// corrupted, duplicated, and delayed according to the profile. The zero
// value passes traffic through untouched.
type LinkFault struct {
	// Drop is the probability a send is silently discarded.
	Drop float64
	// Corrupt is the probability the body is replaced with garbage that
	// is re-signed by the sender, so it passes authentication and fails
	// decoding (the DecodeFailures path).
	Corrupt float64
	// Duplicate is the probability the envelope is delivered twice.
	Duplicate float64
	// Delay is a fixed delivery delay; Reorder adds a further uniformly
	// random delay in [0, Reorder), which reorders messages relative to
	// each other on the link.
	Delay   time.Duration
	Reorder time.Duration
}

func (lf LinkFault) zero() bool {
	return lf.Drop == 0 && lf.Corrupt == 0 && lf.Duplicate == 0 && lf.Delay == 0 && lf.Reorder == 0
}

// Behavior selects a Byzantine sender behavior for one replica.
type Behavior int

// Byzantine behaviors.
const (
	// ByzNone is honest (the default).
	ByzNone Behavior = iota
	// ByzEquivocateSplit sends a conflicting PrePrepare variant to
	// odd-numbered replicas and the original to the rest: no digest can
	// reach a commit quorum, the instance stalls, and the watchdog's view
	// change must recover liveness — the classic undetected equivocation.
	ByzEquivocateSplit
	// ByzEquivocateBoth sends every backup the original PrePrepare and
	// then a conflicting variant for the same (view, seq). The first
	// arrival wins the instance, so consensus proceeds, and the second
	// trips each backup's equivocation-evidence counter — the detected
	// equivocation.
	ByzEquivocateBoth
	// ByzMutePrimary drops every outbound PrePrepare: a silent primary.
	// Other traffic still flows, so the replica looks alive while making
	// no progress — the watchdog view change is the only way out.
	ByzMutePrimary
	// ByzForgeReads rewrites the ReadResults of outbound client responses
	// while keeping the original Result digest, exercising the client's
	// defense of recomputing ResponseDigest over the carried reads.
	ByzForgeReads
)

// Stats are the fabric's cumulative injection counters.
type Stats struct {
	Dropped        uint64
	Corrupted      uint64
	Duplicated     uint64
	Delayed        uint64
	PartitionDrops uint64
	Equivocations  uint64
	MutedPP        uint64
	ForgedReads    uint64
}

// Fabric holds the live fault configuration and implements the
// cluster.Options.EndpointWrapper seam via WrapEndpoint. All setters are
// safe to call while the cluster runs — scenarios flip faults on and off
// under live load.
type Fabric struct {
	mu       sync.Mutex
	rng      *rand.Rand
	def      LinkFault
	node     map[types.NodeID]LinkFault
	link     map[[2]types.NodeID]LinkFault
	isolated map[types.NodeID]bool
	byz      map[types.ReplicaID]Behavior

	dropped        atomic.Uint64
	corrupted      atomic.Uint64
	duplicated     atomic.Uint64
	delayed        atomic.Uint64
	partitionDrops atomic.Uint64
	equivocations  atomic.Uint64
	mutedPP        atomic.Uint64
	forgedReads    atomic.Uint64

	// wg tracks in-flight delayed deliveries so Drain can wait for them
	// before a test tears the cluster down.
	wg sync.WaitGroup
}

// NewFabric creates a fault-free fabric with a seeded PRNG.
func NewFabric(seed int64) *Fabric {
	return &Fabric{
		rng:      rand.New(rand.NewSource(seed)),
		node:     make(map[types.NodeID]LinkFault),
		link:     make(map[[2]types.NodeID]LinkFault),
		isolated: make(map[types.NodeID]bool),
		byz:      make(map[types.ReplicaID]Behavior),
	}
}

// SetDefault applies lf to every link without a more specific rule.
func (f *Fabric) SetDefault(lf LinkFault) {
	f.mu.Lock()
	f.def = lf
	f.mu.Unlock()
}

// SetNode applies lf to every link that starts or ends at n (link rules
// still win). A zero LinkFault removes the rule.
func (f *Fabric) SetNode(n types.NodeID, lf LinkFault) {
	f.mu.Lock()
	if lf.zero() {
		delete(f.node, n)
	} else {
		f.node[n] = lf
	}
	f.mu.Unlock()
}

// SetLink applies lf to the directed link from → to, winning over node
// and default rules. A zero LinkFault removes the rule.
func (f *Fabric) SetLink(from, to types.NodeID, lf LinkFault) {
	f.mu.Lock()
	if lf.zero() {
		delete(f.link, [2]types.NodeID{from, to})
	} else {
		f.link[[2]types.NodeID{from, to}] = lf
	}
	f.mu.Unlock()
}

// Isolate partitions the given nodes away from the rest of the fabric:
// any send with exactly one end in the isolated set is dropped. Links
// inside the set and links entirely outside it still work.
func (f *Fabric) Isolate(nodes ...types.NodeID) {
	f.mu.Lock()
	for _, n := range nodes {
		f.isolated[n] = true
	}
	f.mu.Unlock()
}

// HealPartition clears the isolated set.
func (f *Fabric) HealPartition() {
	f.mu.Lock()
	f.isolated = make(map[types.NodeID]bool)
	f.mu.Unlock()
}

// SetByzantine assigns a Byzantine behavior to a replica's outbound
// traffic; ByzNone restores honesty.
func (f *Fabric) SetByzantine(id types.ReplicaID, b Behavior) {
	f.mu.Lock()
	if b == ByzNone {
		delete(f.byz, id)
	} else {
		f.byz[id] = b
	}
	f.mu.Unlock()
}

// Clear removes every fault: link rules, partition, and behaviors.
func (f *Fabric) Clear() {
	f.mu.Lock()
	f.def = LinkFault{}
	f.node = make(map[types.NodeID]LinkFault)
	f.link = make(map[[2]types.NodeID]LinkFault)
	f.isolated = make(map[types.NodeID]bool)
	f.byz = make(map[types.ReplicaID]Behavior)
	f.mu.Unlock()
}

// Stats returns a snapshot of the injection counters.
func (f *Fabric) Stats() Stats {
	return Stats{
		Dropped:        f.dropped.Load(),
		Corrupted:      f.corrupted.Load(),
		Duplicated:     f.duplicated.Load(),
		Delayed:        f.delayed.Load(),
		PartitionDrops: f.partitionDrops.Load(),
		Equivocations:  f.equivocations.Load(),
		MutedPP:        f.mutedPP.Load(),
		ForgedReads:    f.forgedReads.Load(),
	}
}

// Drain waits for every in-flight delayed delivery to finish (each
// releases its envelope if the destination endpoint has closed). Call it
// after the load stops and before asserting on pool or drop counters.
func (f *Fabric) Drain() { f.wg.Wait() }

func (f *Fabric) behavior(id types.ReplicaID) Behavior {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.byz[id]
}

func (f *Fabric) crossesPartition(from, to types.NodeID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.isolated) == 0 {
		return false
	}
	return f.isolated[from] != f.isolated[to]
}

func (f *Fabric) resolve(from, to types.NodeID) LinkFault {
	f.mu.Lock()
	defer f.mu.Unlock()
	if lf, ok := f.link[[2]types.NodeID{from, to}]; ok {
		return lf
	}
	if lf, ok := f.node[from]; ok {
		return lf
	}
	if lf, ok := f.node[to]; ok {
		return lf
	}
	return f.def
}

// chance draws one probabilistic decision from the shared PRNG.
func (f *Fabric) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	f.mu.Lock()
	v := f.rng.Float64()
	f.mu.Unlock()
	return v < p
}

// delayFor computes the delivery delay for one send under lf.
func (f *Fabric) delayFor(lf LinkFault) time.Duration {
	d := lf.Delay
	if lf.Reorder > 0 {
		f.mu.Lock()
		d += time.Duration(f.rng.Int63n(int64(lf.Reorder)))
		f.mu.Unlock()
	}
	return d
}

// WrapEndpoint wraps a replica's endpoint with the fabric's fault rules.
// Its signature matches cluster.Options.EndpointWrapper. The directory
// provides the replica's own signing key, so rewritten bodies
// (equivocation variants, forged reads, corrupted frames) carry valid
// authenticators — Byzantine nodes hold real keys.
func (f *Fabric) WrapEndpoint(id types.ReplicaID, inner transport.Endpoint, dir *crypto.Directory) transport.Endpoint {
	return &endpoint{
		Endpoint: inner,
		id:       id,
		auth:     dir.NodeAuth(types.ReplicaNode(id)),
		f:        f,
	}
}

// endpoint is the sender-side fault injector. Self, Inbox, Inboxes,
// Drops, and Close delegate to the embedded inner endpoint; only Send is
// intercepted.
type endpoint struct {
	transport.Endpoint
	id   types.ReplicaID
	auth crypto.Authenticator
	f    *Fabric
}

// Send applies Byzantine sender behavior, then link shaping. Envelope
// ownership follows the transport contract: when the original envelope is
// passed through untouched, inner-Send errors propagate to the caller
// (who releases); whenever the wrapper drops, replaces, or delays the
// envelope it takes ownership, returns nil, and releases on any failure.
// Rewritten variants are fresh plain envelopes with copied bodies — an
// outbound Body may alias an arena shared with the other destinations'
// envelopes, so it is never mutated in place.
func (e *endpoint) Send(env *types.Envelope) error {
	f := e.f
	switch f.behavior(e.id) {
	case ByzMutePrimary:
		if env.Type == types.MsgPrePrepare {
			f.mutedPP.Add(1)
			env.Release()
			return nil
		}
	case ByzEquivocateSplit:
		if env.Type == types.MsgPrePrepare && !env.To.IsClient() && int32(env.To)%2 == 1 {
			if v := e.conflictingPrePrepare(env); v != nil {
				f.equivocations.Add(1)
				env.Release()
				return e.shapedSend(v, true)
			}
		}
	case ByzEquivocateBoth:
		if env.Type == types.MsgPrePrepare && !env.To.IsClient() {
			if v := e.conflictingPrePrepare(env); v != nil {
				f.equivocations.Add(1)
				// Original first: the first arrival wins the instance on
				// honest replicas, so consensus proceeds and the variant
				// becomes pure evidence.
				err := e.shapedSend(env, false)
				_ = e.shapedSend(v, true)
				return err
			}
		}
	case ByzForgeReads:
		if env.Type == types.MsgClientResponse && env.To.IsClient() {
			if v := e.forgedResponse(env); v != nil {
				f.forgedReads.Add(1)
				env.Release()
				return e.shapedSend(v, true)
			}
		}
	}
	return e.shapedSend(env, false)
}

// shapedSend applies partition and link-fault shaping. owned marks
// envelopes the wrapper created (or otherwise owns): their errors are
// swallowed after releasing, because the caller's envelope was already
// consumed.
func (e *endpoint) shapedSend(env *types.Envelope, owned bool) error {
	f := e.f
	if f.crossesPartition(env.From, env.To) {
		f.partitionDrops.Add(1)
		env.Release()
		return nil
	}
	lf := f.resolve(env.From, env.To)
	if lf.zero() {
		return e.deliver(env, 0, owned)
	}
	if f.chance(lf.Drop) {
		f.dropped.Add(1)
		env.Release()
		return nil
	}
	if f.chance(lf.Corrupt) {
		if c := e.corrupted(env); c != nil {
			f.corrupted.Add(1)
			env.Release()
			env, owned = c, true
		}
	}
	if f.chance(lf.Duplicate) {
		f.duplicated.Add(1)
		_ = e.deliver(copyEnvelope(env), f.delayFor(lf), true)
	}
	return e.deliver(env, f.delayFor(lf), owned)
}

// deliver hands the envelope to the inner endpoint, now or after a delay.
// A delayed send always takes ownership: the caller got nil long ago, so
// a failed late Send releases the envelope instead of reporting.
func (e *endpoint) deliver(env *types.Envelope, d time.Duration, owned bool) error {
	if d <= 0 {
		err := e.Endpoint.Send(env)
		if err != nil && owned {
			env.Release()
			return nil
		}
		return err
	}
	f := e.f
	f.delayed.Add(1)
	f.wg.Add(1)
	time.AfterFunc(d, func() {
		defer f.wg.Done()
		if err := e.Endpoint.Send(env); err != nil {
			env.Release()
		}
	})
	return nil
}

// conflictingPrePrepare builds a validly-signed PrePrepare for the same
// (view, seq) with a different batch digest: the batch's first two
// requests are swapped (or its only request doubled), so every embedded
// client signature stays valid while the batch digest — and with it the
// whole three-phase agreement — diverges. Returns nil when the body
// cannot be rewritten (decode failure or an empty batch).
func (e *endpoint) conflictingPrePrepare(env *types.Envelope) *types.Envelope {
	msg, err := types.DecodeBody(types.MsgPrePrepare, env.Body)
	if err != nil {
		return nil
	}
	pp, ok := msg.(*types.PrePrepare)
	if !ok || len(pp.Requests) == 0 {
		return nil
	}
	if len(pp.Requests) >= 2 {
		pp.Requests[0], pp.Requests[1] = pp.Requests[1], pp.Requests[0]
	} else {
		pp.Requests = append(pp.Requests, pp.Requests[0])
	}
	pp.Digest = types.BatchDigest(pp.Requests)
	return e.reSigned(env, pp)
}

// forgedResponse rewrites a client response's read results while keeping
// the original Result digest: the classic forgery ResponseDigest's
// recompute-and-discard client defense exists for. Returns nil when the
// response carries no reads (nothing to forge).
func (e *endpoint) forgedResponse(env *types.Envelope) *types.Envelope {
	msg, err := types.DecodeBody(types.MsgClientResponse, env.Body)
	if err != nil {
		return nil
	}
	cr, ok := msg.(*types.ClientResponse)
	if !ok || len(cr.ReadResults) == 0 {
		return nil
	}
	rr := &cr.ReadResults[0]
	switch {
	case rr.Scan && len(rr.Rows) > 1:
		// Truncate the scan: drop the tail rows but keep the digest.
		rr.Rows = rr.Rows[:len(rr.Rows)-1]
	case rr.Scan && len(rr.Rows) == 1:
		// Mutate the lone row's value (or key when the value is empty).
		if len(rr.Rows[0].Value) > 0 {
			rr.Rows[0].Value[0] ^= 0xFF
		} else {
			rr.Rows[0].Key ^= 1
		}
	case rr.Scan:
		// Invent a row in an honestly empty scan.
		rr.Rows = []types.ScanRow{{Key: 0xF0F0, Value: []byte{0xAB}}}
	case len(rr.Value) > 0:
		rr.Value[0] ^= 0xFF
	default:
		rr.Found = !rr.Found
		rr.Value = []byte{0xAB}
	}
	return e.reSigned(env, cr)
}

// corrupted replaces the body with undecodable garbage re-signed by the
// sender, so the receiver's verify stage passes it and the decode stage
// counts it — a malformed flood lands in DecodeFailures, not
// AuthFailures. Returns nil if signing fails (the original is kept).
func (e *endpoint) corrupted(env *types.Envelope) *types.Envelope {
	tmp := &types.Envelope{From: env.From, To: env.To, Type: env.Type}
	return e.signedBody(tmp, malformedBody())
}

// reSigned marshals msg into a fresh plain envelope addressed like env
// and signs it with the sender's key. Returns nil if signing fails.
func (e *endpoint) reSigned(env *types.Envelope, msg types.Message) *types.Envelope {
	tmp := &types.Envelope{From: env.From, To: env.To, Type: msg.Type()}
	return e.signedBody(tmp, types.MarshalBody(msg))
}

func (e *endpoint) signedBody(env *types.Envelope, body []byte) *types.Envelope {
	sig, err := e.auth.Sign(env.To, body)
	if err != nil {
		return nil
	}
	env.Body = body
	env.Auth = sig
	return env
}

// copyEnvelope deep-copies an envelope into a plain (pool- and
// arena-free) one, so a duplicate's lifetime is independent of the
// original's arena references.
func copyEnvelope(env *types.Envelope) *types.Envelope {
	return &types.Envelope{
		From: env.From,
		To:   env.To,
		Type: env.Type,
		Body: append([]byte(nil), env.Body...),
		Auth: append([]byte(nil), env.Auth...),
	}
}

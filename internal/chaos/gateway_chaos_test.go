package chaos

import (
	"context"
	"net"
	"testing"
	"time"

	"resilientdb/internal/cluster"
	"resilientdb/internal/gateway"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
	"resilientdb/internal/workload"
)

// TestGatewayUnderSlowReplicaFault runs the gateway tier through the
// DefaultMatrix slow-replica link fault: sessions keep completing while
// one replica's links delay and reorder, the ledgers stay equal after
// the fault heals, and overload never surfaces as silent drops. This is
// the gateway's seat in the chaos matrix — the fault lands between the
// gateway's upstream workers and the replicas, exactly where its retry
// and dedup machinery has to hold.
func TestGatewayUnderSlowReplicaFault(t *testing.T) {
	var slow Scenario
	for _, sc := range DefaultMatrix() {
		if sc.Name == "slow-replica" {
			slow = sc
		}
	}
	if slow.Name == "" {
		t.Fatal("slow-replica scenario missing from DefaultMatrix")
	}

	fab := NewFabric(42)
	wl := workload.Default()
	wl.Records = 1024
	wl.ValueSize = 64
	c, err := cluster.New(cluster.Options{
		N:                  4,
		Clients:            1, // unused; the gateway is the only load source
		BatchSize:          8,
		Workload:           wl,
		CheckpointInterval: 16,
		Seed:               42,
		PreloadTable:       true,
		EndpointWrapper:    fab.WrapEndpoint,
	})
	if err != nil {
		t.Fatalf("building cluster: %v", err)
	}
	c.Start()
	defer c.Stop()

	g, err := gateway.New(gateway.Config{
		N:         4,
		Directory: c.Directory(),
		Endpoint: func(id types.ClientID) (transport.Endpoint, error) {
			return c.AttachClient(id, 1<<10), nil
		},
		Upstreams: 2,
		Batch:     32,
		Timeout:   150 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("building gateway: %v", err)
	}
	defer g.Close()

	load, err := gateway.NewLoad(gateway.LoadConfig{
		Sessions: 200,
		Conns:    2,
		Dial: func() (net.Conn, error) {
			client, server := net.Pipe()
			g.ServeConn(server)
			return client, nil
		},
		Workload:     wl,
		Seed:         42,
		RetryTimeout: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("building load: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- load.Run(ctx) }()

	// Baseline window, then the matrix fault on the target's links, then
	// heal and a recovery window.
	time.Sleep(400 * time.Millisecond)
	base := load.Stats()
	if base.Completed == 0 {
		t.Fatal("no progress during fault-free baseline")
	}
	target := types.ReplicaNode(types.ReplicaID(slow.Target))
	fab.SetNode(target, slow.Link)
	time.Sleep(800 * time.Millisecond)
	faulted := load.Stats()
	if faulted.Completed == base.Completed {
		t.Fatalf("sessions wedged under the slow-replica fault: %+v", faulted)
	}
	fab.SetNode(target, LinkFault{})
	time.Sleep(400 * time.Millisecond)
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("load run: %v", err)
	}
	recovered := load.Stats()
	if recovered.Completed == faulted.Completed {
		t.Fatalf("no progress after healing: %+v", recovered)
	}

	if st := fab.Stats(); st.Delayed == 0 {
		t.Fatalf("fault never injected: %+v", st)
	}
	// Safety: the gateway's retries and coalesced requests must not have
	// diverged the chains, and the fault must not have surfaced as silent
	// inbox drops on any replica.
	fab.Drain()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		lo, hi := minLiveHeight(c), maxLiveHeight(c)
		if lo == hi {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := c.VerifyLedgers(nil); err != nil {
		t.Fatalf("ledger divergence: %v", err)
	}
	var drops uint64
	for i := 0; i < 4; i++ {
		drops += c.Replica(i).Stats().NetDrops
	}
	if drops != 0 {
		t.Fatalf("fault surfaced as %d silent transport drops", drops)
	}
	gs := g.Stats()
	if gs.Completed == 0 {
		t.Fatalf("gateway completed nothing: %+v", gs)
	}
	t.Logf("gateway under %s: base=%d faulted=+%d recovered=+%d (retries=%d busy=%d)",
		slow.Name, base.Completed, faulted.Completed-base.Completed,
		recovered.Completed-faulted.Completed, recovered.Retries, recovered.BusyReplies)
}

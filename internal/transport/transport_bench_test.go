package transport

import (
	"fmt"
	"testing"
	"time"

	"resilientdb/internal/types"
)

// benchTCPBlast drives n envelopes through a localhost TCP pair built
// with cfg applied to the receiver, draining and releasing on the
// benchmark goroutine. It is the transport-level half of the zero-copy
// allocation comparison (run with -benchmem).
func benchTCPBlast(b *testing.B, zeroCopy bool) {
	a, err := NewTCPWithConfig(TCPConfig{
		Self: types.ReplicaNode(0), ListenAddr: "127.0.0.1:0",
		Inboxes: 1, Capacity: 1 << 14, BatchMax: 16, Linger: 100 * time.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	recv, err := NewTCPWithConfig(TCPConfig{
		Self: types.ReplicaNode(1), ListenAddr: "127.0.0.1:0",
		Inboxes: 1, Capacity: 1 << 14, ZeroCopy: zeroCopy,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer recv.Close()
	a.SetPeerAddr(types.ReplicaNode(1), recv.Addr())

	body := []byte(fmt.Sprintf("%0200d", 0))
	b.ReportAllocs()
	b.ResetTimer()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			_ = a.Send(&types.Envelope{
				From: types.ReplicaNode(0), To: types.ReplicaNode(1),
				Type: types.MsgPrepare, Body: body, Auth: body[:32],
			})
		}
	}()
	for i := 0; i < b.N; i++ {
		e := <-recv.Inbox(0)
		e.Release()
	}
	<-done
}

func BenchmarkTCPDeliveryCopy(b *testing.B)     { benchTCPBlast(b, false) }
func BenchmarkTCPDeliveryZeroCopy(b *testing.B) { benchTCPBlast(b, true) }

package transport

import (
	"fmt"
	"testing"
	"time"

	"resilientdb/internal/types"
)

func TestClassify(t *testing.T) {
	tests := []struct {
		name    string
		from    types.NodeID
		inboxes int
		want    int
	}{
		{"single inbox client", types.ClientNode(5), 1, 0},
		{"single inbox replica", types.ReplicaNode(2), 1, 0},
		{"client goes to zero", types.ClientNode(5), 3, 0},
		{"replica avoids zero", types.ReplicaNode(0), 3, 1},
		{"replica spread", types.ReplicaNode(1), 3, 2},
		{"replica wraps", types.ReplicaNode(2), 3, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Classify(tt.from, tt.inboxes); got != tt.want {
				t.Fatalf("Classify = %d, want %d", got, tt.want)
			}
		})
	}
}

func env(from, to types.NodeID, body string) *types.Envelope {
	return &types.Envelope{From: from, To: to, Type: types.MsgPrepare, Body: []byte(body), Auth: []byte{1}}
}

func TestInprocDelivery(t *testing.T) {
	net := NewInproc()
	a := net.Endpoint(types.ReplicaNode(0), 3, 16)
	b := net.Endpoint(types.ReplicaNode(1), 3, 16)
	defer a.Close()
	defer b.Close()

	if err := a.Send(env(types.ReplicaNode(0), types.ReplicaNode(1), "hello")); err != nil {
		t.Fatal(err)
	}
	idx := Classify(types.ReplicaNode(0), 3)
	select {
	case got := <-b.Inbox(idx):
		if string(got.Body) != "hello" {
			t.Fatalf("Body = %q", got.Body)
		}
	case <-time.After(time.Second):
		t.Fatal("delivery timed out")
	}
}

func TestInprocClientClassification(t *testing.T) {
	net := NewInproc()
	r := net.Endpoint(types.ReplicaNode(0), 3, 16)
	c := net.Endpoint(types.ClientNode(7), 1, 16)
	defer r.Close()
	defer c.Close()

	if err := c.Send(env(types.ClientNode(7), types.ReplicaNode(0), "req")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-r.Inbox(0):
		if string(got.Body) != "req" {
			t.Fatalf("Body = %q", got.Body)
		}
	case <-time.After(time.Second):
		t.Fatal("client request not in inbox 0")
	}
}

func TestInprocUnknownDestination(t *testing.T) {
	net := NewInproc()
	a := net.Endpoint(types.ReplicaNode(0), 1, 4)
	defer a.Close()
	if err := a.Send(env(types.ReplicaNode(0), types.ReplicaNode(9), "x")); err == nil {
		t.Fatal("send to unknown node succeeded")
	}
}

func TestInprocDownDropsSilently(t *testing.T) {
	net := NewInproc()
	a := net.Endpoint(types.ReplicaNode(0), 1, 4)
	b := net.Endpoint(types.ReplicaNode(1), 1, 4)
	defer a.Close()
	defer b.Close()

	net.SetDown(types.ReplicaNode(1), true)
	if err := a.Send(env(types.ReplicaNode(0), types.ReplicaNode(1), "x")); err != nil {
		t.Fatalf("send to downed node errored: %v", err)
	}
	select {
	case <-b.Inbox(0):
		t.Fatal("downed node received traffic")
	case <-time.After(50 * time.Millisecond):
	}
	// Recovery restores delivery.
	net.SetDown(types.ReplicaNode(1), false)
	if err := a.Send(env(types.ReplicaNode(0), types.ReplicaNode(1), "y")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Inbox(0):
	case <-time.After(time.Second):
		t.Fatal("recovered node got nothing")
	}
}

func TestInprocCloseClosesInboxes(t *testing.T) {
	net := NewInproc()
	a := net.Endpoint(types.ReplicaNode(0), 2, 4)
	a.Close()
	for i := 0; i < 2; i++ {
		if _, ok := <-a.Inbox(i); ok {
			t.Fatalf("inbox %d not closed", i)
		}
	}
	if err := a.Send(env(types.ReplicaNode(0), types.ReplicaNode(0), "x")); err == nil {
		t.Fatal("send on closed endpoint succeeded")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	addrs := make(map[types.NodeID]string)
	a, err := NewTCP(types.ReplicaNode(0), "127.0.0.1:0", addrs, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCP(types.ReplicaNode(1), "127.0.0.1:0", addrs, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.SetPeerAddr(types.ReplicaNode(1), b.Addr())
	b.SetPeerAddr(types.ReplicaNode(0), a.Addr())

	if err := a.Send(env(types.ReplicaNode(0), types.ReplicaNode(1), "over-tcp")); err != nil {
		t.Fatal(err)
	}
	idx := Classify(types.ReplicaNode(0), 2)
	select {
	case got := <-b.Inbox(idx):
		if string(got.Body) != "over-tcp" || got.From != types.ReplicaNode(0) {
			t.Fatalf("got %+v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("TCP delivery timed out")
	}

	// Bidirectional: reply over a fresh (lazily dialed) connection.
	if err := b.Send(env(types.ReplicaNode(1), types.ReplicaNode(0), "reply")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-a.Inbox(Classify(types.ReplicaNode(1), 2)):
		if string(got.Body) != "reply" {
			t.Fatalf("got %+v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("TCP reply timed out")
	}
}

func TestTCPManyFramesOrdered(t *testing.T) {
	addrs := make(map[types.NodeID]string)
	a, err := NewTCP(types.ReplicaNode(0), "127.0.0.1:0", addrs, 1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCP(types.ReplicaNode(1), "127.0.0.1:0", addrs, 1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.SetPeerAddr(types.ReplicaNode(1), b.Addr())

	const n = 500
	for i := 0; i < n; i++ {
		if err := a.Send(env(types.ReplicaNode(0), types.ReplicaNode(1), fmt.Sprintf("m%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case got := <-b.Inbox(0):
			if want := fmt.Sprintf("m%04d", i); string(got.Body) != want {
				t.Fatalf("frame %d = %q, want %q", i, got.Body, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("frame %d never arrived", i)
		}
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, err := NewTCP(types.ReplicaNode(0), "127.0.0.1:0", nil, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(env(types.ReplicaNode(0), types.ReplicaNode(5), "x")); err == nil {
		t.Fatal("send to unknown peer succeeded")
	}
}

func TestTCPCloseIsIdempotent(t *testing.T) {
	a, err := NewTCP(types.ReplicaNode(0), "127.0.0.1:0", nil, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	a.Close() // must not panic
	if err := a.Send(env(types.ReplicaNode(0), types.ReplicaNode(0), "x")); err == nil {
		t.Fatal("send after close succeeded")
	}
}

// Package transport is the network layer of the fabric (paper Figure 5).
//
// It moves signed envelopes between nodes and, crucially for the pipeline,
// classifies inbound traffic into multiple inboxes so a replica can
// dedicate one input-thread to client requests and share the remaining
// input-threads across replica traffic (Section 4.1). Two implementations
// are provided: an in-process network for single-machine clusters and
// tests, and a TCP network with length-prefixed frames for real
// deployments.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"resilientdb/internal/types"
)

// Errors returned by transports.
var (
	ErrClosed      = errors.New("transport: closed")
	ErrUnknownNode = errors.New("transport: unknown node")
)

// Classify routes an envelope to an inbox index: client traffic goes to
// inbox 0; replica traffic is spread across the remaining inboxes by
// sender so the load on replica input-threads stays balanced. With a
// single inbox everything lands in it.
func Classify(from types.NodeID, inboxes int) int {
	if inboxes <= 1 {
		return 0
	}
	if from.IsClient() {
		return 0
	}
	return 1 + int(uint32(from)%uint32(inboxes-1))
}

// Endpoint is one node's attachment to a network.
type Endpoint interface {
	// Self returns the node this endpoint belongs to.
	Self() types.NodeID
	// Send transmits the envelope to env.To.
	Send(env *types.Envelope) error
	// Inbox returns the i-th inbound channel. The channel closes when the
	// endpoint closes.
	Inbox(i int) <-chan *types.Envelope
	// Inboxes returns the number of inbound channels.
	Inboxes() int
	// Drops returns how many inbound envelopes were discarded because
	// their inbox was full. Inbox enqueues are non-blocking — BFT
	// protocols tolerate loss — but silent loss is undiagnosable, so
	// every drop is counted.
	Drops() uint64
	// Close detaches the endpoint and closes its inboxes.
	Close()
}

// Inproc is an in-process network connecting endpoints by channels.
// It is safe for concurrent use. Crashed nodes can be partitioned off
// with SetDown, which silently drops their traffic in both directions —
// exactly how the failure experiments of Section 5.10 crash backups.
type Inproc struct {
	mu        sync.RWMutex
	endpoints map[types.NodeID]*inprocEndpoint
	down      map[types.NodeID]bool
}

// NewInproc creates an empty in-process network.
func NewInproc() *Inproc {
	return &Inproc{
		endpoints: make(map[types.NodeID]*inprocEndpoint),
		down:      make(map[types.NodeID]bool),
	}
}

// Endpoint attaches a node with the given number of inboxes and per-inbox
// buffer capacity. Attaching an existing node replaces its endpoint.
func (n *Inproc) Endpoint(self types.NodeID, inboxes, capacity int) Endpoint {
	if inboxes < 1 {
		inboxes = 1
	}
	if capacity < 1 {
		capacity = 1024
	}
	ep := &inprocEndpoint{net: n, self: self}
	ep.inboxes = make([]chan *types.Envelope, inboxes)
	for i := range ep.inboxes {
		ep.inboxes[i] = make(chan *types.Envelope, capacity)
	}
	n.mu.Lock()
	n.endpoints[self] = ep
	n.mu.Unlock()
	return ep
}

// SetDown marks a node crashed (true) or recovered (false).
func (n *Inproc) SetDown(node types.NodeID, down bool) {
	n.mu.Lock()
	n.down[node] = down
	n.mu.Unlock()
}

// deliver routes an envelope to its destination, dropping traffic from or
// to downed nodes.
func (n *Inproc) deliver(env *types.Envelope) error {
	n.mu.RLock()
	if n.down[env.From] || n.down[env.To] {
		n.mu.RUnlock()
		env.Release() // the drop is this envelope's terminal point
		return nil    // silently dropped, like a dead host
	}
	ep, ok := n.endpoints[env.To]
	n.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownNode, env.To)
	}
	ep.receive(env)
	return nil
}

type inprocEndpoint struct {
	net     *Inproc
	self    types.NodeID
	inboxes []chan *types.Envelope
	drops   atomic.Uint64

	mu     sync.RWMutex
	closed bool
}

var _ Endpoint = (*inprocEndpoint)(nil)

// Self implements Endpoint.
func (e *inprocEndpoint) Self() types.NodeID { return e.self }

// Send implements Endpoint.
func (e *inprocEndpoint) Send(env *types.Envelope) error {
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	return e.net.deliver(env)
}

// receive pushes an inbound envelope to the classified inbox, blocking
// when the inbox is full (backpressure) unless the endpoint closed.
func (e *inprocEndpoint) receive(env *types.Envelope) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		env.Release()
		return
	}
	idx := Classify(env.From, len(e.inboxes))
	// Drop-on-full keeps a slow replica from deadlocking the cluster; BFT
	// protocols tolerate message loss by design (clients retransmit).
	select {
	case e.inboxes[idx] <- env:
		// Ownership moves to the inbox consumer, which releases it.
	default:
		e.drops.Add(1)
		env.Release()
	}
}

// Inbox implements Endpoint.
func (e *inprocEndpoint) Inbox(i int) <-chan *types.Envelope { return e.inboxes[i] }

// Inboxes implements Endpoint.
func (e *inprocEndpoint) Inboxes() int { return len(e.inboxes) }

// Drops implements Endpoint.
func (e *inprocEndpoint) Drops() uint64 { return e.drops.Load() }

// Close implements Endpoint.
func (e *inprocEndpoint) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	for _, ch := range e.inboxes {
		close(ch)
	}
	e.net.mu.Lock()
	if e.net.endpoints[e.self] == e {
		delete(e.net.endpoints, e.self)
	}
	e.net.mu.Unlock()
}

package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"resilientdb/internal/types"
)

// newTCPPair wires two endpoints a → b with the given batching config
// applied to the sender.
func newTCPPair(t *testing.T, cfg TCPConfig) (a, b *TCPEndpoint) {
	t.Helper()
	cfg.Self = types.ReplicaNode(0)
	cfg.ListenAddr = "127.0.0.1:0"
	a, err := NewTCPWithConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	b, err = NewTCP(types.ReplicaNode(1), "127.0.0.1:0", nil, 1, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	a.SetPeerAddr(types.ReplicaNode(1), b.Addr())
	b.SetPeerAddr(types.ReplicaNode(0), a.Addr())
	return a, b
}

func recvN(t *testing.T, ep *TCPEndpoint, n int, timeout time.Duration) []*types.Envelope {
	t.Helper()
	got := make([]*types.Envelope, 0, n)
	deadline := time.After(timeout)
	for len(got) < n {
		select {
		case env := <-ep.Inbox(0):
			got = append(got, env)
		case <-deadline:
			t.Fatalf("received %d/%d envelopes before timeout", len(got), n)
		}
	}
	return got
}

// TestTCPBatchedDeliveryOrdered drives the batched path hard enough that
// multi-envelope frames form, and checks nothing is lost or reordered.
func TestTCPBatchedDeliveryOrdered(t *testing.T) {
	a, b := newTCPPair(t, TCPConfig{Inboxes: 1, Capacity: 1 << 14, BatchMax: 16, Linger: 200 * time.Microsecond})
	const n = 2000
	go func() {
		for i := 0; i < n; i++ {
			_ = a.Send(env(types.ReplicaNode(0), types.ReplicaNode(1), fmt.Sprintf("m%05d", i)))
		}
	}()
	got := recvN(t, b, n, 5*time.Second)
	for i, e := range got {
		if want := fmt.Sprintf("m%05d", i); string(e.Body) != want {
			t.Fatalf("envelope %d = %q, want %q", i, e.Body, want)
		}
	}
}

// TestTCPFlushOnClose queues envelopes into a writer configured with a
// linger far longer than the test, then closes the sender: the lingering
// partial batch must be flushed, not dropped.
func TestTCPFlushOnClose(t *testing.T) {
	a, b := newTCPPair(t, TCPConfig{Inboxes: 1, Capacity: 1 << 10, BatchMax: 1024, Linger: time.Minute})
	const n = 3
	for i := 0; i < n; i++ {
		if err := a.Send(env(types.ReplicaNode(0), types.ReplicaNode(1), fmt.Sprintf("f%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	got := recvN(t, b, n, 5*time.Second)
	for i, e := range got {
		if want := fmt.Sprintf("f%d", i); string(e.Body) != want {
			t.Fatalf("envelope %d = %q, want %q", i, e.Body, want)
		}
	}
}

// TestTCPConcurrentSendAndHello hammers one connection from many
// goroutines mixing Send and Hello. Before writes were serialized through
// the per-peer writer this interleaved partial frames; now every envelope
// must arrive intact (run under -race to check the synchronization too).
func TestTCPConcurrentSendAndHello(t *testing.T) {
	a, b := newTCPPair(t, TCPConfig{Inboxes: 1, Capacity: 1 << 14, BatchMax: 8})
	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if i%50 == 0 {
					if err := a.Hello(types.ReplicaNode(1)); err != nil {
						t.Errorf("hello: %v", err)
						return
					}
				}
				if err := a.Send(env(types.ReplicaNode(0), types.ReplicaNode(1), fmt.Sprintf("g%dm%03d", g, i))); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	got := recvN(t, b, goroutines*perG, 10*time.Second)
	seen := make(map[string]bool, len(got))
	for _, e := range got {
		if e.Type != types.MsgPrepare {
			t.Fatalf("corrupted envelope type %d", e.Type)
		}
		if seen[string(e.Body)] {
			t.Fatalf("duplicate envelope %q", e.Body)
		}
		seen[string(e.Body)] = true
	}
}

// TestTCPDropCounter overloads a tiny inbox without draining it and
// checks every discarded envelope is accounted for.
func TestTCPDropCounter(t *testing.T) {
	a, b := newTCPPair(t, TCPConfig{Inboxes: 1, Capacity: 1 << 10, BatchMax: 4})
	// b's inbox holds 1<<14; rebuild b with capacity 1 instead.
	b.Close()
	b2, err := NewTCP(types.ReplicaNode(1), "127.0.0.1:0", nil, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b2.Close)
	a.SetPeerAddr(types.ReplicaNode(1), b2.Addr())

	const n = 64
	for i := 0; i < n; i++ {
		if err := a.Send(env(types.ReplicaNode(0), types.ReplicaNode(1), fmt.Sprintf("d%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		// Stable accounting: everything sent is either queued (1) or dropped.
		if got := b2.Drops(); got+uint64(len(b2.Inbox(0))) == n {
			if got == 0 {
				t.Fatal("expected drops with a capacity-1 inbox")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("drops=%d queued=%d, want them to sum to %d", b2.Drops(), len(b2.Inbox(0)), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTCPUnbatchedConfig checks BatchMax=1 still delivers correctly (the
// per-envelope baseline the benchmarks compare against).
func TestTCPUnbatchedConfig(t *testing.T) {
	a, b := newTCPPair(t, TCPConfig{Inboxes: 1, Capacity: 1 << 12, BatchMax: 1})
	const n = 100
	go func() {
		for i := 0; i < n; i++ {
			_ = a.Send(env(types.ReplicaNode(0), types.ReplicaNode(1), fmt.Sprintf("u%03d", i)))
		}
	}()
	got := recvN(t, b, n, 5*time.Second)
	for i, e := range got {
		if want := fmt.Sprintf("u%03d", i); string(e.Body) != want {
			t.Fatalf("envelope %d = %q, want %q", i, e.Body, want)
		}
	}
}

package transport

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"resilientdb/internal/types"
)

// newZeroCopyPair wires sender a → receiver b with the receiver running
// the pooled zero-copy decode path.
func newZeroCopyPair(t *testing.T, cfg TCPConfig) (a, b *TCPEndpoint) {
	t.Helper()
	cfg.Self = types.ReplicaNode(0)
	cfg.ListenAddr = "127.0.0.1:0"
	a, err := NewTCPWithConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	b, err = NewTCPWithConfig(TCPConfig{
		Self:       types.ReplicaNode(1),
		ListenAddr: "127.0.0.1:0",
		Inboxes:    1,
		Capacity:   1 << 14,
		ZeroCopy:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	a.SetPeerAddr(types.ReplicaNode(1), b.Addr())
	b.SetPeerAddr(types.ReplicaNode(0), a.Addr())
	return a, b
}

// TestTCPZeroCopyBlast drives batched traffic through a zero-copy
// receiver: bodies are inspected and copied before each envelope is
// released (recycling its frame arena), and the copies must stay intact
// while later frames reuse the pooled buffers. Run under -race this
// exercises the arena handoff between the read loop and the consumer.
func TestTCPZeroCopyBlast(t *testing.T) {
	a, b := newZeroCopyPair(t, TCPConfig{Inboxes: 1, Capacity: 1 << 14, BatchMax: 16, Linger: 200 * time.Microsecond})
	const n = 4000
	filler := strings.Repeat("z", 200)
	go func() {
		for i := 0; i < n; i++ {
			_ = a.Send(env(types.ReplicaNode(0), types.ReplicaNode(1), fmt.Sprintf("m%05d-%s", i, filler)))
		}
	}()

	bodies := make([]string, 0, n)
	deadline := time.After(10 * time.Second)
	for len(bodies) < n {
		select {
		case e := <-b.Inbox(0):
			// Copy out, then retire: the frame buffer behind e.Body goes
			// back to the pool and may be overwritten by the next frame.
			bodies = append(bodies, string(e.Body))
			e.Release()
		case <-deadline:
			t.Fatalf("received %d/%d envelopes before timeout", len(bodies), n)
		}
	}
	for i, got := range bodies {
		if want := fmt.Sprintf("m%05d-%s", i, filler); got != want {
			t.Fatalf("envelope %d = %q, want %q", i, got[:16], want[:16])
		}
	}
	if hits, misses := b.FramePoolStats(); hits+misses == 0 {
		t.Fatal("frame pool untouched; zero-copy decode is not engaged")
	}

	// Reuse phase: one frame in flight at a time, each released before the
	// next is sent, so the read loop must find recycled buffers. (During
	// the blast the reader can outrun the consumer and legitimately miss
	// on every Get — the inbox buffers thousands of unreleased frames.)
	hits0, _ := b.FramePoolStats()
	for i := 0; i < 50; i++ {
		if err := a.Send(env(types.ReplicaNode(0), types.ReplicaNode(1), fmt.Sprintf("p%02d-%s", i, filler))); err != nil {
			t.Fatal(err)
		}
		select {
		case e := <-b.Inbox(0):
			if want := fmt.Sprintf("p%02d-%s", i, filler); string(e.Body) != want {
				t.Fatalf("ping %d = %q, want %q", i, e.Body[:8], want[:8])
			}
			e.Release()
		case <-time.After(5 * time.Second):
			t.Fatalf("ping %d never arrived", i)
		}
	}
	if hits, misses := b.FramePoolStats(); hits == hits0 {
		t.Fatalf("frame pool never hit across 50 release-then-send rounds (hits=%d misses=%d)", hits, misses)
	}
}

// TestTCPZeroCopyRetainedDecode checks the property the replica pipeline
// depends on: a message copy-decoded from a pooled envelope survives the
// envelope's release and any amount of later traffic reusing the arena.
func TestTCPZeroCopyRetainedDecode(t *testing.T) {
	a, b := newZeroCopyPair(t, TCPConfig{Inboxes: 1, Capacity: 1 << 12, BatchMax: 8, Linger: 200 * time.Microsecond})

	payload := strings.Repeat("retained-payload-", 16)
	first := &types.ClientRequest{
		Client:   3,
		FirstSeq: 11,
		Txns:     []types.Transaction{{Ops: []types.Op{{Kind: types.OpWrite, Key: 8, Value: []byte(payload)}}}},
		Sig:      []byte("sig-retained"),
	}
	if err := a.Send(&types.Envelope{
		From: types.ClientNode(3), To: types.ReplicaNode(1),
		Type: types.MsgClientRequest, Body: types.MarshalBody(first),
		Auth: []byte("auth-retained"),
	}); err != nil {
		t.Fatal(err)
	}

	var decoded *types.ClientRequest
	var auth []byte
	select {
	case e := <-b.Inbox(0):
		m, err := types.DecodeBody(e.Type, e.Body)
		if err != nil {
			t.Fatal(err)
		}
		decoded = m.(*types.ClientRequest)
		auth = e.Auth // decode copies Auth: engines retain it past release
		e.Release()
	case <-time.After(5 * time.Second):
		t.Fatal("first envelope never arrived")
	}

	// Churn the arena pool with enough traffic to recycle the first frame's
	// buffer many times over.
	const churn = 500
	go func() {
		for i := 0; i < churn; i++ {
			_ = a.Send(env(types.ReplicaNode(0), types.ReplicaNode(1), strings.Repeat("x", 300)))
		}
	}()
	for i := 0; i < churn; i++ {
		select {
		case e := <-b.Inbox(0):
			e.Release()
		case <-time.After(10 * time.Second):
			t.Fatalf("churn envelope %d never arrived", i)
		}
	}

	if string(decoded.Txns[0].Ops[0].Value) != payload {
		t.Fatal("copy-decoded message mutated after its frame buffer was recycled")
	}
	if string(auth) != "auth-retained" {
		t.Fatal("envelope Auth mutated after its frame buffer was recycled")
	}
}

package transport

import (
	"fmt"
	"net"
	"sync"

	"resilientdb/internal/types"
)

// TCPEndpoint attaches a node to the network over TCP with
// length-prefixed envelope frames (types.WriteFrame / types.ReadFrame).
// Outbound connections are dialed lazily per destination and reused;
// inbound connections are accepted continuously and drained into the
// classified inboxes.
type TCPEndpoint struct {
	self    types.NodeID
	addrs   map[types.NodeID]string
	ln      net.Listener
	inboxes []chan *types.Envelope

	mu       sync.Mutex
	conns    map[types.NodeID]net.Conn
	accepted map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup
}

var _ Endpoint = (*TCPEndpoint)(nil)

// NewTCP creates a TCP endpoint listening on listenAddr. addrs maps every
// peer (and may include self) to its dialable address. Inbound frames are
// spread over the given number of inboxes.
func NewTCP(self types.NodeID, listenAddr string, addrs map[types.NodeID]string, inboxes, capacity int) (*TCPEndpoint, error) {
	if inboxes < 1 {
		inboxes = 1
	}
	if capacity < 1 {
		capacity = 1024
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	e := &TCPEndpoint{
		self:     self,
		addrs:    make(map[types.NodeID]string, len(addrs)),
		ln:       ln,
		conns:    make(map[types.NodeID]net.Conn),
		accepted: make(map[net.Conn]bool),
	}
	for k, v := range addrs {
		e.addrs[k] = v
	}
	e.inboxes = make([]chan *types.Envelope, inboxes)
	for i := range e.inboxes {
		e.inboxes[i] = make(chan *types.Envelope, capacity)
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr returns the endpoint's bound listen address (useful with ":0").
func (e *TCPEndpoint) Addr() string { return e.ln.Addr().String() }

// SetPeerAddr registers or updates a peer's dialable address. It supports
// bootstrap flows where nodes bind ephemeral ports first and exchange
// addresses afterwards.
func (e *TCPEndpoint) SetPeerAddr(node types.NodeID, addr string) {
	e.mu.Lock()
	e.addrs[node] = addr
	e.mu.Unlock()
}

// Hello dials the peer (if needed) and sends a transport-level hello
// frame, teaching the peer a return path to this endpoint. Clients, which
// have no listener the replicas could know about, call this for every
// replica before submitting requests so that responses can flow back over
// the client-initiated connections.
func (e *TCPEndpoint) Hello(to types.NodeID) error {
	conn, err := e.conn(to)
	if err != nil {
		return err
	}
	env := &types.Envelope{From: e.self, To: to, Type: 0}
	if err := types.WriteFrame(conn, env); err != nil {
		e.dropConn(to, conn)
		return fmt.Errorf("transport: hello to %v: %w", to, err)
	}
	return nil
}

// Self implements Endpoint.
func (e *TCPEndpoint) Self() types.NodeID { return e.self }

// Inbox implements Endpoint.
func (e *TCPEndpoint) Inbox(i int) <-chan *types.Envelope { return e.inboxes[i] }

// Inboxes implements Endpoint.
func (e *TCPEndpoint) Inboxes() int { return len(e.inboxes) }

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			conn.Close()
			return
		}
		e.accepted[conn] = true
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

func (e *TCPEndpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer func() {
		e.mu.Lock()
		delete(e.accepted, conn)
		e.mu.Unlock()
		conn.Close()
	}()
	for {
		env, err := types.ReadFrame(conn)
		if err != nil {
			return
		}
		e.mu.Lock()
		closed := e.closed
		if !closed {
			// Learn the return path: replies to this peer can reuse the
			// inbound connection, which is how replicas answer clients
			// that have no listener of their own.
			if _, ok := e.conns[env.From]; !ok {
				e.conns[env.From] = conn
			}
		}
		e.mu.Unlock()
		if closed {
			return
		}
		if env.Type == 0 {
			// Hello frame: its only job was to teach us the return path.
			continue
		}
		idx := Classify(env.From, len(e.inboxes))
		// Non-blocking like Inproc: BFT protocols tolerate drops.
		select {
		case e.inboxes[idx] <- env:
		default:
		}
	}
}

// Send implements Endpoint. Connections are cached; a send error tears the
// cached connection down so the next send re-dials (peer restarts).
func (e *TCPEndpoint) Send(env *types.Envelope) error {
	conn, err := e.conn(env.To)
	if err != nil {
		return err
	}
	if err := types.WriteFrame(conn, env); err != nil {
		e.dropConn(env.To, conn)
		return fmt.Errorf("transport: send to %v: %w", env.To, err)
	}
	return nil
}

func (e *TCPEndpoint) conn(to types.NodeID) (net.Conn, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	if c, ok := e.conns[to]; ok {
		return c, nil
	}
	addr, ok := e.addrs[to]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownNode, to)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %v at %s: %w", to, addr, err)
	}
	e.conns[to] = c
	// Connections are full duplex: the peer may reply over this very
	// connection (it learns the return path from our frames), so every
	// dialed connection gets a reader too.
	e.wg.Add(1)
	go e.readLoop(c)
	return c, nil
}

func (e *TCPEndpoint) dropConn(to types.NodeID, conn net.Conn) {
	e.mu.Lock()
	if e.conns[to] == conn {
		delete(e.conns, to)
	}
	e.mu.Unlock()
	conn.Close()
}

// Close implements Endpoint.
func (e *TCPEndpoint) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	for _, c := range e.conns {
		c.Close()
	}
	for c := range e.accepted {
		c.Close()
	}
	e.conns = make(map[types.NodeID]net.Conn)
	e.mu.Unlock()

	e.ln.Close()
	e.wg.Wait()
	for _, ch := range e.inboxes {
		close(ch)
	}
}

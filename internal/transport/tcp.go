package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"resilientdb/internal/pool"
	"resilientdb/internal/types"
)

// Batching defaults. Batching exists because the per-envelope syscall is
// the transport's dominant cost at high throughput ("What Blocks My
// Blockchain's Throughput?" finds per-message serialization alongside
// signature verification as the top bottlenecks): coalescing queued
// envelopes into one batch frame amortizes the length prefix and, more
// importantly, the Write call across the whole batch.
const (
	// DefaultBatchMax is the default maximum number of envelopes per
	// batch frame.
	DefaultBatchMax = 64
	// DefaultBatchBytes is the default encoded-size threshold that
	// flushes a batch early.
	DefaultBatchBytes = 64 << 10
	// peerQueueCap is the depth of a replica peer's outbound queue;
	// senders block (backpressure) when the writer falls this far behind.
	peerQueueCap = 4096
	// clientQueueCap is the depth of a client peer's outbound queue.
	// A replica answers each client with ~one response per in-flight
	// request, so a deep queue would only waste memory across the tens of
	// thousands of client connections a deployment can carry.
	clientQueueCap = 64
	// closeFlushTimeout bounds how long Close waits for a stalled peer to
	// accept the final flush.
	closeFlushTimeout = 2 * time.Second
)

// TCPConfig parameterizes a TCPEndpoint.
type TCPConfig struct {
	// Self is the node this endpoint belongs to; ListenAddr its listen
	// address (":0" picks an ephemeral port).
	Self       types.NodeID
	ListenAddr string
	// Addrs maps peers (may include self) to dialable addresses; more can
	// be added later with SetPeerAddr.
	Addrs map[types.NodeID]string
	// Inboxes is the number of classified inbound channels; Capacity the
	// per-inbox buffer.
	Inboxes  int
	Capacity int
	// BatchMax is the maximum number of envelopes coalesced into one
	// batch frame. 0 means DefaultBatchMax; 1 disables batching (every
	// envelope travels in its own frame, still serialized through the
	// peer's writer goroutine).
	BatchMax int
	// BatchBytes flushes a batch once its encoded size reaches this
	// threshold, bounding frame size independently of BatchMax. 0 means
	// DefaultBatchBytes.
	BatchBytes int
	// Linger is how long a writer waits for more envelopes before
	// flushing a partial batch. 0 flushes as soon as the outbound queue
	// is momentarily empty: under load batches still fill (the queue
	// outpaces the writer), while an idle connection pays no added
	// latency. Positive values trade latency for fuller batches.
	Linger time.Duration
	// ZeroCopy switches the receive path to pooled zero-copy decode
	// (Section 4.8 buffer-pool management): frame buffers come from a
	// per-endpoint pool, decoded envelopes alias them, and the buffer
	// returns to the pool when every consumer has called Release on its
	// envelope. Consumers that never Release only forfeit reuse — the
	// buffer falls to the garbage collector — so the mode is safe with
	// release-unaware receivers, just not profitable.
	ZeroCopy bool
}

func (c *TCPConfig) fill() {
	if c.Inboxes < 1 {
		c.Inboxes = 1
	}
	if c.Capacity < 1 {
		c.Capacity = 1024
	}
	if c.BatchMax == 0 {
		c.BatchMax = DefaultBatchMax
	}
	if c.BatchMax < 1 {
		c.BatchMax = 1
	}
	if c.BatchBytes < 1 {
		c.BatchBytes = DefaultBatchBytes
	}
}

// tcpPeer is one live connection plus the writer goroutine that owns its
// write side. Routing every write (Send and Hello alike) through the
// writer serializes frame writes — concurrent WriteFrame calls on a shared
// connection could interleave partial frames and corrupt the stream — and
// is where outbound batching happens.
type tcpPeer struct {
	conn net.Conn
	out  chan *types.Envelope
	dead chan struct{} // closed when the writer exits; senders stop blocking
}

// TCPEndpoint attaches a node to the network over TCP with
// length-prefixed envelope frames (single and batch, see types.ReadFrames).
// Outbound connections are dialed lazily per destination and reused;
// inbound connections are accepted continuously and drained into the
// classified inboxes.
type TCPEndpoint struct {
	cfg     TCPConfig
	self    types.NodeID
	ln      net.Listener
	inboxes []chan *types.Envelope
	drops   atomic.Uint64
	frames  *pool.BytePool // inbound frame arenas; nil unless ZeroCopy

	mu       sync.Mutex
	addrs    map[types.NodeID]string
	peers    map[types.NodeID]*tcpPeer
	accepted map[net.Conn]bool
	closed   bool

	stopW   chan struct{} // tells writers to flush what is queued and exit
	writeWg sync.WaitGroup
	readWg  sync.WaitGroup // accept loop and read loops
}

var _ Endpoint = (*TCPEndpoint)(nil)

// NewTCP creates a TCP endpoint listening on listenAddr with default
// batching. addrs maps every peer (and may include self) to its dialable
// address. Inbound frames are spread over the given number of inboxes.
func NewTCP(self types.NodeID, listenAddr string, addrs map[types.NodeID]string, inboxes, capacity int) (*TCPEndpoint, error) {
	return NewTCPWithConfig(TCPConfig{
		Self:       self,
		ListenAddr: listenAddr,
		Addrs:      addrs,
		Inboxes:    inboxes,
		Capacity:   capacity,
	})
}

// NewTCPWithConfig creates a TCP endpoint with explicit batching knobs.
func NewTCPWithConfig(cfg TCPConfig) (*TCPEndpoint, error) {
	cfg.fill()
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.ListenAddr, err)
	}
	e := &TCPEndpoint{
		cfg:      cfg,
		self:     cfg.Self,
		ln:       ln,
		addrs:    make(map[types.NodeID]string, len(cfg.Addrs)),
		peers:    make(map[types.NodeID]*tcpPeer),
		accepted: make(map[net.Conn]bool),
		stopW:    make(chan struct{}),
	}
	if cfg.ZeroCopy {
		e.frames = new(pool.BytePool)
	}
	for k, v := range cfg.Addrs {
		e.addrs[k] = v
	}
	e.inboxes = make([]chan *types.Envelope, cfg.Inboxes)
	for i := range e.inboxes {
		e.inboxes[i] = make(chan *types.Envelope, cfg.Capacity)
	}
	e.readWg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr returns the endpoint's bound listen address (useful with ":0").
func (e *TCPEndpoint) Addr() string { return e.ln.Addr().String() }

// SetPeerAddr registers or updates a peer's dialable address. It supports
// bootstrap flows where nodes bind ephemeral ports first and exchange
// addresses afterwards.
func (e *TCPEndpoint) SetPeerAddr(node types.NodeID, addr string) {
	e.mu.Lock()
	e.addrs[node] = addr
	e.mu.Unlock()
}

// Hello dials the peer (if needed) and sends a transport-level hello
// frame, teaching the peer a return path to this endpoint. Clients, which
// have no listener the replicas could know about, call this for every
// replica before submitting requests so that responses can flow back over
// the client-initiated connections.
func (e *TCPEndpoint) Hello(to types.NodeID) error {
	p, err := e.peer(to)
	if err != nil {
		return err
	}
	env := &types.Envelope{From: e.self, To: to, Type: 0}
	select {
	case p.out <- env:
		return nil
	case <-p.dead:
		return fmt.Errorf("transport: hello to %v: %w", to, ErrClosed)
	}
}

// Self implements Endpoint.
func (e *TCPEndpoint) Self() types.NodeID { return e.self }

// Inbox implements Endpoint.
func (e *TCPEndpoint) Inbox(i int) <-chan *types.Envelope { return e.inboxes[i] }

// Inboxes implements Endpoint.
func (e *TCPEndpoint) Inboxes() int { return len(e.inboxes) }

// Drops implements Endpoint: envelopes discarded because their inbox was
// full when they arrived.
func (e *TCPEndpoint) Drops() uint64 { return e.drops.Load() }

// FramePoolStats returns the inbound frame pool's cumulative hit and miss
// counts. Both are zero when ZeroCopy is off.
func (e *TCPEndpoint) FramePoolStats() (hits, misses uint64) {
	if e.frames == nil {
		return 0, 0
	}
	return e.frames.Stats()
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.readWg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			conn.Close()
			return
		}
		e.accepted[conn] = true
		e.mu.Unlock()
		e.readWg.Add(1)
		go e.readLoop(conn)
	}
}

func (e *TCPEndpoint) readLoop(conn net.Conn) {
	defer e.readWg.Done()
	defer func() {
		e.mu.Lock()
		delete(e.accepted, conn)
		e.mu.Unlock()
		conn.Close()
	}()
	for {
		var envs []*types.Envelope
		var err error
		if e.frames != nil {
			envs, err = types.ReadFramesPooled(conn, e.frames)
		} else {
			envs, err = types.ReadFrames(conn)
		}
		if err != nil {
			return
		}
		if len(envs) == 0 {
			continue
		}
		// Learn return paths once per frame: replies to these peers can
		// reuse the inbound connection, which is how replicas answer
		// clients that have no listener of their own.
		e.mu.Lock()
		closed := e.closed
		if !closed {
			for _, env := range envs {
				if _, ok := e.peers[env.From]; !ok {
					e.addPeerLocked(env.From, conn)
				}
			}
		}
		e.mu.Unlock()
		if closed {
			for _, env := range envs {
				env.Release()
			}
			return
		}
		for _, env := range envs {
			if env.Type == 0 {
				// Hello frame: its only job was to teach us the return path.
				env.Release()
				continue
			}
			idx := Classify(env.From, len(e.inboxes))
			// Non-blocking like Inproc: BFT protocols tolerate drops, but
			// each drop is counted so overload is observable.
			select {
			case e.inboxes[idx] <- env:
				// Ownership moves to the inbox consumer, which releases it.
			default:
				e.drops.Add(1)
				env.Release()
			}
		}
	}
}

// Send implements Endpoint. The envelope is queued on the destination
// peer's writer, which owns the connection's write side; callers must not
// mutate env after Send returns. Connections are cached; a write error
// tears the cached connection down so the next send re-dials (peer
// restarts).
func (e *TCPEndpoint) Send(env *types.Envelope) error {
	p, err := e.peer(env.To)
	if err != nil {
		return err
	}
	select {
	case p.out <- env:
		return nil
	case <-p.dead:
		return fmt.Errorf("transport: send to %v: %w", env.To, ErrClosed)
	}
}

// peer returns the live peer for a destination, dialing a connection and
// starting its writer on first use.
func (e *TCPEndpoint) peer(to types.NodeID) (*tcpPeer, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	if p, ok := e.peers[to]; ok {
		e.mu.Unlock()
		return p, nil
	}
	addr, ok := e.addrs[to]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownNode, to)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %v at %s: %w", to, addr, err)
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		conn.Close()
		return nil, ErrClosed
	}
	if p, ok := e.peers[to]; ok {
		// Lost a dial race (or the peer dialed us first); keep the
		// established peer.
		e.mu.Unlock()
		conn.Close()
		return p, nil
	}
	p := e.addPeerLocked(to, conn)
	// Connections are full duplex: the peer may reply over this very
	// connection (it learns the return path from our frames), so every
	// dialed connection gets a reader too.
	e.readWg.Add(1)
	go e.readLoop(conn)
	e.mu.Unlock()
	return p, nil
}

// addPeerLocked registers a connection as the path to a peer and starts
// its writer goroutine. Callers hold e.mu and have checked !e.closed.
func (e *TCPEndpoint) addPeerLocked(to types.NodeID, conn net.Conn) *tcpPeer {
	depth := peerQueueCap
	if to.IsClient() {
		depth = clientQueueCap
	}
	p := &tcpPeer{
		conn: conn,
		out:  make(chan *types.Envelope, depth),
		dead: make(chan struct{}),
	}
	e.peers[to] = p
	e.writeWg.Add(1)
	go e.writeLoop(to, p)
	return p
}

// writeLoop is a peer's writer: it drains the outbound queue, coalesces
// what it finds into batch frames, and writes each frame with a single
// Write call.
func (e *TCPEndpoint) writeLoop(to types.NodeID, p *tcpPeer) {
	defer e.writeWg.Done()
	defer close(p.dead)
	var w types.Writer
	batch := make([]*types.Envelope, 0, e.cfg.BatchMax)
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		select {
		case env := <-p.out:
			batch = append(batch[:0], env)
		case <-e.stopW:
			e.flushRemaining(to, p, &w)
			return
		}
		size := batch[0].EncodedSize()

		// Collect more envelopes: greedily while the queue is non-empty,
		// and — with a positive Linger — by waiting out the linger window
		// for a fuller batch.
		var lingerC <-chan time.Time
		if e.cfg.Linger > 0 && e.cfg.BatchMax > 1 {
			if timer == nil {
				timer = time.NewTimer(e.cfg.Linger)
			} else {
				timer.Reset(e.cfg.Linger)
			}
			lingerC = timer.C
		}
		stopping := false
	collect:
		for len(batch) < e.cfg.BatchMax && size < e.cfg.BatchBytes {
			if lingerC != nil {
				select {
				case env := <-p.out:
					batch = append(batch, env)
					size += env.EncodedSize()
				case <-lingerC:
					lingerC = nil
					break collect
				case <-e.stopW:
					stopping = true
					break collect
				}
			} else {
				select {
				case env := <-p.out:
					batch = append(batch, env)
					size += env.EncodedSize()
				default:
					break collect
				}
			}
		}
		if lingerC != nil && !timer.Stop() {
			<-timer.C // already fired: drain so the next Reset is safe
		}
		if !e.writeBatch(to, p, &w, batch) {
			return
		}
		batch = batch[:0]
		if stopping {
			e.flushRemaining(to, p, &w)
			return
		}
	}
}

// writeBatch encodes the batch as one frame — single-envelope framing for
// a batch of one — and writes it with a single Write call. On error the
// peer is torn down and false is returned. Either way the writer is the
// envelopes' final owner and releases them; envelopes still queued behind
// a failed write are left for the garbage collector.
func (e *TCPEndpoint) writeBatch(to types.NodeID, p *tcpPeer, w *types.Writer, batch []*types.Envelope) bool {
	if len(batch) == 0 {
		return true
	}
	w.Reset()
	if len(batch) == 1 {
		types.AppendFrame(w, batch[0])
	} else {
		types.AppendBatchFrame(w, batch)
	}
	_, err := p.conn.Write(w.Bytes())
	for _, env := range batch {
		env.Release()
	}
	if err != nil {
		e.dropPeer(to, p)
		return false
	}
	return true
}

// flushRemaining drains whatever is still queued at shutdown and writes it
// out, so a lingering partial batch is not lost on Close.
func (e *TCPEndpoint) flushRemaining(to types.NodeID, p *tcpPeer, w *types.Writer) {
	batch := make([]*types.Envelope, 0, e.cfg.BatchMax)
	for {
		batch = batch[:0]
	drain:
		for len(batch) < e.cfg.BatchMax {
			select {
			case env := <-p.out:
				batch = append(batch, env)
			default:
				break drain
			}
		}
		if len(batch) == 0 {
			return
		}
		if !e.writeBatch(to, p, w, batch) {
			return
		}
	}
}

// dropPeer tears a failed peer down: the next Send re-dials.
func (e *TCPEndpoint) dropPeer(to types.NodeID, p *tcpPeer) {
	e.mu.Lock()
	if e.peers[to] == p {
		delete(e.peers, to)
	}
	e.mu.Unlock()
	p.conn.Close()
}

// Close implements Endpoint. Queued envelopes are flushed to their peers
// before connections come down.
func (e *TCPEndpoint) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	for _, p := range e.peers {
		// Bound the final flush: a stalled peer cannot hold Close hostage.
		_ = p.conn.SetWriteDeadline(time.Now().Add(closeFlushTimeout))
	}
	e.mu.Unlock()

	close(e.stopW)
	e.writeWg.Wait()

	e.mu.Lock()
	for _, p := range e.peers {
		p.conn.Close()
	}
	for c := range e.accepted {
		c.Close()
	}
	e.peers = make(map[types.NodeID]*tcpPeer)
	e.mu.Unlock()

	e.ln.Close()
	e.readWg.Wait()
	for _, ch := range e.inboxes {
		close(ch)
	}
}

package workload

import (
	"math/rand"
	"testing"

	"resilientdb/internal/store"
	"resilientdb/internal/types"
)

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{"default ok", func(c *Config) {}, false},
		{"zero records", func(c *Config) { c.Records = 0 }, true},
		{"zero ops", func(c *Config) { c.OpsPerTxn = 0 }, true},
		{"negative value size", func(c *Config) { c.ValueSize = -1 }, true},
		{"bad distribution", func(c *Config) { c.Distribution = 99 }, true},
		{"uniform ok", func(c *Config) { c.Distribution = Uniform }, false},
		{"read fraction ok", func(c *Config) { c.ReadFraction = 0.5 }, false},
		{"read fraction one", func(c *Config) { c.ReadFraction = 1 }, false},
		{"read fraction disabled", func(c *Config) { c.ReadFraction = -1 }, false},
		{"read fraction too big", func(c *Config) { c.ReadFraction = 1.5 }, true},
		{"read fraction too small", func(c *Config) { c.ReadFraction = -0.5 }, true},
		{"preset a", func(c *Config) { c.Preset = "a" }, false},
		{"preset b", func(c *Config) { c.Preset = "b" }, false},
		{"preset c", func(c *Config) { c.Preset = "c" }, false},
		{"bad preset", func(c *Config) { c.Preset = "d" }, true},
		{"preset vs explicit mix", func(c *Config) { c.Preset = "a"; c.ReadFraction = 0.2 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := Default()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err != nil) != tt.wantErr {
				t.Fatalf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestTransactionShape(t *testing.T) {
	cfg := Default()
	cfg.OpsPerTxn = 5
	cfg.ValueSize = 32
	cfg.PayloadSize = 128
	w, err := New(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	txn := w.NextTransaction(3, 42)
	if txn.Client != 3 || txn.ClientSeq != 42 {
		t.Fatalf("identity = (%d,%d)", txn.Client, txn.ClientSeq)
	}
	if len(txn.Ops) != 5 {
		t.Fatalf("ops = %d, want 5", len(txn.Ops))
	}
	for _, op := range txn.Ops {
		if op.Key >= cfg.Records {
			t.Fatalf("key %d out of range", op.Key)
		}
		if len(op.Value) != 32 {
			t.Fatalf("value size %d, want 32", len(op.Value))
		}
	}
	if len(txn.Payload) != 128 {
		t.Fatalf("payload size %d, want 128", len(txn.Payload))
	}
}

func TestRequestBurst(t *testing.T) {
	w, err := New(Default(), 1)
	if err != nil {
		t.Fatal(err)
	}
	req := w.NextRequest(9, 100, 4)
	if req.Client != 9 || req.FirstSeq != 100 {
		t.Fatalf("identity = (%d,%d)", req.Client, req.FirstSeq)
	}
	if len(req.Txns) != 4 {
		t.Fatalf("txns = %d, want 4", len(req.Txns))
	}
	for i, txn := range req.Txns {
		if txn.ClientSeq != 100+uint64(i) {
			t.Fatalf("txn %d seq = %d", i, txn.ClientSeq)
		}
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	mk := func(salt int64) types.ClientRequest {
		w, err := New(Default(), salt)
		if err != nil {
			t.Fatal(err)
		}
		return w.NextRequest(1, 0, 3)
	}
	a, b := mk(5), mk(5)
	if types.BatchDigest([]types.ClientRequest{a}) != types.BatchDigest([]types.ClientRequest{b}) {
		t.Fatal("same salt produced different workload")
	}
	c := mk(6)
	if types.BatchDigest([]types.ClientRequest{a}) == types.BatchDigest([]types.ClientRequest{c}) {
		t.Fatal("different salts produced identical workload")
	}
}

// TestReadMixShape: a mixed workload produces whole-transaction reads and
// writes at roughly the configured fraction, read ops carry no values, and
// the streams stay deterministic per salt. Presets resolve to their YCSB
// fractions.
func TestReadMixShape(t *testing.T) {
	cfg := Default()
	cfg.Records = 10_000
	cfg.OpsPerTxn = 3
	cfg.ReadFraction = 0.5
	w, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	reads := 0
	const txns = 2000
	for i := 0; i < txns; i++ {
		txn := w.NextTransaction(1, uint64(i+1))
		isRead := txn.Ops[0].Kind == types.OpRead
		for _, op := range txn.Ops {
			if (op.Kind == types.OpRead) != isRead {
				t.Fatal("transaction mixes read and write ops; the mix is txn-level")
			}
			if op.Kind == types.OpRead && len(op.Value) != 0 {
				t.Fatal("read op carries a value")
			}
		}
		if isRead {
			reads++
		}
	}
	if frac := float64(reads) / txns; frac < 0.4 || frac > 0.6 {
		t.Fatalf("read fraction %.2f far from configured 0.5", frac)
	}

	w3, w4 := mustNew(t, cfg, 9), mustNew(t, cfg, 9)
	r3, r4 := w3.NextRequest(2, 1, 4), w4.NextRequest(2, 1, 4)
	if types.BatchDigest([]types.ClientRequest{r3}) != types.BatchDigest([]types.ClientRequest{r4}) {
		t.Fatal("mixed workload not deterministic under equal salts")
	}

	for preset, want := range map[string]float64{"a": 0.5, "b": 0.95, "c": 1.0} {
		pc := Default()
		pc.Preset = preset
		pw, err := New(pc, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got := pw.ReadFraction(); got != want {
			t.Fatalf("preset %q resolved to %g, want %g", preset, got, want)
		}
	}
	dc := Default()
	dc.ReadFraction = -1
	if got := mustNew(t, dc, 1).ReadFraction(); got != 0 {
		t.Fatalf("ReadFraction=-1 resolved to %g, want 0", got)
	}
}

func mustNew(t *testing.T, cfg Config, salt int64) *Workload {
	t.Helper()
	w, err := New(cfg, salt)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestWriteStreamUnchangedByReadKnob: with a zero read fraction the
// generated stream must be byte-identical to the pre-read workload — the
// mix coin must not consume random draws when reads are off.
func TestWriteStreamUnchangedByReadKnob(t *testing.T) {
	base := mustNew(t, Default(), 4)
	off := Default()
	off.ReadFraction = -1
	disabled := mustNew(t, off, 4)
	for i := 0; i < 50; i++ {
		a := base.NextRequest(1, uint64(i*3+1), 3)
		b := disabled.NextRequest(1, uint64(i*3+1), 3)
		da := types.BatchDigest([]types.ClientRequest{a})
		db := types.BatchDigest([]types.ClientRequest{b})
		if da != db {
			t.Fatalf("request %d diverged between default and explicitly-disabled reads", i)
		}
	}
}

func TestScanMixShape(t *testing.T) {
	cfg := Default()
	cfg.Records = 10_000
	cfg.OpsPerTxn = 2
	cfg.ReadFraction = 0.3
	cfg.ScanFraction = 0.3
	cfg.ScanLength = 25
	w := mustNew(t, cfg, 1)
	counts := map[types.OpKind]int{}
	const txns = 3000
	for i := 0; i < txns; i++ {
		txn := w.NextTransaction(1, uint64(i+1))
		kind := txn.Ops[0].Kind
		counts[kind]++
		for _, op := range txn.Ops {
			if op.Kind != kind {
				t.Fatal("transaction mixes op kinds; the mix is txn-level")
			}
			if op.Kind != types.OpScan {
				if op.EndKey != 0 || op.Limit != 0 {
					t.Fatalf("non-scan op carries scan bounds: %+v", op)
				}
				continue
			}
			if len(op.Value) != 0 {
				t.Fatal("scan op carries a value")
			}
			span := op.EndKey - op.Key + 1
			if op.EndKey < op.Key || span > uint64(cfg.ScanLength) || uint64(op.Limit) != span {
				t.Fatalf("malformed scan bounds: key=%d end=%d limit=%d", op.Key, op.EndKey, op.Limit)
			}
		}
	}
	for kind, want := range map[types.OpKind]float64{types.OpRead: 0.3, types.OpScan: 0.3, types.OpWrite: 0.4} {
		if frac := float64(counts[kind]) / txns; frac < want-0.08 || frac > want+0.08 {
			t.Fatalf("kind %d fraction %.2f far from configured %.2f", kind, frac, want)
		}
	}

	pc := Default()
	pc.Preset = "e"
	pw := mustNew(t, pc, 1)
	if pw.ScanFraction() != 0.95 || pw.ReadFraction() != 0 {
		t.Fatalf("preset e resolved to read=%g scan=%g, want 0/0.95", pw.ReadFraction(), pw.ScanFraction())
	}
	dc := Default()
	dc.ScanFraction = -1
	if got := mustNew(t, dc, 1).ScanFraction(); got != 0 {
		t.Fatalf("ScanFraction=-1 resolved to %g, want 0", got)
	}
	bad := Default()
	bad.ReadFraction = 0.7
	bad.ScanFraction = 0.7
	if err := bad.Validate(); err == nil {
		t.Fatal("ReadFraction+ScanFraction > 1 validated")
	}
}

// TestReadStreamUnchangedByScanKnob: a read/write mix must generate the
// exact same stream whether scans are default-off or explicitly disabled —
// the scan arm shares the read mix coin, so adding the knob perturbs no
// pre-scan stream.
func TestReadStreamUnchangedByScanKnob(t *testing.T) {
	cfg := Default()
	cfg.ReadFraction = 0.5
	base := mustNew(t, cfg, 4)
	off := cfg
	off.ScanFraction = -1
	disabled := mustNew(t, off, 4)
	for i := 0; i < 50; i++ {
		a := base.NextRequest(1, uint64(i*3+1), 3)
		b := disabled.NextRequest(1, uint64(i*3+1), 3)
		da := types.BatchDigest([]types.ClientRequest{a})
		db := types.BatchDigest([]types.ClientRequest{b})
		if da != db {
			t.Fatalf("request %d diverged between default and explicitly-disabled scans", i)
		}
	}
}

func TestInitTable(t *testing.T) {
	cfg := Default()
	cfg.Records = 1000
	st := NewCountingStore()
	if err := InitTable(st, cfg); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", st.Len())
	}
	v, err := st.Get(999)
	if err != nil || len(v) != cfg.ValueSize {
		t.Fatalf("Get(999) = (%d bytes, %v)", len(v), err)
	}
}

// CountingStore wraps MemStore for test observability.
type CountingStore struct{ *store.MemStore }

// NewCountingStore returns an empty CountingStore.
func NewCountingStore() *CountingStore {
	return &CountingStore{MemStore: store.NewMemStore(0)}
}

func TestUniformCoverage(t *testing.T) {
	const n = 100
	g := NewUniform(rand.New(rand.NewSource(1)), n)
	seen := make(map[uint64]int)
	for i := 0; i < 20000; i++ {
		k := g.Next()
		if k >= n {
			t.Fatalf("key %d out of range", k)
		}
		seen[k]++
	}
	if len(seen) != n {
		t.Fatalf("uniform generator covered %d/%d keys", len(seen), n)
	}
	// No key should be wildly over-represented (expected 200 each).
	for k, c := range seen {
		if c < 100 || c > 320 {
			t.Fatalf("key %d drawn %d times; uniformity broken", k, c)
		}
	}
}

func TestZipfianRange(t *testing.T) {
	g := NewZipfian(rand.New(rand.NewSource(2)), 600_000, 0.99)
	for i := 0; i < 50000; i++ {
		if k := g.Next(); k >= 600_000 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

// TestZipfianSkew verifies the defining property of the distribution: a
// tiny set of top-ranked keys receives a disproportionate share of draws,
// far beyond what a uniform distribution would give them.
func TestZipfianSkew(t *testing.T) {
	const n = 10_000
	const draws = 100_000
	g := NewZipfian(rand.New(rand.NewSource(3)), n, 0.99)
	topShare := 0
	rank0 := 0
	for i := 0; i < draws; i++ {
		r := g.Rank()
		if r >= n {
			t.Fatalf("rank %d out of range", r)
		}
		if r < n/100 { // top 1% of ranks
			topShare++
		}
		if r == 0 {
			rank0++
		}
	}
	frac := float64(topShare) / draws
	if frac < 0.30 {
		t.Fatalf("top 1%% of keys drew only %.1f%% of accesses; not Zipfian", frac*100)
	}
	// The single hottest key alone must beat the uniform expectation
	// (draws/n = 10) by well over an order of magnitude.
	if rank0 < 200 {
		t.Fatalf("hottest key drawn %d times; too flat", rank0)
	}
}

func TestZipfianDeterminism(t *testing.T) {
	g1 := NewZipfian(rand.New(rand.NewSource(4)), 1000, 0.99)
	g2 := NewZipfian(rand.New(rand.NewSource(4)), 1000, 0.99)
	for i := 0; i < 1000; i++ {
		if g1.Next() != g2.Next() {
			t.Fatal("zipfian not deterministic under equal seeds")
		}
	}
}

func TestZipfianTheta(t *testing.T) {
	// Higher theta must concentrate more mass on rank 0.
	count0 := func(theta float64) int {
		g := NewZipfian(rand.New(rand.NewSource(5)), 10_000, theta)
		c := 0
		for i := 0; i < 50_000; i++ {
			if g.Rank() == 0 {
				c++
			}
		}
		return c
	}
	low, high := count0(0.5), count0(0.99)
	if high <= low {
		t.Fatalf("theta=0.99 hottest-key count (%d) not above theta=0.5 (%d)", high, low)
	}
}

func TestShardOfStableAndInRange(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 8} {
		for key := uint64(0); key < 10_000; key++ {
			sh := ShardOf(key, shards)
			if sh < 0 || sh >= shards {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", key, shards, sh)
			}
			if sh != ShardOf(key, shards) {
				t.Fatalf("ShardOf(%d, %d) not stable", key, shards)
			}
		}
	}
	if ShardOf(42, 0) != 0 || ShardOf(42, 1) != 0 || ShardOf(42, -3) != 0 {
		t.Fatal("ShardOf must collapse to shard 0 for shards ≤ 1")
	}
}

// TestShardOfSpreadsZipfianWrites: the point of the partition hash is that
// a skewed workload still keeps every execution shard busy — the hot keys
// must not cluster on one shard.
func TestShardOfSpreadsZipfianWrites(t *testing.T) {
	w, err := New(Config{Records: 4096, OpsPerTxn: 4, ValueSize: 8,
		Distribution: Zipf, Seed: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	const shards = 4
	counts := make([]int, shards)
	total := 0
	for i := 0; i < 500; i++ {
		txn := w.NextTransaction(1, uint64(i+1))
		for _, key := range WriteSet(&txn) {
			counts[ShardOf(key, shards)]++
			total++
		}
	}
	for sh, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d got no writes: %v", sh, counts)
		}
		if c > total/2 {
			t.Fatalf("shard %d got %d of %d writes — hot keys clustered", sh, c, total)
		}
	}
}

func TestWriteSetMatchesOps(t *testing.T) {
	w, err := New(Config{Records: 100, OpsPerTxn: 3, ValueSize: 4,
		Distribution: Uniform, Seed: 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	txn := w.NextTransaction(7, 1)
	keys := WriteSet(&txn)
	if len(keys) != len(txn.Ops) {
		t.Fatalf("WriteSet has %d keys for %d ops", len(keys), len(txn.Ops))
	}
	for i := range keys {
		if keys[i] != txn.Ops[i].Key {
			t.Fatalf("WriteSet[%d] = %d, want %d", i, keys[i], txn.Ops[i].Key)
		}
	}
}

func BenchmarkZipfianNext(b *testing.B) {
	g := NewZipfian(rand.New(rand.NewSource(1)), 600_000, 0.99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func BenchmarkWorkloadNextRequest(b *testing.B) {
	w, err := New(Default(), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.NextRequest(1, uint64(i), 1)
	}
}

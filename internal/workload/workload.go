// Package workload implements the application layer of the evaluation
// (paper Figure 5 and Section 5.1): a YCSB-style benchmark in which each
// client transaction indexes a table with an active set of 600K records,
// with keys drawn from a Zipfian (or uniform) distribution. Transactions
// are write-only by default; read and scan fractions (or a YCSB A/B/C/E
// preset) mix read-only and range-scan transactions into the same
// deterministic streams.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"resilientdb/internal/store"
	"resilientdb/internal/types"
)

// Distribution selects how keys are drawn from the record space.
type Distribution int

// Supported key distributions.
const (
	// Zipf draws keys from the YCSB Zipfian distribution (the paper's
	// "uniform Zipfian" with the standard YCSB constant).
	Zipf Distribution = iota + 1
	// Uniform draws keys uniformly at random.
	Uniform
)

// String implements fmt.Stringer.
func (d Distribution) String() string {
	switch d {
	case Zipf:
		return "zipfian"
	case Uniform:
		return "uniform"
	default:
		return "invalid"
	}
}

// Config describes a YCSB workload.
type Config struct {
	// Records is the active record set size; the paper uses 600K.
	Records uint64
	// OpsPerTxn is the number of write operations per transaction
	// (Section 5.4 varies this from 1 to 50).
	OpsPerTxn int
	// ValueSize is the size in bytes of each written value.
	ValueSize int
	// PayloadSize adds opaque bytes to each transaction to inflate message
	// size (Section 5.5).
	PayloadSize int
	// Distribution selects the key distribution; Zipf by default.
	Distribution Distribution
	// ZipfTheta is the Zipfian skew constant; 0 means the YCSB default 0.99.
	ZipfTheta float64
	// ReadFraction is the probability a transaction is read-only, per the
	// YCSB mix convention. The knob convention applies: 0 keeps the default
	// (write-only, the seed behaviour), -1 disables reads explicitly,
	// anything in (0, 1] mixes that fraction of read transactions into the
	// stream. Mutually exclusive with Preset.
	ReadFraction float64
	// ScanFraction is the probability a transaction is a range scan, per
	// the YCSB-E mix convention. Same knob convention as ReadFraction: 0
	// default (no scans), -1 explicitly disabled, (0, 1] mixes that
	// fraction of scan transactions in. ReadFraction + ScanFraction must
	// not exceed 1; the remainder is writes. Mutually exclusive with
	// Preset.
	ScanFraction float64
	// ScanLength is the maximum rows per scan: each scan op covers a span
	// of 1..ScanLength keys drawn uniformly (the YCSB-E shape). 0 means
	// the default (DefaultScanLength).
	ScanLength int
	// Preset selects a standard YCSB mix by name: "a" (50% reads),
	// "b" (95% reads), "c" (read-only), or "e" (95% scans, 5% writes).
	// Empty means no preset; setting both Preset and ReadFraction or
	// ScanFraction is a configuration error.
	Preset string
	// Seed makes the workload reproducible.
	Seed int64
}

// Default returns the paper's standard workload: 600K records, single-op
// write-only transactions with 100-byte values, Zipfian keys.
func Default() Config {
	return Config{
		Records:      600_000,
		OpsPerTxn:    1,
		ValueSize:    100,
		Distribution: Zipf,
		Seed:         1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Records == 0 {
		return fmt.Errorf("workload: Records must be positive")
	}
	if c.OpsPerTxn < 1 {
		return fmt.Errorf("workload: OpsPerTxn must be ≥ 1, got %d", c.OpsPerTxn)
	}
	if c.ValueSize < 0 || c.PayloadSize < 0 {
		return fmt.Errorf("workload: sizes must be non-negative")
	}
	switch c.Distribution {
	case Zipf, Uniform:
	default:
		return fmt.Errorf("workload: invalid distribution %d", c.Distribution)
	}
	if c.ReadFraction != -1 && (c.ReadFraction < 0 || c.ReadFraction > 1) {
		return fmt.Errorf("workload: ReadFraction must be in [0,1] or -1 (disabled), got %g", c.ReadFraction)
	}
	if c.ScanFraction != -1 && (c.ScanFraction < 0 || c.ScanFraction > 1) {
		return fmt.Errorf("workload: ScanFraction must be in [0,1] or -1 (disabled), got %g", c.ScanFraction)
	}
	if c.ReadFraction > 0 && c.ScanFraction > 0 && c.ReadFraction+c.ScanFraction > 1 {
		return fmt.Errorf("workload: ReadFraction %g + ScanFraction %g exceeds 1", c.ReadFraction, c.ScanFraction)
	}
	if c.ScanLength < 0 {
		return fmt.Errorf("workload: ScanLength must be non-negative, got %d", c.ScanLength)
	}
	switch c.Preset {
	case "", "a", "b", "c", "e":
	default:
		return fmt.Errorf("workload: unknown preset %q (want a, b, c, or e)", c.Preset)
	}
	if c.Preset != "" && c.ReadFraction != 0 {
		return fmt.Errorf("workload: Preset %q conflicts with explicit ReadFraction %g; set one",
			c.Preset, c.ReadFraction)
	}
	if c.Preset != "" && c.ScanFraction != 0 {
		return fmt.Errorf("workload: Preset %q conflicts with explicit ScanFraction %g; set one",
			c.Preset, c.ScanFraction)
	}
	return nil
}

// readFraction resolves the effective read fraction from the preset and
// the explicit knob (0 = default = write-only, -1 = disabled).
func (c Config) readFraction() float64 {
	switch c.Preset {
	case "a":
		return 0.5
	case "b":
		return 0.95
	case "c":
		return 1.0
	}
	if c.ReadFraction <= 0 {
		return 0
	}
	return c.ReadFraction
}

// scanFraction resolves the effective scan fraction from the preset and
// the explicit knob (0 = default = no scans, -1 = disabled).
func (c Config) scanFraction() float64 {
	if c.Preset == "e" {
		return 0.95
	}
	if c.ScanFraction <= 0 {
		return 0
	}
	return c.ScanFraction
}

// DefaultScanLength is the maximum scan span when ScanLength is 0, the
// standard YCSB-E max scan length.
const DefaultScanLength = 100

// scanLength resolves the effective maximum scan span.
func (c Config) scanLength() int {
	if c.ScanLength == 0 {
		return DefaultScanLength
	}
	return c.ScanLength
}

// Generator draws keys from the configured distribution. Generators are
// not safe for concurrent use; create one per client goroutine.
type Generator interface {
	// Next returns the next key in [0, Records).
	Next() uint64
}

// Workload builds transactions and client requests for one client.
type Workload struct {
	cfg      Config
	gen      Generator
	rnd      *rand.Rand
	fill     byte
	readFrac float64
	scanFrac float64
	scanLen  int
}

// New creates a Workload for cfg. Each Workload owns an independent
// deterministic random stream derived from cfg.Seed and salt (pass the
// client identifier), so concurrent clients do not contend or correlate.
func New(cfg Config, salt int64) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rnd := rand.New(rand.NewSource(cfg.Seed*0x5DEECE66D + salt + 11))
	var gen Generator
	switch cfg.Distribution {
	case Uniform:
		gen = NewUniform(rnd, cfg.Records)
	default:
		theta := cfg.ZipfTheta
		if theta == 0 {
			theta = 0.99
		}
		gen = NewZipfian(rnd, cfg.Records, theta)
	}
	return &Workload{
		cfg: cfg, gen: gen, rnd: rnd, fill: byte(salt),
		readFrac: cfg.readFraction(), scanFrac: cfg.scanFraction(), scanLen: cfg.scanLength(),
	}, nil
}

// ReadFraction returns the effective read mix the workload runs with,
// after preset resolution.
func (w *Workload) ReadFraction() float64 { return w.readFrac }

// ScanFraction returns the effective scan mix the workload runs with,
// after preset resolution.
func (w *Workload) ScanFraction() float64 { return w.scanFrac }

// NextTransaction builds the next transaction for the client: read-only
// with probability ReadFraction, scan-only with probability ScanFraction,
// write-only otherwise (the YCSB txn-level mix; scans are the YCSB-E
// shape, a uniform span of 1..ScanLength keys). With zero read and scan
// fractions the stream — including every byte of every value — is
// identical to the pre-read workload: the mix coin is only flipped when
// reads or scans are configured, so it perturbs no draws, and streams
// with reads but no scans draw exactly as they did before scans existed.
func (w *Workload) NextTransaction(client types.ClientID, clientSeq uint64) types.Transaction {
	readTxn, scanTxn := false, false
	if w.readFrac > 0 || w.scanFrac > 0 {
		u := w.rnd.Float64()
		readTxn = u < w.readFrac
		scanTxn = !readTxn && u < w.readFrac+w.scanFrac
	}
	ops := make([]types.Op, w.cfg.OpsPerTxn)
	for i := range ops {
		if readTxn {
			ops[i] = types.Op{Kind: types.OpRead, Key: w.gen.Next()}
			continue
		}
		if scanTxn {
			key := w.gen.Next()
			span := uint64(1 + w.rnd.Intn(w.scanLen))
			ops[i] = types.Op{Kind: types.OpScan, Key: key, EndKey: key + span - 1, Limit: uint32(span)}
			continue
		}
		val := make([]byte, w.cfg.ValueSize)
		for j := range val {
			val[j] = w.fill + byte(clientSeq) + byte(j)
		}
		ops[i] = types.Op{Key: w.gen.Next(), Value: val}
	}
	var payload []byte
	if w.cfg.PayloadSize > 0 {
		payload = make([]byte, w.cfg.PayloadSize)
		for j := range payload {
			payload[j] = byte(j)
		}
	}
	return types.Transaction{
		Client:    client,
		ClientSeq: clientSeq,
		Ops:       ops,
		Payload:   payload,
	}
}

// NextRequest builds a client request carrying a burst of txns transactions
// starting at clientSeq (client-side batching, Section 4.2). The request is
// unsigned; the client engine signs it.
func (w *Workload) NextRequest(client types.ClientID, clientSeq uint64, txns int) types.ClientRequest {
	if txns < 1 {
		txns = 1
	}
	list := make([]types.Transaction, txns)
	for i := range list {
		list[i] = w.NextTransaction(client, clientSeq+uint64(i))
	}
	return types.ClientRequest{
		Client:   client,
		FirstSeq: clientSeq,
		Txns:     list,
	}
}

// InitTable preloads st with the active record set so every replica starts
// from an identical copy of the table (Section 5.1).
func InitTable(st store.Store, cfg Config) error {
	val := make([]byte, cfg.ValueSize)
	for i := range val {
		val[i] = byte(i)
	}
	for k := uint64(0); k < cfg.Records; k++ {
		if err := st.Put(k, val); err != nil {
			return fmt.Errorf("workload: preloading record %d: %w", k, err)
		}
	}
	return nil
}

// ---- Write-set partitioning ----
//
// The workload is write-only over a keyed record table (Section 5.1), so a
// transaction's write-set is exactly the keys of its operations and is
// known before execution. That makes conflict-free parallel execution
// possible: hash-partition the key space into E execution shards, give
// every shard worker only the operations whose keys it owns, and two
// workers can never write the same record. Within one shard, operations
// apply in batch order, so the final state is byte-identical to serial
// execution regardless of E.

// ShardOf maps a record key to one of shards execution shards. It
// delegates to store.ShardOf — the canonical partition hash — so the
// execute stage and the sharded durable store agree on shard placement:
// with aligned counts each execution shard streams its whole partition to
// exactly one append log. The hash decorrelates the shard from the
// Zipfian popularity scramble and from MemStore's internal shard hash, so
// hot keys spread across execution shards instead of clustering on one.
func ShardOf(key uint64, shards int) int {
	return store.ShardOf(key, shards)
}

// WriteSet returns the keys txn writes, in operation order — the
// write-set whose ShardOf partition the execute stage applies (the
// replica partitions txn.Ops inline to keep the values alongside the
// keys). Exposed for tests and tooling that predict shard placement.
func WriteSet(txn *types.Transaction) []uint64 {
	keys := make([]uint64, len(txn.Ops))
	for i := range txn.Ops {
		keys[i] = txn.Ops[i].Key
	}
	return keys
}

// ---- Key generators ----

// UniformGen draws keys uniformly.
type UniformGen struct {
	rnd *rand.Rand
	n   uint64
}

var _ Generator = (*UniformGen)(nil)

// NewUniform returns a uniform generator over [0, n).
func NewUniform(rnd *rand.Rand, n uint64) *UniformGen {
	return &UniformGen{rnd: rnd, n: n}
}

// Next implements Generator.
func (u *UniformGen) Next() uint64 { return uint64(u.rnd.Int63n(int64(u.n))) }

// ZipfianGen draws keys from the YCSB Zipfian distribution (Gray et al.,
// "Quickly Generating Billion-Record Synthetic Databases"), under which the
// i-th most popular key has probability proportional to 1/i^theta.
// The popular keys are scattered across the key space by a multiplicative
// hash, as YCSB does, so hot keys do not cluster at low indices.
type ZipfianGen struct {
	rnd       *rand.Rand
	n         uint64
	theta     float64
	alpha     float64
	zetan     float64
	eta       float64
	zeta2     float64
	scrambled bool
}

var _ Generator = (*ZipfianGen)(nil)

// NewZipfian returns a scrambled Zipfian generator over [0, n) with skew
// theta in (0, 1).
func NewZipfian(rnd *rand.Rand, n uint64, theta float64) *ZipfianGen {
	z := &ZipfianGen{rnd: rnd, n: n, theta: theta, scrambled: true}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// Next implements Generator.
func (z *ZipfianGen) Next() uint64 {
	u := z.rnd.Float64()
	uz := u * z.zetan
	var rank uint64
	switch {
	case uz < 1.0:
		rank = 0
	case uz < 1.0+math.Pow(0.5, z.theta):
		rank = 1
	default:
		rank = uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1.0, z.alpha))
		if rank >= z.n {
			rank = z.n - 1
		}
	}
	if !z.scrambled {
		return rank
	}
	// FNV-style scramble into [0, n).
	return (rank * 0x9E3779B97F4A7C15) % z.n
}

// Rank returns the unscrambled popularity rank for the next draw; exposed
// for distribution tests.
func (z *ZipfianGen) Rank() uint64 {
	z.scrambled = false
	defer func() { z.scrambled = true }()
	return z.Next()
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

package queue

import (
	"sync"
)

// InOrder is the execution queue of Section 4.6: consensus on batches
// completes out of order, yet execution must follow sequence numbers.
//
// Instead of a scan-and-recheck loop or an expensive hash map, the paper
// associates a large set of QC logical queues with the execute-thread; the
// producer deposits the notice for sequence s into slot s mod QC, and the
// consumer blocks on exactly the slot of the next in-order sequence. Each
// slot is a one-deep channel, so the space cost matches a single queue of
// QC entries while the consumer never inspects out-of-order work.
//
// QC must exceed the maximum number of in-flight sequence numbers
// (2 × clients × requests-per-client in the paper's sizing) so that
// sequence s+QC can never be offered before s was consumed.
type InOrder[T any] struct {
	slots []chan T
	next  uint64
	mu    sync.Mutex
	done  chan struct{}
	once  sync.Once
}

// NewInOrder returns an InOrder buffer with qc slots that starts
// delivering at sequence number start.
func NewInOrder[T any](qc int, start uint64) *InOrder[T] {
	if qc < 1 {
		qc = 1
	}
	s := &InOrder[T]{
		slots: make([]chan T, qc),
		next:  start,
		done:  make(chan struct{}),
	}
	for i := range s.slots {
		s.slots[i] = make(chan T, 1)
	}
	return s
}

// Offer deposits the item for sequence seq. It blocks only if sequence
// seq-QC has not been consumed yet, which a correctly sized buffer makes
// impossible. It reports false if the buffer was closed.
func (o *InOrder[T]) Offer(seq uint64, v T) bool {
	slot := o.slots[seq%uint64(len(o.slots))]
	select {
	case slot <- v:
		return true
	case <-o.done:
		return false
	}
}

// Next blocks until the item for the next in-order sequence number arrives
// and returns it together with its sequence number. It reports false after
// Close.
func (o *InOrder[T]) Next() (uint64, T, bool) {
	o.mu.Lock()
	seq := o.next
	slot := o.slots[seq%uint64(len(o.slots))]
	o.mu.Unlock()
	var zero T
	select {
	case v := <-slot:
		o.mu.Lock()
		o.next = seq + 1
		o.mu.Unlock()
		return seq, v, true
	case <-o.done:
		// Drain race: an Offer may have landed just before Close.
		select {
		case v := <-slot:
			o.mu.Lock()
			o.next = seq + 1
			o.mu.Unlock()
			return seq, v, true
		default:
			return 0, zero, false
		}
	}
}

// TryNext is the non-blocking form of Next: it returns the item for the
// next in-order sequence number if it has already been offered and
// reports false otherwise. The pipelined execute coordinator polls it to
// decide between staging new work and retiring in-flight work; like Next
// it is safe for a single consumer interleaving both calls.
func (o *InOrder[T]) TryNext() (uint64, T, bool) {
	o.mu.Lock()
	seq := o.next
	slot := o.slots[seq%uint64(len(o.slots))]
	o.mu.Unlock()
	var zero T
	select {
	case v := <-slot:
		o.mu.Lock()
		o.next = seq + 1
		o.mu.Unlock()
		return seq, v, true
	default:
		return 0, zero, false
	}
}

// NextSeq returns the sequence number Next will deliver.
func (o *InOrder[T]) NextSeq() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.next
}

// Close releases blocked producers and consumers.
func (o *InOrder[T]) Close() { o.once.Do(func() { close(o.done) }) }

// MapReorder is the hash-map alternative the paper rejects ("collision
// resistant hash functions are expensive to compute"): a mutex-protected
// map keyed by sequence number with a condition variable. It is kept as
// the ablation baseline for InOrder.
type MapReorder[T any] struct {
	mu      sync.Mutex
	cond    sync.Cond
	pending map[uint64]T
	next    uint64
	closed  bool
}

// NewMapReorder returns a MapReorder starting at sequence start.
func NewMapReorder[T any](start uint64) *MapReorder[T] {
	m := &MapReorder[T]{pending: make(map[uint64]T), next: start}
	m.cond.L = &m.mu
	return m
}

// Offer deposits the item for sequence seq.
func (m *MapReorder[T]) Offer(seq uint64, v T) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.pending[seq] = v
	if seq == m.next {
		m.cond.Broadcast()
	}
	return true
}

// Next blocks until the next in-order item arrives.
func (m *MapReorder[T]) Next() (uint64, T, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if v, ok := m.pending[m.next]; ok {
			seq := m.next
			delete(m.pending, seq)
			m.next = seq + 1
			return seq, v, true
		}
		if m.closed {
			var zero T
			return 0, zero, false
		}
		m.cond.Wait()
	}
}

// Close releases blocked consumers.
func (m *MapReorder[T]) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

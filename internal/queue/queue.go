// Package queue provides the queueing toolkit of the fabric: the lock-free
// multi-producer/multi-consumer ring the batch-threads share (Section 4.3
// asks "why have a common queue?" — so any enqueued request is consumed as
// soon as any batch-thread is available, without contention), reference
// mutex- and channel-based queues used as ablation baselines, and the
// in-order execution queue of Section 4.6.
package queue

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Queue is a bounded FIFO shared by concurrent producers and consumers.
// Pop blocks until an item arrives or the queue is closed and drained;
// the second return value is false only in the latter case.
type Queue[T any] interface {
	// TryPush enqueues v without blocking; it reports false when full
	// or closed.
	TryPush(v T) bool
	// Push enqueues v, blocking while the queue is full. It reports false
	// if the queue was closed.
	Push(v T) bool
	// TryPop dequeues without blocking; it reports false when empty.
	TryPop() (T, bool)
	// Pop dequeues, blocking while the queue is empty. It reports false
	// once the queue is closed and drained.
	Pop() (T, bool)
	// Close marks the queue closed. Pending items may still be popped.
	Close()
	// Len returns the approximate number of queued items.
	Len() int
}

// Compile-time interface compliance checks.
var (
	_ Queue[int] = (*MPMC[int])(nil)
	_ Queue[int] = (*MutexQueue[int])(nil)
	_ Queue[int] = (*ChanQueue[int])(nil)
)

// ---- Lock-free MPMC ring (Vyukov bounded queue) ----

type cell[T any] struct {
	seq atomic.Uint64
	val T
}

// MPMC is a bounded lock-free multi-producer/multi-consumer FIFO ring.
// It is the "lock-free common queue" placed between the input-thread and
// the batch-threads at the primary (Section 4.3).
//
// Pushes and non-blocking pops stay lock-free. Blocking consumers (Pop,
// PopWait) park on a wake channel instead of spinning: a pusher that
// observes registered waiters deposits a wake token, and a woken consumer
// that takes an item re-arms the token for the next waiter (a cascade),
// so idle batch-threads burn no CPU while loaded ones never sleep.
type MPMC[T any] struct {
	mask    uint64
	cells   []cell[T]
	enqPos  atomic.Uint64
	deqPos  atomic.Uint64
	closed  atomic.Bool
	sleepNS int64

	// waiters counts consumers parked (or about to park) in Pop/PopWait;
	// pushers only touch the wake channel when it is non-zero.
	waiters atomic.Int32
	// wakeC carries at most one wake token. A token means "state changed:
	// recheck" — consumers treat it as a hint, never as an item claim.
	wakeC chan struct{}
}

// NewMPMC returns an MPMC ring holding at least capacity items (rounded up
// to a power of two, minimum 2).
func NewMPMC[T any](capacity int) *MPMC[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	q := &MPMC[T]{
		mask:    uint64(n - 1),
		cells:   make([]cell[T], n),
		sleepNS: int64(50 * time.Microsecond),
		wakeC:   make(chan struct{}, 1),
	}
	for i := range q.cells {
		q.cells[i].seq.Store(uint64(i))
	}
	return q
}

// wake deposits the wake token if the slot is free.
func (q *MPMC[T]) wake() {
	select {
	case q.wakeC <- struct{}{}:
	default:
	}
}

// wakeNext re-arms the wake token when more work (or the closed state)
// remains for other parked consumers — the cascade that replaces a
// broadcast.
func (q *MPMC[T]) wakeNext() {
	if q.waiters.Load() > 0 && (q.Len() > 0 || q.closed.Load()) {
		q.wake()
	}
}

// TryPush implements Queue.
func (q *MPMC[T]) TryPush(v T) bool {
	if q.closed.Load() {
		return false
	}
	pos := q.enqPos.Load()
	for {
		c := &q.cells[pos&q.mask]
		seq := c.seq.Load()
		switch d := int64(seq) - int64(pos); {
		case d == 0:
			if q.enqPos.CompareAndSwap(pos, pos+1) {
				c.val = v
				c.seq.Store(pos + 1)
				if q.waiters.Load() > 0 {
					q.wake()
				}
				return true
			}
			pos = q.enqPos.Load()
		case d < 0:
			return false // full
		default:
			pos = q.enqPos.Load()
		}
	}
}

// TryPop implements Queue.
func (q *MPMC[T]) TryPop() (T, bool) {
	var zero T
	pos := q.deqPos.Load()
	for {
		c := &q.cells[pos&q.mask]
		seq := c.seq.Load()
		switch d := int64(seq) - int64(pos+1); {
		case d == 0:
			if q.deqPos.CompareAndSwap(pos, pos+1) {
				v := c.val
				c.val = zero
				c.seq.Store(pos + q.mask + 1)
				return v, true
			}
			pos = q.deqPos.Load()
		case d < 0:
			return zero, false // empty
		default:
			pos = q.deqPos.Load()
		}
	}
}

// Push implements Queue with a spin-then-sleep backoff.
func (q *MPMC[T]) Push(v T) bool {
	for spin := 0; ; spin++ {
		if q.closed.Load() {
			return false
		}
		if q.TryPush(v) {
			return true
		}
		backoff(spin, q.sleepNS)
	}
}

// Pop implements Queue: it blocks by parking on the wake channel (after a
// brief spin) rather than sleep-polling, so an idle consumer costs
// nothing until a pusher or Close wakes it.
func (q *MPMC[T]) Pop() (T, bool) {
	// Fast path: brief spin covers the loaded case without parking.
	for spin := 0; spin < 8; spin++ {
		if v, ok := q.TryPop(); ok {
			return v, true
		}
		if q.closed.Load() {
			v, ok := q.TryPop() // drain race: final attempt
			return v, ok
		}
		runtime.Gosched()
	}
	q.waiters.Add(1)
	defer q.waiters.Add(-1)
	for {
		// Recheck after registering as a waiter: a pusher that missed the
		// registration left no token, but its item is already visible.
		if v, ok := q.TryPop(); ok {
			q.wakeNext()
			return v, true
		}
		if q.closed.Load() {
			q.wakeNext() // cascade the close to other waiters
			v, ok := q.TryPop()
			return v, ok
		}
		<-q.wakeC
	}
}

// PopWait dequeues, blocking up to timeout for an item to arrive. A
// non-positive timeout degenerates to TryPop. It reports false on
// timeout and when the queue is closed and drained — either way the
// caller's deadline semantics hold: it never blocks past timeout.
func (q *MPMC[T]) PopWait(timeout time.Duration) (T, bool) {
	if v, ok := q.TryPop(); ok {
		return v, true
	}
	var zero T
	if timeout <= 0 {
		return zero, false
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	q.waiters.Add(1)
	defer q.waiters.Add(-1)
	for {
		if v, ok := q.TryPop(); ok {
			q.wakeNext()
			return v, true
		}
		if q.closed.Load() {
			q.wakeNext()
			v, ok := q.TryPop()
			return v, ok
		}
		select {
		case <-q.wakeC:
			// State changed (or a stale token): loop and recheck.
		case <-t.C:
			v, ok := q.TryPop()
			return v, ok
		}
	}
}

// Close implements Queue. It wakes parked consumers; each one cascades
// the token onward until all have observed the closed state.
func (q *MPMC[T]) Close() {
	q.closed.Store(true)
	q.wake()
}

// Len implements Queue.
func (q *MPMC[T]) Len() int {
	n := int64(q.enqPos.Load()) - int64(q.deqPos.Load())
	if n < 0 {
		return 0
	}
	return int(n)
}

// Cap returns the ring's fixed capacity (the rounded-up power of two), so
// Len can be read as a fill fraction — the queue-depth gauges do.
func (q *MPMC[T]) Cap() int { return len(q.cells) }

func backoff(spin int, sleepNS int64) {
	switch {
	case spin < 8:
		runtime.Gosched()
	default:
		time.Sleep(time.Duration(sleepNS))
	}
}

// ---- Mutex queue (ablation baseline) ----

// MutexQueue is a bounded FIFO guarded by a mutex and condition variables.
// It exists as the contended baseline for the queue ablation benchmark.
type MutexQueue[T any] struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	buf      []T
	head     int
	size     int
	closed   bool
}

// NewMutexQueue returns a MutexQueue with the given capacity.
func NewMutexQueue[T any](capacity int) *MutexQueue[T] {
	if capacity < 1 {
		capacity = 1
	}
	q := &MutexQueue[T]{buf: make([]T, capacity)}
	q.notEmpty.L = &q.mu
	q.notFull.L = &q.mu
	return q
}

// TryPush implements Queue.
func (q *MutexQueue[T]) TryPush(v T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.size == len(q.buf) {
		return false
	}
	q.push(v)
	return true
}

func (q *MutexQueue[T]) push(v T) {
	q.buf[(q.head+q.size)%len(q.buf)] = v
	q.size++
	q.notEmpty.Signal()
}

// Push implements Queue.
func (q *MutexQueue[T]) Push(v T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == len(q.buf) && !q.closed {
		q.notFull.Wait()
	}
	if q.closed {
		return false
	}
	q.push(v)
	return true
}

// TryPop implements Queue.
func (q *MutexQueue[T]) TryPop() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var zero T
	if q.size == 0 {
		return zero, false
	}
	return q.pop(), true
}

func (q *MutexQueue[T]) pop() T {
	var zero T
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	q.notFull.Signal()
	return v
}

// Pop implements Queue.
func (q *MutexQueue[T]) Pop() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	var zero T
	if q.size == 0 {
		return zero, false
	}
	return q.pop(), true
}

// Close implements Queue.
func (q *MutexQueue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}

// Len implements Queue.
func (q *MutexQueue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// ---- Channel queue ----

// ChanQueue adapts a buffered channel to the Queue interface. It is the
// idiomatic-Go baseline for the queue ablation benchmark and the default
// inter-stage queue in the replica pipeline.
type ChanQueue[T any] struct {
	ch     chan T
	mu     sync.Mutex
	closed bool
}

// NewChanQueue returns a ChanQueue with the given capacity.
func NewChanQueue[T any](capacity int) *ChanQueue[T] {
	return &ChanQueue[T]{ch: make(chan T, capacity)}
}

// TryPush implements Queue.
func (q *ChanQueue[T]) TryPush(v T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	select {
	case q.ch <- v:
		return true
	default:
		return false
	}
}

// Push implements Queue.
func (q *ChanQueue[T]) Push(v T) (ok bool) {
	defer func() {
		// A concurrent Close can race with the blocking send; treat a send
		// on a closed channel as "queue closed" rather than a crash.
		if recover() != nil {
			ok = false
		}
	}()
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.mu.Unlock()
	q.ch <- v
	return true
}

// TryPop implements Queue.
func (q *ChanQueue[T]) TryPop() (T, bool) {
	select {
	case v, ok := <-q.ch:
		return v, ok
	default:
		var zero T
		return zero, false
	}
}

// Pop implements Queue.
func (q *ChanQueue[T]) Pop() (T, bool) {
	v, ok := <-q.ch
	return v, ok
}

// Close implements Queue.
func (q *ChanQueue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
}

// Len implements Queue.
func (q *ChanQueue[T]) Len() int { return len(q.ch) }

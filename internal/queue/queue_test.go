package queue

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func queues(capacity int) map[string]Queue[int] {
	return map[string]Queue[int]{
		"mpmc":  NewMPMC[int](capacity),
		"mutex": NewMutexQueue[int](capacity),
		"chan":  NewChanQueue[int](capacity),
	}
}

func TestQueueFIFOSingleThreaded(t *testing.T) {
	for name, q := range queues(8) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 5; i++ {
				if !q.TryPush(i) {
					t.Fatalf("TryPush(%d) failed on empty-ish queue", i)
				}
			}
			if q.Len() != 5 {
				t.Fatalf("Len = %d, want 5", q.Len())
			}
			for i := 0; i < 5; i++ {
				v, ok := q.TryPop()
				if !ok || v != i {
					t.Fatalf("TryPop = (%d,%v), want (%d,true)", v, ok, i)
				}
			}
			if _, ok := q.TryPop(); ok {
				t.Fatal("TryPop succeeded on empty queue")
			}
		})
	}
}

func TestQueueFullBehaviour(t *testing.T) {
	for name, q := range queues(2) {
		t.Run(name, func(t *testing.T) {
			if !q.TryPush(1) || !q.TryPush(2) {
				t.Fatal("fill failed")
			}
			if q.TryPush(3) {
				t.Fatal("TryPush succeeded on full queue")
			}
			v, ok := q.Pop()
			if !ok || v != 1 {
				t.Fatalf("Pop = (%d,%v)", v, ok)
			}
			if !q.TryPush(3) {
				t.Fatal("TryPush failed after Pop freed space")
			}
		})
	}
}

func TestQueueCloseDrains(t *testing.T) {
	for name, q := range queues(8) {
		t.Run(name, func(t *testing.T) {
			q.TryPush(1)
			q.TryPush(2)
			q.Close()
			if v, ok := q.Pop(); !ok || v != 1 {
				t.Fatalf("Pop after close = (%d,%v), want (1,true)", v, ok)
			}
			if v, ok := q.Pop(); !ok || v != 2 {
				t.Fatalf("Pop after close = (%d,%v), want (2,true)", v, ok)
			}
			if _, ok := q.Pop(); ok {
				t.Fatal("Pop returned item after drain+close")
			}
			if q.TryPush(9) {
				t.Fatal("TryPush succeeded after Close")
			}
		})
	}
}

func TestQueueCloseUnblocksPop(t *testing.T) {
	for name, q := range queues(4) {
		t.Run(name, func(t *testing.T) {
			done := make(chan struct{})
			go func() {
				defer close(done)
				if _, ok := q.Pop(); ok {
					t.Error("Pop returned ok on closed empty queue")
				}
			}()
			q.Close()
			<-done
		})
	}
}

// TestQueueConcurrentMultiset checks that under heavy concurrency every
// pushed value is popped exactly once (no loss, no duplication).
func TestQueueConcurrentMultiset(t *testing.T) {
	const producers, consumers, perProducer = 4, 4, 2000
	for name, q := range queues(64) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			results := make(chan int, producers*perProducer)
			for c := 0; c < consumers; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						v, ok := q.Pop()
						if !ok {
							return
						}
						results <- v
					}
				}()
			}
			var pwg sync.WaitGroup
			for p := 0; p < producers; p++ {
				pwg.Add(1)
				go func(p int) {
					defer pwg.Done()
					for i := 0; i < perProducer; i++ {
						if !q.Push(p*perProducer + i) {
							t.Errorf("Push failed mid-run")
							return
						}
					}
				}(p)
			}
			pwg.Wait()
			q.Close()
			wg.Wait()
			close(results)

			got := make([]int, 0, producers*perProducer)
			for v := range results {
				got = append(got, v)
			}
			if len(got) != producers*perProducer {
				t.Fatalf("popped %d values, want %d", len(got), producers*perProducer)
			}
			sort.Ints(got)
			for i, v := range got {
				if v != i {
					t.Fatalf("multiset mismatch at %d: %d", i, v)
				}
			}
		})
	}
}

// TestMPMCPerProducerOrder verifies FIFO per producer under concurrency.
func TestMPMCPerProducerOrder(t *testing.T) {
	q := NewMPMC[[2]int](32)
	const producers, perProducer = 3, 3000
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push([2]int{p, i})
			}
		}(p)
	}
	go func() { pwg.Wait(); q.Close() }()

	last := map[int]int{0: -1, 1: -1, 2: -1}
	for {
		v, ok := q.Pop()
		if !ok {
			break
		}
		if v[1] <= last[v[0]] {
			t.Fatalf("producer %d out of order: %d after %d", v[0], v[1], last[v[0]])
		}
		last[v[0]] = v[1]
	}
	for p, l := range last {
		if l != perProducer-1 {
			t.Fatalf("producer %d delivered up to %d", p, l)
		}
	}
}

func TestInOrderSequentialDelivery(t *testing.T) {
	o := NewInOrder[int](16, 0)
	go func() {
		// Offer out of order: evens first, then odds.
		for i := 0; i < 10; i += 2 {
			o.Offer(uint64(i), i)
		}
		for i := 1; i < 10; i += 2 {
			o.Offer(uint64(i), i)
		}
	}()
	for i := 0; i < 10; i++ {
		seq, v, ok := o.Next()
		if !ok || seq != uint64(i) || v != i {
			t.Fatalf("Next = (%d,%d,%v), want (%d,%d,true)", seq, v, ok, i, i)
		}
	}
	o.Close()
	if _, _, ok := o.Next(); ok {
		t.Fatal("Next returned ok after Close")
	}
}

// TestInOrderRandomCompletionProperty drives InOrder with random completion
// orders from concurrent producers — exactly the out-of-order consensus
// scenario of Example 4.1 — and asserts strict in-order delivery.
func TestInOrderRandomCompletionProperty(t *testing.T) {
	f := func(seed int64) bool {
		const n = 200
		rnd := rand.New(rand.NewSource(seed))
		o := NewInOrder[uint64](2*n, 0)
		perm := rnd.Perm(n)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < n; i += 4 {
					seq := uint64(perm[i])
					o.Offer(seq, seq*3)
				}
			}(w)
		}
		ok := true
		for i := uint64(0); i < n; i++ {
			seq, v, alive := o.Next()
			if !alive || seq != i || v != i*3 {
				ok = false
				break
			}
		}
		wg.Wait()
		o.Close()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestInOrderTryNext: the non-blocking poll must deliver only the next
// in-order item — never an out-of-order one — and interleave correctly
// with blocking Next calls from the same consumer.
func TestInOrderTryNext(t *testing.T) {
	o := NewInOrder[int](16, 0)
	if _, _, ok := o.TryNext(); ok {
		t.Fatal("TryNext on empty returned ok")
	}
	o.Offer(1, 10) // out of order: seq 0 not offered yet
	if _, _, ok := o.TryNext(); ok {
		t.Fatal("TryNext delivered out-of-order seq 1")
	}
	o.Offer(0, 0)
	seq, v, ok := o.TryNext()
	if !ok || seq != 0 || v != 0 {
		t.Fatalf("TryNext = (%d,%d,%v), want (0,0,true)", seq, v, ok)
	}
	// Seq 1 is now the in-order head; blocking Next must pick it up.
	seq, v, ok = o.Next()
	if !ok || seq != 1 || v != 10 {
		t.Fatalf("Next = (%d,%d,%v), want (1,10,true)", seq, v, ok)
	}
	if _, _, ok := o.TryNext(); ok {
		t.Fatal("TryNext returned ok with nothing pending")
	}
	o.Close()
	if _, _, ok := o.TryNext(); ok {
		t.Fatal("TryNext returned ok after Close with empty slot")
	}
}

func TestInOrderStartOffset(t *testing.T) {
	o := NewInOrder[string](8, 100)
	if o.NextSeq() != 100 {
		t.Fatalf("NextSeq = %d, want 100", o.NextSeq())
	}
	go o.Offer(101, "b")
	go o.Offer(100, "a")
	seq, v, _ := o.Next()
	if seq != 100 || v != "a" {
		t.Fatalf("got (%d,%q)", seq, v)
	}
	seq, v, _ = o.Next()
	if seq != 101 || v != "b" {
		t.Fatalf("got (%d,%q)", seq, v)
	}
}

func TestMapReorderMatchesInOrder(t *testing.T) {
	const n = 100
	m := NewMapReorder[int](0)
	perm := rand.New(rand.NewSource(7)).Perm(n)
	go func() {
		for _, s := range perm {
			m.Offer(uint64(s), s)
		}
	}()
	for i := 0; i < n; i++ {
		seq, v, ok := m.Next()
		if !ok || seq != uint64(i) || v != i {
			t.Fatalf("MapReorder out of order: (%d,%d,%v)", seq, v, ok)
		}
	}
	m.Close()
	if _, _, ok := m.Next(); ok {
		t.Fatal("MapReorder.Next ok after close")
	}
}

// ---- Ablation benchmarks: queue implementations under the batch-thread
// workload shape (1 producer input-thread, B consumer batch-threads). ----

func benchQueue(b *testing.B, q Queue[int], consumers int) {
	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, ok := q.Pop(); !ok {
					return
				}
			}
		}()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(i)
	}
	q.Close()
	wg.Wait()
}

func BenchmarkQueueMPMC(b *testing.B)  { benchQueue(b, NewMPMC[int](1024), 2) }
func BenchmarkQueueMutex(b *testing.B) { benchQueue(b, NewMutexQueue[int](1024), 2) }
func BenchmarkQueueChan(b *testing.B)  { benchQueue(b, NewChanQueue[int](1024), 2) }

func BenchmarkInOrderOfferNext(b *testing.B) {
	o := NewInOrder[int](1024, 0)
	go func() {
		for i := 0; i < b.N; i++ {
			o.Offer(uint64(i), i)
		}
	}()
	for i := 0; i < b.N; i++ {
		o.Next()
	}
	o.Close()
}

func BenchmarkMapReorderOfferNext(b *testing.B) {
	o := NewMapReorder[int](0)
	go func() {
		for i := 0; i < b.N; i++ {
			o.Offer(uint64(i), i)
		}
	}()
	for i := 0; i < b.N; i++ {
		o.Next()
	}
	o.Close()
}

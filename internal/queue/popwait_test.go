package queue

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPopWaitImmediateItem(t *testing.T) {
	q := NewMPMC[int](8)
	q.Push(41)
	v, ok := q.PopWait(time.Second)
	if !ok || v != 41 {
		t.Fatalf("PopWait = (%d, %v), want (41, true)", v, ok)
	}
}

func TestPopWaitTimeout(t *testing.T) {
	q := NewMPMC[int](8)
	start := time.Now()
	_, ok := q.PopWait(20 * time.Millisecond)
	if ok {
		t.Fatal("PopWait returned an item from an empty queue")
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("PopWait returned after %v, before the 20ms deadline", elapsed)
	}
}

func TestPopWaitNonPositiveTimeoutIsTryPop(t *testing.T) {
	q := NewMPMC[int](8)
	start := time.Now()
	if _, ok := q.PopWait(0); ok {
		t.Fatal("PopWait(0) returned an item from an empty queue")
	}
	if _, ok := q.PopWait(-time.Second); ok {
		t.Fatal("PopWait(<0) returned an item from an empty queue")
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("non-positive timeout blocked for %v", elapsed)
	}
}

func TestPopWaitWokenByPush(t *testing.T) {
	q := NewMPMC[int](8)
	done := make(chan int, 1)
	go func() {
		v, ok := q.PopWait(5 * time.Second)
		if !ok {
			done <- -1
			return
		}
		done <- v
	}()
	time.Sleep(10 * time.Millisecond) // let the consumer park
	q.Push(7)
	select {
	case v := <-done:
		if v != 7 {
			t.Fatalf("parked consumer got %d, want 7", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("push never woke the parked consumer")
	}
}

func TestCloseWakesAllParkedConsumers(t *testing.T) {
	q := NewMPMC[int](8)
	const waiters = 6
	var wg sync.WaitGroup
	var woke atomic.Int32
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(popWait bool) {
			defer wg.Done()
			var ok bool
			if popWait {
				_, ok = q.PopWait(30 * time.Second)
			} else {
				_, ok = q.Pop()
			}
			if !ok {
				woke.Add(1)
			}
		}(i%2 == 0)
	}
	time.Sleep(20 * time.Millisecond) // let everyone park
	q.Close()
	doneC := make(chan struct{})
	go func() { wg.Wait(); close(doneC) }()
	select {
	case <-doneC:
	case <-time.After(5 * time.Second):
		t.Fatal("Close left consumers parked (wake cascade broken)")
	}
	if got := woke.Load(); got != waiters {
		t.Fatalf("%d of %d consumers observed the close", got, waiters)
	}
}

// TestPopWaitConcurrentHandoff hammers parked consumers with bursty
// producers: every pushed item must come out exactly once even though the
// single wake token is shared by all waiters.
func TestPopWaitConcurrentHandoff(t *testing.T) {
	q := NewMPMC[uint32](64)
	const producers, consumers, perProducer = 4, 4, 2000
	var got sync.Map
	var received atomic.Int64
	var wg sync.WaitGroup

	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, ok := q.PopWait(100 * time.Millisecond)
				if !ok {
					if q.Len() == 0 && received.Load() == producers*perProducer {
						return
					}
					continue
				}
				if _, dup := got.LoadOrStore(v, true); dup {
					t.Errorf("value %d delivered twice", v)
					return
				}
				received.Add(1)
			}
		}()
	}
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push(uint32(p*perProducer + i))
				if i%64 == 0 {
					time.Sleep(time.Microsecond) // force park/wake cycles
				}
			}
		}(p)
	}
	wg.Wait()
	if received.Load() != producers*perProducer {
		t.Fatalf("received %d of %d items", received.Load(), producers*perProducer)
	}
}

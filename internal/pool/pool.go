// Package pool implements the buffer-pool management of Section 4.8:
// message and transaction objects are preallocated at initialization and
// recycled instead of being allocated and freed once per message.
package pool

import (
	"sync"
	"sync/atomic"
)

// Pool is a typed free-list of reusable objects. Get hands out a recycled
// object when one is available and allocates otherwise; Put returns an
// object to the pool after resetting it. Pool is safe for concurrent use.
//
// Unlike sync.Pool, objects are never reclaimed by the garbage collector
// behind the pool's back, mirroring the paper's fixed buffer pools, and
// hit/miss counters are exposed so tests and benchmarks can observe reuse.
type Pool[T any] struct {
	mu    sync.Mutex
	free  []*T
	alloc func() *T
	reset func(*T)
	cap   int

	hits   atomic.Uint64
	misses atomic.Uint64
}

// New creates a Pool that allocates with alloc and recycles with reset
// (reset may be nil). prealloc objects are created eagerly — the paper's
// "large number of empty objects" at system initialization — and maxIdle
// bounds how many idle objects the pool retains (0 means unbounded).
func New[T any](alloc func() *T, reset func(*T), prealloc, maxIdle int) *Pool[T] {
	if alloc == nil {
		alloc = func() *T { return new(T) }
	}
	p := &Pool[T]{alloc: alloc, reset: reset, cap: maxIdle}
	if prealloc > 0 {
		p.free = make([]*T, 0, prealloc)
		for i := 0; i < prealloc; i++ {
			p.free = append(p.free, alloc())
		}
	}
	return p
}

// Get returns an object from the pool, allocating if the pool is empty.
func (p *Pool[T]) Get() *T {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		v := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		p.hits.Add(1)
		return v
	}
	p.mu.Unlock()
	p.misses.Add(1)
	return p.alloc()
}

// Put resets v and returns it to the pool. Objects beyond the idle bound
// are dropped for the garbage collector.
func (p *Pool[T]) Put(v *T) {
	if v == nil {
		return
	}
	if p.reset != nil {
		p.reset(v)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cap > 0 && len(p.free) >= p.cap {
		return
	}
	p.free = append(p.free, v)
}

// Idle returns the number of objects currently parked in the pool.
func (p *Pool[T]) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// Stats returns the cumulative hit and miss counts.
func (p *Pool[T]) Stats() (hits, misses uint64) {
	return p.hits.Load(), p.misses.Load()
}

// BytePool recycles byte slices bucketed by capacity class. It backs the
// encoding buffers of the output threads and the zero-copy frame arenas
// of the receive path, where message sizes vary with batch size and
// payload (Sections 5.3 and 5.5). Hit/miss counters mirror Pool's so the
// node stats tick and the allocs benchmark can observe reuse.
type BytePool struct {
	pools [numClasses]sync.Pool
	// boxes recycles the *[]byte headers the class pools store, so a
	// steady-state Get/Put cycle allocates nothing at all — without it
	// every Put would heap-allocate a fresh header for its slice.
	boxes sync.Pool

	hits   atomic.Uint64
	misses atomic.Uint64
}

const (
	minClassBits = 8  // 256 B
	maxClassBits = 24 // 16 MiB
	numClasses   = maxClassBits - minClassBits + 1
)

// classFor returns the bucket index for a capacity, or -1 if out of range.
func classFor(n int) int {
	if n <= 0 {
		return 0
	}
	bits := 0
	for (1 << bits) < n {
		bits++
	}
	if bits < minClassBits {
		return 0
	}
	if bits > maxClassBits {
		return -1
	}
	return bits - minClassBits
}

// Get returns a zero-length slice with capacity at least n.
func (b *BytePool) Get(n int) []byte {
	c := classFor(n)
	if c < 0 {
		b.misses.Add(1)
		return make([]byte, 0, n)
	}
	if v := b.pools[c].Get(); v != nil {
		if p, ok := v.(*[]byte); ok && cap(*p) >= n {
			s := *p
			*p = nil
			b.boxes.Put(p)
			b.hits.Add(1)
			return s[:0]
		}
	}
	b.misses.Add(1)
	return make([]byte, 0, 1<<(c+minClassBits))
}

// Stats returns the cumulative hit and miss counts. A miss is a Get that
// had to allocate — either an empty class or an out-of-range size.
func (b *BytePool) Stats() (hits, misses uint64) {
	return b.hits.Load(), b.misses.Load()
}

// Put recycles a slice obtained from Get.
func (b *BytePool) Put(s []byte) {
	c := classFor(cap(s))
	if c < 0 {
		return
	}
	// Only recycle slices that exactly fit their class so Get's capacity
	// promise holds.
	if cap(s) != 1<<(c+minClassBits) {
		if cap(s) < 1<<minClassBits {
			return
		}
		// Find the class the capacity fully covers.
		c = -1
		for bits := maxClassBits; bits >= minClassBits; bits-- {
			if cap(s) >= 1<<bits {
				c = bits - minClassBits
				break
			}
		}
		if c < 0 {
			return
		}
	}
	var p *[]byte
	if v := b.boxes.Get(); v != nil {
		p = v.(*[]byte)
	} else {
		p = new([]byte)
	}
	*p = s[:0]
	b.pools[c].Put(p)
}

package pool

import (
	"sync"
	"testing"
)

type message struct {
	seq  uint64
	body []byte
}

func newMessagePool(prealloc, maxIdle int) *Pool[message] {
	return New(
		func() *message { return &message{body: make([]byte, 0, 64)} },
		func(m *message) { m.seq = 0; m.body = m.body[:0] },
		prealloc, maxIdle,
	)
}

func TestPoolPreallocation(t *testing.T) {
	p := newMessagePool(10, 0)
	if got := p.Idle(); got != 10 {
		t.Fatalf("Idle = %d, want 10", got)
	}
	for i := 0; i < 10; i++ {
		if p.Get() == nil {
			t.Fatal("Get returned nil")
		}
	}
	hits, misses := p.Stats()
	if hits != 10 || misses != 0 {
		t.Fatalf("Stats = (%d,%d), want (10,0)", hits, misses)
	}
	// Pool exhausted: next Get allocates.
	if p.Get() == nil {
		t.Fatal("Get returned nil after exhaustion")
	}
	if _, misses := p.Stats(); misses != 1 {
		t.Fatalf("misses = %d, want 1", misses)
	}
}

func TestPoolResetOnPut(t *testing.T) {
	p := newMessagePool(0, 0)
	m := p.Get()
	m.seq = 99
	m.body = append(m.body, 1, 2, 3)
	p.Put(m)
	got := p.Get()
	if got != m {
		t.Fatal("Get did not return the recycled object")
	}
	if got.seq != 0 || len(got.body) != 0 {
		t.Fatalf("recycled object not reset: %+v", got)
	}
}

func TestPoolMaxIdleBound(t *testing.T) {
	p := newMessagePool(0, 2)
	a, b, c := p.Get(), p.Get(), p.Get()
	p.Put(a)
	p.Put(b)
	p.Put(c) // dropped: pool already holds maxIdle
	if got := p.Idle(); got != 2 {
		t.Fatalf("Idle = %d, want 2", got)
	}
}

func TestPoolPutNilIsNoop(t *testing.T) {
	p := newMessagePool(0, 0)
	p.Put(nil)
	if got := p.Idle(); got != 0 {
		t.Fatalf("Idle = %d after Put(nil)", got)
	}
}

func TestPoolConcurrentReuse(t *testing.T) {
	p := newMessagePool(32, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				m := p.Get()
				m.seq = uint64(i)
				m.body = append(m.body, byte(i))
				p.Put(m)
			}
		}()
	}
	wg.Wait()
	hits, misses := p.Stats()
	if hits+misses != 8*5000 {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, 8*5000)
	}
	// With 32 preallocated objects and 8 workers, reuse must dominate.
	if hits < misses {
		t.Fatalf("pool not reusing: hits=%d misses=%d", hits, misses)
	}
}

func TestBytePoolCapacityPromise(t *testing.T) {
	var bp BytePool
	for _, n := range []int{1, 100, 256, 300, 4096, 100000} {
		s := bp.Get(n)
		if cap(s) < n {
			t.Fatalf("Get(%d) capacity %d", n, cap(s))
		}
		if len(s) != 0 {
			t.Fatalf("Get(%d) length %d, want 0", n, len(s))
		}
		bp.Put(s)
		s2 := bp.Get(n)
		if cap(s2) < n {
			t.Fatalf("recycled Get(%d) capacity %d", n, cap(s2))
		}
	}
}

func TestBytePoolHugeSlices(t *testing.T) {
	var bp BytePool
	s := bp.Get(1 << 25) // beyond the largest class
	if cap(s) < 1<<25 {
		t.Fatal("huge Get under capacity")
	}
	bp.Put(s) // must not panic; slice is simply dropped
}

// BenchmarkAblationPoolGetPut vs BenchmarkAblationMallocFree measure the
// Section 4.8 claim: recycling message objects beats per-message
// allocation. Run with -benchmem to see the allocation counts.
func BenchmarkAblationPoolGetPut(b *testing.B) {
	p := newMessagePool(64, 0)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m := p.Get()
			m.seq = 1
			m.body = append(m.body[:0], 1, 2, 3, 4, 5, 6, 7, 8)
			p.Put(m)
		}
	})
}

func BenchmarkAblationMallocFree(b *testing.B) {
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var sink *message
		for pb.Next() {
			m := &message{body: make([]byte, 0, 64)}
			m.seq = 1
			m.body = append(m.body, 1, 2, 3, 4, 5, 6, 7, 8)
			sink = m
		}
		_ = sink
	})
}

package stats

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(99) != 0 {
		t.Fatal("zero value not empty")
	}
	h.Record(10 * time.Millisecond)
	h.Record(20 * time.Millisecond)
	h.Record(30 * time.Millisecond)
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Mean(); got != 20*time.Millisecond {
		t.Fatalf("Mean = %v", got)
	}
	if got := h.Max(); got != 30*time.Millisecond {
		t.Fatalf("Max = %v", got)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	// 100 observations: 1ms..100ms.
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	p50 := h.Percentile(50)
	p99 := h.Percentile(99)
	// Log-bucketed upper bounds: p50 within a factor of two of 50ms.
	if p50 < 50*time.Millisecond || p50 > 128*time.Millisecond {
		t.Fatalf("P50 = %v", p50)
	}
	if p99 < 99*time.Millisecond || p99 > 256*time.Millisecond {
		t.Fatalf("P99 = %v", p99)
	}
	if p99 < p50 {
		t.Fatal("P99 < P50")
	}
	if h.Percentile(0) <= 0 {
		t.Fatal("P0 not positive")
	}
	if h.Percentile(100) < h.Percentile(99) {
		t.Fatal("P100 < P99")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatal("negative observation lost")
	}
	if h.Max() != 0 {
		t.Fatalf("Max = %v, want 0", h.Max())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				h.Record(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 80000 {
		t.Fatalf("Count = %d, want 80000", h.Count())
	}
	if h.Mean() != time.Millisecond {
		t.Fatalf("Mean = %v", h.Mean())
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Fatalf("Throughput = %v", got)
	}
	if got := Throughput(500, 250*time.Millisecond); got != 2000 {
		t.Fatalf("Throughput = %v", got)
	}
	if got := Throughput(5, 0); got != 0 {
		t.Fatalf("Throughput with zero window = %v", got)
	}
}

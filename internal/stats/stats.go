// Package stats provides the measurement primitives used by the
// evaluation harness: thread-safe latency histograms with percentile
// queries and throughput windows.
package stats

import (
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two latency buckets; bucket i
// covers [2^i, 2^(i+1)) nanoseconds, reaching ~18 hours at i=63.
const histBuckets = 64

// Histogram is a lock-free log-scale latency histogram. The zero value is
// ready to use.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	ns := uint64(d)
	if d < 0 {
		ns = 0
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

func bucketOf(ns uint64) int {
	b := 0
	for ns > 1 && b < histBuckets-1 {
		ns >>= 1
		b++
	}
	return b
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the average observation.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Percentile returns an upper bound on the p-th percentile (p in [0,100]).
// Resolution is the bucket width (a factor of two).
func (h *Histogram) Percentile(p float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	target := uint64(float64(n) * p / 100.0)
	if target >= n {
		target = n - 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen > target {
			return time.Duration(uint64(1) << uint(i+1)) // bucket upper bound
		}
	}
	return h.Max()
}

// Throughput converts a completed-operation count and a wall-clock window
// into operations per second.
func Throughput(ops uint64, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(ops) / window.Seconds()
}

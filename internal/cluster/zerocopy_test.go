package cluster

import (
	"context"
	"sync"
	"testing"
	"time"

	clientengine "resilientdb/internal/consensus/client"
	"resilientdb/internal/crypto"
	"resilientdb/internal/ledger"
	"resilientdb/internal/replica"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
	"resilientdb/internal/workload"
)

// TestClusterPooledEncodeAB runs the same workload with the pooled
// outbound encode path off and on. Both runs must make progress and every
// replica pair must agree block-by-block (chain equality hashes the block
// contents, so any aliasing bug that let a recycled buffer leak into a
// proposal would diverge the chains or break validation). The pooled run
// must also show the pool actually engaged.
func TestClusterPooledEncodeAB(t *testing.T) {
	for _, pooled := range []int{-1, 0} {
		opts := smallOpts()
		opts.PooledEncode = pooled
		c, res := runCluster(t, opts, 1200*time.Millisecond)
		if res.Txns == 0 {
			t.Fatalf("pooledEncode=%d: no transactions completed", pooled)
		}
		if err := c.VerifyLedgers(nil); err != nil {
			t.Fatalf("pooledEncode=%d: %v", pooled, err)
		}
		var hits, misses uint64
		for i := 0; i < opts.N; i++ {
			s := c.Replica(i).Stats()
			hits += s.EncodePoolHits
			misses += s.EncodePoolMisses
		}
		if pooled < 0 && hits+misses != 0 {
			t.Fatalf("pooledEncode=%d: encode pool used while disabled (hits=%d misses=%d)", pooled, hits, misses)
		}
		if pooled >= 0 && hits == 0 {
			t.Fatalf("pooledEncode=%d: encode pool never hit (misses=%d)", pooled, misses)
		}
	}
}

// TestClusterBatchedVerify runs an all-ed25519 cluster with the batched
// verification window enabled and checks both correctness (agreed, valid
// chains) and that batch verification actually happened.
func TestClusterBatchedVerify(t *testing.T) {
	opts := smallOpts()
	opts.Crypto = crypto.AllED25519()
	opts.VerifyThreads = 2
	opts.VerifyBatch = crypto.DefaultVerifyBatch
	c, res := runCluster(t, opts, 1200*time.Millisecond)
	if res.Txns == 0 {
		t.Fatal("no transactions completed")
	}
	if err := c.VerifyLedgers(nil); err != nil {
		t.Fatal(err)
	}
	var batched uint64
	for i := 0; i < opts.N; i++ {
		batched += c.Replica(i).Stats().VerifyBatched
	}
	if batched == 0 {
		t.Fatal("no signature was verified via the batched path")
	}
}

// TestTCPClusterZeroCopyEndToEnd is TestTCPClusterEndToEnd with the whole
// zero-copy hot path on: pooled frame decode on every endpoint, pooled
// outbound encode on replicas and clients, and batched verification. Run
// under -race it exercises the arena handoff across the full
// transport → verify → worker → execute pipeline.
func TestTCPClusterZeroCopyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster in -short mode")
	}
	const n = 4
	dir, err := crypto.NewDirectory(crypto.Recommended(), [32]byte{21})
	if err != nil {
		t.Fatal(err)
	}

	newEP := func(self types.NodeID, inboxes, capacity int) *transport.TCPEndpoint {
		t.Helper()
		ep, err := transport.NewTCPWithConfig(transport.TCPConfig{
			Self:       self,
			ListenAddr: "127.0.0.1:0",
			Inboxes:    inboxes,
			Capacity:   capacity,
			ZeroCopy:   true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ep
	}

	eps := make([]*transport.TCPEndpoint, n)
	addrs := make(map[types.NodeID]string)
	for i := 0; i < n; i++ {
		eps[i] = newEP(types.ReplicaNode(types.ReplicaID(i)), 3, 1<<12)
		addrs[types.ReplicaNode(types.ReplicaID(i))] = eps[i].Addr()
	}
	for i := 0; i < n; i++ {
		for node, addr := range addrs {
			eps[i].SetPeerAddr(node, addr)
		}
	}

	reps := make([]*replica.Replica, n)
	for i := 0; i < n; i++ {
		rep, err := replica.New(replica.Config{
			ID:               types.ReplicaID(i),
			N:                n,
			Protocol:         replica.PBFT,
			BatchSize:        8,
			BatchThreads:     2,
			ExecuteThreads:   1,
			VerifyThreads:    2,
			Directory:        dir,
			Endpoint:         eps[i],
			VerifyClientSigs: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = rep
		rep.Start()
	}
	defer func() {
		for _, r := range reps {
			r.Stop()
		}
	}()

	wlCfg := workload.Default()
	wlCfg.Records = 500
	ctx, cancel := context.WithTimeout(context.Background(), 1500*time.Millisecond)
	defer cancel()

	var wg sync.WaitGroup
	clients := make([]*Client, 2)
	for i := range clients {
		wl, err := workload.New(wlCfg, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		cep := newEP(types.ClientNode(types.ClientID(i)), 1, 1<<10)
		defer cep.Close()
		for node, addr := range addrs {
			cep.SetPeerAddr(node, addr)
		}
		for node := range addrs {
			if err := cep.Hello(node); err != nil {
				t.Fatal(err)
			}
		}
		cl, err := NewClient(ClientConfig{
			ID:        types.ClientID(i),
			N:         n,
			Protocol:  clientengine.PBFT,
			Timeout:   400 * time.Millisecond,
			Directory: dir,
			Endpoint:  cep,
			Workload:  wl,
		})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl.Run(ctx)
		}()
	}
	wg.Wait()

	var txns uint64
	for _, cl := range clients {
		txns += cl.Stats().TxnsCompleted
	}
	if txns == 0 {
		t.Fatal("no transactions completed over zero-copy TCP")
	}
	// The replicas' frame pools must have carried the traffic.
	var hits uint64
	for _, ep := range eps {
		h, _ := ep.FramePoolStats()
		hits += h
	}
	if hits == 0 {
		t.Fatal("replica frame pools never hit; zero-copy decode not engaged")
	}
	// Chains agree pairwise (block hashes cover batches, proofs, and
	// results, so a recycled-buffer corruption could not hide here).
	for i := 0; i < n; i++ {
		if err := reps[i].Ledger().Validate(); err != nil {
			t.Fatalf("replica %d ledger invalid: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if err := ledger.VerifyChainEquality(reps[0].Ledger(), reps[i].Ledger()); err != nil {
			t.Fatalf("replica 0 vs %d: %v", i, err)
		}
	}
}

package cluster

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	clientengine "resilientdb/internal/consensus/client"
	"resilientdb/internal/crypto"
	"resilientdb/internal/ledger"
	"resilientdb/internal/replica"
	"resilientdb/internal/stats"
	"resilientdb/internal/store"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
	"resilientdb/internal/workload"
)

// Options configures a single-process cluster.
type Options struct {
	// N is the number of replicas (n ≥ 3f+1); Clients the number of
	// closed-loop clients.
	N       int
	Clients int
	// Protocol selects PBFT or Zyzzyva for replicas and clients alike.
	Protocol replica.Protocol
	// Burst is transactions per client request; BatchSize transactions
	// per consensus batch.
	Burst     int
	BatchSize int
	// Thread counts; see replica.Config. Defaults follow the paper's
	// standard configuration: 2 batch-threads, 1 execute-thread,
	// 2 output-threads, 2 replica input-threads, plus 2 verify-threads
	// (the parallel-crypto refinement of Section 4.2). Pass -1 to request
	// the folded 0B / 0E / inline-verify configurations explicitly.
	// ExecuteThreads is E, the execution shard count: values above 1 run
	// the execute stage as E write-set-partitioned shard workers behind
	// the in-order coordinator (deterministic — see
	// replica.Config.ExecuteThreads).
	BatchThreads   int
	ExecuteThreads int
	OutputThreads  int
	ReplicaInboxes int
	VerifyThreads  int
	// ExecPipelineDepth is the execute stage's cross-batch pipelining
	// depth (default 1, the strict per-batch barrier; see
	// replica.Config.ExecPipelineDepth). Only meaningful with
	// ExecuteThreads > 1.
	ExecPipelineDepth int
	// WorkerThreads is W, the number of parallel worker lanes stepping
	// the consensus engine (default 1, the paper's baseline; see
	// replica.Config.WorkerThreads). Zyzzyva replicas always run a
	// single lane regardless of this knob.
	WorkerThreads int
	// Crypto selects the signature configuration (default: the paper's
	// recommended CMAC + ED25519 combination).
	Crypto crypto.Config
	// Workload configures the YCSB generator.
	Workload workload.Config
	// ClientTimeout is the client retransmission delay; ViewTimeout the
	// replica progress watchdog (0 disables view changes).
	ClientTimeout time.Duration
	ViewTimeout   time.Duration
	// CheckpointInterval is Δ in batches.
	CheckpointInterval uint64
	// LedgerMode selects block linkage.
	LedgerMode ledger.Mode
	// DisableOutOfOrder serializes consensus (ablation).
	DisableOutOfOrder bool
	// StoreFactory builds each replica's record store; nil means the
	// StoreBackend knobs below decide.
	StoreFactory func(id types.ReplicaID) (store.Store, error)
	// StoreBackend selects the record store when StoreFactory is nil:
	// "mem" (default) keeps records in memory (the paper's recommended
	// configuration, Section 6 "Memory Storage"); "disk" is the serial
	// blocking DiskStore (the Section 5.7 off-memory contrast, fsync per
	// Put when StoreSync > 0); "sharded" is the sharded group-commit
	// DiskStore (one append log per shard, fsync linger StoreSync).
	StoreBackend string
	// StoreDir is the root directory for disk-backed stores; each replica
	// gets a replica-<id> subdirectory. Empty means a fresh temp dir.
	StoreDir string
	// StoreShards is the sharded backend's log count; 0 aligns it with
	// ExecuteThreads so each execution shard streams to a private log.
	StoreShards int
	// StoreSync enables durability on the disk backends: for "sharded" it
	// is the group-commit fsync linger; for "disk" any positive value
	// selects fsync-per-Put. 0 (default) never fsyncs.
	StoreSync time.Duration
	// StoreCompactRatio is the disk backends' garbage-ratio compaction
	// threshold (dead bytes / total log bytes, checked per shard log when
	// a stable checkpoint fires the replica's compaction trigger). 0
	// means the default (store.DefaultCompactRatio); negative disables
	// checkpoint-driven compaction.
	StoreCompactRatio float64
	// StoreCompactMinBytes is the log size below which checkpoint-driven
	// compaction never rewrites. 0 means the default
	// (store.DefaultCompactMinBytes); negative removes the floor.
	StoreCompactMinBytes int64
	// StoreReadIndex controls the disk backends' in-memory read index
	// (the current-state layer local reads are served from): 0 keeps it on
	// (the deployment default), -1 disables it so Get goes back through
	// the shard log. Ignored by the mem backend.
	StoreReadIndex int
	// ReadMode selects how clients issue read-only requests: "quorum"
	// (default) orders them through consensus; "local" sends them to a
	// single replica, answered from its last-executed state without a
	// consensus round (per-key freshness only — see types.ReadRequest for
	// the exact semantics).
	ReadMode string
	// PooledEncode controls the pooled outbound encode path on replicas
	// and clients alike (see replica.Config.PooledEncode): 0 (default) on,
	// negative off — the pre-pooling baseline kept for allocation A/B
	// measurements.
	PooledEncode int
	// VerifyBatch is the verify pool's batch-drain limit (see
	// replica.Config.VerifyBatch): 0 means the default
	// (crypto.DefaultVerifyBatch), 1 verifies per signature, negative
	// disables batching explicitly.
	VerifyBatch int
	// Seed makes key material and workloads reproducible.
	Seed int64
	// PreloadTable loads the YCSB table into every store before starting.
	PreloadTable bool
	// EndpointWrapper, when non-nil, wraps each replica's transport
	// endpoint before the replica sees it — the chaos harness's network
	// seam (drop/delay/partition/Byzantine rules live in the wrapper).
	// The directory is passed so a wrapper can re-sign bodies it mutates.
	// Restart builds the replacement endpoint through the same wrapper.
	EndpointWrapper func(id types.ReplicaID, ep transport.Endpoint, dir *crypto.Directory) transport.Endpoint
	// StoreWrapper, when non-nil, wraps each replica's record store before
	// the replica sees it — the chaos harness's disk seam (fsync stalls,
	// write errors). The cluster keeps closing the inner store it built;
	// wrappers must delegate Close.
	StoreWrapper func(id types.ReplicaID, st store.Store) store.Store
}

func (o *Options) fill() error {
	if o.N < 4 {
		return fmt.Errorf("cluster: need n ≥ 4, got %d", o.N)
	}
	if o.Clients < 1 {
		o.Clients = 4
	}
	if o.Protocol == 0 {
		o.Protocol = replica.PBFT
	}
	if o.Burst < 1 {
		o.Burst = 1
	}
	if o.BatchSize < 1 {
		o.BatchSize = 100
	}
	if o.BatchThreads == 0 {
		o.BatchThreads = 2
	}
	if o.BatchThreads < 0 {
		o.BatchThreads = 0 // explicit 0B request
	}
	if o.ExecuteThreads == 0 {
		o.ExecuteThreads = 1
	}
	if o.ExecuteThreads < 0 {
		o.ExecuteThreads = 0 // explicit 0E request
	}
	if o.OutputThreads == 0 {
		o.OutputThreads = 2
	}
	if o.ReplicaInboxes == 0 {
		o.ReplicaInboxes = 2
	}
	if o.VerifyThreads == 0 {
		o.VerifyThreads = 2
	}
	if o.VerifyThreads < 0 {
		o.VerifyThreads = 0 // explicit inline-verify request
	}
	if o.WorkerThreads < 1 {
		o.WorkerThreads = 1 // single worker lane, the paper's baseline
	}
	if o.ExecPipelineDepth < 1 {
		o.ExecPipelineDepth = 1 // strict per-batch barrier, the baseline
	}
	switch o.StoreBackend {
	case "":
		o.StoreBackend = "mem"
	case "mem", "disk", "sharded":
	default:
		return fmt.Errorf("cluster: unknown store backend %q (want mem|disk|sharded)", o.StoreBackend)
	}
	if o.StoreSync < 0 {
		return fmt.Errorf("cluster: negative store sync linger %v", o.StoreSync)
	}
	switch o.ReadMode {
	case "":
		o.ReadMode = "quorum"
	case "quorum", "local":
	default:
		return fmt.Errorf("cluster: unknown read mode %q (want quorum|local)", o.ReadMode)
	}
	if o.Crypto.ReplicaScheme == 0 {
		o.Crypto = crypto.Recommended()
	}
	if o.Workload.Records == 0 {
		o.Workload = workload.Default()
	}
	if o.ClientTimeout <= 0 {
		o.ClientTimeout = 500 * time.Millisecond
	}
	if o.CheckpointInterval == 0 {
		o.CheckpointInterval = 100
	}
	return nil
}

// ExecuteThreadsOne is a helper constant for readability at call sites.
const ExecuteThreadsOne = 1

// Result summarizes a load run.
type Result struct {
	Duration   time.Duration
	Txns       uint64
	Throughput float64 // transactions per second (client-side completions)
	MeanLat    time.Duration
	P50Lat     time.Duration
	P99Lat     time.Duration
	FastPath   uint64
	SlowPath   uint64
	Retransmit uint64
	// Read/scan/write split, classified write over scan over read:
	// ReadTxns counts transactions from point-read-only requests (however
	// they traveled), ScanTxns those from write-free requests carrying a
	// range scan, WriteTxns the rest; the per-kind percentiles come from
	// separate histograms. LocalReads counts the write-free requests
	// served by the consensus-bypassing local path and StaleFallbacks the
	// ones every replica refused under the staleness bound, re-run through
	// quorum.
	ReadTxns       uint64
	ScanTxns       uint64
	WriteTxns      uint64
	LocalReads     uint64
	StaleFallbacks uint64
	ReadP50Lat     time.Duration
	ReadP95Lat     time.Duration
	ReadP99Lat     time.Duration
	ScanP50Lat     time.Duration
	ScanP95Lat     time.Duration
	ScanP99Lat     time.Duration
	WriteP50Lat    time.Duration
	WriteP95Lat    time.Duration
	WriteP99Lat    time.Duration
}

// String renders a compact one-line summary.
func (r Result) String() string {
	s := fmt.Sprintf("txns=%d tput=%.0f txn/s mean=%s p50=%s p99=%s fast=%d slow=%d retx=%d",
		r.Txns, r.Throughput, r.MeanLat, r.P50Lat, r.P99Lat, r.FastPath, r.SlowPath, r.Retransmit)
	if r.ReadTxns > 0 || r.ScanTxns > 0 {
		s += fmt.Sprintf(" reads=%d(p50=%s p95=%s)", r.ReadTxns, r.ReadP50Lat, r.ReadP95Lat)
		if r.ScanTxns > 0 {
			s += fmt.Sprintf(" scans=%d(p50=%s p95=%s)", r.ScanTxns, r.ScanP50Lat, r.ScanP95Lat)
		}
		s += fmt.Sprintf(" local=%d stale=%d writes=%d(p50=%s p95=%s)",
			r.LocalReads, r.StaleFallbacks, r.WriteTxns, r.WriteP50Lat, r.WriteP95Lat)
	}
	return s
}

// Cluster is a runnable single-process deployment.
type Cluster struct {
	opts     Options
	net      *transport.Inproc
	dir      *crypto.Directory
	replicas []*replica.Replica
	clients  []*Client
	clientEP []transport.Endpoint

	// stores holds each replica's inner (pre-wrapper) record store;
	// storeOwned marks the ones the cluster built itself (StoreBackend
	// path), which are closed on Stop. Externally provided stores
	// (StoreFactory) are the caller's.
	stores     []store.Store
	storeOwned []bool
	// tmpStoreDir is the auto-created root for disk-backed stores when
	// StoreDir was empty; removed on Stop.
	tmpStoreDir string

	// downMu guards downed, the crash bookkeeping Crash/Restart maintain;
	// Live is the filter most invariant checks want.
	downMu sync.Mutex
	downed []bool
}

// buildStore constructs one replica's record store from the StoreBackend
// knobs (StoreFactory == nil path) via the shared store.OpenBackend.
func (c *Cluster) buildStore(id types.ReplicaID) (store.Store, error) {
	o := &c.opts
	dir := ""
	if o.StoreBackend == "disk" || o.StoreBackend == "sharded" {
		root := o.StoreDir
		if root == "" {
			if c.tmpStoreDir == "" {
				tmp, err := os.MkdirTemp("", "resdb-store-")
				if err != nil {
					return nil, fmt.Errorf("cluster: temp store dir: %w", err)
				}
				c.tmpStoreDir = tmp
			}
			root = c.tmpStoreDir
		}
		dir = filepath.Join(root, fmt.Sprintf("replica-%d", id))
	}
	return store.OpenBackend(store.BackendConfig{
		Backend:         o.StoreBackend,
		Dir:             dir,
		Shards:          o.StoreShards,
		ExecShards:      o.ExecuteThreads,
		SyncLinger:      o.StoreSync,
		CompactRatio:    o.StoreCompactRatio,
		CompactMinBytes: o.StoreCompactMinBytes,
		MemSizeHint:     int(o.Workload.Records),
		ReadIndex:       o.StoreReadIndex >= 0,
	})
}

// closeOwnedStores releases the stores the cluster built itself and the
// auto-created store directory; Stop and failed New calls both use it.
func (c *Cluster) closeOwnedStores() {
	for i, st := range c.stores {
		if st != nil && c.storeOwned[i] {
			_ = st.Close()
		}
	}
	c.stores = nil
	c.storeOwned = nil
	if c.tmpStoreDir != "" {
		_ = os.RemoveAll(c.tmpStoreDir)
		c.tmpStoreDir = ""
	}
}

// buildReplica constructs (and wraps) one replica around an inner store
// and fabric endpoint; boot is nil for a fresh genesis boot. New and
// Restart share it so a restarted replica is configured identically.
// buildEndpoint registers a fresh inbox for the replica on the in-process
// network, applying the chaos wrapper if one is configured. Registration
// is the moment the replica starts receiving: callers that need to replay
// traffic sent before the replica runs (Restart) register early and let
// the inbox buffer.
func (c *Cluster) buildEndpoint(id types.ReplicaID) transport.Endpoint {
	ep := c.net.Endpoint(types.ReplicaNode(id), 1+c.opts.ReplicaInboxes, 1<<13)
	if c.opts.EndpointWrapper != nil {
		ep = c.opts.EndpointWrapper(id, ep, c.dir)
	}
	return ep
}

func (c *Cluster) buildReplica(id types.ReplicaID, st store.Store, boot *replica.Bootstrap, ep transport.Endpoint) (*replica.Replica, error) {
	opts := &c.opts
	if opts.StoreWrapper != nil {
		st = opts.StoreWrapper(id, st)
	}
	return replica.New(replica.Config{
		ID:                 id,
		N:                  opts.N,
		Protocol:           opts.Protocol,
		BatchSize:          opts.BatchSize,
		BatchThreads:       opts.BatchThreads,
		ExecuteThreads:     opts.ExecuteThreads,
		OutputThreads:      opts.OutputThreads,
		ReplicaInboxes:     opts.ReplicaInboxes,
		VerifyThreads:      opts.VerifyThreads,
		WorkerThreads:      opts.WorkerThreads,
		ExecPipelineDepth:  opts.ExecPipelineDepth,
		CheckpointInterval: opts.CheckpointInterval,
		LedgerMode:         opts.LedgerMode,
		Store:              st,
		Directory:          c.dir,
		Endpoint:           ep,
		VerifyClientSigs:   true,
		DisableOutOfOrder:  opts.DisableOutOfOrder,
		ViewTimeout:        opts.ViewTimeout,
		PooledEncode:       opts.PooledEncode,
		VerifyBatch:        opts.VerifyBatch,
		Bootstrap:          boot,
	})
}

// New builds a cluster; call Start before Run.
func New(opts Options) (*Cluster, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	var seed [32]byte
	seed[0] = byte(opts.Seed)
	seed[1] = byte(opts.Seed >> 8)
	seed[2] = byte(opts.Seed >> 16)
	dir, err := crypto.NewDirectory(opts.Crypto, seed)
	if err != nil {
		return nil, err
	}
	c := &Cluster{opts: opts, net: transport.NewInproc(), dir: dir}
	// A failed construction must not leak the stores (open fds, running
	// group-commit goroutines) or the temp dir built for earlier replicas.
	built := false
	defer func() {
		if !built {
			c.closeOwnedStores()
		}
	}()

	c.downed = make([]bool, opts.N)
	for i := 0; i < opts.N; i++ {
		id := types.ReplicaID(i)
		var st store.Store
		owned := false
		if opts.StoreFactory != nil {
			st, err = opts.StoreFactory(id)
			if err != nil {
				return nil, fmt.Errorf("cluster: store for replica %d: %w", i, err)
			}
		} else {
			st, err = c.buildStore(id)
			if err != nil {
				return nil, fmt.Errorf("cluster: store for replica %d: %w", i, err)
			}
			owned = true
		}
		c.stores = append(c.stores, st)
		c.storeOwned = append(c.storeOwned, owned)
		if opts.PreloadTable {
			if err := workload.InitTable(st, opts.Workload); err != nil {
				return nil, err
			}
		}
		rep, err := c.buildReplica(id, st, nil, c.buildEndpoint(id))
		if err != nil {
			return nil, err
		}
		c.replicas = append(c.replicas, rep)
	}

	proto := clientengine.PBFT
	if opts.Protocol == replica.Zyzzyva {
		proto = clientengine.Zyzzyva
	}
	for i := 0; i < opts.Clients; i++ {
		id := types.ClientID(i)
		wl, err := workload.New(opts.Workload, int64(i)+opts.Seed)
		if err != nil {
			return nil, err
		}
		ep := c.net.Endpoint(types.ClientNode(id), 1, 1<<10)
		cl, err := NewClient(ClientConfig{
			ID:           id,
			N:            opts.N,
			Protocol:     proto,
			Burst:        opts.Burst,
			Timeout:      opts.ClientTimeout,
			Directory:    dir,
			Endpoint:     ep,
			Workload:     wl,
			ReadMode:     opts.ReadMode,
			PooledEncode: opts.PooledEncode,
		})
		if err != nil {
			return nil, err
		}
		c.clients = append(c.clients, cl)
		c.clientEP = append(c.clientEP, ep)
	}
	built = true
	return c, nil
}

// Start launches every replica pipeline.
func (c *Cluster) Start() {
	for _, r := range c.replicas {
		r.Start()
	}
}

// Replica returns the i-th replica.
func (c *Cluster) Replica(i int) *replica.Replica { return c.replicas[i] }

// Clients returns the client runtimes.
func (c *Cluster) Clients() []*Client { return c.clients }

// Store returns the i-th replica's inner record store (before any
// StoreWrapper), for invariant checks that compare replica state.
func (c *Cluster) Store(i int) store.Store { return c.stores[i] }

// Directory exposes the cluster's key directory so external runtimes —
// the gateway tier above all — can sign under identities the directory
// derives lazily.
func (c *Cluster) Directory() *crypto.Directory { return c.dir }

// AttachClient registers a fresh client-side endpoint on the in-process
// fabric for an external runtime (the gateway's upstream workers attach
// this way). The caller owns the endpoint's lifecycle and must Close it;
// capacity ≤ 0 means the standard client inbox depth.
func (c *Cluster) AttachClient(id types.ClientID, capacity int) transport.Endpoint {
	if capacity <= 0 {
		capacity = 1 << 10
	}
	return c.net.Endpoint(types.ClientNode(id), 1, capacity)
}

// Crash isolates a replica: all its traffic is silently dropped, exactly
// like a crashed host (Section 5.10 fails backups this way).
func (c *Cluster) Crash(i int) {
	c.downMu.Lock()
	c.downed[i] = true
	c.downMu.Unlock()
	c.net.SetDown(types.ReplicaNode(types.ReplicaID(i)), true)
}

// Live reports whether replica i is currently up (never crashed, or
// crashed and since restarted); it is the filter VerifyLedgers and
// WaitForHeight take.
func (c *Cluster) Live(i int) bool {
	c.downMu.Lock()
	defer c.downMu.Unlock()
	return !c.downed[i]
}

// Restart recovers a crashed replica: the old pipeline is stopped, a
// disk-backed store is reopened from its own directory (replaying its
// logs), and a fresh replica is bootstrapped from a live peer's retained
// ledger tail, current view, and dedup table, then reattached to the
// fabric. A mem-backed store survives the restart as-is — it stands in
// for the durable layer a real deployment would reopen.
//
// The restarted replica converges to chain equality with its peers: its
// ledger resumes at the bootstrap head and appends through normal
// consensus from there. Its record store, however, resumes from its own
// durable state, which may trail the bootstrap head until the ROADMAP's
// state-transfer work lands — so store-equality assertions should exempt
// restarted replicas, and local reads against one may briefly serve
// stale values.
func (c *Cluster) Restart(i int) error {
	c.downMu.Lock()
	if !c.downed[i] {
		c.downMu.Unlock()
		return fmt.Errorf("cluster: restart of replica %d, which is not crashed", i)
	}
	ref := -1
	for j := range c.replicas {
		if j != i && !c.downed[j] {
			ref = j
			break
		}
	}
	c.downMu.Unlock()
	if ref < 0 {
		return fmt.Errorf("cluster: no live peer to bootstrap replica %d from", i)
	}

	// Stop the old pipeline first: it closes its endpoint and finishes any
	// in-flight execution against the store before we touch it.
	c.replicas[i].Stop()

	id := types.ReplicaID(i)
	st := c.stores[i]
	if c.storeOwned[i] && (c.opts.StoreBackend == "disk" || c.opts.StoreBackend == "sharded") {
		// A real crash loses the process but not the disk: close the old
		// handle and reopen the same directory, replaying the shard logs.
		_ = st.Close()
		var err error
		st, err = c.buildStore(id)
		if err != nil {
			return fmt.Errorf("cluster: reopening store for replica %d: %w", i, err)
		}
		c.stores[i] = st
	}

	// Bring the replacement inbox online before snapshotting: from this
	// point every broadcast to the replica is buffered for replay when it
	// starts. Without this there is a fatal gap under live load: a
	// PrePrepare sent between the snapshot and the endpoint going live is
	// never retransmitted, that instance can never commit locally, and
	// the in-order execution queue wedges behind it forever while later
	// sequences pile up.
	ep := c.buildEndpoint(id)
	c.net.SetDown(types.ReplicaNode(id), false)

	// Every sequence proposed before the inbox went live must therefore
	// be covered by the block snapshot. Wait until the peer has executed
	// up to the proposal head observed across the live replicas; bounded,
	// because a view change can abandon a proposed instance, in which
	// case we proceed with the best snapshot available.
	peer := c.replicas[ref]
	var head types.SeqNum
	c.downMu.Lock()
	for j := range c.replicas {
		if j != i && !c.downed[j] {
			if h := c.replicas[j].ProposalHead(); h > head {
				head = h
			}
		}
	}
	c.downMu.Unlock()
	for deadline := time.Now().Add(3 * time.Second); time.Now().Before(deadline); {
		if peer.Ledger().Head().Seq >= head {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Snapshot the peer under live load: dedup first, then blocks, so the
	// dedup table never claims executions past the block snapshot's head.
	// (Executions landing between the two calls are below the bootstrap
	// head on both sides, so neither replica will replay them.)
	boot := &replica.Bootstrap{LastExec: peer.DedupSnapshot()}
	boot.Blocks = peer.Ledger().Blocks()
	boot.View = peer.Stats().View

	rep, err := c.buildReplica(id, st, boot, ep)
	if err != nil {
		return fmt.Errorf("cluster: rebuilding replica %d: %w", i, err)
	}
	c.replicas[i] = rep
	rep.Start()
	c.downMu.Lock()
	c.downed[i] = false
	c.downMu.Unlock()
	return nil
}

// Run drives all clients for the given duration and aggregates results.
// Counters are reported as deltas for this run, so successive Run calls
// (e.g. before and after a crash) are directly comparable.
func (c *Cluster) Run(ctx context.Context, d time.Duration) Result {
	before := make([]ClientStats, len(c.clients))
	for i, cl := range c.clients {
		before[i] = cl.Stats()
	}
	runCtx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	var wg sync.WaitGroup
	start := time.Now()
	for _, cl := range c.clients {
		wg.Add(1)
		go func(cl *Client) {
			defer wg.Done()
			cl.Run(runCtx)
		}(cl)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := Result{Duration: elapsed}
	for i, cl := range c.clients {
		s := cl.Stats()
		res.Txns += s.TxnsCompleted - before[i].TxnsCompleted
		res.FastPath += s.FastPath - before[i].FastPath
		res.SlowPath += s.SlowPath - before[i].SlowPath
		res.Retransmit += s.Retransmits - before[i].Retransmits
		res.ReadTxns += s.ReadTxns - before[i].ReadTxns
		res.ScanTxns += s.ScanTxns - before[i].ScanTxns
		res.WriteTxns += s.WriteTxns - before[i].WriteTxns
		res.LocalReads += s.LocalReads - before[i].LocalReads
		res.StaleFallbacks += s.StaleFallbacks - before[i].StaleFallbacks
	}
	res.Throughput = stats.Throughput(res.Txns, elapsed)
	res.MeanLat, res.P50Lat, res.P99Lat = c.aggregateLatency()
	res.ReadP50Lat, res.ReadP95Lat, res.ReadP99Lat = c.aggregateSplit(func(cl *Client) *stats.Histogram { return cl.ReadLatency() })
	res.ScanP50Lat, res.ScanP95Lat, res.ScanP99Lat = c.aggregateSplit(func(cl *Client) *stats.Histogram { return cl.ScanLatency() })
	res.WriteP50Lat, res.WriteP95Lat, res.WriteP99Lat = c.aggregateSplit(func(cl *Client) *stats.Histogram { return cl.WriteLatency() })
	return res
}

// aggregateSplit reports the worst per-client P50/P95/P99 of one latency
// split, mirroring aggregateLatency's conservative max-across-clients.
func (c *Cluster) aggregateSplit(h func(*Client) *stats.Histogram) (p50, p95, p99 time.Duration) {
	for _, cl := range c.clients {
		hist := h(cl)
		if hist.Count() == 0 {
			continue
		}
		if v := hist.Percentile(50); v > p50 {
			p50 = v
		}
		if v := hist.Percentile(95); v > p95 {
			p95 = v
		}
		if v := hist.Percentile(99); v > p99 {
			p99 = v
		}
	}
	return p50, p95, p99
}

func (c *Cluster) aggregateLatency() (mean, p50, p99 time.Duration) {
	var total uint64
	var weighted uint64
	maxP50, maxP99 := time.Duration(0), time.Duration(0)
	for _, cl := range c.clients {
		h := cl.Latency()
		n := h.Count()
		if n == 0 {
			continue
		}
		total += n
		weighted += uint64(h.Mean()) * n
		if v := h.Percentile(50); v > maxP50 {
			maxP50 = v
		}
		if v := h.Percentile(99); v > maxP99 {
			maxP99 = v
		}
	}
	if total == 0 {
		return 0, 0, 0
	}
	return time.Duration(weighted / total), maxP50, maxP99
}

// WaitForHeight blocks until every live replica's ledger reaches height h
// or the timeout expires; it returns the slowest observed height.
func (c *Cluster) WaitForHeight(h uint64, timeout time.Duration, live func(int) bool) uint64 {
	deadline := time.Now().Add(timeout)
	for {
		minH := ^uint64(0)
		for i, r := range c.replicas {
			if live != nil && !live(i) {
				continue
			}
			if got := r.Ledger().Height(); got < minH {
				minH = got
			}
		}
		if minH >= h || time.Now().After(deadline) {
			return minH
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// WaitForQuiesce blocks until every live replica's ledger agrees on one
// height and every live replica has executed and retired through it, or
// the timeout expires; it reports whether the cluster settled. Store
// comparisons across replicas need this, not WaitForHeight: the ledger
// height tracks commitment, execution trails it, and a replica that has
// committed to height H may still be applying batch H-2 while a peer
// has already retired past H — their stores legitimately differ until
// retirement converges.
// A momentary agreement is not enough: requests already inside the
// pipeline when the load stops (inbox queues, the batch linger) can
// still commit a straggler batch after a snapshot observes agreement,
// so the settled state must also hold still for a dwell window before
// it is trusted.
func (c *Cluster) WaitForQuiesce(timeout time.Duration, live func(int) bool) bool {
	const dwell = 100 * time.Millisecond
	deadline := time.Now().Add(timeout)
	var settledAt time.Time
	var settledMax uint64
	for {
		var max uint64
		for i, r := range c.replicas {
			if live != nil && !live(i) {
				continue
			}
			if h := r.Ledger().Height(); h > max {
				max = h
			}
		}
		settled := true
		for i, r := range c.replicas {
			if live != nil && !live(i) {
				continue
			}
			if r.Ledger().Height() != max || uint64(r.LastRetired()) < max {
				settled = false
				break
			}
		}
		now := time.Now()
		if !settled {
			settledAt = time.Time{}
		} else if settledAt.IsZero() || max != settledMax {
			settledAt, settledMax = now, max
		} else if now.Sub(settledAt) >= dwell {
			return true
		}
		if now.After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// VerifyLedgers validates every replica's chain and checks pairwise
// agreement on common prefixes. live filters replicas (nil means all).
func (c *Cluster) VerifyLedgers(live func(int) bool) error {
	var ref *replica.Replica
	for i, r := range c.replicas {
		if live != nil && !live(i) {
			continue
		}
		if err := r.Ledger().Validate(); err != nil {
			return fmt.Errorf("replica %d ledger invalid: %w", i, err)
		}
		if ref == nil {
			ref = r
			continue
		}
		if err := ledger.VerifyChainEquality(ref.Ledger(), r.Ledger()); err != nil {
			return fmt.Errorf("replica %d vs %d: %w", i, ref.ID(), err)
		}
	}
	return nil
}

// Stop shuts down replicas and client endpoints, closes the stores the
// cluster built itself (flushing any pending group commit), and removes
// the auto-created store directory. Externally provided stores
// (StoreFactory) are left to their owner.
func (c *Cluster) Stop() {
	for _, r := range c.replicas {
		r.Stop()
	}
	for _, ep := range c.clientEP {
		ep.Close()
	}
	c.closeOwnedStores()
}

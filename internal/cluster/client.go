// Package cluster wires replicas and clients into a runnable deployment:
// the single-process test-bed used by the examples, the integration tests,
// and the real-runtime experiments. It also provides the client runtime —
// the load generator of Section 5.1, where up to 80K closed-loop clients
// submit YCSB transactions and wait for response quorums.
package cluster

import (
	"context"
	"fmt"
	"time"

	"resilientdb/internal/consensus"
	clientengine "resilientdb/internal/consensus/client"
	"resilientdb/internal/crypto"
	"resilientdb/internal/pool"
	"resilientdb/internal/stats"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
	"resilientdb/internal/workload"
)

// ClientConfig parameterizes one load-generating client.
type ClientConfig struct {
	// ID identifies the client; N is the replica count.
	ID types.ClientID
	N  int
	// Protocol selects the quorum rules (PBFT or Zyzzyva).
	Protocol clientengine.Protocol
	// Burst is the number of transactions per request (client-side
	// batching, Section 4.2).
	Burst int
	// Timeout is the retransmission / slow-path trigger delay. The paper
	// keeps it short for Zyzzyva failure experiments (Section 5.10).
	Timeout time.Duration
	// Directory provides key material; Endpoint attaches the network;
	// Workload generates transactions.
	Directory *crypto.Directory
	Endpoint  transport.Endpoint
	Workload  *workload.Workload
	// ReadMode selects how read-only requests travel: "quorum" (default,
	// empty) orders them through consensus like writes; "local" sends them
	// as a ReadRequest to a single replica, answered from its
	// last-executed state without a consensus round. Local reads give
	// per-key freshness with the reply's Seq as a lower bound, not a
	// cross-key snapshot (see types.ReadRequest). Requests carrying any
	// write always go through consensus.
	ReadMode string
	// PooledEncode controls the pooled outbound encode path (Section 4.8
	// buffer-pool management): 0 (default) marshals request bodies into
	// pooled arena buffers recycled when the transport writes them out;
	// negative allocates a fresh body per message (the pre-pooling
	// baseline, kept for allocation A/B measurements).
	PooledEncode int
}

// ClientStats is a snapshot of one client's counters.
type ClientStats struct {
	TxnsCompleted uint64
	Requests      uint64
	FastPath      uint64
	SlowPath      uint64
	Retransmits   uint64
	// ReadTxns, ScanTxns, and WriteTxns split TxnsCompleted by request
	// kind — write beats scan beats read: a request carrying any write
	// counts as writes, else any scan counts as scans, else reads.
	// LocalReads counts the write-free requests served by the
	// consensus-bypassing local path. StaleFallbacks counts local reads a
	// replica refused under the client's staleness bound (MinSeq), which
	// then re-ran through the quorum path.
	ReadTxns       uint64
	ScanTxns       uint64
	WriteTxns      uint64
	LocalReads     uint64
	StaleFallbacks uint64
}

// Client is a closed-loop load generator: it keeps exactly one request in
// flight and records end-to-end latency per completed request.
type Client struct {
	cfg      ClientConfig
	engine   *clientengine.Engine
	auth     crypto.Authenticator
	encBufs  *pool.BytePool // outbound body arenas; nil when PooledEncode < 0
	encHint  int            // largest body marshalled so far (single-goroutine use in Run)
	latency  *stats.Histogram
	readLat  *stats.Histogram
	scanLat  *stats.Histogram
	writeLat *stats.Histogram

	txns           uint64
	readTxns       uint64
	scanTxns       uint64
	writeTxns      uint64
	localReads     uint64
	localRetx      uint64
	staleFallbacks uint64
	requests       uint64
	// maxSeq is the highest quorum-attested sequence number observed in
	// completed outcomes: the staleness bound (ReadRequest.MinSeq) later
	// local reads demand. A lone replica's ReadReply.Seq never advances it
	// — that stamp is one replica's unattested claim, and trusting it
	// would let a Byzantine replica inflate the bound until every honest
	// replica looks stale.
	maxSeq uint64
}

// NewClient creates a client runtime.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Burst < 1 {
		cfg.Burst = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 500 * time.Millisecond
	}
	if cfg.Directory == nil || cfg.Endpoint == nil || cfg.Workload == nil {
		return nil, fmt.Errorf("cluster: client %d missing directory, endpoint, or workload", cfg.ID)
	}
	switch cfg.ReadMode {
	case "":
		cfg.ReadMode = "quorum"
	case "quorum", "local":
	default:
		return nil, fmt.Errorf("cluster: client %d unknown read mode %q (want quorum|local)", cfg.ID, cfg.ReadMode)
	}
	eng, err := clientengine.New(cfg.ID, cfg.N, cfg.Protocol)
	if err != nil {
		return nil, err
	}
	c := &Client{
		cfg:      cfg,
		engine:   eng,
		auth:     cfg.Directory.NodeAuth(types.ClientNode(cfg.ID)),
		latency:  &stats.Histogram{},
		readLat:  &stats.Histogram{},
		scanLat:  &stats.Histogram{},
		writeLat: &stats.Histogram{},
	}
	if cfg.PooledEncode >= 0 {
		c.encBufs = new(pool.BytePool)
	}
	return c, nil
}

// Latency exposes the client's latency histogram.
func (c *Client) Latency() *stats.Histogram { return c.latency }

// ReadLatency, ScanLatency, and WriteLatency expose the per-kind latency
// split, classified write over scan over read: a request carrying any
// write records into the write histogram, else any scan into the scan
// one, else into the read one.
func (c *Client) ReadLatency() *stats.Histogram { return c.readLat }

// ScanLatency is the range-scan member of the per-kind latency split.
func (c *Client) ScanLatency() *stats.Histogram { return c.scanLat }

// WriteLatency is ReadLatency's write-side counterpart.
func (c *Client) WriteLatency() *stats.Histogram { return c.writeLat }

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() ClientStats {
	es := c.engine.Stats()
	return ClientStats{
		TxnsCompleted:  c.txns,
		Requests:       c.requests,
		FastPath:       es.FastPath,
		SlowPath:       es.SlowPath,
		Retransmits:    es.Retransmits + c.localRetx,
		ReadTxns:       c.readTxns,
		ScanTxns:       c.scanTxns,
		WriteTxns:      c.writeTxns,
		LocalReads:     c.localReads,
		StaleFallbacks: c.staleFallbacks,
	}
}

// Run submits requests in a closed loop until ctx is cancelled. It owns
// the endpoint's inbox; do not call Run concurrently.
func (c *Client) Run(ctx context.Context) {
	inbox := c.cfg.Endpoint.Inbox(0)
	clientSeq := uint64(1)
	timer := time.NewTimer(c.cfg.Timeout)
	defer timer.Stop()

	for ctx.Err() == nil {
		req := c.cfg.Workload.NextRequest(c.cfg.ID, clientSeq, c.cfg.Burst)
		class := requestClass(&req)
		if class != classWrite && c.cfg.ReadMode == "local" {
			// Consensus-bypassing path: the write-free request (point
			// reads and scans) is answered by a single replica from its
			// last-executed state, bounded by MinSeq. The client sequence
			// still advances — replica-side dedup compares with <=, so
			// gaps in the write stream are harmless.
			switch c.localRead(ctx, inbox, &req, clientSeq, class, timer) {
			case localDone:
				clientSeq += uint64(c.cfg.Burst)
				continue
			case localAborted:
				return
			case localStale:
				// Every reachable replica lags the client's staleness
				// bound; re-run this request through the quorum path,
				// which serves it from ordered execution.
				c.staleFallbacks++
			}
		}
		sig, err := c.auth.Sign(types.ReplicaNode(0), req.SigningBytes())
		if err != nil {
			return
		}
		req.Sig = sig
		start := time.Now()
		c.requests++
		c.dispatch(c.engine.Submit(req))

		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(c.cfg.Timeout)

	waitResponse:
		for {
			select {
			case <-ctx.Done():
				return
			case env, ok := <-inbox:
				if !ok {
					return
				}
				if err := c.auth.Verify(env.From, env.Body, env.Auth); err != nil {
					env.Release()
					continue
				}
				from := env.From
				msg, err := types.DecodeBody(env.Type, env.Body)
				// Decode copied every field, so the envelope (and any frame
				// arena behind it) retires here.
				env.Release()
				if err != nil {
					continue
				}
				outcome, acts := c.engine.OnMessage(from, msg)
				c.dispatch(acts)
				if outcome != nil {
					if s := uint64(outcome.Seq); s > c.maxSeq {
						c.maxSeq = s
					}
					c.record(time.Since(start), class)
					clientSeq += uint64(c.cfg.Burst)
					break waitResponse
				}
			case <-timer.C:
				c.dispatch(c.engine.OnTimeout())
				timer.Reset(c.cfg.Timeout)
			}
		}
	}
}

// requestClass partitions requests for routing and the latency split:
// write beats scan beats read.
type reqClass int

const (
	classRead reqClass = iota
	classScan
	classWrite
)

// record books one completed request into the overall and per-kind
// latency histograms and transaction counters.
func (c *Client) record(d time.Duration, class reqClass) {
	c.latency.Record(d)
	c.txns += uint64(c.cfg.Burst)
	switch class {
	case classWrite:
		c.writeLat.Record(d)
		c.writeTxns += uint64(c.cfg.Burst)
	case classScan:
		c.scanLat.Record(d)
		c.scanTxns += uint64(c.cfg.Burst)
	default:
		c.readLat.Record(d)
		c.readTxns += uint64(c.cfg.Burst)
	}
}

// localReadStatus is localRead's outcome: answered, aborted (context or
// inbox gone), or refused under the staleness bound.
type localReadStatus int

const (
	localDone localReadStatus = iota
	localAborted
	localStale
)

// localRead issues one write-free request as a ReadRequest against a
// single replica and waits for its ReadReply, rotating to the next
// replica on timeout (a crashed or lagging server must not wedge the
// client). The request carries the client's staleness bound: a replica
// whose last-retired sequence trails maxSeq answers with no results, and
// after every replica refused once the client reports localStale so the
// caller reissues the request through the quorum path.
func (c *Client) localRead(ctx context.Context, inbox <-chan *types.Envelope, req *types.ClientRequest, clientSeq uint64, class reqClass, timer *time.Timer) localReadStatus {
	keys, scans := readOps(req)
	msg := &types.ReadRequest{
		Client:    c.cfg.ID,
		ClientSeq: clientSeq,
		Keys:      keys,
		MinSeq:    types.SeqNum(c.maxSeq),
		Scans:     scans,
	}
	refusals := 0
	// Spread clients across replicas so local reads scale with n instead
	// of piling onto the primary.
	target := int(uint32(c.cfg.ID)) % c.cfg.N
	self := types.ClientNode(c.cfg.ID)
	start := time.Now()
	c.requests++
	c.transmit(self, types.ReplicaNode(types.ReplicaID(target)), msg)

	if !timer.Stop() {
		select {
		case <-timer.C:
		default:
		}
	}
	timer.Reset(c.cfg.Timeout)
	for {
		select {
		case <-ctx.Done():
			return localAborted
		case env, ok := <-inbox:
			if !ok {
				return localAborted
			}
			if err := c.auth.Verify(env.From, env.Body, env.Auth); err != nil {
				env.Release()
				continue
			}
			m, err := types.DecodeBody(env.Type, env.Body)
			env.Release() // decode copied every field; the envelope retires here
			if err != nil {
				continue
			}
			reply, ok := m.(*types.ReadReply)
			if !ok || reply.Client != c.cfg.ID || reply.ClientSeq != clientSeq {
				continue // stale consensus response or reply to an older read
			}
			if len(reply.Results) == 0 && len(keys)+len(scans) > 0 {
				// Staleness refusal: this replica's retired state trails
				// MinSeq. Try the next replica; once every replica refused,
				// hand the request back for the quorum path.
				refusals++
				if refusals >= c.cfg.N {
					return localStale
				}
				target = (target + 1) % c.cfg.N
				c.transmit(self, types.ReplicaNode(types.ReplicaID(target)), msg)
				timer.Reset(c.cfg.Timeout)
				continue
			}
			c.record(time.Since(start), class)
			c.localReads++
			return localDone
		case <-timer.C:
			c.localRetx++
			target = (target + 1) % c.cfg.N
			c.transmit(self, types.ReplicaNode(types.ReplicaID(target)), msg)
			timer.Reset(c.cfg.Timeout)
		}
	}
}

// requestClass classifies a request write > scan > read: any write makes
// it a write request (it must travel through consensus), otherwise any
// scan makes it a scan request, otherwise it is a point-read request. An
// empty request counts as a write so it never rides the local read path.
func requestClass(req *types.ClientRequest) reqClass {
	if len(req.Txns) == 0 {
		return classWrite
	}
	class := classRead
	for i := range req.Txns {
		for j := range req.Txns[i].Ops {
			switch req.Txns[i].Ops[j].Kind {
			case types.OpScan:
				class = classScan
			case types.OpRead:
			default:
				return classWrite
			}
		}
	}
	return class
}

// readOps flattens a write-free request into the ReadRequest shape: point
// keys and scan descriptors, each in (transaction, op) order — the order
// ReadReply results come back in (keys first, then scans).
func readOps(req *types.ClientRequest) (keys []uint64, scans []types.Op) {
	for i := range req.Txns {
		for j := range req.Txns[i].Ops {
			op := &req.Txns[i].Ops[j]
			if op.Kind == types.OpScan {
				scans = append(scans, types.Op{Kind: types.OpScan, Key: op.Key, EndKey: op.EndKey, Limit: op.Limit})
				continue
			}
			keys = append(keys, op.Key)
		}
	}
	return keys, scans
}

// dispatch signs and transmits client engine actions.
func (c *Client) dispatch(acts []consensus.Action) {
	self := types.ClientNode(c.cfg.ID)
	for _, a := range acts {
		switch act := a.(type) {
		case consensus.Send:
			c.transmit(self, act.To, act.Msg)
		case consensus.Broadcast:
			for r := 0; r < c.cfg.N; r++ {
				c.transmit(self, types.ReplicaNode(types.ReplicaID(r)), act.Msg)
			}
		}
	}
}

func (c *Client) transmit(from, to types.NodeID, msg types.Message) {
	var body []byte
	var arena *types.Arena
	if c.encBufs != nil {
		// The high-water-mark hint keeps marshals in the right capacity
		// class so steady-state encodes borrow instead of growing.
		body, arena = types.MarshalBodyArena(msg, c.encBufs, c.encHint)
		if len(body) > c.encHint {
			c.encHint = len(body)
		}
	} else {
		body = types.MarshalBody(msg)
	}
	sig, err := c.auth.Sign(to, body)
	if err != nil {
		arena.Release()
		return
	}
	env := types.AcquireEnvelope()
	env.From = from
	env.To = to
	env.Type = msg.Type()
	env.Body = body
	env.Auth = sig
	env.Attach(arena)
	if err := c.cfg.Endpoint.Send(env); err != nil {
		env.Release() // the send went nowhere; retire the envelope here
	}
	arena.Release() // drop the builder's reference
}

// Package cluster wires replicas and clients into a runnable deployment:
// the single-process test-bed used by the examples, the integration tests,
// and the real-runtime experiments. It also provides the client runtime —
// the load generator of Section 5.1, where up to 80K closed-loop clients
// submit YCSB transactions and wait for response quorums.
package cluster

import (
	"context"
	"fmt"
	"time"

	"resilientdb/internal/consensus"
	clientengine "resilientdb/internal/consensus/client"
	"resilientdb/internal/crypto"
	"resilientdb/internal/pool"
	"resilientdb/internal/stats"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
	"resilientdb/internal/workload"
)

// ClientConfig parameterizes one load-generating client.
type ClientConfig struct {
	// ID identifies the client; N is the replica count.
	ID types.ClientID
	N  int
	// Protocol selects the quorum rules (PBFT or Zyzzyva).
	Protocol clientengine.Protocol
	// Burst is the number of transactions per request (client-side
	// batching, Section 4.2).
	Burst int
	// Timeout is the retransmission / slow-path trigger delay. The paper
	// keeps it short for Zyzzyva failure experiments (Section 5.10).
	Timeout time.Duration
	// Directory provides key material; Endpoint attaches the network;
	// Workload generates transactions.
	Directory *crypto.Directory
	Endpoint  transport.Endpoint
	Workload  *workload.Workload
	// ReadMode selects how read-only requests travel: "quorum" (default,
	// empty) orders them through consensus like writes; "local" sends them
	// as a ReadRequest to a single replica, answered from its
	// last-executed state without a consensus round. Local reads give
	// per-key freshness with the reply's Seq as a lower bound, not a
	// cross-key snapshot (see types.ReadRequest). Requests carrying any
	// write always go through consensus.
	ReadMode string
	// PooledEncode controls the pooled outbound encode path (Section 4.8
	// buffer-pool management): 0 (default) marshals request bodies into
	// pooled arena buffers recycled when the transport writes them out;
	// negative allocates a fresh body per message (the pre-pooling
	// baseline, kept for allocation A/B measurements).
	PooledEncode int
}

// ClientStats is a snapshot of one client's counters.
type ClientStats struct {
	TxnsCompleted uint64
	Requests      uint64
	FastPath      uint64
	SlowPath      uint64
	Retransmits   uint64
	// ReadTxns and WriteTxns split TxnsCompleted by request kind: a
	// request whose transactions are all reads counts as reads, anything
	// else as writes. LocalReads counts the read-only requests served by
	// the consensus-bypassing local path.
	ReadTxns   uint64
	WriteTxns  uint64
	LocalReads uint64
}

// Client is a closed-loop load generator: it keeps exactly one request in
// flight and records end-to-end latency per completed request.
type Client struct {
	cfg      ClientConfig
	engine   *clientengine.Engine
	auth     crypto.Authenticator
	encBufs  *pool.BytePool // outbound body arenas; nil when PooledEncode < 0
	encHint  int            // largest body marshalled so far (single-goroutine use in Run)
	latency  *stats.Histogram
	readLat  *stats.Histogram
	writeLat *stats.Histogram

	txns       uint64
	readTxns   uint64
	writeTxns  uint64
	localReads uint64
	localRetx  uint64
	requests   uint64
}

// NewClient creates a client runtime.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Burst < 1 {
		cfg.Burst = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 500 * time.Millisecond
	}
	if cfg.Directory == nil || cfg.Endpoint == nil || cfg.Workload == nil {
		return nil, fmt.Errorf("cluster: client %d missing directory, endpoint, or workload", cfg.ID)
	}
	switch cfg.ReadMode {
	case "":
		cfg.ReadMode = "quorum"
	case "quorum", "local":
	default:
		return nil, fmt.Errorf("cluster: client %d unknown read mode %q (want quorum|local)", cfg.ID, cfg.ReadMode)
	}
	eng, err := clientengine.New(cfg.ID, cfg.N, cfg.Protocol)
	if err != nil {
		return nil, err
	}
	c := &Client{
		cfg:      cfg,
		engine:   eng,
		auth:     cfg.Directory.NodeAuth(types.ClientNode(cfg.ID)),
		latency:  &stats.Histogram{},
		readLat:  &stats.Histogram{},
		writeLat: &stats.Histogram{},
	}
	if cfg.PooledEncode >= 0 {
		c.encBufs = new(pool.BytePool)
	}
	return c, nil
}

// Latency exposes the client's latency histogram.
func (c *Client) Latency() *stats.Histogram { return c.latency }

// ReadLatency and WriteLatency expose the per-kind latency split: a
// request whose transactions are all reads records into the read
// histogram, anything carrying a write into the write one.
func (c *Client) ReadLatency() *stats.Histogram { return c.readLat }

// WriteLatency is ReadLatency's write-side counterpart.
func (c *Client) WriteLatency() *stats.Histogram { return c.writeLat }

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() ClientStats {
	es := c.engine.Stats()
	return ClientStats{
		TxnsCompleted: c.txns,
		Requests:      c.requests,
		FastPath:      es.FastPath,
		SlowPath:      es.SlowPath,
		Retransmits:   es.Retransmits + c.localRetx,
		ReadTxns:      c.readTxns,
		WriteTxns:     c.writeTxns,
		LocalReads:    c.localReads,
	}
}

// Run submits requests in a closed loop until ctx is cancelled. It owns
// the endpoint's inbox; do not call Run concurrently.
func (c *Client) Run(ctx context.Context) {
	inbox := c.cfg.Endpoint.Inbox(0)
	clientSeq := uint64(1)
	timer := time.NewTimer(c.cfg.Timeout)
	defer timer.Stop()

	for ctx.Err() == nil {
		req := c.cfg.Workload.NextRequest(c.cfg.ID, clientSeq, c.cfg.Burst)
		readOnly := requestReadOnly(&req)
		if readOnly && c.cfg.ReadMode == "local" {
			// Consensus-bypassing path: the read-only request is answered
			// by a single replica from its last-executed state. The
			// client sequence still advances — replica-side dedup compares
			// with <=, so gaps in the write stream are harmless.
			if !c.localRead(ctx, inbox, &req, clientSeq, timer) {
				return
			}
			clientSeq += uint64(c.cfg.Burst)
			continue
		}
		sig, err := c.auth.Sign(types.ReplicaNode(0), req.SigningBytes())
		if err != nil {
			return
		}
		req.Sig = sig
		start := time.Now()
		c.requests++
		c.dispatch(c.engine.Submit(req))

		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(c.cfg.Timeout)

	waitResponse:
		for {
			select {
			case <-ctx.Done():
				return
			case env, ok := <-inbox:
				if !ok {
					return
				}
				if err := c.auth.Verify(env.From, env.Body, env.Auth); err != nil {
					env.Release()
					continue
				}
				from := env.From
				msg, err := types.DecodeBody(env.Type, env.Body)
				// Decode copied every field, so the envelope (and any frame
				// arena behind it) retires here.
				env.Release()
				if err != nil {
					continue
				}
				outcome, acts := c.engine.OnMessage(from, msg)
				c.dispatch(acts)
				if outcome != nil {
					c.record(time.Since(start), readOnly)
					clientSeq += uint64(c.cfg.Burst)
					break waitResponse
				}
			case <-timer.C:
				c.dispatch(c.engine.OnTimeout())
				timer.Reset(c.cfg.Timeout)
			}
		}
	}
}

// record books one completed request into the overall and per-kind
// latency histograms and transaction counters.
func (c *Client) record(d time.Duration, readOnly bool) {
	c.latency.Record(d)
	c.txns += uint64(c.cfg.Burst)
	if readOnly {
		c.readLat.Record(d)
		c.readTxns += uint64(c.cfg.Burst)
	} else {
		c.writeLat.Record(d)
		c.writeTxns += uint64(c.cfg.Burst)
	}
}

// localRead issues one read-only request as a ReadRequest against a
// single replica and waits for its ReadReply, rotating to the next
// replica on timeout (a crashed or lagging server must not wedge the
// client). It reports false when the context ended or the inbox closed.
func (c *Client) localRead(ctx context.Context, inbox <-chan *types.Envelope, req *types.ClientRequest, clientSeq uint64, timer *time.Timer) bool {
	msg := &types.ReadRequest{
		Client:    c.cfg.ID,
		ClientSeq: clientSeq,
		Keys:      readKeys(req),
	}
	// Spread clients across replicas so local reads scale with n instead
	// of piling onto the primary.
	target := int(uint32(c.cfg.ID)) % c.cfg.N
	self := types.ClientNode(c.cfg.ID)
	start := time.Now()
	c.requests++
	c.transmit(self, types.ReplicaNode(types.ReplicaID(target)), msg)

	if !timer.Stop() {
		select {
		case <-timer.C:
		default:
		}
	}
	timer.Reset(c.cfg.Timeout)
	for {
		select {
		case <-ctx.Done():
			return false
		case env, ok := <-inbox:
			if !ok {
				return false
			}
			if err := c.auth.Verify(env.From, env.Body, env.Auth); err != nil {
				env.Release()
				continue
			}
			m, err := types.DecodeBody(env.Type, env.Body)
			env.Release() // decode copied every field; the envelope retires here
			if err != nil {
				continue
			}
			reply, ok := m.(*types.ReadReply)
			if !ok || reply.Client != c.cfg.ID || reply.ClientSeq != clientSeq {
				continue // stale consensus response or reply to an older read
			}
			c.record(time.Since(start), true)
			c.localReads++
			return true
		case <-timer.C:
			c.localRetx++
			target = (target + 1) % c.cfg.N
			c.transmit(self, types.ReplicaNode(types.ReplicaID(target)), msg)
			timer.Reset(c.cfg.Timeout)
		}
	}
}

// requestReadOnly reports whether every operation in the request is a
// read; a mixed burst counts as a write and goes through consensus.
func requestReadOnly(req *types.ClientRequest) bool {
	for i := range req.Txns {
		for j := range req.Txns[i].Ops {
			if req.Txns[i].Ops[j].Kind != types.OpRead {
				return false
			}
		}
	}
	return len(req.Txns) > 0
}

// readKeys flattens a read-only request's keys in (transaction, op)
// order — the order ReadReply results come back in.
func readKeys(req *types.ClientRequest) []uint64 {
	var keys []uint64
	for i := range req.Txns {
		for j := range req.Txns[i].Ops {
			keys = append(keys, req.Txns[i].Ops[j].Key)
		}
	}
	return keys
}

// dispatch signs and transmits client engine actions.
func (c *Client) dispatch(acts []consensus.Action) {
	self := types.ClientNode(c.cfg.ID)
	for _, a := range acts {
		switch act := a.(type) {
		case consensus.Send:
			c.transmit(self, act.To, act.Msg)
		case consensus.Broadcast:
			for r := 0; r < c.cfg.N; r++ {
				c.transmit(self, types.ReplicaNode(types.ReplicaID(r)), act.Msg)
			}
		}
	}
}

func (c *Client) transmit(from, to types.NodeID, msg types.Message) {
	var body []byte
	var arena *types.Arena
	if c.encBufs != nil {
		// The high-water-mark hint keeps marshals in the right capacity
		// class so steady-state encodes borrow instead of growing.
		body, arena = types.MarshalBodyArena(msg, c.encBufs, c.encHint)
		if len(body) > c.encHint {
			c.encHint = len(body)
		}
	} else {
		body = types.MarshalBody(msg)
	}
	sig, err := c.auth.Sign(to, body)
	if err != nil {
		arena.Release()
		return
	}
	env := types.AcquireEnvelope()
	env.From = from
	env.To = to
	env.Type = msg.Type()
	env.Body = body
	env.Auth = sig
	env.Attach(arena)
	if err := c.cfg.Endpoint.Send(env); err != nil {
		env.Release() // the send went nowhere; retire the envelope here
	}
	arena.Release() // drop the builder's reference
}

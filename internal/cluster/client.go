// Package cluster wires replicas and clients into a runnable deployment:
// the single-process test-bed used by the examples, the integration tests,
// and the real-runtime experiments. It also provides the client runtime —
// the load generator of Section 5.1, where up to 80K closed-loop clients
// submit YCSB transactions and wait for response quorums.
package cluster

import (
	"context"
	"fmt"
	"time"

	"resilientdb/internal/consensus"
	clientengine "resilientdb/internal/consensus/client"
	"resilientdb/internal/crypto"
	"resilientdb/internal/stats"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
	"resilientdb/internal/workload"
)

// ClientConfig parameterizes one load-generating client.
type ClientConfig struct {
	// ID identifies the client; N is the replica count.
	ID types.ClientID
	N  int
	// Protocol selects the quorum rules (PBFT or Zyzzyva).
	Protocol clientengine.Protocol
	// Burst is the number of transactions per request (client-side
	// batching, Section 4.2).
	Burst int
	// Timeout is the retransmission / slow-path trigger delay. The paper
	// keeps it short for Zyzzyva failure experiments (Section 5.10).
	Timeout time.Duration
	// Directory provides key material; Endpoint attaches the network;
	// Workload generates transactions.
	Directory *crypto.Directory
	Endpoint  transport.Endpoint
	Workload  *workload.Workload
}

// ClientStats is a snapshot of one client's counters.
type ClientStats struct {
	TxnsCompleted uint64
	Requests      uint64
	FastPath      uint64
	SlowPath      uint64
	Retransmits   uint64
}

// Client is a closed-loop load generator: it keeps exactly one request in
// flight and records end-to-end latency per completed request.
type Client struct {
	cfg     ClientConfig
	engine  *clientengine.Engine
	auth    crypto.Authenticator
	latency *stats.Histogram

	txns     uint64
	requests uint64
}

// NewClient creates a client runtime.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Burst < 1 {
		cfg.Burst = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 500 * time.Millisecond
	}
	if cfg.Directory == nil || cfg.Endpoint == nil || cfg.Workload == nil {
		return nil, fmt.Errorf("cluster: client %d missing directory, endpoint, or workload", cfg.ID)
	}
	eng, err := clientengine.New(cfg.ID, cfg.N, cfg.Protocol)
	if err != nil {
		return nil, err
	}
	return &Client{
		cfg:     cfg,
		engine:  eng,
		auth:    cfg.Directory.NodeAuth(types.ClientNode(cfg.ID)),
		latency: &stats.Histogram{},
	}, nil
}

// Latency exposes the client's latency histogram.
func (c *Client) Latency() *stats.Histogram { return c.latency }

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() ClientStats {
	es := c.engine.Stats()
	return ClientStats{
		TxnsCompleted: c.txns,
		Requests:      c.requests,
		FastPath:      es.FastPath,
		SlowPath:      es.SlowPath,
		Retransmits:   es.Retransmits,
	}
}

// Run submits requests in a closed loop until ctx is cancelled. It owns
// the endpoint's inbox; do not call Run concurrently.
func (c *Client) Run(ctx context.Context) {
	inbox := c.cfg.Endpoint.Inbox(0)
	clientSeq := uint64(1)
	timer := time.NewTimer(c.cfg.Timeout)
	defer timer.Stop()

	for ctx.Err() == nil {
		req := c.cfg.Workload.NextRequest(c.cfg.ID, clientSeq, c.cfg.Burst)
		sig, err := c.auth.Sign(types.ReplicaNode(0), req.SigningBytes())
		if err != nil {
			return
		}
		req.Sig = sig
		start := time.Now()
		c.requests++
		c.dispatch(c.engine.Submit(req))

		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(c.cfg.Timeout)

	waitResponse:
		for {
			select {
			case <-ctx.Done():
				return
			case env, ok := <-inbox:
				if !ok {
					return
				}
				if err := c.auth.Verify(env.From, env.Body, env.Auth); err != nil {
					continue
				}
				msg, err := types.DecodeBody(env.Type, env.Body)
				if err != nil {
					continue
				}
				outcome, acts := c.engine.OnMessage(env.From, msg)
				c.dispatch(acts)
				if outcome != nil {
					c.latency.Record(time.Since(start))
					c.txns += uint64(c.cfg.Burst)
					clientSeq += uint64(c.cfg.Burst)
					break waitResponse
				}
			case <-timer.C:
				c.dispatch(c.engine.OnTimeout())
				timer.Reset(c.cfg.Timeout)
			}
		}
	}
}

// dispatch signs and transmits client engine actions.
func (c *Client) dispatch(acts []consensus.Action) {
	self := types.ClientNode(c.cfg.ID)
	for _, a := range acts {
		switch act := a.(type) {
		case consensus.Send:
			c.transmit(self, act.To, act.Msg)
		case consensus.Broadcast:
			for r := 0; r < c.cfg.N; r++ {
				c.transmit(self, types.ReplicaNode(types.ReplicaID(r)), act.Msg)
			}
		}
	}
}

func (c *Client) transmit(from, to types.NodeID, msg types.Message) {
	body := types.MarshalBody(msg)
	sig, err := c.auth.Sign(to, body)
	if err != nil {
		return
	}
	_ = c.cfg.Endpoint.Send(&types.Envelope{
		From: from,
		To:   to,
		Type: msg.Type(),
		Body: body,
		Auth: sig,
	})
}

package cluster

import (
	"context"
	"sync"
	"testing"
	"time"

	clientengine "resilientdb/internal/consensus/client"
	"resilientdb/internal/crypto"
	"resilientdb/internal/replica"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
	"resilientdb/internal/workload"
)

// TestTCPClusterEndToEnd wires 4 replicas and 2 clients over real TCP on
// localhost: the deployment mode of cmd/resdb-node and cmd/resdb-client.
func TestTCPClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster in -short mode")
	}
	const n = 4
	dir, err := crypto.NewDirectory(crypto.Recommended(), [32]byte{9})
	if err != nil {
		t.Fatal(err)
	}

	// Bind all listeners first, then share the address map (the endpoints
	// read it under their own locks via SetPeerAddr).
	eps := make([]*transport.TCPEndpoint, n)
	addrs := make(map[types.NodeID]string)
	for i := 0; i < n; i++ {
		ep, err := transport.NewTCP(types.ReplicaNode(types.ReplicaID(i)), "127.0.0.1:0", nil, 3, 1<<12)
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
		addrs[types.ReplicaNode(types.ReplicaID(i))] = ep.Addr()
	}
	for i := 0; i < n; i++ {
		for node, addr := range addrs {
			eps[i].SetPeerAddr(node, addr)
		}
	}

	reps := make([]*replica.Replica, n)
	for i := 0; i < n; i++ {
		rep, err := replica.New(replica.Config{
			ID:               types.ReplicaID(i),
			N:                n,
			Protocol:         replica.PBFT,
			BatchSize:        8,
			BatchThreads:     2,
			ExecuteThreads:   1,
			VerifyThreads:    2,
			Directory:        dir,
			Endpoint:         eps[i],
			VerifyClientSigs: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = rep
		rep.Start()
	}
	defer func() {
		for _, r := range reps {
			r.Stop()
		}
	}()

	wlCfg := workload.Default()
	wlCfg.Records = 500
	ctx, cancel := context.WithTimeout(context.Background(), 1500*time.Millisecond)
	defer cancel()

	var wg sync.WaitGroup
	clients := make([]*Client, 2)
	for i := range clients {
		wl, err := workload.New(wlCfg, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		cep, err := transport.NewTCP(types.ClientNode(types.ClientID(i)), "127.0.0.1:0", nil, 1, 1<<10)
		if err != nil {
			t.Fatal(err)
		}
		defer cep.Close()
		for node, addr := range addrs {
			cep.SetPeerAddr(node, addr)
		}
		// Teach every replica the return path before submitting.
		for node := range addrs {
			if err := cep.Hello(node); err != nil {
				t.Fatal(err)
			}
		}
		cl, err := NewClient(ClientConfig{
			ID:        types.ClientID(i),
			N:         n,
			Protocol:  clientengine.PBFT,
			Timeout:   400 * time.Millisecond,
			Directory: dir,
			Endpoint:  cep,
			Workload:  wl,
		})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl.Run(ctx)
		}()
	}
	wg.Wait()

	var txns uint64
	for _, cl := range clients {
		txns += cl.Stats().TxnsCompleted
	}
	if txns == 0 {
		t.Fatal("no transactions completed over TCP")
	}
	// Replicas agree on the chain they built over TCP.
	for i := 1; i < n; i++ {
		if reps[i].Ledger().Height() == 0 && reps[0].Ledger().Height() > 0 {
			t.Fatalf("replica %d never appended a block", i)
		}
	}
}

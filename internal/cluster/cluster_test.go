package cluster

import (
	"context"
	"testing"
	"time"

	"resilientdb/internal/crypto"
	"resilientdb/internal/ledger"
	"resilientdb/internal/replica"
	"resilientdb/internal/workload"
)

// smallOpts returns options sized for fast tests: 4 replicas, small
// batches, aggressive linger, tiny YCSB table.
func smallOpts() Options {
	wl := workload.Default()
	wl.Records = 1000
	wl.ValueSize = 16
	return Options{
		N:                  4,
		Clients:            8,
		BatchSize:          8,
		CheckpointInterval: 4,
		Workload:           wl,
		ClientTimeout:      400 * time.Millisecond,
		Seed:               7,
	}
}

func runCluster(t *testing.T, opts Options, d time.Duration) (*Cluster, Result) {
	t.Helper()
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	res := c.Run(context.Background(), d)
	return c, res
}

func TestPBFTClusterEndToEnd(t *testing.T) {
	c, res := runCluster(t, smallOpts(), 1500*time.Millisecond)
	if res.Txns == 0 {
		t.Fatalf("no transactions completed: %s", res)
	}
	if err := c.VerifyLedgers(nil); err != nil {
		t.Fatal(err)
	}
	// Every replica executed the same batches and built real blocks.
	h := c.Replica(0).Ledger().Height()
	if h == 0 {
		t.Fatal("ledger never grew")
	}
	// Commit-certificate blocks carry 2f+1 proof entries.
	blk, err := c.Replica(0).Ledger().Get(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(blk.CommitProof) < 3 {
		t.Fatalf("block carries %d commit sigs, want ≥ 3", len(blk.CommitProof))
	}
	// Client-side results were all fast path (no failures injected).
	if res.SlowPath != 0 {
		t.Fatalf("unexpected slow-path completions: %s", res)
	}
}

func TestZyzzyvaClusterEndToEnd(t *testing.T) {
	opts := smallOpts()
	opts.Protocol = replica.Zyzzyva
	c, res := runCluster(t, opts, 1500*time.Millisecond)
	if res.Txns == 0 {
		t.Fatalf("no transactions completed: %s", res)
	}
	if res.FastPath == 0 {
		t.Fatalf("fault-free Zyzzyva never used the fast path: %s", res)
	}
	if err := c.VerifyLedgers(nil); err != nil {
		t.Fatal(err)
	}
}

func TestPBFTSurvivesBackupCrash(t *testing.T) {
	opts := smallOpts()
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	c.Crash(3) // crash one backup before any load
	res := c.Run(context.Background(), 1500*time.Millisecond)
	if res.Txns == 0 {
		t.Fatalf("PBFT made no progress with one backup down: %s", res)
	}
	live := func(i int) bool { return i != 3 }
	if err := c.VerifyLedgers(live); err != nil {
		t.Fatal(err)
	}
}

func TestZyzzyvaBackupCrashForcesSlowPath(t *testing.T) {
	opts := smallOpts()
	opts.Protocol = replica.Zyzzyva
	opts.ClientTimeout = 100 * time.Millisecond // "wait for only a little time"
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	c.Crash(3)
	res := c.Run(context.Background(), 1500*time.Millisecond)
	if res.Txns == 0 {
		t.Fatalf("Zyzzyva completed nothing via slow path: %s", res)
	}
	if res.SlowPath == 0 {
		t.Fatalf("one crashed backup should force the slow path: %s", res)
	}
	if res.FastPath != 0 {
		t.Fatalf("fast path impossible with a crashed replica: %s", res)
	}
}

func TestClusterCryptoSchemes(t *testing.T) {
	schemes := map[string]crypto.Config{
		"nosig":       crypto.NoSig(),
		"ed25519":     crypto.AllED25519(),
		"recommended": crypto.Recommended(),
	}
	for name, cc := range schemes {
		t.Run(name, func(t *testing.T) {
			opts := smallOpts()
			opts.Clients = 4
			opts.Crypto = cc
			c, res := runCluster(t, opts, 800*time.Millisecond)
			if res.Txns == 0 {
				t.Fatalf("no progress under %s: %s", name, res)
			}
			if err := c.VerifyLedgers(nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestClusterThreadConfigs(t *testing.T) {
	// The Section 5.2 configurations: 0B/0E, 0B/1E, 1B/1E, 2B/1E.
	configs := []struct {
		name string
		b, e int
	}{
		{"0B0E", -1, -1}, // -1 requests the folded stages explicitly
		{"0B1E", -1, 1},
		{"1B1E", 1, 1},
		{"2B1E", 2, 1},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			opts := smallOpts()
			opts.Clients = 4
			opts.BatchThreads = tc.b
			opts.ExecuteThreads = tc.e
			c, res := runCluster(t, opts, 800*time.Millisecond)
			if res.Txns == 0 {
				t.Fatalf("no progress under %s: %s", tc.name, res)
			}
			if err := c.VerifyLedgers(nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestClusterExecuteShards runs the full pipeline with write-set
// partitioned execution (E=4) under a skewed multi-op load: the cluster
// must stay live, agree across replicas — every replica's store must be
// byte-identical once they reach the same height, the cross-replica form
// of the determinism guarantee — and every shard must do work.
func TestClusterExecuteShards(t *testing.T) {
	opts := smallOpts()
	opts.ExecuteThreads = 4
	opts.Workload.OpsPerTxn = 4
	c, res := runCluster(t, opts, 1200*time.Millisecond)
	if res.Txns == 0 {
		t.Fatalf("no transactions completed: %s", res)
	}
	if err := c.VerifyLedgers(nil); err != nil {
		t.Fatal(err)
	}
	target := c.Replica(0).Ledger().Height()
	if got := c.WaitForHeight(target, 5*time.Second, nil); got < target {
		t.Fatalf("backups stuck at height %d < %d", got, target)
	}
	// Height tracks commitment; the stores reflect retirement, which
	// trails it. Compare stores only once every replica has retired
	// through one agreed height.
	if !c.WaitForQuiesce(5*time.Second, nil) {
		t.Fatal("cluster did not quiesce: ledgers or retirement still diverge")
	}
	for i := 0; i < opts.N; i++ {
		s := c.Replica(i).Stats()
		if s.ExecShards != 4 || len(s.ExecShardBusyNS) != 4 {
			t.Fatalf("replica %d runs %d shards (%v), want 4", i, s.ExecShards, s.ExecShardBusyNS)
		}
		for sh, ns := range s.ExecShardBusyNS {
			if ns == 0 {
				t.Fatalf("replica %d shard %d never did work: %v", i, sh, s.ExecShardBusyNS)
			}
		}
	}
	// Byte-identical stores across replicas.
	ref := c.Replica(0).Store()
	for i := 1; i < opts.N; i++ {
		st := c.Replica(i).Store()
		for key := uint64(0); key < opts.Workload.Records; key++ {
			want, errW := ref.Get(key)
			got, errG := st.Get(key)
			if (errW == nil) != (errG == nil) {
				t.Fatalf("replica %d key %d presence mismatch: %v vs %v", i, key, errG, errW)
			}
			if errW == nil && string(got) != string(want) {
				t.Fatalf("replica %d key %d = %q, replica 0 has %q", i, key, got, want)
			}
		}
	}
}

func TestClusterBursts(t *testing.T) {
	opts := smallOpts()
	opts.Burst = 5 // client-side batching: five txns per request
	c, res := runCluster(t, opts, 1200*time.Millisecond)
	if res.Txns == 0 || res.Txns%5 != 0 {
		t.Fatalf("burst accounting broken: %s", res)
	}
	if err := c.VerifyLedgers(nil); err != nil {
		t.Fatal(err)
	}
}

func TestClusterExecutionAppliesWrites(t *testing.T) {
	opts := smallOpts()
	opts.Clients = 2
	c, res := runCluster(t, opts, 800*time.Millisecond)
	if res.Txns == 0 {
		t.Fatal("no transactions")
	}
	// Let the backups finish executing everything the primary committed.
	target := c.Replica(0).Ledger().Height()
	if got := c.WaitForHeight(target, 5*time.Second, nil); got < target {
		t.Fatalf("backups stuck at height %d < %d", got, target)
	}
	if !c.WaitForQuiesce(5*time.Second, nil) {
		t.Fatal("cluster did not quiesce: ledgers or retirement still diverge")
	}
	// Executed writes must be visible in every replica's store, and all
	// stores must agree on the record count (same writes applied).
	want := c.Replica(0).Store().Len()
	if want == 0 {
		t.Fatal("primary store is empty after execution")
	}
	for i := 1; i < opts.N; i++ {
		if got := c.Replica(i).Store().Len(); got != want {
			t.Fatalf("replica %d has %d records, replica 0 has %d", i, got, want)
		}
	}
}

func TestClusterCheckpointPrunesLedger(t *testing.T) {
	opts := smallOpts()
	opts.CheckpointInterval = 2
	c, res := runCluster(t, opts, 1500*time.Millisecond)
	if res.Txns == 0 {
		t.Fatal("no transactions")
	}
	// After checkpoints, early blocks must be pruned from the ledger.
	r := c.Replica(0)
	if r.Stats().Checkpoints == 0 {
		t.Skip("no checkpoint completed in the test window")
	}
	if _, err := r.Ledger().Get(1); err == nil {
		t.Fatal("block 1 still present after stable checkpoints")
	}
}

// TestClusterCheckpointTriggersCompaction drives the full wiring of the
// storage garbage-collection path: a sharded durable store under an
// overwrite-heavy load, with a small checkpoint interval and an
// aggressive garbage-ratio threshold — stable checkpoints must fire the
// replica's compactor, log rewrites must be reported in Stats, and the
// cluster must stay correct (agreeing ledgers) while logs are rewritten
// under live execution.
func TestClusterCheckpointTriggersCompaction(t *testing.T) {
	opts := smallOpts()
	opts.CheckpointInterval = 2
	opts.ExecuteThreads = 2
	opts.StoreBackend = "sharded"
	opts.StoreSync = 100 * time.Microsecond
	// Tiny key space → heavy overwrites → garbage accumulates fast; no
	// size floor and a low ratio so the trigger fires inside the window.
	opts.Workload.Records = 128
	opts.StoreCompactRatio = 0.05
	opts.StoreCompactMinBytes = -1
	c, res := runCluster(t, opts, 1500*time.Millisecond)
	if res.Txns == 0 {
		t.Fatal("no transactions")
	}
	r := c.Replica(1) // a backup: execution and storage without batching noise
	s := r.Stats()
	if s.Checkpoints == 0 {
		t.Skip("no checkpoint completed in the test window")
	}
	if s.StoreCompactions == 0 {
		t.Fatal("stable checkpoints never triggered a store compaction")
	}
	if s.StoreCompactFailures != 0 {
		t.Fatalf("StoreCompactFailures = %d", s.StoreCompactFailures)
	}
	if s.StoreCompactReclaimedBytes == 0 {
		t.Fatal("compaction reclaimed no bytes under an overwrite-heavy load")
	}
	if s.StoreWriteFailures != 0 {
		t.Fatalf("StoreWriteFailures = %d: compaction lost or rejected writes", s.StoreWriteFailures)
	}
	if err := c.VerifyLedgers(nil); err != nil {
		t.Fatal(err)
	}
}

func TestViewChangeAfterPrimaryCrash(t *testing.T) {
	opts := smallOpts()
	opts.Clients = 4
	opts.ViewTimeout = 150 * time.Millisecond
	opts.ClientTimeout = 100 * time.Millisecond
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)

	// Warm up under primary 0.
	res1 := c.Run(context.Background(), 600*time.Millisecond)
	if res1.Txns == 0 {
		t.Fatalf("no progress before crash: %s", res1)
	}
	// Crash the primary; clients retransmit to backups, watchdogs fire,
	// replica 1 takes over view 1.
	c.Crash(0)
	res2 := c.Run(context.Background(), 2500*time.Millisecond)
	if res2.Txns == 0 {
		t.Fatalf("no progress after primary crash: %s", res2)
	}
	live := func(i int) bool { return i != 0 }
	if err := c.VerifyLedgers(live); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if v := c.Replica(i).Stats().View; v == 0 {
			t.Fatalf("replica %d never left view 0", i)
		}
	}
}

func TestReplicaStatsAccounting(t *testing.T) {
	c, res := runCluster(t, smallOpts(), 800*time.Millisecond)
	if res.Txns == 0 {
		t.Fatal("no transactions")
	}
	s := c.Replica(0).Stats()
	if s.TxnsExecuted == 0 || s.BatchesExecuted == 0 {
		t.Fatalf("primary stats empty: %+v", s)
	}
	if s.MsgsIn == 0 || s.MsgsOut == 0 {
		t.Fatalf("message counters empty: %+v", s)
	}
	if s.LedgerHeight == 0 {
		t.Fatalf("ledger height zero: %+v", s)
	}
	// Busy-time accounting must attribute work to the standard stages.
	for _, st := range []replica.Stage{replica.StageWorker, replica.StageExecute, replica.StageBatch} {
		if s.BusyNS[st] == 0 {
			t.Fatalf("stage %v recorded no busy time", st)
		}
	}
}

func TestLedgerModesAgree(t *testing.T) {
	for _, mode := range []ledger.Mode{ledger.HashChain, ledger.CommitCertificate} {
		t.Run(mode.String(), func(t *testing.T) {
			opts := smallOpts()
			opts.Clients = 4
			opts.LedgerMode = mode
			c, res := runCluster(t, opts, 800*time.Millisecond)
			if res.Txns == 0 {
				t.Fatal("no transactions")
			}
			if err := c.VerifyLedgers(nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDisableOutOfOrderStillCorrect(t *testing.T) {
	opts := smallOpts()
	opts.Clients = 4
	opts.DisableOutOfOrder = true
	c, res := runCluster(t, opts, 800*time.Millisecond)
	if res.Txns == 0 {
		t.Fatal("no transactions with sequential consensus")
	}
	if err := c.VerifyLedgers(nil); err != nil {
		t.Fatal(err)
	}
}

// TestClusterReadMixThroughConsensus: with a 50% read fraction in the
// default quorum read mode, reads order through consensus like writes —
// every replica executes them, clients complete them against a response
// quorum, and nothing takes the local bypass.
func TestClusterReadMixThroughConsensus(t *testing.T) {
	opts := smallOpts()
	opts.Workload.ReadFraction = 0.5
	opts.PreloadTable = true
	c, res := runCluster(t, opts, 1500*time.Millisecond)
	if res.ReadTxns == 0 || res.WriteTxns == 0 {
		t.Fatalf("mixed workload did not complete both kinds: %s", res)
	}
	if res.LocalReads != 0 {
		t.Fatalf("quorum mode used the local read path: %s", res)
	}
	if reads := c.Replica(0).Stats().ReadsExecuted; reads == 0 {
		t.Fatal("no reads executed through consensus")
	}
	if err := c.VerifyLedgers(nil); err != nil {
		t.Fatal(err)
	}
}

// TestClusterLocalReads: in local read mode, read-only requests are served
// by single replicas while writes keep flowing through consensus, and the
// ledgers still agree.
func TestClusterLocalReads(t *testing.T) {
	opts := smallOpts()
	opts.Workload.ReadFraction = 0.5
	opts.ReadMode = "local"
	opts.PreloadTable = true
	c, res := runCluster(t, opts, 1500*time.Millisecond)
	if res.ReadTxns == 0 || res.WriteTxns == 0 {
		t.Fatalf("mixed workload did not complete both kinds: %s", res)
	}
	if res.LocalReads == 0 {
		t.Fatalf("local mode never served a read locally: %s", res)
	}
	var served uint64
	for i := 0; i < opts.N; i++ {
		served += c.Replica(i).Stats().LocalReads
	}
	if served == 0 {
		t.Fatal("no replica reports serving local reads")
	}
	if err := c.VerifyLedgers(nil); err != nil {
		t.Fatal(err)
	}
}

// TestLocalReadsBypassConsensus is the acceptance check for the
// consensus-bypassing read path: under a pure read workload (preset C) in
// local mode, every read completes while no replica proposes a single
// batch — local reads consume no sequence numbers at all.
func TestLocalReadsBypassConsensus(t *testing.T) {
	opts := smallOpts()
	opts.Workload.Preset = "c"
	opts.ReadMode = "local"
	opts.PreloadTable = true
	c, res := runCluster(t, opts, 800*time.Millisecond)
	if res.ReadTxns == 0 || res.LocalReads == 0 {
		t.Fatalf("pure read load completed nothing locally: %s", res)
	}
	if res.WriteTxns != 0 {
		t.Fatalf("preset C produced writes: %s", res)
	}
	for i := 0; i < opts.N; i++ {
		s := c.Replica(i).Stats()
		if s.BatchesProposed != 0 || s.LedgerHeight != 0 {
			t.Fatalf("replica %d sequenced work under a local-read-only load: proposed=%d height=%d",
				i, s.BatchesProposed, s.LedgerHeight)
		}
	}
}

// TestClusterScanMix: a write/read/scan mix in the default quorum mode
// completes all three transaction kinds through consensus — scans execute
// on every replica, their rows come back under the f+1 attested result
// digest, and the ledgers agree.
func TestClusterScanMix(t *testing.T) {
	opts := smallOpts()
	opts.Workload.ReadFraction = 0.25
	opts.Workload.ScanFraction = 0.25
	opts.Workload.ScanLength = 16
	opts.PreloadTable = true
	c, res := runCluster(t, opts, 1500*time.Millisecond)
	if res.ReadTxns == 0 || res.ScanTxns == 0 || res.WriteTxns == 0 {
		t.Fatalf("mixed workload did not complete all kinds: %s", res)
	}
	if res.LocalReads != 0 {
		t.Fatalf("quorum mode used the local read path: %s", res)
	}
	if res.ScanP95Lat == 0 {
		t.Fatalf("no scan latency recorded: %s", res)
	}
	if err := c.VerifyLedgers(nil); err != nil {
		t.Fatal(err)
	}
}

// TestClusterLocalScans: in local read mode a write-free scan request
// rides the consensus-bypassing ReadRequest path (Scans tail) like point
// reads do, while writes keep flowing through consensus.
func TestClusterLocalScans(t *testing.T) {
	opts := smallOpts()
	opts.Workload.ReadFraction = 0.25
	opts.Workload.ScanFraction = 0.25
	opts.Workload.ScanLength = 16
	opts.ReadMode = "local"
	opts.PreloadTable = true
	c, res := runCluster(t, opts, 1500*time.Millisecond)
	if res.ReadTxns == 0 || res.ScanTxns == 0 || res.WriteTxns == 0 {
		t.Fatalf("mixed workload did not complete all kinds: %s", res)
	}
	if res.LocalReads == 0 {
		t.Fatalf("local mode never served a request locally: %s", res)
	}
	var served uint64
	for i := 0; i < opts.N; i++ {
		served += c.Replica(i).Stats().LocalReads
	}
	if served == 0 {
		t.Fatal("no replica reports serving local reads")
	}
	if err := c.VerifyLedgers(nil); err != nil {
		t.Fatal(err)
	}
}

// TestClusterCrashRecoverCatchUp crashes a backup running on sharded
// disk, keeps the cluster under load while it is down, restarts it from
// a live peer's snapshot (reopening the same store directory, replaying
// the shard logs), and requires the restarted replica to catch back up:
// its ledger must converge to the same chain as the survivors, and new
// load after the restart must execute everywhere.
func TestClusterCrashRecoverCatchUp(t *testing.T) {
	opts := smallOpts()
	opts.StoreBackend = "sharded"
	opts.StoreDir = t.TempDir()
	opts.CheckpointInterval = 16
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	ctx := context.Background()

	if res := c.Run(ctx, 500*time.Millisecond); res.Txns == 0 {
		t.Fatalf("no transactions before the crash: %s", res)
	}
	c.Crash(3)
	if res := c.Run(ctx, 500*time.Millisecond); res.Txns == 0 {
		t.Fatalf("no progress with one backup down: %s", res)
	}
	lostHeight := c.Replica(0).Ledger().Height()
	if got := c.Replica(3).Ledger().Height(); got >= lostHeight {
		t.Fatalf("crashed replica kept executing: height %d >= %d", got, lostHeight)
	}

	if err := c.Restart(3); err != nil {
		t.Fatal(err)
	}
	if res := c.Run(ctx, 700*time.Millisecond); res.Txns == 0 {
		t.Fatalf("no transactions after the restart: %s", res)
	}

	// The restarted replica must track the head, not just the bootstrap
	// snapshot: wait for every replica to clear the pre-restart head plus
	// some post-restart progress.
	if got := c.WaitForHeight(lostHeight+4, 5*time.Second, nil); got <= lostHeight {
		t.Fatalf("cluster stuck at height %d after restart (crash-time head %d)", got, lostHeight)
	}
	settle := c.Replica(0).Ledger().Height()
	if got := c.WaitForHeight(settle, 5*time.Second, nil); got < settle {
		t.Fatalf("restarted replica never converged: min height %d, want %d", got, settle)
	}
	if err := c.VerifyLedgers(nil); err != nil {
		t.Fatal(err)
	}
	if s := c.Replica(3).Stats(); s.BatchesExecuted == 0 {
		t.Fatalf("restarted replica executed nothing: %+v", s)
	}
}
